package repro_test

// One benchmark per table and figure of the paper's evaluation
// (Section 5), plus ablations for the design choices DESIGN.md calls
// out. Custom metrics report the paper's figures of merit:
// cycles/sec for the speed comparisons, cycle-count differences for
// the validations. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/osmbench prints the same data as formatted tables.

import (
	"testing"

	"repro/internal/baseline/hwcentric"
	"repro/internal/baseline/sscalar"
	"repro/internal/experiments"
	"repro/internal/isa/arm"
	"repro/internal/isa/ppc"
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/sim/ppc750"
	"repro/internal/sim/strongarm"
	"repro/internal/workload"
)

// benchScale keeps bench iterations moderate; osmbench -scale raises it.
const benchScale = 1

func armPrograms(b *testing.B) []*arm.Program {
	b.Helper()
	var ps []*arm.Program
	for _, w := range workload.All() {
		p, err := w.ARMProgram(w.DefaultN * benchScale)
		if err != nil {
			b.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

func ppcPrograms(b *testing.B) []*ppc.Program {
	b.Helper()
	var ps []*ppc.Program
	for _, w := range workload.All() {
		p, err := w.PPCProgram(w.DefaultN * benchScale)
		if err != nil {
			b.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

func reportCPS(b *testing.B, cycles uint64) {
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkTable1OSMStrongARM is the simulator column of Table 1: the
// OSM StrongARM model over the six MediaBench-like kernels.
func BenchmarkTable1OSMStrongARM(b *testing.B) {
	ps := armPrograms(b)
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			s, err := strongarm.New(p, strongarm.Config{})
			if err != nil {
				b.Fatal(err)
			}
			st, err := s.Run(10_000_000_000)
			if err != nil {
				b.Fatal(err)
			}
			cycles += st.Cycles
		}
	}
	reportCPS(b, cycles)
}

// BenchmarkTable1Oracle is the hardware column of Table 1: the
// independent timing oracle standing in for the paper's iPAQ.
func BenchmarkTable1Oracle(b *testing.B) {
	ps := armPrograms(b)
	h := mem.DefaultHierarchyConfig()
	h.MemLatency = 23
	h.TLBMissPenalty = 26
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			s, err := sscalar.New(p, sscalar.Config{Hier: h})
			if err != nil {
				b.Fatal(err)
			}
			st, err := s.Run(10_000_000_000)
			if err != nil {
				b.Fatal(err)
			}
			cycles += st.Cycles
		}
	}
	reportCPS(b, cycles)
}

// BenchmarkTable2LineCount regenerates the Table 2 source-line
// analysis (cheap; included so `-bench .` covers every table).
func BenchmarkTable2LineCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkSpeedStrongARM and BenchmarkSpeedSScalar reproduce the
// §5.1 speed comparison (paper: OSM 650k vs SimpleScalar 550k
// cycles/sec on a P-III 1.1 GHz).
func BenchmarkSpeedStrongARM(b *testing.B) { benchArmSpeed(b, true) }

// BenchmarkSpeedSScalar is the baseline side of the §5.1 comparison.
func BenchmarkSpeedSScalar(b *testing.B) { benchArmSpeed(b, false) }

func benchArmSpeed(b *testing.B, osmModel bool) {
	ps := armPrograms(b)
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			if osmModel {
				s, err := strongarm.New(p, strongarm.Config{})
				if err != nil {
					b.Fatal(err)
				}
				st, err := s.Run(10_000_000_000)
				if err != nil {
					b.Fatal(err)
				}
				cycles += st.Cycles
			} else {
				s, err := sscalar.New(p, sscalar.Config{})
				if err != nil {
					b.Fatal(err)
				}
				st, err := s.Run(10_000_000_000)
				if err != nil {
					b.Fatal(err)
				}
				cycles += st.Cycles
			}
		}
	}
	reportCPS(b, cycles)
}

// BenchmarkSpeedPPC750 and BenchmarkSpeedHWCentric reproduce the §5.2
// speed comparison (paper: OSM 250k cycles/sec, 4x the SystemC
// model).
func BenchmarkSpeedPPC750(b *testing.B) { benchPPCSpeed(b, true) }

// BenchmarkSpeedHWCentric is the baseline side of the §5.2 comparison.
func BenchmarkSpeedHWCentric(b *testing.B) { benchPPCSpeed(b, false) }

func benchPPCSpeed(b *testing.B, osmModel bool) {
	ps := ppcPrograms(b)
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			if osmModel {
				s, err := ppc750.New(p, ppc750.Config{})
				if err != nil {
					b.Fatal(err)
				}
				st, err := s.Run(10_000_000_000)
				if err != nil {
					b.Fatal(err)
				}
				cycles += st.Cycles
			} else {
				s, err := hwcentric.New(p, hwcentric.Config{})
				if err != nil {
					b.Fatal(err)
				}
				st, err := s.Run(10_000_000_000)
				if err != nil {
					b.Fatal(err)
				}
				cycles += st.Cycles
			}
		}
	}
	reportCPS(b, cycles)
}

// BenchmarkValidatePPC750 reproduces the §5.2 timing validation: both
// 750 implementations over the kernel mix; the reported metric is the
// worst absolute timing difference in percent (paper: within 3%).
func BenchmarkValidatePPC750(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ValidatePPC(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			d := r.DiffPct
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst, "worst-diff-%")
}

// BenchmarkFig2WithRS and BenchmarkFig2WithoutRS quantify the paper's
// Figure 2 multi-path OSM: dispatch into the unit or wait in its
// reservation station.
func BenchmarkFig2WithRS(b *testing.B) { benchFig2(b, false) }

// BenchmarkFig2WithoutRS is the single-path ablation.
func BenchmarkFig2WithoutRS(b *testing.B) { benchFig2(b, true) }

func benchFig2(b *testing.B, noRS bool) {
	ps := ppcPrograms(b)
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			s, err := ppc750.New(p, ppc750.Config{NoReservationStations: noRS})
			if err != nil {
				b.Fatal(err)
			}
			st, err := s.Run(10_000_000_000)
			if err != nil {
				b.Fatal(err)
			}
			cycles += st.Cycles
		}
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles")
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationRestart measures the director's outer-loop restart
// (paper Fig. 3) against the case studies' NoRestart optimization on
// the StrongARM model; cycle counts are identical, only speed moves.
func BenchmarkAblationRestart(b *testing.B) {
	for _, restart := range []bool{false, true} {
		name := "norestart"
		if restart {
			name = "restart"
		}
		b.Run(name, func(b *testing.B) {
			ps := armPrograms(b)
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				for _, p := range ps {
					s, err := strongarm.New(p, strongarm.Config{Restart: restart})
					if err != nil {
						b.Fatal(err)
					}
					st, err := s.Run(10_000_000_000)
					if err != nil {
						b.Fatal(err)
					}
					cycles += st.Cycles
				}
			}
			reportCPS(b, cycles)
		})
	}
}

// BenchmarkAblationMulEarlyTermination measures the SA-110 multiplier
// early-termination model against a fixed worst-case multiplier.
func BenchmarkAblationMulEarlyTermination(b *testing.B) {
	for _, fixed := range []bool{false, true} {
		name := "early-termination"
		if fixed {
			name = "fixed-worst-case"
		}
		b.Run(name, func(b *testing.B) {
			p, err := workload.ByName("gsm/enc").ARMProgram(500 * benchScale)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				s, err := strongarm.New(p, strongarm.Config{FixedMul: fixed})
				if err != nil {
					b.Fatal(err)
				}
				st, err := s.Run(10_000_000_000)
				if err != nil {
					b.Fatal(err)
				}
				cycles += st.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles")
		})
	}
}

// BenchmarkAblationMemory sweeps the memory subsystem: perfect,
// SA-1100 defaults and a quarter-size configuration, exposing the
// variable-latency modeling of §4.
func BenchmarkAblationMemory(b *testing.B) {
	slow := mem.DefaultHierarchyConfig()
	slow.MemLatency, slow.TLBMissPenalty = 100, 100
	cases := []struct {
		name string
		h    mem.HierarchyConfig
	}{
		{"perfect", mem.HierarchyConfig{DisableCaches: true, DisableTLBs: true}},
		{"sa1100", mem.DefaultHierarchyConfig()},
		{"slow-memory", slow},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			p, err := workload.ByName("mpeg2/dec").ARMProgram(60 * benchScale)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				s, err := strongarm.New(p, strongarm.Config{Hier: c.h})
				if err != nil {
					b.Fatal(err)
				}
				st, err := s.Run(10_000_000_000)
				if err != nil {
					b.Fatal(err)
				}
				cycles += st.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles")
		})
	}
}

// BenchmarkAblationFrontEnd sweeps the 750's front-end structures
// (fetch queue, completion queue, dispatch width).
func BenchmarkAblationFrontEnd(b *testing.B) {
	cases := []struct {
		name string
		cfg  ppc750.Config
	}{
		{"750-default", ppc750.Config{}},
		{"narrow", ppc750.Config{FetchQueue: 2, CompletionQueue: 2, DispatchWidth: 1, CompleteWidth: 1}},
		{"wide", ppc750.Config{FetchQueue: 12, CompletionQueue: 12, RenameBuffers: 12}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			p, err := workload.ByName("g721/enc").PPCProgram(800 * benchScale)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				s, err := ppc750.New(p, c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				st, err := s.Run(10_000_000_000)
				if err != nil {
					b.Fatal(err)
				}
				cycles += st.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles")
		})
	}
}

// BenchmarkISSFunctional measures raw functional (instruction-set)
// simulation speed, the substrate both timing models drive.
func BenchmarkISSFunctional(b *testing.B) {
	p, err := workload.ByName("gsm/dec").ARMProgram(500 * benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		s, err := newARMISS(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Run(1_000_000_000); err != nil {
			b.Fatal(err)
		}
		instrs += s.Stats.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/sec")
}

// newARMISS builds the functional simulator for BenchmarkISSFunctional.
func newARMISS(p *arm.Program) (*iss.ARM, error) { return iss.NewARM(p, 1024) }

// BenchmarkAblationL2 measures the optional back-side L2 cache with a
// working set that overflows the first-level D-cache (a 64 KiB array
// swept repeatedly) but fits comfortably in a 256 KiB L2.
func BenchmarkAblationL2(b *testing.B) {
	base := mem.HierarchyConfig{
		ICacheKB: 8, DCacheKB: 8, Ways: 2, LineBytes: 32,
		MemLatency: 60, TLBEntries: 64, TLBMissPenalty: 0, WriteBack: true,
	}
	withL2 := base
	withL2.L2KB = 256
	withL2.L2Latency = 6
	// Sweep a 64 KiB array line by line, eight passes.
	sweep := `
	li r6, 8
outer:
	lis r4, 2            ; base 0x20000
	li r5, 2048          ; 2048 lines of 32 bytes
loop:
	lwz r3, 0(r4)
	addi r4, r4, 32
	addi r5, r5, -1
	cmpwi r5, 0
	bgt loop
	addi r6, r6, -1
	cmpwi r6, 0
	bgt outer
	li r3, 0
	li r0, 1
	sc
`
	p, err := ppc.Assemble(sweep)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		h    mem.HierarchyConfig
	}{
		{"no-L2", base},
		{"with-256KB-L2", withL2},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				s, err := ppc750.New(p, ppc750.Config{Hier: c.h})
				if err != nil {
					b.Fatal(err)
				}
				st, err := s.Run(10_000_000_000)
				if err != nil {
					b.Fatal(err)
				}
				cycles += st.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles")
		})
	}
}
