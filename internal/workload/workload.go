package workload

import (
	"fmt"

	"repro/internal/isa/arm"
	"repro/internal/isa/ppc"
)

// Workload is one benchmark kernel available for both targets.
type Workload struct {
	// Name matches the paper's Table 1 rows (e.g. "gsm/dec").
	Name string
	// DefaultN is the iteration count used by the examples and the
	// benchmark harness's small configurations.
	DefaultN int
	// Ref computes the expected checksum for n iterations.
	Ref func(n int) uint32

	armSrc string // template with one %d (iteration count)
	ppcSrc string // template with one %s (count-loading sequence)
}

// All returns the six kernels in the paper's Table 1 order.
func All() []*Workload {
	return []*Workload{
		{Name: "gsm/dec", DefaultN: 500, Ref: RefGSMDec, armSrc: armGSMDec, ppcSrc: ppcGSMDec},
		{Name: "gsm/enc", DefaultN: 500, Ref: RefGSMEnc, armSrc: armGSMEnc, ppcSrc: ppcGSMEnc},
		{Name: "g721/dec", DefaultN: 800, Ref: RefG721Dec, armSrc: armG721Dec, ppcSrc: ppcG721Dec},
		{Name: "g721/enc", DefaultN: 800, Ref: RefG721Enc, armSrc: armG721Enc, ppcSrc: ppcG721Enc},
		{Name: "mpeg2/dec", DefaultN: 60, Ref: RefMPEG2Dec, armSrc: armMPEG2Dec, ppcSrc: ppcMPEG2Dec},
		{Name: "mpeg2/enc", DefaultN: 60, Ref: RefMPEG2Enc, armSrc: armMPEG2Enc, ppcSrc: ppcMPEG2Enc},
	}
}

// ByName returns the named kernel (MediaBench-like or SPECint-like)
// or nil.
func ByName(name string) *Workload {
	for _, w := range Mix() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// ARMSource returns the kernel's ARM assembly for n iterations.
func (w *Workload) ARMSource(n int) string { return fmt.Sprintf(w.armSrc, n) }

// ARMProgram assembles the kernel for n iterations.
func (w *Workload) ARMProgram(n int) (*arm.Program, error) {
	p, err := arm.Assemble(w.ARMSource(n))
	if err != nil {
		return nil, fmt.Errorf("workload %s (arm): %w", w.Name, err)
	}
	return p, nil
}

// PPCSource returns the kernel's PowerPC assembly for n iterations.
func (w *Workload) PPCSource(n int) string {
	return fmt.Sprintf(w.ppcSrc, ppcLoadCount(3, n))
}

// PPCProgram assembles the kernel for n iterations.
func (w *Workload) PPCProgram(n int) (*ppc.Program, error) {
	p, err := ppc.Assemble(w.PPCSource(n))
	if err != nil {
		return nil, fmt.Errorf("workload %s (ppc): %w", w.Name, err)
	}
	return p, nil
}

// ppcLoadCount emits the li or lis/ori sequence that materializes v
// in the given register.
func ppcLoadCount(reg, v int) string {
	if v >= -32768 && v <= 32767 {
		return fmt.Sprintf("\tli r%d, %d\n", reg, v)
	}
	hi := int(int16(v >> 16))
	lo := v & 0xffff
	return fmt.Sprintf("\tlis r%d, %d\n\tori r%d, r%d, %d\n", reg, hi, reg, reg, lo)
}
