package workload

// ARM assembly sources of the six kernels. Each template takes the
// iteration count via %d, reports its checksum with swi #3 and exits
// with swi #0. Register conventions are local to each kernel.

// armGSM is shared by the analysis (enc) and synthesis (dec) lattice
// filters; the inner loop body differs.
const armGSMEnc = `
	ldr r0, =%d          ; n
	ldr r1, =12345       ; seed
	ldr r2, =1664525     ; lcg A
	ldr r3, =1013904223  ; lcg C
	mov r4, #0           ; csum
	ldr r5, =gsm_d
	ldr r6, =gsm_r
	mov r7, #0
	ldr r8, =2896
init:
	mul r9, r7, r8
	add r9, r9, #123
	str r9, [r6, r7, lsl #2]
	mov r10, #0
	str r10, [r5, r7, lsl #2]
	add r7, r7, #1
	cmp r7, #8
	blt init
outer:
	cmp r0, #0
	ble done
	mul r7, r1, r2
	add r1, r7, r3       ; seed = seed*A + C
	mov r7, r1, lsl #16
	mov r7, r7, lsr #16
	sub r7, r7, #0x8000  ; u = sample(seed)
	mov r8, #0           ; k
inner:
	ldr r9, [r6, r8, lsl #2]   ; rk
	ldr r10, [r5, r8, lsl #2]  ; dk
	mul r11, r9, r7
	mov r11, r11, asr #15
	add r11, r10, r11          ; tmp = dk + (rk*u)>>15
	mul r12, r9, r10
	mov r12, r12, asr #15
	add r7, r7, r12            ; u += (rk*dk)>>15
	str r11, [r5, r8, lsl #2]
	add r8, r8, #1
	cmp r8, #8
	blt inner
	add r4, r4, r7       ; csum += u
	sub r0, r0, #1
	b outer
done:
	mov r0, r4
	swi #3
	mov r0, #0
	swi #0
gsm_d:	.space 32
gsm_r:	.space 32
`

const armGSMDec = `
	ldr r0, =%d          ; n
	ldr r1, =12345
	ldr r2, =1664525
	ldr r3, =1013904223
	mov r4, #0           ; csum
	ldr r5, =gsm_d
	ldr r6, =gsm_r
	mov r7, #0
	ldr r8, =2896
init:
	mul r9, r7, r8
	add r9, r9, #123
	str r9, [r6, r7, lsl #2]
	mov r10, #0
	str r10, [r5, r7, lsl #2]
	add r7, r7, #1
	cmp r7, #8
	blt init
outer:
	cmp r0, #0
	ble done
	mul r7, r1, r2
	add r1, r7, r3
	mov r7, r1, lsl #16
	mov r7, r7, lsr #16
	sub r7, r7, #0x8000  ; u
	mov r8, #7           ; k counts down
inner:
	ldr r9, [r6, r8, lsl #2]   ; rk
	ldr r10, [r5, r8, lsl #2]  ; dk
	mul r11, r9, r10
	mov r11, r11, asr #15
	sub r7, r7, r11            ; u -= (rk*dk)>>15
	mul r12, r9, r7
	mov r12, r12, asr #15
	add r10, r10, r12          ; dk += (rk*u)>>15
	str r10, [r5, r8, lsl #2]
	subs r8, r8, #1
	bge inner
	add r4, r4, r7
	sub r0, r0, #1
	b outer
done:
	mov r0, r4
	swi #3
	mov r0, #0
	swi #0
gsm_d:	.space 32
gsm_r:	.space 32
`

const armG721Enc = `
	ldr r0, =%d          ; n
	ldr r1, =12345       ; seed
	ldr r2, =1664525
	ldr r3, =1013904223
	mov r4, #16          ; step
	mov r5, #0           ; pred
	mov r6, #0           ; csum
	ldr r7, =steptab
outer:
	cmp r0, #0
	ble done
	mul r8, r1, r2
	add r1, r8, r3
	mov r8, r1, lsl #16
	mov r8, r8, lsr #16
	sub r8, r8, #0x8000  ; s
	sub r8, r8, r5       ; diff = s - pred
	mov r9, #0           ; code
	cmp r8, #0
	movlt r9, #4
	rsblt r8, r8, #0
	cmp r8, r4
	orrge r9, r9, #2
	subge r8, r8, r4
	cmp r8, r4, asr #1
	orrge r9, r9, #1
	and r10, r9, #3      ; dq = (step*(2*(code&3)+1))>>2
	mov r10, r10, lsl #1
	add r10, r10, #1
	mul r11, r4, r10
	mov r11, r11, asr #2
	tst r9, #4
	rsbne r11, r11, #0
	add r5, r5, r11      ; pred += dq
	ldr r12, =32767
	cmp r5, r12
	movgt r5, r12
	ldr r12, =-32768
	cmp r5, r12
	movlt r5, r12
	and r10, r9, #3      ; step = (step*tab[code&3])>>8
	ldr r10, [r7, r10, lsl #2]
	mul r11, r4, r10
	mov r4, r11, asr #8
	cmp r4, #16
	movlt r4, #16
	cmp r4, #16384
	movgt r4, #16384
	rsb r6, r6, r6, lsl #5   ; csum *= 31
	add r6, r6, r9
	sub r0, r0, #1
	b outer
done:
	add r0, r6, r5
	swi #3
	mov r0, #0
	swi #0
steptab: .word 230, 230, 307, 409
`

const armG721Dec = `
	ldr r0, =%d          ; n
	ldr r1, =12345
	ldr r2, =1664525
	ldr r3, =1013904223
	mov r4, #16          ; step
	mov r5, #0           ; pred
	mov r6, #0           ; csum
	ldr r7, =steptab
outer:
	cmp r0, #0
	ble done
	mul r8, r1, r2
	add r1, r8, r3
	and r9, r1, #7       ; code
	and r10, r9, #3
	mov r10, r10, lsl #1
	add r10, r10, #1
	mul r11, r4, r10
	mov r11, r11, asr #2 ; dq
	tst r9, #4
	rsbne r11, r11, #0
	add r5, r5, r11
	ldr r12, =32767
	cmp r5, r12
	movgt r5, r12
	ldr r12, =-32768
	cmp r5, r12
	movlt r5, r12
	and r10, r9, #3
	ldr r10, [r7, r10, lsl #2]
	mul r11, r4, r10
	mov r4, r11, asr #8
	cmp r4, #16
	movlt r4, #16
	cmp r4, #16384
	movgt r4, #16384
	rsb r6, r6, r6, lsl #5
	mov r12, r5, lsl #16
	mov r12, r12, lsr #16
	add r6, r6, r12      ; csum = csum*31 + pred&0xffff
	sub r0, r0, #1
	b outer
done:
	mov r0, r6
	swi #3
	mov r0, #0
	swi #0
steptab: .word 230, 230, 307, 409
`
