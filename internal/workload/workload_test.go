package workload

import (
	"testing"

	"repro/internal/iss"
)

// The central correctness check of the whole substrate: every kernel,
// on both instruction sets, must reproduce its Go reference checksum
// exactly. A mismatch implicates the assembler, the decoder, the
// executor or the kernel itself.

func runARM(t *testing.T, w *Workload, n int) uint32 {
	t.Helper()
	p, err := w.ARMProgram(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := iss.NewARM(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100_000_000); err != nil {
		t.Fatalf("%s (arm, n=%d): %v", w.Name, n, err)
	}
	if len(s.Reported) != 1 {
		t.Fatalf("%s (arm, n=%d): reported %v", w.Name, n, s.Reported)
	}
	return s.Reported[0]
}

func runPPC(t *testing.T, w *Workload, n int) uint32 {
	t.Helper()
	p, err := w.PPCProgram(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := iss.NewPPC(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100_000_000); err != nil {
		t.Fatalf("%s (ppc, n=%d): %v", w.Name, n, err)
	}
	if len(s.Reported) != 1 {
		t.Fatalf("%s (ppc, n=%d): reported %v", w.Name, n, s.Reported)
	}
	return s.Reported[0]
}

func TestKernelsMatchReferenceARM(t *testing.T) {
	for _, w := range Mix() {
		for _, n := range []int{1, 7, w.DefaultN} {
			want := w.Ref(n)
			if got := runARM(t, w, n); got != want {
				t.Errorf("%s (arm, n=%d): checksum %#x, want %#x", w.Name, n, got, want)
			}
		}
	}
}

func TestKernelsMatchReferencePPC(t *testing.T) {
	for _, w := range Mix() {
		for _, n := range []int{1, 7, w.DefaultN} {
			want := w.Ref(n)
			if got := runPPC(t, w, n); got != want {
				t.Errorf("%s (ppc, n=%d): checksum %#x, want %#x", w.Name, n, got, want)
			}
		}
	}
}

func TestReferencesAreNontrivial(t *testing.T) {
	// Distinct kernels must produce distinct checksums (guards
	// against a kernel accidentally computing nothing).
	seen := map[uint32]string{}
	for _, w := range Mix() {
		c := w.Ref(100)
		if prev, dup := seen[c]; dup {
			t.Errorf("%s and %s share checksum %#x", w.Name, prev, c)
		}
		seen[c] = w.Name
		if c == 0 {
			t.Errorf("%s checksum is zero", w.Name)
		}
		if w.Ref(10) == w.Ref(11) {
			t.Errorf("%s checksum insensitive to n", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("gsm/enc") == nil || ByName("spec/crc") == nil || ByName("nope") != nil {
		t.Fatal("ByName lookup wrong")
	}
	if len(All()) != 6 {
		t.Fatalf("want the 6 Table-1 kernels, got %d", len(All()))
	}
	if len(Mix()) != 9 {
		t.Fatalf("want the 9-kernel mix, got %d", len(Mix()))
	}
}

func TestLargeCountUsesLisOri(t *testing.T) {
	w := ByName("g721/dec")
	want := w.Ref(70000)
	if got := runARM(t, w, 70000); got != want {
		t.Errorf("arm large-n checksum %#x, want %#x", got, want)
	}
	if got := runPPC(t, w, 70000); got != want {
		t.Errorf("ppc large-n checksum %#x, want %#x", got, want)
	}
}
