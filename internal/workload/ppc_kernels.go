package workload

// PowerPC assembly sources of the six kernels. Each template's %s is
// replaced by the instruction sequence loading the iteration count
// into r3. Checksums are reported with sc r0=6; exit is sc r0=1.

const ppcProlog = `
	li r4, 12345
	lis r5, 0x19
	ori r5, r5, 0x660D   ; lcg A = 1664525
	lis r6, 0x3C6E
	ori r6, r6, 0xF35F   ; lcg C = 1013904223
	li r7, 0             ; csum
`

const ppcEpilog = `
done:
	mr r3, r7
	li r0, 6
	sc
	li r3, 0
	li r0, 1
	sc
`

const ppcGSMEnc = `%s` + ppcProlog + `
	li r8, gsm_d
	li r9, gsm_r
	li r10, 0
	li r11, 2896
init:
	mullw r12, r10, r11
	addi r12, r12, 123
	slwi r14, r10, 2
	stwx r12, r9, r14
	li r15, 0
	stwx r15, r8, r14
	addi r10, r10, 1
	cmpwi r10, 8
	blt init
outer:
	cmpwi r3, 0
	ble done
	mullw r11, r4, r5
	add r4, r11, r6      ; seed
	andi. r10, r4, 0xffff
	addi r10, r10, -32768 ; u
	li r11, 0            ; k
inner:
	slwi r12, r11, 2
	lwzx r14, r9, r12    ; rk
	lwzx r15, r8, r12    ; dk
	mullw r16, r14, r10
	srawi r16, r16, 15
	add r16, r15, r16    ; tmp
	mullw r17, r14, r15
	srawi r17, r17, 15
	add r10, r10, r17
	stwx r16, r8, r12
	addi r11, r11, 1
	cmpwi r11, 8
	blt inner
	add r7, r7, r10
	addi r3, r3, -1
	b outer
` + ppcEpilog + `
gsm_d: .space 32
gsm_r: .space 32
`

const ppcGSMDec = `%s` + ppcProlog + `
	li r8, gsm_d
	li r9, gsm_r
	li r10, 0
	li r11, 2896
init:
	mullw r12, r10, r11
	addi r12, r12, 123
	slwi r14, r10, 2
	stwx r12, r9, r14
	li r15, 0
	stwx r15, r8, r14
	addi r10, r10, 1
	cmpwi r10, 8
	blt init
outer:
	cmpwi r3, 0
	ble done
	mullw r11, r4, r5
	add r4, r11, r6
	andi. r10, r4, 0xffff
	addi r10, r10, -32768 ; u
	li r11, 7             ; k downwards
inner:
	slwi r12, r11, 2
	lwzx r14, r9, r12     ; rk
	lwzx r15, r8, r12     ; dk
	mullw r16, r14, r15
	srawi r16, r16, 15
	sub r10, r10, r16     ; u -= (rk*dk)>>15
	mullw r17, r14, r10
	srawi r17, r17, 15
	add r15, r15, r17
	stwx r15, r8, r12
	addi r11, r11, -1
	cmpwi r11, 0
	bge inner
	add r7, r7, r10
	addi r3, r3, -1
	b outer
` + ppcEpilog + `
gsm_d: .space 32
gsm_r: .space 32
`

const ppcG721Enc = `%s` + ppcProlog + `
	li r8, 16            ; step
	li r9, 0             ; pred
	li r10, steptab
	li r30, 32767
outer:
	cmpwi r3, 0
	ble done
	mullw r11, r4, r5
	add r4, r11, r6
	andi. r11, r4, 0xffff
	addi r11, r11, -32768 ; s
	sub r11, r11, r9      ; diff
	li r12, 0             ; code
	cmpwi r11, 0
	bge pos
	li r12, 4
	neg r11, r11
pos:
	cmpw r11, r8
	blt small
	ori r12, r12, 2
	sub r11, r11, r8
small:
	srawi r14, r8, 1
	cmpw r11, r14
	blt nolow
	ori r12, r12, 1
nolow:
	andi. r14, r12, 3
	slwi r14, r14, 1
	addi r14, r14, 1
	mullw r14, r8, r14
	srawi r14, r14, 2     ; dq
	andi. r15, r12, 4
	cmpwi r15, 0
	beq posdq
	neg r14, r14
posdq:
	add r9, r9, r14
	cmpw r9, r30
	ble nomax
	mr r9, r30
nomax:
	neg r15, r30
	addi r15, r15, -1     ; -32768
	cmpw r9, r15
	bge nomin
	mr r9, r15
nomin:
	andi. r14, r12, 3
	slwi r14, r14, 2
	lwzx r14, r10, r14
	mullw r14, r8, r14
	srawi r8, r14, 8
	cmpwi r8, 16
	bge stepmin
	li r8, 16
stepmin:
	cmpwi r8, 16384
	ble stepmax
	li r8, 16384
stepmax:
	slwi r14, r7, 5
	sub r7, r14, r7
	add r7, r7, r12       ; csum = csum*31 + code
	addi r3, r3, -1
	b outer
done:
	add r3, r7, r9        ; csum + pred
	li r0, 6
	sc
	li r3, 0
	li r0, 1
	sc
steptab: .word 230, 230, 307, 409
`

const ppcG721Dec = `%s` + ppcProlog + `
	li r8, 16            ; step
	li r9, 0             ; pred
	li r10, steptab
	li r30, 32767
outer:
	cmpwi r3, 0
	ble done
	mullw r11, r4, r5
	add r4, r11, r6
	andi. r12, r4, 7     ; code
	andi. r14, r12, 3
	slwi r14, r14, 1
	addi r14, r14, 1
	mullw r14, r8, r14
	srawi r14, r14, 2    ; dq
	andi. r15, r12, 4
	cmpwi r15, 0
	beq posdq
	neg r14, r14
posdq:
	add r9, r9, r14
	cmpw r9, r30
	ble nomax
	mr r9, r30
nomax:
	neg r15, r30
	addi r15, r15, -1
	cmpw r9, r15
	bge nomin
	mr r9, r15
nomin:
	andi. r14, r12, 3
	slwi r14, r14, 2
	lwzx r14, r10, r14
	mullw r14, r8, r14
	srawi r8, r14, 8
	cmpwi r8, 16
	bge stepmin
	li r8, 16
stepmin:
	cmpwi r8, 16384
	ble stepmax
	li r8, 16384
stepmax:
	slwi r14, r7, 5
	sub r7, r14, r7
	andi. r15, r9, 0xffff
	add r7, r7, r15      ; csum = csum*31 + pred&0xffff
	addi r3, r3, -1
	b outer
` + ppcEpilog + `
steptab: .word 230, 230, 307, 409
`

const ppcMPEG2Common = `
	li r24, 2841         ; w1
	li r25, 2676         ; w2
	li r26, 2408         ; w3
	li r27, 1609         ; w5
	li r28, 1108         ; w6
	li r29, 565          ; w7
	li r30, 2047         ; saturation max
`

const ppcMPEG2Butterfly = `
	lwz r9, 0(r8)
	lwz r10, 4(r8)
	lwz r11, 8(r8)
	lwz r12, 12(r8)
	lwz r14, 16(r8)
	lwz r15, 20(r8)
	lwz r16, 24(r8)
	lwz r17, 28(r8)
	add r18, r9, r17     ; s0
	add r19, r10, r16    ; s1
	add r20, r11, r15    ; s2
	add r21, r12, r14    ; s3
	sub r9, r9, r17      ; d0
	sub r10, r10, r16    ; d1
	sub r11, r11, r15    ; d2
	sub r12, r12, r14    ; d3
	li r8, ytab
	add r22, r18, r19
	add r22, r22, r20
	add r22, r22, r21
	stw r22, 0(r8)       ; y0
	sub r22, r18, r19
	sub r22, r22, r20
	add r22, r22, r21
	stw r22, 16(r8)      ; y4
	sub r18, r18, r21    ; t = s0-s3
	sub r19, r19, r20    ; u = s1-s2
	mullw r22, r18, r25
	mullw r23, r19, r28
	add r22, r22, r23
	srawi r22, r22, 11
	stw r22, 8(r8)       ; y2
	mullw r22, r18, r28
	mullw r23, r19, r25
	sub r22, r22, r23
	srawi r22, r22, 11
	stw r22, 24(r8)      ; y6
	mullw r22, r9, r24
	mullw r23, r10, r26
	add r22, r22, r23
	mullw r23, r11, r27
	add r22, r22, r23
	mullw r23, r12, r29
	add r22, r22, r23
	srawi r22, r22, 11
	stw r22, 4(r8)       ; y1
	mullw r22, r9, r26
	mullw r23, r10, r29
	sub r22, r22, r23
	mullw r23, r11, r24
	sub r22, r22, r23
	mullw r23, r12, r27
	sub r22, r22, r23
	srawi r22, r22, 11
	stw r22, 12(r8)      ; y3
	mullw r22, r9, r27
	mullw r23, r10, r24
	sub r22, r22, r23
	mullw r23, r11, r29
	add r22, r22, r23
	mullw r23, r12, r26
	add r22, r22, r23
	srawi r22, r22, 11
	stw r22, 20(r8)      ; y5
	mullw r22, r9, r29
	mullw r23, r10, r27
	sub r22, r22, r23
	mullw r23, r11, r26
	add r22, r22, r23
	mullw r23, r12, r24
	sub r22, r22, r23
	srawi r22, r22, 11
	stw r22, 28(r8)      ; y7
`

const ppcMPEG2Dec = `%s` + ppcProlog + ppcMPEG2Common + `
blockloop:
	cmpwi r3, 0
	ble done
	li r8, xtab
	li r9, 0
fill:
	mullw r10, r4, r5
	add r4, r10, r6
	andi. r10, r4, 0xfff
	addi r10, r10, -2048
	slwi r11, r9, 2
	stwx r10, r8, r11
	addi r9, r9, 1
	cmpwi r9, 8
	blt fill
` + ppcMPEG2Butterfly + `
	li r9, 0
csum:
	slwi r10, r9, 2
	lwzx r11, r8, r10
	cmpw r11, r30
	ble nosatmax
	mr r11, r30
nosatmax:
	neg r12, r30
	addi r12, r12, -1    ; -2048
	cmpw r11, r12
	bge nosatmin
	mr r11, r12
nosatmin:
	andi. r11, r11, 0xffff
	slwi r12, r7, 5
	sub r7, r12, r7
	add r7, r7, r11
	addi r9, r9, 1
	cmpwi r9, 8
	blt csum
	addi r3, r3, -1
	b blockloop
` + ppcEpilog + `
xtab: .space 32
ytab: .space 32
`

const ppcMPEG2Enc = `%s` + ppcProlog + ppcMPEG2Common + `
blockloop:
	cmpwi r3, 0
	ble done
	li r8, xtab
	li r9, 0
fill:
	mullw r10, r4, r5
	add r4, r10, r6
	andi. r10, r4, 0xff
	addi r10, r10, -128
	slwi r11, r9, 2
	stwx r10, r8, r11
	addi r9, r9, 1
	cmpwi r9, 8
	blt fill
` + ppcMPEG2Butterfly + `
	li r9, 0
csum:
	slwi r10, r9, 2
	lwzx r11, r8, r10
	cmpw r11, r30
	ble nosatmax
	mr r11, r30
nosatmax:
	neg r12, r30
	addi r12, r12, -1
	cmpw r11, r12
	bge nosatmin
	mr r11, r12
nosatmin:
	andi. r12, r9, 3     ; quantize: v >>= 1+(k&3)
	addi r12, r12, 1
	sraw r11, r11, r12
	andi. r11, r11, 0xffff
	slwi r12, r7, 5
	sub r7, r12, r7
	add r7, r7, r11
	addi r9, r9, 1
	cmpwi r9, 8
	blt csum
	addi r3, r3, -1
	b blockloop
` + ppcEpilog + `
xtab: .space 32
ytab: .space 32
`
