package workload

// ARM mpeg2 kernels: an 8-point integer butterfly transform per row
// with fixed-point multiplies, saturation and (for the encoder)
// coefficient-dependent shift quantization.

const armMPEG2Dec = `
	ldr r0, =%d          ; n rows
	ldr r1, =12345
	ldr r2, =1664525
	ldr r3, =1013904223
	mov r4, #0           ; csum
blockloop:
	cmp r0, #0
	ble done
	ldr r5, =xtab
	mov r6, #0
fill:
	mul r7, r1, r2
	add r1, r7, r3
	mov r7, r1, lsl #20
	mov r7, r7, lsr #20
	sub r7, r7, #0x800
	str r7, [r5, r6, lsl #2]
	add r6, r6, #1
	cmp r6, #8
	blt fill
	ldr r6, =stab
	ldr r7, =dtab
	mov r8, #0
sd:
	ldr r9, [r5, r8, lsl #2]
	rsb r10, r8, #7
	ldr r10, [r5, r10, lsl #2]
	add r11, r9, r10
	str r11, [r6, r8, lsl #2]
	sub r11, r9, r10
	str r11, [r7, r8, lsl #2]
	add r8, r8, #1
	cmp r8, #4
	blt sd
	ldr r8, [r6]         ; s0
	ldr r9, [r6, #4]     ; s1
	ldr r10, [r6, #8]    ; s2
	ldr r11, [r6, #12]   ; s3
	ldr r5, =ytab
	add r12, r8, r9
	add r12, r12, r10
	add r12, r12, r11
	str r12, [r5]        ; y0
	sub r12, r8, r9
	sub r12, r12, r10
	add r12, r12, r11
	str r12, [r5, #16]   ; y4
	sub r8, r8, r11      ; t = s0-s3
	sub r9, r9, r10      ; u = s1-s2
	ldr r12, =2676
	mul r10, r8, r12
	ldr r12, =1108
	mul r11, r9, r12
	add r10, r10, r11
	mov r10, r10, asr #11
	str r10, [r5, #8]    ; y2
	ldr r12, =1108
	mul r10, r8, r12
	ldr r12, =2676
	mul r11, r9, r12
	sub r10, r10, r11
	mov r10, r10, asr #11
	str r10, [r5, #24]   ; y6
	ldr r8, [r7]         ; d0
	ldr r9, [r7, #4]     ; d1
	ldr r10, [r7, #8]    ; d2
	ldr r11, [r7, #12]   ; d3
	ldr r12, =2841
	mul r6, r8, r12
	ldr r12, =2408
	mul lr, r9, r12
	add r6, r6, lr
	ldr r12, =1609
	mul lr, r10, r12
	add r6, r6, lr
	ldr r12, =565
	mul lr, r11, r12
	add r6, r6, lr
	mov r6, r6, asr #11
	str r6, [r5, #4]     ; y1
	ldr r12, =2408
	mul r6, r8, r12
	ldr r12, =565
	mul lr, r9, r12
	sub r6, r6, lr
	ldr r12, =2841
	mul lr, r10, r12
	sub r6, r6, lr
	ldr r12, =1609
	mul lr, r11, r12
	sub r6, r6, lr
	mov r6, r6, asr #11
	str r6, [r5, #12]    ; y3
	ldr r12, =1609
	mul r6, r8, r12
	ldr r12, =2841
	mul lr, r9, r12
	sub r6, r6, lr
	ldr r12, =565
	mul lr, r10, r12
	add r6, r6, lr
	ldr r12, =2408
	mul lr, r11, r12
	add r6, r6, lr
	mov r6, r6, asr #11
	str r6, [r5, #20]    ; y5
	ldr r12, =565
	mul r6, r8, r12
	ldr r12, =1609
	mul lr, r9, r12
	sub r6, r6, lr
	ldr r12, =2408
	mul lr, r10, r12
	add r6, r6, lr
	ldr r12, =2841
	mul lr, r11, r12
	sub r6, r6, lr
	mov r6, r6, asr #11
	str r6, [r5, #28]    ; y7
	mov r8, #0
csum:
	ldr r9, [r5, r8, lsl #2]
	ldr r12, =2047
	cmp r9, r12
	movgt r9, r12
	mvn r12, r12         ; -2048
	cmp r9, r12
	movlt r9, r12
	mov r9, r9, lsl #16
	mov r9, r9, lsr #16
	rsb r4, r4, r4, lsl #5
	add r4, r4, r9
	add r8, r8, #1
	cmp r8, #8
	blt csum
	sub r0, r0, #1
	b blockloop
done:
	mov r0, r4
	swi #3
	mov r0, #0
	swi #0
xtab: .space 32
stab: .space 16
dtab: .space 16
ytab: .space 32
`

const armMPEG2Enc = `
	ldr r0, =%d          ; n rows
	ldr r1, =12345
	ldr r2, =1664525
	ldr r3, =1013904223
	mov r4, #0           ; csum
blockloop:
	cmp r0, #0
	ble done
	ldr r5, =xtab
	mov r6, #0
fill:
	mul r7, r1, r2
	add r1, r7, r3
	mov r7, r1, lsl #24
	mov r7, r7, lsr #24
	sub r7, r7, #0x80
	str r7, [r5, r6, lsl #2]
	add r6, r6, #1
	cmp r6, #8
	blt fill
	ldr r6, =stab
	ldr r7, =dtab
	mov r8, #0
sd:
	ldr r9, [r5, r8, lsl #2]
	rsb r10, r8, #7
	ldr r10, [r5, r10, lsl #2]
	add r11, r9, r10
	str r11, [r6, r8, lsl #2]
	sub r11, r9, r10
	str r11, [r7, r8, lsl #2]
	add r8, r8, #1
	cmp r8, #4
	blt sd
	ldr r8, [r6]
	ldr r9, [r6, #4]
	ldr r10, [r6, #8]
	ldr r11, [r6, #12]
	ldr r5, =ytab
	add r12, r8, r9
	add r12, r12, r10
	add r12, r12, r11
	str r12, [r5]
	sub r12, r8, r9
	sub r12, r12, r10
	add r12, r12, r11
	str r12, [r5, #16]
	sub r8, r8, r11
	sub r9, r9, r10
	ldr r12, =2676
	mul r10, r8, r12
	ldr r12, =1108
	mul r11, r9, r12
	add r10, r10, r11
	mov r10, r10, asr #11
	str r10, [r5, #8]
	ldr r12, =1108
	mul r10, r8, r12
	ldr r12, =2676
	mul r11, r9, r12
	sub r10, r10, r11
	mov r10, r10, asr #11
	str r10, [r5, #24]
	ldr r8, [r7]
	ldr r9, [r7, #4]
	ldr r10, [r7, #8]
	ldr r11, [r7, #12]
	ldr r12, =2841
	mul r6, r8, r12
	ldr r12, =2408
	mul lr, r9, r12
	add r6, r6, lr
	ldr r12, =1609
	mul lr, r10, r12
	add r6, r6, lr
	ldr r12, =565
	mul lr, r11, r12
	add r6, r6, lr
	mov r6, r6, asr #11
	str r6, [r5, #4]
	ldr r12, =2408
	mul r6, r8, r12
	ldr r12, =565
	mul lr, r9, r12
	sub r6, r6, lr
	ldr r12, =2841
	mul lr, r10, r12
	sub r6, r6, lr
	ldr r12, =1609
	mul lr, r11, r12
	sub r6, r6, lr
	mov r6, r6, asr #11
	str r6, [r5, #12]
	ldr r12, =1609
	mul r6, r8, r12
	ldr r12, =2841
	mul lr, r9, r12
	sub r6, r6, lr
	ldr r12, =565
	mul lr, r10, r12
	add r6, r6, lr
	ldr r12, =2408
	mul lr, r11, r12
	add r6, r6, lr
	mov r6, r6, asr #11
	str r6, [r5, #20]
	ldr r12, =565
	mul r6, r8, r12
	ldr r12, =1609
	mul lr, r9, r12
	sub r6, r6, lr
	ldr r12, =2408
	mul lr, r10, r12
	add r6, r6, lr
	ldr r12, =2841
	mul lr, r11, r12
	sub r6, r6, lr
	mov r6, r6, asr #11
	str r6, [r5, #28]
	mov r8, #0
csum:
	ldr r9, [r5, r8, lsl #2]
	ldr r12, =2047
	cmp r9, r12
	movgt r9, r12
	mvn r12, r12
	cmp r9, r12
	movlt r9, r12
	and r10, r8, #3      ; quantize: v >>= 1+(k&3)
	add r10, r10, #1
	mov r9, r9, asr r10
	mov r9, r9, lsl #16
	mov r9, r9, lsr #16
	rsb r4, r4, r4, lsl #5
	add r4, r4, r9
	add r8, r8, #1
	cmp r8, #8
	blt csum
	sub r0, r0, #1
	b blockloop
done:
	mov r0, r4
	swi #3
	mov r0, #0
	swi #0
xtab: .space 32
stab: .space 16
dtab: .space 16
ytab: .space 32
`
