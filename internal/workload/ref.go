// Package workload provides the benchmark programs of the evaluation:
// six kernels with the computational signature of the MediaBench
// applications the paper measures (gsm decode/encode, g721
// decode/encode, mpeg2 decode/encode), each written in ARM and
// PowerPC assembly against the framework's assemblers, plus exact Go
// reference implementations used to self-check every simulated run.
//
// The kernels stand in for the real MediaBench binaries (a
// substitution documented in DESIGN.md): what the evaluation needs
// from them is the operation mix — multiply-accumulate lattice
// filters (gsm), branchy adaptive quantization (g721) and block
// transforms with saturation (mpeg2) — not bit-exact codec output.
// All input data is generated in-program by a 32-bit linear
// congruential generator so runs are deterministic and need no data
// files.
package workload

// lcg advances the shared linear congruential generator.
func lcg(seed uint32) uint32 { return seed*1664525 + 1013904223 }

const lcgSeed = 12345

// sample converts LCG output into a signed 16-bit sample.
func sample(seed uint32) int32 { return int32(seed&0xffff) - 0x8000 }

// RefGSMEnc runs the short-term analysis lattice filter over n
// samples and returns the checksum the assembly kernels report.
func RefGSMEnc(n int) uint32 {
	var d [8]int32
	var r [8]int32
	for k := 0; k < 8; k++ {
		r[k] = int32(k*2896 + 123)
	}
	seed := uint32(lcgSeed)
	var csum uint32
	for i := 0; i < n; i++ {
		seed = lcg(seed)
		u := sample(seed)
		for k := 0; k < 8; k++ {
			di := d[k]
			tmp := di + (r[k]*u)>>15
			u = u + (r[k]*di)>>15
			d[k] = tmp
		}
		csum += uint32(u)
	}
	return csum
}

// RefGSMDec runs the synthesis (inverse lattice) filter.
func RefGSMDec(n int) uint32 {
	var d [8]int32
	var r [8]int32
	for k := 0; k < 8; k++ {
		r[k] = int32(k*2896 + 123)
	}
	seed := uint32(lcgSeed)
	var csum uint32
	for i := 0; i < n; i++ {
		seed = lcg(seed)
		u := sample(seed)
		for k := 7; k >= 0; k-- {
			u = u - (r[k]*d[k])>>15
			d[k] = d[k] + (r[k]*u)>>15
		}
		csum += uint32(u)
	}
	return csum
}

// stepMul is the ADPCM step-size adaptation table.
var stepMul = [4]int32{230, 230, 307, 409}

func clampPred(p int32) int32 {
	if p > 32767 {
		return 32767
	}
	if p < -32768 {
		return -32768
	}
	return p
}

func adaptStep(step, code int32) int32 {
	step = (step * stepMul[code&3]) >> 8
	if step < 16 {
		return 16
	}
	if step > 16384 {
		return 16384
	}
	return step
}

// RefG721Enc quantizes n samples with a 3-bit adaptive quantizer.
func RefG721Enc(n int) uint32 {
	step, pred := int32(16), int32(0)
	seed := uint32(lcgSeed)
	var csum uint32
	for i := 0; i < n; i++ {
		seed = lcg(seed)
		s := sample(seed)
		diff := s - pred
		code := int32(0)
		if diff < 0 {
			code = 4
			diff = -diff
		}
		if diff >= step {
			code |= 2
			diff -= step
		}
		if diff >= step>>1 {
			code |= 1
		}
		dq := (step * (2*(code&3) + 1)) >> 2
		if code&4 != 0 {
			dq = -dq
		}
		pred = clampPred(pred + dq)
		step = adaptStep(step, code)
		csum = csum*31 + uint32(code)
	}
	return csum + uint32(pred)
}

// RefG721Dec reconstructs samples from LCG-generated 3-bit codes.
func RefG721Dec(n int) uint32 {
	step, pred := int32(16), int32(0)
	seed := uint32(lcgSeed)
	var csum uint32
	for i := 0; i < n; i++ {
		seed = lcg(seed)
		code := int32(seed & 7)
		dq := (step * (2*(code&3) + 1)) >> 2
		if code&4 != 0 {
			dq = -dq
		}
		pred = clampPred(pred + dq)
		step = adaptStep(step, code)
		csum = csum*31 + uint32(pred)&0xffff
	}
	return csum
}

// DCT constants (11-bit fixed point, the usual integer-IDCT weights).
const (
	w1 = 2841
	w2 = 2676
	w3 = 2408
	w5 = 1609
	w6 = 1108
	w7 = 565
)

// idctRow is the 8-point row transform shared by the mpeg2 kernels'
// references: a real even/odd butterfly structure with fixed-point
// multiplies and a final saturation.
func idctRow(x *[8]int32) {
	s0, s1, s2, s3 := x[0]+x[7], x[1]+x[6], x[2]+x[5], x[3]+x[4]
	d0, d1, d2, d3 := x[0]-x[7], x[1]-x[6], x[2]-x[5], x[3]-x[4]
	y := [8]int32{
		s0 + s1 + s2 + s3,
		(d0*w1 + d1*w3 + d2*w5 + d3*w7) >> 11,
		((s0-s3)*w2 + (s1-s2)*w6) >> 11,
		(d0*w3 - d1*w7 - d2*w1 - d3*w5) >> 11,
		s0 - s1 - s2 + s3,
		(d0*w5 - d1*w1 + d2*w7 + d3*w3) >> 11,
		((s0-s3)*w6 - (s1-s2)*w2) >> 11,
		(d0*w7 - d1*w5 + d2*w3 - d3*w1) >> 11,
	}
	for k := 0; k < 8; k++ {
		v := y[k]
		if v > 2047 {
			v = 2047
		}
		if v < -2048 {
			v = -2048
		}
		x[k] = v
	}
}

// RefMPEG2Dec transforms n 8-sample rows and checksums the saturated
// outputs.
func RefMPEG2Dec(n int) uint32 {
	seed := uint32(lcgSeed)
	var csum uint32
	for i := 0; i < n; i++ {
		var x [8]int32
		for k := 0; k < 8; k++ {
			seed = lcg(seed)
			x[k] = int32(seed&0xfff) - 0x800
		}
		idctRow(&x)
		for k := 0; k < 8; k++ {
			csum = csum*31 + uint32(x[k])&0xffff
		}
	}
	return csum
}

// RefMPEG2Enc runs the forward direction: the same butterfly followed
// by coefficient-dependent shift quantization.
func RefMPEG2Enc(n int) uint32 {
	seed := uint32(lcgSeed)
	var csum uint32
	for i := 0; i < n; i++ {
		var x [8]int32
		for k := 0; k < 8; k++ {
			seed = lcg(seed)
			x[k] = int32(seed&0xff) - 0x80
		}
		idctRow(&x)
		for k := 0; k < 8; k++ {
			v := x[k] >> uint(1+(k&3)) // quantize
			csum = csum*31 + uint32(v)&0xffff
		}
	}
	return csum
}
