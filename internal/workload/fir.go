package workload

// A 16-bit FIR filter kernel (dsp/fir): the classic DSP inner loop
// over int16 samples held in memory, exercising the halfword
// load/store instructions (ldrsh/strh on ARM, lha/sth on PowerPC)
// with a multiply-accumulate per tap.

const firTaps = 8

// RefDSPFIR filters n LCG-generated 16-bit samples through an 8-tap
// FIR with fixed coefficients, checksumming the saturated outputs.
func RefDSPFIR(n int) uint32 {
	var taps [firTaps]int32
	for k := 0; k < firTaps; k++ {
		taps[k] = int32(k*1103 - 4000)
	}
	var delay [firTaps]int32 // int16 values, sign-extended
	seed := uint32(lcgSeed)
	var csum uint32
	for i := 0; i < n; i++ {
		seed = lcg(seed)
		s := sample(seed) // signed 16-bit
		// Shift the delay line (stored as halfwords in memory).
		for k := firTaps - 1; k > 0; k-- {
			delay[k] = delay[k-1]
		}
		delay[0] = s
		acc := int32(0)
		for k := 0; k < firTaps; k++ {
			acc += (delay[k] * taps[k]) >> 8
		}
		// Saturate to int16 and store back as a halfword.
		if acc > 32767 {
			acc = 32767
		}
		if acc < -32768 {
			acc = -32768
		}
		csum = csum*31 + uint32(acc)&0xffff
	}
	return csum
}

const armDSPFIR = `
	ldr r0, =%d          ; n
	ldr r1, =12345
	ldr r2, =1664525
	ldr r3, =1013904223
	mov r4, #0           ; csum
	; init taps[k] = k*1103 - 4000 (words) and delay (halfwords) = 0
	ldr r5, =taps
	ldr r6, =delay
	mov r7, #0
	ldr r8, =1103
init:
	mul r9, r7, r8
	ldr r10, =4000
	sub r9, r9, r10
	str r9, [r5, r7, lsl #2]
	mov r10, #0
	mov r11, r7, lsl #1
	strh r10, [r6, r11]
	add r7, r7, #1
	cmp r7, #8
	blt init
outer:
	cmp r0, #0
	ble done
	mul r7, r1, r2
	add r1, r7, r3       ; seed
	mov r7, r1, lsl #16
	mov r7, r7, lsr #16
	sub r7, r7, #0x8000  ; s (signed 16-bit in a word)
	; shift the halfword delay line down
	mov r8, #7
shift:
	sub r9, r8, #1
	mov r10, r9, lsl #1
	ldrsh r11, [r6, r10]
	mov r10, r8, lsl #1
	strh r11, [r6, r10]
	subs r8, r8, #1
	bgt shift
	strh r7, [r6]        ; delay[0] = s
	; acc = sum((delay[k]*taps[k])>>8)
	mov r8, #0           ; k
	mov r9, #0           ; acc
taps_loop:
	mov r10, r8, lsl #1
	ldrsh r11, [r6, r10]
	ldr r12, [r5, r8, lsl #2]
	mul r10, r11, r12
	add r9, r9, r10, asr #8
	add r8, r8, #1
	cmp r8, #8
	blt taps_loop
	; saturate to int16
	ldr r10, =32767
	cmp r9, r10
	movgt r9, r10
	mvn r11, r10         ; -32768
	cmp r9, r11
	movlt r9, r11
	mov r9, r9, lsl #16
	mov r9, r9, lsr #16
	rsb r4, r4, r4, lsl #5
	add r4, r4, r9
	sub r0, r0, #1
	b outer
done:
	mov r0, r4
	swi #3
	mov r0, #0
	swi #0
taps:  .space 32
delay: .space 16
`

const ppcDSPFIR = `%s` + ppcProlog + `
	li r8, taps
	li r9, delay
	li r10, 0
	li r11, 1103
init:
	mullw r12, r10, r11
	addi r12, r12, -4000
	slwi r14, r10, 2
	stwx r12, r8, r14
	li r15, 0
	slwi r14, r10, 1
	sthx r15, r9, r14
	addi r10, r10, 1
	cmpwi r10, 8
	blt init
outer:
	cmpwi r3, 0
	ble done
	mullw r10, r4, r5
	add r4, r10, r6      ; seed
	andi. r10, r4, 0xffff
	addi r10, r10, -32768 ; s
	li r11, 7
shift:
	addi r12, r11, -1
	slwi r14, r12, 1
	lhax r15, r9, r14
	slwi r14, r11, 1
	sthx r15, r9, r14
	addi r11, r11, -1
	cmpwi r11, 0
	bgt shift
	sth r10, 0(r9)       ; delay[0] = s
	li r11, 0            ; k
	li r12, 0            ; acc
taps_loop:
	slwi r14, r11, 1
	lhax r15, r9, r14
	slwi r14, r11, 2
	lwzx r16, r8, r14
	mullw r15, r15, r16
	srawi r15, r15, 8
	add r12, r12, r15
	addi r11, r11, 1
	cmpwi r11, 8
	blt taps_loop
	li r30, 32767
	cmpw r12, r30
	ble nomax
	mr r12, r30
nomax:
	neg r15, r30
	addi r15, r15, -1
	cmpw r12, r15
	bge nomin
	mr r12, r15
nomin:
	andi. r12, r12, 0xffff
	slwi r15, r7, 5
	sub r7, r15, r7
	add r7, r7, r12
	addi r3, r3, -1
	b outer
` + ppcEpilog + `
taps:  .space 32
delay: .space 16
`
