package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/osm"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	rows, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want the 6 MediaBench kernels", len(rows))
	}
	for _, r := range rows {
		// The paper's differences range from -1.5% to +3%; ours use an
		// independent oracle with slightly different memory constants,
		// so require single digits.
		if math.Abs(r.DiffPct) > 9 {
			t.Errorf("%s: difference %.2f%% too large for a validated model", r.Bench, r.DiffPct)
		}
		if r.OracleCycles == 0 || r.ModelCycles == 0 {
			t.Errorf("%s: empty measurement", r.Bench)
		}
	}
	out := Table1Table(rows).String()
	if !strings.Contains(out, "gsm/dec") || !strings.Contains(out, "difference") {
		t.Errorf("table rendering wrong:\n%s", out)
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	rows, baselines, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	var total Table2Row
	for _, r := range rows {
		if r.Part == "Total" {
			total = r
		}
	}
	if total.SA == 0 || total.PPC == 0 {
		t.Fatal("missing totals")
	}
	// Paper shape: the PPC model is larger than the SA model, and the
	// hardware-centric baseline is at least comparable in size to the
	// OSM PPC model despite approximating far less wiring than real
	// SystemC (EXPERIMENTS.md discusses the measured ratios).
	if total.PPC <= total.SA {
		t.Errorf("PPC-750 model (%d) should be larger than SA-1100 (%d)", total.PPC, total.SA)
	}
	for name, loc := range baselines {
		if strings.Contains(name, "hwcentric") && float64(loc) < 0.8*float64(total.PPC) {
			t.Errorf("hardware-centric baseline (%d) implausibly small next to the OSM PPC model (%d)", loc, total.PPC)
		}
	}
	out := Table2Table(rows, baselines).String()
	if !strings.Contains(out, "Modules with TMI") {
		t.Errorf("table rendering wrong:\n%s", out)
	}
}

func TestSpeedARMShape(t *testing.T) {
	if raceEnabled {
		t.Skip("absolute-speed floor is meaningless under the race detector")
	}
	rs, err := SpeedARM(1, osm.EngineEvent)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].CyclesPerSec <= 0 || rs[1].CyclesPerSec <= 0 {
		t.Fatalf("bad results: %+v", rs)
	}
	// Identical timing rules, so cycle counts must be close (the two
	// simulators match exactly when configured identically).
	if rs[0].Cycles != rs[1].Cycles {
		t.Errorf("cycle counts differ: %d vs %d", rs[0].Cycles, rs[1].Cycles)
	}
	// The paper reports OSM at 650k cycles/sec, 1.18x its
	// SimpleScalar baseline. Our hand-coded baseline is far leaner
	// than 2003 SimpleScalar, so we assert the weaker, honest shape
	// (documented in EXPERIMENTS.md): the OSM model stays within an
	// order of magnitude of the lean baseline and beats the paper's
	// absolute number outright.
	ratio := rs[0].CyclesPerSec / rs[1].CyclesPerSec
	if ratio < 0.1 {
		t.Errorf("speed ratio OSM/SS = %.2f; OSM model unreasonably slow", ratio)
	}
	if rs[0].CyclesPerSec < 650_000/2 {
		t.Errorf("OSM StrongARM at %.0f cycles/sec, below even the paper's 2003 hardware", rs[0].CyclesPerSec)
	}
	if out := SpeedTable("t", rs).String(); !strings.Contains(out, "cycles/sec") {
		t.Error("speed table rendering wrong")
	}
}

func TestSpeedPPCShape(t *testing.T) {
	if raceEnabled {
		t.Skip("absolute-speed floor is meaningless under the race detector")
	}
	rs, err := SpeedPPC(1, osm.EngineEvent)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports the OSM 750 model at 250k cycles/sec, 4x its
	// SystemC baseline. Our hardware-centric baseline is a compiled
	// Go approximation without SystemC's coroutine scheduler, so the
	// 4x does not reproduce (documented in EXPERIMENTS.md); we assert
	// the absolute bar instead plus a sanity bound on the ratio.
	if rs[0].CyclesPerSec < 250_000/2 {
		t.Errorf("OSM PPC-750 at %.0f cycles/sec, below even the paper's 2003 hardware", rs[0].CyclesPerSec)
	}
	ratio := rs[0].CyclesPerSec / rs[1].CyclesPerSec
	if ratio < 0.1 {
		t.Errorf("OSM/HW speed ratio = %.2f; OSM model unreasonably slow", ratio)
	}
}

// TestEngineMatrixShape checks the machine-readable engine matrix
// behind osmbench -json: every (target, workload) pair is measured
// under all four engines, and within a pair the engines agree on the
// simulated cycle count (speed may differ, timing must not).
func TestEngineMatrixShape(t *testing.T) {
	samples, err := EngineMatrix(1)
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ target, wl string }
	byPair := map[key]map[string]EngineSample{}
	for _, s := range samples {
		if s.Cycles == 0 || s.CyclesPerSec <= 0 {
			t.Errorf("%s/%s/%s: empty measurement: %+v", s.Target, s.Workload, s.Engine, s)
		}
		k := key{s.Target, s.Workload}
		if byPair[k] == nil {
			byPair[k] = map[string]EngineSample{}
		}
		byPair[k][s.Engine] = s
	}
	for k, engs := range byPair {
		if len(engs) != 4 {
			t.Errorf("%s/%s: %d engines measured, want 4", k.target, k.wl, len(engs))
		}
		ref := engs["scan"]
		for name, s := range engs {
			if s.Cycles != ref.Cycles {
				t.Errorf("%s/%s: %s simulated %d cycles, scan %d", k.target, k.wl, name, s.Cycles, ref.Cycles)
			}
		}
	}
	targets := map[string]bool{}
	for k := range byPair {
		targets[k.target] = true
	}
	if !targets["strongarm"] || !targets["ppc750"] {
		t.Errorf("matrix misses a case study: %v", targets)
	}
}

func TestEngineSpeedTableReferences(t *testing.T) {
	rs := []SpeedResult{
		{Name: "generated", CyclesPerSec: 400},
		{Name: "compiled", CyclesPerSec: 300},
		{Name: "event", CyclesPerSec: 200},
		{Name: "scan", CyclesPerSec: 100},
	}
	out := EngineSpeedTable("t", rs).String()
	for _, want := range []string{"vs scan", "vs event", "4.00x", "2.00x", "1.50x"} {
		if !strings.Contains(out, want) {
			t.Errorf("engine table lacks %q:\n%s", want, out)
		}
	}
}

func TestValidatePPCWithinTolerance(t *testing.T) {
	rows, err := ValidatePPC(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// MediaBench-like kernels agree within 8%; spec/crc (a
		// mispredicted branch every few instructions) amplifies the
		// arbitration-order differences between the two independent
		// implementations to ~11% (EXPERIMENTS.md discusses this).
		tol := 8.0
		if strings.HasPrefix(r.Bench, "spec/") {
			tol = 12.0
		}
		if math.Abs(r.DiffPct) > tol {
			t.Errorf("%s: %.2f%% timing difference between the two 750 models", r.Bench, r.DiffPct)
		}
	}
	if out := ValidateTable(rows).String(); !strings.Contains(out, "OSM(cyc)") {
		t.Error("validate table rendering wrong")
	}
}

func TestFig2ReservationStationsHelp(t *testing.T) {
	rows, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	helped := 0
	for _, r := range rows {
		if r.WithRS < r.WithoutRS {
			helped++
		}
		if r.WithRS > r.WithoutRS {
			t.Errorf("%s: removing reservation stations must not speed the model up (%d vs %d)",
				r.Bench, r.WithRS, r.WithoutRS)
		}
	}
	if helped == 0 {
		t.Error("reservation stations helped no kernel at all")
	}
	if out := Fig2Table(rows).String(); !strings.Contains(out, "without RS") {
		t.Error("fig2 table rendering wrong")
	}
}
