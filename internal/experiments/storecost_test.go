package experiments

import (
	"bytes"
	"testing"

	"repro/internal/runner"
	"repro/internal/store"
)

// storeChainCase is one bytes-on-disk measurement: a 10-checkpoint
// chain of one case-study model, checkpointed every 2000 cycles.
type storeChainCase struct {
	spec     runner.Spec
	interval uint64
	count    int
}

var storeChainCases = []storeChainCase{
	{spec: runner.Spec{Target: "strongarm", Workload: "gsm/dec", N: 400}, interval: 2000, count: 10},
	{spec: runner.Spec{Target: "ppc750", Workload: "mpeg2/enc", N: 200}, interval: 2000, count: 10},
}

// chainSnapshots steps the model and snapshots it every c.interval
// cycles, c.count times.
func chainSnapshots(t *testing.T, c storeChainCase) ([][]byte, []uint64) {
	t.Helper()
	inst, err := runner.New(c.spec)
	if err != nil {
		t.Fatal(err)
	}
	var blobs [][]byte
	var cycles []uint64
	for len(blobs) < c.count {
		target := uint64(len(blobs)+1) * c.interval
		for inst.Cycle() < target && !inst.Done() {
			if err := inst.StepCycle(); err != nil {
				t.Fatal(err)
			}
		}
		blob, err := inst.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
		cycles = append(cycles, inst.Cycle())
		if inst.Done() {
			break
		}
	}
	if len(blobs) < c.count {
		t.Fatalf("model finished after %d checkpoints, want %d — shrink the interval", len(blobs), c.count)
	}
	return blobs, cycles
}

// TestStoreChainCostWithinBudget is the PR's storage acceptance
// criterion: a 10-checkpoint chain stored through the chunk store
// (default options: 4 KiB fixed chunks, per-chunk flate) must cost at
// most 25% of the raw concatenated snapshot bytes on both case
// studies, and every checkpoint must reassemble byte-identically.
// EXPERIMENTS.md records the measured ratios.
func TestStoreChainCostWithinBudget(t *testing.T) {
	for _, c := range storeChainCases {
		c := c
		t.Run(c.spec.Target, func(t *testing.T) {
			blobs, cycles := chainSnapshots(t, c)
			st, err := store.Open(t.TempDir(), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			var raw uint64
			for i, blob := range blobs {
				raw += uint64(len(blob))
				if _, err := st.Put("chain", cycles[i], blob); err != nil {
					t.Fatal(err)
				}
			}
			stats, err := st.Stat()
			if err != nil {
				t.Fatal(err)
			}
			// Disk cost = chunk files plus the run index.
			disk := uint64(stats.ChunkBytes) + indexBytes(t, st)
			ratio := float64(disk) / float64(raw)
			t.Logf("%s %s n=%d: raw %d B over %d checkpoints, on disk %d B (%.1f%%, %d chunks)",
				c.spec.Target, c.spec.Workload, c.spec.N, raw, len(blobs), disk, 100*ratio, stats.Chunks)
			if ratio > 0.25 {
				t.Fatalf("chain costs %.1f%% of raw bytes, budget is 25%%", 100*ratio)
			}
			for i, blob := range blobs {
				got, err := st.Get("chain", cycles[i])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, blob) {
					t.Fatalf("checkpoint %d (cycle %d) not byte-identical after reassembly", i, cycles[i])
				}
			}
		})
	}
}

func indexBytes(t *testing.T, st *store.Store) uint64 {
	t.Helper()
	entries, err := st.Entries("chain")
	if err != nil {
		t.Fatal(err)
	}
	// Entry framing per index.go: 28 bytes per entry + 12 per chunk
	// ref, plus the fixed header; counting the encoded entries is
	// enough for a cost ratio.
	var n uint64
	for _, e := range entries {
		n += 28 + 12*uint64(len(e.Chunks))
	}
	return n
}
