package experiments

import (
	"bytes"
	"testing"

	"repro/internal/osm"
	"repro/internal/sim/ppc750"
	"repro/internal/sim/strongarm"
	"repro/internal/workload"
)

// Differential checkpoint tests: for every workload/model pair and
// both schedulers, run-to-cycle-C → snapshot → restore-into-a-fresh-
// simulator → run-to-end must produce the same transition trace,
// cycle count, reported values and final architectural state as an
// uninterrupted run. Director step numbers are part of the snapshot,
// so the resumed trace is compared directly against the tail of the
// uninterrupted trace (transitions with Step >= C).

// checkSim is the model-independent surface the checkpoint tests
// drive; both case-study simulators implement it.
type checkSim interface {
	StepCycle() error
	Cycle() uint64
	Done() bool
	Snapshot() ([]byte, error)
	Restore([]byte) error
	Director() *osm.Director
}

// ckptFixture builds fresh identically-configured simulators on
// demand and extracts the run's observables.
type ckptFixture struct {
	label string
	build func(t *testing.T) checkSim
	final func(s checkSim) diffRun
}

func armFixture(t *testing.T, w *workload.Workload, n int) ckptFixture {
	t.Helper()
	p, err := w.ARMProgram(n)
	if err != nil {
		t.Fatal(err)
	}
	return ckptFixture{
		label: "strongarm/" + w.Name,
		build: func(t *testing.T) checkSim {
			s, err := strongarm.New(p, strongarm.Config{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		final: func(s checkSim) diffRun {
			sim := s.(*strongarm.Sim)
			st, err := sim.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			return diffRun{
				cycles:   st.Cycles,
				instrs:   st.Instrs,
				reported: sim.ISS.Reported,
				regs:     sim.ISS.CPU.R[:],
			}
		},
	}
}

func ppcFixture(t *testing.T, w *workload.Workload, n int) ckptFixture {
	t.Helper()
	p, err := w.PPCProgram(n)
	if err != nil {
		t.Fatal(err)
	}
	return ckptFixture{
		label: "ppc750/" + w.Name,
		build: func(t *testing.T) checkSim {
			s, err := ppc750.New(p, ppc750.Config{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		final: func(s checkSim) diffRun {
			sim := s.(*ppc750.Sim)
			st, err := sim.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			return diffRun{
				cycles:   st.Cycles,
				instrs:   st.Instrs,
				reported: sim.ISS.Reported,
				regs:     sim.ISS.CPU.R[:],
			}
		},
	}
}

func runToEnd(t *testing.T, s checkSim, limit uint64) {
	t.Helper()
	for !s.Done() {
		if s.Cycle() >= limit {
			t.Fatalf("run exceeded %d cycles", limit)
		}
		if err := s.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
}

func runCycles(t *testing.T, s checkSim, n uint64) {
	t.Helper()
	for i := uint64(0); i < n && !s.Done(); i++ {
		if err := s.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
}

const ckptLimit = 2_000_000

func checkpointResume(t *testing.T, fx ckptFixture, eng osm.Engine) {
	t.Helper()
	// Uninterrupted reference run with a full trace.
	ref := fx.build(t)
	ref.Director().Engine = eng
	refRec := osm.NewRecorder()
	ref.Director().Tracer = refRec
	runToEnd(t, ref, ckptLimit)
	refRun := fx.final(ref)
	refRun.events = refRec.Events()
	total := refRun.cycles
	if total < 8 {
		t.Fatalf("%s: reference run too short (%d cycles) to checkpoint meaningfully", fx.label, total)
	}

	for _, c := range []uint64{total / 4, total / 2, 3 * total / 4} {
		// Fresh simulator to cycle C, snapshot there.
		src := fx.build(t)
		src.Director().Engine = eng
		runCycles(t, src, c)
		blob, err := src.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot at %d: %v", fx.label, c, err)
		}
		// Snapshot must be deterministic: a second fresh run to the
		// same cycle yields identical bytes.
		src2 := fx.build(t)
		src2.Director().Engine = eng
		runCycles(t, src2, c)
		blob2, err := src2.Snapshot()
		if err != nil {
			t.Fatalf("%s: second snapshot at %d: %v", fx.label, c, err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("%s: snapshot at cycle %d is not deterministic (%d vs %d bytes)",
				fx.label, c, len(blob), len(blob2))
		}

		// Restore into a fresh simulator and run to the end.
		dst := fx.build(t)
		dst.Director().Engine = eng
		if err := dst.Restore(blob); err != nil {
			t.Fatalf("%s: restore at %d: %v", fx.label, c, err)
		}
		if dst.Cycle() != src.Cycle() {
			t.Fatalf("%s: restored at cycle %d, snapshot taken at %d", fx.label, dst.Cycle(), src.Cycle())
		}
		dstRec := osm.NewRecorder()
		dst.Director().Tracer = dstRec
		runToEnd(t, dst, ckptLimit)
		got := fx.final(dst)
		got.events = dstRec.Events()

		// The resumed trace must equal the uninterrupted trace's tail.
		var tail []osm.Event
		step := dst.Director().StepCount()
		_ = step
		for _, ev := range refRun.events {
			if ev.Step >= c {
				tail = append(tail, ev)
			}
		}
		want := refRun
		want.events = tail
		compareRuns(t, fx.label, want, got)
	}
}

func ckptWorkloadFixtures(t *testing.T) []ckptFixture {
	t.Helper()
	var fxs []ckptFixture
	for _, wl := range diffWorkloads(t) {
		fxs = append(fxs, armFixture(t, wl.w, wl.n), ppcFixture(t, wl.w, wl.n))
	}
	return fxs
}

func TestCheckpointResumeScan(t *testing.T) {
	for _, fx := range ckptWorkloadFixtures(t) {
		t.Run(fx.label, func(t *testing.T) { checkpointResume(t, fx, osm.EngineScan) })
	}
}

func TestCheckpointResumeEvent(t *testing.T) {
	for _, fx := range ckptWorkloadFixtures(t) {
		t.Run(fx.label, func(t *testing.T) { checkpointResume(t, fx, osm.EngineEvent) })
	}
}

func TestCheckpointResumeCompiled(t *testing.T) {
	for _, fx := range ckptWorkloadFixtures(t) {
		t.Run(fx.label, func(t *testing.T) { checkpointResume(t, fx, osm.EngineCompiled) })
	}
}

func TestCheckpointResumeGenerated(t *testing.T) {
	for _, fx := range ckptWorkloadFixtures(t) {
		t.Run(fx.label, func(t *testing.T) { checkpointResume(t, fx, osm.EngineGenerated) })
	}
}

// TestCheckpointCrossEngine checks that snapshots are engine-neutral
// in every direction: a snapshot taken mid-run under the compiled or
// the generated engine restores into a simulator running any of the
// four engines (compiled guard programs and generated-function
// resolutions are derived from the model, never serialized), at all
// three cut points, and the resumed run reproduces the uninterrupted
// reference trace's tail exactly.
func TestCheckpointCrossEngine(t *testing.T) {
	for _, fx := range ckptWorkloadFixtures(t) {
		t.Run(fx.label, func(t *testing.T) {
			ref := fx.build(t)
			refRec := osm.NewRecorder()
			ref.Director().Tracer = refRec
			runToEnd(t, ref, ckptLimit)
			refRun := fx.final(ref)
			refRun.events = refRec.Events()
			total := refRun.cycles

			for _, srcEng := range []osm.Engine{osm.EngineCompiled, osm.EngineGenerated} {
				for _, c := range []uint64{total / 4, total / 2, 3 * total / 4} {
					src := fx.build(t)
					src.Director().Engine = srcEng
					runCycles(t, src, c)
					blob, err := src.Snapshot()
					if err != nil {
						t.Fatalf("%v snapshot at %d: %v", srcEng, c, err)
					}
					var tail []osm.Event
					for _, ev := range refRun.events {
						if ev.Step >= c {
							tail = append(tail, ev)
						}
					}
					want := refRun
					want.events = tail
					for _, eng := range []osm.Engine{osm.EngineScan, osm.EngineEvent, osm.EngineCompiled, osm.EngineGenerated} {
						dst := fx.build(t)
						dst.Director().Engine = eng
						if err := dst.Restore(blob); err != nil {
							t.Fatalf("restore %v snapshot into %v: %v", srcEng, eng, err)
						}
						dstRec := osm.NewRecorder()
						dst.Director().Tracer = dstRec
						runToEnd(t, dst, ckptLimit)
						got := fx.final(dst)
						got.events = dstRec.Events()
						compareRuns(t, fx.label+"/"+srcEng.String()+"@"+eng.String(), want, got)
					}
				}
			}
		})
	}
}

// Snapshot overhead benchmarks; bytes/snapshot is reported as a
// custom metric (the EXPERIMENTS.md checkpoint-overhead numbers).
func BenchmarkSnapshotStrongARM(b *testing.B) {
	w := workload.ByName("gsm/dec")
	p, err := w.ARMProgram(60)
	if err != nil {
		b.Fatal(err)
	}
	s, err := strongarm.New(p, strongarm.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := s.StepCycle(); err != nil {
			b.Fatal(err)
		}
	}
	blob, err := s.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
	// ResetTimer discards previously reported metrics, so report after
	// the loop.
	b.ReportMetric(float64(len(blob)), "bytes/snapshot")
}

func BenchmarkSnapshotPPC750(b *testing.B) {
	w := workload.ByName("gsm/dec")
	p, err := w.PPCProgram(60)
	if err != nil {
		b.Fatal(err)
	}
	s, err := ppc750.New(p, ppc750.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := s.StepCycle(); err != nil {
			b.Fatal(err)
		}
	}
	blob, err := s.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blob)), "bytes/snapshot")
}
