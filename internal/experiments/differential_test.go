package experiments

import (
	"testing"

	"repro/internal/osm"
	"repro/internal/sim/ppc750"
	"repro/internal/sim/strongarm"
	"repro/internal/workload"
)

// These tests run the two case-study models under every execution
// engine — the reference scan scheduler, the event-driven scheduler,
// the compiled guard-program engine and the generated-code engine
// (edges_gen.go) — in lockstep and require
// bit-identical behavior: the full transition trace (and its running
// checksum), the cycle count, and the final architectural state. They
// are the system-level counterpart of the model-level equivalence
// tests in internal/osm — if an engine ever diverges from Figure 3 on
// a real machine description, these fail with the first differing
// transition.

// diffRun captures everything observable about one simulation run.
type diffRun struct {
	events   []osm.Event
	checksum uint64
	cycles   uint64
	instrs   uint64
	reported []uint32
	regs     []uint32
}

func compareRuns(t *testing.T, label string, ref, got diffRun) {
	t.Helper()
	n := len(ref.events)
	if len(got.events) < n {
		n = len(got.events)
	}
	for i := 0; i < n; i++ {
		if ref.events[i] != got.events[i] {
			t.Fatalf("%s: traces diverge at transition %d:\n  ref: %+v\n  got: %+v",
				label, i, ref.events[i], got.events[i])
		}
	}
	if len(ref.events) != len(got.events) {
		t.Fatalf("%s: trace lengths differ: ref %d vs got %d", label, len(ref.events), len(got.events))
	}
	if ref.checksum != got.checksum {
		t.Fatalf("%s: trace checksums differ: %#x vs %#x", label, ref.checksum, got.checksum)
	}
	if ref.cycles != got.cycles || ref.instrs != got.instrs {
		t.Fatalf("%s: totals differ: ref %d cycles/%d instrs vs got %d cycles/%d instrs",
			label, ref.cycles, ref.instrs, got.cycles, got.instrs)
	}
	if len(ref.reported) != len(got.reported) {
		t.Fatalf("%s: reported-value counts differ: %d vs %d", label, len(ref.reported), len(got.reported))
	}
	for i := range ref.reported {
		if ref.reported[i] != got.reported[i] {
			t.Fatalf("%s: reported value %d differs: %d vs %d", label, i, ref.reported[i], got.reported[i])
		}
	}
	for i := range ref.regs {
		if ref.regs[i] != got.regs[i] {
			t.Fatalf("%s: final r%d differs: %#x vs %#x", label, i, ref.regs[i], got.regs[i])
		}
	}
}

func runARMDiff(t *testing.T, w *workload.Workload, n int, restart bool, eng osm.Engine) diffRun {
	t.Helper()
	p, err := w.ARMProgram(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := strongarm.New(p, strongarm.Config{Restart: restart, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	rec := osm.NewRecorder()
	s.Director().Tracer = rec
	st, err := s.Run(20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return diffRun{
		events:   rec.Events(),
		checksum: rec.Checksum(),
		cycles:   st.Cycles,
		instrs:   st.Instrs,
		reported: s.ISS.Reported,
		regs:     s.ISS.CPU.R[:],
	}
}

func runPPCDiff(t *testing.T, w *workload.Workload, n int, noRestart bool, eng osm.Engine) diffRun {
	t.Helper()
	p, err := w.PPCProgram(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ppc750.New(p, ppc750.Config{NoRestart: noRestart, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	rec := osm.NewRecorder()
	s.Director().Tracer = rec
	st, err := s.Run(20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return diffRun{
		events:   rec.Events(),
		checksum: rec.Checksum(),
		cycles:   st.Cycles,
		instrs:   st.Instrs,
		reported: s.ISS.Reported,
		regs:     s.ISS.CPU.R[:],
	}
}

// diffWorkloads returns two short but distinct workloads: a control-
// heavy decoder loop and a shift/xor kernel.
func diffWorkloads(t *testing.T) []struct {
	w *workload.Workload
	n int
} {
	t.Helper()
	gsm := workload.ByName("gsm/dec")
	crc := workload.ByName("spec/crc")
	if gsm == nil || crc == nil {
		t.Fatal("workload set is missing gsm/dec or spec/crc")
	}
	return []struct {
		w *workload.Workload
		n int
	}{{gsm, 60}, {crc, 50}}
}

func TestDifferentialStrongARM(t *testing.T) {
	for _, wl := range diffWorkloads(t) {
		for _, restart := range []bool{false, true} {
			ref := runARMDiff(t, wl.w, wl.n, restart, osm.EngineScan)
			if len(ref.events) == 0 {
				t.Fatalf("%s: reference run recorded no transitions", wl.w.Name)
			}
			for _, eng := range []osm.Engine{osm.EngineEvent, osm.EngineCompiled, osm.EngineGenerated} {
				got := runARMDiff(t, wl.w, wl.n, restart, eng)
				label := wl.w.Name + "/" + eng.String()
				if restart {
					label += "/restart"
				}
				compareRuns(t, label, ref, got)
			}
		}
	}
}

func TestDifferentialPPC750(t *testing.T) {
	for _, wl := range diffWorkloads(t) {
		for _, noRestart := range []bool{false, true} {
			ref := runPPCDiff(t, wl.w, wl.n, noRestart, osm.EngineScan)
			if len(ref.events) == 0 {
				t.Fatalf("%s: reference run recorded no transitions", wl.w.Name)
			}
			for _, eng := range []osm.Engine{osm.EngineEvent, osm.EngineCompiled, osm.EngineGenerated} {
				got := runPPCDiff(t, wl.w, wl.n, noRestart, eng)
				label := wl.w.Name + "/" + eng.String()
				if noRestart {
					label += "/norestart"
				}
				compareRuns(t, label, ref, got)
			}
		}
	}
}
