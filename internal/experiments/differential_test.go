package experiments

import (
	"testing"

	"repro/internal/osm"
	"repro/internal/sim/ppc750"
	"repro/internal/sim/strongarm"
	"repro/internal/workload"
)

// These tests run the two case-study models under the reference scan
// scheduler and the event-driven scheduler in lockstep and require
// bit-identical behavior: the full transition trace, the cycle count,
// and the final architectural state. They are the system-level
// counterpart of the model-level equivalence tests in internal/osm —
// if the event-driven director ever diverges from Figure 3 on a real
// machine description, these fail with the first differing
// transition.

// diffRun captures everything observable about one simulation run.
type diffRun struct {
	events   []osm.Event
	cycles   uint64
	instrs   uint64
	reported []uint32
	regs     []uint32
}

func compareRuns(t *testing.T, label string, scan, event diffRun) {
	t.Helper()
	n := len(scan.events)
	if len(event.events) < n {
		n = len(event.events)
	}
	for i := 0; i < n; i++ {
		if scan.events[i] != event.events[i] {
			t.Fatalf("%s: traces diverge at transition %d:\n  scan:  %+v\n  event: %+v",
				label, i, scan.events[i], event.events[i])
		}
	}
	if len(scan.events) != len(event.events) {
		t.Fatalf("%s: trace lengths differ: scan %d vs event %d", label, len(scan.events), len(event.events))
	}
	if scan.cycles != event.cycles || scan.instrs != event.instrs {
		t.Fatalf("%s: totals differ: scan %d cycles/%d instrs vs event %d cycles/%d instrs",
			label, scan.cycles, scan.instrs, event.cycles, event.instrs)
	}
	if len(scan.reported) != len(event.reported) {
		t.Fatalf("%s: reported-value counts differ: %d vs %d", label, len(scan.reported), len(event.reported))
	}
	for i := range scan.reported {
		if scan.reported[i] != event.reported[i] {
			t.Fatalf("%s: reported value %d differs: %d vs %d", label, i, scan.reported[i], event.reported[i])
		}
	}
	for i := range scan.regs {
		if scan.regs[i] != event.regs[i] {
			t.Fatalf("%s: final r%d differs: %#x vs %#x", label, i, scan.regs[i], event.regs[i])
		}
	}
}

func runARMDiff(t *testing.T, w *workload.Workload, n int, restart, scan bool) diffRun {
	t.Helper()
	p, err := w.ARMProgram(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := strongarm.New(p, strongarm.Config{Restart: restart})
	if err != nil {
		t.Fatal(err)
	}
	s.Director().Scan = scan
	rec := osm.NewRecorder()
	s.Director().Tracer = rec
	st, err := s.Run(20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return diffRun{
		events:   rec.Events(),
		cycles:   st.Cycles,
		instrs:   st.Instrs,
		reported: s.ISS.Reported,
		regs:     s.ISS.CPU.R[:],
	}
}

func runPPCDiff(t *testing.T, w *workload.Workload, n int, noRestart, scan bool) diffRun {
	t.Helper()
	p, err := w.PPCProgram(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ppc750.New(p, ppc750.Config{NoRestart: noRestart})
	if err != nil {
		t.Fatal(err)
	}
	s.Director().Scan = scan
	rec := osm.NewRecorder()
	s.Director().Tracer = rec
	st, err := s.Run(20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return diffRun{
		events:   rec.Events(),
		cycles:   st.Cycles,
		instrs:   st.Instrs,
		reported: s.ISS.Reported,
		regs:     s.ISS.CPU.R[:],
	}
}

// diffWorkloads returns two short but distinct workloads: a control-
// heavy decoder loop and a shift/xor kernel.
func diffWorkloads(t *testing.T) []struct {
	w *workload.Workload
	n int
} {
	t.Helper()
	gsm := workload.ByName("gsm/dec")
	crc := workload.ByName("spec/crc")
	if gsm == nil || crc == nil {
		t.Fatal("workload set is missing gsm/dec or spec/crc")
	}
	return []struct {
		w *workload.Workload
		n int
	}{{gsm, 60}, {crc, 50}}
}

func TestDifferentialStrongARM(t *testing.T) {
	for _, wl := range diffWorkloads(t) {
		for _, restart := range []bool{false, true} {
			scan := runARMDiff(t, wl.w, wl.n, restart, true)
			event := runARMDiff(t, wl.w, wl.n, restart, false)
			if len(scan.events) == 0 {
				t.Fatalf("%s: reference run recorded no transitions", wl.w.Name)
			}
			label := wl.w.Name
			if restart {
				label += "/restart"
			}
			compareRuns(t, label, scan, event)
		}
	}
}

func TestDifferentialPPC750(t *testing.T) {
	for _, wl := range diffWorkloads(t) {
		for _, noRestart := range []bool{false, true} {
			scan := runPPCDiff(t, wl.w, wl.n, noRestart, true)
			event := runPPCDiff(t, wl.w, wl.n, noRestart, false)
			if len(scan.events) == 0 {
				t.Fatalf("%s: reference run recorded no transitions", wl.w.Name)
			}
			label := wl.w.Name
			if noRestart {
				label += "/norestart"
			}
			compareRuns(t, label, scan, event)
		}
	}
}
