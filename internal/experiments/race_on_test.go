//go:build race

package experiments

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation slows simulation by an order of
// magnitude; absolute-speed assertions skip themselves under it.
const raceEnabled = true
