// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5). Both cmd/osmbench and the
// repository's benchmark suite drive these functions; EXPERIMENTS.md
// records paper-versus-measured for each.
package experiments

import (
	"fmt"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/baseline/hwcentric"
	"repro/internal/baseline/sscalar"
	"repro/internal/mem"
	"repro/internal/osm"
	"repro/internal/sim/ppc750"
	"repro/internal/sim/strongarm"
	"repro/internal/stats"
	"repro/internal/workload"
)

// DefaultScale multiplies each kernel's default iteration count in
// the full experiment runs.
const DefaultScale = 4

// Table1Row is one row of the StrongARM validation table: the OSM
// model's cycle count against the external timing oracle, with the
// percentage difference — the analogue of the paper's iPAQ-seconds
// versus simulator-seconds comparison.
type Table1Row struct {
	Bench        string
	OracleCycles uint64
	ModelCycles  uint64
	DiffPct      float64
}

// oracleHier returns the timing oracle's memory parameters. The
// oracle stands in for the paper's iPAQ hardware: an independent
// implementation whose exact memory subsystem differs slightly from
// the model's assumptions ("since all details of the memory subsystem
// were not available, the memory modules may have contributed to the
// differences").
func oracleHier() mem.HierarchyConfig {
	h := mem.DefaultHierarchyConfig()
	h.MemLatency = 23
	h.TLBMissPenalty = 26
	return h
}

// Table1 runs the six MediaBench-like kernels on the StrongARM OSM
// model and on the oracle, at scale times each kernel's default
// iteration count.
func Table1(scale int) ([]Table1Row, error) {
	var rows []Table1Row
	for _, w := range workload.All() {
		n := w.DefaultN * scale
		p, err := w.ARMProgram(n)
		if err != nil {
			return nil, err
		}
		oracle, err := sscalar.New(p, sscalar.Config{Hier: oracleHier()})
		if err != nil {
			return nil, err
		}
		oStats, err := oracle.Run(10_000_000_000)
		if err != nil {
			return nil, fmt.Errorf("oracle %s: %w", w.Name, err)
		}
		if oracle.ISS.Reported[0] != w.Ref(n) {
			return nil, fmt.Errorf("oracle %s: checksum mismatch", w.Name)
		}
		model, err := strongarm.New(p, strongarm.Config{})
		if err != nil {
			return nil, err
		}
		mStats, err := model.Run(10_000_000_000)
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", w.Name, err)
		}
		if model.ISS.Reported[0] != w.Ref(n) {
			return nil, fmt.Errorf("model %s: checksum mismatch", w.Name)
		}
		rows = append(rows, Table1Row{
			Bench:        w.Name,
			OracleCycles: oStats.Cycles,
			ModelCycles:  mStats.Cycles,
			DiffPct:      100 * (float64(mStats.Cycles) - float64(oStats.Cycles)) / float64(oStats.Cycles),
		})
	}
	return rows, nil
}

// Table1Table renders the rows in the paper's Table 1 layout.
func Table1Table(rows []Table1Row) *stats.Table {
	t := stats.NewTable("Table 1: StrongARM model comparison (cycles vs timing oracle)",
		"benchmark", "oracle(cyc)", "simulator(cyc)", "difference")
	for _, r := range rows {
		t.AddRowf(r.Bench, r.OracleCycles, r.ModelCycles, fmt.Sprintf("%+.2f%%", r.DiffPct))
	}
	return t
}

// Table2Row is one row of the source-code-size table.
type Table2Row struct {
	Part string
	SA   int
	PPC  int
}

// repoRoot locates the repository from this source file's path.
func repoRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("experiments: cannot locate source tree")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file))), nil
}

// Table2 counts the source lines of the two OSM processor models,
// split into the paper's four categories, plus the baselines'
// sizes for the comparison made in the surrounding text.
func Table2() ([]Table2Row, map[string]int, error) {
	root, err := repoRoot()
	if err != nil {
		return nil, nil, err
	}
	j := func(parts ...string) string { return filepath.Join(append([]string{root}, parts...)...) }

	// Category mapping (DESIGN.md documents the classification):
	//  - "Modules with TMI": the token-manager modules of each model.
	//  - "Modules without TMI": the memory subsystem and predictors
	//    (hardware layer only — shared, counted once per model use).
	//  - "Decoding and OSM init.": the per-model glue that decodes
	//    operations and initializes machine contexts and timing.
	//  - "Miscellaneous": run control and statistics (counted within
	//    the model files; zero here because the glue files carry it).
	saTMI, err := stats.CountFilesLoC(j("internal", "sim", "strongarm", "regs.go"))
	if err != nil {
		return nil, nil, err
	}
	saGlue, err := stats.CountFilesLoC(j("internal", "sim", "strongarm", "sim.go"))
	if err != nil {
		return nil, nil, err
	}
	ppcTMI, err := stats.CountFilesLoC(j("internal", "sim", "ppc750", "rename.go"))
	if err != nil {
		return nil, nil, err
	}
	ppcGlue, err := stats.CountFilesLoC(j("internal", "sim", "ppc750", "sim.go"))
	if err != nil {
		return nil, nil, err
	}
	ppcPred, err := stats.CountFilesLoC(j("internal", "sim", "ppc750", "bpred.go"))
	if err != nil {
		return nil, nil, err
	}
	memLoC, err := stats.CountDirLoC(j("internal", "mem"))
	if err != nil {
		return nil, nil, err
	}

	rows := []Table2Row{
		{Part: "Modules with TMI", SA: saTMI, PPC: ppcTMI},
		{Part: "Modules without TMI", SA: memLoC, PPC: memLoC + ppcPred},
		{Part: "Decoding and OSM init.", SA: saGlue, PPC: ppcGlue},
	}
	saTotal, ppcTotal := 0, 0
	for _, r := range rows {
		saTotal += r.SA
		ppcTotal += r.PPC
	}
	rows = append(rows, Table2Row{Part: "Total", SA: saTotal, PPC: ppcTotal})

	// Baseline sizes for the in-text comparison.
	ssLoC, err := stats.CountDirLoC(j("internal", "baseline", "sscalar"))
	if err != nil {
		return nil, nil, err
	}
	hwLoC, err := stats.CountDirLoC(j("internal", "baseline", "hwcentric"))
	if err != nil {
		return nil, nil, err
	}
	baselines := map[string]int{
		"sscalar (SimpleScalar-style ARM)": ssLoC + memLoC,
		"hwcentric (SystemC-style PPC)":    hwLoC + memLoC + ppcPred,
	}
	return rows, baselines, nil
}

// Table2Table renders the rows in the paper's Table 2 layout.
func Table2Table(rows []Table2Row, baselines map[string]int) *stats.Table {
	t := stats.NewTable("Table 2: source code line numbers", "parts", "SA-1100", "PPC-750")
	for _, r := range rows {
		t.AddRowf(r.Part, r.SA, r.PPC)
	}
	for name, loc := range baselines {
		t.AddRowf("baseline: "+name, "", loc)
	}
	return t
}

// SpeedResult reports one simulator's speed on the benchmark mix.
type SpeedResult struct {
	Name   string
	Cycles uint64
	Instrs uint64
	Wall   time.Duration
	// CyclesPerSec is the paper's figure of merit ("650k cycles/sec").
	CyclesPerSec float64
}

func speedResult(name string, cycles, instrs uint64, wall time.Duration) SpeedResult {
	return SpeedResult{
		Name: name, Cycles: cycles, Instrs: instrs, Wall: wall,
		CyclesPerSec: float64(cycles) / wall.Seconds(),
	}
}

// speedARMOSM runs the full StrongARM benchmark mix under the given
// engine, accumulating cycles, instructions and wall time.
func speedARMOSM(scale int, eng osm.Engine) (cycles, instrs uint64, wall time.Duration, err error) {
	for _, w := range workload.All() {
		p, err := w.ARMProgram(w.DefaultN * scale)
		if err != nil {
			return 0, 0, 0, err
		}
		model, err := strongarm.New(p, strongarm.Config{Engine: eng})
		if err != nil {
			return 0, 0, 0, err
		}
		start := time.Now()
		st, err := model.Run(10_000_000_000)
		if err != nil {
			return 0, 0, 0, err
		}
		wall += time.Since(start)
		cycles += st.Cycles
		instrs += st.Instrs
	}
	return cycles, instrs, wall, nil
}

// speedPPCOSM runs the PPC-750 benchmark mix under the given engine.
func speedPPCOSM(scale int, eng osm.Engine) (cycles, instrs uint64, wall time.Duration, err error) {
	for _, w := range workload.Mix() {
		p, err := w.PPCProgram(w.DefaultN * scale)
		if err != nil {
			return 0, 0, 0, err
		}
		model, err := ppc750.New(p, ppc750.Config{Engine: eng})
		if err != nil {
			return 0, 0, 0, err
		}
		start := time.Now()
		st, err := model.Run(10_000_000_000)
		if err != nil {
			return 0, 0, 0, err
		}
		wall += time.Since(start)
		cycles += st.Cycles
		instrs += st.Instrs
	}
	return cycles, instrs, wall, nil
}

// SpeedARM measures simulation speed of the StrongARM OSM model and
// the SimpleScalar-style baseline over the benchmark mix (the paper
// reports 650k versus 550k cycles/sec). The OSM model runs under eng.
func SpeedARM(scale int, eng osm.Engine) ([]SpeedResult, error) {
	osmCycles, osmInstrs, osmWall, err := speedARMOSM(scale, eng)
	if err != nil {
		return nil, err
	}
	var ssCycles, ssInstrs uint64
	var ssWall time.Duration
	for _, w := range workload.All() {
		p, err := w.ARMProgram(w.DefaultN * scale)
		if err != nil {
			return nil, err
		}
		base, err := sscalar.New(p, sscalar.Config{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		bst, err := base.Run(10_000_000_000)
		if err != nil {
			return nil, err
		}
		ssWall += time.Since(start)
		ssCycles += bst.Cycles
		ssInstrs += bst.Instrs
	}
	return []SpeedResult{
		speedResult("OSM StrongARM", osmCycles, osmInstrs, osmWall),
		speedResult("SimpleScalar-style", ssCycles, ssInstrs, ssWall),
	}, nil
}

// SpeedEngines measures both OSM case studies under every execution
// engine over their full benchmark mixes. Within each group the rows
// are ordered generated, compiled, event, scan: EngineSpeedTable
// reads the event-driven default from the next-to-last row and the
// scan reference interpreter from the last.
func SpeedEngines(scale int) (arm, ppc []SpeedResult, err error) {
	for _, eng := range []osm.Engine{osm.EngineGenerated, osm.EngineCompiled, osm.EngineEvent, osm.EngineScan} {
		cycles, instrs, wall, err := speedARMOSM(scale, eng)
		if err != nil {
			return nil, nil, err
		}
		arm = append(arm, speedResult("StrongARM "+eng.String(), cycles, instrs, wall))
		cycles, instrs, wall, err = speedPPCOSM(scale, eng)
		if err != nil {
			return nil, nil, err
		}
		ppc = append(ppc, speedResult("PPC-750 "+eng.String(), cycles, instrs, wall))
	}
	return arm, ppc, nil
}

// EngineSample is one (target, workload, engine) speed measurement of
// the engine matrix. The JSON field names are the osmbench -json
// output format.
type EngineSample struct {
	Target       string  `json:"target"`
	Workload     string  `json:"workload"`
	Engine       string  `json:"engine"`
	Cycles       uint64  `json:"cycles"`
	Instrs       uint64  `json:"instrs"`
	WallSeconds  float64 `json:"wall_seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// EngineMatrix measures each workload of both case studies under all
// four execution engines, one sample per (target, workload, engine) —
// the machine-readable form of the engine comparison.
func EngineMatrix(scale int) ([]EngineSample, error) {
	var samples []EngineSample
	add := func(target, wl string, eng osm.Engine, cycles, instrs uint64, wall time.Duration) {
		samples = append(samples, EngineSample{
			Target: target, Workload: wl, Engine: eng.String(),
			Cycles: cycles, Instrs: instrs,
			WallSeconds:  wall.Seconds(),
			CyclesPerSec: float64(cycles) / wall.Seconds(),
		})
	}
	engines := []osm.Engine{osm.EngineGenerated, osm.EngineCompiled, osm.EngineEvent, osm.EngineScan}
	for _, w := range workload.All() {
		for _, eng := range engines {
			p, err := w.ARMProgram(w.DefaultN * scale)
			if err != nil {
				return nil, err
			}
			model, err := strongarm.New(p, strongarm.Config{Engine: eng})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			st, err := model.Run(10_000_000_000)
			if err != nil {
				return nil, fmt.Errorf("strongarm %s/%v: %w", w.Name, eng, err)
			}
			add("strongarm", w.Name, eng, st.Cycles, st.Instrs, time.Since(start))
		}
	}
	for _, w := range workload.Mix() {
		for _, eng := range engines {
			p, err := w.PPCProgram(w.DefaultN * scale)
			if err != nil {
				return nil, err
			}
			model, err := ppc750.New(p, ppc750.Config{Engine: eng})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			st, err := model.Run(10_000_000_000)
			if err != nil {
				return nil, fmt.Errorf("ppc750 %s/%v: %w", w.Name, eng, err)
			}
			add("ppc750", w.Name, eng, st.Cycles, st.Instrs, time.Since(start))
		}
	}
	return samples, nil
}

// SpeedPPC measures simulation speed of the PowerPC 750 OSM model
// and the SystemC-style baseline (the paper reports the OSM model at
// 4x the SystemC model's speed). The OSM model runs under eng.
func SpeedPPC(scale int, eng osm.Engine) ([]SpeedResult, error) {
	osmCycles, osmInstrs, osmWall, err := speedPPCOSM(scale, eng)
	if err != nil {
		return nil, err
	}
	var hwCycles, hwInstrs uint64
	var hwWall time.Duration
	for _, w := range workload.Mix() {
		p, err := w.PPCProgram(w.DefaultN * scale)
		if err != nil {
			return nil, err
		}
		hw, err := hwcentric.New(p, hwcentric.Config{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		hst, err := hw.Run(10_000_000_000)
		if err != nil {
			return nil, err
		}
		hwWall += time.Since(start)
		hwCycles += hst.Cycles
		hwInstrs += hst.Instrs
	}
	return []SpeedResult{
		speedResult("OSM PPC-750", osmCycles, osmInstrs, osmWall),
		speedResult("SystemC-style", hwCycles, hwInstrs, hwWall),
	}, nil
}

// SpeedTable renders speed results with the ratio of the first row to
// each later row.
func SpeedTable(title string, rs []SpeedResult) *stats.Table {
	t := stats.NewTable(title, "simulator", "cycles", "wall", "cycles/sec", "speedup")
	for _, r := range rs {
		ratio := r.CyclesPerSec / rs[len(rs)-1].CyclesPerSec
		t.AddRowf(r.Name, r.Cycles, r.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.CyclesPerSec), fmt.Sprintf("%.2fx", ratio))
	}
	return t
}

// EngineSpeedTable renders per-engine speed results with speedup
// columns against both reference points: the scan reference
// interpreter (the last row, the paper's Figure 3 semantics run
// naively) and the event-driven default engine (the next-to-last
// row, what users get without an Engine override).
func EngineSpeedTable(title string, rs []SpeedResult) *stats.Table {
	t := stats.NewTable(title, "simulator", "cycles", "wall", "cycles/sec", "vs scan", "vs event")
	scan := rs[len(rs)-1].CyclesPerSec
	event := rs[len(rs)-2].CyclesPerSec
	for _, r := range rs {
		t.AddRowf(r.Name, r.Cycles, r.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.CyclesPerSec),
			fmt.Sprintf("%.2fx", r.CyclesPerSec/scan),
			fmt.Sprintf("%.2fx", r.CyclesPerSec/event))
	}
	return t
}

// ValidRow is one row of the PPC-750 timing validation (the paper:
// "differences in timing are within 3% in all cases").
type ValidRow struct {
	Bench     string
	OSMCycles uint64
	HWCycles  uint64
	DiffPct   float64
}

// ValidatePPC compares the OSM 750 model against the hardware-centric
// model on the full MediaBench+SPECint-like mix (paper §5.2: "a
// benchmark mix from MediaBench and SPECint 2000").
func ValidatePPC(scale int) ([]ValidRow, error) {
	var rows []ValidRow
	for _, w := range workload.Mix() {
		n := w.DefaultN * scale
		p, err := w.PPCProgram(n)
		if err != nil {
			return nil, err
		}
		model, err := ppc750.New(p, ppc750.Config{})
		if err != nil {
			return nil, err
		}
		st, err := model.Run(10_000_000_000)
		if err != nil {
			return nil, err
		}
		hw, err := hwcentric.New(p, hwcentric.Config{})
		if err != nil {
			return nil, err
		}
		hst, err := hw.Run(10_000_000_000)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ValidRow{
			Bench:     w.Name,
			OSMCycles: st.Cycles,
			HWCycles:  hst.Cycles,
			DiffPct:   100 * (float64(st.Cycles) - float64(hst.Cycles)) / float64(hst.Cycles),
		})
	}
	return rows, nil
}

// ValidateTable renders the validation rows.
func ValidateTable(rows []ValidRow) *stats.Table {
	t := stats.NewTable("PPC-750 timing validation (OSM vs hardware-centric model)",
		"benchmark", "OSM(cyc)", "HW(cyc)", "difference")
	for _, r := range rows {
		t.AddRowf(r.Bench, r.OSMCycles, r.HWCycles, fmt.Sprintf("%+.2f%%", r.DiffPct))
	}
	return t
}

// Fig2Result quantifies the reservation-station behaviour of the
// paper's Figure 2: the multi-path OSM (dispatch directly to the unit
// or wait in the reservation station) against the single-path
// ablation.
type Fig2Result struct {
	Bench      string
	WithRS     uint64
	WithoutRS  uint64
	SpeedupPct float64
}

// Fig2 measures the reservation-station benefit per kernel.
func Fig2(scale int) ([]Fig2Result, error) {
	var rows []Fig2Result
	for _, w := range workload.Mix() {
		n := w.DefaultN * scale
		p, err := w.PPCProgram(n)
		if err != nil {
			return nil, err
		}
		withRS, err := ppc750.New(p, ppc750.Config{})
		if err != nil {
			return nil, err
		}
		a, err := withRS.Run(10_000_000_000)
		if err != nil {
			return nil, err
		}
		withoutRS, err := ppc750.New(p, ppc750.Config{NoReservationStations: true})
		if err != nil {
			return nil, err
		}
		b, err := withoutRS.Run(10_000_000_000)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig2Result{
			Bench: w.Name, WithRS: a.Cycles, WithoutRS: b.Cycles,
			SpeedupPct: 100 * (float64(b.Cycles) - float64(a.Cycles)) / float64(a.Cycles),
		})
	}
	return rows, nil
}

// Fig2Table renders the reservation-station comparison.
func Fig2Table(rows []Fig2Result) *stats.Table {
	t := stats.NewTable("Figure 2: reservation-station OSM paths (cycles with/without RS)",
		"benchmark", "with RS", "without RS", "RS benefit")
	for _, r := range rows {
		t.AddRowf(r.Bench, r.WithRS, r.WithoutRS, fmt.Sprintf("%+.2f%%", r.SpeedupPct))
	}
	return t
}
