package experiments

import (
	"testing"

	"repro/internal/osm/invariant"
	"repro/internal/sim/ppc750"
	"repro/internal/sim/strongarm"
	"repro/internal/workload"
)

// Checker-overhead benchmarks for EXPERIMENTS.md: each sub-benchmark
// runs the same kernel with the invariant checker absent, checking
// every control step, and checking every 64th step. The metric is
// cycles/s so the rows compare directly against the speed tables.
//
//	go test -bench=InvariantChecker -benchtime=20000x -run='^$' ./internal/experiments

func benchChecker(b *testing.B, build func(b *testing.B) checkSim, every uint64) {
	s := build(b)
	if every > 0 {
		c := invariant.New(s.Director())
		c.Every = every
		c.Install()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Done() {
			b.StopTimer()
			s = build(b)
			if every > 0 {
				c := invariant.New(s.Director())
				c.Every = every
				c.Install()
			}
			b.StartTimer()
		}
		if err := s.StepCycle(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

func benchCheckerModel(b *testing.B, build func(b *testing.B) checkSim) {
	b.Run("off", func(b *testing.B) { benchChecker(b, build, 0) })
	b.Run("every1", func(b *testing.B) { benchChecker(b, build, 1) })
	b.Run("every64", func(b *testing.B) { benchChecker(b, build, 64) })
}

func BenchmarkInvariantCheckerStrongARM(b *testing.B) {
	w := workload.ByName("gsm/dec")
	benchCheckerModel(b, func(b *testing.B) checkSim {
		p, err := w.ARMProgram(0)
		if err != nil {
			b.Fatal(err)
		}
		s, err := strongarm.New(p, strongarm.Config{})
		if err != nil {
			b.Fatal(err)
		}
		return s
	})
}

func BenchmarkInvariantCheckerPPC750(b *testing.B) {
	w := workload.ByName("mpeg2/enc")
	benchCheckerModel(b, func(b *testing.B) checkSim {
		p, err := w.PPCProgram(0)
		if err != nil {
			b.Fatal(err)
		}
		s, err := ppc750.New(p, ppc750.Config{})
		if err != nil {
			b.Fatal(err)
		}
		return s
	})
}
