package loader

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestImageRoundTrip(t *testing.T) {
	im := &Image{Arch: ArchARM, Org: 0x100, Entry: 0x104, Words: []uint32{1, 2, 0xdeadbeef}}
	got, err := Unmarshal(im.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Arch != im.Arch || got.Org != im.Org || got.Entry != im.Entry ||
		len(got.Words) != 3 || got.Words[2] != 0xdeadbeef {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("short")); err == nil {
		t.Error("short input must error")
	}
	im := &Image{Arch: ArchPPC, Words: []uint32{1}}
	data := im.Marshal()
	data[0] = 'X'
	if _, err := Unmarshal(data); err == nil {
		t.Error("bad magic must error")
	}
	data = im.Marshal()
	data[4] = 99
	if _, err := Unmarshal(data); err == nil {
		t.Error("bad arch must error")
	}
	data = im.Marshal()
	if _, err := Unmarshal(data[:len(data)-2]); err == nil {
		t.Error("truncated words must error")
	}
}

func TestLoadPlacesWords(t *testing.T) {
	im := &Image{Arch: ArchARM, Org: 0x40, Words: []uint32{7, 8}}
	r := mem.NewRAM(256, mem.LittleEndian)
	im.Load(r)
	if r.Read32(0x40) != 7 || r.Read32(0x44) != 8 {
		t.Fatal("Load placed words wrongly")
	}
}

func TestArchString(t *testing.T) {
	if ArchARM.String() != "arm" || ArchPPC.String() != "ppc" || Arch(7).String() == "" {
		t.Fatal("Arch strings wrong")
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(org, entry uint32, words []uint32, ppcArch bool) bool {
		a := ArchARM
		if ppcArch {
			a = ArchPPC
		}
		im := &Image{Arch: a, Org: org, Entry: entry, Words: words}
		got, err := Unmarshal(im.Marshal())
		if err != nil {
			return false
		}
		if got.Arch != a || got.Org != org || got.Entry != entry || len(got.Words) != len(words) {
			return false
		}
		for i := range words {
			if got.Words[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
