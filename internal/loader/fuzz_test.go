package loader

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal feeds arbitrary bytes to the image parser. Images
// arrive inside untrusted specs, so corrupt input must produce an
// error — never a panic, and never an allocation beyond what the
// input length itself justifies (the word count is validated against
// len(data) before the slice is made). A parse that succeeds must
// survive a Marshal/Unmarshal round trip unchanged.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte("OSMB\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x01\xde\xad\xbe\xef"))
	f.Add([]byte("OSMB\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\xff\xff\xff\xff"))
	f.Add([]byte("OSMB"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		im, err := Unmarshal(data)
		if err != nil {
			return
		}
		if 4*len(im.Words) > len(data) {
			t.Fatalf("parsed %d words from %d input bytes", len(im.Words), len(data))
		}
		again, err := Unmarshal(im.Marshal())
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if again.Arch != im.Arch || again.Org != im.Org || again.Entry != im.Entry ||
			!equalWords(again.Words, im.Words) {
			t.Fatalf("round trip changed image: %+v vs %+v", again, im)
		}
		if !bytes.Equal(again.Marshal(), im.Marshal()) {
			t.Fatal("Marshal not canonical across round trip")
		}
	})
}

func equalWords(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
