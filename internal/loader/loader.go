// Package loader defines the framework's program-image container —
// the stand-in for the user-level ELF binaries the paper's ISSs
// consume — and loads images into simulation RAM.
//
// The format is deliberately minimal: a magic, the target
// architecture, the load origin, the entry point and the word image.
// Multi-byte header fields and words are stored big-endian regardless
// of the target's data endianness.
package loader

import (
	"encoding/binary"
	"fmt"
)

// Arch identifies the instruction set of an image.
type Arch uint8

// Architectures.
const (
	ArchARM Arch = 1
	ArchPPC Arch = 2
)

func (a Arch) String() string {
	switch a {
	case ArchARM:
		return "arm"
	case ArchPPC:
		return "ppc"
	}
	return fmt.Sprintf("arch%d", uint8(a))
}

// Magic identifies an image file.
const Magic = "OSMB"

// Image is a loadable program.
type Image struct {
	// Arch is the target instruction set.
	Arch Arch
	// Org is the load address of Words[0].
	Org uint32
	// Entry is the initial program counter.
	Entry uint32
	// Words is the program text and data.
	Words []uint32
}

// Marshal serializes the image.
func (im *Image) Marshal() []byte {
	buf := make([]byte, 0, 16+4*len(im.Words))
	buf = append(buf, Magic...)
	buf = append(buf, byte(im.Arch), 0, 0, 0)
	var tmp [4]byte
	put := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(im.Org)
	put(im.Entry)
	put(uint32(len(im.Words)))
	for _, w := range im.Words {
		put(w)
	}
	return buf
}

// Unmarshal parses a serialized image.
func Unmarshal(data []byte) (*Image, error) {
	if len(data) < 20 || string(data[:4]) != Magic {
		return nil, fmt.Errorf("loader: not an %s image", Magic)
	}
	im := &Image{Arch: Arch(data[4])}
	if im.Arch != ArchARM && im.Arch != ArchPPC {
		return nil, fmt.Errorf("loader: unknown architecture %d", data[4])
	}
	im.Org = binary.BigEndian.Uint32(data[8:])
	im.Entry = binary.BigEndian.Uint32(data[12:])
	n := binary.BigEndian.Uint32(data[16:])
	if uint64(len(data)) < 20+4*uint64(n) {
		return nil, fmt.Errorf("loader: truncated image: header says %d words, have %d bytes", n, len(data)-20)
	}
	im.Words = make([]uint32, n)
	for i := range im.Words {
		im.Words[i] = binary.BigEndian.Uint32(data[20+4*i:])
	}
	return im, nil
}

// WordLoader is the memory operation the loader needs; *mem.RAM
// satisfies it.
type WordLoader interface {
	Write32(addr uint32, v uint32)
}

// Load places the image in memory.
func (im *Image) Load(m WordLoader) {
	for i, w := range im.Words {
		m.Write32(im.Org+uint32(4*i), w)
	}
}
