package osm

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/snap"
)

// snapModel is a director with one of every built-in manager and a
// handful of machines over a shared state graph, used to exercise the
// snapshot codec. build must be deterministic: the round-trip tests
// construct it twice and expect identical shape.
type snapModel struct {
	d        *Director
	states   []*State
	machines []*Machine
	pool     *PoolManager
	queue    *QueueManager
	regs     *RegFileManager
	unit     *UnitManager
	bypass   *BypassManager
	reset    *ResetManager
}

func buildSnapModel() *snapModel {
	sm := &snapModel{}
	a, b, c, e := NewState("A"), NewState("B"), NewState("C"), NewState("E")
	a.Connect("ab", b)
	b.Connect("bc", c)
	c.Connect("ce", e)
	e.Connect("ea", a)
	sm.states = []*State{a, b, c, e}

	sm.pool = NewPoolManager("pool", 4)
	sm.queue = NewQueueManager("queue", 5)
	sm.regs = NewRegFileManager("regs", 8)
	sm.regs.RenameDepth = 2
	sm.unit = NewUnitManager("unit", 3)
	sm.bypass = NewBypassManager("bypass")
	sm.reset = NewResetManager("reset")

	sm.d = NewDirector()
	for i := 0; i < 6; i++ {
		m := NewMachine("m", a)
		m.cur = a
		sm.machines = append(sm.machines, m)
	}
	sm.d.AddMachine(sm.machines...)
	sm.d.AddManager(sm.pool, sm.queue, sm.regs, sm.unit, sm.bypass, sm.reset)
	return sm
}

// randomize drives the model into an arbitrary but structurally valid
// configuration by poking state directly, the way a long run would
// leave it at a control-step boundary.
func (sm *snapModel) randomize(rng *rand.Rand) {
	maybeMachine := func() *Machine {
		if rng.Intn(3) == 0 {
			return nil
		}
		return sm.machines[rng.Intn(len(sm.machines))]
	}
	sm.d.step = rng.Uint64() % 1_000_000
	sm.d.nextAge = 100 + rng.Uint64()%1000
	for _, m := range sm.machines {
		m.cur = sm.states[rng.Intn(len(sm.states))]
		m.Age = rng.Uint64() % sm.d.nextAge
		m.Tag = rng.Intn(1000)
		m.tokens = m.tokens[:0]
		for i, n := 0, rng.Intn(4); i < n; i++ {
			mgr := sm.d.managers[rng.Intn(len(sm.d.managers))]
			m.tokens = append(m.tokens, Token{
				Mgr:  mgr,
				ID:   TokenID(rng.Int63n(1 << 33)),
				Data: rng.Uint64(),
			})
		}
	}
	sm.pool.free = rng.Intn(sm.pool.capacity + 1)
	sm.pool.seq = TokenID(rng.Int63n(1 << 40))

	sm.queue.head = rng.Intn(sm.queue.capacity)
	sm.queue.n = rng.Intn(sm.queue.capacity + 1)
	sm.queue.seq = TokenID(rng.Int63n(1 << 40))
	for i := 0; i < sm.queue.n; i++ {
		*sm.queue.at(i) = queueEntry{id: TokenID(rng.Int63n(1 << 40)), owner: maybeMachine()}
	}

	for i := range sm.regs.vals {
		sm.regs.vals[i] = rng.Uint64()
		sm.regs.pending[i] = rng.Intn(3)
		sm.regs.writers[i] = sm.regs.writers[i][:0]
		for j, n := 0, rng.Intn(3); j < n; j++ {
			sm.regs.writers[i] = append(sm.regs.writers[i], sm.machines[rng.Intn(len(sm.machines))])
		}
	}

	sm.unit.step = rng.Uint64() % 1_000_000
	for i := range sm.unit.owner {
		sm.unit.owner[i] = maybeMachine()
		sm.unit.busyUntil[i] = rng.Uint64() % 1_000_000
	}

	sm.bypass.step = rng.Uint64() % 1_000_000
	sm.bypass.entries = make(map[int]bypassEntry)
	for i, n := 0, rng.Intn(6); i < n; i++ {
		sm.bypass.entries[rng.Intn(32)] = bypassEntry{val: rng.Uint64(), until: rng.Uint64() % 1_000_000}
	}

	sm.reset.marked = make(map[*Machine]bool)
	for i, n := 0, rng.Intn(4); i < n; i++ {
		sm.reset.marked[sm.machines[rng.Intn(len(sm.machines))]] = true
	}
}

func (sm *snapModel) encode(t *testing.T) []byte {
	t.Helper()
	w := snap.NewWriter()
	if err := sm.d.Snapshot(w); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return w.Bytes()
}

// TestSnapshotRoundTripProperty is the codec property test: for many
// random model states, encode → decode into a fresh identically-built
// model → re-encode must be byte-identical, and the restored model
// must observably match the original.
func TestSnapshotRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		src := buildSnapModel()
		src.randomize(rng)
		b1 := src.encode(t)

		dst := buildSnapModel()
		if err := dst.d.Restore(snap.NewReader(b1)); err != nil {
			t.Fatalf("iter %d: Restore: %v", iter, err)
		}
		b2 := dst.encode(t)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("iter %d: re-encode differs: %d vs %d bytes", iter, len(b1), len(b2))
		}

		if dst.d.step != src.d.step || dst.d.nextAge != src.d.nextAge {
			t.Fatalf("iter %d: director counters differ", iter)
		}
		for i, m := range src.machines {
			dm := dst.machines[i]
			if dm.cur.Name != m.cur.Name || dm.Age != m.Age || dm.Tag != m.Tag {
				t.Fatalf("iter %d: machine %d state differs", iter, i)
			}
			if len(dm.tokens) != len(m.tokens) {
				t.Fatalf("iter %d: machine %d has %d tokens, want %d", iter, i, len(dm.tokens), len(m.tokens))
			}
			for j, tok := range m.tokens {
				dtok := dm.tokens[j]
				if dtok.ID != tok.ID || dtok.Data != tok.Data || dtok.Mgr.Name() != tok.Mgr.Name() {
					t.Fatalf("iter %d: machine %d token %d differs", iter, i, j)
				}
			}
		}
		if dst.pool.free != src.pool.free || dst.queue.n != src.queue.n {
			t.Fatalf("iter %d: manager occupancy differs", iter)
		}
	}
}

// TestSnapshotQueueHeadNormalized checks that the ring head position
// is not part of the logical snapshot: two queues with the same
// content at different ring offsets encode identically.
func TestSnapshotQueueHeadNormalized(t *testing.T) {
	enc := func(head int) []byte {
		sm := buildSnapModel()
		sm.queue.head = head
		sm.queue.n = 2
		*sm.queue.at(0) = queueEntry{id: 7, owner: sm.machines[1]}
		*sm.queue.at(1) = queueEntry{id: 8, owner: sm.machines[2]}
		return sm.encode(t)
	}
	if !bytes.Equal(enc(0), enc(3)) {
		t.Fatal("queue snapshots differ across ring offsets")
	}
}

// TestSnapshotTruncationNeverPanics feeds every truncated prefix of a
// valid snapshot to Restore; each must return an error (never panic,
// never succeed).
func TestSnapshotTruncationNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := buildSnapModel()
	src.randomize(rng)
	full := src.encode(t)
	for n := 0; n < len(full); n++ {
		dst := buildSnapModel()
		if err := dst.d.Restore(snap.NewReader(full[:n])); err == nil {
			t.Fatalf("restore of %d/%d byte prefix succeeded", n, len(full))
		}
	}
}

// TestSnapshotVersionSkew checks that a snapshot from a different
// format version is rejected with an error.
func TestSnapshotVersionSkew(t *testing.T) {
	src := buildSnapModel()
	full := src.encode(t)
	skew := append([]byte(nil), full...)
	skew[0] = byte(directorSnapVersion + 1) // version tag is the first u16
	dst := buildSnapModel()
	if err := dst.d.Restore(snap.NewReader(skew)); err == nil {
		t.Fatal("version-skewed snapshot accepted")
	}
}

// TestSnapshotShapeMismatch checks restores into a differently-built
// director fail cleanly.
func TestSnapshotShapeMismatch(t *testing.T) {
	src := buildSnapModel()
	full := src.encode(t)

	dst := buildSnapModel()
	dst.d.AddMachine(NewMachine("extra", dst.states[0]))
	if err := dst.d.Restore(snap.NewReader(full)); err == nil {
		t.Fatal("machine-count mismatch accepted")
	}

	dst2 := buildSnapModel()
	dst2.d.AddManager(NewPoolManager("extra", 1))
	if err := dst2.d.Restore(snap.NewReader(full)); err == nil {
		t.Fatal("manager-count mismatch accepted")
	}
}

type opaqueManager struct{ BaseManager }

func (o *opaqueManager) Allocate(m *Machine, id TokenID) (Token, bool) { return Token{}, false }
func (o *opaqueManager) Inquire(m *Machine, id TokenID) bool           { return false }
func (o *opaqueManager) Release(m *Machine, t Token) bool              { return false }

// TestSnapshotRequiresSnapshotter checks that Snapshot refuses
// directors with managers that cannot be captured, instead of writing
// a silently incomplete snapshot.
func TestSnapshotRequiresSnapshotter(t *testing.T) {
	sm := buildSnapModel()
	sm.d.AddManager(&opaqueManager{BaseManager{ManagerName: "opaque"}})
	if err := sm.d.Snapshot(snap.NewWriter()); err == nil {
		t.Fatal("Snapshot accepted a manager without Snapshotter")
	}
}

// TestSnapshotRestoreResumesSchedule runs a live pipeline to a
// boundary, snapshots, restores into a fresh clone, and checks both
// continue identically under both schedulers.
func TestSnapshotRestoreResumesSchedule(t *testing.T) {
	for _, scan := range []bool{true, false} {
		build := func() (*Director, *Recorder) {
			d, _, _ := twoStage(2)
			rec := NewRecorder()
			d.Tracer = rec
			return d, rec
		}
		ref, refRec := build()
		for i := 0; i < 20; i++ {
			ref.Scan = scan
			if err := ref.Step(); err != nil {
				t.Fatal(err)
			}
		}

		src, _ := build()
		src.Scan = scan
		for i := 0; i < 9; i++ {
			if err := src.Step(); err != nil {
				t.Fatal(err)
			}
		}
		w := snap.NewWriter()
		if err := src.Snapshot(w); err != nil {
			t.Fatalf("scan=%v: %v", scan, err)
		}
		dst, dstRec := build()
		dst.Scan = scan
		if err := dst.Restore(snap.NewReader(w.Bytes())); err != nil {
			t.Fatalf("scan=%v: %v", scan, err)
		}
		for i := 0; i < 11; i++ {
			if err := dst.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if dst.StepCount() != ref.StepCount() {
			t.Fatalf("scan=%v: resumed run at step %d, reference at %d", scan, dst.StepCount(), ref.StepCount())
		}
		want := refRec.Events()
		var tail []Event
		for _, tr := range want {
			if tr.Step >= 9 {
				tail = append(tail, tr)
			}
		}
		got := dstRec.Events()
		if len(got) != len(tail) {
			t.Fatalf("scan=%v: resumed run recorded %d transitions, want %d", scan, len(got), len(tail))
		}
		for i := range got {
			if got[i].Step != tail[i].Step || got[i].Machine != tail[i].Machine ||
				got[i].Edge != tail[i].Edge || got[i].From != tail[i].From || got[i].To != tail[i].To {
				t.Fatalf("scan=%v: transition %d differs: %+v vs %+v", scan, i, got[i], tail[i])
			}
		}
	}
}
