package osm

import "fmt"

// UnitManager manages a group of identical exclusive units, such as
// the occupancy of a pipeline stage (one unit), a reservation station
// (several entries) or a bank of function units. At most one machine
// owns a unit at a time, which is exactly how structure hazards are
// resolved in the OSM model: an operation that cannot allocate the
// next stage's token stalls.
//
// Variable latency (the paper's instruction-cache-miss example) is
// modeled by gating release: while a unit is busy — via SetBusy or a
// model-supplied ReleaseGate — the manager turns down release
// requests, so the owning operation stalls in place.
type UnitManager struct {
	BaseManager
	// AllocGate, if non-nil, is an additional admission predicate
	// consulted before a free unit is granted.
	AllocGate func(m *Machine, unit TokenID) bool
	// ReleaseGate, if non-nil, must also approve a release; return
	// false while the unit's work (e.g. a memory access) is in
	// flight.
	ReleaseGate func(m *Machine, unit TokenID) bool

	owner     []*Machine
	busyUntil []uint64 // first control step at which each unit is free again
	step      uint64   // current control step, updated by BeginStep
}

// NewUnitManager returns a manager of n identical exclusive units.
func NewUnitManager(name string, n int) *UnitManager {
	if n <= 0 {
		panic(fmt.Sprintf("osm: NewUnitManager(%q, %d): unit count must be positive", name, n))
	}
	return &UnitManager{
		BaseManager: BaseManager{ManagerName: name},
		owner:       make([]*Machine, n),
		busyUntil:   make([]uint64, n),
	}
}

// Len returns the number of units.
func (u *UnitManager) Len() int { return len(u.owner) }

// Free returns the number of currently unowned units.
func (u *UnitManager) Free() int {
	n := 0
	for _, o := range u.owner {
		if o == nil {
			n++
		}
	}
	return n
}

// Holder reports the machine owning the given unit (HolderReporter).
func (u *UnitManager) Holder(id TokenID) *Machine {
	if id < 0 || int(id) >= len(u.owner) {
		if id == AnyUnit {
			return nil
		}
		return nil
	}
	return u.owner[id]
}

// SetBusy marks a unit busy for n control steps beyond the current
// one: a release that would otherwise have succeeded at the next step
// is delayed by exactly n steps. The hardware layer calls this to
// model variable-latency activities such as cache misses, the paper's
// example of a fetch manager turning down token release requests
// until the access finishes.
func (u *UnitManager) SetBusy(unit TokenID, n uint64) {
	u.busyUntil[unit] = u.step + n + 1
}

// Busy reports the number of control steps (including the current
// one) for which the unit remains busy.
func (u *UnitManager) Busy(unit TokenID) uint64 {
	if u.busyUntil[unit] > u.step {
		return u.busyUntil[unit] - u.step
	}
	return 0
}

// CanAllocate reports whether a gate-free Allocate(id) would grant,
// without transacting anything. It ignores any installed AllocGate —
// callers on the check-then-commit fast path (the compiled engine's
// pure path and generated edge functions) must test the gate
// themselves and take the transactional route when one is installed.
func (u *UnitManager) CanAllocate(id TokenID) bool { return unitCanAllocate(u, id) }

// CanRelease reports whether a gate-free Release of the held token id
// would accept: the unit's busy window has expired. Like CanAllocate
// it ignores any installed ReleaseGate.
func (u *UnitManager) CanRelease(id TokenID) bool {
	return id >= 0 && int(id) < len(u.busyUntil) && u.busyUntil[id] <= u.step
}

// BeginStep records the current control step (Stepper). When a unit's
// busy window expires at this step, previously refused releases can
// now succeed, so the manager wakes its waiters.
func (u *UnitManager) BeginStep(cycle uint64) {
	u.step = cycle
	for _, until := range u.busyUntil {
		if until == cycle {
			u.Wake()
			break
		}
	}
}

// SleepSafeManager reports whether machines blocked on the manager may
// be suspended (SleepSafe): only while no opaque gate predicate is
// installed, since the manager cannot observe a gate's inputs.
func (u *UnitManager) SleepSafeManager() bool {
	return u.AllocGate == nil && u.ReleaseGate == nil
}

func (u *UnitManager) pick(m *Machine, id TokenID) (TokenID, bool) {
	if id == AnyUnit {
		for i, o := range u.owner {
			if o == nil {
				if u.AllocGate != nil && !u.AllocGate(m, TokenID(i)) {
					continue
				}
				return TokenID(i), true
			}
		}
		return 0, false
	}
	if id < 0 || int(id) >= len(u.owner) || u.owner[id] != nil {
		return 0, false
	}
	if u.AllocGate != nil && !u.AllocGate(m, id) {
		return 0, false
	}
	return id, true
}

// Allocate tentatively grants a free unit to m.
func (u *UnitManager) Allocate(m *Machine, id TokenID) (Token, bool) {
	unit, ok := u.pick(m, id)
	if !ok {
		return Token{}, false
	}
	u.owner[unit] = m
	return Token{Mgr: u, ID: unit}, true
}

// CancelAllocate frees the tentatively granted unit.
func (u *UnitManager) CancelAllocate(m *Machine, t Token) { u.owner[t.ID] = nil }

// Inquire reports whether the named unit (or, with AnyUnit, any unit)
// is free or already owned by m.
func (u *UnitManager) Inquire(m *Machine, id TokenID) bool {
	if id == AnyUnit {
		for _, o := range u.owner {
			if o == nil || o == m {
				return true
			}
		}
		return false
	}
	if id < 0 || int(id) >= len(u.owner) {
		return false
	}
	return u.owner[id] == nil || u.owner[id] == m
}

// Release tentatively accepts the return of t unless the unit is busy
// or the release gate refuses.
func (u *UnitManager) Release(m *Machine, t Token) bool {
	if u.busyUntil[t.ID] > u.step {
		return false
	}
	if u.ReleaseGate != nil && !u.ReleaseGate(m, t.ID) {
		return false
	}
	u.owner[t.ID] = nil
	return true
}

// CancelRelease restores m's ownership of the unit.
func (u *UnitManager) CancelRelease(m *Machine, t Token) { u.owner[t.ID] = m }

// OutstandingGrants enumerates the owned units (GrantAuditor).
func (u *UnitManager) OutstandingGrants(yield func(Grant)) {
	for i, o := range u.owner {
		if o != nil {
			yield(Grant{Owner: o, ID: TokenID(i)})
		}
	}
}

// Discarded reclaims the unit unconditionally. It wakes waiters
// itself because Machine.Reset discards outside any edge commit.
func (u *UnitManager) Discarded(m *Machine, t Token) {
	u.owner[t.ID] = nil
	u.busyUntil[t.ID] = 0
	u.Wake()
}
