package osm

// PoolManager manages a counted pool of anonymous, interchangeable
// tokens — entries of a fetch queue or rename-buffer credits. The
// identifier presented with Allocate is ignored except that AnyUnit is
// conventional; each grant carries a fresh sequence number so a
// machine can hold several pool tokens at once.
type PoolManager struct {
	BaseManager
	// AllocGate, if non-nil, must also approve each grant.
	AllocGate func(m *Machine) bool

	capacity int
	free     int
	seq      TokenID
}

// NewPoolManager returns a pool of n free tokens.
func NewPoolManager(name string, n int) *PoolManager {
	return &PoolManager{
		BaseManager: BaseManager{ManagerName: name},
		capacity:    n,
		free:        n,
	}
}

// Cap returns the pool's capacity.
func (p *PoolManager) Cap() int { return p.capacity }

// Free returns the number of tokens currently available.
func (p *PoolManager) Free() int { return p.free }

// InUse returns the number of tokens currently granted.
func (p *PoolManager) InUse() int { return p.capacity - p.free }

// Allocate grants a token when the pool is non-empty.
func (p *PoolManager) Allocate(m *Machine, id TokenID) (Token, bool) {
	if p.free == 0 {
		return Token{}, false
	}
	if p.AllocGate != nil && !p.AllocGate(m) {
		return Token{}, false
	}
	p.free--
	p.seq++
	return Token{Mgr: p, ID: p.seq}, true
}

// CancelAllocate reverses a tentative grant exactly, sequence counter
// included, leaving the pool bit-identical to before the grant. The
// compiled engine's check-then-commit path relies on tentative grants
// having no residue (see CheckableManager).
func (p *PoolManager) CancelAllocate(m *Machine, t Token) { p.free++; p.seq-- }

// Inquire reports whether at least one token is available.
func (p *PoolManager) Inquire(m *Machine, id TokenID) bool { return p.free > 0 }

// Release accepts the return of any granted token.
func (p *PoolManager) Release(m *Machine, t Token) bool {
	p.free++
	return true
}

// CancelRelease re-takes the tentatively returned token.
func (p *PoolManager) CancelRelease(m *Machine, t Token) { p.free-- }

// Discarded reclaims a granted token unconditionally. It wakes
// waiters itself because Machine.Reset discards outside any edge
// commit.
func (p *PoolManager) Discarded(m *Machine, t Token) {
	p.free++
	p.Wake()
}

// SleepSafeManager reports whether machines blocked on the manager may
// be suspended (SleepSafe): only while no opaque allocation gate is
// installed.
func (p *PoolManager) SleepSafeManager() bool { return p.AllocGate == nil }

// OutstandingGrants enumerates the granted tokens (GrantAuditor).
// Pool tokens are anonymous — the pool remembers how many are out,
// not who holds them — so each grant carries a nil Owner and the
// checker matches by count.
func (p *PoolManager) OutstandingGrants(yield func(Grant)) {
	for i := p.InUse(); i > 0; i-- {
		yield(Grant{ID: AnyUnit})
	}
}
