package osm

import "fmt"

// TokenID names a resource unit within a token manager's namespace.
// The interpretation is manager-specific: a register number, a pipeline
// stage slot, a reservation-station entry, and so on. Managers are free
// to pack sub-fields (for example a register number plus an "update"
// flag, or a thread tag for multi-threaded models) into the 64 bits.
type TokenID int64

// AnyUnit asks a manager to pick any free unit it controls. Managers
// that control a single token treat AnyUnit and 0 identically.
const AnyUnit TokenID = -1

// AllTokens, used with a Discard primitive, discards every token the
// machine currently holds. It is the usual identifier on reset edges.
const AllTokens TokenID = -2

// Token is a resource granted by a token manager to a machine. A
// machine keeps granted tokens in its token buffer until it releases
// or discards them.
type Token struct {
	// Mgr is the manager that granted the token.
	Mgr TokenManager
	// ID is the resolved identifier of the granted unit. When a
	// machine allocates with AnyUnit, ID records the concrete unit
	// the manager picked.
	ID TokenID
	// Data is an optional manager- or model-specific payload. A
	// register-update token, for example, carries the computed result
	// value back to the register file when released.
	Data uint64
}

func (t Token) String() string {
	if t.Mgr == nil {
		return fmt.Sprintf("token(<nil>:%d)", t.ID)
	}
	return fmt.Sprintf("token(%s:%d)", t.Mgr.Name(), t.ID)
}

// Op enumerates the four primitive transactions of the Λ language.
type Op int

const (
	// OpAllocate requests exclusive ownership of a token.
	OpAllocate Op = iota
	// OpInquire checks the availability of a resource without
	// obtaining its token (non-exclusive access, e.g. register reads).
	OpInquire
	// OpRelease requests to return a held token to its manager.
	OpRelease
	// OpDiscard unconditionally drops a held token; it needs no
	// permission from the manager and always succeeds.
	OpDiscard
)

func (o Op) String() string {
	switch o {
	case OpAllocate:
		return "allocate"
	case OpInquire:
		return "inquire"
	case OpRelease:
		return "release"
	case OpDiscard:
		return "discard"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IDFunc computes a token identifier from the state of the requesting
// machine. Identifiers are typically initialized at decode time: the
// machine stores its decoded operation in Machine.Ctx and the IDFunc
// reads source/destination register numbers or unit choices from it.
type IDFunc func(m *Machine) TokenID

// A Primitive is one conjunct of an edge's guard condition: a single
// token transaction directed at one manager.
type Primitive struct {
	// Op selects which of the four Λ transactions to perform.
	Op Op
	// Mgr is the manager the transaction is directed at.
	Mgr TokenManager
	// ID yields the token identifier to present. Exactly one of ID
	// and FixedID is used: if ID is nil, FixedID is presented.
	ID IDFunc
	// FixedID is the identifier used when ID is nil.
	FixedID TokenID

	// Manager-index cache owned by the event-driven scheduler
	// (director_event.go), valid for one director and scheduler
	// epoch; -1 records an unregistered manager.
	schedDir   *Director
	schedEpoch uint64
	schedIdx   int

	// slot is the primitive's memo index within its state graph, plus
	// one (0 = unassigned). It indexes the per-machine identifier memo
	// (Machine.dynID); see assignPrimSlots. Slots only need to be
	// unique within one machine's reachable edge set, so numbering is
	// per connected state graph, not global.
	slot int32
}

func (p Primitive) String() string {
	name := "<nil>"
	if p.Mgr != nil {
		name = p.Mgr.Name()
	}
	if p.ID != nil {
		return fmt.Sprintf("%s(%s, dyn)", p.Op, name)
	}
	return fmt.Sprintf("%s(%s, %d)", p.Op, name, p.FixedID)
}

func (p Primitive) id(m *Machine) TokenID {
	if p.ID != nil {
		return p.ID(m)
	}
	return p.FixedID
}

// Alloc builds an Allocate primitive with a fixed identifier.
func Alloc(mgr TokenManager, id TokenID) Primitive {
	return Primitive{Op: OpAllocate, Mgr: mgr, FixedID: id}
}

// AllocF builds an Allocate primitive whose identifier is computed
// from the machine at request time.
func AllocF(mgr TokenManager, f IDFunc) Primitive {
	return Primitive{Op: OpAllocate, Mgr: mgr, ID: f}
}

// Inquire builds an Inquire primitive with a fixed identifier.
func Inquire(mgr TokenManager, id TokenID) Primitive {
	return Primitive{Op: OpInquire, Mgr: mgr, FixedID: id}
}

// InquireF builds an Inquire primitive with a computed identifier.
func InquireF(mgr TokenManager, f IDFunc) Primitive {
	return Primitive{Op: OpInquire, Mgr: mgr, ID: f}
}

// Release builds a Release primitive with a fixed identifier. The
// machine must hold a token from mgr with that identifier when the
// edge is evaluated.
func Release(mgr TokenManager, id TokenID) Primitive {
	return Primitive{Op: OpRelease, Mgr: mgr, FixedID: id}
}

// ReleaseF builds a Release primitive with a computed identifier.
func ReleaseF(mgr TokenManager, f IDFunc) Primitive {
	return Primitive{Op: OpRelease, Mgr: mgr, ID: f}
}

// Discard builds a Discard primitive. Use AllTokens to drop the whole
// token buffer (the usual reset behaviour); otherwise the machine's
// held token from mgr with the given identifier is dropped. Discarding
// a token that is not held succeeds and does nothing, so reset edges
// stay valid regardless of how far the operation progressed.
func Discard(mgr TokenManager, id TokenID) Primitive {
	return Primitive{Op: OpDiscard, Mgr: mgr, FixedID: id}
}
