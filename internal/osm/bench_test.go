package osm

import "testing"

// Micro-benchmarks of the scheduling core, for tracking the cost of
// the director machinery itself (the efficiency discussion in
// EXPERIMENTS.md). Each model is benchmarked under the default
// event-driven scheduler and under the reference Figure 3 scan
// (Director.Scan), so the scheduling overhead of each shows up
// side by side.

// benchPipeline builds a saturated 5-stage ring: 6 machines, ~6
// transitions per step. Saturation is the event scheduler's worst
// case — everything is ready every step.
func benchPipeline() *Director {
	stages := make([]*UnitManager, 5)
	states := make([]*State, 6)
	states[0] = NewState("I")
	for k := 0; k < 5; k++ {
		stages[k] = NewUnitManager("s", 1)
		states[k+1] = NewState("S")
	}
	states[0].Connect("in", states[1], Alloc(stages[0], 0))
	for k := 1; k < 5; k++ {
		states[k].Connect("adv", states[k+1], Release(stages[k-1], 0), Alloc(stages[k], 0))
	}
	states[5].Connect("out", states[0], Release(stages[4], 0))
	d := NewDirector()
	d.NoRestart = true
	for _, s := range stages {
		d.AddManager(s)
	}
	for k := 0; k < 6; k++ {
		d.AddMachine(NewMachine("m", states[0]))
	}
	return d
}

// benchIdle builds a fully blocked population: the cost of a step
// that moves nothing. The event scheduler suspends every machine on
// the wedged unit's wait list, so steps cost O(1); the scan
// re-evaluates all 8 machines.
func benchIdle() *Director {
	u := NewUnitManager("u", 1)
	i, s := NewState("I"), NewState("S")
	i.Connect("go", s, Alloc(u, 0))
	s.Connect("stay", i, Release(u, 0))
	u.SetBusy(0, 1<<62)
	d := NewDirector()
	d.AddManager(u)
	for k := 0; k < 8; k++ {
		d.AddMachine(NewMachine("m", i))
	}
	d.Step() // settle: every machine blocks on the busy gate
	return d
}

func benchSteps(b *testing.B, d *Director) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirectorStepPipeline(b *testing.B) {
	benchSteps(b, benchPipeline())
}

func BenchmarkDirectorStepPipelineScan(b *testing.B) {
	d := benchPipeline()
	d.Scan = true
	benchSteps(b, d)
}

// BenchmarkDirectorStepEventDriven is the explicit-name alias for the
// default scheduler on the saturated ring, for benchstat runs that
// compare the two schedulers by name.
func BenchmarkDirectorStepEventDriven(b *testing.B) {
	d := benchPipeline()
	d.Scan = false
	benchSteps(b, d)
}

// BenchmarkDirectorStepPipelineCompiled runs the saturated ring
// through compiled guard programs (EngineCompiled). The CI bench-smoke
// job holds it to within 10% of the event-driven interpreter on this
// micro-model; the macro speedups are measured in
// internal/experiments (SpeedEngines).
func BenchmarkDirectorStepPipelineCompiled(b *testing.B) {
	d := benchPipeline()
	d.Engine = EngineCompiled
	benchSteps(b, d)
}

func BenchmarkDirectorStepIdle(b *testing.B) {
	benchSteps(b, benchIdle())
}

func BenchmarkDirectorStepIdleScan(b *testing.B) {
	d := benchIdle()
	d.Scan = true
	benchSteps(b, d)
}

func BenchmarkDirectorStepEventDrivenIdle(b *testing.B) {
	d := benchIdle()
	d.Scan = false
	benchSteps(b, d)
}

// BenchmarkDirectorStepIdleCompiled measures the idle step under the
// compiled engine. Together with the Idle and IdleScan variants it
// backs the 0 allocs/op claim for the idle path of all three engines
// (every benchSteps reports allocations).
func BenchmarkDirectorStepIdleCompiled(b *testing.B) {
	d := benchIdle()
	d.Engine = EngineCompiled
	if err := d.Step(); err != nil { // compile + settle under the new engine
		b.Fatal(err)
	}
	benchSteps(b, d)
}

func BenchmarkTryEdgeConjunction(b *testing.B) {
	// One machine cycling a 4-primitive edge pair.
	u1 := NewUnitManager("u1", 1)
	u2 := NewUnitManager("u2", 1)
	rf := NewRegFileManager("rf", 8)
	i, s := NewState("I"), NewState("S")
	i.Connect("go", s, Alloc(u1, 0), Alloc(u2, 0), Inquire(rf, 3), Alloc(rf, UpdateToken(4)))
	s.Connect("back", i, Release(u1, 0), Release(u2, 0), Release(rf, UpdateToken(4)))
	d := NewDirector()
	d.AddManager(u1, u2, rf)
	d.AddMachine(NewMachine("m", i))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
