package osm

import "testing"

// Micro-benchmarks of the scheduling core, for tracking the cost of
// the director machinery itself (the efficiency discussion in
// EXPERIMENTS.md).

func BenchmarkDirectorStepPipeline(b *testing.B) {
	// A saturated 5-stage ring: 6 machines, ~6 transitions per step.
	stages := make([]*UnitManager, 5)
	states := make([]*State, 6)
	states[0] = NewState("I")
	for k := 0; k < 5; k++ {
		stages[k] = NewUnitManager("s", 1)
		states[k+1] = NewState("S")
	}
	states[0].Connect("in", states[1], Alloc(stages[0], 0))
	for k := 1; k < 5; k++ {
		states[k].Connect("adv", states[k+1], Release(stages[k-1], 0), Alloc(stages[k], 0))
	}
	states[5].Connect("out", states[0], Release(stages[4], 0))
	d := NewDirector()
	d.NoRestart = true
	for _, s := range stages {
		d.AddManager(s)
	}
	for k := 0; k < 6; k++ {
		d.AddMachine(NewMachine("m", states[0]))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirectorStepIdle(b *testing.B) {
	// All machines blocked: the cost of a step that moves nothing.
	u := NewUnitManager("u", 1)
	i, s := NewState("I"), NewState("S")
	i.Connect("go", s, Alloc(u, 0))
	s.Connect("stay", i, Release(u, 0))
	u.SetBusy(0, 1<<62)
	d := NewDirector()
	d.AddManager(u)
	for k := 0; k < 8; k++ {
		d.AddMachine(NewMachine("m", i))
	}
	d.Step() // one machine takes the unit and wedges on the busy gate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTryEdgeConjunction(b *testing.B) {
	// One machine cycling a 4-primitive edge pair.
	u1 := NewUnitManager("u1", 1)
	u2 := NewUnitManager("u2", 1)
	rf := NewRegFileManager("rf", 8)
	i, s := NewState("I"), NewState("S")
	i.Connect("go", s, Alloc(u1, 0), Alloc(u2, 0), Inquire(rf, 3), Alloc(rf, UpdateToken(4)))
	s.Connect("back", i, Release(u1, 0), Release(u2, 0), Release(rf, UpdateToken(4)))
	d := NewDirector()
	d.AddManager(u1, u2, rf)
	d.AddMachine(NewMachine("m", i))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
