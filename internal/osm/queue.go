package osm

// QueueManager manages the entries of an in-order queue, such as the
// completion queue of the PowerPC 750 model: tokens are granted in
// program order and may only be released in the same order. An
// operation whose completion-queue token is not at the head of the
// queue has its release refused and stalls, which is exactly in-order
// retirement. Discard (squash) may remove a token from anywhere in the
// queue.
type QueueManager struct {
	BaseManager
	// ReleaseGate, if non-nil, must additionally approve the release
	// of the head entry (e.g. "at most two retires per cycle").
	ReleaseGate func(m *Machine, t Token) bool

	capacity int
	ring     []queueEntry // fixed-size circular buffer
	head, n  int
	seq      TokenID
}

type queueEntry struct {
	id    TokenID
	owner *Machine
}

// NewQueueManager returns an empty in-order queue with n entries.
func NewQueueManager(name string, n int) *QueueManager {
	return &QueueManager{
		BaseManager: BaseManager{ManagerName: name},
		capacity:    n,
		ring:        make([]queueEntry, n),
	}
}

func (q *QueueManager) at(i int) *queueEntry {
	return &q.ring[(q.head+i)%q.capacity]
}

// Cap returns the queue capacity.
func (q *QueueManager) Cap() int { return q.capacity }

// Len returns the number of occupied entries.
func (q *QueueManager) Len() int { return q.n }

// Head returns the machine owning the oldest entry, or nil if empty.
func (q *QueueManager) Head() *Machine {
	if q.n == 0 {
		return nil
	}
	return q.ring[q.head].owner
}

// Holder reports the owner of the queue's head when id names it
// (HolderReporter): a machine blocked allocating a full queue waits on
// the head's owner.
func (q *QueueManager) Holder(id TokenID) *Machine {
	for i := 0; i < q.n; i++ {
		if e := q.at(i); e.id == id {
			return e.owner
		}
	}
	return q.Head()
}

// Allocate grants the next entry in program order when the queue is
// not full.
func (q *QueueManager) Allocate(m *Machine, id TokenID) (Token, bool) {
	if q.n >= q.capacity {
		return Token{}, false
	}
	q.seq++
	*q.at(q.n) = queueEntry{id: q.seq, owner: m}
	q.n++
	return Token{Mgr: q, ID: q.seq}, true
}

// CancelAllocate removes the tentatively appended entry and rewinds
// the sequence counter, leaving the queue bit-identical to before the
// grant. The compiled engine's check-then-commit path relies on
// tentative grants having no residue (see CheckableManager).
func (q *QueueManager) CancelAllocate(m *Machine, t Token) {
	q.n--
	q.seq--
}

// Inquire reports, for AnyUnit, whether the queue has a free entry;
// for a granted identifier, whether that entry is at the head (useful
// to guard "may I complete?" edges without releasing yet).
func (q *QueueManager) Inquire(m *Machine, id TokenID) bool {
	if id == AnyUnit {
		return q.n < q.capacity
	}
	return q.n > 0 && q.ring[q.head].id == id
}

// CanAllocate reports whether Allocate would grant: the queue has a
// free slot. Mutation-free, for check-then-commit callers.
func (q *QueueManager) CanAllocate() bool { return q.n < q.capacity }

// CanRelease reports whether a gate-free Release of the held token id
// would accept: the token is the queue's head. It ignores any
// installed ReleaseGate — check-then-commit callers must test the
// gate themselves and take the transactional route when one is
// installed.
func (q *QueueManager) CanRelease(id TokenID) bool { return q.n > 0 && q.ring[q.head].id == id }

// Release accepts the return of t only when t is the queue's head —
// in-order retirement.
func (q *QueueManager) Release(m *Machine, t Token) bool {
	if q.n == 0 || q.ring[q.head].id != t.ID {
		return false
	}
	if q.ReleaseGate != nil && !q.ReleaseGate(m, t) {
		return false
	}
	q.head = (q.head + 1) % q.capacity
	q.n--
	return true
}

// CancelRelease restores the tentatively popped head.
func (q *QueueManager) CancelRelease(m *Machine, t Token) {
	q.head = (q.head - 1 + q.capacity) % q.capacity
	q.ring[q.head] = queueEntry{id: t.ID, owner: m}
	q.n++
}

// SleepSafeManager reports whether machines blocked on the manager may
// be suspended (SleepSafe): only while no opaque release gate is
// installed.
func (q *QueueManager) SleepSafeManager() bool { return q.ReleaseGate == nil }

// OutstandingGrants enumerates the occupied entries in queue order
// (GrantAuditor).
func (q *QueueManager) OutstandingGrants(yield func(Grant)) {
	for i := 0; i < q.n; i++ {
		e := q.at(i)
		yield(Grant{Owner: e.owner, ID: e.id})
	}
}

// Discarded removes a squashed operation's entry from anywhere in the
// queue. It wakes waiters itself because Machine.Reset discards
// outside any edge commit.
func (q *QueueManager) Discarded(m *Machine, t Token) {
	defer q.Wake()
	for i := 0; i < q.n; i++ {
		if q.at(i).id == t.ID {
			// Shift the tail down one slot.
			for j := i; j < q.n-1; j++ {
				*q.at(j) = *q.at(j + 1)
			}
			q.n--
			return
		}
	}
}
