package osm

// ResetManager implements the control-hazard squashing protocol of the
// paper's Section 4. Models add reset edges — from every speculative
// state back to the initial state, at the highest static priority —
// that carry an Inquire directed at this manager plus Discard
// primitives. The manager rejects inquiries from normal machines, so
// those edges stay dormant; when a branch mis-prediction resolves, the
// hardware layer marks the speculative machines and, at the next
// control step, their reset edges fire, their tokens are discarded and
// the speculative operations are killed.
type ResetManager struct {
	BaseManager
	marked map[*Machine]bool
}

// NewResetManager returns a reset manager with no machines marked.
func NewResetManager(name string) *ResetManager {
	return &ResetManager{
		BaseManager: BaseManager{ManagerName: name},
		marked:      make(map[*Machine]bool),
	}
}

// Mark flags a machine as squashed; its next inquiry succeeds.
// Marking turns dormant reset edges live, so it wakes any suspended
// waiters.
func (r *ResetManager) Mark(m *Machine) {
	r.marked[m] = true
	r.Wake()
}

// SleepSafeManager reports that machines blocked on the manager may be
// suspended (SleepSafe): inquiries only turn true through Mark, which
// wakes.
func (r *ResetManager) SleepSafeManager() bool { return true }

// Unmark clears a machine's squash flag. Reset edges call it from
// their Action so the recycled machine is admitted normally when it
// fetches its next operation.
func (r *ResetManager) Unmark(m *Machine) { delete(r.marked, m) }

// Marked reports whether m is currently flagged.
func (r *ResetManager) Marked(m *Machine) bool { return r.marked[m] }

// MarkedCount returns the number of machines currently flagged.
func (r *ResetManager) MarkedCount() int { return len(r.marked) }

// Allocate always fails; the reset manager grants no tokens.
func (r *ResetManager) Allocate(m *Machine, id TokenID) (Token, bool) {
	return Token{}, false
}

// Inquire accepts only machines that have been marked for squashing.
func (r *ResetManager) Inquire(m *Machine, id TokenID) bool {
	if len(r.marked) == 0 {
		return false
	}
	return r.marked[m]
}

// Release always fails; no tokens are ever granted.
func (r *ResetManager) Release(m *Machine, t Token) bool { return false }

// OutstandingGrants is empty: the reset manager never grants tokens
// (GrantAuditor).
func (r *ResetManager) OutstandingGrants(yield func(Grant)) {}

// ResetEdge adds the canonical reset edge to a state: highest static
// priority, guarded by an inquiry to reset, discarding all held tokens
// and returning to initial. The machine is unmarked as part of the
// edge action. The state's existing edges keep their relative order
// below the new edge. It returns the edge for further decoration.
func ResetEdge(from, initial *State, reset *ResetManager) *Edge {
	e := &Edge{
		Name:  from.Name + "-reset",
		From:  from,
		To:    initial,
		Prims: []Primitive{Inquire(reset, 0), Discard(nil, AllTokens)},
		Action: func(m *Machine) {
			reset.Unmark(m)
		},
	}
	from.Out = append([]*Edge{e}, from.Out...)
	return e
}
