package osm

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/snap"
)

// Recorder is a Tracer that accumulates a transition history and
// per-state / per-edge statistics — the raw material for pipeline
// diagrams and utilization reports. Install it with
// director.Tracer = recorder (or chain it from another Tracer).
type Recorder struct {
	// Limit bounds the retained history to the most recent Limit
	// events (0 = unlimited). Statistics always cover the whole run.
	Limit int
	// Next, if non-nil, receives every transition after it is
	// recorded, so a bounded Recorder can be chained in front of
	// another Tracer without hiding events from it.
	Next Tracer

	events     []Event
	start      int // ring start when len(events) == Limit
	edgeCount  map[string]uint64
	stateEnter map[string]uint64
	firstStep  uint64
	lastStep   uint64
	any        bool
	total      uint64
	sum        uint64
}

// Event is one recorded transition. The JSON tags are the wire form
// the HTTP trace stream uses.
type Event struct {
	// Step is the control step the transition committed in.
	Step uint64 `json:"step"`
	// Machine is the transitioning machine's name.
	Machine string `json:"machine"`
	// Edge, From and To identify the transition.
	Edge string `json:"edge"`
	From string `json:"from"`
	To   string `json:"to"`
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		edgeCount:  make(map[string]uint64),
		stateEnter: make(map[string]uint64),
	}
}

// Transition implements Tracer.
func (r *Recorder) Transition(step uint64, m *Machine, e *Edge) {
	if !r.any {
		r.firstStep, r.any = step, true
	}
	r.lastStep = step
	r.edgeCount[e.Name]++
	r.stateEnter[e.To.Name]++
	ev := Event{
		Step: step, Machine: m.Name, Edge: e.Name,
		From: e.From.Name, To: e.To.Name,
	}
	r.total++
	r.sum = ev.hash(r.sum)
	if r.Limit == 0 || len(r.events) < r.Limit {
		r.events = append(r.events, ev)
	} else {
		// History is full: overwrite the oldest event so the retained
		// window tracks the end of the run, not its beginning.
		r.events[r.start] = ev
		r.start++
		if r.start == r.Limit {
			r.start = 0
		}
	}
	if r.Next != nil {
		r.Next.Transition(step, m, e)
	}
}

// Events returns the retained history in commit order. With a Limit
// set, these are the most recent Limit events.
func (r *Recorder) Events() []Event {
	if r.start == 0 {
		return r.events
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// EventsSince returns the retained events with Step >= step, in
// commit order — the incremental form a live trace consumer (such as
// the HTTP trace stream) uses to pick up where it left off. Events
// that fell out of a bounded ring are gone; compare Total against the
// consumed count to detect the gap.
func (r *Recorder) EventsSince(step uint64) []Event {
	all := r.Events()
	// The ring is in commit order, so steps are non-decreasing:
	// binary-search the first index at or past step.
	lo, hi := 0, len(all)
	for lo < hi {
		mid := (lo + hi) / 2
		if all[mid].Step < step {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return all[lo:]
}

// Total returns the number of transitions ever recorded, independent
// of the retention Limit.
func (r *Recorder) Total() uint64 { return r.total }

// Checksum returns an order-dependent FNV-1a digest over every
// transition ever recorded (independent of the retention Limit), so
// two runs can be compared for trace identity without retaining their
// full histories.
func (r *Recorder) Checksum() uint64 { return r.sum }

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// hash folds the event into an FNV-1a running digest.
func (ev *Event) hash(sum uint64) uint64 {
	if sum == 0 {
		sum = fnvOffset
	}
	for i := 0; i < 8; i++ {
		sum = (sum ^ (ev.Step >> (8 * i) & 0xff)) * fnvPrime
	}
	for _, s := range [...]string{ev.Machine, ev.Edge, ev.From, ev.To} {
		for i := 0; i < len(s); i++ {
			sum = (sum ^ uint64(s[i])) * fnvPrime
		}
		sum = (sum ^ 0xff) * fnvPrime // field separator
	}
	return sum
}

// EdgeCount returns how many times the named edge committed.
func (r *Recorder) EdgeCount(edge string) uint64 { return r.edgeCount[edge] }

// StateEntries returns how many times any machine entered the named
// state.
func (r *Recorder) StateEntries(state string) uint64 { return r.stateEnter[state] }

// Steps returns the number of control steps spanned by the recording.
func (r *Recorder) Steps() uint64 {
	if !r.any {
		return 0
	}
	return r.lastStep - r.firstStep + 1
}

// Utilization returns entries-per-step for the named state — for a
// single-unit pipeline stage this is its occupancy utilization.
func (r *Recorder) Utilization(state string) float64 {
	steps := r.Steps()
	if steps == 0 {
		return 0
	}
	return float64(r.stateEnter[state]) / float64(steps)
}

// Report writes a per-edge and per-state summary, sorted by name for
// determinism.
func (r *Recorder) Report(w io.Writer) {
	fmt.Fprintf(w, "steps: %d, transitions: %d\n", r.Steps(), len(r.events))
	var edges []string
	for e := range r.edgeCount {
		edges = append(edges, e)
	}
	sort.Strings(edges)
	for _, e := range edges {
		fmt.Fprintf(w, "  edge %-12s %6d\n", e, r.edgeCount[e])
	}
	var states []string
	for s := range r.stateEnter {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(w, "  state %-11s %6d entries (%.2f/step)\n",
			s, r.stateEnter[s], r.Utilization(s))
	}
}

// recorderVersion versions the SaveState/LoadState encoding.
const recorderVersion = 1

// SaveState serializes the recorder — whole-run aggregates (total,
// checksum, step span, per-edge and per-state counts) plus the
// retained event window in commit order — so a session's trace
// context can travel with its snapshot across a live migration. The
// encoding is deterministic: map keys are sorted, the ring is
// normalized.
func (r *Recorder) SaveState(w *snap.Writer) {
	w.Version(recorderVersion)
	w.U64(r.total)
	w.U64(r.sum)
	w.U64(r.firstStep)
	w.U64(r.lastStep)
	w.Bool(r.any)
	evs := r.Events()
	w.U32(uint32(len(evs)))
	for i := range evs {
		ev := &evs[i]
		w.U64(ev.Step)
		w.String(ev.Machine)
		w.String(ev.Edge)
		w.String(ev.From)
		w.String(ev.To)
	}
	saveCountMap(w, r.edgeCount)
	saveCountMap(w, r.stateEnter)
}

// LoadState replaces the recording with a saved one. The retained
// window is clamped to the recorder's own Limit (keeping the most
// recent events) so a snapshot taken under a larger retention restores
// cleanly into a smaller one; aggregates are retention-independent and
// restore exactly.
func (r *Recorder) LoadState(rd *snap.Reader) error {
	rd.Version("recorder", recorderVersion)
	total := rd.U64()
	sum := rd.U64()
	first := rd.U64()
	last := rd.U64()
	any := rd.Bool()
	n := int(rd.U32())
	if rd.Err() != nil {
		return rd.Err()
	}
	// An event encodes to at least 8 + 4×4 bytes; an implausible count
	// fails before allocation, like every untrusted decoder here.
	if n > rd.Remaining()/24 {
		rd.Failf("recorder: implausible event count %d (%d bytes remaining)", n, rd.Remaining())
		return rd.Err()
	}
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, Event{
			Step:    rd.U64(),
			Machine: rd.String(),
			Edge:    rd.String(),
			From:    rd.String(),
			To:      rd.String(),
		})
	}
	edgeCount, err := loadCountMap(rd)
	if err != nil {
		return err
	}
	stateEnter, err := loadCountMap(rd)
	if err != nil {
		return err
	}
	if r.Limit > 0 && len(evs) > r.Limit {
		evs = evs[len(evs)-r.Limit:]
	}
	r.events = append(r.events[:0], evs...)
	r.start = 0
	r.total = total
	r.sum = sum
	r.firstStep = first
	r.lastStep = last
	r.any = any
	r.edgeCount = edgeCount
	r.stateEnter = stateEnter
	return nil
}

func saveCountMap(w *snap.Writer, m map[string]uint64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.U64(m[k])
	}
}

func loadCountMap(rd *snap.Reader) (map[string]uint64, error) {
	n := int(rd.U32())
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	if n > rd.Remaining()/12 {
		rd.Failf("recorder: implausible count-map size %d (%d bytes remaining)", n, rd.Remaining())
		return nil, rd.Err()
	}
	m := make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		k := rd.String()
		m[k] = rd.U64()
	}
	return m, rd.Err()
}

// Reset clears the recording.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.start = 0
	r.edgeCount = make(map[string]uint64)
	r.stateEnter = make(map[string]uint64)
	r.any = false
	r.total = 0
	r.sum = 0
}
