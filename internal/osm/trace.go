package osm

import (
	"fmt"
	"io"
	"sort"
)

// Recorder is a Tracer that accumulates a transition history and
// per-state / per-edge statistics — the raw material for pipeline
// diagrams and utilization reports. Install it with
// director.Tracer = recorder (or chain it from another Tracer).
type Recorder struct {
	// Limit bounds the retained history to the most recent Limit
	// events (0 = unlimited). Statistics always cover the whole run.
	Limit int
	// Next, if non-nil, receives every transition after it is
	// recorded, so a bounded Recorder can be chained in front of
	// another Tracer without hiding events from it.
	Next Tracer

	events     []Event
	start      int // ring start when len(events) == Limit
	edgeCount  map[string]uint64
	stateEnter map[string]uint64
	firstStep  uint64
	lastStep   uint64
	any        bool
}

// Event is one recorded transition.
type Event struct {
	// Step is the control step the transition committed in.
	Step uint64
	// Machine is the transitioning machine's name.
	Machine string
	// Edge, From and To identify the transition.
	Edge, From, To string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		edgeCount:  make(map[string]uint64),
		stateEnter: make(map[string]uint64),
	}
}

// Transition implements Tracer.
func (r *Recorder) Transition(step uint64, m *Machine, e *Edge) {
	if !r.any {
		r.firstStep, r.any = step, true
	}
	r.lastStep = step
	r.edgeCount[e.Name]++
	r.stateEnter[e.To.Name]++
	ev := Event{
		Step: step, Machine: m.Name, Edge: e.Name,
		From: e.From.Name, To: e.To.Name,
	}
	if r.Limit == 0 || len(r.events) < r.Limit {
		r.events = append(r.events, ev)
	} else {
		// History is full: overwrite the oldest event so the retained
		// window tracks the end of the run, not its beginning.
		r.events[r.start] = ev
		r.start++
		if r.start == r.Limit {
			r.start = 0
		}
	}
	if r.Next != nil {
		r.Next.Transition(step, m, e)
	}
}

// Events returns the retained history in commit order. With a Limit
// set, these are the most recent Limit events.
func (r *Recorder) Events() []Event {
	if r.start == 0 {
		return r.events
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// EdgeCount returns how many times the named edge committed.
func (r *Recorder) EdgeCount(edge string) uint64 { return r.edgeCount[edge] }

// StateEntries returns how many times any machine entered the named
// state.
func (r *Recorder) StateEntries(state string) uint64 { return r.stateEnter[state] }

// Steps returns the number of control steps spanned by the recording.
func (r *Recorder) Steps() uint64 {
	if !r.any {
		return 0
	}
	return r.lastStep - r.firstStep + 1
}

// Utilization returns entries-per-step for the named state — for a
// single-unit pipeline stage this is its occupancy utilization.
func (r *Recorder) Utilization(state string) float64 {
	steps := r.Steps()
	if steps == 0 {
		return 0
	}
	return float64(r.stateEnter[state]) / float64(steps)
}

// Report writes a per-edge and per-state summary, sorted by name for
// determinism.
func (r *Recorder) Report(w io.Writer) {
	fmt.Fprintf(w, "steps: %d, transitions: %d\n", r.Steps(), len(r.events))
	var edges []string
	for e := range r.edgeCount {
		edges = append(edges, e)
	}
	sort.Strings(edges)
	for _, e := range edges {
		fmt.Fprintf(w, "  edge %-12s %6d\n", e, r.edgeCount[e])
	}
	var states []string
	for s := range r.stateEnter {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(w, "  state %-11s %6d entries (%.2f/step)\n",
			s, r.stateEnter[s], r.Utilization(s))
	}
}

// Reset clears the recording.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.start = 0
	r.edgeCount = make(map[string]uint64)
	r.stateEnter = make(map[string]uint64)
	r.any = false
}
