package osm

import (
	"fmt"
	"io"
	"sort"
)

// Recorder is a Tracer that accumulates a transition history and
// per-state / per-edge statistics — the raw material for pipeline
// diagrams and utilization reports. Install it with
// director.Tracer = recorder (or chain it from another Tracer).
type Recorder struct {
	// Limit bounds the retained history to the most recent Limit
	// events (0 = unlimited). Statistics always cover the whole run.
	Limit int
	// Next, if non-nil, receives every transition after it is
	// recorded, so a bounded Recorder can be chained in front of
	// another Tracer without hiding events from it.
	Next Tracer

	events     []Event
	start      int // ring start when len(events) == Limit
	edgeCount  map[string]uint64
	stateEnter map[string]uint64
	firstStep  uint64
	lastStep   uint64
	any        bool
	total      uint64
	sum        uint64
}

// Event is one recorded transition. The JSON tags are the wire form
// the HTTP trace stream uses.
type Event struct {
	// Step is the control step the transition committed in.
	Step uint64 `json:"step"`
	// Machine is the transitioning machine's name.
	Machine string `json:"machine"`
	// Edge, From and To identify the transition.
	Edge string `json:"edge"`
	From string `json:"from"`
	To   string `json:"to"`
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		edgeCount:  make(map[string]uint64),
		stateEnter: make(map[string]uint64),
	}
}

// Transition implements Tracer.
func (r *Recorder) Transition(step uint64, m *Machine, e *Edge) {
	if !r.any {
		r.firstStep, r.any = step, true
	}
	r.lastStep = step
	r.edgeCount[e.Name]++
	r.stateEnter[e.To.Name]++
	ev := Event{
		Step: step, Machine: m.Name, Edge: e.Name,
		From: e.From.Name, To: e.To.Name,
	}
	r.total++
	r.sum = ev.hash(r.sum)
	if r.Limit == 0 || len(r.events) < r.Limit {
		r.events = append(r.events, ev)
	} else {
		// History is full: overwrite the oldest event so the retained
		// window tracks the end of the run, not its beginning.
		r.events[r.start] = ev
		r.start++
		if r.start == r.Limit {
			r.start = 0
		}
	}
	if r.Next != nil {
		r.Next.Transition(step, m, e)
	}
}

// Events returns the retained history in commit order. With a Limit
// set, these are the most recent Limit events.
func (r *Recorder) Events() []Event {
	if r.start == 0 {
		return r.events
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// EventsSince returns the retained events with Step >= step, in
// commit order — the incremental form a live trace consumer (such as
// the HTTP trace stream) uses to pick up where it left off. Events
// that fell out of a bounded ring are gone; compare Total against the
// consumed count to detect the gap.
func (r *Recorder) EventsSince(step uint64) []Event {
	all := r.Events()
	// The ring is in commit order, so steps are non-decreasing:
	// binary-search the first index at or past step.
	lo, hi := 0, len(all)
	for lo < hi {
		mid := (lo + hi) / 2
		if all[mid].Step < step {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return all[lo:]
}

// Total returns the number of transitions ever recorded, independent
// of the retention Limit.
func (r *Recorder) Total() uint64 { return r.total }

// Checksum returns an order-dependent FNV-1a digest over every
// transition ever recorded (independent of the retention Limit), so
// two runs can be compared for trace identity without retaining their
// full histories.
func (r *Recorder) Checksum() uint64 { return r.sum }

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// hash folds the event into an FNV-1a running digest.
func (ev *Event) hash(sum uint64) uint64 {
	if sum == 0 {
		sum = fnvOffset
	}
	for i := 0; i < 8; i++ {
		sum = (sum ^ (ev.Step >> (8 * i) & 0xff)) * fnvPrime
	}
	for _, s := range [...]string{ev.Machine, ev.Edge, ev.From, ev.To} {
		for i := 0; i < len(s); i++ {
			sum = (sum ^ uint64(s[i])) * fnvPrime
		}
		sum = (sum ^ 0xff) * fnvPrime // field separator
	}
	return sum
}

// EdgeCount returns how many times the named edge committed.
func (r *Recorder) EdgeCount(edge string) uint64 { return r.edgeCount[edge] }

// StateEntries returns how many times any machine entered the named
// state.
func (r *Recorder) StateEntries(state string) uint64 { return r.stateEnter[state] }

// Steps returns the number of control steps spanned by the recording.
func (r *Recorder) Steps() uint64 {
	if !r.any {
		return 0
	}
	return r.lastStep - r.firstStep + 1
}

// Utilization returns entries-per-step for the named state — for a
// single-unit pipeline stage this is its occupancy utilization.
func (r *Recorder) Utilization(state string) float64 {
	steps := r.Steps()
	if steps == 0 {
		return 0
	}
	return float64(r.stateEnter[state]) / float64(steps)
}

// Report writes a per-edge and per-state summary, sorted by name for
// determinism.
func (r *Recorder) Report(w io.Writer) {
	fmt.Fprintf(w, "steps: %d, transitions: %d\n", r.Steps(), len(r.events))
	var edges []string
	for e := range r.edgeCount {
		edges = append(edges, e)
	}
	sort.Strings(edges)
	for _, e := range edges {
		fmt.Fprintf(w, "  edge %-12s %6d\n", e, r.edgeCount[e])
	}
	var states []string
	for s := range r.stateEnter {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(w, "  state %-11s %6d entries (%.2f/step)\n",
			s, r.stateEnter[s], r.Utilization(s))
	}
}

// Reset clears the recording.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.start = 0
	r.edgeCount = make(map[string]uint64)
	r.stateEnter = make(map[string]uint64)
	r.any = false
	r.total = 0
	r.sum = 0
}
