package osm

// TokenManager is the token manager interface (TMI) through which a
// hardware module participates in the operation layer. It controls the
// use of one or more closely related tokens.
//
// Transactions are two-phase. The Director evaluates an edge's guard
// by issuing every primitive as a tentative request; a request may
// mutate manager state to reflect the tentative grant. If every
// conjunct succeeds the Director commits them all simultaneously;
// otherwise it cancels the ones that had succeeded. Managers must
// restore their pre-request state exactly on cancel.
//
// Managers may check the identity (the *Machine) of the requester when
// making decisions — the reset manager, for instance, only answers
// inquiries from machines it has marked as squashed.
type TokenManager interface {
	// Name identifies the manager in traces, errors and ADL bindings.
	Name() string

	// Allocate tentatively grants the token named by id to m. It
	// reports whether the token is available to m; on success the
	// returned token records the concrete unit granted.
	Allocate(m *Machine, id TokenID) (Token, bool)
	// CancelAllocate undoes a successful tentative Allocate.
	CancelAllocate(m *Machine, t Token)
	// CommitAllocate finalizes a successful tentative Allocate. After
	// commit the token sits in m's token buffer.
	CommitAllocate(m *Machine, t Token)

	// Inquire reports whether the resource unit named by id is
	// available to m, without transferring ownership. Inquiries are
	// side-effect free.
	Inquire(m *Machine, id TokenID) bool

	// Release tentatively accepts the return of t from m. A manager
	// may reject the request (for example while a variable-latency
	// access is still in flight), in which case the machine retains
	// the token and stalls.
	Release(m *Machine, t Token) bool
	// CancelRelease undoes a successful tentative Release.
	CancelRelease(m *Machine, t Token)
	// CommitRelease finalizes a successful tentative Release; the
	// token returns to the manager. t.Data carries any payload the
	// operation attached (for example a computed register value).
	CommitRelease(m *Machine, t Token)

	// Discarded notifies the manager that m dropped t without
	// permission (a Discard primitive, used on reset edges). The
	// manager reclaims the unit unconditionally.
	Discarded(m *Machine, t Token)
}

// Stepper is implemented by managers that need a notification at the
// start of every control step (to age busy counters, clear per-cycle
// forwarding values, and so on). The Director calls BeginStep on every
// registered manager that implements it, in registration order, before
// scheduling any machine.
type Stepper interface {
	BeginStep(cycle uint64)
}

// WakeNotifier is implemented by managers that accept a
// change-notification hook. The event-driven director (see
// director_event.go) installs a function that re-queues every machine
// suspended on the manager; the manager calls it — via
// BaseManager.Wake — whenever its state changes in a way that could
// turn a previously refused request into a granted one, other than
// through a committed token transaction (which the director observes
// by itself). Typical call sites are time-based state crossings in
// BeginStep (a busy window expiring) and model-level mutators such as
// ResetManager.Mark or BypassManager.Publish.
type WakeNotifier interface {
	// SetWake installs the notification hook. A nil hook disables
	// notification. A manager serves at most one event-driven
	// director at a time; a later SetWake replaces the hook.
	SetWake(func())
}

// SleepSafe is implemented by managers that uphold the wake contract:
// every state change that can unblock a refused Allocate, Inquire or
// Release is either a committed token transaction or is announced
// through the hook installed with SetWake. Machines blocked only on
// sleep-safe managers may be suspended until a wake arrives; machines
// blocked on any other manager are re-evaluated every control step,
// which is always correct but forgoes the event-driven savings.
//
// SleepSafeManager may answer false conditionally: the built-in
// managers do so when a model installed an opaque gate predicate
// (AllocGate, ReleaseGate) whose inputs the manager cannot track.
type SleepSafe interface {
	SleepSafeManager() bool
}

// Grant describes one outstanding token grant from the granting
// manager's perspective: which machine holds which token. Managers
// that track only a grant count — the pool manager hands out
// anonymous, interchangeable tokens — report a nil Owner, and the
// invariant checker matches them by count instead of identity.
type Grant struct {
	// Owner is the machine the grant is bound to, or nil when the
	// manager tracks counts rather than owners.
	Owner *Machine
	// ID is the granted token's identifier in the manager's
	// namespace, or AnyUnit for anonymous grants.
	ID TokenID
}

// GrantAuditor is implemented by managers that can enumerate their
// outstanding grants. The invariant checker cross-checks the
// enumeration against every machine's token buffer to verify the
// paper's conservation law: each token is held by exactly one machine
// or by its manager, never both and never neither. All built-in
// managers implement it.
type GrantAuditor interface {
	// OutstandingGrants calls yield once per outstanding grant. The
	// enumeration must reflect committed state only; it is invoked
	// between control steps, never mid-transaction.
	OutstandingGrants(yield func(Grant))
}

// CheckableManager is an optional TokenManager extension for managers
// whose request-phase outcome can be predicted without transacting.
// The compile stage (Director.Compile) uses it to admit guards over
// custom managers to the check-then-commit fast path, which decides
// the whole conjunction with side-effect-free checks and applies the
// transactions only once success is certain — skipping the tentative
// grant/cancel machinery entirely.
//
// Implementations must satisfy the prediction contract:
//
//   - CanAllocate(m, id) reports exactly what Allocate(m, id) would
//     return, and CanRelease(m, t) exactly what Release(m, t) would,
//     given unchanged state; neither mutates anything.
//   - The prediction, and the transaction itself, must depend only on
//     the manager's own state and on committed machine state — never
//     on another manager's tentative (uncommitted) transactions.
//   - A cancelled tentative grant must leave the manager bit-identical
//     to before the grant — sequence counters and other bookkeeping
//     included. (The built-in managers all satisfy this: pool and
//     queue CancelAllocate rewind their token sequence exactly.)
//
// Managers that cannot promise this simply do not implement the
// interface and keep the transactional path; the result is identical
// either way, only slower. The cross-engine differential suites
// exercise both paths against the interpreter.
type CheckableManager interface {
	TokenManager
	// CanAllocate reports whether Allocate(m, id) would succeed,
	// without mutating state.
	CanAllocate(m *Machine, id TokenID) bool
	// CanRelease reports whether Release(m, t) would succeed, without
	// mutating state.
	CanRelease(m *Machine, t Token) bool
}

// HolderReporter is implemented by managers that can report which
// machine currently owns a unit. The deadlock detector uses it to
// build the wait-for graph of the paper's Section 3.4.
type HolderReporter interface {
	// Holder returns the machine owning the unit named by id, or nil
	// if the unit is free or the id does not resolve to an exclusive
	// unit.
	Holder(id TokenID) *Machine
}

// BaseManager provides no-op commit/cancel/notification methods so
// that simple managers only implement the request-phase logic they
// care about. It intentionally does not implement Allocate, Inquire or
// Release: every concrete manager must decide its own grant policy.
type BaseManager struct {
	// ManagerName is returned by Name.
	ManagerName string

	wake func()
}

// Name returns the manager's name.
func (b *BaseManager) Name() string { return b.ManagerName }

// SetWake installs the director's change-notification hook
// (WakeNotifier).
func (b *BaseManager) SetWake(f func()) { b.wake = f }

// Wake invokes the installed change-notification hook, re-queuing any
// machines suspended on the manager. Safe to call when no hook is
// installed.
func (b *BaseManager) Wake() {
	if b.wake != nil {
		b.wake()
	}
}

// CancelAllocate is a no-op.
func (b *BaseManager) CancelAllocate(m *Machine, t Token) {}

// CommitAllocate is a no-op.
func (b *BaseManager) CommitAllocate(m *Machine, t Token) {}

// CancelRelease is a no-op.
func (b *BaseManager) CancelRelease(m *Machine, t Token) {}

// CommitRelease is a no-op.
func (b *BaseManager) CommitRelease(m *Machine, t Token) {}

// Discarded is a no-op.
func (b *BaseManager) Discarded(m *Machine, t Token) {}
