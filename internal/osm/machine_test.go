package osm

import (
	"strings"
	"testing"
)

// recorder wraps a manager and logs the calls it receives, for
// asserting the two-phase transaction protocol.
type recorder struct {
	TokenManager
	log []string
}

func (r *recorder) Allocate(m *Machine, id TokenID) (Token, bool) {
	t, ok := r.TokenManager.Allocate(m, id)
	r.log = append(r.log, "alloc")
	if ok {
		t.Mgr = r // tokens must point at the wrapper so cancels route back
	}
	return t, ok
}

func (r *recorder) CancelAllocate(m *Machine, t Token) {
	r.log = append(r.log, "cancel-alloc")
	r.TokenManager.CancelAllocate(m, t)
}

func (r *recorder) CommitAllocate(m *Machine, t Token) {
	r.log = append(r.log, "commit-alloc")
	r.TokenManager.CommitAllocate(m, t)
}

func (r *recorder) Inquire(m *Machine, id TokenID) bool {
	r.log = append(r.log, "inquire")
	return r.TokenManager.Inquire(m, id)
}

func (r *recorder) Release(m *Machine, t Token) bool {
	r.log = append(r.log, "release")
	return r.TokenManager.Release(m, t)
}

func (r *recorder) CancelRelease(m *Machine, t Token) {
	r.log = append(r.log, "cancel-release")
	r.TokenManager.CancelRelease(m, t)
}

func (r *recorder) CommitRelease(m *Machine, t Token) {
	r.log = append(r.log, "commit-release")
	r.TokenManager.CommitRelease(m, t)
}

func (r *recorder) Discarded(m *Machine, t Token) {
	r.log = append(r.log, "discarded")
	r.TokenManager.Discarded(m, t)
}

func TestMachineStartsInInitial(t *testing.T) {
	i := NewState("I")
	m := NewMachine("op0", i)
	if !m.InInitial() {
		t.Fatal("new machine must rest in its initial state")
	}
	if m.State() != i {
		t.Fatalf("State() = %v, want initial", m.State())
	}
	if len(m.Tokens()) != 0 {
		t.Fatalf("initial token buffer not empty: %v", m.Tokens())
	}
}

func TestEdgeAllocateMovesAndBuffersToken(t *testing.T) {
	i, f := NewState("I"), NewState("F")
	mf := NewUnitManager("fetch", 1)
	i.Connect("e0", f, Alloc(mf, 0))
	m := NewMachine("op0", i)

	ok, err := m.tryEdge(i.Out[0])
	if err != nil || !ok {
		t.Fatalf("tryEdge = %v, %v; want true, nil", ok, err)
	}
	if m.State() != f {
		t.Fatalf("state = %s, want F", m.State().Name)
	}
	if !m.Holds(mf, 0) {
		t.Fatal("machine should hold the fetch token after allocation")
	}
	if mf.Holder(0) != m {
		t.Fatal("manager should record the machine as holder")
	}
}

func TestEdgeFailsWhenTokenUnavailable(t *testing.T) {
	i, f := NewState("I"), NewState("F")
	mf := NewUnitManager("fetch", 1)
	i.Connect("e0", f, Alloc(mf, 0))
	a, b := NewMachine("a", i), NewMachine("b", i)

	if ok, _ := a.tryEdge(i.Out[0]); !ok {
		t.Fatal("first allocation should succeed")
	}
	if ok, _ := b.tryEdge(i.Out[0]); ok {
		t.Fatal("second allocation of an exclusive unit must fail")
	}
	if b.State() != i {
		t.Fatal("failed transition must not change state")
	}
}

func TestConjunctionIsAtomic(t *testing.T) {
	// Edge needs two tokens; the second is taken, so the tentative
	// grant of the first must be cancelled and the first unit must
	// remain free for others.
	i, d := NewState("I"), NewState("D")
	m1 := &recorder{TokenManager: NewUnitManager("m1", 1)}
	m2 := NewUnitManager("m2", 1)
	i.Connect("e", d, Alloc(m1, 0), Alloc(m2, 0))

	blocker := NewMachine("blocker", i)
	if _, ok := m2.Allocate(blocker, 0); !ok {
		t.Fatal("setup: could not occupy m2")
	}

	m := NewMachine("op", i)
	if ok, _ := m.tryEdge(i.Out[0]); ok {
		t.Fatal("edge must fail: m2 is occupied")
	}
	got := strings.Join(m1.log, ",")
	if got != "alloc,cancel-alloc" {
		t.Fatalf("m1 protocol = %q, want tentative alloc then cancel", got)
	}
	if m1.TokenManager.(*UnitManager).Free() != 1 {
		t.Fatal("cancelled allocation must leave the unit free")
	}
	if len(m.Tokens()) != 0 {
		t.Fatal("failed edge must not leave tokens in the buffer")
	}
}

func TestCommitOrderAndAction(t *testing.T) {
	i, f := NewState("I"), NewState("F")
	mf := &recorder{TokenManager: NewUnitManager("fetch", 1)}
	actionRan := false
	e := i.Connect("e0", f, Alloc(mf, 0))
	e.Action = func(m *Machine) {
		actionRan = true
		if len(m.Tokens()) != 1 {
			t.Error("action must run after transactions commit")
		}
	}
	m := NewMachine("op", i)
	if ok, _ := m.tryEdge(e); !ok {
		t.Fatal("edge should fire")
	}
	if !actionRan {
		t.Fatal("edge action did not run")
	}
	got := strings.Join(mf.log, ",")
	if got != "alloc,commit-alloc" {
		t.Fatalf("protocol = %q, want alloc,commit-alloc", got)
	}
}

func TestReleaseCarriesAttachedData(t *testing.T) {
	i, e1, e2 := NewState("I"), NewState("E"), NewState("W")
	rf := NewRegFileManager("regs", 4)
	i.Connect("alloc", e1, Alloc(rf, UpdateToken(2)))
	ed := e1.Connect("rel", e2, Release(rf, UpdateToken(2)))
	_ = ed
	m := NewMachine("op", i)
	if ok, _ := m.tryEdge(i.Out[0]); !ok {
		t.Fatal("update-token allocation failed")
	}
	if err := m.SetData(rf, UpdateToken(2), 0xdead); err != nil {
		t.Fatalf("SetData: %v", err)
	}
	if ok, _ := m.tryEdge(e1.Out[0]); !ok {
		t.Fatal("release failed")
	}
	if got := rf.Read(2); got != 0xdead {
		t.Fatalf("register value = %#x, want 0xdead", got)
	}
	if rf.Pending(2) != 0 {
		t.Fatal("pending count must drop to zero after release commits")
	}
}

func TestSetDataOnUnheldTokenFails(t *testing.T) {
	i := NewState("I")
	rf := NewRegFileManager("regs", 4)
	m := NewMachine("op", i)
	if err := m.SetData(rf, UpdateToken(1), 1); err == nil {
		t.Fatal("SetData on an unheld token must return an error")
	}
}

func TestReleaseOfUnheldTokenIsModelError(t *testing.T) {
	i, f := NewState("I"), NewState("F")
	mf := NewUnitManager("fetch", 1)
	i.Connect("bad", f, Release(mf, 0))
	m := NewMachine("op", i)
	ok, err := m.tryEdge(i.Out[0])
	if ok || err == nil {
		t.Fatalf("releasing an unheld token: got ok=%v err=%v, want model error", ok, err)
	}
}

func TestDiscardAllTokens(t *testing.T) {
	i, f, d := NewState("I"), NewState("F"), NewState("D")
	mf := &recorder{TokenManager: NewUnitManager("fetch", 1)}
	md := &recorder{TokenManager: NewUnitManager("decode", 1)}
	i.Connect("a", f, Alloc(mf, 0))
	f.Connect("b", d, Alloc(md, 0))
	d.Connect("reset", i, Discard(nil, AllTokens))
	m := NewMachine("op", i)
	for _, s := range []*State{i, f, d} {
		if ok, err := m.tryEdge(s.Out[0]); !ok || err != nil {
			t.Fatalf("edge from %s: ok=%v err=%v", s.Name, ok, err)
		}
	}
	if len(m.Tokens()) != 0 {
		t.Fatalf("discard-all left %d tokens", len(m.Tokens()))
	}
	if !strings.Contains(strings.Join(mf.log, ","), "discarded") {
		t.Fatal("fetch manager not notified of discard")
	}
	if !strings.Contains(strings.Join(md.log, ","), "discarded") {
		t.Fatal("decode manager not notified of discard")
	}
	if mf.TokenManager.(*UnitManager).Free() != 1 || md.TokenManager.(*UnitManager).Free() != 1 {
		t.Fatal("discarded units must be reclaimed")
	}
}

func TestDiscardSpecificToken(t *testing.T) {
	i, f := NewState("I"), NewState("F")
	a := NewUnitManager("a", 1)
	b := NewUnitManager("b", 1)
	i.Connect("go", f, Alloc(a, 0), Alloc(b, 0))
	f.Connect("drop-a", i, Discard(a, 0), Release(b, 0))
	m := NewMachine("op", i)
	if ok, _ := m.tryEdge(i.Out[0]); !ok {
		t.Fatal("setup edge failed")
	}
	if ok, err := m.tryEdge(f.Out[0]); !ok || err != nil {
		t.Fatalf("discard edge: ok=%v err=%v", ok, err)
	}
	if a.Free() != 1 || b.Free() != 1 {
		t.Fatal("both units must be free afterwards")
	}
}

func TestDiscardOfUnheldTokenSucceeds(t *testing.T) {
	// Reset edges must stay valid regardless of operation progress.
	i, f := NewState("I"), NewState("F")
	a := NewUnitManager("a", 2)
	i.Connect("go", f)
	f.Connect("reset", i, Discard(a, 1)) // unit 1 is not held
	m := NewMachine("op", i)
	if ok, _ := m.tryEdge(i.Out[0]); !ok {
		t.Fatal("setup edge failed")
	}
	ok, err := m.tryEdge(f.Out[0])
	if err != nil {
		t.Fatalf("discard of unheld token must not be a model error: %v", err)
	}
	if !ok {
		t.Fatal("discard of unheld token must succeed")
	}
}

func TestReturnToInitialWithTokensIsError(t *testing.T) {
	i, f := NewState("I"), NewState("F")
	a := NewUnitManager("a", 1)
	i.Connect("go", f, Alloc(a, 0))
	f.Connect("leak", i) // no release, no discard
	m := NewMachine("op", i)
	if ok, _ := m.tryEdge(i.Out[0]); !ok {
		t.Fatal("setup edge failed")
	}
	ok, err := m.tryEdge(f.Out[0])
	if !ok || err == nil {
		t.Fatalf("leaking back to initial: ok=%v err=%v, want ok with error", ok, err)
	}
}

func TestWhenPredicateGatesEdge(t *testing.T) {
	i, f, g := NewState("I"), NewState("F"), NewState("G")
	e1 := i.Connect("mul-path", f)
	e1.When = func(m *Machine) bool { return m.Ctx == "mul" }
	i.Connect("alu-path", g)
	m := NewMachine("op", i)
	m.Ctx = "add"
	if ok, _ := m.tryEdge(i.Out[0]); ok {
		t.Fatal("When=false edge must not fire")
	}
	if ok, _ := m.tryEdge(i.Out[1]); !ok {
		t.Fatal("unguarded edge must fire")
	}
	if m.State() != g {
		t.Fatalf("state = %s, want G", m.State().Name)
	}
}

func TestMachineResetClearsEverything(t *testing.T) {
	i, f := NewState("I"), NewState("F")
	a := NewUnitManager("a", 1)
	i.Connect("go", f, Alloc(a, 0))
	m := NewMachine("op", i)
	m.Ctx = "payload"
	if ok, _ := m.tryEdge(i.Out[0]); !ok {
		t.Fatal("setup edge failed")
	}
	m.Reset()
	if !m.InInitial() || len(m.Tokens()) != 0 || m.Ctx != nil {
		t.Fatal("Reset must restore the initial, empty-buffer, no-context condition")
	}
	if a.Free() != 1 {
		t.Fatal("Reset must return tokens to their managers")
	}
}

func TestHeldTokenLookup(t *testing.T) {
	i, f := NewState("I"), NewState("F")
	a := NewUnitManager("a", 3)
	i.Connect("go", f, Alloc(a, 2))
	m := NewMachine("op", i)
	if ok, _ := m.tryEdge(i.Out[0]); !ok {
		t.Fatal("setup edge failed")
	}
	if _, ok := m.HeldToken(a, 2); !ok {
		t.Fatal("HeldToken(a,2) should find the token")
	}
	if _, ok := m.HeldToken(a, 1); ok {
		t.Fatal("HeldToken(a,1) should not find a token")
	}
	if tok, ok := m.HeldToken(a, AnyUnit); !ok || tok.ID != 2 {
		t.Fatalf("HeldToken(a,AnyUnit) = %v,%v; want unit 2", tok, ok)
	}
}

func TestPrimitiveConstructorsAndStrings(t *testing.T) {
	a := NewUnitManager("a", 1)
	cases := []struct {
		p    Primitive
		want Op
	}{
		{Alloc(a, 0), OpAllocate},
		{AllocF(a, func(m *Machine) TokenID { return 0 }), OpAllocate},
		{Inquire(a, 0), OpInquire},
		{InquireF(a, func(m *Machine) TokenID { return 0 }), OpInquire},
		{Release(a, 0), OpRelease},
		{ReleaseF(a, func(m *Machine) TokenID { return 0 }), OpRelease},
		{Discard(a, 0), OpDiscard},
	}
	for _, c := range cases {
		if c.p.Op != c.want {
			t.Errorf("constructor built op %v, want %v", c.p.Op, c.want)
		}
		if c.p.String() == "" {
			t.Error("primitive String() should not be empty")
		}
	}
	ops := []Op{OpAllocate, OpInquire, OpRelease, OpDiscard, Op(99)}
	for _, o := range ops {
		if o.String() == "" {
			t.Errorf("Op(%d).String() empty", int(o))
		}
	}
	if (Token{}).String() == "" || (Token{Mgr: a, ID: 1}).String() == "" {
		t.Error("token String() should not be empty")
	}
}
