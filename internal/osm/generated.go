package osm

import "fmt"

// This file implements the generated execution engine
// (EngineGenerated): the runtime side of lowering a model all the way
// to Go source. Where the compiled engine (compiled.go) interprets
// flat guard instruction arrays, the generated engine calls one
// monomorphic Go function per edge — typically emitted by
// internal/osm/gen from the same elaborated structures Compile
// consumes, with the edge's When predicate, identifier resolution and
// concrete manager fast paths inlined at source level, so the Go
// compiler sees through the whole guard.
//
// The scheduling contract is unchanged: generated functions run under
// the event-driven step loop (director_event.go) and must reproduce
// the interpreter's observable semantics exactly — transaction order,
// blocked-primitive attribution, error cases, resulting manager
// state. The check-then-commit shape of the compiled engine's pure
// path (tryEdgePure) is the template: a generated function first
// decides every conjunct with mutation-free availability reads, then
// applies the transactions in instruction order, and it must delegate
// to GenFallback whenever a runtime gate closure makes a manager's
// availability opaque. The differential suites hold all four engines
// to trace-checksum identity.
//
// Like a guard program, an attached function set is derived state: it
// is resolved against the model on demand (AddMachine/AddManager
// invalidate the resolution, not the attachment) and never
// serialized, so snapshots taken under any engine restore under any
// other.

// EdgeFn evaluates one edge's guard for m and, when the whole
// conjunction holds, commits it: applies the transactions, runs the
// edge action and moves the machine (GenFinish). On failure it leaves
// the machine and managers untouched, recording the refusing
// primitive with GenBlock; a failed When predicate records nothing,
// which the scheduler reads as an untracked failure.
type EdgeFn func(m *Machine, e *Edge) (bool, error)

// ProbeFn reports whether e's guard is currently satisfiable for m
// without committing anything — Machine.ProbeEdge semantics: the When
// predicate is consulted, the Action never runs, releasing a token
// the machine does not hold probes false rather than erroring.
type ProbeFn func(m *Machine, e *Edge) bool

// GenEdge bundles the generated evaluator and probe of one edge.
type GenEdge struct {
	Try   EdgeFn
	Probe ProbeFn
}

// GenKey is the key under which an edge's functions are attached: the
// source state's name and the edge's name. State names are unique
// within a model's graphs, so the pair identifies the edge; resolution
// rejects models where it does not.
func GenKey(state, edge string) string { return state + "/" + edge }

// genEdgeRT is one resolved edge: the model edge plus its generated
// functions.
type genEdgeRT struct {
	e  *Edge
	fn GenEdge
}

// genState is one resolved state: its outgoing edges in priority
// order.
type genState struct {
	prog  *GenProgram
	s     *State
	edges []genEdgeRT
}

// GenProgram is an attached generated-function set resolved against
// the model's state graphs, executed by the generated engine
// (EngineGenerated). Build one by calling Director.AttachGenerated;
// it stays valid until machines or managers are added. A program is
// derived state: it is excluded from snapshots and re-resolved on
// demand instead.
type GenProgram struct {
	dir     *Director
	states  []*genState
	byState map[*State]*genState
}

// AttachGenerated installs generated edge functions, keyed by
// GenKey(state, edge), and resolves them against the current model.
// Every edge reachable from a registered machine's initial state must
// have an entry with both Try and Probe set; entries for edges not in
// the graph (a model variant compiled out, say) are allowed and
// ignored. The attachment survives model growth: AddMachine and
// AddManager invalidate the resolution, which is rebuilt from the
// same function map on the next use.
func (d *Director) AttachGenerated(fns map[string]GenEdge) error {
	d.genFns = fns
	d.gen = nil
	_, err := d.generatedProgram()
	return err
}

// Generated returns the resolved generated-edge program, resolving it
// against the current model on first use. It errors when no function
// set is attached or the attachment does not cover the model. Setting
// Engine to EngineGenerated resolves implicitly on the first Step;
// calling Generated directly surfaces resolution errors early.
func (d *Director) Generated() (*GenProgram, error) { return d.generatedProgram() }

func (d *Director) generatedProgram() (*GenProgram, error) {
	if d.gen != nil {
		return d.gen, nil
	}
	if d.genFns == nil {
		return nil, fmt.Errorf("osm: engine generated: no edge functions attached (Director.AttachGenerated)")
	}
	d.ensurePrims()
	g := &GenProgram{dir: d, byState: make(map[*State]*genState)}
	bound := make(map[string]*Edge, len(d.genFns))
	for _, m := range d.machines {
		if m.Initial == nil {
			return nil, fmt.Errorf("osm: generated: machine %s has no initial state", m.Name)
		}
		if err := g.addGraph(m.Initial, d.genFns, bound); err != nil {
			return nil, err
		}
	}
	for _, gs := range g.states {
		gs.s.gen = gs // fast state→program lookup for the executor
	}
	d.gen = g
	return g, nil
}

// addGraph resolves the graph reachable from initial, skipping states
// another machine's walk already covered.
func (g *GenProgram) addGraph(initial *State, fns map[string]GenEdge, bound map[string]*Edge) error {
	var walk func(s *State) error
	walk = func(s *State) error {
		if _, done := g.byState[s]; done {
			return nil
		}
		gs := &genState{prog: g, s: s}
		g.byState[s] = gs
		g.states = append(g.states, gs)
		for _, e := range s.Out {
			k := GenKey(s.Name, e.Name)
			if prev, dup := bound[k]; dup && prev != e {
				return fmt.Errorf("osm: generated: key %q is ambiguous: two distinct edges share state and edge names", k)
			}
			fn, ok := fns[k]
			if !ok {
				return fmt.Errorf("osm: generated: state %s, edge %s: no generated function for key %q", s.Name, e.Name, k)
			}
			if fn.Try == nil || fn.Probe == nil {
				return fmt.Errorf("osm: generated: key %q: Try and Probe must both be set", k)
			}
			bound[k] = e
			gs.edges = append(gs.edges, genEdgeRT{e: e, fn: fn})
		}
		for _, e := range s.Out {
			if err := walk(e.To); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(initial)
}

// stateOf returns the resolved form of s, or nil when s is not part of
// the program (the graph was mutated after resolution; the caller
// falls back to the interpreted path).
func (g *GenProgram) stateOf(s *State) *genState {
	if gs := s.gen; gs != nil && gs.prog == g {
		return gs
	}
	if gs, ok := g.byState[s]; ok {
		s.gen = gs // re-stamp after another program overwrote it
		return gs
	}
	return nil
}

// Probe evaluates e's guard for m through the generated probe without
// committing anything, mirroring Machine.ProbeEdge on the generated
// path. It errors when e is not part of the program.
func (g *GenProgram) Probe(m *Machine, e *Edge) (bool, error) {
	gs := g.stateOf(e.From)
	if gs == nil {
		return false, fmt.Errorf("osm: generated probe: state %s is not in the program", e.From.Name)
	}
	for i := range gs.edges {
		if gs.edges[i].e == e {
			return gs.edges[i].fn.Probe(m, e), nil
		}
	}
	return false, fmt.Errorf("osm: generated probe: edge %s is not in the program", e.Name)
}

// serveGenerated is serveMachine's generated fast path: it evaluates
// the machine's generated outgoing edges in priority order and commits
// the first satisfied one, maintaining ages and the tracer exactly
// like the interpreted path.
func (d *Director) serveGenerated(m *Machine, gs *genState, wasInitial bool) (bool, *Edge, error) {
	for i := range gs.edges {
		ge := &gs.edges[i]
		before := len(m.blocked)
		ok, err := ge.fn.Try(m, ge.e)
		if err != nil {
			return false, nil, fmt.Errorf("osm: step %d: %w", d.step, err)
		}
		if !ok {
			if len(m.blocked) == before {
				m.sched.untracked = true
			}
			continue
		}
		if wasInitial && !m.InInitial() {
			d.nextAge++
			m.Age = d.nextAge
		}
		if d.Tracer != nil {
			d.Tracer.Transition(d.step, m, ge.e)
		}
		return true, ge.e, nil
	}
	return false, nil, nil
}

// The helpers below are the narrow surface generated code is written
// against. They expose exactly the interpreter's bookkeeping —
// token-buffer access, blocked-primitive attribution, the commit
// epilogue — so a generated function can inline everything else and
// still leave the machine in states the interpreter could have
// produced.

// GenFindHeld returns the token-buffer index of the machine's token
// from mgr with the given identifier (AnyUnit matches any), or -1.
// Generated release checks record the index so the commit pass can
// remove the token without a second scan.
func (m *Machine) GenFindHeld(mgr TokenManager, id TokenID) int { return m.findToken(mgr, id) }

// GenTokenAt returns the token at buffer index i.
func (m *Machine) GenTokenAt(i int) Token { return m.tokens[i] }

// GenRemoveAt removes and returns the token at buffer index i. A
// generated commit pass that removes several tokens must compensate
// later recorded indexes for earlier removals.
func (m *Machine) GenRemoveAt(i int) Token {
	t := m.tokens[i]
	m.tokens = append(m.tokens[:i], m.tokens[i+1:]...)
	return t
}

// GenAdd appends a granted token to the machine's buffer.
func (m *Machine) GenAdd(t Token) { m.addToken(t) }

// GenBlock records e's pi-th primitive as the refusing conjunct of a
// failed attempt and returns false, so a generated check pass can
// fail with a single expression.
func (m *Machine) GenBlock(e *Edge, pi int) bool {
	m.blocked = append(m.blocked, &e.Prims[pi])
	return false
}

// GenDiscard applies e's pi-th primitive as a committed discard.
func (m *Machine) GenDiscard(e *Edge, pi int) { m.commitDiscard(&e.Prims[pi]) }

// GenFinish is the commit epilogue of a generated edge function: it
// opens a fresh identifier-resolution epoch, runs the edge action,
// moves the machine and counts the transition, returning the
// interpreter's error when the machine re-enters its initial state
// still holding tokens.
func (m *Machine) GenFinish(e *Edge) error {
	m.dynEpoch++
	if e.Action != nil {
		e.Action(m)
	}
	m.cur = e.To
	m.moves++
	if m.cur == m.Initial && len(m.tokens) > 0 {
		return fmt.Errorf("osm: machine %s returned to initial state %s holding %d token(s); first: %s",
			m.Name, m.Initial.Name, len(m.tokens), m.tokens[0])
	}
	return nil
}

// GenFallback evaluates e through the interpreter. Generated functions
// delegate here when a runtime gate closure (UnitManager.AllocGate and
// friends) makes a manager's availability opaque to the inlined check,
// and for edges the generator could not prove pure.
func (m *Machine) GenFallback(e *Edge) (bool, error) { return m.tryEdge(e) }

// GenErrNotHeld is the interpreter's release-of-unheld-token error,
// returned by generated check passes.
func (m *Machine) GenErrNotHeld(e *Edge, mgr TokenManager, id TokenID) error {
	return fmt.Errorf("osm: machine %s: edge %s releases token %s:%d it does not hold",
		m.Name, e.Name, mgr.Name(), id)
}

// GenErrAllocContract reports a CheckableManager that granted
// CanAllocate but refused the Allocate a generated commit pass issued.
func (m *Machine) GenErrAllocContract(e *Edge, mgr TokenManager, id TokenID) error {
	return fmt.Errorf("osm: machine %s: edge %s: manager %s granted CanAllocate(%d) but refused Allocate (CheckableManager contract violation)",
		m.Name, e.Name, mgr.Name(), id)
}

// GenErrReleaseContract reports a CheckableManager that granted
// CanRelease but refused the Release a generated commit pass issued.
func (m *Machine) GenErrReleaseContract(e *Edge, mgr TokenManager) error {
	return fmt.Errorf("osm: machine %s: edge %s: manager %s granted CanRelease but refused Release (CheckableManager contract violation)",
		m.Name, e.Name, mgr.Name())
}
