package osm

import "fmt"

// UpdateToken converts a register number into the identifier of its
// register-update token in a RegFileManager's namespace. Plain
// register numbers identify value tokens.
func UpdateToken(reg int) TokenID { return TokenID(reg) | regUpdateFlag }

const regUpdateFlag TokenID = 1 << 32

// RegFileManager models a register file in the OSM hardware layer. It
// manages two families of tokens, as in the paper's Section 4:
//
//   - value tokens, one per register, accessed non-exclusively with
//     Inquire: an inquiry about register r succeeds only while no
//     update of r is outstanding, which is how data hazards are
//     resolved (dependent operations stall until the writer retires);
//
//   - register-update tokens, allocated exclusively by an operation
//     that will write r, held from issue to write-back, and released
//     with the computed result attached as the token's Data.
//
// RenameDepth > 1 permits several outstanding updates of the same
// register, modeling rename buffers; readers still wait until every
// outstanding update has retired (value tokens track architected
// state only — models wanting forwarding add a BypassManager).
type RegFileManager struct {
	BaseManager
	// RenameDepth is the number of update tokens available per
	// register. The zero value is treated as 1 (a scoreboard).
	RenameDepth int

	vals    []uint64
	pending []int
	writers [][]*Machine // outstanding writers per register, oldest first
}

// NewRegFileManager returns a register file of n registers with all
// values zero and no outstanding updates.
func NewRegFileManager(name string, n int) *RegFileManager {
	return &RegFileManager{
		BaseManager: BaseManager{ManagerName: name},
		vals:        make([]uint64, n),
		pending:     make([]int, n),
		writers:     make([][]*Machine, n),
	}
}

// Len returns the number of registers.
func (r *RegFileManager) Len() int { return len(r.vals) }

// Read returns the architected value of register reg. The hardware
// layer and edge actions use it to fetch granted operand values.
func (r *RegFileManager) Read(reg int) uint64 { return r.vals[reg] }

// Write sets the architected value of register reg directly,
// bypassing the token protocol. It is intended for initialization and
// for the functional (instruction-set) simulation layer.
func (r *RegFileManager) Write(reg int, v uint64) {
	r.vals[reg] = v
	r.Wake()
}

// SleepSafeManager reports that machines blocked on the manager may be
// suspended (SleepSafe): availability only changes through the token
// protocol and Write, which wakes.
func (r *RegFileManager) SleepSafeManager() bool { return true }

// Pending returns the number of outstanding updates of register reg.
func (r *RegFileManager) Pending(reg int) int { return r.pending[reg] }

func (r *RegFileManager) depth() int {
	if r.RenameDepth <= 0 {
		return 1
	}
	return r.RenameDepth
}

func (r *RegFileManager) split(id TokenID) (reg int, update bool, ok bool) {
	update = id&regUpdateFlag != 0
	reg = int(id &^ regUpdateFlag)
	return reg, update, reg >= 0 && reg < len(r.vals)
}

// Allocate grants a register-update token for the named register if a
// rename slot is free. Value tokens cannot be allocated: they are
// non-exclusive and only support Inquire.
func (r *RegFileManager) Allocate(m *Machine, id TokenID) (Token, bool) {
	reg, update, ok := r.split(id)
	if !ok || !update {
		return Token{}, false
	}
	if r.pending[reg] >= r.depth() {
		return Token{}, false
	}
	r.pending[reg]++
	r.writers[reg] = append(r.writers[reg], m)
	return Token{Mgr: r, ID: id}, true
}

// CancelAllocate returns the tentatively taken rename slot.
// CanAllocate reports whether Allocate(id) would grant, without
// taking the rename slot. Mutation-free, for check-then-commit
// callers (the compiled engine's pure path and generated edge
// functions).
func (r *RegFileManager) CanAllocate(id TokenID) bool { return rfCanAllocate(r, id) }

func (r *RegFileManager) CancelAllocate(m *Machine, t Token) {
	reg, _, _ := r.split(t.ID)
	r.pending[reg]--
	r.writers[reg] = r.writers[reg][:len(r.writers[reg])-1]
}

// Inquire reports availability: for a value token, that no update of
// the register is outstanding (other than by m itself); for an update
// token, that a rename slot is free.
func (r *RegFileManager) Inquire(m *Machine, id TokenID) bool {
	reg, update, ok := r.split(id)
	if !ok {
		return false
	}
	if update {
		return r.pending[reg] < r.depth()
	}
	if r.pending[reg] == 0 {
		return true
	}
	// An operation that writes a register it also reads must not
	// stall on its own update token.
	for _, w := range r.writers[reg] {
		if w != m {
			return false
		}
	}
	return true
}

// Release accepts the return of an update token.
func (r *RegFileManager) Release(m *Machine, t Token) bool { return true }

// CommitRelease retires the oldest outstanding update by m and writes
// the token's Data payload into the register.
func (r *RegFileManager) CommitRelease(m *Machine, t Token) {
	reg, update, _ := r.split(t.ID)
	if !update {
		return
	}
	r.retire(m, reg)
	r.vals[reg] = t.Data
}

// Discarded drops an outstanding update without writing the register
// (a squashed speculative writer).
func (r *RegFileManager) Discarded(m *Machine, t Token) {
	reg, update, ok := r.split(t.ID)
	if !ok || !update {
		return
	}
	r.retire(m, reg)
	// Machine.Reset discards outside any edge commit; wake waiters.
	r.Wake()
}

func (r *RegFileManager) retire(m *Machine, reg int) {
	ws := r.writers[reg]
	for i, w := range ws {
		if w == m {
			r.writers[reg] = append(ws[:i], ws[i+1:]...)
			r.pending[reg]--
			return
		}
	}
	panic(fmt.Sprintf("osm: %s: machine %s retires update of r%d it never allocated",
		r.ManagerName, m.Name, reg))
}

// OutstandingGrants enumerates the outstanding register-update tokens,
// one per writer per register (GrantAuditor). Value tokens are
// non-exclusive and never granted, so they do not appear.
func (r *RegFileManager) OutstandingGrants(yield func(Grant)) {
	for reg, ws := range r.writers {
		for _, w := range ws {
			yield(Grant{Owner: w, ID: UpdateToken(reg)})
		}
	}
}

// Holder reports the oldest outstanding writer of the register named
// by an update token (HolderReporter); readers blocked on the value
// token wait, transitively, on that writer.
func (r *RegFileManager) Holder(id TokenID) *Machine {
	reg, _, ok := r.split(id)
	if !ok || len(r.writers[reg]) == 0 {
		return nil
	}
	return r.writers[reg][0]
}
