package osm

import (
	"fmt"
	"testing"
)

// diffModel is a small but adversarial model for scheduler
// equivalence: a three-stage ring with a When-gated injector
// (untracked failures), a shared pool, busy windows (time-based
// wakes), and externally driven squashes (reset edges with
// machine-wide discards).
type diffModel struct {
	d      *Director
	uA, uB *UnitManager
	pool   *PoolManager
	reset  *ResetManager
	issued int
	total  int
}

func buildDiffModel(machines, total int) *diffModel {
	md := &diffModel{
		uA:    NewUnitManager("uA", 1),
		uB:    NewUnitManager("uB", 2),
		pool:  NewPoolManager("pool", 2),
		reset: NewResetManager("reset"),
		total: total,
	}
	I := NewState("I")
	A := NewState("A")
	B := NewState("B")

	issue := I.Connect("issue", A, Alloc(md.uA, 0))
	issue.When = func(m *Machine) bool { return md.issued < md.total }
	issue.Action = func(m *Machine) { md.issued++ }

	ab := A.Connect("ab", B,
		Release(md.uA, 0),
		Alloc(md.uB, AnyUnit),
		Alloc(md.pool, AnyUnit))
	ab.Action = func(m *Machine) {
		if t, ok := m.HeldToken(md.uB, AnyUnit); ok {
			// A deterministic, machine-dependent busy window exercises
			// the BeginStep crossing wakes.
			md.uB.SetBusy(t.ID, uint64(m.Age%3))
		}
	}

	B.Connect("done", I,
		ReleaseF(md.uB, func(m *Machine) TokenID { return AnyUnit }),
		ReleaseF(md.pool, func(m *Machine) TokenID { return AnyUnit }))

	ResetEdge(A, I, md.reset)
	ResetEdge(B, I, md.reset)

	d := NewDirector()
	d.AddManager(md.uA, md.uB, md.pool, md.reset)
	for i := 0; i < machines; i++ {
		d.AddMachine(NewMachine(fmt.Sprintf("m%d", i), I))
	}
	md.d = d
	return md
}

// runDiffModel drives the model for steps control steps under the
// given engine, squashing the youngest active machine at a fixed
// cadence, and returns the transition trace.
func runDiffModel(t *testing.T, eng Engine, noRestart bool, policy bool, steps int) []Event {
	t.Helper()
	md := buildDiffModel(6, 1<<30)
	md.d.Engine = eng
	md.d.NoRestart = noRestart
	if policy {
		md.d.RestartPolicy = func(m *Machine, e *Edge) bool { return e.Name == "done" }
	}
	rec := NewRecorder()
	md.d.Tracer = rec
	for i := 0; i < steps; i++ {
		if i > 0 && i%17 == 0 {
			var youngest *Machine
			for _, m := range md.d.Machines() {
				if !m.InInitial() && (youngest == nil || m.Age > youngest.Age) {
					youngest = m
				}
			}
			if youngest != nil {
				md.reset.Mark(youngest)
			}
		}
		if err := md.d.Step(); err != nil {
			t.Fatalf("step %d (engine=%v noRestart=%v policy=%v): %v", i, eng, noRestart, policy, err)
		}
	}
	return rec.Events()
}

// TestEventSchedulerMatchesScan locks the event-driven and compiled
// engines to the reference scan over a model exercising untracked
// failures, busy-window wakes, restarts, restart policies and
// squashes.
func TestEventSchedulerMatchesScan(t *testing.T) {
	for _, tc := range []struct {
		name      string
		noRestart bool
		policy    bool
	}{
		{"restart", false, false},
		{"norestart", true, false},
		{"policy", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := runDiffModel(t, EngineScan, tc.noRestart, tc.policy, 400)
			if len(want) == 0 {
				t.Fatal("reference run produced no transitions")
			}
			for _, eng := range []Engine{EngineEvent, EngineCompiled} {
				got := runDiffModel(t, eng, tc.noRestart, tc.policy, 400)
				compareTraces(t, want, got)
			}
		})
	}
}

func compareTraces(t *testing.T, want, got []Event) {
	t.Helper()
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Fatalf("traces diverge at transition %d:\n  scan:  %+v\n  event: %+v", i, want[i], got[i])
		}
	}
	if len(want) != len(got) {
		t.Fatalf("trace lengths differ: scan %d vs event %d", len(want), len(got))
	}
}

// TestEventSchedulerIdleCostsNoEvaluations checks the point of the
// exercise: once every machine is suspended on unchanging managers,
// further steps evaluate nothing.
func TestEventSchedulerIdleCostsNoEvaluations(t *testing.T) {
	u := NewUnitManager("u", 1)
	S := NewState("S")
	I := NewState("I")
	evals := 0
	e := I.Connect("grab", S, Alloc(u, 0))
	e.When = func(m *Machine) bool { evals++; return true }
	S.Connect("back", I, Release(u, 0))

	d := NewDirector()
	d.AddManager(u)
	for i := 0; i < 4; i++ {
		d.AddMachine(NewMachine(fmt.Sprintf("m%d", i), I))
	}
	// Wedge the unit: the owner can never release it.
	u.SetBusy(0, 1<<60)
	for i := 0; i < 3; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// By now m0 owns u and sleeps on its release; m1..m3 sleep on the
	// allocation. Further steps must not invoke any When predicate.
	evals = 0
	for i := 0; i < 50; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if evals != 0 {
		t.Fatalf("idle steps evaluated edges %d times; want 0", evals)
	}
}

// TestEventSchedulerWakeAfterIdle checks that a manager-state change
// after a long fully-suspended stretch reactivates the population.
func TestEventSchedulerWakeAfterIdle(t *testing.T) {
	u := NewUnitManager("u", 1)
	I := NewState("I")
	S := NewState("S")
	I.Connect("grab", S, Alloc(u, 0))
	S.Connect("back", I, Release(u, 0))

	d := NewDirector()
	d.AddManager(u)
	m0 := NewMachine("m0", I)
	m1 := NewMachine("m1", I)
	d.AddMachine(m0, m1)
	rec := NewRecorder()
	d.Tracer = rec

	u.SetBusy(0, 4) // the unit refuses release until step 5
	for i := 0; i < 3; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m0.InInitial() || !m1.InInitial() {
		t.Fatalf("unexpected states: m0 initial=%v m1 initial=%v", m0.InInitial(), m1.InInitial())
	}
	if got := rec.EdgeCount("grab"); got != 1 {
		t.Fatalf("before the busy window expires: %d grabs, want 1", got)
	}
	// Steps 3..4: everyone suspended. Step 5: the busy window expires,
	// m0 releases and the woken m1 allocates in the same step.
	for i := 3; i <= 5; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.EdgeCount("grab"); got != 2 {
		t.Fatalf("after the busy window expired: %d grabs, want 2 (m1 was not woken)", got)
	}
	if m1.InInitial() {
		t.Fatal("m1 should be holding the unit after step 5")
	}
}

// TestScanFallbackWithCustomRank pins the dispatch rule: a custom
// ranking silently selects the reference scheduler, because the event
// scheduler's serve order is defined in terms of AgeRank.
func TestScanFallbackWithCustomRank(t *testing.T) {
	u := NewUnitManager("u", 1)
	I := NewState("I")
	S := NewState("S")
	I.Connect("grab", S, Alloc(u, 0))
	S.Connect("back", I, Release(u, 0))
	d := NewDirector()
	d.Rank = func(a, b *Machine) bool { return a.Name > b.Name }
	d.AddManager(u)
	a, b := NewMachine("a", I), NewMachine("b", I)
	d.AddMachine(a, b)
	if err := d.Step(); err != nil {
		t.Fatal(err)
	}
	// Under the custom rank, b is served first and takes the unit.
	if b.InInitial() {
		t.Fatal("custom rank was not honored; b should have been served first")
	}
}
