package osm

import (
	"strings"
	"testing"

	"repro/internal/snap"
)

// TestParseEngine pins the engine names shared by every front end
// (CLI flags, batch files, the HTTP session body).
func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"", EngineEvent, true},
		{"event", EngineEvent, true},
		{"scan", EngineScan, true},
		{"compiled", EngineCompiled, true},
		{"Compiled", EngineEvent, false},
		{"jit", EngineEvent, false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for _, e := range []Engine{EngineEvent, EngineScan, EngineCompiled} {
		back, err := ParseEngine(e.String())
		if err != nil || back != e {
			t.Errorf("ParseEngine(%v.String()) = %v, %v; want identity", e, back, err)
		}
	}
}

// TestCompileStats checks the lowering statistics and the disassembly
// over a model mixing built-in fast paths, a custom manager and
// dynamic identifiers.
func TestCompileStats(t *testing.T) {
	u := NewUnitManager("u", 1)
	rf := NewRegFileManager("rf", 8)
	custom := &countingManager{BaseManager: BaseManager{ManagerName: "custom"}}
	I, S := NewState("I"), NewState("S")
	I.Connect("go", S,
		Alloc(u, 0),
		AllocF(rf, func(m *Machine) TokenID { return UpdateToken(3) }),
		Inquire(custom, 0))
	S.Connect("back", I,
		Release(u, 0),
		ReleaseF(rf, func(m *Machine) TokenID { return UpdateToken(3) }),
		Discard(nil, AllTokens))

	d := NewDirector()
	d.AddManager(u, rf, custom)
	d.AddMachine(NewMachine("m", I))
	g, err := d.Compile()
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	want := CompileStats{States: 2, Edges: 2, Instrs: 6, Devirtualized: 4, Generic: 2, Dynamic: 2, Pure: 2}
	if st != want {
		t.Fatalf("Stats() = %+v, want %+v", st, want)
	}
	dis := g.Disassemble()
	for _, frag := range []string{"state I:", "edge go -> S:", "allocate", "regfile", "dyn(slot", "<all>"} {
		if !strings.Contains(dis, frag) {
			t.Errorf("disassembly is missing %q:\n%s", frag, dis)
		}
	}
	// Compile is idempotent and cached until the model changes.
	if g2, err := d.Compile(); err != nil || g2 != g {
		t.Fatalf("second Compile() = %p, %v; want cached %p", g2, err, g)
	}
	d.AddMachine(NewMachine("m2", I))
	if g3, err := d.Compile(); err != nil || g3 == g {
		t.Fatalf("Compile() after AddMachine returned the stale program (err=%v)", err)
	}
}

// countingManager is a minimal custom manager: an always-available
// inquiry target that counts interface-path calls.
type countingManager struct {
	BaseManager
	inquiries int
}

func (c *countingManager) Allocate(m *Machine, id TokenID) (Token, bool) { return Token{}, false }
func (c *countingManager) Inquire(m *Machine, id TokenID) bool           { c.inquiries++; return true }
func (c *countingManager) Release(m *Machine, t Token) bool              { return false }

// TestCompileRejectsInvalidGuards checks that lowering catches at
// compile time what the interpreter only hits at runtime.
func TestCompileRejectsInvalidGuards(t *testing.T) {
	I, S := NewState("I"), NewState("S")
	I.Connect("bad", S, Primitive{Op: OpAllocate, Mgr: nil})
	d := NewDirector()
	d.AddMachine(NewMachine("m", I))
	if _, err := d.Compile(); err == nil || !strings.Contains(err.Error(), "no manager") {
		t.Fatalf("Compile() = %v; want a no-manager error", err)
	}
	// The lazy compile on the first compiled step surfaces the same
	// error instead of panicking mid-evaluation.
	d.Engine = EngineCompiled
	if err := d.Step(); err == nil || !strings.Contains(err.Error(), "no manager") {
		t.Fatalf("Step() = %v; want the compile error", err)
	}

	I2, S2 := NewState("I"), NewState("S")
	I2.Connect("bad", S2, Primitive{Op: Op(99), Mgr: NewPoolManager("p", 1)})
	d2 := NewDirector()
	d2.AddMachine(NewMachine("m", I2))
	if _, err := d2.Compile(); err == nil || !strings.Contains(err.Error(), "invalid primitive op") {
		t.Fatalf("Compile() = %v; want an invalid-op error", err)
	}
}

// TestCompiledProbeMatchesInterpreted drives the adversarial diff
// model under the compiled engine and, at every step, cross-checks
// GuardProgram.Probe against the interpreted Machine.ProbeEdge for
// every machine and outgoing edge — the probe agreement the invariant
// checker's scheduler-equivalence pass relies on.
func TestCompiledProbeMatchesInterpreted(t *testing.T) {
	md := buildDiffModel(6, 1<<30)
	md.d.Engine = EngineCompiled
	g, err := md.d.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if i > 0 && i%17 == 0 {
			for _, m := range md.d.Machines() {
				if !m.InInitial() {
					md.reset.Mark(m)
					break
				}
			}
		}
		if err := md.d.Step(); err != nil {
			t.Fatal(err)
		}
		for _, m := range md.d.Machines() {
			for _, e := range m.State().Out {
				want := m.ProbeEdge(e)
				got, err := g.Probe(m, e)
				if err != nil {
					t.Fatalf("step %d: Probe(%s, %s): %v", i, m.Name, e.Name, err)
				}
				if got != want {
					t.Fatalf("step %d: machine %s edge %s: compiled probe %v, interpreted %v",
						i, m.Name, e.Name, got, want)
				}
			}
		}
	}
}

// TestCompiledDevirtualizesBuiltins asserts the core property of the
// lowering: guards over built-in managers run without touching the
// TokenManager interface, while custom managers keep it.
func TestCompiledDevirtualizesBuiltins(t *testing.T) {
	u := NewUnitManager("u", 1)
	custom := &countingManager{BaseManager: BaseManager{ManagerName: "custom"}}
	I, S := NewState("I"), NewState("S")
	I.Connect("go", S, Alloc(u, 0), Inquire(custom, 0))
	S.Connect("back", I, Release(u, 0))
	d := NewDirector()
	d.Engine = EngineCompiled
	d.AddManager(u, custom)
	d.AddMachine(NewMachine("m", I))
	for i := 0; i < 10; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if custom.inquiries == 0 {
		t.Fatal("custom manager was never consulted through the interface path")
	}
	g, _ := d.Compile()
	if st := g.Stats(); st.Generic != 1 || st.Devirtualized != 2 {
		t.Fatalf("Stats() = %+v; want 2 devirtualized, 1 generic", st)
	}
}

// TestCompiledSnapshotRoundTrip takes a snapshot mid-run under the
// compiled engine and restores it into an identically built director
// running each engine: compiled state is derived, so snapshots are
// engine-neutral in both directions and the resumed traces match the
// uninterrupted one.
func TestCompiledSnapshotRoundTrip(t *testing.T) {
	// A saturated 5-stage ring like benchPipeline, but with unique
	// state names so restore can resolve states.
	build := func() *Director {
		stages := make([]*UnitManager, 5)
		states := make([]*State, 6)
		states[0] = NewState("I")
		for k := 0; k < 5; k++ {
			stages[k] = NewUnitManager("s", 1)
			states[k+1] = NewState("S" + string(rune('0'+k)))
		}
		states[0].Connect("in", states[1], Alloc(stages[0], 0))
		for k := 1; k < 5; k++ {
			states[k].Connect("adv", states[k+1], Release(stages[k-1], 0), Alloc(stages[k], 0))
		}
		states[5].Connect("out", states[0], Release(stages[4], 0))
		d := NewDirector()
		d.NoRestart = true
		for _, s := range stages {
			d.AddManager(s)
		}
		for k := 0; k < 6; k++ {
			d.AddMachine(NewMachine("m", states[0]))
		}
		return d
	}
	reference := func(steps int) []Event {
		d := build()
		rec := NewRecorder()
		d.Tracer = rec
		for i := 0; i < steps; i++ {
			if err := d.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return rec.Events()
	}
	want := reference(100)

	src := build()
	src.Engine = EngineCompiled
	rec := NewRecorder()
	src.Tracer = rec
	for i := 0; i < 50; i++ {
		if err := src.Step(); err != nil {
			t.Fatal(err)
		}
	}
	w := snap.NewWriter()
	if err := src.Snapshot(w); err != nil {
		t.Fatal(err)
	}

	for _, eng := range []Engine{EngineEvent, EngineScan, EngineCompiled} {
		dst := build()
		dst.Engine = eng
		if err := dst.Restore(snap.NewReader(w.Bytes())); err != nil {
			t.Fatalf("restore into %v: %v", eng, err)
		}
		cont := NewRecorder()
		dst.Tracer = cont
		for i := 0; i < 50; i++ {
			if err := dst.Step(); err != nil {
				t.Fatalf("engine %v: %v", eng, err)
			}
		}
		got := append(append([]Event(nil), rec.Events()...), cont.Events()...)
		if len(got) != len(want) {
			t.Fatalf("engine %v: resumed trace has %d transitions, uninterrupted %d", eng, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("engine %v: traces diverge at transition %d: %+v vs %+v", eng, i, got[i], want[i])
			}
		}
	}
}

// TestCompiledDynamicIDsMemoized checks that identifier functions are
// called once per operation binding under the compiled engine, exactly
// like the interpreter's memo contract.
func TestCompiledDynamicIDsMemoized(t *testing.T) {
	u := NewUnitManager("u", 2)
	calls := 0
	idf := func(m *Machine) TokenID { calls++; return TokenID(m.Tag) }
	I, S := NewState("I"), NewState("S")
	I.Connect("go", S, AllocF(u, idf))
	S.Connect("back", I, ReleaseF(u, idf))
	d := NewDirector()
	d.Engine = EngineCompiled
	d.AddManager(u)
	m0 := NewMachine("m0", I)
	m0.Tag = 1
	d.AddMachine(m0)
	for i := 0; i < 6; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Six steps alternate go/back; each transition is a fresh epoch,
	// so the IDFunc runs once per evaluated edge, never more.
	if calls > 6 {
		t.Fatalf("IDFunc ran %d times over 6 single-evaluation steps; memoization broken", calls)
	}
}
