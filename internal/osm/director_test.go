package osm

import (
	"errors"
	"strings"
	"testing"
)

// twoStage builds the smallest interesting model: I -> F -> I with a
// single-unit fetch stage, n competing machines.
func twoStage(n int) (*Director, *UnitManager, []*Machine) {
	i, f := NewState("I"), NewState("F")
	mf := NewUnitManager("fetch", 1)
	i.Connect("acquire", f, Alloc(mf, 0))
	f.Connect("retire", i, Release(mf, 0))
	d := NewDirector()
	d.AddManager(mf)
	var ms []*Machine
	for k := 0; k < n; k++ {
		m := NewMachine("op"+string(rune('0'+k)), i)
		ms = append(ms, m)
		d.AddMachine(m)
	}
	return d, mf, ms
}

func TestDirectorAtMostOneTransitionPerStep(t *testing.T) {
	// A lone machine on a two-state ring must advance exactly one
	// edge per control step, not race around the ring.
	d, _, ms := twoStage(1)
	if err := d.Step(); err != nil {
		t.Fatal(err)
	}
	if ms[0].State().Name != "F" {
		t.Fatalf("after step 1: state=%s, want F", ms[0].State().Name)
	}
	if err := d.Step(); err != nil {
		t.Fatal(err)
	}
	if !ms[0].InInitial() {
		t.Fatalf("after step 2: state=%s, want I", ms[0].State().Name)
	}
}

func TestDirectorSameStepHandoff(t *testing.T) {
	// The paper's Section 4: when a senior operation releases the
	// fetch token, another operation can enter the fetch stage in the
	// same control step, because the senior machine is ranked higher
	// and scheduled first.
	d, mf, ms := twoStage(2)
	if err := d.Step(); err != nil { // op0 takes fetch
		t.Fatal(err)
	}
	if ms[0].State().Name != "F" || !ms[1].InInitial() {
		t.Fatal("step 1: op0 in F, op1 blocked in I expected")
	}
	if err := d.Step(); err != nil { // op0 retires AND op1 enters F
		t.Fatal(err)
	}
	if !ms[0].InInitial() {
		t.Fatal("step 2: op0 should have retired")
	}
	if ms[1].State().Name != "F" {
		t.Fatal("step 2: op1 should have entered F in the same step (handoff)")
	}
	if mf.Holder(0) != ms[1] {
		t.Fatal("fetch unit owner should be op1")
	}
}

func TestDirectorRankOrderDeterminism(t *testing.T) {
	// Two idle machines compete for one unit; registration order must
	// break the tie deterministically.
	d, mf, ms := twoStage(2)
	if err := d.Step(); err != nil {
		t.Fatal(err)
	}
	if mf.Holder(0) != ms[0] {
		t.Fatal("registration order must win the initial tie")
	}
}

func TestDirectorSeniorityRanking(t *testing.T) {
	// Build a 2-deep pipeline where both machines are active; the
	// senior (older Age) machine must be scheduled first so the
	// pipeline advances without bubbles.
	i, f, g := NewState("I"), NewState("F"), NewState("G")
	mf := NewUnitManager("f", 1)
	mg := NewUnitManager("g", 1)
	i.Connect("if", f, Alloc(mf, 0))
	f.Connect("fg", g, Release(mf, 0), Alloc(mg, 0))
	g.Connect("gi", i, Release(mg, 0))
	d := NewDirector()
	d.AddManager(mf, mg)
	a, b := NewMachine("a", i), NewMachine("b", i)
	d.AddMachine(a, b)

	states := func() string { return a.State().Name + b.State().Name }
	want := []string{"FI", "GF", "IG"}
	for step, w := range want {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
		if got := states(); got[:2] != w {
			t.Fatalf("step %d: states=%s, want %s", step+1, got, w)
		}
	}
	// Ages: a left I before b.
	if a.Age == 0 || b.Age == 0 {
		t.Fatal("active machines must have ages assigned")
	}
}

func TestDirectorRestartUnblocksHigherRank(t *testing.T) {
	// Construct the case the outer-loop restart exists for: a senior
	// machine blocked on a resource that a junior machine frees later
	// in the same step. With restart the senior moves in this step;
	// with NoRestart it stalls a step.
	build := func(noRestart bool) (string, string) {
		i, w1, h := NewState("I"), NewState("W1"), NewState("H")
		res := NewUnitManager("res", 1)
		// senior: I -> W1 (free) then W1 -> H needs res.
		i.Connect("s0", w1)
		w1.Connect("s1", h, Alloc(res, 0))
		// junior: I2 -> J1 grabbing res, then J1 -> I2 releasing res.
		i2, j1 := NewState("I2"), NewState("J1")
		i2.Connect("j0", j1, Alloc(res, 0))
		j1.Connect("j1", i2, Release(res, 0))

		d := NewDirector()
		d.NoRestart = noRestart
		d.AddManager(res)
		senior := NewMachine("senior", i)
		junior := NewMachine("junior", i2)
		// Rank: senior first, always.
		d.Rank = func(a, b *Machine) bool { return a == senior && b != senior }
		d.AddMachine(senior, junior)

		mustStep := func() {
			if err := d.Step(); err != nil {
				t.Fatal(err)
			}
		}
		mustStep() // senior I->W1; junior grabs res
		mustStep() // senior blocked on res; junior releases res
		return senior.State().Name, junior.State().Name
	}
	s, _ := build(false)
	if s != "H" {
		t.Fatalf("with restart: senior state=%s, want H (unblocked in-step)", s)
	}
	s, _ = build(true)
	if s != "W1" {
		t.Fatalf("with NoRestart: senior state=%s, want W1 (stalls a step)", s)
	}
}

func TestDirectorEdgePriority(t *testing.T) {
	// Two satisfied parallel edges: the higher static priority
	// (earlier in Out) must win.
	i, a, b := NewState("I"), NewState("A"), NewState("B")
	i.Connect("high", a)
	i.Connect("low", b)
	d := NewDirector()
	m := NewMachine("m", i)
	d.AddMachine(m)
	if err := d.Step(); err != nil {
		t.Fatal(err)
	}
	if m.State() != a {
		t.Fatalf("state=%s, want A (higher priority edge)", m.State().Name)
	}
	_ = b
}

func TestDirectorTracerSeesTransitions(t *testing.T) {
	d, _, _ := twoStage(1)
	var events []string
	d.Tracer = TracerFunc(func(step uint64, m *Machine, e *Edge) {
		events = append(events, e.Name)
	})
	d.Step()
	d.Step()
	if got := strings.Join(events, ","); got != "acquire,retire" {
		t.Fatalf("trace = %q, want acquire,retire", got)
	}
}

func TestDirectorRunUntilDone(t *testing.T) {
	d, _, ms := twoStage(1)
	retired := 0
	d.Tracer = TracerFunc(func(step uint64, m *Machine, e *Edge) {
		if e.Name == "retire" {
			retired++
		}
	})
	n, err := d.Run(func() bool { return retired >= 3 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("steps = %d, want 6 (two per traversal)", n)
	}
	if d.StepCount() != 6 {
		t.Fatalf("StepCount = %d, want 6", d.StepCount())
	}
	_ = ms
}

func TestDirectorResetRestoresModel(t *testing.T) {
	d, mf, ms := twoStage(2)
	d.Step()
	d.Reset()
	if d.StepCount() != 0 {
		t.Fatal("Reset must zero the step counter")
	}
	for _, m := range ms {
		if !m.InInitial() {
			t.Fatal("Reset must return machines to initial")
		}
	}
	if mf.Free() != 1 {
		t.Fatal("Reset must return tokens")
	}
}

func TestDirectorDeadlockDetection(t *testing.T) {
	// Classic cyclic wait: a holds X wants Y; b holds Y wants X.
	x := NewUnitManager("X", 1)
	y := NewUnitManager("Y", 1)
	ia, sa, ta := NewState("Ia"), NewState("Sa"), NewState("Ta")
	ia.Connect("a0", sa, Alloc(x, 0))
	sa.Connect("a1", ta, Alloc(y, 0), Release(x, 0))
	ta.Connect("a2", ia, Release(y, 0))
	ib, sb, tb := NewState("Ib"), NewState("Sb"), NewState("Tb")
	ib.Connect("b0", sb, Alloc(y, 0))
	sb.Connect("b1", tb, Alloc(x, 0), Release(y, 0))
	tb.Connect("b2", ib, Release(x, 0))

	d := NewDirector()
	d.CheckDeadlock = true
	d.AddManager(x, y)
	a, b := NewMachine("a", ia), NewMachine("b", ib)
	d.AddMachine(a, b)

	if err := d.Step(); err != nil { // both grab their first token
		t.Fatal(err)
	}
	err := d.Step() // both blocked on each other
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("error = %v, want ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "a") || !strings.Contains(err.Error(), "b") {
		t.Fatalf("deadlock message should name the cycle: %v", err)
	}
}

func TestDirectorDeadlockHandlerCanSuppress(t *testing.T) {
	x := NewUnitManager("X", 1)
	y := NewUnitManager("Y", 1)
	ia, sa, ta := NewState("Ia"), NewState("Sa"), NewState("Ta")
	ia.Connect("a0", sa, Alloc(x, 0))
	sa.Connect("a1", ta, Alloc(y, 0), Release(x, 0))
	ta.Connect("a2", ia, Release(y, 0))
	ib, sb, tb := NewState("Ib"), NewState("Sb"), NewState("Tb")
	ib.Connect("b0", sb, Alloc(y, 0))
	sb.Connect("b1", tb, Alloc(x, 0), Release(y, 0))
	tb.Connect("b2", ib, Release(x, 0))
	d := NewDirector()
	d.CheckDeadlock = true
	called := 0
	d.OnDeadlock = func(cycle []*Machine) error {
		called++
		if len(cycle) != 2 {
			t.Errorf("cycle length = %d, want 2", len(cycle))
		}
		return nil
	}
	d.AddManager(x, y)
	d.AddMachine(NewMachine("a", ia), NewMachine("b", ib))
	d.Step()
	if err := d.Step(); err != nil {
		t.Fatalf("suppressed deadlock must not abort: %v", err)
	}
	if called != 1 {
		t.Fatalf("handler called %d times, want 1", called)
	}
}

func TestDirectorNoFalseDeadlockOnPlainStall(t *testing.T) {
	// One machine stalled on a busy unit is a stall, not a deadlock.
	i, f := NewState("I"), NewState("F")
	u := NewUnitManager("u", 1)
	i.Connect("go", f, Alloc(u, 0))
	f.Connect("done", i, Release(u, 0))
	d := NewDirector()
	d.CheckDeadlock = true
	d.AddManager(u)
	m := NewMachine("m", i)
	d.AddMachine(m)
	d.Step()
	u.SetBusy(0, 3)
	for k := 0; k < 3; k++ {
		if err := d.Step(); err != nil {
			t.Fatalf("stall step %d: %v", k, err)
		}
		if m.InInitial() {
			t.Fatalf("stall step %d: machine released too early", k)
		}
	}
	if err := d.Step(); err != nil {
		t.Fatal(err)
	}
	if !m.InInitial() {
		t.Fatal("machine should drain once the busy window passes")
	}
}

func TestDirectorPropagatesModelErrors(t *testing.T) {
	i, f := NewState("I"), NewState("F")
	u := NewUnitManager("u", 1)
	i.Connect("bad", f, Release(u, 0)) // releases what it never held
	d := NewDirector()
	d.AddManager(u)
	d.AddMachine(NewMachine("m", i))
	if err := d.Step(); err == nil {
		t.Fatal("model error must propagate out of Step")
	}
}

func TestDirectorStepperNotification(t *testing.T) {
	// The director must call BeginStep on Stepper managers so their
	// notion of time advances: a busy window set at step 0 must be
	// observed to drain as the director steps.
	d, mf, _ := twoStage(1)
	mf.SetBusy(0, 2) // busy through steps 1 and 2
	before := mf.Busy(0)
	for k := 0; k < 4; k++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if before == 0 {
		t.Fatal("setup: unit should start busy")
	}
	if mf.Busy(0) != 0 {
		t.Fatalf("busy = %d after 4 steps, want 0 (BeginStep not delivered?)", mf.Busy(0))
	}
}

func TestAgeRankOrdersActiveBeforeIdle(t *testing.T) {
	i := NewState("I")
	a, b := NewMachine("a", i), NewMachine("b", i)
	f := NewState("F")
	a.cur = f
	a.Age = 5
	if !AgeRank(a, b) {
		t.Fatal("active machine must outrank idle machine")
	}
	if AgeRank(b, a) {
		t.Fatal("idle machine must not outrank active machine")
	}
	c := NewMachine("c", i)
	c.cur = f
	c.Age = 3
	if !AgeRank(c, a) || AgeRank(a, c) {
		t.Fatal("smaller age (senior) must outrank larger age")
	}
	if AgeRank(b, b) {
		t.Fatal("idle vs idle must be a tie (false)")
	}
}

func TestDirectorRestartPolicy(t *testing.T) {
	// Same scenario as TestDirectorRestartUnblocksHigherRank, but the
	// restart is gated by a policy: when the policy rejects the
	// junior's releasing edge, the senior stalls a step exactly as
	// with NoRestart; when it accepts, the senior moves in-step.
	build := func(allow bool) string {
		i, w1, h := NewState("I"), NewState("W1"), NewState("H")
		res := NewUnitManager("res", 1)
		i.Connect("s0", w1)
		w1.Connect("s1", h, Alloc(res, 0))
		i2, j1 := NewState("I2"), NewState("J1")
		i2.Connect("j0", j1, Alloc(res, 0))
		j1.Connect("j1", i2, Release(res, 0))

		d := NewDirector()
		d.RestartPolicy = func(m *Machine, e *Edge) bool {
			return allow && e.Name == "j1"
		}
		d.AddManager(res)
		senior := NewMachine("senior", i)
		junior := NewMachine("junior", i2)
		d.Rank = func(a, b *Machine) bool { return a == senior && b != senior }
		d.AddMachine(senior, junior)
		for k := 0; k < 2; k++ {
			if err := d.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return senior.State().Name
	}
	if got := build(true); got != "H" {
		t.Errorf("policy-allowed restart: senior in %s, want H", got)
	}
	if got := build(false); got != "W1" {
		t.Errorf("policy-denied restart: senior in %s, want W1", got)
	}
}
