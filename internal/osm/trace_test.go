package osm

import (
	"strings"
	"testing"
)

func TestRecorderCountsAndHistory(t *testing.T) {
	d, _, _ := twoStage(1)
	rec := NewRecorder()
	d.Tracer = rec
	for i := 0; i < 6; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.EdgeCount("acquire"); got != 3 {
		t.Fatalf("acquire count = %d, want 3", got)
	}
	if got := rec.EdgeCount("retire"); got != 3 {
		t.Fatalf("retire count = %d, want 3", got)
	}
	if got := rec.StateEntries("F"); got != 3 {
		t.Fatalf("F entries = %d, want 3", got)
	}
	if rec.Steps() != 6 {
		t.Fatalf("Steps = %d, want 6", rec.Steps())
	}
	if u := rec.Utilization("F"); u != 0.5 {
		t.Fatalf("F utilization = %v, want 0.5", u)
	}
	evs := rec.Events()
	if len(evs) != 6 || evs[0].Edge != "acquire" || evs[0].To != "F" || evs[0].Machine != "op0" {
		t.Fatalf("history wrong: %+v", evs[:1])
	}
	var b strings.Builder
	rec.Report(&b)
	out := b.String()
	if !strings.Contains(out, "edge acquire") || !strings.Contains(out, "state F") {
		t.Fatalf("report missing entries:\n%s", out)
	}
}

func TestRecorderLimitKeepsMostRecent(t *testing.T) {
	// A bounded history must be a sliding window over the end of the
	// run: statistics cover all 12 steps, the retained events are the
	// last 5, in commit order, and a chained Tracer still sees every
	// transition.
	d, _, _ := twoStage(1)
	rec := NewRecorder()
	rec.Limit = 5
	var chained []uint64
	rec.Next = TracerFunc(func(step uint64, m *Machine, e *Edge) {
		chained = append(chained, step)
	})
	d.Tracer = rec
	const steps = 12
	for i := 0; i < steps; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// One transition per step in this model.
	if got := rec.EdgeCount("acquire") + rec.EdgeCount("retire"); got != steps {
		t.Fatalf("statistics cover %d transitions, want %d", got, steps)
	}
	if rec.Steps() != steps {
		t.Fatalf("Steps = %d, want %d", rec.Steps(), steps)
	}
	evs := rec.Events()
	if len(evs) != 5 {
		t.Fatalf("history length = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(steps - 5 + i); ev.Step != want {
			t.Fatalf("event %d is from step %d, want %d (oldest must be trimmed)", i, ev.Step, want)
		}
	}
	if len(chained) != steps {
		t.Fatalf("chained tracer saw %d transitions, want %d", len(chained), steps)
	}
	for i, s := range chained {
		if s != uint64(i) {
			t.Fatalf("chained tracer event %d at step %d, want %d", i, s, i)
		}
	}
}

func TestRecorderLimitAndReset(t *testing.T) {
	d, _, _ := twoStage(1)
	rec := NewRecorder()
	rec.Limit = 2
	d.Tracer = rec
	for i := 0; i < 6; i++ {
		d.Step()
	}
	if len(rec.Events()) != 2 {
		t.Fatalf("history length = %d, want limit 2", len(rec.Events()))
	}
	// Counts still cover everything.
	if rec.EdgeCount("acquire") != 3 {
		t.Fatal("limit must not truncate statistics")
	}
	rec.Reset()
	if rec.Steps() != 0 || len(rec.Events()) != 0 || rec.EdgeCount("acquire") != 0 {
		t.Fatal("Reset must clear everything")
	}
	if rec.Utilization("F") != 0 {
		t.Fatal("utilization of an empty recording must be 0")
	}
}
