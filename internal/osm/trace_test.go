package osm

import (
	"strings"
	"sync"
	"testing"
)

func TestRecorderCountsAndHistory(t *testing.T) {
	d, _, _ := twoStage(1)
	rec := NewRecorder()
	d.Tracer = rec
	for i := 0; i < 6; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.EdgeCount("acquire"); got != 3 {
		t.Fatalf("acquire count = %d, want 3", got)
	}
	if got := rec.EdgeCount("retire"); got != 3 {
		t.Fatalf("retire count = %d, want 3", got)
	}
	if got := rec.StateEntries("F"); got != 3 {
		t.Fatalf("F entries = %d, want 3", got)
	}
	if rec.Steps() != 6 {
		t.Fatalf("Steps = %d, want 6", rec.Steps())
	}
	if u := rec.Utilization("F"); u != 0.5 {
		t.Fatalf("F utilization = %v, want 0.5", u)
	}
	evs := rec.Events()
	if len(evs) != 6 || evs[0].Edge != "acquire" || evs[0].To != "F" || evs[0].Machine != "op0" {
		t.Fatalf("history wrong: %+v", evs[:1])
	}
	var b strings.Builder
	rec.Report(&b)
	out := b.String()
	if !strings.Contains(out, "edge acquire") || !strings.Contains(out, "state F") {
		t.Fatalf("report missing entries:\n%s", out)
	}
}

func TestRecorderLimitKeepsMostRecent(t *testing.T) {
	// A bounded history must be a sliding window over the end of the
	// run: statistics cover all 12 steps, the retained events are the
	// last 5, in commit order, and a chained Tracer still sees every
	// transition.
	d, _, _ := twoStage(1)
	rec := NewRecorder()
	rec.Limit = 5
	var chained []uint64
	rec.Next = TracerFunc(func(step uint64, m *Machine, e *Edge) {
		chained = append(chained, step)
	})
	d.Tracer = rec
	const steps = 12
	for i := 0; i < steps; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// One transition per step in this model.
	if got := rec.EdgeCount("acquire") + rec.EdgeCount("retire"); got != steps {
		t.Fatalf("statistics cover %d transitions, want %d", got, steps)
	}
	if rec.Steps() != steps {
		t.Fatalf("Steps = %d, want %d", rec.Steps(), steps)
	}
	evs := rec.Events()
	if len(evs) != 5 {
		t.Fatalf("history length = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(steps - 5 + i); ev.Step != want {
			t.Fatalf("event %d is from step %d, want %d (oldest must be trimmed)", i, ev.Step, want)
		}
	}
	if len(chained) != steps {
		t.Fatalf("chained tracer saw %d transitions, want %d", len(chained), steps)
	}
	for i, s := range chained {
		if s != uint64(i) {
			t.Fatalf("chained tracer event %d at step %d, want %d", i, s, i)
		}
	}
}

func TestRecorderLimitAndReset(t *testing.T) {
	d, _, _ := twoStage(1)
	rec := NewRecorder()
	rec.Limit = 2
	d.Tracer = rec
	for i := 0; i < 6; i++ {
		d.Step()
	}
	if len(rec.Events()) != 2 {
		t.Fatalf("history length = %d, want limit 2", len(rec.Events()))
	}
	// Counts still cover everything.
	if rec.EdgeCount("acquire") != 3 {
		t.Fatal("limit must not truncate statistics")
	}
	rec.Reset()
	if rec.Steps() != 0 || len(rec.Events()) != 0 || rec.EdgeCount("acquire") != 0 {
		t.Fatal("Reset must clear everything")
	}
	if rec.Utilization("F") != 0 {
		t.Fatal("utilization of an empty recording must be 0")
	}
	if rec.Total() != 0 || rec.Checksum() != 0 {
		t.Fatal("Reset must clear the running digest")
	}
}

// The ring must stay consistent through many full wraparounds, and
// the running checksum/total must be limit-independent: a Limit-3
// recorder and an unbounded one fed the same run agree on Checksum
// and Total even though their retained histories differ.
func TestRecorderRingWraparoundAndChecksum(t *testing.T) {
	run := func(limit int, steps int) *Recorder {
		d, _, _ := twoStage(1)
		rec := NewRecorder()
		rec.Limit = limit
		d.Tracer = rec
		for i := 0; i < steps; i++ {
			if err := d.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return rec
	}
	const steps = 100 // 100 transitions -> 33+ wraps at Limit 3
	bounded := run(3, steps)
	full := run(0, steps)

	if bounded.Total() != uint64(steps) || full.Total() != uint64(steps) {
		t.Fatalf("totals: bounded %d, full %d, want %d", bounded.Total(), full.Total(), steps)
	}
	if bounded.Checksum() == 0 {
		t.Fatal("checksum of a nonempty recording must be nonzero")
	}
	if bounded.Checksum() != full.Checksum() {
		t.Fatalf("checksum depends on Limit: %#x vs %#x", bounded.Checksum(), full.Checksum())
	}
	evs := bounded.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(steps - 3 + i); ev.Step != want {
			t.Fatalf("event %d from step %d, want %d", i, ev.Step, want)
		}
	}
	// A different-length run must not collide (order/content dependent).
	if run(0, steps-1).Checksum() == full.Checksum() {
		t.Fatal("checksums of different traces collide")
	}
}

func TestRecorderEventsSince(t *testing.T) {
	d, _, _ := twoStage(1)
	rec := NewRecorder()
	rec.Limit = 8
	d.Tracer = rec
	for i := 0; i < 20; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Retained window is steps 12..19.
	if got := rec.EventsSince(0); len(got) != 8 {
		t.Fatalf("EventsSince(0) = %d events, want the full window of 8", len(got))
	}
	got := rec.EventsSince(17)
	if len(got) != 3 {
		t.Fatalf("EventsSince(17) = %d events, want 3", len(got))
	}
	for i, ev := range got {
		if want := uint64(17 + i); ev.Step != want {
			t.Fatalf("event %d from step %d, want %d", i, ev.Step, want)
		}
	}
	if got := rec.EventsSince(100); len(got) != 0 {
		t.Fatalf("EventsSince(future) = %d events, want 0", len(got))
	}
}

// EventsSince boundary semantics on a wrapped ring, driven by raw
// Transition calls so we control the step numbers exactly — including
// several events committing in the same control step, which the
// director-driven tests never produce. With Limit 6 and events at
// steps 10,10,11,12,12,12,13,14 the retained window after wrap is
// [11,12,12,12,13,14]:
//   - since == a step older than the window returns the whole window
//   - since == the oldest retained step returns the whole window
//   - since == a step shared by several events returns all of them
//   - since == the newest step returns exactly the last event
//   - since past the newest returns nothing
func TestRecorderEventsSinceWrapBoundaries(t *testing.T) {
	a, b := &State{Name: "A"}, &State{Name: "B"}
	edge := &Edge{Name: "hop", From: a, To: b}
	m := &Machine{Name: "m0"}
	rec := NewRecorder()
	rec.Limit = 6
	steps := []uint64{10, 10, 11, 12, 12, 12, 13, 14}
	for _, s := range steps {
		rec.Transition(s, m, edge)
	}
	if rec.Total() != uint64(len(steps)) {
		t.Fatalf("Total = %d, want %d", rec.Total(), len(steps))
	}
	window := []uint64{11, 12, 12, 12, 13, 14}
	check := func(since uint64, want []uint64) {
		t.Helper()
		got := rec.EventsSince(since)
		if len(got) != len(want) {
			t.Fatalf("EventsSince(%d) = %d events, want %d", since, len(got), len(want))
		}
		for i, ev := range got {
			if ev.Step != want[i] {
				t.Fatalf("EventsSince(%d)[%d].Step = %d, want %d", since, i, ev.Step, want[i])
			}
		}
	}
	check(0, window)  // since before the window: everything retained
	check(10, window) // step 10 fell out of the ring: same answer
	check(11, window) // exactly the oldest retained step
	check(12, window[1:])
	check(13, window[4:])
	check(14, window[5:]) // exactly the newest step
	check(15, nil)        // past the end
	// The retained window must agree with Events() itself.
	if evs := rec.Events(); len(evs) != len(window) || evs[0].Step != 11 || evs[5].Step != 14 {
		t.Fatalf("Events() window wrong: %+v", evs)
	}
}

// The server streams from a live bounded Recorder chained in front of
// another Tracer while other goroutines read it, all serialized by a
// per-session mutex. This test exercises exactly that access pattern
// under the race detector: one writer stepping the director, several
// readers snapshotting Events/EventsSince/Checksum, lock shared.
func TestRecorderConcurrentReadersChained(t *testing.T) {
	d, _, _ := twoStage(1)
	rec := NewRecorder()
	rec.Limit = 4
	var chainMu sync.Mutex
	chainSeen := 0
	rec.Next = TracerFunc(func(step uint64, m *Machine, e *Edge) {
		chainMu.Lock()
		chainSeen++
		chainMu.Unlock()
	})
	d.Tracer = rec

	var mu sync.Mutex // the session lock
	const steps = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				evs := rec.EventsSince(0)
				if len(evs) > 4 {
					t.Errorf("window exceeds limit: %d", len(evs))
				}
				last := uint64(0)
				for _, ev := range evs {
					if ev.Step < last {
						t.Errorf("events out of order: %d after %d", ev.Step, last)
					}
					last = ev.Step
				}
				_ = rec.Checksum()
				_ = rec.Total()
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < steps; i++ {
		mu.Lock()
		if err := d.Step(); err != nil {
			mu.Unlock()
			t.Fatal(err)
		}
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
	if rec.Total() != steps {
		t.Fatalf("recorded %d transitions, want %d", rec.Total(), steps)
	}
	chainMu.Lock()
	defer chainMu.Unlock()
	if chainSeen != steps {
		t.Fatalf("chained tracer saw %d transitions, want %d", chainSeen, steps)
	}
}
