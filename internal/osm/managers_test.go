package osm

import "testing"

func TestUnitManagerAnyUnitPicksFirstFree(t *testing.T) {
	u := NewUnitManager("fu", 3)
	i := NewState("I")
	a, b := NewMachine("a", i), NewMachine("b", i)
	t1, ok := u.Allocate(a, AnyUnit)
	if !ok || t1.ID != 0 {
		t.Fatalf("first AnyUnit grant = %v,%v; want unit 0", t1, ok)
	}
	t2, ok := u.Allocate(b, AnyUnit)
	if !ok || t2.ID != 1 {
		t.Fatalf("second AnyUnit grant = %v,%v; want unit 1", t2, ok)
	}
	if u.Free() != 1 {
		t.Fatalf("Free() = %d, want 1", u.Free())
	}
}

func TestUnitManagerOutOfRange(t *testing.T) {
	u := NewUnitManager("fu", 2)
	m := NewMachine("m", NewState("I"))
	if _, ok := u.Allocate(m, 5); ok {
		t.Fatal("allocation of out-of-range unit must fail")
	}
	if u.Inquire(m, 5) {
		t.Fatal("inquiry of out-of-range unit must fail")
	}
	if u.Holder(5) != nil || u.Holder(AnyUnit) != nil {
		t.Fatal("Holder of out-of-range/AnyUnit id must be nil")
	}
}

func TestUnitManagerAllocGate(t *testing.T) {
	u := NewUnitManager("fu", 2)
	u.AllocGate = func(m *Machine, unit TokenID) bool { return unit == 1 }
	m := NewMachine("m", NewState("I"))
	if _, ok := u.Allocate(m, 0); ok {
		t.Fatal("gate must refuse unit 0")
	}
	tok, ok := u.Allocate(m, AnyUnit)
	if !ok || tok.ID != 1 {
		t.Fatalf("AnyUnit with gate = %v,%v; want unit 1", tok, ok)
	}
}

func TestUnitManagerBusyGatesRelease(t *testing.T) {
	u := NewUnitManager("cache", 1)
	m := NewMachine("m", NewState("I"))
	tok, _ := u.Allocate(m, 0)
	u.CommitAllocate(m, tok)
	u.SetBusy(0, 2) // at step 0: busy through steps 1 and 2
	if u.Release(m, tok) {
		t.Fatal("release must be refused in the step the miss is signalled")
	}
	u.BeginStep(1)
	if u.Release(m, tok) {
		t.Fatal("release must be refused during the first busy step")
	}
	u.BeginStep(2)
	if u.Release(m, tok) {
		t.Fatal("release must be refused during the second busy step")
	}
	if u.Busy(0) != 1 {
		t.Fatalf("Busy = %d, want 1", u.Busy(0))
	}
	u.BeginStep(3)
	if !u.Release(m, tok) {
		t.Fatal("release must succeed once the busy window passes")
	}
	if u.Busy(0) != 0 {
		t.Fatalf("Busy = %d, want 0", u.Busy(0))
	}
}

func TestUnitManagerReleaseGate(t *testing.T) {
	u := NewUnitManager("wb", 1)
	open := false
	u.ReleaseGate = func(m *Machine, unit TokenID) bool { return open }
	m := NewMachine("m", NewState("I"))
	tok, _ := u.Allocate(m, 0)
	if u.Release(m, tok) {
		t.Fatal("closed gate must refuse release")
	}
	open = true
	if !u.Release(m, tok) {
		t.Fatal("open gate must accept release")
	}
}

func TestUnitManagerReleaseCancelRestoresOwner(t *testing.T) {
	u := NewUnitManager("s", 1)
	m := NewMachine("m", NewState("I"))
	tok, _ := u.Allocate(m, 0)
	if !u.Release(m, tok) {
		t.Fatal("release request should succeed")
	}
	if u.Holder(0) != nil {
		t.Fatal("tentative release should free the unit")
	}
	u.CancelRelease(m, tok)
	if u.Holder(0) != m {
		t.Fatal("cancel must restore ownership")
	}
}

func TestUnitManagerInquireSeesOwnUnit(t *testing.T) {
	u := NewUnitManager("s", 1)
	m, other := NewMachine("m", NewState("I")), NewMachine("o", NewState("I"))
	tok, _ := u.Allocate(m, 0)
	_ = tok
	if !u.Inquire(m, 0) {
		t.Fatal("owner's inquiry must succeed")
	}
	if u.Inquire(other, 0) {
		t.Fatal("other machine's inquiry of an owned unit must fail")
	}
	if !u.Inquire(m, AnyUnit) {
		t.Fatal("AnyUnit inquiry by owner must succeed")
	}
	if u.Inquire(other, AnyUnit) {
		t.Fatal("AnyUnit inquiry with no free units must fail for non-owners")
	}
}

func TestNewUnitManagerPanicsOnNonPositiveCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<=0")
		}
	}()
	NewUnitManager("bad", 0)
}

func TestRegFileScoreboard(t *testing.T) {
	rf := NewRegFileManager("r", 8)
	i := NewState("I")
	writer, reader := NewMachine("w", i), NewMachine("r", i)

	// No pending writes: value inquiry succeeds.
	if !rf.Inquire(reader, TokenID(3)) {
		t.Fatal("value inquiry with no pending updates must succeed")
	}
	tok, ok := rf.Allocate(writer, UpdateToken(3))
	if !ok {
		t.Fatal("update-token allocation must succeed")
	}
	rf.CommitAllocate(writer, tok)
	if rf.Inquire(reader, TokenID(3)) {
		t.Fatal("value inquiry must fail while an update is outstanding")
	}
	if !rf.Inquire(writer, TokenID(3)) {
		t.Fatal("the writer itself must not stall on its own update token")
	}
	// Second writer refused at depth 1.
	if _, ok := rf.Allocate(reader, UpdateToken(3)); ok {
		t.Fatal("second update token must be refused at rename depth 1")
	}
	// Release with data retires and writes.
	tok.Data = 42
	if !rf.Release(writer, tok) {
		t.Fatal("release must be accepted")
	}
	rf.CommitRelease(writer, tok)
	if rf.Read(3) != 42 {
		t.Fatalf("register = %d, want 42", rf.Read(3))
	}
	if !rf.Inquire(reader, TokenID(3)) {
		t.Fatal("value inquiry must succeed after the update retires")
	}
}

func TestRegFileRenameDepth(t *testing.T) {
	rf := NewRegFileManager("r", 4)
	rf.RenameDepth = 2
	i := NewState("I")
	w1, w2, w3 := NewMachine("w1", i), NewMachine("w2", i), NewMachine("w3", i)
	t1, ok1 := rf.Allocate(w1, UpdateToken(0))
	_, ok2 := rf.Allocate(w2, UpdateToken(0))
	_, ok3 := rf.Allocate(w3, UpdateToken(0))
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("grants = %v,%v,%v; want true,true,false", ok1, ok2, ok3)
	}
	if rf.Pending(0) != 2 {
		t.Fatalf("pending = %d, want 2", rf.Pending(0))
	}
	// Update-token inquiry reflects slot availability.
	if rf.Inquire(w3, UpdateToken(0)) {
		t.Fatal("update inquiry must fail when rename slots are exhausted")
	}
	t1.Data = 7
	rf.CommitRelease(w1, t1)
	if rf.Pending(0) != 1 || rf.Read(0) != 7 {
		t.Fatalf("after retire: pending=%d val=%d", rf.Pending(0), rf.Read(0))
	}
}

func TestRegFileDiscardDropsUpdateWithoutWrite(t *testing.T) {
	rf := NewRegFileManager("r", 2)
	w := NewMachine("w", NewState("I"))
	tok, _ := rf.Allocate(w, UpdateToken(1))
	rf.Write(1, 99)
	tok.Data = 5
	rf.Discarded(w, tok)
	if rf.Read(1) != 99 {
		t.Fatalf("discard must not write the register: got %d", rf.Read(1))
	}
	if rf.Pending(1) != 0 {
		t.Fatal("discard must retire the pending update")
	}
}

func TestRegFileCancelAllocate(t *testing.T) {
	rf := NewRegFileManager("r", 2)
	w := NewMachine("w", NewState("I"))
	tok, _ := rf.Allocate(w, UpdateToken(0))
	rf.CancelAllocate(w, tok)
	if rf.Pending(0) != 0 {
		t.Fatal("cancel must restore the pending count")
	}
	if rf.Holder(UpdateToken(0)) != nil {
		t.Fatal("cancel must clear the writer list")
	}
}

func TestRegFileRejectsValueAllocationAndBadIDs(t *testing.T) {
	rf := NewRegFileManager("r", 2)
	m := NewMachine("m", NewState("I"))
	if _, ok := rf.Allocate(m, TokenID(0)); ok {
		t.Fatal("value tokens must not be allocatable")
	}
	if _, ok := rf.Allocate(m, UpdateToken(17)); ok {
		t.Fatal("out-of-range register must be refused")
	}
	if rf.Inquire(m, TokenID(17)) {
		t.Fatal("out-of-range inquiry must fail")
	}
}

func TestRegFileHolderReporting(t *testing.T) {
	rf := NewRegFileManager("r", 2)
	w := NewMachine("w", NewState("I"))
	if rf.Holder(TokenID(0)) != nil {
		t.Fatal("no writer yet")
	}
	rf.Allocate(w, UpdateToken(0))
	if rf.Holder(TokenID(0)) != w || rf.Holder(UpdateToken(0)) != w {
		t.Fatal("holder must be the outstanding writer")
	}
}

func TestBypassPublishReadExpiry(t *testing.T) {
	b := NewBypassManager("fwd")
	m := NewMachine("m", NewState("I"))
	b.BeginStep(10)
	b.Publish(3, 0xbeef, 1)
	if !b.Inquire(m, 3) {
		t.Fatal("published value must be inquirable in the same step")
	}
	if v, ok := b.Read(3); !ok || v != 0xbeef {
		t.Fatalf("Read = %#x,%v", v, ok)
	}
	b.BeginStep(11)
	if !b.Inquire(m, 3) {
		t.Fatal("life=1 value must survive into the next step")
	}
	b.BeginStep(12)
	if b.Inquire(m, 3) {
		t.Fatal("value must expire after its lifetime")
	}
}

func TestBypassZeroLifeDefaultsToOne(t *testing.T) {
	b := NewBypassManager("fwd")
	b.BeginStep(0)
	b.Publish(1, 5, 0)
	b.BeginStep(1)
	if _, ok := b.Read(1); !ok {
		t.Fatal("life 0 must behave as life 1")
	}
}

func TestBypassGrantsNoTokens(t *testing.T) {
	b := NewBypassManager("fwd")
	m := NewMachine("m", NewState("I"))
	if _, ok := b.Allocate(m, 0); ok {
		t.Fatal("bypass must not allocate")
	}
	if b.Release(m, Token{Mgr: b}) {
		t.Fatal("bypass must not accept releases")
	}
}

func TestResetManagerProtocol(t *testing.T) {
	r := NewResetManager("reset")
	i := NewState("I")
	normal, spec := NewMachine("n", i), NewMachine("s", i)
	if r.Inquire(normal, 0) || r.Inquire(spec, 0) {
		t.Fatal("unmarked machines must be rejected")
	}
	r.Mark(spec)
	if !r.Marked(spec) || r.MarkedCount() != 1 {
		t.Fatal("mark bookkeeping wrong")
	}
	if r.Inquire(normal, 0) {
		t.Fatal("normal machine must still be rejected")
	}
	if !r.Inquire(spec, 0) {
		t.Fatal("marked machine must be accepted")
	}
	r.Unmark(spec)
	if r.Inquire(spec, 0) {
		t.Fatal("unmarked machine must be rejected again")
	}
	if _, ok := r.Allocate(spec, 0); ok {
		t.Fatal("reset manager must not grant tokens")
	}
	if r.Release(spec, Token{Mgr: r}) {
		t.Fatal("reset manager must not accept releases")
	}
}

func TestResetEdgeSquashesSpeculativeOperation(t *testing.T) {
	i, f := NewState("I"), NewState("F")
	mf := NewUnitManager("fetch", 1)
	reset := NewResetManager("reset")
	i.Connect("fetch", f, Alloc(mf, 0))
	ResetEdge(f, i, reset)
	if f.Out[0].Name != "F-reset" {
		t.Fatal("reset edge must take the highest static priority")
	}
	m := NewMachine("op", i)
	if ok, _ := m.tryEdge(i.Out[0]); !ok {
		t.Fatal("fetch failed")
	}
	// Not marked: the reset edge stays dormant.
	if ok, _ := m.tryEdge(f.Out[0]); ok {
		t.Fatal("reset edge must not fire for a normal machine")
	}
	reset.Mark(m)
	if ok, err := m.tryEdge(f.Out[0]); !ok || err != nil {
		t.Fatalf("reset edge: ok=%v err=%v", ok, err)
	}
	if !m.InInitial() || len(m.Tokens()) != 0 {
		t.Fatal("squashed machine must rest empty in initial state")
	}
	if mf.Free() != 1 {
		t.Fatal("discarded fetch token must be reclaimed")
	}
	if reset.Marked(m) {
		t.Fatal("reset edge action must unmark the machine")
	}
}

func TestPoolManagerCounting(t *testing.T) {
	p := NewPoolManager("fq", 2)
	m := NewMachine("m", NewState("I"))
	if p.Cap() != 2 || p.Free() != 2 || p.InUse() != 0 {
		t.Fatal("fresh pool bookkeeping wrong")
	}
	t1, ok1 := p.Allocate(m, AnyUnit)
	t2, ok2 := p.Allocate(m, AnyUnit)
	_, ok3 := p.Allocate(m, AnyUnit)
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("grants = %v,%v,%v; want true,true,false", ok1, ok2, ok3)
	}
	if t1.ID == t2.ID {
		t.Fatal("pool tokens must have distinct sequence ids")
	}
	if p.Inquire(m, AnyUnit) {
		t.Fatal("inquiry of an empty pool must fail")
	}
	if !p.Release(m, t1) {
		t.Fatal("release must succeed")
	}
	if p.Free() != 1 {
		t.Fatalf("free = %d, want 1", p.Free())
	}
	p.CancelRelease(m, t1)
	if p.Free() != 0 {
		t.Fatal("cancel-release must retake the token")
	}
	p.Discarded(m, t1)
	p.Discarded(m, t2)
	if p.Free() != 2 {
		t.Fatal("discards must refill the pool")
	}
}

func TestPoolManagerAllocGateAndCancel(t *testing.T) {
	p := NewPoolManager("fq", 1)
	m := NewMachine("m", NewState("I"))
	p.AllocGate = func(*Machine) bool { return false }
	if _, ok := p.Allocate(m, AnyUnit); ok {
		t.Fatal("gate must refuse")
	}
	p.AllocGate = nil
	tok, _ := p.Allocate(m, AnyUnit)
	p.CancelAllocate(m, tok)
	if p.Free() != 1 {
		t.Fatal("cancel must return the token")
	}
}

func TestQueueManagerInOrderRelease(t *testing.T) {
	q := NewQueueManager("cq", 3)
	i := NewState("I")
	a, b := NewMachine("a", i), NewMachine("b", i)
	ta, _ := q.Allocate(a, AnyUnit)
	tb, _ := q.Allocate(b, AnyUnit)
	if q.Len() != 2 || q.Head() != a {
		t.Fatalf("queue bookkeeping wrong: len=%d head=%v", q.Len(), q.Head())
	}
	if q.Release(b, tb) {
		t.Fatal("younger entry must not release before the head")
	}
	if !q.Release(a, ta) {
		t.Fatal("head must release")
	}
	if !q.Release(b, tb) {
		t.Fatal("after the head retires, the next entry must release")
	}
	if q.Len() != 0 || q.Head() != nil {
		t.Fatal("queue should drain")
	}
}

func TestQueueManagerCapacityAndCancel(t *testing.T) {
	q := NewQueueManager("cq", 1)
	m := NewMachine("m", NewState("I"))
	tok, ok := q.Allocate(m, AnyUnit)
	if !ok {
		t.Fatal("first allocation must succeed")
	}
	if _, ok := q.Allocate(m, AnyUnit); ok {
		t.Fatal("full queue must refuse")
	}
	q.CancelAllocate(m, tok)
	if q.Len() != 0 {
		t.Fatal("cancel must remove the tentative entry")
	}
	tok, _ = q.Allocate(m, AnyUnit)
	if !q.Release(m, tok) {
		t.Fatal("head release must succeed")
	}
	q.CancelRelease(m, tok)
	if q.Len() != 1 || q.Head() != m {
		t.Fatal("cancel-release must restore the head")
	}
}

func TestQueueManagerInquireAndDiscard(t *testing.T) {
	q := NewQueueManager("cq", 2)
	i := NewState("I")
	a, b := NewMachine("a", i), NewMachine("b", i)
	ta, _ := q.Allocate(a, AnyUnit)
	tb, _ := q.Allocate(b, AnyUnit)
	if q.Inquire(a, AnyUnit) {
		t.Fatal("full queue: AnyUnit inquiry must fail")
	}
	if !q.Inquire(a, ta.ID) {
		t.Fatal("head-id inquiry must succeed for the head")
	}
	if q.Inquire(b, tb.ID) {
		t.Fatal("non-head inquiry must fail")
	}
	// Squash the head; b becomes the head and can retire.
	q.Discarded(a, ta)
	if q.Head() != b {
		t.Fatal("discard must remove the squashed entry")
	}
	if !q.Release(b, tb) {
		t.Fatal("new head must release")
	}
	if q.Holder(tb.ID) != nil && q.Len() != 0 {
		t.Fatal("released entry must be gone")
	}
}

func TestQueueManagerReleaseGate(t *testing.T) {
	q := NewQueueManager("cq", 1)
	m := NewMachine("m", NewState("I"))
	tok, _ := q.Allocate(m, AnyUnit)
	q.ReleaseGate = func(*Machine, Token) bool { return false }
	if q.Release(m, tok) {
		t.Fatal("gate must refuse the release")
	}
	q.ReleaseGate = nil
	if !q.Release(m, tok) {
		t.Fatal("release must succeed with the gate removed")
	}
}

func TestQueueManagerHolder(t *testing.T) {
	q := NewQueueManager("cq", 2)
	i := NewState("I")
	a, b := NewMachine("a", i), NewMachine("b", i)
	ta, _ := q.Allocate(a, AnyUnit)
	q.Allocate(b, AnyUnit)
	if q.Holder(ta.ID) != a {
		t.Fatal("holder by id wrong")
	}
	if q.Holder(999) != a {
		t.Fatal("unknown id must report the head (blocked allocators wait on it)")
	}
}
