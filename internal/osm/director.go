package osm

import "fmt"

// RankFunc orders machines for a control step. It reports whether a
// should be scheduled before b (a has the higher rank). Rankings may
// be based on the status and identity of the operations the machines
// represent.
type RankFunc func(a, b *Machine) bool

// AgeRank is the default ranking used by the paper's case studies:
// machines are ranked by their ages, i.e. the order in which they last
// left the initial state. Seniors (smaller Age) rank higher; machines
// resting in their initial state rank below all active machines and
// among themselves keep their registration order, which keeps the
// model deterministic.
func AgeRank(a, b *Machine) bool {
	ai, bi := a.InInitial(), b.InInitial()
	if ai != bi {
		return bi // active machine outranks idle machine
	}
	if ai { // both idle: registration order (Age holds index 0 here,
		// so fall through to stable sort order — see Director.Step)
		return false
	}
	return a.Age < b.Age
}

// Tracer observes director activity. Implementations must be cheap;
// the director invokes them on every transition when installed.
type Tracer interface {
	// Transition is called after machine m commits edge e at the
	// given control step.
	Transition(step uint64, m *Machine, e *Edge)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(step uint64, m *Machine, e *Edge)

// Transition calls f.
func (f TracerFunc) Transition(step uint64, m *Machine, e *Edge) { f(step, m, e) }

// Director coordinates the state transitions of a population of
// operation state machines, one control step per clock edge, using the
// deterministic scheduling algorithm of the paper's Figure 3:
//
//   - state transition occurs at most once per machine per step;
//   - a transition occurs as soon as an outgoing edge's condition is
//     satisfied;
//   - higher-priority edges are preferred;
//   - machines are served in rank order, and (unless NoRestart is set)
//     the scan restarts from the highest-ranked remaining machine
//     whenever some machine transitions, because that transition may
//     have freed resources a higher-ranked machine was blocked on.
type Director struct {
	// Rank orders the machines at the beginning of each control step.
	// Nil means AgeRank.
	Rank RankFunc
	// NoRestart disables the outer-loop restart. The paper's case
	// studies enable this optimization because with age-based ranking
	// no senior operation depends on a junior operation for
	// resources. An ablation benchmark measures its effect.
	NoRestart bool
	// RestartPolicy, when non-nil and NoRestart is false, limits the
	// outer-loop restart to transitions for which it returns true. A
	// model that knows which edges can free resources senior machines
	// wait on (in the 750 model, only the execute-stage releases)
	// uses this to avoid pointless rescans while keeping Figure 3's
	// semantics for the transitions that matter.
	RestartPolicy func(m *Machine, e *Edge) bool
	// Tracer, if non-nil, observes every committed transition.
	Tracer Tracer
	// OnDeadlock, if non-nil, is consulted when CheckDeadlock finds a
	// cyclic wait; returning nil suppresses the abort.
	OnDeadlock func(cycle []*Machine) error
	// CheckDeadlock enables wait-for-cycle detection on steps where
	// no machine could move. Deadlocks are pathological (a cyclic
	// pipeline); the director aborts with ErrDeadlock when one is
	// found.
	CheckDeadlock bool
	// Scan selects the reference scan scheduler, which re-ranks and
	// re-evaluates every machine each control step exactly as written
	// in the paper's Figure 3. The default is the event-driven
	// scheduler (director_event.go), which produces the identical
	// transition schedule — the differential tests in
	// internal/experiments check this trace-for-trace — while skipping
	// machines whose blocking resources did not change. The
	// event-driven scheduler requires the default age-based ranking;
	// installing a custom Rank falls back to the scan scheduler
	// automatically. Choose the scheduler before the first Step.
	//
	// Scan is the legacy form of Engine = EngineScan and takes
	// precedence over the Engine field when set.
	Scan bool
	// Engine selects the execution engine (see the Engine type):
	// event-driven (default), reference scan, or compiled guard
	// programs. EngineCompiled compiles the model lazily on the first
	// step; a compile error aborts that Step. The Scan field and a
	// custom Rank both force EngineScan. Choose the engine before the
	// first Step.
	Engine Engine
	// Check, if non-nil, runs at the end of every control step,
	// before the step counter advances — the hook the invariant
	// checker (internal/osm/invariant) installs. A non-nil error
	// aborts Step. A nil Check costs one predictable branch per step.
	Check func(d *Director) error

	machines []*Machine
	managers []TokenManager
	steppers []Stepper
	step     uint64
	nextAge  uint64
	// scratch reused across steps to avoid per-step allocation.
	list []*Machine
	// ev is the event-driven scheduler's state (director_event.go).
	ev eventSched
	// primInit records that identifier slots were assigned and the
	// machines' memo tables sized; reset by AddMachine.
	primInit bool
	// comp is the compiled guard program (compiled.go), built lazily
	// when Engine is EngineCompiled; invalidated by AddMachine and
	// AddManager. Compiled state is derived from the model and is
	// never serialized: Snapshot ignores it and Restore keeps it.
	comp *GuardProgram
	// useComp is true while the current step serves machines through
	// their compiled programs.
	useComp bool
	// genFns holds the generated edge functions installed with
	// AttachGenerated; gen is their resolution against the current
	// model (generated.go), rebuilt lazily after AddMachine/AddManager
	// invalidate it. Like comp, gen is derived state and is never
	// serialized.
	genFns map[string]GenEdge
	gen    *GenProgram
	// useGen is true while the current step serves machines through
	// their generated edge functions.
	useGen bool
}

// NewDirector returns an empty director with default (age-based)
// ranking.
func NewDirector() *Director { return &Director{} }

// AddMachine registers a machine with the director. Registration
// order breaks ranking ties, so it must be deterministic.
func (d *Director) AddMachine(ms ...*Machine) {
	d.machines = append(d.machines, ms...)
	d.ev.init = false
	d.primInit = false
	d.comp = nil
	d.gen = nil
}

// AddManager registers a token manager. Managers implementing Stepper
// receive BeginStep at the start of every control step in registration
// order.
func (d *Director) AddManager(ms ...TokenManager) {
	for _, m := range ms {
		d.managers = append(d.managers, m)
		if s, ok := m.(Stepper); ok {
			d.steppers = append(d.steppers, s)
		}
	}
	d.ev.init = false
	d.comp = nil
	d.gen = nil
}

// Machines returns the registered machines in registration order.
func (d *Director) Machines() []*Machine { return d.machines }

// Managers returns the registered managers in registration order.
func (d *Director) Managers() []TokenManager { return d.managers }

// StepCount returns the number of completed control steps.
func (d *Director) StepCount() uint64 { return d.step }

// Step runs one control step: it notifies Stepper managers, ranks the
// machines, and serves token-transaction requests until no machine can
// transition, per the paper's Figure 3. It returns ErrDeadlock (via
// errors.Is) if deadlock checking is enabled and a cyclic resource
// wait is detected.
//
// Two scheduler implementations produce this schedule: the reference
// scan (Figure 3 verbatim) and the default event-driven scheduler,
// which skips machines whose blocking resources did not change. See
// the Scan field.
func (d *Director) Step() error {
	if d.engine() == EngineScan {
		return d.stepScan()
	}
	return d.stepEvent()
}

// ensurePrims assigns identifier slots to every dynamic primitive
// reachable from a machine's initial state and sizes the machines'
// memo tables, once per model build. Machines of one model share a
// state graph, so the walk is deduplicated by initial state. Restored
// machines always rest in states reachable from their initial state
// (Restore resolves states by name from the initial graph), so the
// initial walk covers every primitive any engine can evaluate.
func (d *Director) ensurePrims() {
	if d.primInit {
		return
	}
	sizes := make(map[*State]int, 1)
	for _, m := range d.machines {
		n, ok := sizes[m.Initial]
		if !ok {
			n = assignPrimSlots(m.Initial)
			sizes[m.Initial] = n
		}
		m.sizeDynMemo(n)
	}
	d.primInit = true
}

// assignPrimSlots walks the state graph from initial and gives every
// dynamic primitive (ID != nil) without a slot the next free slot
// number in this graph. It returns the highest slot in use, i.e. the
// memo table size machines of this graph need. Assignment is
// idempotent: primitives keep their slot across walks, so machines
// sharing a graph agree on the numbering.
func assignPrimSlots(initial *State) int {
	var states []*State
	seen := make(map[*State]bool)
	var walk func(s *State)
	walk = func(s *State) {
		if seen[s] {
			return
		}
		seen[s] = true
		states = append(states, s)
		for _, e := range s.Out {
			walk(e.To)
		}
	}
	walk(initial)
	next := int32(0)
	for _, s := range states {
		for _, e := range s.Out {
			for pi := range e.Prims {
				if e.Prims[pi].slot > next {
					next = e.Prims[pi].slot
				}
			}
		}
	}
	for _, s := range states {
		for _, e := range s.Out {
			for pi := range e.Prims {
				p := &e.Prims[pi]
				if p.ID != nil && p.slot == 0 {
					next++
					p.slot = next
				}
			}
		}
	}
	return int(next)
}

// serveMachine evaluates m's outgoing edges in priority order and
// commits the first satisfied one, maintaining ages and the tracer.
// Both schedulers serve machines through it. The second result is the
// committed edge. On failure it leaves the failed primitives of the
// final pass in m.blocked and records in m.sched.untracked whether
// any edge failed outside the token protocol (a When predicate).
func (d *Director) serveMachine(m *Machine) (bool, *Edge, error) {
	wasInitial := m.InInitial()
	m.blocked = m.blocked[:0] // keep only this pass's failures
	m.sched.untracked = false
	if d.useGen {
		if gs := d.gen.stateOf(m.cur); gs != nil {
			return d.serveGenerated(m, gs, wasInitial)
		}
		// A state unknown to the program (the graph was mutated after
		// resolution) falls back to the interpreted path.
	}
	if d.useComp {
		if cs := d.comp.stateOf(m.cur); cs != nil {
			return d.serveCompiled(m, cs, wasInitial)
		}
		// A state unknown to the program (the graph was mutated after
		// compilation) falls back to the interpreted path.
	}
	for _, e := range m.cur.Out {
		before := len(m.blocked)
		ok, err := m.tryEdge(e)
		if err != nil {
			return false, nil, fmt.Errorf("osm: step %d: %w", d.step, err)
		}
		if !ok {
			if len(m.blocked) == before {
				m.sched.untracked = true
			}
			continue
		}
		if wasInitial && !m.InInitial() {
			d.nextAge++
			m.Age = d.nextAge
		}
		if d.Tracer != nil {
			d.Tracer.Transition(d.step, m, e)
		}
		return true, e, nil
	}
	return false, nil, nil
}

// stepScan is the reference scheduler: the paper's Figure 3, executed
// over the full machine population every control step.
func (d *Director) stepScan() error {
	d.useComp = false
	d.useGen = false
	d.ensurePrims()
	for _, s := range d.steppers {
		s.BeginStep(d.step)
	}
	// updateOSMList: rank the machines. Stable sort keeps
	// registration order for ties, making the schedule deterministic.
	d.list = d.list[:0]
	d.list = append(d.list, d.machines...)
	rank := d.Rank
	if rank == nil {
		rank = AgeRank
	}
	// Stable insertion sort: machine counts are small and this keeps
	// the per-step scheduling allocation-free.
	for i := 1; i < len(d.list); i++ {
		for j := i; j > 0 && rank(d.list[j], d.list[j-1]); j-- {
			d.list[j], d.list[j-1] = d.list[j-1], d.list[j]
		}
	}

	list := d.list
	progressed := false
	i := 0
	for i < len(list) {
		m := list[i]
		if m == nil { // already transitioned this step
			i++
			continue
		}
		moved, moveEdge, err := d.serveMachine(m)
		if err != nil {
			return err
		}
		if moved {
			progressed = true
			// Mark m served so it is not scheduled again this step.
			// Index marking keeps removal O(1) where a slice shift
			// would be O(n) on every transition.
			list[i] = nil
			if d.NoRestart || (d.RestartPolicy != nil && !d.RestartPolicy(m, moveEdge)) {
				i++
				continue
			}
			// Restart from the remaining machine with the highest
			// rank: m's transition may have freed resources that a
			// higher-ranked machine was blocked on.
			i = 0
			continue
		}
		i++
	}
	d.list = list[:0]

	if !progressed && d.CheckDeadlock {
		if err := d.deadlockCheck(); err != nil {
			return err
		}
	}
	if d.Check != nil {
		if err := d.Check(d); err != nil {
			return err
		}
	}
	d.step++
	return nil
}

// EventDriven reports whether an event-driven scheduler serves the
// director's steps — the default engine and the compiled engine both
// do (see Scan and Engine; a custom Rank forces the scan).
func (d *Director) EventDriven() bool { return d.engine() != EngineScan }

// WillEvaluate reports whether machine m is queued for evaluation at
// the next control step. Under the scan scheduler every machine is
// re-evaluated each step, so the answer is always true; under the
// event-driven scheduler a machine is evaluated only while it sits in
// the ready set — suspended machines wait for a manager wake. The
// invariant checker uses this to verify that the event scheduler
// never leaves a machine with a satisfiable edge asleep.
func (d *Director) WillEvaluate(m *Machine) bool {
	if !d.EventDriven() || !d.ev.init {
		return true
	}
	return m.sched.inReady || m.sched.inPend
}

// deadlockCheck runs wait-for-cycle detection after a step in which no
// machine could move.
func (d *Director) deadlockCheck() error {
	cyc := d.findWaitCycle()
	if cyc == nil {
		return nil
	}
	if d.OnDeadlock != nil {
		return d.OnDeadlock(cyc)
	}
	return fmt.Errorf("%w: %s", ErrDeadlock, cycleString(cyc))
}

// Run executes control steps until done returns true or an error
// occurs, and returns the number of steps executed.
func (d *Director) Run(done func() bool) (uint64, error) {
	start := d.step
	for !done() {
		if err := d.Step(); err != nil {
			return d.step - start, err
		}
	}
	return d.step - start, nil
}

// Reset returns every machine to its initial state and restarts the
// step and age counters. Manager state is not touched; callers
// normally rebuild or reset managers alongside.
func (d *Director) Reset() {
	for _, m := range d.machines {
		m.Reset()
	}
	d.step = 0
	d.nextAge = 0
	d.ev.init = false
}
