package osm

import "fmt"

// Engine selects the director's execution engine. All engines produce
// the identical transition schedule — the differential tests in
// internal/experiments check this trace-for-trace — and differ only in
// how much work a control step costs:
//
//   - EngineEvent (the default) is the event-driven scheduler of
//     director_event.go: machines sleep on the managers that refused
//     them and only woken machines are re-evaluated.
//   - EngineScan is the reference scheduler, the paper's Figure 3
//     executed verbatim over the full machine population every step.
//   - EngineCompiled keeps the event-driven scheduling but executes
//     guards through a compiled guard program (compiled.go): flat
//     per-edge instruction arrays with pre-resolved managers,
//     pre-computed identifier slots and concrete-type fast paths for
//     the built-in managers, so the hot loop runs without interface
//     dispatch. The interpreted engines remain the differential
//     oracle.
//   - EngineGenerated also keeps the event-driven scheduling but
//     executes guards through generated Go edge functions
//     (generated.go) attached with Director.AttachGenerated — one
//     monomorphic function per edge, typically emitted by
//     internal/osm/gen from the same elaborated structures Compile
//     consumes, with When predicates and manager fast paths inlined
//     at source level.
type Engine uint8

const (
	// EngineEvent is the event-driven scheduler (the default).
	EngineEvent Engine = iota
	// EngineScan is the reference Figure 3 scan scheduler.
	EngineScan
	// EngineCompiled executes compiled guard programs under
	// event-driven scheduling.
	EngineCompiled
	// EngineGenerated executes generated Go edge functions under
	// event-driven scheduling (see Director.AttachGenerated).
	EngineGenerated
)

// String returns the engine's canonical spelling, as accepted by
// ParseEngine.
func (e Engine) String() string {
	switch e {
	case EngineEvent:
		return "event"
	case EngineScan:
		return "scan"
	case EngineCompiled:
		return "compiled"
	case EngineGenerated:
		return "generated"
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// ParseEngine parses an engine name. The empty string selects the
// default event-driven engine, matching the zero value of Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "event":
		return EngineEvent, nil
	case "scan":
		return EngineScan, nil
	case "compiled":
		return EngineCompiled, nil
	case "generated":
		return EngineGenerated, nil
	}
	return EngineEvent, fmt.Errorf("osm: unknown engine %q (want scan, event, compiled or generated)", s)
}

// engine resolves the effective engine for the next step: the legacy
// Scan flag and a custom Rank both force the reference scan (the
// event-driven schedulers require age-based ranking), otherwise the
// Engine field decides.
func (d *Director) engine() Engine {
	if d.Scan || d.Rank != nil {
		return EngineScan
	}
	return d.Engine
}
