package osm

import (
	"testing"
	"testing/quick"
)

// Property-based tests over the manager invariants that the director
// relies on for correctness.

func TestQuickPoolNeverOverflowsOrUnderflows(t *testing.T) {
	// Any sequence of allocate/release/discard actions keeps
	// 0 <= free <= cap.
	f := func(actions []uint8, capSeed uint8) bool {
		capacity := int(capSeed%8) + 1
		p := NewPoolManager("p", capacity)
		m := NewMachine("m", NewState("I"))
		var held []Token
		for _, a := range actions {
			switch a % 4 {
			case 0:
				if tok, ok := p.Allocate(m, AnyUnit); ok {
					held = append(held, tok)
				}
			case 1:
				if len(held) > 0 {
					if p.Release(m, held[0]) {
						held = held[1:]
					}
				}
			case 2:
				if len(held) > 0 {
					p.Discarded(m, held[0])
					held = held[1:]
				}
			case 3:
				if tok, ok := p.Allocate(m, AnyUnit); ok {
					p.CancelAllocate(m, tok)
				}
			}
			if p.Free() < 0 || p.Free() > p.Cap() {
				return false
			}
			if p.Free()+len(held) != p.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnitManagerExclusivity(t *testing.T) {
	// However allocation requests interleave, no unit is ever owned
	// by two machines, and free+owned == total.
	f := func(actions []uint8) bool {
		u := NewUnitManager("u", 4)
		i := NewState("I")
		ms := []*Machine{NewMachine("a", i), NewMachine("b", i), NewMachine("c", i)}
		held := map[*Machine][]Token{}
		for _, a := range actions {
			m := ms[int(a/4)%len(ms)]
			switch a % 4 {
			case 0:
				if tok, ok := u.Allocate(m, AnyUnit); ok {
					held[m] = append(held[m], tok)
				}
			case 1:
				if hs := held[m]; len(hs) > 0 {
					if u.Release(m, hs[0]) {
						held[m] = hs[1:]
					}
				}
			case 2:
				if hs := held[m]; len(hs) > 0 {
					u.Discarded(m, hs[0])
					held[m] = hs[1:]
				}
			case 3:
				if tok, ok := u.Allocate(m, TokenID(a%4)); ok {
					u.CancelAllocate(m, tok)
				}
			}
			owned := 0
			for _, hs := range held {
				owned += len(hs)
				for _, tok := range hs {
					if u.Holder(tok.ID) == nil {
						return false // held token with no recorded owner
					}
				}
			}
			if u.Free()+owned != u.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQueueManagerFIFO(t *testing.T) {
	// Released identifiers always come out in allocation order,
	// whatever interleaving of allocations and release attempts.
	f := func(actions []uint8) bool {
		q := NewQueueManager("q", 5)
		m := NewMachine("m", NewState("I"))
		var granted []Token
		var releasedIDs []TokenID
		for _, a := range actions {
			if a%2 == 0 {
				if tok, ok := q.Allocate(m, AnyUnit); ok {
					granted = append(granted, tok)
				}
			} else if len(granted) > 0 {
				// Attempt to release a pseudo-random held token; only
				// the head may succeed.
				idx := int(a/2) % len(granted)
				if q.Release(m, granted[idx]) {
					releasedIDs = append(releasedIDs, granted[idx].ID)
					granted = append(granted[:idx], granted[idx+1:]...)
				}
			}
		}
		for i := 1; i < len(releasedIDs); i++ {
			if releasedIDs[i] <= releasedIDs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRegFilePendingNeverNegative(t *testing.T) {
	f := func(actions []uint8) bool {
		rf := NewRegFileManager("rf", 4)
		rf.RenameDepth = 2
		m := NewMachine("m", NewState("I"))
		held := map[int][]Token{}
		for _, a := range actions {
			reg := int(a>>2) % 4
			switch a % 3 {
			case 0:
				if tok, ok := rf.Allocate(m, UpdateToken(reg)); ok {
					held[reg] = append(held[reg], tok)
				}
			case 1:
				if hs := held[reg]; len(hs) > 0 {
					tok := hs[0]
					tok.Data = uint64(a)
					rf.CommitRelease(m, tok)
					held[reg] = hs[1:]
				}
			case 2:
				if hs := held[reg]; len(hs) > 0 {
					rf.Discarded(m, hs[0])
					held[reg] = hs[1:]
				}
			}
			for r := 0; r < 4; r++ {
				if rf.Pending(r) != len(held[r]) {
					return false
				}
				if rf.Pending(r) < 0 || rf.Pending(r) > 2 {
					return false
				}
				// Value inquiry must agree with pending state.
				if rf.Inquire(NewMachine("probe", NewState("I")), TokenID(r)) != (rf.Pending(r) == 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDirectorRingAlwaysDrains(t *testing.T) {
	// A ring pipeline of random depth with a random machine count
	// never wedges: every program eventually retires every operation.
	f := func(depthSeed, machSeed, opsSeed uint8) bool {
		depth := int(depthSeed%4) + 2 // 2..5 stages
		nmach := int(machSeed%4) + 1  // 1..4 machines
		nops := int(opsSeed%16) + 1   // 1..16 operations
		stages := make([]*UnitManager, depth)
		states := make([]*State, depth+1)
		states[0] = NewState("I")
		for k := 0; k < depth; k++ {
			stages[k] = NewUnitManager("s"+string(rune('0'+k)), 1)
			states[k+1] = NewState("S" + string(rune('0'+k)))
		}
		issued, retired := 0, 0
		first := states[0].Connect("issue", states[1], Alloc(stages[0], 0))
		first.When = func(m *Machine) bool { return issued < nops }
		first.Action = func(m *Machine) { issued++ }
		for k := 1; k < depth; k++ {
			states[k].Connect("adv", states[k+1], Release(stages[k-1], 0), Alloc(stages[k], 0))
		}
		last := states[depth].Connect("retire", states[0], Release(stages[depth-1], 0))
		last.Action = func(m *Machine) { retired++ }

		d := NewDirector()
		d.CheckDeadlock = true
		for _, s := range stages {
			d.AddManager(s)
		}
		for k := 0; k < nmach; k++ {
			d.AddMachine(NewMachine("m"+string(rune('0'+k)), states[0]))
		}
		limit := (depth + 2) * (nops + nmach + 2)
		for s := 0; s < limit; s++ {
			if err := d.Step(); err != nil {
				return false
			}
			if retired == nops {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
