package invariant_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/osm"
	"repro/internal/osm/invariant"
)

// pipeline builds a clean two-stage model — I -> F -> I over a
// single-unit stage plus a pool of fetch credits — with n machines.
func pipeline(n int) (*osm.Director, []*osm.Machine) {
	i, f := osm.NewState("I"), osm.NewState("F")
	mf := osm.NewUnitManager("fetch", 1)
	credits := osm.NewPoolManager("credits", 2)
	i.Connect("acquire", f, osm.Alloc(mf, 0), osm.Alloc(credits, osm.AnyUnit))
	f.Connect("retire", i, osm.Release(mf, 0), osm.Release(credits, osm.AnyUnit))
	d := osm.NewDirector()
	d.AddManager(mf, credits)
	for k := 0; k < n; k++ {
		d.AddMachine(osm.NewMachine(fmt.Sprintf("op%d", k), i))
	}
	return d, d.Machines()
}

func TestCleanModelNoViolations(t *testing.T) {
	for _, scan := range []bool{false, true} {
		d, _ := pipeline(3)
		d.Scan = scan
		c := invariant.Attach(d)
		for s := 0; s < 200; s++ {
			if err := d.Step(); err != nil {
				t.Fatalf("scan=%v step %d: %v", scan, s, err)
			}
		}
		if got := c.CheckNow(); len(got) != 0 {
			t.Fatalf("scan=%v CheckNow: unexpected violations %v", scan, got)
		}
		if c.Checks() == 0 {
			t.Fatalf("scan=%v: structural checks never ran", scan)
		}
	}
}

// amnesiac wraps a UnitManager but, once forget is set, denies all
// knowledge of its outstanding grants — a manager-side accounting bug.
type amnesiac struct {
	*osm.UnitManager
	forget bool
}

func (a *amnesiac) Allocate(m *osm.Machine, id osm.TokenID) (osm.Token, bool) {
	tok, ok := a.UnitManager.Allocate(m, id)
	if ok {
		tok.Mgr = a // route the token back through the wrapper
	}
	return tok, ok
}

func (a *amnesiac) OutstandingGrants(yield func(osm.Grant)) {
	if a.forget {
		return
	}
	a.UnitManager.OutstandingGrants(yield)
}

func TestConservationLeakDetected(t *testing.T) {
	// F has no outgoing edge, so the machine parks there holding the
	// token and the books must keep balancing.
	i, f := osm.NewState("I"), osm.NewState("F")
	mf := &amnesiac{UnitManager: osm.NewUnitManager("fetch", 1)}
	i.Connect("acquire", f, osm.Alloc(mf, 0))
	d := osm.NewDirector()
	d.AddManager(mf)
	d.AddMachine(osm.NewMachine("op0", i))
	invariant.Attach(d)

	if err := d.Step(); err != nil { // grant committed, books balance
		t.Fatal(err)
	}
	mf.forget = true
	err := d.Step()
	var verr *invariant.Error
	if !errors.As(err, &verr) {
		t.Fatalf("step after forget: got %v, want *invariant.Error", err)
	}
	v := verr.Violations[0]
	if v.Kind != invariant.Conservation || v.Machine != "op0" || v.Manager != "fetch" {
		t.Fatalf("violation = %+v, want conservation/op0/fetch", v)
	}
	if !strings.Contains(err.Error(), "no matching grant") {
		t.Fatalf("error text %q should name the missing grant", err)
	}
}

// phantom wraps a UnitManager and additionally reports a grant to a
// machine that never allocated — an asymmetric binding.
type phantom struct {
	*osm.UnitManager
	ghost *osm.Machine
}

func (p *phantom) OutstandingGrants(yield func(osm.Grant)) {
	p.UnitManager.OutstandingGrants(yield)
	if p.ghost != nil {
		yield(osm.Grant{Owner: p.ghost, ID: 7})
	}
}

func TestBindingOrphanDetected(t *testing.T) {
	d, ms := pipeline(1)
	ghost := osm.NewMachine("ghost", ms[0].Initial)
	d.AddMachine(ghost)
	mf := &phantom{UnitManager: osm.NewUnitManager("spare", 1), ghost: ghost}
	d.AddManager(mf)
	c := invariant.New(d)

	vs := c.CheckNow()
	if len(vs) != 1 {
		t.Fatalf("CheckNow: got %d violations %v, want 1", len(vs), vs)
	}
	v := vs[0]
	if v.Kind != invariant.Binding || v.Machine != "ghost" || v.Manager != "spare" {
		t.Fatalf("violation = %+v, want binding/ghost/spare", v)
	}
	if !strings.Contains(v.Detail, "outlived the operation") {
		t.Fatalf("detail %q should say the binding outlived the operation (ghost is idle)", v.Detail)
	}
}

func TestPoolCountMismatchDetected(t *testing.T) {
	// The pool's grants are anonymous, so conservation is a count
	// comparison. Grant one token behind the checker's back.
	d, _ := pipeline(1)
	pool := d.Managers()[1].(*osm.PoolManager)
	if _, ok := pool.Allocate(nil, osm.AnyUnit); !ok {
		t.Fatal("pool allocate failed")
	}
	vs := invariant.New(d).CheckNow()
	if len(vs) != 1 || vs[0].Kind != invariant.Conservation || vs[0].Manager != "credits" {
		t.Fatalf("violations = %v, want one conservation/credits count mismatch", vs)
	}
}

// mute is a gate manager that claims the sleep-safe wake contract but
// breaks it: Open flips its inquiry to true without waking waiters.
type mute struct {
	osm.BaseManager
	open bool
}

func (g *mute) Allocate(m *osm.Machine, id osm.TokenID) (osm.Token, bool) {
	return osm.Token{}, false
}
func (g *mute) Inquire(m *osm.Machine, id osm.TokenID) bool { return g.open }
func (g *mute) Release(m *osm.Machine, t osm.Token) bool    { return false }
func (g *mute) SleepSafeManager() bool                      { return true }
func (g *mute) OutstandingGrants(yield func(osm.Grant))     {}

func TestScheduleViolationOnMissedWake(t *testing.T) {
	i, f := osm.NewState("I"), osm.NewState("F")
	gate := &mute{BaseManager: osm.BaseManager{ManagerName: "gate"}}
	i.Connect("go", f, osm.Inquire(gate, 0))
	d := osm.NewDirector()
	d.AddManager(gate)
	d.AddMachine(osm.NewMachine("op0", i))
	invariant.Attach(d)

	if err := d.Step(); err != nil { // machine suspends on the gate
		t.Fatal(err)
	}
	gate.open = true // contract violation: no Wake()
	err := d.Step()
	var verr *invariant.Error
	if !errors.As(err, &verr) {
		t.Fatalf("step after silent open: got %v, want *invariant.Error", err)
	}
	v := verr.Violations[0]
	if v.Kind != invariant.Schedule || v.Machine != "op0" || v.Edge != "go" {
		t.Fatalf("violation = %+v, want schedule/op0/go", v)
	}

	// The scan scheduler evaluates everyone each step, so the same
	// model under Scan commits the edge instead of violating.
	d2 := osm.NewDirector()
	gate2 := &mute{BaseManager: osm.BaseManager{ManagerName: "gate"}}
	i2, f2 := osm.NewState("I"), osm.NewState("F")
	i2.Connect("go", f2, osm.Inquire(gate2, 0))
	d2.AddManager(gate2)
	m2 := osm.NewMachine("op0", i2)
	d2.AddMachine(m2)
	d2.Scan = true
	invariant.Attach(d2)
	if err := d2.Step(); err != nil {
		t.Fatal(err)
	}
	gate2.open = true
	if err := d2.Step(); err != nil {
		t.Fatalf("scan scheduler: %v", err)
	}
	if m2.State() != f2 {
		t.Fatal("scan scheduler should have committed the edge")
	}
}

func TestLivelockDetected(t *testing.T) {
	// op0 enters F and can never leave: the gate never opens.
	i, f := osm.NewState("I"), osm.NewState("F")
	gate := &mute{BaseManager: osm.BaseManager{ManagerName: "gate"}}
	i.Connect("enter", f)
	f.Connect("leave", i, osm.Inquire(gate, 0))
	d := osm.NewDirector()
	d.AddManager(gate)
	d.AddMachine(osm.NewMachine("op0", i))
	c := invariant.Attach(d)
	c.LivelockBound = 5

	var err error
	for s := 0; s < 20 && err == nil; s++ {
		err = d.Step()
	}
	var verr *invariant.Error
	if !errors.As(err, &verr) {
		t.Fatalf("got %v, want *invariant.Error within 20 steps", err)
	}
	v := verr.Violations[0]
	if v.Kind != invariant.Livelock || v.Machine != "op0" {
		t.Fatalf("violation = %+v, want livelock/op0", v)
	}
	if !strings.Contains(v.Detail, `state "F"`) {
		t.Fatalf("detail %q should name the stuck state", v.Detail)
	}
}

func TestEveryCadenceSkipsStructuralChecks(t *testing.T) {
	d, _ := pipeline(2)
	c := invariant.Attach(d)
	c.Every = 10
	for s := 0; s < 100; s++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Checks(); got != 10 {
		t.Fatalf("Checks() = %d after 100 steps with Every=10, want 10", got)
	}
}

func TestProbeEdgeIsSideEffectFree(t *testing.T) {
	// Probing a satisfiable multi-primitive edge must leave every
	// manager exactly as it was.
	d, ms := pipeline(2)
	mf := d.Managers()[0].(*osm.UnitManager)
	pool := d.Managers()[1].(*osm.PoolManager)
	m := ms[0]
	e := m.Initial.Out[0]
	if !m.ProbeEdge(e) {
		t.Fatal("acquire edge should probe satisfiable on an empty pipeline")
	}
	if mf.Free() != 1 || pool.Free() != 2 {
		t.Fatalf("probe leaked state: fetch free=%d (want 1), credits free=%d (want 2)", mf.Free(), pool.Free())
	}
	if len(m.Tokens()) != 0 {
		t.Fatalf("probe granted tokens: %v", m.Tokens())
	}
	// After op0 takes the unit, the same edge probes false for op1
	// and still leaves no trace.
	if err := d.Step(); err != nil {
		t.Fatal(err)
	}
	if ms[1].ProbeEdge(e) {
		t.Fatal("acquire edge should probe unsatisfiable while the unit is owned")
	}
	if mf.Free() != 0 || pool.Free() != 1 {
		t.Fatalf("failed probe leaked state: fetch free=%d (want 0), credits free=%d (want 1)", mf.Free(), pool.Free())
	}
}

func TestViolationStringAndErrorText(t *testing.T) {
	v := invariant.Violation{
		Step: 42, Kind: invariant.Schedule,
		Machine: "op1", Manager: "fetch", Edge: "go",
		Detail: "missed wake",
	}
	s := v.String()
	for _, want := range []string{"step 42", "schedule", "op1", "fetch", "go", "missed wake"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	e := &invariant.Error{Violations: []invariant.Violation{v, v}}
	if !strings.Contains(e.Error(), "2 violation(s)") {
		t.Fatalf("Error() = %q, should count violations", e.Error())
	}
}
