// Package invariant machine-checks, at simulation time, the formal
// properties the paper claims for the OSM model: token conservation
// (Section 3.2's transaction discipline means every granted token is
// held by exactly one machine, and every held token is recorded by
// its manager), binding consistency (machine↔manager bindings are
// symmetric and die when the operation leaves its machine), scheduler
// equivalence (the event-driven director never leaves a machine with
// a Figure 3 scan-eligible edge asleep) and livelock freedom (no
// machine sits in a non-initial state without transitioning beyond a
// configurable bound).
//
// A Checker installs itself on a Director's per-step hook and costs
// nothing when absent; each violation is a structured diagnostic
// naming the machine, manager and edge involved, and any violation
// aborts Director.Step with an *Error.
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/osm"
)

// Kind classifies a violation by the formal property it breaks.
type Kind string

const (
	// Conservation: a token is held by a machine without a matching
	// manager grant (a leak past release/discard), by no machine
	// despite a manager grant, or comes from a manager the director
	// does not know.
	Conservation Kind = "conservation"
	// Binding: a machine↔manager binding is asymmetric or outlived
	// its operation — e.g. a machine resting in its initial state
	// still holds tokens or is still recorded as a grant owner.
	Binding Kind = "binding"
	// Schedule: the event-driven scheduler left a machine asleep even
	// though one of its outgoing edges is satisfiable, i.e. the wake
	// sets are not a superset of the Figure 3 scan-eligible edges.
	Schedule Kind = "schedule"
	// Livelock: a machine sat in a non-initial state without
	// committing a transition for more than the configured bound.
	Livelock Kind = "livelock"
)

// Violation is one structured diagnostic. Fields that do not apply to
// the kind are empty.
type Violation struct {
	// Step is the control step at whose end the violation was
	// observed.
	Step uint64 `json:"step"`
	// Kind names the broken property.
	Kind Kind `json:"kind"`
	// Machine and Manager identify the participants, when known.
	Machine string `json:"machine,omitempty"`
	Manager string `json:"manager,omitempty"`
	// Edge names the satisfiable-but-unscheduled edge of a schedule
	// violation.
	Edge string `json:"edge,omitempty"`
	// Detail is a human-readable account of the mismatch.
	Detail string `json:"detail"`
}

// String renders the violation on one line.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "step %d: %s", v.Step, v.Kind)
	if v.Machine != "" {
		fmt.Fprintf(&b, " machine=%s", v.Machine)
	}
	if v.Manager != "" {
		fmt.Fprintf(&b, " manager=%s", v.Manager)
	}
	if v.Edge != "" {
		fmt.Fprintf(&b, " edge=%s", v.Edge)
	}
	fmt.Fprintf(&b, ": %s", v.Detail)
	return b.String()
}

// Error aggregates the violations of one check pass. Director.Step
// returns it (via the installed hook) so a violating run aborts at
// the step that broke the invariant, with every co-occurring
// violation attached.
type Error struct {
	Violations []Violation
}

// Error implements error.
func (e *Error) Error() string {
	if len(e.Violations) == 0 {
		return "invariant: no violations"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariant: %d violation(s): ", len(e.Violations))
	for i, v := range e.Violations {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// DefaultLivelockBound is the number of consecutive control steps a
// machine may sit in one non-initial state without transitioning
// before the livelock detector flags it. Both case-study pipelines
// stall for at most a cache miss plus a full drain — tens of cycles —
// so the default is generous while still catching a wedged model long
// before a cycle budget expires.
const DefaultLivelockBound = 100_000

// Checker verifies the OSM invariants of one Director. Construct it
// with New (or Attach, which also installs it); the zero value is not
// usable.
type Checker struct {
	// LivelockBound overrides DefaultLivelockBound when positive.
	LivelockBound uint64
	// Every runs the structural checks (conservation, binding,
	// schedule) only on steps where StepCount%Every == Every-1, i.e.
	// every Every-th step. 0 or 1 checks every step. The livelock
	// watch always runs: it is a per-machine counter comparison.
	Every uint64

	d      *osm.Director
	checks uint64 // structural passes run, for overhead accounting

	// Livelock progress tracking.
	lastMoves map[*osm.Machine]uint64
	stuckAt   map[*osm.Machine]uint64

	// Scratch reused across passes.
	grants map[grantKey]int
}

type grantKey struct {
	owner *osm.Machine
	id    osm.TokenID
}

// New returns a checker bound to d without installing it; use it for
// one-shot CheckNow audits (the osmserve debug endpoint) or install
// it later with Install.
func New(d *osm.Director) *Checker {
	return &Checker{
		d:         d,
		lastMoves: make(map[*osm.Machine]uint64),
		stuckAt:   make(map[*osm.Machine]uint64),
		grants:    make(map[grantKey]int),
	}
}

// Attach returns a new checker installed on d's per-step hook: from
// the next Step on, every control step is verified and a violation
// aborts the run with an *Error.
func Attach(d *osm.Director) *Checker {
	c := New(d)
	c.Install()
	return c
}

// Install sets the checker as d's per-step hook, replacing any
// previous one.
func (c *Checker) Install() { c.d.Check = c.step }

// Uninstall removes the per-step hook (whether or not it is this
// checker's).
func (c *Checker) Uninstall() { c.d.Check = nil }

// Checks returns the number of structural check passes run, for
// overhead accounting.
func (c *Checker) Checks() uint64 { return c.checks }

// step is the Director.Check hook: it runs at the end of every
// control step, before the step counter advances.
func (c *Checker) step(d *osm.Director) error {
	var vs []Violation
	if c.Every <= 1 || (d.StepCount()+1)%c.Every == 0 {
		vs = c.structural()
	}
	vs = append(vs, c.livelock()...)
	if len(vs) > 0 {
		return &Error{Violations: vs}
	}
	return nil
}

// CheckNow runs the structural checks (conservation, binding,
// schedule) once and returns the violations found, without touching
// the livelock tracker. It must be called between control steps,
// never from inside an edge action.
func (c *Checker) CheckNow() []Violation { return c.structural() }

// structural runs the conservation, binding and schedule checks over
// the director's current (inter-step) state.
func (c *Checker) structural() []Violation {
	c.checks++
	var vs []Violation
	vs = c.conservation(vs)
	vs = c.schedule(vs)
	return vs
}

// conservation cross-checks every machine's token buffer against
// every auditable manager's grant enumeration, both directions, and
// folds in the binding-consistency checks that fall out of the same
// walk.
func (c *Checker) conservation(vs []Violation) []Violation {
	d := c.d
	step := d.StepCount()
	registered := make(map[osm.TokenManager]bool, len(d.Managers()))
	for _, mgr := range d.Managers() {
		registered[mgr] = true
	}

	// Binding: an idle machine represents no operation, so it must
	// hold nothing. (The director also enforces this at transition
	// time; the checker re-proves it for states reached by Discard,
	// Reset and restore paths.)
	for _, m := range d.Machines() {
		if m.InInitial() && len(m.Tokens()) > 0 {
			vs = append(vs, Violation{
				Step: step, Kind: Binding, Machine: m.Name,
				Manager: m.Tokens()[0].Mgr.Name(),
				Detail: fmt.Sprintf("machine rests in initial state %q but holds %d token(s); bindings must die with the operation",
					m.Initial.Name, len(m.Tokens())),
			})
		}
		for _, t := range m.Tokens() {
			if t.Mgr == nil || !registered[t.Mgr] {
				name := "<nil>"
				if t.Mgr != nil {
					name = t.Mgr.Name()
				}
				vs = append(vs, Violation{
					Step: step, Kind: Conservation, Machine: m.Name, Manager: name,
					Detail: fmt.Sprintf("held token %v comes from a manager not registered with the director", t),
				})
			}
		}
	}

	// Per auditable manager: the multiset of (owner, id) grants the
	// manager reports must equal the multiset of tokens machines hold
	// from it. Managers that report anonymous grants (nil Owner, e.g.
	// the pool manager) are matched by count.
	for _, mgr := range d.Managers() {
		aud, ok := mgr.(osm.GrantAuditor)
		if !ok {
			continue // not enumerable; covered only machine-side
		}
		grants := c.grants
		clear(grants)
		anonymous := 0
		total := 0
		aud.OutstandingGrants(func(g osm.Grant) {
			total++
			if g.Owner == nil {
				anonymous++
				return
			}
			grants[grantKey{owner: g.Owner, id: g.ID}]++
		})
		held := 0
		for _, m := range d.Machines() {
			for _, t := range m.Tokens() {
				if t.Mgr != mgr {
					continue
				}
				held++
				if anonymous > 0 {
					continue // count-only manager
				}
				k := grantKey{owner: m, id: t.ID}
				if grants[k] > 0 {
					grants[k]--
					continue
				}
				vs = append(vs, Violation{
					Step: step, Kind: Conservation, Machine: m.Name, Manager: mgr.Name(),
					Detail: fmt.Sprintf("machine holds token %v but the manager records no matching grant (leaked past release/discard?)", t),
				})
			}
		}
		if anonymous > 0 {
			if held != total {
				vs = append(vs, Violation{
					Step: step, Kind: Conservation, Manager: mgr.Name(),
					Detail: fmt.Sprintf("manager reports %d outstanding grant(s) but machines hold %d token(s) from it", total, held),
				})
			}
			continue
		}
		// Surviving manager-side grants have no holding machine: the
		// binding is asymmetric.
		var orphans []Violation
		for k, n := range grants {
			for ; n > 0; n-- {
				owner := "<nil>"
				idle := false
				if k.owner != nil {
					owner = k.owner.Name
					idle = k.owner.InInitial()
				}
				detail := fmt.Sprintf("manager records grant of token %d to machine %s, but that machine does not hold it", k.id, owner)
				if idle {
					detail = fmt.Sprintf("manager records grant of token %d to machine %s, which rests in its initial state (binding outlived the operation)", k.id, owner)
				}
				orphans = append(orphans, Violation{
					Step: step, Kind: Binding, Machine: owner,
					Manager: mgr.Name(), Detail: detail,
				})
			}
		}
		// Map order is random; sort for deterministic diagnostics.
		sort.Slice(orphans, func(i, j int) bool {
			if orphans[i].Machine != orphans[j].Machine {
				return orphans[i].Machine < orphans[j].Machine
			}
			return orphans[i].Detail < orphans[j].Detail
		})
		vs = append(vs, orphans...)
	}
	return vs
}

// schedule verifies scan equivalence from the event-driven side:
// every machine the scheduler will not evaluate next step must have
// no satisfiable outgoing edge right now. ProbeEdge issues the same
// tentative requests the scan would and cancels them, so the check is
// side-effect free on conforming managers. Under the scan scheduler
// (or before the event scheduler initializes) every machine is
// evaluated every step and the check is vacuous.
func (c *Checker) schedule(vs []Violation) []Violation {
	d := c.d
	if !d.EventDriven() {
		return vs
	}
	step := d.StepCount()
	for _, m := range d.Machines() {
		if d.WillEvaluate(m) {
			continue
		}
		for _, e := range m.State().Out {
			if m.ProbeEdge(e) {
				vs = append(vs, Violation{
					Step: step, Kind: Schedule, Machine: m.Name, Edge: e.Name,
					Detail: fmt.Sprintf("machine is asleep in state %q but edge %s -> %s is satisfiable: a manager wake was missed",
						m.State().Name, e.From.Name, e.To.Name),
				})
			}
		}
	}
	return vs
}

// livelock flags machines that sit in a non-initial state without
// transitioning for more than the configured bound of consecutive
// steps.
func (c *Checker) livelock() []Violation {
	d := c.d
	bound := c.LivelockBound
	if bound == 0 {
		bound = DefaultLivelockBound
	}
	step := d.StepCount()
	var vs []Violation
	for _, m := range d.Machines() {
		if m.InInitial() {
			// Idle machines wait for work indefinitely; that is rest,
			// not livelock.
			delete(c.lastMoves, m)
			delete(c.stuckAt, m)
			continue
		}
		moves := m.Transitions()
		last, seen := c.lastMoves[m]
		if !seen || moves != last {
			c.lastMoves[m] = moves
			c.stuckAt[m] = step
			continue
		}
		if since := c.stuckAt[m]; step-since >= bound {
			vs = append(vs, Violation{
				Step: step, Kind: Livelock, Machine: m.Name,
				Detail: fmt.Sprintf("machine has sat in state %q for %d steps without a transition (bound %d)",
					m.State().Name, step-since, bound),
			})
			// Re-arm so a continuing run reports again only after
			// another full bound, not every subsequent step.
			c.stuckAt[m] = step
		}
	}
	return vs
}
