// Package osm implements the Operation State Machine (OSM) computation
// model of Qin and Malik (DATE 2003), a flexible and formal model for
// micro-architecture simulation.
//
// The model separates a microprocessor into two layers:
//
//   - The operation layer, where every in-flight machine operation is a
//     finite state machine (a Machine). States represent execution steps
//     of the operation; edges carry guard conditions that are
//     conjunctions of token-transaction primitives.
//
//   - The hardware layer, represented by token managers (TokenManager
//     implementations) that own structure and data resources — pipeline
//     stages, registers, function units — modeled as tokens.
//
// Machines never communicate with each other directly. Their only
// interaction with the environment is through the four transaction
// primitives of the Λ language: Allocate, Inquire, Release and Discard.
// A Director coordinates all machines once per control step using the
// deterministic rank-ordered scheduling algorithm of the paper's
// Figure 3. Control steps are synchronized with the clock edges of the
// hardware layer (see package de for the embedding of the OSM model of
// computation inside a discrete-event scheduler, the paper's Figure 4).
//
// The package also provides a library of reusable token managers that
// capture the policies recurring across microprocessor models: stage
// occupancy (UnitManager), register files with update tokens
// (RegFileManager), forwarding paths (BypassManager), speculative-
// operation squashing (ResetManager), counted resource pools
// (PoolManager) and in-order queues (QueueManager). As observed in the
// paper, token manager interfaces of the same nature are very much
// alike, so concrete processor models stay small.
package osm
