package osm

// This file exposes a read-only view of a compiled guard program's
// lowered structures. The Go code generator (internal/osm/gen) walks
// this view — the same elaborated model the compiled engine executes,
// with managers classified and edges proven pure or not — and emits
// one monomorphic Go function per edge for the generated engine
// (generated.go).

// InstrInfo describes one lowered guard conjunct.
type InstrInfo struct {
	// Op is the primitive's operation.
	Op Op
	// Kind is the manager classification the compile stage assigned:
	// "unit", "queue", "pool", "regfile", "reset", "bypass" for the
	// built-ins, "checked" for a custom CheckableManager, "generic"
	// otherwise (including manager-less discards).
	Kind string
	// Manager is the pre-resolved manager (nil only for manager-less
	// discards).
	Manager TokenManager
	// Dynamic reports whether the identifier comes from an IDFunc;
	// FixedID is the pre-resolved identifier otherwise.
	Dynamic bool
	FixedID TokenID
}

// EdgeInfo describes one lowered edge.
type EdgeInfo struct {
	// State is the source state's name; Edge is the model edge itself
	// (name, destination, When and Action are its exported fields).
	State string
	Edge  *Edge
	// Pure reports whether the compile stage proved the edge eligible
	// for the check-then-commit fast path (see pureEdge in
	// compiled.go). Non-pure edges must be executed transactionally;
	// generated code delegates them to the interpreter.
	Pure bool
	// Code is the edge's guard conjunction in evaluation order.
	Code []InstrInfo
}

// Edges returns the program's lowered edges in deterministic program
// order: machines in registration order, each graph in the compile
// walk's depth-first order, each state's edges in priority order.
func (g *GuardProgram) Edges() []EdgeInfo {
	out := make([]EdgeInfo, 0, g.stats.Edges)
	for _, cs := range g.states {
		for i := range cs.edges {
			ce := &cs.edges[i]
			ei := EdgeInfo{State: cs.s.Name, Edge: ce.e, Pure: ce.pure}
			for j := range ce.code {
				ins := &ce.code[j]
				ei.Code = append(ei.Code, InstrInfo{
					Op:      ins.op,
					Kind:    ins.kind.String(),
					Manager: ins.mgr,
					Dynamic: ins.dyn,
					FixedID: ins.fixed,
				})
			}
			out = append(out, ei)
		}
	}
	return out
}
