package osm

import (
	"strings"
	"testing"
)

// linear builds I -> A -> B -> I with an allocate at the first edge
// and a release at the last.
func linear() (*State, *UnitManager) {
	u := NewUnitManager("u", 1)
	i, a, b := NewState("I"), NewState("A"), NewState("B")
	i.Connect("e0", a, Alloc(u, 0))
	a.Connect("e1", b)
	b.Connect("e2", i, Release(u, 0))
	return i, u
}

func TestEnumeratePathsLinear(t *testing.T) {
	i, _ := linear()
	ps := EnumeratePaths(i, 10)
	if len(ps) != 1 {
		t.Fatalf("paths = %d, want 1", len(ps))
	}
	if got := ps[0].String(); got != "I -e0-> A -e1-> B -e2-> I" {
		t.Fatalf("path = %q", got)
	}
}

func TestEnumeratePathsBranching(t *testing.T) {
	// Fig. 2-style machine: from R either straight to E or via a
	// waiting state (reservation station).
	i, r, w, e := NewState("I"), NewState("R"), NewState("W"), NewState("E")
	i.Connect("e0", r)
	r.Connect("fast", e)
	r.Connect("slow", w)
	w.Connect("go", e)
	e.Connect("done", i)
	ps := EnumeratePaths(i, 10)
	if len(ps) != 2 {
		t.Fatalf("paths = %d, want 2", len(ps))
	}
	// Priority order: the fast path enumerates first.
	if !strings.Contains(ps[0].String(), "fast") {
		t.Fatalf("first path should be the high-priority one: %s", ps[0])
	}
}

func TestEnumeratePathsRespectsMaxLen(t *testing.T) {
	i, _ := linear()
	if ps := EnumeratePaths(i, 2); len(ps) != 0 {
		t.Fatalf("maxLen=2 should prune the 3-edge cycle, got %d paths", len(ps))
	}
}

func TestReservationTable(t *testing.T) {
	i, _ := linear()
	ps := EnumeratePaths(i, 10)
	rt := ReservationTable(ps[0])
	if len(rt) != 3 {
		t.Fatalf("table rows = %d, want 3", len(rt))
	}
	if len(rt[0].Held) != 1 || rt[0].Held[0] != "u:0" {
		t.Fatalf("row 0 holdings = %v, want [u:0]", rt[0].Held)
	}
	if len(rt[1].Held) != 1 {
		t.Fatalf("row 1 holdings = %v, want [u:0]", rt[1].Held)
	}
	if len(rt[2].Held) != 0 {
		t.Fatalf("row 2 holdings = %v, want empty after release", rt[2].Held)
	}
}

func TestReservationTableDiscardAll(t *testing.T) {
	u := NewUnitManager("u", 1)
	v := NewUnitManager("v", 1)
	i, a := NewState("I"), NewState("A")
	i.Connect("e0", a, Alloc(u, 0), Alloc(v, 0))
	a.Connect("reset", i, Discard(nil, AllTokens))
	ps := EnumeratePaths(i, 10)
	rt := ReservationTable(ps[0])
	if len(rt[0].Held) != 2 {
		t.Fatalf("row 0 holdings = %v, want two tokens", rt[0].Held)
	}
	if len(rt[1].Held) != 0 {
		t.Fatalf("row 1 holdings = %v, want none after discard-all", rt[1].Held)
	}
}

func TestOperandLatency(t *testing.T) {
	i, u := linear()
	ps := EnumeratePaths(i, 10)
	if got := OperandLatency(ps[0], u); got != 2 {
		t.Fatalf("latency = %d, want 2 (held across e0..e2)", got)
	}
	other := NewUnitManager("other", 1)
	if got := OperandLatency(ps[0], other); got != -1 {
		t.Fatalf("latency of unused manager = %d, want -1", got)
	}
}

func TestOperandLatencyLeakedToken(t *testing.T) {
	u := NewUnitManager("u", 1)
	i, a := NewState("I"), NewState("A")
	i.Connect("e0", a, Alloc(u, 0))
	a.Connect("e1", i) // leak
	ps := EnumeratePaths(i, 10)
	if got := OperandLatency(ps[0], u); got != 2 {
		t.Fatalf("leaked latency = %d, want path length 2", got)
	}
}

func TestValidateCleanModel(t *testing.T) {
	i, _ := linear()
	if issues := Validate(i, 10); len(issues) != 0 {
		t.Fatalf("clean model produced issues: %v", issues)
	}
}

func TestValidateDetectsLeak(t *testing.T) {
	u := NewUnitManager("u", 1)
	i, a := NewState("I"), NewState("A")
	i.Connect("e0", a, Alloc(u, 0))
	a.Connect("e1", i) // no release
	issues := Validate(i, 10)
	if len(issues) != 1 {
		t.Fatalf("issues = %v, want exactly one leak report", issues)
	}
	if !strings.Contains(issues[0].String(), "still holding") {
		t.Fatalf("issue text = %q", issues[0])
	}
}

func TestValidateDetectsUnheldRelease(t *testing.T) {
	u := NewUnitManager("u", 1)
	i, a := NewState("I"), NewState("A")
	i.Connect("e0", a)
	a.Connect("e1", i, Release(u, 0))
	issues := Validate(i, 10)
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "not held") {
		t.Fatalf("issues = %v, want one unheld-release report", issues)
	}
}

func TestValidateAcceptsResetEdges(t *testing.T) {
	u := NewUnitManager("u", 1)
	reset := NewResetManager("reset")
	i, a := NewState("I"), NewState("A")
	i.Connect("e0", a, Alloc(u, 0))
	a.Connect("e1", i, Release(u, 0))
	ResetEdge(a, i, reset)
	if issues := Validate(i, 10); len(issues) != 0 {
		t.Fatalf("reset edges must validate cleanly: %v", issues)
	}
}

func TestPathStringEmpty(t *testing.T) {
	if got := (Path{}).String(); got != "<empty>" {
		t.Fatalf("empty path string = %q", got)
	}
}
