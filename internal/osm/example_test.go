package osm_test

import (
	"fmt"

	"repro/internal/osm"
)

// ExampleDirector builds the smallest complete OSM model: operations
// flowing through a single-stage "processor" whose stage occupancy is
// one exclusive token. Two machines compete; the director's
// rank-ordered scheduling hands the stage over within a single
// control step.
func ExampleDirector() {
	stage := osm.NewUnitManager("stage", 1)
	idle := osm.NewState("I")
	busy := osm.NewState("S")
	idle.Connect("enter", busy, osm.Alloc(stage, 0))
	busy.Connect("leave", idle, osm.Release(stage, 0))

	d := osm.NewDirector()
	d.AddManager(stage)
	d.AddMachine(osm.NewMachine("op0", idle), osm.NewMachine("op1", idle))
	d.Tracer = osm.TracerFunc(func(step uint64, m *osm.Machine, e *osm.Edge) {
		fmt.Printf("step %d: %s %s\n", step, m.Name, e.Name)
	})

	for i := 0; i < 3; i++ {
		if err := d.Step(); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	// Output:
	// step 0: op0 enter
	// step 1: op0 leave
	// step 1: op1 enter
	// step 2: op1 leave
	// step 2: op0 enter
}

// ExampleRegFileManager shows the data-hazard protocol of the paper's
// Section 4: a writer holds the register-update token while an
// inquiring reader stalls, then releases it with the result attached.
func ExampleRegFileManager() {
	rf := osm.NewRegFileManager("rf", 4)
	idle := osm.NewState("I")
	exec := osm.NewState("E")
	done := osm.NewState("W")
	idle.Connect("claim", exec, osm.Alloc(rf, osm.UpdateToken(2)))
	done.Connect("retire", idle, osm.Release(rf, osm.UpdateToken(2)))

	writer := osm.NewMachine("writer", idle)
	reader := osm.NewMachine("reader", idle)

	d := osm.NewDirector()
	d.AddManager(rf)
	d.AddMachine(writer)
	d.Step() // writer claims the update token for r2

	fmt.Println("r2 readable while pending:", rf.Inquire(reader, osm.TokenID(2)))

	// The writer computes 42, attaches it, and retires.
	writer.SetData(rf, osm.UpdateToken(2), 42)
	writer.Ctx = nil
	// Manually walk the machine through E -> W -> I for the example.
	exec.Connect("finish", done)
	d.Step() // E -> finish -> W
	d.Step() // W -> retire -> I

	fmt.Println("r2 readable after retire:", rf.Inquire(reader, osm.TokenID(2)))
	fmt.Println("r2 =", rf.Read(2))
	// Output:
	// r2 readable while pending: false
	// r2 readable after retire: true
	// r2 = 42
}
