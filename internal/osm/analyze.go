package osm

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the model analyses sketched in Section 6 of the
// paper: because the OSM specification is purely declarative — a
// rule-based state machine over token transactions — operation
// properties such as reservation tables and operand latencies can be
// extracted statically, for use by a retargetable compiler's scheduler
// or for validation.

// Path is one simple cycle through a machine's state graph, starting
// and ending at the initial state: one possible life of an operation.
type Path []*Edge

// String renders the path as "I -e0-> F -e1-> D ...".
func (p Path) String() string {
	if len(p) == 0 {
		return "<empty>"
	}
	var b strings.Builder
	b.WriteString(p[0].From.Name)
	for _, e := range p {
		fmt.Fprintf(&b, " -%s-> %s", e.Name, e.To.Name)
	}
	return b.String()
}

// EnumeratePaths lists the simple cycles of the machine's state graph
// that start and end at the initial state, visiting no intermediate
// state twice, up to maxLen edges long. These are the operation's
// possible flows through the processor. Paths are enumerated in
// static-priority order (the order a real run would prefer).
func EnumeratePaths(initial *State, maxLen int) []Path {
	var out []Path
	var cur []*Edge
	seen := map[*State]bool{}
	var walk func(s *State)
	walk = func(s *State) {
		if len(cur) >= maxLen {
			return
		}
		for _, e := range s.Out {
			if e.To == initial {
				p := make(Path, len(cur)+1)
				copy(p, cur)
				p[len(cur)] = e
				out = append(out, p)
				continue
			}
			if seen[e.To] {
				continue
			}
			seen[e.To] = true
			cur = append(cur, e)
			walk(e.To)
			cur = cur[:len(cur)-1]
			seen[e.To] = false
		}
	}
	walk(initial)
	return out
}

// StepUse records the resources an operation holds during one step of
// a path, assuming the best case of one control step per edge.
type StepUse struct {
	// State is the state occupied during the step.
	State *State
	// Held lists, by manager name and identifier description, the
	// tokens held while in State (sorted for determinism).
	Held []string
}

// ReservationTable computes the sequence of resource holdings along a
// path: after traversing edge i the operation holds the tokens
// accumulated by allocations minus releases and discards. Identifier
// functions cannot be evaluated statically, so dynamic identifiers are
// rendered as "mgr:dyn" while fixed ones render as "mgr:id". The
// result is the classical reservation table a compiler scheduler
// consumes.
func ReservationTable(p Path) []StepUse {
	type key struct {
		mgr string
		id  string
	}
	held := map[key]int{}
	var out []StepUse
	for _, e := range p {
		for _, pr := range e.Prims {
			k := primKey(pr)
			switch pr.Op {
			case OpAllocate:
				held[k]++
			case OpRelease:
				if held[k] > 0 {
					held[k]--
				}
			case OpDiscard:
				if pr.FixedID == AllTokens && pr.ID == nil {
					for hk := range held {
						if pr.Mgr == nil || hk.mgr == pr.Mgr.Name() {
							delete(held, hk)
						}
					}
				} else if held[k] > 0 {
					held[k]--
				}
			}
		}
		var names []string
		for k, n := range held {
			for i := 0; i < n; i++ {
				names = append(names, k.mgr+":"+k.id)
			}
		}
		sort.Strings(names)
		out = append(out, StepUse{State: e.To, Held: names})
	}
	return out
}

func primKey(p Primitive) (k struct {
	mgr string
	id  string
}) {
	if p.Mgr != nil {
		k.mgr = p.Mgr.Name()
	}
	if p.ID != nil {
		k.id = "dyn"
	} else {
		k.id = fmt.Sprint(p.FixedID)
	}
	return k
}

// OperandLatency returns, for the given path, the number of edges
// between the allocation of a token from mgr and its release (or
// discard), i.e. how long the operation occupies the resource. It
// returns -1 when the path never allocates from mgr and the path
// length when it allocates but never gives the token back (a leak the
// Validate check also reports).
func OperandLatency(p Path, mgr TokenManager) int {
	start := -1
	for i, e := range p {
		for _, pr := range e.Prims {
			if pr.Mgr != mgr {
				if pr.Op == OpDiscard && pr.Mgr == nil && pr.FixedID == AllTokens && start >= 0 {
					return i - start
				}
				continue
			}
			switch pr.Op {
			case OpAllocate:
				if start < 0 {
					start = i
				}
			case OpRelease, OpDiscard:
				if start >= 0 {
					return i - start
				}
			}
		}
	}
	if start < 0 {
		return -1
	}
	return len(p) - start
}

// ValidationIssue describes one structural problem found by Validate.
type ValidationIssue struct {
	// Path is the offending operation flow.
	Path Path
	// Msg describes the problem.
	Msg string
}

func (v ValidationIssue) String() string { return v.Msg + " on path " + v.Path.String() }

// Validate statically checks every operation flow of a machine graph
// for the token-discipline properties the director enforces at run
// time: every release names a token some earlier edge of the same path
// could have allocated, and every path returns to the initial state
// with an empty (statically tracked) token buffer. It is the formal
// validation use-case of the paper's Section 6; a clean model returns
// an empty slice.
func Validate(initial *State, maxLen int) []ValidationIssue {
	var issues []ValidationIssue
	for _, p := range EnumeratePaths(initial, maxLen) {
		held := map[struct {
			mgr string
			id  string
		}]int{}
		for _, e := range p {
			for _, pr := range e.Prims {
				k := primKey(pr)
				switch pr.Op {
				case OpAllocate:
					held[k]++
				case OpRelease:
					if held[k] == 0 {
						issues = append(issues, ValidationIssue{Path: p, Msg: fmt.Sprintf(
							"edge %s releases %s:%s which is not held", e.Name, k.mgr, k.id)})
					} else {
						held[k]--
					}
				case OpDiscard:
					if pr.FixedID == AllTokens && pr.ID == nil {
						for hk := range held {
							if pr.Mgr == nil || (pr.Mgr != nil && hk.mgr == pr.Mgr.Name()) {
								delete(held, hk)
							}
						}
					} else if held[k] > 0 {
						held[k]--
					}
				}
			}
		}
		var leaked []string
		for k, n := range held {
			if n > 0 {
				leaked = append(leaked, fmt.Sprintf("%s:%s×%d", k.mgr, k.id, n))
			}
		}
		if len(leaked) > 0 {
			sort.Strings(leaked)
			issues = append(issues, ValidationIssue{Path: p, Msg: "path ends at initial state still holding " + strings.Join(leaked, ", ")})
		}
	}
	return issues
}
