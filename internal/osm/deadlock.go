package osm

import (
	"errors"
	"strings"
)

// ErrDeadlock is returned (wrapped) by Director.Step when deadlock
// checking is enabled and a cyclic resource dependency among two or
// more machines is detected. In OSM-based microprocessor models such a
// cycle implies a cyclic pipeline, which occurs only under faulty
// situations, so the director treats it as a pathological condition
// and aborts rather than spinning forever.
var ErrDeadlock = errors.New("osm: scheduling deadlock")

// findWaitCycle builds the wait-for graph from the machines' blocked
// primitives and the managers' holder reports, then searches it for a
// cycle. A machine waits for another when one of its failed Allocate
// primitives names a unit currently held by that other machine.
// Blocked Release and Inquire primitives do not create wait edges:
// they wait on hardware conditions, not on other machines.
func (d *Director) findWaitCycle() []*Machine {
	waits := make(map[*Machine][]*Machine)
	for _, m := range d.machines {
		for _, p := range m.blocked {
			if p.Op != OpAllocate {
				continue
			}
			hr, ok := p.Mgr.(HolderReporter)
			if !ok {
				continue
			}
			holder := hr.Holder(m.primID(p))
			if holder != nil && holder != m {
				waits[m] = append(waits[m], holder)
			}
		}
	}
	// Depth-first search over the registration order for determinism.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*Machine]int, len(waits))
	var stack []*Machine
	var cycle []*Machine
	var visit func(m *Machine) bool
	visit = func(m *Machine) bool {
		color[m] = grey
		stack = append(stack, m)
		for _, w := range waits[m] {
			switch color[w] {
			case grey:
				// Found a back edge: extract the cycle.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == w {
						break
					}
				}
				// Reverse into wait order.
				for l, r := 0, len(cycle)-1; l < r; l, r = l+1, r-1 {
					cycle[l], cycle[r] = cycle[r], cycle[l]
				}
				return true
			case white:
				if visit(w) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[m] = black
		return false
	}
	for _, m := range d.machines {
		if color[m] == white && len(waits[m]) > 0 {
			if visit(m) {
				return cycle
			}
		}
	}
	return nil
}

func cycleString(cycle []*Machine) string {
	var b strings.Builder
	for i, m := range cycle {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(m.Name)
	}
	b.WriteString(" -> ")
	b.WriteString(cycle[0].Name)
	return b.String()
}
