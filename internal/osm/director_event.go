package osm

// This file implements the director's event-driven scheduler. It
// produces the exact transition schedule of the Figure 3 scan
// scheduler (stepScan in director.go) while only evaluating machines
// whose guards may have become satisfiable — idle machines resting in
// their initial state, and machines stalled on unchanged resources,
// cost nothing per control step.
//
// The mechanism:
//
//   - The director keeps a ready set of machines to evaluate at the
//     next control step. A step snapshots the ready set into a serve
//     list sorted in scan order (the AgeRank order, computed from
//     per-machine keys instead of a full ranking sort).
//
//   - When a served machine fails every outgoing edge at token-
//     protocol primitives whose managers are all sleep-safe (see
//     SleepSafe in manager.go), it is suspended on the wait list of
//     each refusing manager. It is re-queued when one of them wakes:
//     either the director observes a committed transaction naming the
//     manager, or the manager announces a state change through the
//     hook installed with SetWake (WakeNotifier).
//
//   - A machine whose failure the protocol cannot track — a When
//     predicate returned false, or a refusing manager is not
//     sleep-safe — stays in the ready set and is re-evaluated every
//     step, exactly like the scan. Correctness therefore never
//     depends on a model opting in to the wake contract.
//
// Scan equivalence. The scan serves machines in rank order and, on a
// transition, either continues past the transitioned machine
// (NoRestart, or RestartPolicy refused) or restarts from the top.
// The event scheduler reproduces the schedule by classifying every
// machine woken by a transition of machine t, served at key Kt:
//
//   - restart-qualified transition: the woken machine joins the
//     current serve list (the scan would re-reach it), and every
//     machine that failed this step for an untracked reason is
//     re-queued too, since the transition's action may have changed
//     what its When predicate observes.
//   - otherwise, a woken machine joins the current serve list only
//     if it was not yet evaluated this step and its key orders after
//     Kt — the position the continuing scan has not passed yet. A
//     machine whose turn already passed (it was evaluated and failed,
//     or orders before Kt) waits for the next step, exactly like the
//     scan.
//
// Machines that transition are always re-queued for the next step:
// Figure 3 serves each machine's new state at the following step (at
// most one transition per machine per step).

// machineSched is per-machine scheduling state owned by the
// event-driven scheduler. Stamps hold step+1 so the zero value means
// "never".
type machineSched struct {
	idx int // registration index; breaks ranking ties
	// key is the machine's serve-order position (see keyOf), computed
	// when the machine enters the serve list and valid for one step.
	key       uint64
	inReady   bool  // queued for the next step
	inPend    bool  // queued in the current step's serve list
	asleep    bool  // suspended on wait lists (or permanently, if none)
	untracked bool  // last failure had a cause the protocol cannot track
	waits     []int // manager indices whose wait lists hold the machine
	evalStamp uint64
	moveStamp uint64
	utStamp   uint64
}

// eventSched is the director's event-driven scheduler state.
type eventSched struct {
	init bool
	// epoch invalidates caches hung off model structures (edges,
	// primitives) whenever the scheduler is rebuilt and manager
	// indices may have changed.
	epoch uint64
	mgrOf map[TokenManager]int
	safe  []bool // per manager: sleep-safe and wake-capable
	waits [][]*Machine
	ready []*Machine // machines to evaluate at the next step
	pend  []*Machine // the current step's serve list, sorted by key
	woken []*Machine // wakes buffered during one machine evaluation
	// untracked lists machines that failed this step for a reason the
	// protocol cannot track; a restart-qualified transition re-queues
	// them.
	untracked []*Machine
	serving   bool
	servIdx   int    // next unserved position in pend
	servKey   uint64 // key of the machine being served
	stamp     uint64 // d.step + 1 during the current step
}

// idleKeyBase separates the serve-order keys of idle machines from
// active ones: active machines order first by ascending age, then
// idle machines by registration index. Ages count operations and
// cannot reach 2^63; keys are unique because ages are.
const idleKeyBase = uint64(1) << 63

// keyOf computes m's position in the AgeRank serve order as a single
// comparable integer.
func keyOf(m *Machine) uint64 {
	if m.InInitial() {
		return idleKeyBase + uint64(m.sched.idx)
	}
	return m.Age
}

// initEvent (re)builds the scheduler state: manager indexing, wake
// hooks, and a ready set holding every machine. It runs before the
// first event-driven step and again after any AddMachine/AddManager
// or Reset, so resuming in either scheduler at a step boundary is
// always sound.
func (d *Director) initEvent() {
	d.ensurePrims()
	ev := &d.ev
	ev.epoch++
	ev.mgrOf = make(map[TokenManager]int, len(d.managers))
	ev.safe = make([]bool, len(d.managers))
	ev.waits = make([][]*Machine, len(d.managers))
	for i, mgr := range d.managers {
		ev.mgrOf[mgr] = i
		wn, canWake := mgr.(WakeNotifier)
		if ss, ok := mgr.(SleepSafe); ok && canWake && ss.SleepSafeManager() {
			ev.safe[i] = true
		}
		if canWake {
			k := i
			wn.SetWake(func() { d.wakeMgr(k) })
		}
	}
	ev.ready = ev.ready[:0]
	for i, m := range d.machines {
		m.sched = machineSched{idx: i, inReady: true}
		m.dynEpoch++ // guard against mutation while unscheduled
		ev.ready = append(ev.ready, m)
	}
	ev.pend = ev.pend[:0]
	ev.woken = ev.woken[:0]
	ev.untracked = ev.untracked[:0]
	ev.serving = false
	ev.init = true
}

// stepEvent runs one control step under the event-driven scheduler.
// It serves both the interpreted event engine and the compiled engine,
// which differ only in how serveMachine evaluates guards.
func (d *Director) stepEvent() error {
	switch d.Engine {
	case EngineCompiled:
		if d.comp == nil {
			if _, err := d.Compile(); err != nil {
				return err
			}
		}
		d.useComp, d.useGen = true, false
	case EngineGenerated:
		if d.gen == nil {
			if _, err := d.generatedProgram(); err != nil {
				return err
			}
		}
		d.useComp, d.useGen = false, true
	default:
		d.useComp, d.useGen = false, false
	}
	ev := &d.ev
	if !ev.init {
		d.initEvent()
	}
	ev.stamp = d.step + 1
	// BeginStep wakes (time-based state crossings) land in the ready
	// set before the snapshot, so they are served this very step —
	// the scan re-evaluates everyone after BeginStep too.
	for _, s := range d.steppers {
		s.BeginStep(d.step)
	}
	// Snapshot by swapping the slices: the ready set becomes the serve
	// list without copying the elements.
	ev.pend, ev.ready = ev.ready, ev.pend[:0]
	pend := ev.pend
	for _, m := range pend {
		m.sched.inReady = false
		m.sched.inPend = true
		m.sched.key = keyOf(m)
	}
	// Sort the serve list in scan order. Machines re-enter the ready
	// set in serve order, so the list is nearly sorted and this
	// insertion sort runs in linear time in steady state.
	for i := 1; i < len(pend); i++ {
		for j := i; j > 0 && pend[j].sched.key < pend[j-1].sched.key; j-- {
			pend[j], pend[j-1] = pend[j-1], pend[j]
		}
	}
	ev.untracked = ev.untracked[:0]

	progressed := false
	ev.servIdx = 0
	for ev.servIdx < len(ev.pend) {
		m := ev.pend[ev.servIdx]
		ev.servIdx++
		m.sched.inPend = false

		ev.servKey = m.sched.key
		ev.serving = true
		moved, moveEdge, err := d.serveMachine(m)
		if err != nil {
			ev.serving = false
			ev.woken = ev.woken[:0]
			ev.pend = ev.pend[:0]
			return err
		}
		if moved {
			progressed = true
			m.sched.moveStamp = ev.stamp
			d.toReady(m) // the new state is served next step
			// Wake the waiters of every manager the commit mutated;
			// classification happens below, so keep buffering.
			d.wakeEdge(moveEdge)
			ev.serving = false
			restart := !d.NoRestart &&
				(d.RestartPolicy == nil || d.RestartPolicy(m, moveEdge))
			for _, w := range ev.woken {
				d.admit(w, restart)
			}
			ev.woken = ev.woken[:0]
			if restart {
				// The scan restarts from the top and re-tries every
				// remaining machine, including ones whose failure the
				// protocol cannot track: the transition's action may
				// have changed what their predicates observe.
				for _, v := range ev.untracked {
					v.sched.utStamp = 0
					if v.sched.moveStamp != ev.stamp {
						d.toPend(v)
					}
				}
				ev.untracked = ev.untracked[:0]
			}
			continue
		}
		ev.serving = false
		m.sched.evalStamp = ev.stamp
		switch {
		case m.sched.untracked:
			d.noteUntracked(m)
			d.toReady(m)
		case len(m.blocked) > 0:
			if !d.suspend(m) {
				// A refusing manager cannot support suspension;
				// behave like the scan and re-evaluate every step.
				d.noteUntracked(m)
				d.toReady(m)
			}
		default:
			// No outgoing edge exists; nothing can ever fire.
			m.sched.asleep = true
		}
		// Wakes observed during a failed evaluation are side-effect
		// free (the tentative grants were cancelled); schedule them
		// conservatively for the next step.
		if len(ev.woken) > 0 {
			for _, w := range ev.woken {
				if w.sched.moveStamp != ev.stamp {
					d.toReady(w)
				}
			}
			ev.woken = ev.woken[:0]
		}
	}
	ev.pend = ev.pend[:0]

	if !progressed && d.CheckDeadlock {
		// Suspended machines keep the blocked list of their last
		// evaluation; the wake contract guarantees those primitives
		// still fail, so the wait-for graph matches the scan's.
		if err := d.deadlockCheck(); err != nil {
			return err
		}
	}
	if d.Check != nil {
		if err := d.Check(d); err != nil {
			return err
		}
	}
	d.step++
	return nil
}

// admit classifies a machine woken by a committed transition: into
// the current serve list when the scan would still reach it this
// step, otherwise into the next step's ready set. See the scan
// equivalence comment at the top of the file.
func (d *Director) admit(w *Machine, restart bool) {
	s := &w.sched
	if s.moveStamp == d.ev.stamp || s.inPend {
		return
	}
	if restart || (s.evalStamp != d.ev.stamp && d.ev.servKey < keyOf(w)) {
		d.toPend(w)
		return
	}
	d.toReady(w)
}

// toReady queues m for evaluation at the next control step.
func (d *Director) toReady(m *Machine) {
	s := &m.sched
	if s.inReady || s.inPend {
		return
	}
	s.inReady = true
	d.ev.ready = append(d.ev.ready, m)
}

// toPend queues m in the current step's serve list, pulling it out of
// the next-step ready set if it was there. The machine is inserted at
// its key's position in the unserved tail, keeping the list sorted.
func (d *Director) toPend(m *Machine) {
	s := &m.sched
	if s.inPend {
		return
	}
	if s.inReady {
		for i, x := range d.ev.ready {
			if x == m {
				d.ev.ready = append(d.ev.ready[:i], d.ev.ready[i+1:]...)
				break
			}
		}
		s.inReady = false
	}
	s.inPend = true
	s.key = keyOf(m)
	p := d.ev.pend
	lo, hi := d.ev.servIdx, len(p)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p[mid].sched.key < s.key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	p = append(p, nil)
	copy(p[lo+1:], p[lo:])
	p[lo] = m
	d.ev.pend = p
}

// noteUntracked records that m failed this step for a reason the
// token protocol cannot track, so restart-qualified transitions must
// re-try it.
func (d *Director) noteUntracked(m *Machine) {
	if m.sched.utStamp == d.ev.stamp {
		return
	}
	m.sched.utStamp = d.ev.stamp
	d.ev.untracked = append(d.ev.untracked, m)
}

// mgrIdx resolves the scheduler's registration index for a blocked
// primitive's manager, caching it on the primitive (primitives are
// interned per edge, so the cache is hit for the model's life).
func (d *Director) mgrIdx(p *Primitive) (int, bool) {
	if p.schedDir == d && p.schedEpoch == d.ev.epoch {
		return p.schedIdx, p.schedIdx >= 0
	}
	k, ok := d.ev.mgrOf[p.Mgr]
	if !ok {
		k = -1
	}
	p.schedDir, p.schedEpoch, p.schedIdx = d, d.ev.epoch, k
	return k, ok
}

// suspend registers m on the wait list of every manager that refused
// one of its primitives. It reports false — leaving no registrations
// behind — when any refusing manager is unregistered or not
// sleep-safe, in which case the caller keeps m always-ready.
func (d *Director) suspend(m *Machine) bool {
	for _, p := range m.blocked {
		k, ok := d.mgrIdx(p)
		if !ok || !d.ev.safe[k] {
			for _, r := range m.sched.waits {
				d.ev.waits[r] = removeMachine(d.ev.waits[r], m)
			}
			m.sched.waits = m.sched.waits[:0]
			return false
		}
		dup := false
		for _, r := range m.sched.waits {
			if r == k {
				dup = true
				break
			}
		}
		if !dup {
			m.sched.waits = append(m.sched.waits, k)
			d.ev.waits[k] = append(d.ev.waits[k], m)
		}
	}
	m.sched.asleep = true
	return true
}

// wakeMgr re-queues every machine suspended on manager index k. It is
// the hook installed into managers via SetWake and is also called by
// the director itself when a committed edge mutates the manager.
func (d *Director) wakeMgr(k int) {
	if !d.ev.init || k >= len(d.ev.waits) {
		return
	}
	for len(d.ev.waits[k]) > 0 {
		d.noteWake(d.ev.waits[k][0])
	}
}

func (d *Director) wakeAllMgrs() {
	for k := range d.ev.waits {
		d.wakeMgr(k)
	}
}

// noteWake returns a suspended machine to scheduling. During a
// machine evaluation, wakes are buffered and classified once the
// outcome (and restart qualification) is known; outside one, the
// machine joins the ready set — before the snapshot for BeginStep
// wakes, i.e. the current step, and the next step for wakes between
// steps.
func (d *Director) noteWake(m *Machine) {
	s := &m.sched
	if s.asleep {
		for _, k := range s.waits {
			d.ev.waits[k] = removeMachine(d.ev.waits[k], m)
		}
		s.waits = s.waits[:0]
		s.asleep = false
	}
	if d.ev.serving {
		d.ev.woken = append(d.ev.woken, m)
		return
	}
	d.toReady(m)
}

// Wake re-queues a machine for evaluation. Models that change
// guard-relevant state outside both the token protocol and any
// manager's wake contract can call it to keep the event-driven
// scheduler exact; it is never needed for the built-in managers. A
// no-op under the scan scheduler.
func (d *Director) Wake(m *Machine) {
	if d.ev.init {
		d.noteWake(m)
	}
}

// wakeEdge wakes the waiters of every manager mutated by a commit of
// e. The manager set is derived from the edge's primitives once and
// cached on the edge: Allocate, Release and Discard mutate their
// manager; a Discard with a nil manager empties the whole token
// buffer, so it wakes everything.
func (d *Director) wakeEdge(e *Edge) {
	if e.wakeDir != d || e.wakeEpoch != d.ev.epoch {
		d.buildEdgeWake(e)
	}
	if e.wakeAll {
		d.wakeAllMgrs()
		return
	}
	for _, k := range e.wakeMgrs {
		d.wakeMgr(k)
	}
}

// buildEdgeWake computes and caches e's wake set under the current
// scheduler epoch.
func (d *Director) buildEdgeWake(e *Edge) {
	e.wakeAll = false
	e.wakeMgrs = e.wakeMgrs[:0]
	for pi := range e.Prims {
		p := &e.Prims[pi]
		switch p.Op {
		case OpAllocate, OpRelease, OpDiscard:
			if p.Mgr == nil {
				e.wakeAll = true
				continue
			}
			if k, reg := d.ev.mgrOf[p.Mgr]; reg {
				dup := false
				for _, x := range e.wakeMgrs {
					if x == k {
						dup = true
						break
					}
				}
				if !dup {
					e.wakeMgrs = append(e.wakeMgrs, k)
				}
			}
		}
	}
	e.wakeDir, e.wakeEpoch = d, d.ev.epoch
}

func removeMachine(list []*Machine, m *Machine) []*Machine {
	for i, x := range list {
		if x == m {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
