package osm

import (
	"fmt"
	"sort"

	"repro/internal/snap"
)

// This file implements deterministic checkpoint/restore for the
// operation layer. The OSM formalism makes full-simulator state finite
// and enumerable: a machine is (current state, operation binding,
// token buffer, age), a token manager is whatever its grant policy
// tracks, and the director adds only its step and age counters. A
// snapshot therefore captures exactly those, in registration order,
// through the versioned snap codec.
//
// Snapshots are taken at control-step boundaries (between two
// Director.Step calls). At a boundary every two-phase transaction has
// committed or cancelled, so no tentative manager state exists, and
// the event-driven scheduler's derived state (wait lists, ready set,
// serve list) is reconstructed rather than persisted: restore marks
// the scheduler uninitialized and the next step re-evaluates every
// machine, which commits the identical transition schedule — serving
// a blocked machine is side-effect free, and the scan-equivalence
// argument in director_event.go does not depend on the ready set
// being minimal. The differential checkpoint tests in
// internal/experiments verify this trace-for-trace under both
// schedulers.

// Snapshotter is implemented by token managers whose state must
// survive checkpoint/restore. Director.Snapshot requires it of every
// registered manager: a manager with unsnapshotted state would make
// resumed runs diverge silently, so the director refuses instead.
//
// Both methods are called at control-step boundaries only. Machines
// are referred to through the SnapCtx index so managers never encode
// pointers; RestoreState must fully overwrite the manager's dynamic
// state (the manager was freshly constructed with the same
// configuration).
type Snapshotter interface {
	SnapshotState(c *SnapCtx, w *snap.Writer)
	RestoreState(c *SnapCtx, r *snap.Reader) error
}

// SnapCtx translates between machine pointers and their director
// registration indices during a snapshot or restore.
type SnapCtx struct {
	d      *Director
	idx    map[*Machine]int
	mgrIdx map[TokenManager]int
	states map[*State]map[string]*State
	err    error
}

func (d *Director) snapCtx() *SnapCtx {
	c := &SnapCtx{
		d:      d,
		idx:    make(map[*Machine]int, len(d.machines)),
		mgrIdx: make(map[TokenManager]int, len(d.managers)),
		states: make(map[*State]map[string]*State),
	}
	for i, m := range d.machines {
		c.idx[m] = i
	}
	for i, mgr := range d.managers {
		c.mgrIdx[mgr] = i
	}
	return c
}

func (c *SnapCtx) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("osm: snapshot: "+format, args...)
	}
}

// Err returns the first cross-reference error hit during the
// snapshot or restore.
func (c *SnapCtx) Err() error { return c.err }

// Index returns m's registration index, or -1 for nil. An unregistered
// machine is a model error and poisons the snapshot.
func (c *SnapCtx) Index(m *Machine) int {
	if m == nil {
		return -1
	}
	i, ok := c.idx[m]
	if !ok {
		c.fail("machine %s is not registered with the director", m.Name)
		return -1
	}
	return i
}

// Machine returns the machine registered at index i, or nil for -1.
func (c *SnapCtx) Machine(i int) *Machine {
	if i == -1 {
		return nil
	}
	if i < 0 || i >= len(c.d.machines) {
		c.fail("machine index %d out of range [0,%d)", i, len(c.d.machines))
		return nil
	}
	return c.d.machines[i]
}

// managerIndex returns mgr's registration index; unregistered
// managers poison the snapshot (their tokens could not be restored).
func (c *SnapCtx) managerIndex(mgr TokenManager) int {
	if mgr == nil {
		return -1
	}
	i, ok := c.mgrIdx[mgr]
	if !ok {
		c.fail("manager %s is not registered with the director", mgr.Name())
		return -1
	}
	return i
}

// stateByName resolves a state name in the graph reachable from
// initial, caching the traversal per distinct initial state (machines
// of one model share a state graph).
func (c *SnapCtx) stateByName(initial *State, name string) (*State, error) {
	byName, ok := c.states[initial]
	if !ok {
		byName = make(map[string]*State)
		var walk func(s *State) error
		walk = func(s *State) error {
			if prev, seen := byName[s.Name]; seen {
				if prev != s {
					return fmt.Errorf("osm: snapshot: duplicate state name %q", s.Name)
				}
				return nil
			}
			byName[s.Name] = s
			for _, e := range s.Out {
				if err := walk(e.To); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(initial); err != nil {
			return nil, err
		}
		c.states[initial] = byName
	}
	s, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("osm: snapshot: unknown state %q", name)
	}
	return s, nil
}

const directorSnapVersion = 1

// Snapshot encodes the director's scheduling position, every
// machine's state and token buffer, and every registered manager's
// state (via Snapshotter) into w. It must be called at a control-step
// boundary. It fails if any registered manager does not implement
// Snapshotter.
func (d *Director) Snapshot(w *snap.Writer) error {
	for _, mgr := range d.managers {
		if _, ok := mgr.(Snapshotter); !ok {
			return fmt.Errorf("osm: snapshot: manager %s does not implement Snapshotter", mgr.Name())
		}
	}
	c := d.snapCtx()
	w.Version(directorSnapVersion)
	w.U64(d.step)
	w.U64(d.nextAge)
	w.Int(len(d.machines))
	for _, m := range d.machines {
		m := m
		w.Blob(func(w *snap.Writer) { m.snapshot(c, w) })
	}
	w.Int(len(d.managers))
	for _, mgr := range d.managers {
		mgr := mgr
		w.String(mgr.Name())
		w.Blob(func(w *snap.Writer) { mgr.(Snapshotter).SnapshotState(c, w) })
	}
	return c.err
}

// Restore decodes a snapshot written by Snapshot into this director,
// which must have been built identically (same machines and managers
// in the same registration order). The event-driven scheduler is
// reinitialized on the next step; the restored schedule is
// transition-identical to the uninterrupted run under both schedulers.
func (d *Director) Restore(r *snap.Reader) error {
	c := d.snapCtx()
	r.Version("director", directorSnapVersion)
	step, nextAge := r.U64(), r.U64()
	nm := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nm != len(d.machines) {
		return fmt.Errorf("osm: restore: snapshot has %d machines, director has %d", nm, len(d.machines))
	}
	for _, m := range d.machines {
		if err := m.restore(c, r.Blob()); err != nil {
			return err
		}
	}
	nmgr := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nmgr != len(d.managers) {
		return fmt.Errorf("osm: restore: snapshot has %d managers, director has %d", nmgr, len(d.managers))
	}
	for _, mgr := range d.managers {
		name := r.String()
		if err := r.Err(); err != nil {
			return err
		}
		if name != mgr.Name() {
			return fmt.Errorf("osm: restore: manager %d is %q in the snapshot, %q in the director", c.mgrIdx[mgr], name, mgr.Name())
		}
		s, ok := mgr.(Snapshotter)
		if !ok {
			return fmt.Errorf("osm: restore: manager %s does not implement Snapshotter", mgr.Name())
		}
		if err := s.RestoreState(c, r.Blob()); err != nil {
			return fmt.Errorf("manager %s: %w", mgr.Name(), err)
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	if c.err != nil {
		return c.err
	}
	d.step = step
	d.nextAge = nextAge
	d.ev.init = false // derived scheduler state is rebuilt on the next step
	return nil
}

func (m *Machine) snapshot(c *SnapCtx, w *snap.Writer) {
	w.String(m.Name)
	w.String(m.cur.Name)
	w.U64(m.Age)
	w.Int(m.Tag)
	w.Int(len(m.tokens))
	for _, t := range m.tokens {
		w.Int(c.managerIndex(t.Mgr))
		w.I64(int64(t.ID))
		w.U64(t.Data)
	}
}

func (m *Machine) restore(c *SnapCtx, r *snap.Reader) error {
	name := r.String()
	stateName := r.String()
	age := r.U64()
	tag := r.Int()
	n := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("machine %s: %w", m.Name, err)
	}
	if name != m.Name {
		return fmt.Errorf("osm: restore: machine is %q in the snapshot, %q in the director", name, m.Name)
	}
	st, err := c.stateByName(m.Initial, stateName)
	if err != nil {
		return fmt.Errorf("machine %s: %w", m.Name, err)
	}
	toks := make([]Token, 0, n)
	for i := 0; i < n; i++ {
		mi := r.Int()
		id := TokenID(r.I64())
		data := r.U64()
		if err := r.Err(); err != nil {
			return fmt.Errorf("machine %s: %w", m.Name, err)
		}
		var mgr TokenManager
		if mi != -1 {
			if mi < 0 || mi >= len(c.d.managers) {
				return fmt.Errorf("osm: restore: machine %s: token manager index %d out of range", m.Name, mi)
			}
			mgr = c.d.managers[mi]
		}
		toks = append(toks, Token{Mgr: mgr, ID: id, Data: data})
	}
	if err := r.Close("machine " + m.Name); err != nil {
		return err
	}
	m.cur = st
	m.Age = age
	m.Tag = tag
	m.tokens = toks
	m.blocked = m.blocked[:0]
	m.pend = m.pend[:0]
	m.dynEpoch++ // the restored binding is a fresh resolution epoch
	m.sched = machineSched{}
	return nil
}

// ---- Built-in token manager snapshots ----

const managerSnapVersion = 1

// SnapshotState encodes the pool's occupancy (Snapshotter).
func (p *PoolManager) SnapshotState(c *SnapCtx, w *snap.Writer) {
	w.Version(managerSnapVersion)
	w.Int(p.capacity)
	w.Int(p.free)
	w.I64(int64(p.seq))
}

// RestoreState decodes a pool snapshot (Snapshotter).
func (p *PoolManager) RestoreState(c *SnapCtx, r *snap.Reader) error {
	r.Version("pool", managerSnapVersion)
	capn, free, seq := r.Int(), r.Int(), TokenID(r.I64())
	if err := r.Close("pool " + p.ManagerName); err != nil {
		return err
	}
	if capn != p.capacity {
		return fmt.Errorf("pool %s: snapshot capacity %d, manager has %d", p.ManagerName, capn, p.capacity)
	}
	if free < 0 || free > p.capacity {
		return fmt.Errorf("pool %s: free count %d out of range [0,%d]", p.ManagerName, free, p.capacity)
	}
	p.free = free
	p.seq = seq
	return nil
}

// SnapshotState encodes the queue's entries in order from the head
// (Snapshotter). The head position inside the ring is normalized
// away: only the logical queue content matters.
func (q *QueueManager) SnapshotState(c *SnapCtx, w *snap.Writer) {
	w.Version(managerSnapVersion)
	w.Int(q.capacity)
	w.I64(int64(q.seq))
	w.Int(q.n)
	for i := 0; i < q.n; i++ {
		e := q.at(i)
		w.I64(int64(e.id))
		w.Int(c.Index(e.owner))
	}
}

// RestoreState decodes a queue snapshot (Snapshotter).
func (q *QueueManager) RestoreState(c *SnapCtx, r *snap.Reader) error {
	r.Version("queue", managerSnapVersion)
	capn := r.Int()
	seq := TokenID(r.I64())
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if capn != q.capacity {
		return fmt.Errorf("queue %s: snapshot capacity %d, manager has %d", q.ManagerName, capn, q.capacity)
	}
	if n < 0 || n > q.capacity {
		return fmt.Errorf("queue %s: entry count %d out of range [0,%d]", q.ManagerName, n, q.capacity)
	}
	for i := range q.ring {
		q.ring[i] = queueEntry{}
	}
	q.head = 0
	q.n = n
	q.seq = seq
	for i := 0; i < n; i++ {
		id := TokenID(r.I64())
		owner := c.Machine(r.Int())
		q.ring[i] = queueEntry{id: id, owner: owner}
	}
	return r.Close("queue " + q.ManagerName)
}

// SnapshotState encodes values, outstanding update counts and writer
// lists (Snapshotter).
func (f *RegFileManager) SnapshotState(c *SnapCtx, w *snap.Writer) {
	w.Version(managerSnapVersion)
	w.Int(len(f.vals))
	for i := range f.vals {
		w.U64(f.vals[i])
		w.Int(f.pending[i])
		w.Int(len(f.writers[i]))
		for _, m := range f.writers[i] {
			w.Int(c.Index(m))
		}
	}
}

// RestoreState decodes a register file snapshot (Snapshotter).
func (f *RegFileManager) RestoreState(c *SnapCtx, r *snap.Reader) error {
	r.Version("regfile", managerSnapVersion)
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(f.vals) {
		return fmt.Errorf("regfile %s: snapshot has %d registers, manager has %d", f.ManagerName, n, len(f.vals))
	}
	for i := 0; i < n; i++ {
		f.vals[i] = r.U64()
		f.pending[i] = r.Int()
		nw := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if nw < 0 || nw > len(c.d.machines) {
			return fmt.Errorf("regfile %s: r%d writer count %d out of range", f.ManagerName, i, nw)
		}
		ws := make([]*Machine, 0, nw)
		for j := 0; j < nw; j++ {
			ws = append(ws, c.Machine(r.Int()))
		}
		f.writers[i] = ws
	}
	return r.Close("regfile " + f.ManagerName)
}

// SnapshotState encodes unit ownership and busy windows (Snapshotter).
func (u *UnitManager) SnapshotState(c *SnapCtx, w *snap.Writer) {
	w.Version(managerSnapVersion)
	w.U64(u.step)
	w.Int(len(u.owner))
	for i := range u.owner {
		w.Int(c.Index(u.owner[i]))
		w.U64(u.busyUntil[i])
	}
}

// RestoreState decodes a unit manager snapshot (Snapshotter).
func (u *UnitManager) RestoreState(c *SnapCtx, r *snap.Reader) error {
	r.Version("unit", managerSnapVersion)
	step := r.U64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(u.owner) {
		return fmt.Errorf("unit %s: snapshot has %d units, manager has %d", u.ManagerName, n, len(u.owner))
	}
	for i := 0; i < n; i++ {
		u.owner[i] = c.Machine(r.Int())
		u.busyUntil[i] = r.U64()
	}
	u.step = step
	return r.Close("unit " + u.ManagerName)
}

// SnapshotState encodes live forwarded values, sorted by register for
// a deterministic byte stream (Snapshotter).
func (b *BypassManager) SnapshotState(c *SnapCtx, w *snap.Writer) {
	w.Version(managerSnapVersion)
	w.U64(b.step)
	regs := make([]int, 0, len(b.entries))
	for reg := range b.entries {
		regs = append(regs, reg)
	}
	sort.Ints(regs)
	w.Int(len(regs))
	for _, reg := range regs {
		e := b.entries[reg]
		w.Int(reg)
		w.U64(e.val)
		w.U64(e.until)
	}
}

// RestoreState decodes a bypass network snapshot (Snapshotter).
func (b *BypassManager) RestoreState(c *SnapCtx, r *snap.Reader) error {
	r.Version("bypass", managerSnapVersion)
	step := r.U64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("bypass %s: negative entry count %d", b.ManagerName, n)
	}
	entries := make(map[int]bypassEntry, n)
	for i := 0; i < n; i++ {
		reg := r.Int()
		val := r.U64()
		until := r.U64()
		entries[reg] = bypassEntry{val: val, until: until}
	}
	if err := r.Close("bypass " + b.ManagerName); err != nil {
		return err
	}
	b.step = step
	b.entries = entries
	return nil
}

// SnapshotState encodes the squash marks, sorted by machine index for
// a deterministic byte stream (Snapshotter).
func (m *ResetManager) SnapshotState(c *SnapCtx, w *snap.Writer) {
	w.Version(managerSnapVersion)
	idxs := make([]int, 0, len(m.marked))
	for mm := range m.marked {
		idxs = append(idxs, c.Index(mm))
	}
	sort.Ints(idxs)
	w.Int(len(idxs))
	for _, i := range idxs {
		w.Int(i)
	}
}

// RestoreState decodes a reset manager snapshot (Snapshotter).
func (m *ResetManager) RestoreState(c *SnapCtx, r *snap.Reader) error {
	r.Version("reset", managerSnapVersion)
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 || n > len(c.d.machines) {
		return fmt.Errorf("reset %s: mark count %d out of range", m.ManagerName, n)
	}
	marked := make(map[*Machine]bool, n)
	for i := 0; i < n; i++ {
		if mm := c.Machine(r.Int()); mm != nil {
			marked[mm] = true
		}
	}
	if err := r.Close("reset " + m.ManagerName); err != nil {
		return err
	}
	m.marked = marked
	return nil
}
