package osm

import "fmt"

// State is a vertex of an operation state machine. Its outgoing edges
// are ordered by static priority: Out[0] is the highest-priority edge,
// matching the paper's rule that when more than one outgoing edge is
// simultaneously satisfied, execution proceeds along the edge with the
// highest priority.
type State struct {
	// Name identifies the state in traces and analyses.
	Name string
	// Out lists the outgoing edges in decreasing static priority.
	Out []*Edge

	// comp caches the state's lowered form in the most recently
	// installed guard program (compiled.go); stateOf validates the
	// owning program before trusting it.
	comp *compState
	// gen likewise caches the state's resolution in the most recently
	// installed generated-edge program (generated.go).
	gen *genState
}

// NewState returns a named state with no outgoing edges.
func NewState(name string) *State { return &State{Name: name} }

// Edge is a possible transition between two states, guarded by a
// condition that is the conjunction of its primitives. Disjunction is
// deliberately absent from the Λ language; it is realized through
// parallel edges between two states.
type Edge struct {
	// Name identifies the edge in traces (e.g. "e1" or "D->E").
	Name string
	// From and To are the source and destination states.
	From, To *State
	// When, if non-nil, is an additional model-level predicate
	// evaluated before any token transaction. It lets a model route
	// operation classes along different edges (a multiply taking the
	// multiplier path, say) without inventing an artificial manager.
	When func(m *Machine) bool
	// Prims is the guard condition: every primitive must succeed
	// simultaneously for the edge to be satisfied.
	Prims []Primitive
	// Action, if non-nil, runs after the transactions commit and
	// before the machine's state is updated. This is where operation
	// semantics execute: reading granted operand values, computing
	// results, attaching results to tokens about to be released.
	Action func(m *Machine)

	// Wake-set cache owned by the event-driven scheduler
	// (director_event.go): the registered managers a commit of this
	// edge mutates, valid for one director and scheduler epoch.
	wakeDir   *Director
	wakeEpoch uint64
	wakeMgrs  []int
	wakeAll   bool
}

// Connect appends an edge from s to to with the given guard primitives
// and returns it for further decoration (When, Action). Priority is
// the append order: earlier edges rank higher.
func (s *State) Connect(name string, to *State, prims ...Primitive) *Edge {
	e := &Edge{Name: name, From: s, To: to, Prims: prims}
	s.Out = append(s.Out, e)
	return e
}

// Machine is one operation state machine: the life of one machine
// operation flowing through the processor. A fixed population of
// Machines is created at model build time (enough to cover the maximum
// number of in-flight operations); each returns to its initial state
// when its operation completes and then represents the next operation.
type Machine struct {
	// Name identifies the machine in traces ("op0", "op1", ...).
	Name string
	// Initial is the state in which the token buffer is empty and no
	// operation is bound to the machine.
	Initial *State
	// Tag carries a model-defined grouping such as the thread ID of a
	// multi-threaded model. Managers may consult it when arbitrating.
	Tag int
	// Ctx holds the model's per-operation payload, typically the
	// decoded instruction and its operand values. Identifier
	// functions read it to resolve token identifiers.
	Ctx any
	// Age is the sequence number assigned when the machine last left
	// its initial state. The default director ranking schedules
	// machines in increasing Age, i.e. seniors first.
	Age uint64

	cur    *State
	tokens []Token
	// moves counts committed transitions since construction or the
	// last Reset; the invariant checker's livelock detector watches it
	// for progress.
	moves uint64
	// blocked records the primitives that failed during the most
	// recent scheduling pass, for deadlock analysis and diagnostics.
	blocked []*Primitive
	// pend is scratch space for edge evaluation, reused across
	// attempts to keep the director allocation-free in steady state.
	pend []pendingTxn
	// sched is scheduling state owned by the event-driven director
	// (director_event.go). A machine is scheduled by one director.
	sched machineSched
	// dynID/dynStamp memoize identifier-function results for the
	// current operation binding, indexed by the primitive's slot
	// (assignPrimSlots). A stamp equal to dynEpoch marks a live entry;
	// bumping dynEpoch on every transition invalidates the whole memo
	// in O(1) instead of clearing it.
	dynID    []TokenID
	dynStamp []uint64
	dynEpoch uint64
}

// primID resolves the identifier a primitive presents for m. Results
// of identifier functions are memoized from their first resolution
// until the machine's next transition: identifiers are initialized
// when an operation binds to the machine (the paper's decode-time
// identifier assignment), so they may depend on the operation context
// but not on state that changes while the machine is blocked.
//
// The memo is a dense array indexed by the primitive's slot, assigned
// once per state graph by the director. A machine whose memo tables
// were never sized (it is driven without a director, as in unit
// tests) resolves the identifier function directly, which is
// semantically identical.
func (m *Machine) primID(p *Primitive) TokenID {
	if p.ID == nil {
		return p.FixedID
	}
	s := int(p.slot) - 1
	if s < 0 || s >= len(m.dynID) {
		return p.ID(m)
	}
	if m.dynStamp[s] == m.dynEpoch {
		return m.dynID[s]
	}
	id := p.ID(m)
	m.dynID[s] = id
	m.dynStamp[s] = m.dynEpoch
	return id
}

// sizeDynMemo (re)sizes the identifier memo to cover slots [1, n] and
// invalidates any previous entries. The director calls it whenever
// slots may have been (re)assigned.
func (m *Machine) sizeDynMemo(n int) {
	if len(m.dynID) < n {
		m.dynID = make([]TokenID, n)
		m.dynStamp = make([]uint64, n)
	}
	if m.dynEpoch == 0 {
		m.dynEpoch = 1
	}
	m.dynEpoch++
}

// NewMachine returns a machine resting in the given initial state.
func NewMachine(name string, initial *State) *Machine {
	return &Machine{Name: name, Initial: initial, cur: initial}
}

// State returns the machine's current state.
func (m *Machine) State() *State { return m.cur }

// InInitial reports whether the machine is unused (resting in its
// initial state with an empty token buffer).
func (m *Machine) InInitial() bool { return m.cur == m.Initial }

// Tokens returns the machine's token buffer. The returned slice is the
// live buffer; callers must not modify it.
func (m *Machine) Tokens() []Token { return m.tokens }

// Holds reports whether the machine holds a token from mgr with the
// given identifier.
func (m *Machine) Holds(mgr TokenManager, id TokenID) bool {
	return m.findToken(mgr, id) >= 0
}

// HeldToken returns the machine's token from mgr with the given
// identifier. The second result reports whether such a token is held.
func (m *Machine) HeldToken(mgr TokenManager, id TokenID) (Token, bool) {
	if i := m.findToken(mgr, id); i >= 0 {
		return m.tokens[i], true
	}
	return Token{}, false
}

// SetData attaches a payload to the held token from mgr with the given
// identifier, typically a computed result that the manager will read
// when the token is released (the paper's "release the register-update
// token to m_r with the updated computation result").
func (m *Machine) SetData(mgr TokenManager, id TokenID, data uint64) error {
	if i := m.findToken(mgr, id); i >= 0 {
		m.tokens[i].Data = data
		return nil
	}
	return fmt.Errorf("osm: machine %s holds no token %s:%d", m.Name, mgr.Name(), id)
}

func (m *Machine) findToken(mgr TokenManager, id TokenID) int {
	for i, t := range m.tokens {
		if t.Mgr == mgr && (t.ID == id || id == AnyUnit) {
			return i
		}
	}
	return -1
}

func (m *Machine) addToken(t Token) { m.tokens = append(m.tokens, t) }

func (m *Machine) removeToken(mgr TokenManager, id TokenID) (Token, bool) {
	if i := m.findToken(mgr, id); i >= 0 {
		t := m.tokens[i]
		m.tokens = append(m.tokens[:i], m.tokens[i+1:]...)
		return t, true
	}
	return Token{}, false
}

// pendingTxn records one tentatively successful primitive so the whole
// condition can be committed or cancelled atomically. It points into
// the edge's primitive slice, which is stable for the model's life.
type pendingTxn struct {
	prim *Primitive
	tok  Token
}

// tryEdge evaluates the edge's guard condition for m. If the condition
// is satisfied it commits every transaction, runs the edge action and
// moves the machine to the destination state, reporting true. If any
// conjunct fails it cancels the tentative transactions, records the
// failing primitive for diagnostics, and reports false.
func (m *Machine) tryEdge(e *Edge) (bool, error) {
	if e.When != nil && !e.When(m) {
		return false, nil
	}
	pend := m.pend[:0]
	cancel := func() {
		for i := len(pend) - 1; i >= 0; i-- {
			p := pend[i]
			switch p.prim.Op {
			case OpAllocate:
				p.prim.Mgr.CancelAllocate(m, p.tok)
			case OpRelease:
				p.prim.Mgr.CancelRelease(m, p.tok)
			}
		}
		m.pend = pend[:0]
	}
	for pi := range e.Prims {
		p := &e.Prims[pi]
		switch p.Op {
		case OpAllocate:
			tok, ok := p.Mgr.Allocate(m, m.primID(p))
			if !ok {
				cancel()
				m.blocked = append(m.blocked, p)
				return false, nil
			}
			pend = append(pend, pendingTxn{prim: p, tok: tok})
		case OpInquire:
			if !p.Mgr.Inquire(m, m.primID(p)) {
				cancel()
				m.blocked = append(m.blocked, p)
				return false, nil
			}
			pend = append(pend, pendingTxn{prim: p})
		case OpRelease:
			id := m.primID(p)
			tok, held := m.HeldToken(p.Mgr, id)
			if !held {
				cancel()
				return false, fmt.Errorf("osm: machine %s: edge %s releases token %s:%d it does not hold",
					m.Name, e.Name, p.Mgr.Name(), id)
			}
			if !p.Mgr.Release(m, tok) {
				cancel()
				m.blocked = append(m.blocked, p)
				return false, nil
			}
			pend = append(pend, pendingTxn{prim: p, tok: tok})
		case OpDiscard:
			// Discard always succeeds; it takes effect at commit.
			pend = append(pend, pendingTxn{prim: p})
		default:
			cancel()
			return false, fmt.Errorf("osm: machine %s: edge %s has invalid primitive op %d", m.Name, e.Name, p.Op)
		}
	}
	// All conjuncts succeeded: commit simultaneously.
	for _, p := range pend {
		switch p.prim.Op {
		case OpAllocate:
			m.addToken(p.tok)
			p.prim.Mgr.CommitAllocate(m, p.tok)
		case OpRelease:
			// The operation may have attached a payload to the held
			// token after the tentative grant was recorded; re-read
			// the buffered token so the manager sees the final Data.
			tok, _ := m.removeToken(p.prim.Mgr, p.tok.ID)
			p.prim.Mgr.CommitRelease(m, tok)
		case OpDiscard:
			m.commitDiscard(p.prim)
		}
	}
	m.pend = pend[:0]
	m.dynEpoch++ // next state is a fresh identifier-resolution epoch
	if e.Action != nil {
		e.Action(m)
	}
	m.cur = e.To
	m.moves++
	if m.cur == m.Initial && len(m.tokens) > 0 {
		return true, fmt.Errorf("osm: machine %s returned to initial state %s holding %d token(s); first: %s",
			m.Name, m.Initial.Name, len(m.tokens), m.tokens[0])
	}
	return true, nil
}

func (m *Machine) commitDiscard(p *Primitive) {
	if p.FixedID == AllTokens && p.ID == nil {
		for _, t := range m.tokens {
			if p.Mgr == nil || t.Mgr == p.Mgr {
				t.Mgr.Discarded(m, t)
			}
		}
		if p.Mgr == nil {
			m.tokens = m.tokens[:0]
			return
		}
		kept := m.tokens[:0]
		for _, t := range m.tokens {
			if t.Mgr != p.Mgr {
				kept = append(kept, t)
			}
		}
		m.tokens = kept
		return
	}
	if tok, ok := m.removeToken(p.Mgr, m.primID(p)); ok {
		p.Mgr.Discarded(m, tok)
	}
}

// Reset forcibly returns the machine to its initial state, notifying
// managers of every discarded token. It is intended for model-level
// resets between simulation runs, not for in-model squashing (use a
// reset edge with Discard primitives for that, as in Section 4 of the
// paper).
func (m *Machine) Reset() {
	for _, t := range m.tokens {
		t.Mgr.Discarded(m, t)
	}
	m.tokens = m.tokens[:0]
	m.cur = m.Initial
	m.Ctx = nil
	m.Age = 0
	m.moves = 0
	m.blocked = nil
	m.dynEpoch++
}

// Transitions returns the number of edges the machine has committed
// since construction or its last Reset.
func (m *Machine) Transitions() uint64 { return m.moves }

// ProbeEdge reports whether e's guard condition is currently
// satisfiable for m without committing anything: every primitive is
// issued as a tentative request and then cancelled in reverse order,
// relying on the TokenManager contract that cancel restores the
// pre-request state exactly. The When predicate is consulted as in
// normal evaluation; the Action never runs. Releasing a token the
// machine does not hold probes false rather than erroring.
//
// The invariant checker uses the probe to ask "would the Figure 3
// scan have fired this edge?" for machines the event-driven scheduler
// left asleep.
func (m *Machine) ProbeEdge(e *Edge) bool {
	if e.When != nil && !e.When(m) {
		return false
	}
	pend := m.pend[:0]
	cancel := func() {
		for i := len(pend) - 1; i >= 0; i-- {
			p := pend[i]
			switch p.prim.Op {
			case OpAllocate:
				p.prim.Mgr.CancelAllocate(m, p.tok)
			case OpRelease:
				p.prim.Mgr.CancelRelease(m, p.tok)
			}
		}
		m.pend = pend[:0]
	}
	for pi := range e.Prims {
		p := &e.Prims[pi]
		switch p.Op {
		case OpAllocate:
			tok, ok := p.Mgr.Allocate(m, m.primID(p))
			if !ok {
				cancel()
				return false
			}
			pend = append(pend, pendingTxn{prim: p, tok: tok})
		case OpInquire:
			if !p.Mgr.Inquire(m, m.primID(p)) {
				cancel()
				return false
			}
		case OpRelease:
			tok, held := m.HeldToken(p.Mgr, m.primID(p))
			if !held || !p.Mgr.Release(m, tok) {
				cancel()
				return false
			}
			pend = append(pend, pendingTxn{prim: p, tok: tok})
		case OpDiscard:
			// Discard always succeeds; nothing to request.
		default:
			cancel()
			return false
		}
	}
	cancel()
	return true
}

// Blocked returns the primitives that failed for this machine during
// the most recent director step in which it did not transition. The
// result is only meaningful immediately after Director.Step.
func (m *Machine) Blocked() []*Primitive { return m.blocked }
