package osm

// BypassManager models forwarding (bypassing) logic as its own token
// manager, following the paper's Section 4: "If the processor supports
// bypassing, we can create another manager working as the bypassing
// logic. OSMs can inquire either m_r or the bypassing manager for
// source operand availability."
//
// Producers publish a computed register value with a lifetime in
// control steps; consumers inquire about the register's value token
// and, on success, read the forwarded value in their edge action. An
// edge typically carries the bypass inquiry on a higher-priority
// parallel edge than the plain register-file inquiry, realizing the
// disjunction "operand from bypass OR from register file".
type BypassManager struct {
	BaseManager
	entries map[int]bypassEntry
	step    uint64
}

type bypassEntry struct {
	val   uint64
	until uint64 // last step (inclusive) the value is visible
}

// NewBypassManager returns an empty forwarding network.
func NewBypassManager(name string) *BypassManager {
	return &BypassManager{
		BaseManager: BaseManager{ManagerName: name},
		entries:     make(map[int]bypassEntry),
	}
}

// BeginStep advances the manager's notion of time and expires stale
// values (Stepper).
func (b *BypassManager) BeginStep(cycle uint64) {
	b.step = cycle
	for reg, e := range b.entries {
		if e.until < cycle {
			delete(b.entries, reg)
		}
	}
}

// Publish makes the value of register reg visible on the forwarding
// network for the remainder of the current control step plus life-1
// further steps. A producer's execute-stage action publishes with
// life 1 so that a consumer issuing in the next cycle can pick the
// value up, exactly like an EX→EX forwarding path.
func (b *BypassManager) Publish(reg int, val uint64, life uint64) {
	if life == 0 {
		life = 1
	}
	b.entries[reg] = bypassEntry{val: val, until: b.step + life}
	b.Wake()
}

// SleepSafeManager reports that machines blocked on the manager may be
// suspended (SleepSafe): inquiries only turn true through Publish,
// which wakes; expiry at BeginStep can only turn them false.
func (b *BypassManager) SleepSafeManager() bool { return true }

// Read returns the forwarded value of register reg. The second result
// reports whether a live value is present.
func (b *BypassManager) Read(reg int) (uint64, bool) {
	e, ok := b.entries[reg]
	if !ok || e.until < b.step {
		return 0, false
	}
	return e.val, true
}

// Allocate always fails: forwarding paths grant no exclusive tokens.
func (b *BypassManager) Allocate(m *Machine, id TokenID) (Token, bool) {
	return Token{}, false
}

// Inquire reports whether a live forwarded value for the register is
// present.
func (b *BypassManager) Inquire(m *Machine, id TokenID) bool {
	_, ok := b.Read(int(id))
	return ok
}

// Release always fails: no tokens are ever granted.
func (b *BypassManager) Release(m *Machine, t Token) bool { return false }

// OutstandingGrants is empty: forwarding paths never grant tokens
// (GrantAuditor).
func (b *BypassManager) OutstandingGrants(yield func(Grant)) {}
