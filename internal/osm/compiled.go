package osm

import (
	"fmt"
	"strings"
)

// This file implements the compiled execution engine (EngineCompiled):
// a compile stage that lowers a model's state graphs into flat,
// cache-friendly guard programs, and an executor that runs them under
// the event-driven scheduler without interface dispatch on the hot
// path.
//
// The interpreted evaluator (Machine.tryEdge) walks each edge's
// []Primitive and issues every transaction through the TokenManager
// interface: an itab load and indirect call per primitive per attempt,
// plus an identifier-function call for dynamic identifiers. Lowering
// runs once per model and moves all of that resolution to compile
// time:
//
//   - every primitive becomes one guardInstr carrying its operation,
//     its pre-resolved fixed identifier or memo slot, and a
//     concrete-type manager pointer when the manager is one of the
//     built-ins (pool, queue, regfile, unit, reset, bypass);
//   - the executor dispatches on a dense kind tag and calls the
//     concrete methods directly, so the calls are statically bound
//     (and the built-ins' no-op commit/cancel methods disappear
//     entirely instead of costing an interface call);
//   - managers of model-defined types keep the interface path, so
//     custom managers — including types embedding a built-in, which a
//     dynamic type switch deliberately does not match — behave
//     exactly as interpreted.
//
// Compiled state is derived: it is rebuilt from the model on demand
// (AddMachine/AddManager invalidate it) and is never serialized, so
// snapshots taken under any engine restore under any other.

// mgrKind classifies a lowered primitive's manager for devirtualized
// dispatch. kindGeneric keeps the TokenManager interface path.
type mgrKind uint8

const (
	kindGeneric mgrKind = iota
	kindPool
	kindQueue
	kindRegFile
	kindUnit
	kindReset
	kindBypass
	// kindChecked marks a custom manager that implements
	// CheckableManager: dispatch stays on the interface, but the edge
	// may still take the check-then-commit fast path.
	kindChecked
)

func (k mgrKind) String() string {
	switch k {
	case kindPool:
		return "pool"
	case kindQueue:
		return "queue"
	case kindRegFile:
		return "regfile"
	case kindUnit:
		return "unit"
	case kindReset:
		return "reset"
	case kindBypass:
		return "bypass"
	case kindChecked:
		return "checked"
	}
	return "generic"
}

// guardInstr is one lowered guard conjunct. Exactly one of the
// concrete manager pointers is set for built-in kinds; mgr always
// holds the interface value (nil only for manager-less discards).
type guardInstr struct {
	op   Op
	kind mgrKind
	dyn  bool  // identifier comes from an IDFunc via the memo slot
	slot int32 // memo slot (1-based; 0 = unmemoized fallback)

	fixed TokenID
	prim  *Primitive // original conjunct: blocked lists, IDFunc, discard

	mgr   TokenManager
	chk   CheckableManager // non-nil exactly when kind == kindChecked
	pool  *PoolManager
	queue *QueueManager
	rf    *RegFileManager
	unit  *UnitManager
	reset *ResetManager
	byp   *BypassManager
}

// compEdge is one lowered edge: the original edge (for When, Action,
// destination and tracing) plus its flat instruction array. Every
// instruction appends exactly one pending transaction, so commit and
// cancel walk code and pend in lockstep by index.
//
// pure marks edges the executor may run check-then-commit (see
// tryEdgePure): the compile stage proved from the built-in managers'
// semantics that the guard can be decided by pure availability reads,
// with the transactions applied only once the whole conjunction is
// known to hold — no tentative grants, no pending-transaction
// bookkeeping, no cancellation. This is sound because every manager a
// pure edge touches reverses cancelled tentative grants exactly
// (CancelAllocate leaves the manager bit-identical, sequence counters
// included), so skipping the grant-then-cancel dance leaves the same
// state the interpreter would.
type compEdge struct {
	e    *Edge
	code []guardInstr
	pure bool
	// scratch is per-attempt working space indexed like code (token-
	// buffer positions found by the pure check pass, consumed by the
	// commit pass). Directors step single-threaded and each director
	// compiles its own program, so one scratch per lowered edge
	// suffices.
	scratch []int32
}

// compState is one lowered state: its outgoing edges in priority
// order.
type compState struct {
	prog  *GuardProgram
	s     *State
	edges []compEdge
}

// CompileStats summarizes a compiled guard program.
type CompileStats struct {
	// States, Edges and Instrs count the lowered model elements.
	States, Edges, Instrs int
	// Devirtualized counts instructions bound to a concrete built-in
	// manager type; Generic counts instructions that keep interface
	// dispatch (custom managers and manager-less discards); Checked
	// counts interface-dispatched instructions whose manager
	// implements CheckableManager and so still qualifies for the
	// check-then-commit fast path.
	Devirtualized, Generic, Checked int
	// Dynamic counts instructions whose identifier is computed by an
	// IDFunc through a memo slot.
	Dynamic int
	// Pure counts edges eligible for the check-then-commit fast path
	// (guards decided by pure availability reads, transactions applied
	// only on success).
	Pure int
}

// GuardProgram is a model lowered to flat guard instruction arrays,
// executed by the compiled engine (EngineCompiled). Build one with
// Director.Compile; it stays valid until machines or managers are
// added. A program is derived state: it is excluded from snapshots
// and rebuilt on demand instead.
type GuardProgram struct {
	dir     *Director
	states  []*compState
	byState map[*State]*compState
	stats   CompileStats
}

// Compile lowers every state graph reachable from the registered
// machines' initial states into a guard program, building it on first
// use and returning the cached program afterwards. Setting Engine to
// EngineCompiled compiles implicitly on the first Step; calling
// Compile directly surfaces lowering errors early and exposes the
// program for inspection.
func (d *Director) Compile() (*GuardProgram, error) {
	if d.comp != nil {
		return d.comp, nil
	}
	d.ensurePrims()
	g := &GuardProgram{dir: d, byState: make(map[*State]*compState)}
	for _, m := range d.machines {
		if m.Initial == nil {
			return nil, fmt.Errorf("osm: compile: machine %s has no initial state", m.Name)
		}
		if err := g.addGraph(m.Initial); err != nil {
			return nil, err
		}
	}
	g.stats.States = len(g.states)
	for _, cs := range g.states {
		cs.s.comp = cs // fast state→program lookup for the executor
	}
	d.comp = g
	return g, nil
}

// addGraph lowers the graph reachable from initial, skipping states
// another machine's walk already covered.
func (g *GuardProgram) addGraph(initial *State) error {
	var walk func(s *State) error
	walk = func(s *State) error {
		if _, done := g.byState[s]; done {
			return nil
		}
		cs := &compState{prog: g, s: s}
		g.byState[s] = cs
		g.states = append(g.states, cs)
		for _, e := range s.Out {
			ce, err := g.lowerEdge(s, e)
			if err != nil {
				return err
			}
			cs.edges = append(cs.edges, ce)
			g.stats.Edges++
		}
		for _, e := range s.Out {
			if err := walk(e.To); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(initial)
}

// lowerEdge translates an edge's primitive conjunction into a guard
// instruction array, validating what the interpreter would only trip
// over at runtime (invalid operations, transactions without a
// manager), and classifies the edge for the check-then-commit fast
// path.
func (g *GuardProgram) lowerEdge(st *State, e *Edge) (compEdge, error) {
	code := make([]guardInstr, 0, len(e.Prims))
	for pi := range e.Prims {
		p := &e.Prims[pi]
		ins := guardInstr{
			op:    p.Op,
			dyn:   p.ID != nil,
			slot:  p.slot,
			fixed: p.FixedID,
			prim:  p,
			mgr:   p.Mgr,
		}
		switch p.Op {
		case OpAllocate, OpInquire, OpRelease:
			if p.Mgr == nil {
				return compEdge{}, fmt.Errorf("osm: compile: state %s, edge %s: %s primitive has no manager",
					st.Name, e.Name, p.Op)
			}
		case OpDiscard:
			// A nil manager is legal here: with AllTokens it empties
			// the whole buffer, otherwise it discards nothing.
		default:
			return compEdge{}, fmt.Errorf("osm: compile: state %s, edge %s: invalid primitive op %d",
				st.Name, e.Name, int(p.Op))
		}
		// The type switch matches the dynamic type exactly: a model
		// type embedding a built-in manager (overriding some methods)
		// stays kindGeneric and keeps interface dispatch, which is
		// required for correctness.
		switch mm := p.Mgr.(type) {
		case *UnitManager:
			ins.kind, ins.unit = kindUnit, mm
		case *QueueManager:
			ins.kind, ins.queue = kindQueue, mm
		case *PoolManager:
			ins.kind, ins.pool = kindPool, mm
		case *RegFileManager:
			ins.kind, ins.rf = kindRegFile, mm
		case *ResetManager:
			ins.kind, ins.reset = kindReset, mm
		case *BypassManager:
			ins.kind, ins.byp = kindBypass, mm
		default:
			if c, ok := p.Mgr.(CheckableManager); ok && p.Op != OpDiscard {
				ins.kind, ins.chk = kindChecked, c
			} else {
				ins.kind = kindGeneric
			}
		}
		switch ins.kind {
		case kindGeneric:
			g.stats.Generic++
		case kindChecked:
			g.stats.Checked++
		default:
			g.stats.Devirtualized++
		}
		if ins.dyn {
			g.stats.Dynamic++
		}
		g.stats.Instrs++
		code = append(code, ins)
	}
	ce := compEdge{e: e, code: code}
	ce.pure = pureEdge(code)
	if ce.pure {
		ce.scratch = make([]int32, len(code))
		g.stats.Pure++
	}
	return ce, nil
}

// pureEdge decides whether an edge qualifies for the check-then-commit
// fast path. The pure path evaluates every conjunct with a mutation-
// free availability read before applying any transaction, whereas the
// interpreter's tentative grants are visible to the later conjuncts of
// the same edge. The two are equivalent exactly when:
//
//   - every Allocate and Release targets a manager whose request
//     outcome the compile stage can predict without transacting: a
//     built-in, or a custom manager implementing CheckableManager.
//     Inquire needs no prediction — the interpreter itself issues it
//     as a plain question with nothing to cancel, so any manager
//     qualifies (managers must judge availability from their own and
//     committed state; see CheckableManager);
//   - no conjunct reads a manager that an earlier Allocate or Release
//     of the same edge has tentatively mutated (an earlier Inquire is
//     harmless — it mutates nothing in a built-in);
//   - discards come last: a committed discard frees tokens, and under
//     the interpreter no request observes that, so no pure check or
//     applied transaction may run after one either.
//
// Model-installed gate closures are a runtime concern: the pure path
// re-checks for them on every attempt and falls back to the
// transactional path, so installing a gate after compilation stays
// correct.
func pureEdge(code []guardInstr) bool {
	sawDiscard := false
	for i := range code {
		ins := &code[i]
		if ins.op == OpDiscard {
			sawDiscard = true
			continue
		}
		if sawDiscard || (ins.kind == kindGeneric && ins.op != OpInquire) {
			return false
		}
		for k := 0; k < i; k++ {
			prev := &code[k]
			if prev.op == OpDiscard || prev.mgr != ins.mgr {
				continue
			}
			if prev.op == OpAllocate || prev.op == OpRelease {
				return false
			}
		}
	}
	return true
}

// stateOf returns the lowered form of s, or nil when s is not part of
// the program (the graph was mutated after compilation; the caller
// falls back to the interpreter).
func (g *GuardProgram) stateOf(s *State) *compState {
	if cs := s.comp; cs != nil && cs.prog == g {
		return cs
	}
	if cs, ok := g.byState[s]; ok {
		s.comp = cs // re-stamp after another program overwrote it
		return cs
	}
	return nil
}

// Stats returns the program's lowering statistics.
func (g *GuardProgram) Stats() CompileStats { return g.stats }

// Disassemble renders the program as text, one instruction per line,
// for debugging and tests.
func (g *GuardProgram) Disassemble() string {
	var b strings.Builder
	for _, cs := range g.states {
		fmt.Fprintf(&b, "state %s:\n", cs.s.Name)
		for i := range cs.edges {
			ce := &cs.edges[i]
			mode := ""
			if ce.pure {
				mode = " (pure)"
			}
			fmt.Fprintf(&b, "  edge %s -> %s:%s\n", ce.e.Name, ce.e.To.Name, mode)
			for j := range ce.code {
				ins := &ce.code[j]
				name := "<all>"
				if ins.mgr != nil {
					name = ins.mgr.Name()
				}
				id := fmt.Sprintf("%d", ins.fixed)
				if ins.dyn {
					id = fmt.Sprintf("dyn(slot %d)", ins.slot)
				}
				fmt.Fprintf(&b, "    %2d: %-8s %-10s id=%-12s %s\n",
					j, ins.op, name, id, ins.kind)
			}
		}
	}
	return b.String()
}

// Probe evaluates e's guard for m through the compiled program without
// committing anything, mirroring Machine.ProbeEdge on the compiled
// path. It errors when e is not part of the program.
func (g *GuardProgram) Probe(m *Machine, e *Edge) (bool, error) {
	cs := g.stateOf(e.From)
	if cs == nil {
		return false, fmt.Errorf("osm: compiled probe: state %s is not in the program", e.From.Name)
	}
	for i := range cs.edges {
		if cs.edges[i].e == e {
			return m.probeCompiled(&cs.edges[i]), nil
		}
	}
	return false, fmt.Errorf("osm: compiled probe: edge %s is not in the program", e.Name)
}

// instrID resolves the identifier a lowered instruction presents for
// m: the pre-resolved fixed identifier, or the memoized result of the
// identifier function (same memo discipline as Machine.primID).
func (m *Machine) instrID(ins *guardInstr) TokenID {
	if !ins.dyn {
		return ins.fixed
	}
	return m.instrDynID(ins)
}

// instrDynID is instrID's slow path: evaluate the identifier function
// through the memo slot. Split out so instrID's fixed-identifier path
// inlines into the executor loop.
func (m *Machine) instrDynID(ins *guardInstr) TokenID {
	s := int(ins.slot) - 1
	if s >= 0 && s < len(m.dynID) {
		if m.dynStamp[s] == m.dynEpoch {
			return m.dynID[s]
		}
		id := ins.prim.ID(m)
		m.dynID[s] = id
		m.dynStamp[s] = m.dynEpoch
		return id
	}
	return ins.prim.ID(m)
}

// allocate issues the instruction's Allocate through the statically
// bound fast path when the manager is a built-in.
func (ins *guardInstr) allocate(m *Machine, id TokenID) (Token, bool) {
	switch ins.kind {
	case kindUnit:
		return ins.unit.Allocate(m, id)
	case kindQueue:
		return ins.queue.Allocate(m, id)
	case kindPool:
		return ins.pool.Allocate(m, id)
	case kindRegFile:
		return ins.rf.Allocate(m, id)
	case kindReset:
		return ins.reset.Allocate(m, id)
	case kindBypass:
		return ins.byp.Allocate(m, id)
	}
	return ins.mgr.Allocate(m, id)
}

// inquire issues the instruction's Inquire (see allocate).
func (ins *guardInstr) inquire(m *Machine, id TokenID) bool {
	switch ins.kind {
	case kindUnit:
		return ins.unit.Inquire(m, id)
	case kindQueue:
		return ins.queue.Inquire(m, id)
	case kindPool:
		return ins.pool.Inquire(m, id)
	case kindRegFile:
		return ins.rf.Inquire(m, id)
	case kindReset:
		return ins.reset.Inquire(m, id)
	case kindBypass:
		return ins.byp.Inquire(m, id)
	}
	return ins.mgr.Inquire(m, id)
}

// release issues the instruction's Release (see allocate).
func (ins *guardInstr) release(m *Machine, tok Token) bool {
	switch ins.kind {
	case kindUnit:
		return ins.unit.Release(m, tok)
	case kindQueue:
		return ins.queue.Release(m, tok)
	case kindPool:
		return ins.pool.Release(m, tok)
	case kindRegFile:
		return ins.rf.Release(m, tok)
	case kindReset:
		return ins.reset.Release(m, tok)
	case kindBypass:
		return ins.byp.Release(m, tok)
	}
	return ins.mgr.Release(m, tok)
}

// cancelAllocate reverses a tentative grant. Built-in cancel methods
// are statically bound; the ones a built-in inherits unchanged from
// BaseManager inline to nothing.
func (ins *guardInstr) cancelAllocate(m *Machine, tok Token) {
	switch ins.kind {
	case kindUnit:
		ins.unit.CancelAllocate(m, tok)
	case kindQueue:
		ins.queue.CancelAllocate(m, tok)
	case kindPool:
		ins.pool.CancelAllocate(m, tok)
	case kindRegFile:
		ins.rf.CancelAllocate(m, tok)
	case kindReset, kindBypass:
		// Allocate never succeeds for these, so there is nothing to
		// cancel; both inherit BaseManager's no-op anyway.
	default:
		ins.mgr.CancelAllocate(m, tok)
	}
}

// cancelRelease reverses a tentative release (see cancelAllocate).
func (ins *guardInstr) cancelRelease(m *Machine, tok Token) {
	switch ins.kind {
	case kindUnit:
		ins.unit.CancelRelease(m, tok)
	case kindQueue:
		ins.queue.CancelRelease(m, tok)
	case kindPool:
		ins.pool.CancelRelease(m, tok)
	case kindRegFile, kindReset, kindBypass:
		// BaseManager no-ops.
	default:
		ins.mgr.CancelRelease(m, tok)
	}
}

// commitAllocate finalizes a grant. No built-in manager overrides
// CommitAllocate, so the fast paths vanish entirely.
func (ins *guardInstr) commitAllocate(m *Machine, tok Token) {
	switch ins.kind {
	case kindUnit, kindQueue, kindPool, kindRegFile, kindReset, kindBypass:
		// BaseManager no-ops.
	default:
		ins.mgr.CommitAllocate(m, tok)
	}
}

// commitRelease finalizes a release. Among the built-ins only the
// register file acts on commit (retiring the update and writing the
// token's Data payload).
func (ins *guardInstr) commitRelease(m *Machine, tok Token) {
	switch ins.kind {
	case kindRegFile:
		ins.rf.CommitRelease(m, tok)
	case kindUnit, kindQueue, kindPool, kindReset, kindBypass:
		// BaseManager no-ops.
	default:
		ins.mgr.CommitRelease(m, tok)
	}
}

// cancelCompiled reverses the tentative transactions in pend, whose
// entries correspond index-for-index to the instruction prefix that
// issued them, and resets the machine's scratch space.
func (m *Machine) cancelCompiled(code []guardInstr, pend []pendingTxn) {
	for i := len(pend) - 1; i >= 0; i-- {
		ins := &code[i]
		switch ins.op {
		case OpAllocate:
			ins.cancelAllocate(m, pend[i].tok)
		case OpRelease:
			ins.cancelRelease(m, pend[i].tok)
		}
	}
	m.pend = pend[:0]
}

// tryEdgeCompiled is the compiled counterpart of Machine.tryEdge. The
// observable semantics — transaction order, failure attribution, error
// cases, resulting manager state — are identical to the interpreter's;
// the differential suites hold the two to trace-checksum identity.
func (m *Machine) tryEdgeCompiled(ce *compEdge) (bool, error) {
	if ce.pure {
		return m.tryEdgePure(ce)
	}
	return m.tryEdgeTxn(ce)
}

// unitCanAllocate mirrors UnitManager.pick for a gate-free manager
// without mutating anything.
func unitCanAllocate(u *UnitManager, id TokenID) bool {
	if id == AnyUnit {
		for _, o := range u.owner {
			if o == nil {
				return true
			}
		}
		return false
	}
	return id >= 0 && int(id) < len(u.owner) && u.owner[id] == nil
}

// rfCanAllocate mirrors RegFileManager.Allocate's admission test
// without taking the rename slot.
func rfCanAllocate(r *RegFileManager, id TokenID) bool {
	reg, update, ok := r.split(id)
	return ok && update && r.pending[reg] < r.depth()
}

// tryEdgePure runs a pure-classified edge check-then-commit: a first
// pass decides every conjunct with mutation-free availability reads,
// and only when the whole conjunction holds does a second pass apply
// the transactions — which at that point cannot fail. Failures cost a
// few loads and one blocked-list append; successes skip the
// pending-transaction bookkeeping entirely. This is where compilation
// actually beats interpretation: the interpreter cannot know a
// manager's semantics, so it must transact tentatively and cancel,
// while the compile stage proved (pureEdge) that checking first is
// equivalent. Gate closures make a manager's availability opaque
// again, so their presence routes the attempt to the transactional
// path.
func (m *Machine) tryEdgePure(ce *compEdge) (bool, error) {
	e := ce.e
	if e.When != nil && !e.When(m) {
		return false, nil
	}
	code := ce.code
	for i := range code {
		ins := &code[i]
		id := ins.fixed
		if ins.dyn {
			id = m.instrDynID(ins)
		}
		ok := false
		switch ins.op {
		case OpAllocate:
			switch ins.kind {
			case kindUnit:
				u := ins.unit
				if u.AllocGate != nil {
					return m.tryEdgeTxn(ce)
				}
				ok = unitCanAllocate(u, id)
			case kindQueue:
				q := ins.queue
				ok = q.n < q.capacity
			case kindPool:
				p := ins.pool
				if p.AllocGate != nil {
					return m.tryEdgeTxn(ce)
				}
				ok = p.free > 0
			case kindRegFile:
				ok = rfCanAllocate(ins.rf, id)
			case kindChecked:
				ok = ins.chk.CanAllocate(m, id)
			}
			// Reset and bypass managers never grant; ok stays false.
		case OpInquire:
			switch ins.kind {
			case kindUnit:
				ok = ins.unit.Inquire(m, id)
			case kindQueue:
				ok = ins.queue.Inquire(m, id)
			case kindPool:
				ok = ins.pool.free > 0
			case kindRegFile:
				ok = ins.rf.Inquire(m, id)
			case kindReset:
				ok = ins.reset.Inquire(m, id)
			case kindBypass:
				ok = ins.byp.Inquire(m, id)
			default:
				// Checked and generic managers answer through the
				// interface, exactly as the interpreter asks them.
				ok = ins.mgr.Inquire(m, id)
			}
		case OpRelease:
			idx := m.findToken(ins.mgr, id)
			if idx < 0 {
				return false, fmt.Errorf("osm: machine %s: edge %s releases token %s:%d it does not hold",
					m.Name, e.Name, ins.mgr.Name(), id)
			}
			ce.scratch[i] = int32(idx)
			tok := m.tokens[idx]
			switch ins.kind {
			case kindUnit:
				u := ins.unit
				if u.ReleaseGate != nil {
					return m.tryEdgeTxn(ce)
				}
				ok = u.busyUntil[tok.ID] <= u.step
			case kindQueue:
				q := ins.queue
				if q.ReleaseGate != nil {
					return m.tryEdgeTxn(ce)
				}
				ok = q.n > 0 && q.ring[q.head].id == tok.ID
			case kindPool, kindRegFile:
				ok = true
			case kindChecked:
				ok = ins.chk.CanRelease(m, tok)
			}
			// Reset and bypass never grant, so a held token cannot
			// name them; ok stays false.
		case OpDiscard:
			// Always succeeds; applied in the commit pass.
			ok = true
		}
		if !ok {
			m.blocked = append(m.blocked, ins.prim)
			return false, nil
		}
	}
	// Every conjunct holds: apply the transactions in instruction
	// order, exactly the states the interpreter's commit would leave.
	// Releases reuse the token-buffer positions the check pass found
	// (commit-pass appends only grow the buffer, and the same-manager
	// rule keeps the positions valid; earlier removals are compensated
	// below), so the interpreter's second token scan disappears.
	for i := range code {
		ins := &code[i]
		switch ins.op {
		case OpAllocate:
			id := ins.fixed
			if ins.dyn {
				id = m.instrDynID(ins)
			}
			var tok Token
			switch ins.kind {
			case kindUnit:
				tok, _ = ins.unit.Allocate(m, id)
			case kindQueue:
				tok, _ = ins.queue.Allocate(m, id)
			case kindPool:
				tok, _ = ins.pool.Allocate(m, id)
			case kindRegFile:
				tok, _ = ins.rf.Allocate(m, id)
			case kindChecked:
				var ok bool
				if tok, ok = ins.chk.Allocate(m, id); !ok {
					return false, fmt.Errorf("osm: machine %s: edge %s: manager %s granted CanAllocate(%d) but refused Allocate (CheckableManager contract violation)",
						m.Name, e.Name, ins.mgr.Name(), id)
				}
			}
			m.addToken(tok)
			if ins.kind == kindChecked {
				ins.chk.CommitAllocate(m, tok)
			}
			// CommitAllocate is a no-op for every built-in manager.
		case OpRelease:
			idx := int(ce.scratch[i])
			tok := m.tokens[idx]
			m.tokens = append(m.tokens[:idx], m.tokens[idx+1:]...)
			for j := i + 1; j < len(code); j++ {
				if code[j].op == OpRelease && ce.scratch[j] > int32(idx) {
					ce.scratch[j]--
				}
			}
			switch ins.kind {
			case kindUnit:
				ins.unit.Release(m, tok)
			case kindQueue:
				ins.queue.Release(m, tok)
			case kindPool:
				ins.pool.Release(m, tok)
			case kindRegFile:
				// Release always accepts; the register write happens
				// at commit, with the token's final Data payload.
				ins.rf.CommitRelease(m, tok)
			case kindChecked:
				if !ins.chk.Release(m, tok) {
					return false, fmt.Errorf("osm: machine %s: edge %s: manager %s granted CanRelease but refused Release (CheckableManager contract violation)",
						m.Name, e.Name, ins.mgr.Name())
				}
				ins.chk.CommitRelease(m, tok)
			}
		case OpDiscard:
			m.commitDiscard(ins.prim)
		}
	}
	m.dynEpoch++ // next state is a fresh identifier-resolution epoch
	if e.Action != nil {
		e.Action(m)
	}
	m.cur = e.To
	m.moves++
	if m.cur == m.Initial && len(m.tokens) > 0 {
		return true, fmt.Errorf("osm: machine %s returned to initial state %s holding %d token(s); first: %s",
			m.Name, m.Initial.Name, len(m.tokens), m.tokens[0])
	}
	return true, nil
}

// tryEdgeTxn is the transactional compiled path, used for edges the
// compile stage could not prove pure (custom managers, conjunctions
// whose tentative effects are visible to later conjuncts) and as the
// runtime fallback when a gate closure is installed. It mirrors
// Machine.tryEdge operation for operation.
func (m *Machine) tryEdgeTxn(ce *compEdge) (bool, error) {
	e := ce.e
	if e.When != nil && !e.When(m) {
		return false, nil
	}
	code := ce.code
	pend := m.pend[:0]
	for i := range code {
		ins := &code[i]
		// Identifier resolution and manager dispatch are inlined here
		// rather than routed through the guardInstr helper methods: on
		// the request loop — the hottest code in a compiled run — even
		// one statically bound call per conjunct is measurable, and
		// inlining lets fixed identifiers and built-in managers run
		// with no calls beyond the manager method itself.
		id := ins.fixed
		if ins.dyn {
			id = m.instrDynID(ins)
		}
		switch ins.op {
		case OpAllocate:
			var tok Token
			var ok bool
			switch ins.kind {
			case kindUnit:
				tok, ok = ins.unit.Allocate(m, id)
			case kindQueue:
				tok, ok = ins.queue.Allocate(m, id)
			case kindPool:
				tok, ok = ins.pool.Allocate(m, id)
			case kindRegFile:
				tok, ok = ins.rf.Allocate(m, id)
			case kindGeneric:
				tok, ok = ins.mgr.Allocate(m, id)
			default:
				tok, ok = ins.allocate(m, id) // reset, bypass
			}
			if !ok {
				m.cancelCompiled(code, pend)
				m.blocked = append(m.blocked, ins.prim)
				return false, nil
			}
			pend = append(pend, pendingTxn{prim: ins.prim, tok: tok})
		case OpInquire:
			var ok bool
			switch ins.kind {
			case kindUnit:
				ok = ins.unit.Inquire(m, id)
			case kindQueue:
				ok = ins.queue.Inquire(m, id)
			case kindPool:
				ok = ins.pool.Inquire(m, id)
			case kindRegFile:
				ok = ins.rf.Inquire(m, id)
			case kindGeneric:
				ok = ins.mgr.Inquire(m, id)
			default:
				ok = ins.inquire(m, id) // reset, bypass
			}
			if !ok {
				m.cancelCompiled(code, pend)
				m.blocked = append(m.blocked, ins.prim)
				return false, nil
			}
			pend = append(pend, pendingTxn{prim: ins.prim})
		case OpRelease:
			tok, held := m.HeldToken(ins.mgr, id)
			if !held {
				m.cancelCompiled(code, pend)
				return false, fmt.Errorf("osm: machine %s: edge %s releases token %s:%d it does not hold",
					m.Name, e.Name, ins.mgr.Name(), id)
			}
			var ok bool
			switch ins.kind {
			case kindUnit:
				ok = ins.unit.Release(m, tok)
			case kindQueue:
				ok = ins.queue.Release(m, tok)
			case kindPool:
				ok = ins.pool.Release(m, tok)
			case kindRegFile:
				ok = ins.rf.Release(m, tok)
			case kindGeneric:
				ok = ins.mgr.Release(m, tok)
			default:
				ok = ins.release(m, tok) // reset, bypass
			}
			if !ok {
				m.cancelCompiled(code, pend)
				m.blocked = append(m.blocked, ins.prim)
				return false, nil
			}
			pend = append(pend, pendingTxn{prim: ins.prim, tok: tok})
		case OpDiscard:
			// Discard always succeeds; it takes effect at commit.
			pend = append(pend, pendingTxn{prim: ins.prim})
		}
	}
	// All conjuncts succeeded: commit simultaneously, in instruction
	// order like the interpreter.
	for i := range code {
		ins := &code[i]
		switch ins.op {
		case OpAllocate:
			m.addToken(pend[i].tok)
			ins.commitAllocate(m, pend[i].tok)
		case OpRelease:
			// Re-read the buffered token: the operation may have
			// attached a payload after the tentative grant.
			tok, _ := m.removeToken(ins.mgr, pend[i].tok.ID)
			ins.commitRelease(m, tok)
		case OpDiscard:
			m.commitDiscard(ins.prim)
		}
	}
	m.pend = pend[:0]
	m.dynEpoch++ // next state is a fresh identifier-resolution epoch
	if e.Action != nil {
		e.Action(m)
	}
	m.cur = e.To
	m.moves++
	if m.cur == m.Initial && len(m.tokens) > 0 {
		return true, fmt.Errorf("osm: machine %s returned to initial state %s holding %d token(s); first: %s",
			m.Name, m.Initial.Name, len(m.tokens), m.tokens[0])
	}
	return true, nil
}

// probeCompiled is the compiled counterpart of Machine.ProbeEdge:
// every primitive is issued tentatively and then cancelled, so the
// machine and managers are left exactly as found. Releasing a token
// the machine does not hold probes false rather than erroring.
func (m *Machine) probeCompiled(ce *compEdge) bool {
	e := ce.e
	if e.When != nil && !e.When(m) {
		return false
	}
	code := ce.code
	pend := m.pend[:0]
	for i := range code {
		ins := &code[i]
		switch ins.op {
		case OpAllocate:
			tok, ok := ins.allocate(m, m.instrID(ins))
			if !ok {
				m.cancelCompiled(code, pend)
				return false
			}
			pend = append(pend, pendingTxn{prim: ins.prim, tok: tok})
		case OpInquire:
			if !ins.inquire(m, m.instrID(ins)) {
				m.cancelCompiled(code, pend)
				return false
			}
			pend = append(pend, pendingTxn{prim: ins.prim})
		case OpRelease:
			tok, held := m.HeldToken(ins.mgr, m.instrID(ins))
			if !held || !ins.release(m, tok) {
				m.cancelCompiled(code, pend)
				return false
			}
			pend = append(pend, pendingTxn{prim: ins.prim, tok: tok})
		case OpDiscard:
			// Nothing to request.
			pend = append(pend, pendingTxn{prim: ins.prim})
		}
	}
	m.cancelCompiled(code, pend)
	return true
}

// serveCompiled is serveMachine's compiled fast path: it evaluates the
// machine's lowered outgoing edges in priority order and commits the
// first satisfied one, maintaining ages and the tracer exactly like
// the interpreted path.
func (d *Director) serveCompiled(m *Machine, cs *compState, wasInitial bool) (bool, *Edge, error) {
	for i := range cs.edges {
		ce := &cs.edges[i]
		before := len(m.blocked)
		ok, err := m.tryEdgeCompiled(ce)
		if err != nil {
			return false, nil, fmt.Errorf("osm: step %d: %w", d.step, err)
		}
		if !ok {
			if len(m.blocked) == before {
				m.sched.untracked = true
			}
			continue
		}
		if wasInitial && !m.InInitial() {
			d.nextAge++
			m.Age = d.nextAge
		}
		if d.Tracer != nil {
			d.Tracer.Transition(d.step, m, ce.e)
		}
		return true, ce.e, nil
	}
	return false, nil, nil
}
