// Package compile is the public surface of the guard-program compile
// stage: it lowers an assembled OSM model — built in Go (the
// StrongARM and PPC-750 case studies) or elaborated from an ADL
// description — into flat guard programs the director's compiled
// engine executes without interface dispatch or per-try allocation.
//
// The lowering itself lives next to the executor in package osm
// (it reads manager internals the fast paths are specialized
// against); this package packages it for tooling: compile-and-attach
// helpers, the ADL front end, and the stats/disassembly surface the
// CLI and tests report. DESIGN.md §12 describes the IR and the
// check-then-commit equivalence argument.
package compile

import (
	"repro/internal/adl"
	"repro/internal/osm"
)

// Program is a compiled guard program (re-exported from osm, where
// the executor lives).
type Program = osm.GuardProgram

// Stats summarizes one lowering (re-exported from osm).
type Stats = osm.CompileStats

// Compile lowers the director's current model into a guard program.
// The result is cached on the director and invalidated by model
// edits; compiling does not change the director's engine.
func Compile(d *osm.Director) (*Program, error) { return d.Compile() }

// Attach lowers the director's model and switches it to the compiled
// engine, so the next Step executes guard programs. Lowering errors
// surface here instead of on the first step.
func Attach(d *osm.Director) (*Program, error) {
	g, err := d.Compile()
	if err != nil {
		return nil, err
	}
	d.Engine = osm.EngineCompiled
	return g, nil
}

// Build parses and elaborates an ADL description, then compiles it:
// the whole retargeting path — description in, executable guard
// programs out. Any description that elaborates also compiles; the
// compile stage can only reject guards elaboration would already have
// refused (FuzzCompile enforces this).
func Build(src string, bindings map[string]adl.Binding) (*adl.Model, *Program, error) {
	model, err := adl.Build(src, bindings)
	if err != nil {
		return nil, nil, err
	}
	g, err := model.Director.Compile()
	if err != nil {
		return nil, nil, err
	}
	return model, g, nil
}
