package compile

import (
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/osm"
)

// pipelineSrc is a small three-stage pipeline description exercising
// every manager kind the library elaborates.
const pipelineSrc = `model pipe {
  managers { unit f(1); unit x(1); queue cq(4); regfile rf(8); reset R; }
  states { idle*, fetch, exec, done }
  edges {
    e0: idle -> fetch [ alloc f.* ];
    e1: fetch -> exec [ release f.*, alloc x.*, inquire rf.$src ];
    e2: exec -> done [ release x.*, alloc cq.* ];
    e3: done -> idle [ release cq.* ];
    r0: exec -> idle reset;
  }
  machines 4;
}`

func pipelineBindings() map[string]adl.Binding {
	return map[string]adl.Binding{
		"src": func(*osm.Machine) osm.TokenID { return 2 },
	}
}

// TestBuildCompilesPipeline drives the whole retargeting path:
// description in, guard programs out, then runs the model under the
// compiled engine.
func TestBuildCompilesPipeline(t *testing.T) {
	model, g, err := Build(pipelineSrc, pipelineBindings())
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.States != 4 || st.Edges == 0 || st.Instrs == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	// The only generic instruction is the reset edge's discard-all,
	// which names no manager; every library manager devirtualizes.
	if st.Generic != 1 {
		t.Fatalf("library managers must all devirtualize, got %+v", st)
	}
	dis := g.Disassemble()
	for _, frag := range []string{"state idle:", "edge e0 -> fetch:", "allocate"} {
		if !strings.Contains(dis, frag) {
			t.Errorf("disassembly is missing %q:\n%s", frag, dis)
		}
	}
	if _, err := Attach(model.Director); err != nil {
		t.Fatal(err)
	}
	if model.Director.Engine != osm.EngineCompiled {
		t.Fatal("Attach did not select the compiled engine")
	}
	for i := 0; i < 20; i++ {
		if err := model.Director.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompileDoesNotChangeEngine pins the Compile/Attach split.
func TestCompileDoesNotChangeEngine(t *testing.T) {
	model, err := adl.Build(pipelineSrc, pipelineBindings())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(model.Director); err != nil {
		t.Fatal(err)
	}
	if model.Director.Engine != osm.EngineEvent {
		t.Fatalf("Compile changed the engine to %v", model.Director.Engine)
	}
}

// TestAttachSurfacesCompileErrors checks that a model the lowering
// rejects fails at Attach, not on the first step.
func TestAttachSurfacesCompileErrors(t *testing.T) {
	i, s := osm.NewState("I"), osm.NewState("S")
	i.Connect("bad", s, osm.Primitive{Op: osm.OpAllocate, Mgr: nil})
	d := osm.NewDirector()
	d.AddMachine(osm.NewMachine("m", i))
	if _, err := Attach(d); err == nil || !strings.Contains(err.Error(), "no manager") {
		t.Fatalf("Attach() = %v; want a no-manager error", err)
	}
	if d.Engine == osm.EngineCompiled {
		t.Fatal("Attach selected the compiled engine despite the compile error")
	}
}

// FuzzCompile fuzzes the compile stage behind the untrusted ADL
// front end with two properties. First, totality: any description
// that elaborates also compiles — the compile stage may only reject
// guards elaboration would already have refused. Second, probe
// agreement: on every state a short compiled-engine run reaches, the
// compiled probe and the interpreted Machine.ProbeEdge return the
// same verdict for every machine and outgoing edge.
func FuzzCompile(f *testing.F) {
	f.Add(pipelineSrc)
	f.Add("model m { states { a* } machines 1; }")
	f.Add(`model m {
  managers { unit u(1); pool p(2); queue q(4); regfile rf(8); bypass by; reset R; }
  states { a*, b, c }
  edges {
    e0: a -> b [ alloc u.*, inquire rf.$src, alloc rf.!$dst ];
    e1: b -> c [ release u.*, alloc q.0, discard * ];
    e2: c -> a [ release rf.!$dst ];
    r0: b -> a reset;
  }
  machines 4;
}`)
	f.Add("model m { managers { pool p(1); } states { a*, b } edges { e: a -> b [ alloc p.*, alloc p.* ]; } machines 2; }")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 16<<10 {
			return // bound fuzz cost, not a parser limit
		}
		spec, err := adl.Parse(src)
		if err != nil {
			return
		}
		bindings := map[string]adl.Binding{}
		for _, e := range spec.Edges {
			for _, p := range e.Prims {
				if p.Form == adl.IDBound {
					bindings[p.Binding] = func(*osm.Machine) osm.TokenID { return 0 }
				}
			}
		}
		model, err := adl.Elaborate(spec, bindings)
		if err != nil {
			return
		}
		d := model.Director
		if len(d.Machines()) > 64 {
			return // bound fuzz cost
		}
		g, err := d.Compile()
		if err != nil {
			t.Fatalf("model elaborates but does not compile: %v\nsource: %q", err, src)
		}
		d.Engine = osm.EngineCompiled
		for i := 0; i < 8; i++ {
			for _, m := range d.Machines() {
				for _, e := range m.State().Out {
					want := m.ProbeEdge(e)
					got, err := g.Probe(m, e)
					if err != nil {
						t.Fatalf("step %d: Probe(%s, %s): %v\nsource: %q", i, m.Name, e.Name, err, src)
					}
					if got != want {
						t.Fatalf("step %d: machine %s edge %s: compiled probe %v, interpreted %v\nsource: %q",
							i, m.Name, e.Name, got, want, src)
					}
				}
			}
			if err := d.Step(); err != nil {
				// A model-level runtime error (an unreleasable token,
				// an exhausted manager) ends the run; it is the same
				// error under every engine.
				return
			}
		}
	})
}
