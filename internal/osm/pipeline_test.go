package osm

import "testing"

// This file exercises the complete §4 modeling scheme of the paper on
// a generic 5-stage pipeline (the paper's Figures 5 and 6): operation
// flow, structure hazards, data hazards, variable latency and control
// hazards, all expressed as state transitions and token transactions.

// pinstr is the toy operation format flowing through the test pipeline.
type pinstr struct {
	op   string // "add", "nop", "br"
	dst  int
	src1 int
	imm  uint64
	v1   uint64 // operand value latched at D->E
}

// pipe5 is a generic in-order 5-stage pipeline model.
type pipe5 struct {
	d                  *Director
	mf, md, me, mb, mw *UnitManager
	rf                 *RegFileManager
	reset              *ResetManager
	prog               []pinstr
	pc                 int
	done               int // operations retired
}

func newPipe5(nops int, prog []pinstr) *pipe5 {
	p := &pipe5{
		mf:    NewUnitManager("IF", 1),
		md:    NewUnitManager("ID", 1),
		me:    NewUnitManager("EX", 1),
		mb:    NewUnitManager("BF", 1),
		mw:    NewUnitManager("WB", 1),
		rf:    NewRegFileManager("RF", 8),
		reset: NewResetManager("RESET"),
		prog:  prog,
	}
	i := NewState("I")
	f := NewState("F")
	d := NewState("D")
	e := NewState("E")
	b := NewState("B")
	w := NewState("W")

	fetch := i.Connect("e0", f, Alloc(p.mf, 0))
	fetch.When = func(m *Machine) bool { return p.pc < len(p.prog) }
	fetch.Action = func(m *Machine) {
		ins := p.prog[p.pc]
		p.pc++
		m.Ctx = &ins
	}

	dst := func(m *Machine) TokenID { return UpdateToken(m.Ctx.(*pinstr).dst) }
	src := func(m *Machine) TokenID { return TokenID(m.Ctx.(*pinstr).src1) }

	f.Connect("e1", d, Release(p.mf, 0), Alloc(p.md, 0))

	toE := d.Connect("e2", e,
		Release(p.md, 0), Alloc(p.me, 0),
		InquireF(p.rf, src), AllocF(p.rf, dst))
	toE.Action = func(m *Machine) {
		ins := m.Ctx.(*pinstr)
		ins.v1 = p.rf.Read(ins.src1)
	}

	toB := e.Connect("e3", b, Release(p.me, 0), Alloc(p.mb, 0))
	toB.Action = func(m *Machine) {
		ins := m.Ctx.(*pinstr)
		if err := m.SetData(p.rf, UpdateToken(ins.dst), ins.v1+ins.imm); err != nil {
			panic(err)
		}
	}

	b.Connect("e4", w, Release(p.mb, 0), Alloc(p.mw, 0))

	retire := w.Connect("e5", i, Release(p.mw, 0), ReleaseF(p.rf, dst))
	retire.Action = func(m *Machine) { p.done++ }

	// Reset edges for control-hazard squashing on the two
	// speculative states.
	ResetEdge(f, i, p.reset)
	ResetEdge(d, i, p.reset)

	p.d = NewDirector()
	p.d.CheckDeadlock = true
	p.d.AddManager(p.mf, p.md, p.me, p.mb, p.mw, p.rf, p.reset)
	for k := 0; k < nops; k++ {
		p.d.AddMachine(NewMachine("op"+string(rune('0'+k)), i))
	}
	return p
}

func (p *pipe5) run(t *testing.T, maxSteps int) int {
	t.Helper()
	for s := 0; s < maxSteps; s++ {
		if err := p.d.Step(); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		if p.done >= len(p.prog) {
			return s + 1
		}
	}
	t.Fatalf("program did not finish in %d steps (done=%d/%d)", maxSteps, p.done, len(p.prog))
	return 0
}

func TestPipelineSingleOperationLatency(t *testing.T) {
	p := newPipe5(1, []pinstr{{op: "add", dst: 1, src1: 0, imm: 7}})
	steps := p.run(t, 20)
	if steps != 6 {
		t.Fatalf("single-op latency = %d steps, want 6 (I->F->D->E->B->W->I)", steps)
	}
	if got := p.rf.Read(1); got != 7 {
		t.Fatalf("r1 = %d, want 7", got)
	}
}

func TestPipelineThroughputOneOpPerCycle(t *testing.T) {
	// Independent operations should stream: N ops retire in 5+N
	// steps, proving structure hazards resolve with same-step
	// handoff and no artificial bubbles.
	var prog []pinstr
	for k := 0; k < 8; k++ {
		prog = append(prog, pinstr{op: "add", dst: k % 4, src1: 4 + k%4, imm: uint64(k)})
	}
	p := newPipe5(8, prog)
	steps := p.run(t, 50)
	if steps != 5+len(prog) {
		t.Fatalf("throughput: %d ops in %d steps, want %d", len(prog), steps, 5+len(prog))
	}
}

func TestPipelineStructureHazard(t *testing.T) {
	// With only 2 machines available the fetch stage can still
	// saturate; the structural limit is the stage occupancy token.
	// Two machines on an 8-op program must interleave correctly and
	// the program still completes (slower).
	var prog []pinstr
	for k := 0; k < 8; k++ {
		prog = append(prog, pinstr{op: "add", dst: 1, src1: 0, imm: 1})
	}
	// dst=src chains force full serialization: each op reads r0 and
	// writes r1, so only the r1-update token serializes... use
	// distinct regs to isolate the structural effect.
	for k := range prog {
		prog[k].dst = 1 + k%2
		prog[k].src1 = 0
	}
	p := newPipe5(2, prog)
	steps := p.run(t, 100)
	// With 2 machines, at most 2 operations are in flight; each pair
	// takes ~6 cycles with overlap. Just assert completion and that
	// it is slower than the fully machined case.
	if steps <= 13 {
		t.Fatalf("2-machine run finished in %d steps; expected structural slowdown", steps)
	}
}

func TestPipelineDataHazardStalls(t *testing.T) {
	// op1 writes r1; op2 reads r1. op2 must stall in D until op1's
	// update token retires at W.
	prog := []pinstr{
		{op: "add", dst: 1, src1: 0, imm: 5},
		{op: "add", dst: 2, src1: 1, imm: 3},
	}
	p := newPipe5(2, prog)
	steps := p.run(t, 30)
	if got := p.rf.Read(2); got != 8 {
		t.Fatalf("r2 = %d, want 8 (dependent value)", got)
	}
	// Independent pair would finish in 7; the dependence must cost
	// extra cycles (op2 waits in D until op1 retires in step 6, then
	// E,B,W,I in 7,8,9).
	if steps != 9 {
		t.Fatalf("dependent pair took %d steps, want 9", steps)
	}
}

func TestPipelineVariableLatency(t *testing.T) {
	// An instruction-cache miss: the fetch manager turns down the
	// token release until the access finishes, so the operation
	// stalls in F (the paper's variable-latency example).
	prog := []pinstr{{op: "add", dst: 1, src1: 0, imm: 1}}
	p := newPipe5(1, prog)
	if err := p.d.Step(); err != nil { // enters F
		t.Fatal(err)
	}
	p.mf.SetBusy(0, 3) // miss penalty: 3 more cycles in F
	steps := p.run(t, 30)
	if steps+1 != 6+3 {
		t.Fatalf("latency with 3-cycle miss = %d total steps, want 9", steps+1)
	}
}

func TestPipelineControlHazard(t *testing.T) {
	// Let two speculative operations enter F and D, then squash them
	// via the reset manager; they must discard their tokens and the
	// stages must be free next step.
	prog := []pinstr{
		{op: "add", dst: 1, src1: 0, imm: 1},
		{op: "add", dst: 2, src1: 0, imm: 2},
		{op: "add", dst: 3, src1: 0, imm: 3},
	}
	p := newPipe5(3, prog)
	p.d.Step() // op0 -> F
	p.d.Step() // op0 -> D, op1 -> F
	var spec []*Machine
	for _, m := range p.d.Machines() {
		if !m.InInitial() {
			spec = append(spec, m)
			p.reset.Mark(m)
		}
	}
	if len(spec) != 2 {
		t.Fatalf("expected 2 speculative ops in flight, got %d", len(spec))
	}
	pcBefore := p.pc
	if err := p.d.Step(); err != nil {
		t.Fatal(err)
	}
	for _, m := range spec {
		if !m.InInitial() || len(m.Tokens()) != 0 {
			t.Fatalf("machine %s not squashed cleanly", m.Name)
		}
	}
	if p.reset.MarkedCount() != 0 {
		t.Fatal("reset marks must clear as the reset edges fire")
	}
	// The squash step also refetches: the highest-priority reset
	// edges fire first, freeing IF, and an idle machine may allocate
	// it in the same step. Either way the stages must not be leaked.
	if p.mf.Free()+p.md.Free() < 1 {
		t.Fatal("squashed stage tokens were not reclaimed")
	}
	_ = pcBefore
}

func TestPipelineResetEdgeOutranksNormalFlow(t *testing.T) {
	// A squashed operation in D whose D->E condition is also
	// satisfied must take the reset edge (higher static priority).
	prog := []pinstr{{op: "add", dst: 1, src1: 0, imm: 1}}
	p := newPipe5(1, prog)
	p.d.Step() // F
	p.d.Step() // D
	m := p.d.Machines()[0]
	if m.State().Name != "D" {
		t.Fatalf("setup: machine in %s, want D", m.State().Name)
	}
	p.reset.Mark(m)
	p.d.Step()
	if !m.InInitial() {
		t.Fatal("marked machine must take the reset edge, not advance to E")
	}
	if p.rf.Pending(1) != 0 {
		t.Fatal("squashed op must not leave a pending register update")
	}
}

func TestPipelineModelValidates(t *testing.T) {
	p := newPipe5(1, nil)
	init := p.d.Machines()[0].Initial
	if issues := Validate(init, 16); len(issues) != 0 {
		t.Fatalf("pipeline model should validate cleanly, got %v", issues)
	}
}

func TestPipelineMultithreadTags(t *testing.T) {
	// Section 6: thread-tagged machines; a manager that partitions
	// its units by tag keeps the threads from interfering.
	i, f := NewState("I"), NewState("F")
	u := NewUnitManager("ctx", 2)
	u.AllocGate = func(m *Machine, unit TokenID) bool { return int(unit) == m.Tag }
	i.Connect("go", f, Alloc(u, AnyUnit))
	f.Connect("back", i, ReleaseF(u, func(m *Machine) TokenID { return AnyUnit }))

	d := NewDirector()
	d.AddManager(u)
	t0 := NewMachine("t0", i)
	t0.Tag = 0
	t1 := NewMachine("t1", i)
	t1.Tag = 1
	t0b := NewMachine("t0b", i)
	t0b.Tag = 0
	d.AddMachine(t0, t1, t0b)
	if err := d.Step(); err != nil {
		t.Fatal(err)
	}
	if u.Holder(0) != t0 || u.Holder(1) != t1 {
		t.Fatalf("per-thread units misallocated: %v %v", u.Holder(0), u.Holder(1))
	}
	if !t0b.InInitial() {
		t.Fatal("second thread-0 machine must be blocked by its thread's unit")
	}
}
