package osm

import (
	"fmt"
	"strings"
	"testing"
)

// genPipeline builds the saturated 5-stage ring of bench_test.go with
// unique state names (the generated engine resolves edges by
// state/edge name) and hand-written generated edge functions written
// exactly the way internal/osm/gen emits them: gate check, When,
// mutation-free availability pass, commit pass through the Gen
// helpers. tries, when non-nil, counts Try invocations so tests can
// assert the generated path actually ran.
func genPipeline(tries *int) (*Director, map[string]GenEdge) {
	stages := make([]*UnitManager, 5)
	states := make([]*State, 6)
	states[0] = NewState("I")
	for k := 0; k < 5; k++ {
		stages[k] = NewUnitManager(fmt.Sprintf("s%d", k), 1)
		states[k+1] = NewState(fmt.Sprintf("S%d", k+1))
	}
	states[0].Connect("in", states[1], Alloc(stages[0], 0))
	for k := 1; k < 5; k++ {
		states[k].Connect("adv", states[k+1], Release(stages[k-1], 0), Alloc(stages[k], 0))
	}
	states[5].Connect("out", states[0], Release(stages[4], 0))
	d := NewDirector()
	d.NoRestart = true
	for _, s := range stages {
		d.AddManager(s)
	}
	for k := 0; k < 6; k++ {
		d.AddMachine(NewMachine(fmt.Sprintf("m%d", k), states[0]))
	}

	count := func() {
		if tries != nil {
			*tries++
		}
	}
	fns := map[string]GenEdge{
		GenKey("I", "in"): {
			Try: func(m *Machine, e *Edge) (bool, error) {
				count()
				if stages[0].AllocGate != nil {
					return m.GenFallback(e)
				}
				if !stages[0].CanAllocate(0) {
					return m.GenBlock(e, 0), nil
				}
				tk0, _ := stages[0].Allocate(m, 0)
				m.GenAdd(tk0)
				return true, m.GenFinish(e)
			},
			Probe: func(m *Machine, e *Edge) bool {
				if stages[0].AllocGate != nil {
					return m.ProbeEdge(e)
				}
				return stages[0].CanAllocate(0)
			},
		},
		GenKey("S5", "out"): {
			Try: func(m *Machine, e *Edge) (bool, error) {
				count()
				if stages[4].ReleaseGate != nil {
					return m.GenFallback(e)
				}
				t0 := m.GenFindHeld(stages[4], 0)
				if t0 < 0 {
					return false, m.GenErrNotHeld(e, stages[4], 0)
				}
				if !stages[4].CanRelease(m.GenTokenAt(t0).ID) {
					return m.GenBlock(e, 0), nil
				}
				rt0 := m.GenRemoveAt(t0)
				stages[4].Release(m, rt0)
				return true, m.GenFinish(e)
			},
			Probe: func(m *Machine, e *Edge) bool {
				if stages[4].ReleaseGate != nil {
					return m.ProbeEdge(e)
				}
				t0 := m.GenFindHeld(stages[4], 0)
				return t0 >= 0 && stages[4].CanRelease(m.GenTokenAt(t0).ID)
			},
		},
	}
	for k := 1; k < 5; k++ {
		rel, alc := stages[k-1], stages[k]
		fns[GenKey(fmt.Sprintf("S%d", k), "adv")] = GenEdge{
			Try: func(m *Machine, e *Edge) (bool, error) {
				count()
				if rel.ReleaseGate != nil || alc.AllocGate != nil {
					return m.GenFallback(e)
				}
				t0 := m.GenFindHeld(rel, 0)
				if t0 < 0 {
					return false, m.GenErrNotHeld(e, rel, 0)
				}
				if !rel.CanRelease(m.GenTokenAt(t0).ID) {
					return m.GenBlock(e, 0), nil
				}
				if !alc.CanAllocate(0) {
					return m.GenBlock(e, 1), nil
				}
				rt0 := m.GenRemoveAt(t0)
				rel.Release(m, rt0)
				tk1, _ := alc.Allocate(m, 0)
				m.GenAdd(tk1)
				return true, m.GenFinish(e)
			},
			Probe: func(m *Machine, e *Edge) bool {
				if rel.ReleaseGate != nil || alc.AllocGate != nil {
					return m.ProbeEdge(e)
				}
				t0 := m.GenFindHeld(rel, 0)
				return t0 >= 0 && rel.CanRelease(m.GenTokenAt(t0).ID) && alc.CanAllocate(0)
			},
		}
	}
	return d, fns
}

// traceLog records every committed transition as "step/machine/edge"
// lines, a total order the engines must agree on exactly.
func traceLog(d *Director) *strings.Builder {
	var b strings.Builder
	d.Tracer = TracerFunc(func(step uint64, m *Machine, e *Edge) {
		fmt.Fprintf(&b, "%d/%s/%s\n", step, m.Name, e.Name)
	})
	return &b
}

// TestGeneratedEngineMatchesEvent holds the generated engine to
// trace identity with the event engine on the saturated ring, and
// asserts the generated functions actually executed (rather than the
// model silently running interpreted).
func TestGeneratedEngineMatchesEvent(t *testing.T) {
	ref, _ := genPipeline(nil)
	ref.Engine = EngineEvent
	want := traceLog(ref)
	for i := 0; i < 200; i++ {
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}

	tries := 0
	d, fns := genPipeline(&tries)
	d.Engine = EngineGenerated
	if err := d.AttachGenerated(fns); err != nil {
		t.Fatal(err)
	}
	got := traceLog(d)
	for i := 0; i < 200; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if tries == 0 {
		t.Fatal("generated Try functions never ran")
	}
	if got.String() != want.String() {
		t.Fatalf("transition traces diverge:\ngenerated:\n%s\nevent:\n%s", got, want)
	}
}

// TestGeneratedProbeAgreement cross-checks GenProgram.Probe against
// the interpreted Machine.ProbeEdge at every step of a generated-
// engine run.
func TestGeneratedProbeAgreement(t *testing.T) {
	d, fns := genPipeline(nil)
	d.Engine = EngineGenerated
	if err := d.AttachGenerated(fns); err != nil {
		t.Fatal(err)
	}
	g, err := d.Generated()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
		for _, m := range d.Machines() {
			for _, e := range m.State().Out {
				want := m.ProbeEdge(e)
				got, err := g.Probe(m, e)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("step %d: machine %s edge %s: generated probe %v, interpreted %v",
						i, m.Name, e.Name, got, want)
				}
			}
		}
	}
}

// TestGeneratedEngineSurvivesModelGrowth adds a machine after the
// program resolved: AddMachine invalidates the resolution, which must
// rebuild from the attached map on the next step.
func TestGeneratedEngineSurvivesModelGrowth(t *testing.T) {
	d, fns := genPipeline(nil)
	d.Engine = EngineGenerated
	if err := d.AttachGenerated(fns); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	d.AddMachine(NewMachine("late", d.Machines()[0].Initial))
	for i := 0; i < 10; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAttachGeneratedErrors exercises the resolution failure modes:
// no attachment, a missing key, a half-set entry, and two distinct
// edges sharing a key.
func TestAttachGeneratedErrors(t *testing.T) {
	t.Run("none", func(t *testing.T) {
		d, _ := genPipeline(nil)
		d.Engine = EngineGenerated
		if err := d.Step(); err == nil || !strings.Contains(err.Error(), "no edge functions attached") {
			t.Fatalf("err = %v, want no-edge-functions error", err)
		}
	})
	t.Run("missing", func(t *testing.T) {
		d, fns := genPipeline(nil)
		delete(fns, GenKey("S5", "out"))
		err := d.AttachGenerated(fns)
		if err == nil || !strings.Contains(err.Error(), `no generated function for key "S5/out"`) {
			t.Fatalf("err = %v, want missing-key error", err)
		}
	})
	t.Run("halfSet", func(t *testing.T) {
		d, fns := genPipeline(nil)
		e := fns[GenKey("I", "in")]
		e.Probe = nil
		fns[GenKey("I", "in")] = e
		err := d.AttachGenerated(fns)
		if err == nil || !strings.Contains(err.Error(), "Try and Probe must both be set") {
			t.Fatalf("err = %v, want half-set error", err)
		}
	})
	t.Run("ambiguous", func(t *testing.T) {
		// Two distinct states named "S", each with an edge named "x":
		// the state/edge key cannot identify the edge.
		u := NewUnitManager("u", 2)
		i := NewState("I")
		a, b := NewState("S"), NewState("S")
		i.Connect("toA", a, Alloc(u, 0))
		i.Connect("toB", b, Alloc(u, 1))
		a.Connect("x", i, Release(u, 0))
		b.Connect("x", i, Release(u, 1))
		d := NewDirector()
		d.AddManager(u)
		d.AddMachine(NewMachine("m", i))
		pass := func(m *Machine, e *Edge) (bool, error) { return m.GenFallback(e) }
		probe := func(m *Machine, e *Edge) bool { return m.ProbeEdge(e) }
		fns := map[string]GenEdge{}
		for _, k := range []string{"I/toA", "I/toB", "S/x"} {
			fns[k] = GenEdge{Try: pass, Probe: probe}
		}
		err := d.AttachGenerated(fns)
		if err == nil || !strings.Contains(err.Error(), "ambiguous") {
			t.Fatalf("err = %v, want ambiguity error", err)
		}
	})
}

// TestGeneratedFallbackOnGate installs an alloc gate mid-run: the
// generated function must detect it and delegate to the interpreter,
// preserving semantics (the gate refuses every allocation, so the
// ring wedges exactly as under the event engine).
func TestGeneratedFallbackOnGate(t *testing.T) {
	run := func(engine Engine) string {
		d, fns := genPipeline(nil)
		d.Engine = engine
		if engine == EngineGenerated {
			if err := d.AttachGenerated(fns); err != nil {
				t.Fatal(err)
			}
		}
		var gated *UnitManager
		for _, st := range d.Machines()[0].Initial.Out {
			gated = st.Prims[0].Mgr.(*UnitManager)
		}
		log := traceLog(d)
		for i := 0; i < 30; i++ {
			if i == 10 {
				gated.AllocGate = func(m *Machine, unit TokenID) bool { return false }
			}
			if err := d.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return log.String()
	}
	if got, want := run(EngineGenerated), run(EngineEvent); got != want {
		t.Fatalf("gated traces diverge:\ngenerated:\n%s\nevent:\n%s", got, want)
	}
}

// BenchmarkDirectorStepPipelineGenerated runs the saturated ring
// through hand-written generated edge functions (EngineGenerated) —
// the same functions internal/osm/gen emits for real models. The CI
// bench-regression job compares it against the compiled engine.
func BenchmarkDirectorStepPipelineGenerated(b *testing.B) {
	d, fns := genPipeline(nil)
	d.Engine = EngineGenerated
	if err := d.AttachGenerated(fns); err != nil {
		b.Fatal(err)
	}
	benchSteps(b, d)
}

// BenchmarkDirectorStepIdleGenerated measures the idle step under the
// generated engine (all machines suspended; the step must not touch
// the edge functions at all).
func BenchmarkDirectorStepIdleGenerated(b *testing.B) {
	u := NewUnitManager("u", 1)
	i, s := NewState("I"), NewState("S")
	i.Connect("go", s, Alloc(u, 0))
	s.Connect("stay", i, Release(u, 0))
	u.SetBusy(0, 1<<62)
	d := NewDirector()
	d.Engine = EngineGenerated
	d.AddManager(u)
	for k := 0; k < 8; k++ {
		d.AddMachine(NewMachine("m", i))
	}
	blockAll := func(m *Machine, e *Edge) (bool, error) { return m.GenFallback(e) }
	probeAll := func(m *Machine, e *Edge) bool { return m.ProbeEdge(e) }
	if err := d.AttachGenerated(map[string]GenEdge{
		"I/go":   {Try: blockAll, Probe: probeAll},
		"S/stay": {Try: blockAll, Probe: probeAll},
	}); err != nil {
		b.Fatal(err)
	}
	if err := d.Step(); err != nil { // settle: every machine blocks on the busy gate
		b.Fatal(err)
	}
	benchSteps(b, d)
}
