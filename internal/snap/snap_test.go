package snap

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestScalarRoundTrip(t *testing.T) {
	w := NewWriter()
	w.U8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.U16(0x1234)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I64(-42)
	w.Int(-7)
	w.String("hello")
	w.Bytes32([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xab {
		t.Fatalf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := r.U16(); got != 0x1234 {
		t.Fatalf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Fatalf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Bytes32(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes32 = %v", got)
	}
	if err := r.Close("test"); err != nil {
		t.Fatal(err)
	}
}

func TestBlobBounds(t *testing.T) {
	w := NewWriter()
	w.Blob(func(w *Writer) { w.U32(7) })
	w.U32(99)
	r := NewReader(w.Bytes())
	b := r.Blob()
	if got := b.U32(); got != 7 {
		t.Fatalf("blob U32 = %d", got)
	}
	// Reads past the blob's end must fail inside the blob, not leak
	// into the parent stream.
	if b.U32(); b.Err() == nil {
		t.Fatal("read past blob end did not error")
	}
	if got := r.U32(); got != 99 || r.Err() != nil {
		t.Fatalf("parent stream desynchronized: %d, %v", got, r.Err())
	}
}

func TestZBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]byte{
		nil,
		make([]byte, 1000),            // all zero
		bytes.Repeat([]byte{7}, 1000), // no zeros
		append(append(make([]byte, 500), 1, 2, 3), make([]byte, 500)...),
	}
	for i := 0; i < 20; i++ {
		b := make([]byte, rng.Intn(4096))
		for j := range b {
			if rng.Intn(4) == 0 {
				b[j] = byte(rng.Intn(256))
			}
		}
		cases = append(cases, b)
	}
	for i, data := range cases {
		w := NewWriter()
		w.ZBytes(data)
		r := NewReader(w.Bytes())
		got := r.ZBytes()
		if r.Err() != nil {
			t.Fatalf("case %d: %v", i, r.Err())
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("case %d: round trip mismatch (%d vs %d bytes)", i, len(got), len(data))
		}
		// Canonical: re-encoding the decoded data is byte-identical.
		w2 := NewWriter()
		w2.ZBytes(got)
		if !bytes.Equal(w.Bytes(), w2.Bytes()) {
			t.Fatalf("case %d: re-encode differs", i)
		}
	}
}

func TestTruncationNeverPanics(t *testing.T) {
	w := NewWriter()
	w.U32(Magic)
	w.Version(1)
	w.String("component")
	w.Blob(func(w *Writer) {
		w.U64(12345)
		w.ZBytes(make([]byte, 300))
	})
	full := w.Bytes()
	for n := 0; n < len(full); n++ {
		r := NewReader(full[:n])
		r.U32()
		r.Version("t", 1)
		_ = r.String()
		b := r.Blob()
		b.U64()
		b.ZBytes()
		if r.Err() == nil && b.Err() == nil && b.Close("t") == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", n, len(full))
		}
	}
}

func TestVersionSkew(t *testing.T) {
	w := NewWriter()
	w.Version(2)
	r := NewReader(w.Bytes())
	r.Version("comp", 1)
	if r.Err() == nil {
		t.Fatal("version skew not detected")
	}
}

func TestBoolRejectsGarbage(t *testing.T) {
	r := NewReader([]byte{7})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("Bool accepted byte 7")
	}
}

func TestCloseDetectsTrailingBytes(t *testing.T) {
	w := NewWriter()
	w.U32(1)
	w.U32(2)
	r := NewReader(w.Bytes())
	r.U32()
	if err := r.Close("t"); err == nil {
		t.Fatal("trailing bytes not detected")
	}
}
