package snap

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestScalarRoundTrip(t *testing.T) {
	w := NewWriter()
	w.U8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.U16(0x1234)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I64(-42)
	w.Int(-7)
	w.String("hello")
	w.Bytes32([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xab {
		t.Fatalf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := r.U16(); got != 0x1234 {
		t.Fatalf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Fatalf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Bytes32(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes32 = %v", got)
	}
	if err := r.Close("test"); err != nil {
		t.Fatal(err)
	}
}

func TestBlobBounds(t *testing.T) {
	w := NewWriter()
	w.Blob(func(w *Writer) { w.U32(7) })
	w.U32(99)
	r := NewReader(w.Bytes())
	b := r.Blob()
	if got := b.U32(); got != 7 {
		t.Fatalf("blob U32 = %d", got)
	}
	// Reads past the blob's end must fail inside the blob, not leak
	// into the parent stream.
	if b.U32(); b.Err() == nil {
		t.Fatal("read past blob end did not error")
	}
	if got := r.U32(); got != 99 || r.Err() != nil {
		t.Fatalf("parent stream desynchronized: %d, %v", got, r.Err())
	}
}

func TestZBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]byte{
		nil,
		make([]byte, 1000),            // all zero
		bytes.Repeat([]byte{7}, 1000), // no zeros
		append(append(make([]byte, 500), 1, 2, 3), make([]byte, 500)...),
	}
	for i := 0; i < 20; i++ {
		b := make([]byte, rng.Intn(4096))
		for j := range b {
			if rng.Intn(4) == 0 {
				b[j] = byte(rng.Intn(256))
			}
		}
		cases = append(cases, b)
	}
	for i, data := range cases {
		w := NewWriter()
		w.ZBytes(data)
		r := NewReader(w.Bytes())
		got := r.ZBytes()
		if r.Err() != nil {
			t.Fatalf("case %d: %v", i, r.Err())
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("case %d: round trip mismatch (%d vs %d bytes)", i, len(got), len(data))
		}
		// Canonical: re-encoding the decoded data is byte-identical.
		w2 := NewWriter()
		w2.ZBytes(got)
		if !bytes.Equal(w.Bytes(), w2.Bytes()) {
			t.Fatalf("case %d: re-encode differs", i)
		}
	}
}

func TestTruncationNeverPanics(t *testing.T) {
	w := NewWriter()
	w.U32(Magic)
	w.Version(1)
	w.String("component")
	w.Blob(func(w *Writer) {
		w.U64(12345)
		w.ZBytes(make([]byte, 300))
	})
	full := w.Bytes()
	for n := 0; n < len(full); n++ {
		r := NewReader(full[:n])
		r.U32()
		r.Version("t", 1)
		_ = r.String()
		b := r.Blob()
		b.U64()
		b.ZBytes()
		if r.Err() == nil && b.Err() == nil && b.Close("t") == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", n, len(full))
		}
	}
}

func TestVersionSkew(t *testing.T) {
	w := NewWriter()
	w.Version(2)
	r := NewReader(w.Bytes())
	r.Version("comp", 1)
	if r.Err() == nil {
		t.Fatal("version skew not detected")
	}
}

func TestBoolRejectsGarbage(t *testing.T) {
	r := NewReader([]byte{7})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("Bool accepted byte 7")
	}
}

func TestCloseDetectsTrailingBytes(t *testing.T) {
	w := NewWriter()
	w.U32(1)
	w.U32(2)
	r := NewReader(w.Bytes())
	r.U32()
	if err := r.Close("t"); err == nil {
		t.Fatal("trailing bytes not detected")
	}
}

// The Writer mirrors the Reader's sticky-error discipline: a value too
// long for its uint32 length prefix is rejected (instead of silently
// truncating the length via the uint32 cast) and every later write is
// inert, so a failed encode can never produce a stream the
// bounds-checked Reader would misparse.
func TestWriterRejectsOversizedBlobs(t *testing.T) {
	big := make([]byte, 64)
	cases := []struct {
		name  string
		write func(w *Writer)
	}{
		{"Bytes32", func(w *Writer) { w.Bytes32(big) }},
		{"String", func(w *Writer) { w.String(string(big)) }},
		{"ZBytes", func(w *Writer) { w.ZBytes(big) }},
		{"Blob", func(w *Writer) { w.Blob(func(w *Writer) { w.Bytes32(big[:16]); w.Bytes32(big[:16]) }) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWriter()
			// A 4 GiB allocation is not CI-friendly; the bound is a
			// field precisely so the overflow path is testable.
			w.MaxBlob = 32
			w.U32(7)
			before := w.Len()
			tc.write(w)
			if w.Err() == nil {
				t.Fatalf("%s accepted a %d-byte value over a %d-byte bound", tc.name, len(big), w.MaxBlob)
			}
			if w.Len() != before {
				t.Fatalf("failed %s left %d bytes in the stream", tc.name, w.Len()-before)
			}
			// Sticky: everything after the failure is a no-op.
			w.U64(1)
			w.Bytes32([]byte{1})
			w.ZBytes([]byte{1})
			w.Blob(func(w *Writer) { w.U8(1) })
			if w.Len() != before {
				t.Fatalf("writes after error extended the stream by %d bytes", w.Len()-before)
			}
			// The prefix written before the failure is still intact.
			r := NewReader(w.Bytes())
			if got := r.U32(); got != 7 {
				t.Fatalf("prefix corrupted: U32 = %d", got)
			}
		})
	}
}

func TestWriterUnderBoundStillRoundTrips(t *testing.T) {
	w := NewWriter()
	w.MaxBlob = 32
	w.Bytes32([]byte("ok"))
	w.String("fine")
	w.ZBytes(make([]byte, 32))
	w.Blob(func(w *Writer) { w.U32(5) })
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(w.Bytes())
	if got := r.Bytes32(); string(got) != "ok" {
		t.Fatalf("Bytes32 = %q", got)
	}
	if got := r.String(); got != "fine" {
		t.Fatalf("String = %q", got)
	}
	if got := r.ZBytes(); len(got) != 32 {
		t.Fatalf("ZBytes len = %d", len(got))
	}
	b := r.Blob()
	if got := b.U32(); got != 5 {
		t.Fatalf("Blob U32 = %d", got)
	}
	if err := r.Close("t"); err != nil {
		t.Fatal(err)
	}
}

func TestWriterFailf(t *testing.T) {
	w := NewWriter()
	w.Failf("model state invalid: %d tokens", 3)
	if w.Err() == nil {
		t.Fatal("Failf did not set the sticky error")
	}
	w.U32(1)
	if w.Len() != 0 {
		t.Fatal("write after Failf extended the stream")
	}
}
