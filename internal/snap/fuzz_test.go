package snap

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
)

// le32 appends v little-endian, for building hostile streams by hand.
func le32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// TestZBytesHostileHeaderAllocationBounded is the regression test for
// the wire-trusted pre-allocation: a handful of corrupt header bytes
// claiming a 1 GiB payload must error out without allocating anything
// near the claimed total. Before the fix, ZBytes allocated the full
// wire-claimed capacity before validating a single payload byte.
func TestZBytesHostileHeaderAllocationBounded(t *testing.T) {
	const giant = 1 << 30
	hostile := map[string][]byte{
		// The ~12-byte attack from the wild: giant total, one run
		// header, no payload behind it.
		"truncated-after-pair": le32(le32(le32(nil, giant), 123), 456),
		// Giant total with no pair bytes at all.
		"bare-total": le32(nil, giant),
		// Run overshooting the total.
		"run-exceeds-total": le32(le32(le32(nil, 64), giant), 0),
		// Literal length with no literal bytes behind it.
		"missing-literal": le32(le32(le32(nil, giant), 0), giant),
		// Zero-progress pairs padding out a giant total.
		"zero-progress": le32(le32(le32(nil, giant), 0), 0),
		// Total beyond the absolute ceiling.
		"over-ceiling": le32(nil, 1<<31-1),
	}
	for name, data := range hostile {
		t.Run(name, func(t *testing.T) {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			r := NewReader(data)
			out := r.ZBytes()
			runtime.ReadMemStats(&after)
			if r.Err() == nil {
				t.Fatalf("corrupt input decoded without error to %d bytes", len(out))
			}
			if out != nil {
				t.Fatalf("corrupt input returned non-nil output (%d bytes)", len(out))
			}
			// The decoder may not allocate anything proportional to
			// the claimed total; 1 MiB is orders of magnitude above
			// what the error path legitimately needs.
			if delta := after.TotalAlloc - before.TotalAlloc; delta > 1<<20 {
				t.Fatalf("error path allocated %d bytes for a %d-byte input", delta, len(data))
			}
		})
	}
}

// TestZBytesValidGiantZeroRun pins the legitimate counterpart: a real
// all-zero region compresses to one pair and must still decode.
func TestZBytesValidGiantZeroRun(t *testing.T) {
	const n = 1 << 20
	w := NewWriter()
	w.ZBytes(make([]byte, n))
	r := NewReader(w.Bytes())
	out := r.ZBytes()
	if err := r.Close("zbytes"); err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("decoded %d bytes, want %d", len(out), n)
	}
	for i, b := range out {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

// FuzzZBytesDecode feeds arbitrary bytes to the ZBytes reader:
// whatever the input, decoding must neither panic nor fabricate
// output that disagrees with the stream.
func FuzzZBytesDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(le32(nil, 0))
	f.Add(le32(le32(le32(nil, 1<<30), 123), 456))
	f.Add(le32(le32(le32(nil, 16), 16), 0))
	w := NewWriter()
	w.ZBytes([]byte("literal\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00tail"))
	f.Add(w.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		out := r.ZBytes()
		if r.Err() != nil {
			if out != nil {
				t.Fatalf("error set but output non-nil (%d bytes)", len(out))
			}
			if r.Remaining() != 0 {
				t.Fatalf("Remaining() = %d after error, want 0", r.Remaining())
			}
			return
		}
		// A successful decode must deliver exactly the claimed total
		// (canonicality of valid encodings is FuzzZBytesRoundTrip's
		// job; the reader tolerates split literals).
		claimed := binary.LittleEndian.Uint32(data)
		if uint32(len(out)) != claimed {
			t.Fatalf("decoded %d bytes, header claimed %d", len(out), claimed)
		}
	})
}

// FuzzZBytesRoundTrip drives the codec from the data side: every
// payload must survive encode→decode byte-identically, and the
// encoding must be canonical (re-encoding the decode changes
// nothing).
func FuzzZBytesRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello"))
	f.Add(make([]byte, 64))
	f.Add(append(make([]byte, 40), 0xff))
	f.Fuzz(func(t *testing.T, data []byte) {
		w := NewWriter()
		w.ZBytes(data)
		enc := w.Bytes()
		r := NewReader(enc)
		out := r.ZBytes()
		if err := r.Close("zbytes"); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip mutated data: %d bytes in, %d out", len(data), len(out))
		}
		w2 := NewWriter()
		w2.ZBytes(out)
		if !bytes.Equal(w2.Bytes(), enc) {
			t.Fatal("encoding is not canonical: re-encode differs")
		}
	})
}

// FuzzReader drives the whole Reader surface with an op script over
// arbitrary input: no sequence of reads on any input may panic, and
// the sticky error must keep every later accessor inert.
func FuzzReader(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, []byte("\x04\x00\x00\x00abcd"))
	f.Add([]byte{8, 8, 8}, le32(le32(nil, 16), 1<<31-1))
	w := NewWriter()
	w.U32(Magic)
	w.Version(3)
	w.String("component")
	w.Blob(func(w *Writer) { w.U64(42) })
	w.ZBytes(make([]byte, 100))
	f.Add([]byte{3, 7, 9, 10, 11, 0}, w.Bytes())
	f.Fuzz(func(t *testing.T, ops, data []byte) {
		r := NewReader(data)
		errSeen := false
		for _, op := range ops {
			switch op % 12 {
			case 0:
				r.U8()
			case 1:
				r.Bool()
			case 2:
				r.U16()
			case 3:
				r.U32()
			case 4:
				r.U64()
			case 5:
				r.I64()
			case 6:
				r.Int()
			case 7:
				r.Version("fuzz", 3)
			case 8:
				r.Bytes32()
			case 9:
				_ = r.String()
			case 10:
				sub := r.Blob()
				sub.U64()
				sub.Close("sub")
			case 11:
				r.ZBytes()
			}
			if errSeen && r.Err() == nil {
				t.Fatal("sticky error cleared itself")
			}
			if r.Err() != nil {
				errSeen = true
				if r.Remaining() != 0 {
					t.Fatalf("Remaining() = %d after error, want 0", r.Remaining())
				}
			}
		}
		r.Close("fuzz")
	})
}
