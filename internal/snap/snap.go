// Package snap is the binary codec underlying the simulator's
// checkpoint/restore machinery. It provides an append-only Writer and
// a bounds-checked Reader over a flat byte stream, with three
// structural conventions shared by every layer that snapshots state:
//
//   - fixed-width little-endian integers (no varints: snapshots are
//     diffed byte-for-byte in tests, and fixed widths keep offsets
//     stable across values);
//
//   - length-prefixed sub-blobs (Blob / Reader.Blob), so each
//     component owns a delimited region and a corrupt or
//     version-skewed component fails locally instead of desynchronizing
//     the whole stream;
//
//   - a per-component version tag (Writer.Version / Reader.Version),
//     checked on restore, so format evolution is detected instead of
//     misdecoded.
//
// Decoding never panics: the Reader carries a sticky error, every
// accessor returns a zero value once the error is set, and callers
// check Err (or use the helpers that return errors) at component
// boundaries. Encoding mirrors the contract: the Writer carries its
// own sticky error — set when a length-prefixed value exceeds the
// 32-bit length field it would be framed with — and every append is
// inert once the error is set, so an oversized blob can never emit a
// silently truncated length the bounds-checked Reader would misparse.
package snap

import (
	"encoding/binary"
	"fmt"
)

// Magic identifies a top-level snapshot stream ("OSNP").
const Magic uint32 = 0x4f534e50

// Writer accumulates an encoded snapshot.
type Writer struct {
	buf []byte
	err error

	// MaxBlob bounds a single length-prefixed value — Bytes32, String,
	// a ZBytes payload or a Blob region. Zero selects the format
	// ceiling, 2^32-1 (the widest length a U32 prefix can carry);
	// tests lower it to exercise the rejection path without 4 GiB
	// allocations. Exceeding the bound sets the sticky error.
	MaxBlob int
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the encoded stream. The slice aliases the writer's
// buffer; callers must not write to the writer afterwards. A stream is
// only valid if Err returns nil — persistence layers check it before
// committing bytes anywhere.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Err returns the sticky encode error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) fail(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf("snap: "+format, args...)
	}
}

// Failf sets the writer's sticky error (first failure wins), for
// callers whose own validation decides mid-encode that the stream must
// not be used.
func (w *Writer) Failf(format string, args ...any) { w.fail(format, args...) }

// maxBlob resolves the per-value length bound.
func (w *Writer) maxBlob() int {
	if w.MaxBlob > 0 {
		return w.MaxBlob
	}
	ceiling := uint64(^uint32(0)) // 2^32-1, the widest U32 length prefix
	limit := uint64(^uint(0) >> 1)
	if ceiling > limit { // 32-bit platforms: len can never get there
		return int(limit)
	}
	return int(ceiling)
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) {
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, v)
}

// Bool appends a byte 0 or 1.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
		return
	}
	w.U8(0)
}

// U16 appends a little-endian 16-bit value.
func (w *Writer) U16(v uint16) {
	if w.err != nil {
		return
	}
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// U32 appends a little-endian 32-bit value.
func (w *Writer) U32(v uint32) {
	if w.err != nil {
		return
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a little-endian 64-bit value.
func (w *Writer) U64(v uint64) {
	if w.err != nil {
		return
	}
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 appends a little-endian 64-bit value, two's complement.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as a 64-bit value.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bytes32 appends a length-prefixed byte string. A payload too long
// for its 32-bit length prefix sets the sticky error instead of
// silently truncating the length.
func (w *Writer) Bytes32(b []byte) {
	if w.err != nil {
		return
	}
	if len(b) > w.maxBlob() {
		w.fail("bytes32: %d-byte value exceeds the %d-byte length-prefix bound", len(b), w.maxBlob())
		return
	}
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string, with the same length bound
// as Bytes32.
func (w *Writer) String(s string) {
	if w.err != nil {
		return
	}
	if len(s) > w.maxBlob() {
		w.fail("string: %d-byte value exceeds the %d-byte length-prefix bound", len(s), w.maxBlob())
		return
	}
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Version appends a component version tag.
func (w *Writer) Version(v uint16) { w.U16(v) }

// Blob appends a length-prefixed sub-stream produced by f. Restores
// read it with Reader.Blob, which bounds all reads to the region. A
// region too long for its length slot sets the sticky error.
func (w *Writer) Blob(f func(*Writer)) {
	if w.err != nil {
		return
	}
	// Reserve the length slot, fill it after f runs.
	at := len(w.buf)
	w.U32(0)
	f(w)
	if w.err != nil {
		return
	}
	if n := len(w.buf) - at - 4; n > w.maxBlob() {
		w.fail("blob: %d-byte region exceeds the %d-byte length-prefix bound", n, w.maxBlob())
		w.buf = w.buf[:at]
		return
	}
	binary.LittleEndian.PutUint32(w.buf[at:], uint32(len(w.buf)-at-4))
}

// ZBytes appends data with zero runs compressed: a total length
// followed by (zero-run, literal) pairs. Simulator RAM images are
// mostly zero, so checkpoints stay small without a real compressor.
// The encoding is canonical (maximal zero runs, literals extended
// until the next run of at least zMin zeros), so identical data always
// yields identical bytes.
func (w *Writer) ZBytes(data []byte) {
	const zMin = 16
	if w.err != nil {
		return
	}
	if len(data) > w.maxBlob() {
		w.fail("zbytes: %d-byte value exceeds the %d-byte length-prefix bound", len(data), w.maxBlob())
		return
	}
	w.U32(uint32(len(data)))
	i := 0
	for i < len(data) {
		// Maximal zero run.
		z := i
		for z < len(data) && data[z] == 0 {
			z++
		}
		// Literal until a run of zMin zeros (or the end).
		lit := z
		zeros := 0
		for j := z; j < len(data); j++ {
			if data[j] == 0 {
				zeros++
				if zeros == zMin {
					break
				}
			} else {
				zeros = 0
				lit = j + 1
			}
		}
		w.U32(uint32(z - i))
		w.U32(uint32(lit - z))
		w.buf = append(w.buf, data[z:lit]...)
		i = lit
	}
}

// Reader decodes a snapshot stream. All methods are safe on corrupt
// or truncated input: the first out-of-bounds read sets a sticky
// error and subsequent reads return zero values.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader returns a reader over data.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes (0 after an error).
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.buf) - r.pos
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format, args...)
	}
}

// Failf sets the reader's sticky error (first failure wins), so
// callers that perform their own semantic validation — element-count
// plausibility, per-field caps — poison the stream the same way an
// out-of-bounds read would.
func (r *Reader) Failf(format string, args ...any) { r.fail(format, args...) }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.pos < n {
		r.fail("truncated: need %d bytes at offset %d of %d", n, r.pos, len(r.buf))
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a byte as a boolean; values other than 0 and 1 are
// decode errors.
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.fail("invalid boolean byte %d", v)
		return false
	}
	return v == 1
}

// U16 reads a little-endian 16-bit value.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian 32-bit value.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian 64-bit value.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian 64-bit value, two's complement.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads a 64-bit value as an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bytes32 reads a length-prefixed byte string. The result aliases the
// input buffer.
func (r *Reader) Bytes32() []byte {
	n := int(r.U32())
	return r.take(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes32()) }

// Version reads a component version tag and checks it against want.
func (r *Reader) Version(component string, want uint16) {
	got := r.U16()
	if r.err == nil && got != want {
		r.fail("%s: snapshot version %d, this build reads %d", component, got, want)
	}
}

// Blob reads a length-prefixed sub-stream and returns a reader bound
// to it. A sub-reader's decode error does not propagate automatically;
// callers check its Err at the end of the component. On a truncated
// prefix the parent's error is set and the returned reader is empty
// but non-nil.
func (r *Reader) Blob() *Reader {
	b := r.Bytes32()
	if b == nil {
		return &Reader{err: r.err}
	}
	return NewReader(b)
}

// ZBytes reads a zero-run-compressed byte string written by
// Writer.ZBytes.
//
// The wire-claimed total is never trusted before the run structure
// has been walked against the actual input: a corrupt or truncated
// stream fails having allocated nothing, so hostile snapshot uploads
// cannot turn a handful of header bytes into a giant allocation. An
// 8-byte run header can still legitimately expand into megabytes of
// zeros (RAM images are mostly zero); the absolute zMax ceiling
// bounds that expansion.
func (r *Reader) ZBytes() []byte {
	total := int(r.U32())
	if r.err != nil {
		return nil
	}
	const zMax = 1 << 30
	if total < 0 || total > zMax {
		r.fail("zbytes: implausible total %d", total)
		return nil
	}
	// Cheapest plausibility test first: encoding any payload costs at
	// least one (zero-run, literal) pair of 8 input bytes.
	if total > 0 && len(r.buf)-r.pos < 8 {
		r.fail("zbytes: total %d with only %d input byte(s) remaining",
			total, len(r.buf)-r.pos)
		return nil
	}
	// Validation pass: walk every run header and literal in place.
	// Each pair must make progress and stay within total, so the walk
	// is linear in the input and rejects non-canonical zero-progress
	// pairs along the way.
	start := r.pos
	n := 0
	for n < total {
		z := int(r.U32())
		l := int(r.U32())
		if r.err != nil {
			return nil
		}
		if z < 0 || l < 0 || n+z+l > total {
			r.fail("zbytes: run %d+%d exceeds total %d at %d", z, l, total, n)
			return nil
		}
		if z == 0 && l == 0 {
			r.fail("zbytes: zero-progress run at %d (non-canonical)", n)
			return nil
		}
		if r.take(l) == nil {
			return nil
		}
		n += z + l
	}
	// Decode pass over the verified region. The single allocation
	// happens only now, and extending into the fresh backing array
	// materializes zero runs without writing them.
	r.pos = start
	out := make([]byte, 0, total)
	for len(out) < total {
		z := int(r.U32())
		l := int(r.U32())
		out = out[:len(out)+z]
		lit := r.take(l)
		if lit == nil {
			return nil // unreachable after validation; keep the reader safe
		}
		out = append(out, lit...)
	}
	return out
}

// Close verifies the component's region was fully consumed and its
// decode succeeded. Layers call it at the end of RestoreState so
// trailing garbage (a format drift symptom) is detected.
func (r *Reader) Close(component string) error {
	if r.err != nil {
		return fmt.Errorf("%s: %w", component, r.err)
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("%s: snap: %d trailing bytes", component, len(r.buf)-r.pos)
	}
	return nil
}
