package gate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RegisterWorker announces a worker to a gateway: POST {gateway}/v1/workers.
// Called by osmserve at startup (and safe to repeat — re-registration
// refreshes the record).
func RegisterWorker(gatewayURL, id, addr, wireAddr string, timeout time.Duration) error {
	body, _ := json.Marshal(map[string]string{"id": id, "addr": addr, "wire_addr": wireAddr})
	return postJSON(gatewayURL+"/v1/workers", body, timeout)
}

// NotifyDrain asks the gateway to migrate the worker's sessions onto
// the rest of the fleet; it returns once the migrate-out has finished,
// so a worker calling this from its SIGTERM path can shut down
// immediately afterwards without losing a session. The timeout bounds
// the whole drain (snapshot+restore per session).
func NotifyDrain(gatewayURL, id string, timeout time.Duration) error {
	body, _ := json.Marshal(map[string]string{"worker": id})
	return postJSON(gatewayURL+"/v1/workers/drain", body, timeout)
}

func postJSON(url string, body []byte, timeout time.Duration) error {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	ctx, cancel := timeoutCtx(timeout)
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("gate: %s: status %d: %s", url, resp.StatusCode, trimBody(respBody))
	}
	return nil
}
