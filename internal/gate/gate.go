// Package gate is the session fabric's control plane: a gateway that
// consistent-hashes session ids over a registered fleet of osmserve
// workers, proxies both protocol planes (HTTP/JSON and the binary
// wire protocol), propagates worker backpressure to clients, and
// performs live session migration — snapshot on the source worker,
// restore onto the target, atomically repoint the route — for worker
// drain, manual rebalance, and resurrection of parked (idle-evicted)
// sessions. It is the library behind cmd/osmgate.
//
// The gateway holds no simulation state. Its per-session footprint is
// one route entry: the owning worker plus the original create body
// (needed to re-create the session elsewhere during a migration).
// Every session-scoped request holds the route's read lock for the
// duration of the forward; a migration takes the write lock, so the
// snapshot→restore→repoint sequence observes no concurrent traffic
// and a client request issued mid-migration simply lands on the new
// worker — no cycle is lost and none is run twice.
package gate

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
)

// WorkerState is a registered worker's membership state.
type WorkerState string

// The worker lifecycle. Only healthy workers receive new placements;
// healthy and draining workers still serve their resident sessions.
const (
	// WorkerJoining is registered but not yet health-verified.
	WorkerJoining WorkerState = "joining"
	// WorkerHealthy is in the ring and receiving placements.
	WorkerHealthy WorkerState = "healthy"
	// WorkerUnhealthy failed consecutive probes and left the ring; a
	// later successful probe returns it to healthy.
	WorkerUnhealthy WorkerState = "unhealthy"
	// WorkerDraining is migrating its sessions out; out of the ring.
	WorkerDraining WorkerState = "draining"
	// WorkerGone has drained or deregistered.
	WorkerGone WorkerState = "gone"
)

// workerStates lists every state, for deterministic metrics output.
var workerStates = []WorkerState{WorkerJoining, WorkerHealthy, WorkerUnhealthy, WorkerDraining, WorkerGone}

// Worker is one registered osmserve instance.
type Worker struct {
	ID string `json:"id"`
	// Addr is the worker's HTTP base URL (e.g. http://10.0.0.7:8080).
	Addr string `json:"addr"`
	// WireAddr is the worker's wire listener ("" = none): host:port or
	// unix:/path.
	WireAddr string `json:"wire_addr,omitempty"`

	State    WorkerState `json:"state"`
	Sessions int         `json:"sessions"` // from the last healthz probe
	Fails    int         `json:"fails,omitempty"`
	LastSeen time.Time   `json:"last_seen"`
}

// route is the gateway's per-session state: the owning worker and the
// create body that re-creates the session on another worker. The
// RWMutex is the migration barrier — see the package comment.
type route struct {
	mu     sync.RWMutex
	worker string
	create []byte // JSON create body with the id pinned
	dead   bool   // a failed resurrection; entry already unmapped
}

// Config parameterizes a Gateway. Zero values select the defaults.
type Config struct {
	// Replicas is the virtual-node count per worker on the hash ring
	// (default 64).
	Replicas int
	// HealthInterval is the worker probe cadence (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 2s).
	HealthTimeout time.Duration
	// MaxFails consecutive probe failures mark a worker unhealthy and
	// remove it from the ring (default 3).
	MaxFails int
	// ProxyTimeout bounds one forwarded request (default 60s — a step
	// request may legitimately run tens of seconds).
	ProxyTimeout time.Duration
	// ParkDir is where workers park idle-evicted sessions; the gateway
	// resurrects parked sessions from here on touch ("" disables).
	ParkDir string
	// Logf, if non-nil, receives one line per notable event.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Replicas == 0 {
		c.Replicas = 64
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout == 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.MaxFails == 0 {
		c.MaxFails = 3
	}
	if c.ProxyTimeout == 0 {
		c.ProxyTimeout = 60 * time.Second
	}
}

// Gateway routes sessions over the worker fleet.
type Gateway struct {
	cfg     Config
	Metrics *Metrics
	hc      *http.Client // forwards and probes; per-request timeouts

	mu      sync.Mutex
	workers map[string]*Worker
	ring    *Ring
	routes  map[string]*route
	drains  map[string]chan struct{} // in-progress worker drains
	nextID  uint64
	nonce   string // distinguishes ids across gateway restarts

	wcMu        sync.Mutex
	wireClients map[string]*wire.Client

	healthStop chan struct{}
	healthDone chan struct{}
	closeOnce  sync.Once
}

// New returns a gateway with an empty registry. Call Start to begin
// health probing and Close to stop.
func New(cfg Config) *Gateway {
	cfg.fill()
	var nb [3]byte
	rand.Read(nb[:])
	g := &Gateway{
		cfg:         cfg,
		Metrics:     NewMetrics(),
		hc:          &http.Client{},
		workers:     make(map[string]*Worker),
		ring:        NewRing(cfg.Replicas),
		routes:      make(map[string]*route),
		drains:      make(map[string]chan struct{}),
		nonce:       fmt.Sprintf("%x", nb),
		wireClients: make(map[string]*wire.Client),
	}
	g.Metrics.Workers = g.workersByState
	g.Metrics.Routes = g.RouteCount
	return g
}

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// RouteCount returns the number of live route entries.
func (g *Gateway) RouteCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.routes)
}

func (g *Gateway) workersByState() map[string]int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]int, len(workerStates))
	for _, w := range g.workers {
		out[string(w.State)]++
	}
	return out
}

// Workers returns a snapshot of the registry, sorted by id.
func (g *Gateway) Workers() []Worker {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Worker, 0, len(g.workers))
	for _, w := range g.workers {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Register adds a worker (or refreshes an existing registration —
// re-registering is how a restarted worker rejoins). The worker is
// probed immediately: a passing probe enters the ring now instead of
// waiting one health interval.
func (g *Gateway) Register(id, addr, wireAddr string) (*Worker, error) {
	if id == "" {
		id = addr
	}
	if id == "" || addr == "" {
		return nil, fmt.Errorf("gate: register requires a worker address")
	}
	if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
		return nil, fmt.Errorf("gate: worker addr %q is not an http(s) base URL", addr)
	}
	g.mu.Lock()
	w, ok := g.workers[id]
	if !ok {
		w = &Worker{ID: id}
		g.workers[id] = w
	}
	w.Addr = strings.TrimSuffix(addr, "/")
	w.WireAddr = wireAddr
	w.State = WorkerJoining
	w.Fails = 0
	g.ring.Remove(id) // re-registration resets membership until probed
	g.mu.Unlock()
	g.dropWireClient(id)
	g.probe(id)
	g.mu.Lock()
	snapshot := *g.workers[id]
	g.mu.Unlock()
	g.logf("worker %s registered (%s, wire %q) -> %s", id, addr, wireAddr, snapshot.State)
	return &snapshot, nil
}

// Start launches the health loop.
func (g *Gateway) Start() {
	if g.healthStop != nil {
		return
	}
	g.healthStop = make(chan struct{})
	g.healthDone = make(chan struct{})
	go func() {
		defer close(g.healthDone)
		t := time.NewTicker(g.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-g.healthStop:
				return
			case <-t.C:
				g.probeAll()
			}
		}
	}()
}

// Close stops the health loop and tears down pooled worker
// connections. It does not drain workers — they outlive the gateway.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		if g.healthStop != nil {
			close(g.healthStop)
			<-g.healthDone
		}
		g.wcMu.Lock()
		for id, c := range g.wireClients {
			c.Close()
			delete(g.wireClients, id)
		}
		g.wcMu.Unlock()
	})
}

func (g *Gateway) probeAll() {
	g.mu.Lock()
	ids := make([]string, 0, len(g.workers))
	for id, w := range g.workers {
		if w.State != WorkerGone {
			ids = append(ids, id)
		}
	}
	g.mu.Unlock()
	for _, id := range ids {
		g.probe(id)
	}
}

// probe health-checks one worker and applies the membership
// transition: pass -> healthy (in the ring), drain-advertising ->
// migrate-out, MaxFails consecutive failures -> unhealthy (out of the
// ring, routes kept — the worker may come back).
func (g *Gateway) probe(id string) {
	g.mu.Lock()
	w, ok := g.workers[id]
	if !ok || w.State == WorkerGone || w.State == WorkerDraining {
		g.mu.Unlock()
		return
	}
	addr := w.Addr
	g.mu.Unlock()

	g.Metrics.HealthProbes.Add(1)
	status, body, err := g.get(addr + "/healthz")

	g.mu.Lock()
	w, ok = g.workers[id]
	if !ok || w.State == WorkerGone || w.State == WorkerDraining {
		g.mu.Unlock()
		return
	}
	switch {
	case err == nil && status == http.StatusOK:
		var hz struct {
			Sessions int `json:"sessions"`
		}
		json.Unmarshal(body, &hz)
		if w.State != WorkerHealthy {
			g.logf("worker %s: %s -> healthy", id, w.State)
		}
		w.State = WorkerHealthy
		w.Fails = 0
		w.Sessions = hz.Sessions
		w.LastSeen = time.Now()
		g.ring.Add(id)
		g.mu.Unlock()
	case err == nil && status == http.StatusServiceUnavailable && bytes.Contains(body, []byte("draining")):
		// The worker announced its own drain (e.g. a SIGTERM the
		// gateway was not told about): migrate its sessions out.
		w.LastSeen = time.Now()
		g.mu.Unlock()
		g.logf("worker %s: advertises draining, migrating sessions out", id)
		go g.DrainWorker(id)
	default:
		w.Fails++
		fails := w.Fails
		state := w.State
		if fails >= g.cfg.MaxFails && state != WorkerUnhealthy {
			w.State = WorkerUnhealthy
			g.ring.Remove(id)
			g.logf("worker %s: %d failed probes, marked unhealthy and removed from the ring", id, fails)
		}
		g.mu.Unlock()
		g.dropWireClient(id)
	}
}

// get issues a bounded GET and returns status and body.
func (g *Gateway) get(url string) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	ctx, cancel := timeoutCtx(g.cfg.HealthTimeout)
	defer cancel()
	resp, err := g.hc.Do(req.WithContext(ctx))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// worker returns a copy of the worker record.
func (g *Gateway) worker(id string) (Worker, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok {
		return Worker{}, false
	}
	return *w, true
}

// placementOrder returns healthy workers in ring-preference order for
// the key.
func (g *Gateway) placementOrder(key string) []Worker {
	g.mu.Lock()
	defer g.mu.Unlock()
	ids := g.ring.LookupN(key, g.ring.Len())
	out := make([]Worker, 0, len(ids))
	for _, id := range ids {
		if w, ok := g.workers[id]; ok && w.State == WorkerHealthy {
			out = append(out, *w)
		}
	}
	return out
}

// getRoute returns the live route for a session id.
func (g *Gateway) getRoute(id string) (*route, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rt, ok := g.routes[id]
	return rt, ok
}

// dropRoute removes a route entry (eviction, or a 404 observed from
// the owning worker — the worker discarded the session, so the route
// is stale and the next touch may resurrect from a park).
func (g *Gateway) dropRoute(id string) {
	g.mu.Lock()
	delete(g.routes, id)
	g.mu.Unlock()
}

// wireClient returns the pooled wire connection to a worker, dialing
// lazily.
func (g *Gateway) wireClient(workerID string) (*wire.Client, error) {
	g.wcMu.Lock()
	defer g.wcMu.Unlock()
	if c, ok := g.wireClients[workerID]; ok {
		return c, nil
	}
	w, ok := g.worker(workerID)
	if !ok {
		return nil, fmt.Errorf("gate: unknown worker %s", workerID)
	}
	if w.WireAddr == "" {
		return nil, fmt.Errorf("gate: worker %s has no wire listener", workerID)
	}
	c, err := wire.Dial(w.WireAddr)
	if err != nil {
		return nil, fmt.Errorf("gate: dialing worker %s wire plane: %w", workerID, err)
	}
	c.Timeout = g.cfg.ProxyTimeout
	g.wireClients[workerID] = c
	return c, nil
}

// dropWireClient discards the pooled connection to a worker (after a
// transport error or re-registration).
func (g *Gateway) dropWireClient(workerID string) {
	g.wcMu.Lock()
	c, ok := g.wireClients[workerID]
	if ok {
		delete(g.wireClients, workerID)
	}
	g.wcMu.Unlock()
	if ok {
		c.Close()
	}
}

// mintID returns a fresh globally-routable session id.
func (g *Gateway) mintID() string {
	g.mu.Lock()
	g.nextID++
	n := g.nextID
	g.mu.Unlock()
	return fmt.Sprintf("g%s-%06d", g.nonce, n)
}
