package gate

import (
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over worker ids. Each member owns
// Replicas virtual points on a 64-bit circle; a key routes to the
// member owning the first point clockwise of the key's hash. Adding
// or removing one member therefore moves only the keys in the arcs
// that member's points cover — about 1/N of the keyspace — which is
// what lets the gateway grow or shrink the fleet without reshuffling
// every session placement (TestRingMinimalDisruption pins this).
//
// Ring is not safe for concurrent use; the Gateway serializes access
// under its own mutex.
type Ring struct {
	replicas int
	members  map[string]bool
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	owner string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (0 selects the default, 64).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &Ring{replicas: replicas, members: make(map[string]bool)}
}

// ringHash hashes a key onto the circle: FNV-1a for the string, then
// a splitmix64 finalizer. Raw FNV clusters badly on short, similar
// strings (session ids and vnode labels differ in a few trailing
// characters), which skews placement; the finalizer restores uniform
// dispersion while staying deterministic and dependency-free.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// vnodeHash places one of a member's virtual points: the member's
// base hash advanced by a Weyl step per replica, re-finalized.
func vnodeHash(id string, i int) uint64 {
	return mix64(ringHash(id) + uint64(i)*0x9E3779B97F4A7C15)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Add inserts a member (idempotent).
func (r *Ring) Add(id string) {
	if r.members[id] {
		return
	}
	r.members[id] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{vnodeHash(id, i), id})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Equal hashes (vanishingly rare): deterministic owner order so
		// every gateway resolves the tie the same way.
		return r.points[i].owner < r.points[j].owner
	})
}

// Remove deletes a member (idempotent).
func (r *Ring) Remove(id string) {
	if !r.members[id] {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.owner != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(id string) bool { return r.members[id] }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the member ids, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the member owning the key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	owners := r.LookupN(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// LookupN returns up to n distinct members in preference order for
// the key: the owner first, then the next distinct members clockwise.
// This is the failover/migration-target order — the key's placement
// moves down this list as members drop out.
func (r *Ring) LookupN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.owner] {
			seen[p.owner] = true
			out = append(out, p.owner)
		}
	}
	return out
}
