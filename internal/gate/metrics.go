package gate

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics is the gateway's hand-rolled Prometheus instrumentation,
// in the same stdlib-only style as the worker's (internal/server):
// atomic counters plus scrape-time gauges.
type Metrics struct {
	ProxiedHTTP     atomic.Uint64 // HTTP requests forwarded to a worker
	ProxiedWire     atomic.Uint64 // wire frames forwarded to a worker
	ProxyErrors     atomic.Uint64 // forwards that failed to reach a worker
	BackpressHTTP   atomic.Uint64 // worker 429s propagated to clients
	BackpressWire   atomic.Uint64 // worker backpressure NACKs propagated
	SessionsCreated atomic.Uint64 // sessions placed through the gateway
	SessionsEvicted atomic.Uint64 // sessions deleted through the gateway

	MigrationsDrain     atomic.Uint64 // migrate-out of a draining worker
	MigrationsRebalance atomic.Uint64 // admin-requested migrations
	MigrationsResurrect atomic.Uint64 // parked sessions restored on touch
	MigrationFailures   atomic.Uint64

	WireConnections atomic.Uint64 // client wire connections accepted
	HealthProbes    atomic.Uint64 // worker health checks issued

	// Scrape-time gauges, wired by the Gateway.
	Workers func() map[string]int // worker count by state
	Routes  func() int            // routed sessions
}

// NewMetrics returns a zeroed metrics set.
func NewMetrics() *Metrics { return &Metrics{} }

// migrations returns the total across reasons.
func (m *Metrics) migrations() uint64 {
	return m.MigrationsDrain.Load() + m.MigrationsRebalance.Load() + m.MigrationsResurrect.Load()
}

// Render writes every metric in the Prometheus text exposition
// format.
func (m *Metrics) Render(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	if m.Workers != nil {
		byState := m.Workers()
		fmt.Fprintf(w, "# HELP osmgate_workers Registered workers by state.\n")
		fmt.Fprintf(w, "# TYPE osmgate_workers gauge\n")
		for _, st := range workerStates {
			fmt.Fprintf(w, "osmgate_workers{state=%q} %d\n", st, byState[string(st)])
		}
	}
	routes := 0
	if m.Routes != nil {
		routes = m.Routes()
	}
	fmt.Fprintf(w, "# HELP osmgate_sessions_routed Sessions with a live route entry.\n")
	fmt.Fprintf(w, "# TYPE osmgate_sessions_routed gauge\nosmgate_sessions_routed %d\n", routes)

	fmt.Fprintf(w, "# HELP osmgate_proxied_requests_total Requests forwarded to workers, by plane.\n")
	fmt.Fprintf(w, "# TYPE osmgate_proxied_requests_total counter\n")
	fmt.Fprintf(w, "osmgate_proxied_requests_total{plane=\"http\"} %d\n", m.ProxiedHTTP.Load())
	fmt.Fprintf(w, "osmgate_proxied_requests_total{plane=\"wire\"} %d\n", m.ProxiedWire.Load())

	fmt.Fprintf(w, "# HELP osmgate_backpressure_total Worker backpressure propagated to clients, by plane.\n")
	fmt.Fprintf(w, "# TYPE osmgate_backpressure_total counter\n")
	fmt.Fprintf(w, "osmgate_backpressure_total{plane=\"http\"} %d\n", m.BackpressHTTP.Load())
	fmt.Fprintf(w, "osmgate_backpressure_total{plane=\"wire\"} %d\n", m.BackpressWire.Load())

	fmt.Fprintf(w, "# HELP osmgate_migrations_total Completed session migrations, by reason.\n")
	fmt.Fprintf(w, "# TYPE osmgate_migrations_total counter\n")
	fmt.Fprintf(w, "osmgate_migrations_total{reason=\"drain\"} %d\n", m.MigrationsDrain.Load())
	fmt.Fprintf(w, "osmgate_migrations_total{reason=\"rebalance\"} %d\n", m.MigrationsRebalance.Load())
	fmt.Fprintf(w, "osmgate_migrations_total{reason=\"resurrect\"} %d\n", m.MigrationsResurrect.Load())

	counter("osmgate_migration_failures_total", "Migrations that failed and were rolled back.", m.MigrationFailures.Load())
	counter("osmgate_proxy_errors_total", "Forwards that failed to reach their worker.", m.ProxyErrors.Load())
	counter("osmgate_sessions_created_total", "Sessions placed through the gateway.", m.SessionsCreated.Load())
	counter("osmgate_sessions_evicted_total", "Sessions deleted through the gateway.", m.SessionsEvicted.Load())
	counter("osmgate_wire_connections_total", "Client wire connections accepted.", m.WireConnections.Load())
	counter("osmgate_health_probes_total", "Worker health probes issued.", m.HealthProbes.Load())
}
