package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/server"
)

// maxProxyBody bounds forwarded request bodies, matching the worker's
// own limit.
const maxProxyBody = 64 << 20

// WorkerHeader names the response header the gateway stamps with the
// id of the worker that served a forwarded request. Tests and
// operators use it to observe placements and migrations.
const WorkerHeader = "X-Osmgate-Worker"

func timeoutCtx(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// Handler returns the gateway's HTTP API. The session surface is the
// worker API verbatim — a client speaks to the gateway exactly as it
// would to one osmserve — plus the fleet control plane:
//
//	POST /v1/workers        register a worker {id, addr, wire_addr}
//	GET  /v1/workers        registry snapshot
//	POST /v1/workers/drain  migrate a worker's sessions out {worker}
//	POST /v1/admin/migrate  move one session {session, to}
//	GET  /healthz           gateway liveness + fleet summary
//	GET  /metrics           Prometheus text
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("POST /v1/workers", g.handleRegister)
	mux.HandleFunc("GET /v1/workers", g.handleWorkers)
	mux.HandleFunc("POST /v1/workers/drain", g.handleWorkerDrain)
	mux.HandleFunc("POST /v1/admin/migrate", g.handleAdminMigrate)
	mux.HandleFunc("POST /v1/sessions", g.handleCreate)
	mux.HandleFunc("GET /v1/sessions", g.handleList)
	mux.HandleFunc("/v1/sessions/{id}", g.handleSession)
	mux.HandleFunc("/v1/sessions/{id}/{op}", g.handleSession)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	byState := g.workersByState()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"workers":  byState[string(WorkerHealthy)],
		"sessions": g.RouteCount(),
	})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g.Metrics.Render(w)
}

func (g *Gateway) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID       string `json:"id"`
		Addr     string `json:"addr"`
		WireAddr string `json:"wire_addr"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	wk, err := g.Register(req.ID, req.Addr, req.WireAddr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, wk)
}

func (g *Gateway) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": g.Workers()})
}

// handleWorkerDrain migrates every routed session off the worker and
// marks it gone. Synchronous: a draining worker POSTs here on SIGTERM
// and can shut down the moment the response arrives, because by then
// it hosts no sessions the gateway cares about.
func (g *Gateway) handleWorkerDrain(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Worker string `json:"worker"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	moved, err := g.DrainWorker(req.Worker)
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "drained", "worker": req.Worker, "migrated": moved})
}

func (g *Gateway) handleAdminMigrate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		To      string `json:"to,omitempty"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	from, to, err := g.Migrate(req.Session, req.To, "rebalance")
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, errNoRoute) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "migrated", "session": req.Session, "from": from, "to": to,
	})
}

// handleCreate places a new session: mint a globally-routable id, walk
// the ring's preference order, and hand the spec to the first healthy
// worker that admits it. Worker backpressure (429/503) falls through
// to the next candidate; only when every candidate refuses does the
// client see 429 with Retry-After.
func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	var req server.CreateRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if req.ID != "" {
		writeError(w, http.StatusBadRequest, "the gateway assigns session ids; omit id")
		return
	}
	if err := req.Spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	id := g.mintID()
	req.ID = id
	placed, err := json.Marshal(&req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	candidates := g.placementOrder(id)
	if len(candidates) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no healthy workers registered")
		return
	}
	sawBackpressure := false
	for _, cand := range candidates {
		status, hdr, respBody, err := g.do(http.MethodPost, cand.Addr+"/v1/sessions", "application/json", placed)
		if err != nil {
			g.Metrics.ProxyErrors.Add(1)
			g.logf("create %s on %s: %v", id, cand.ID, err)
			continue
		}
		g.Metrics.ProxiedHTTP.Add(1)
		switch status {
		case http.StatusCreated:
			rt := &route{worker: cand.ID, create: placed}
			g.mu.Lock()
			g.routes[id] = rt
			g.mu.Unlock()
			g.Metrics.SessionsCreated.Add(1)
			g.logf("session %s placed on %s", id, cand.ID)
			relay(w, status, hdr, respBody, cand.ID)
			return
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			sawBackpressure = true
			continue
		default:
			// A client error (bad spec the gateway's validation missed):
			// no other worker will decide differently.
			relay(w, status, hdr, respBody, cand.ID)
			return
		}
	}
	if sawBackpressure {
		g.Metrics.BackpressHTTP.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "all workers at session capacity")
		return
	}
	writeError(w, http.StatusBadGateway, "no worker reachable for placement")
}

// handleList aggregates the session lists of every serving worker.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	var targets []Worker
	for _, wk := range g.workers {
		if wk.State == WorkerHealthy || wk.State == WorkerDraining {
			targets = append(targets, *wk)
		}
	}
	g.mu.Unlock()

	var all []server.Info
	for _, wk := range targets {
		status, _, body, err := g.do(http.MethodGet, wk.Addr+"/v1/sessions", "", nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		var resp struct {
			Sessions []server.Info `json:"sessions"`
		}
		if json.Unmarshal(body, &resp) == nil {
			all = append(all, resp.Sessions...)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"sessions": all})
}

// handleSession forwards one session-scoped request to the owning
// worker under the route's read lock — the migration barrier. A
// session with no live route may be parked; touching it resurrects it
// first (restore-on-touch).
func (g *Gateway) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}

	if r.Method == http.MethodDelete && r.PathValue("op") == "" {
		g.handleDelete(w, r, id)
		return
	}

	// Two attempts: if the owning worker answers 404 the route was
	// stale (the worker idle-evicted, possibly parking, the session) —
	// drop it and try once more, which resurrects from the park. The
	// client never sees the intermediate 404.
	for attempt := 0; ; attempt++ {
		rt, err := g.ensureRoute(id)
		if err != nil {
			if errors.Is(err, errNoRoute) {
				writeError(w, http.StatusNotFound, "session "+id+" not found")
			} else {
				writeError(w, http.StatusBadGateway, err.Error())
			}
			return
		}
		status := g.forward(w, r, rt, id, body, attempt == 0)
		if status == http.StatusNotFound && attempt == 0 {
			g.dropRoute(id)
			continue
		}
		return
	}
}

// handleDelete evicts a session wherever it lives: on its worker (via
// forward), or parked on disk (consume the park).
func (g *Gateway) handleDelete(w http.ResponseWriter, r *http.Request, id string) {
	if rt, ok := g.getRoute(id); ok {
		status := g.forward(w, r, rt, id, nil, true)
		switch {
		case status == http.StatusOK:
			g.dropRoute(id)
			g.Metrics.SessionsEvicted.Add(1)
			return
		case status == http.StatusNotFound:
			// Stale route — the worker already evicted it. Fall through
			// to the park so a parked copy is cleaned up too.
			g.dropRoute(id)
		default:
			return // relayed as-is (error or backpressure)
		}
	}
	if g.cfg.ParkDir != "" {
		if err := server.ConsumePark(g.cfg.ParkDir, id); err == nil {
			g.Metrics.SessionsEvicted.Add(1)
			writeJSON(w, http.StatusOK, map[string]string{"status": "evicted"})
			return
		}
	}
	writeError(w, http.StatusNotFound, "session "+id+" not found")
}

// forward proxies the incoming request to the session's worker under
// the route read lock and relays the response, returning the upstream
// status (0 when unreachable). With retryOn404 set, a 404 response is
// swallowed — not relayed — so the caller can drop the stale route
// and retry against a resurrected placement.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, rt *route, session string, body []byte, retryOn404 bool) int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if rt.dead || rt.worker == "" {
		if !retryOn404 {
			writeError(w, http.StatusNotFound, "session "+session+" not found")
		}
		return http.StatusNotFound
	}
	workerID := rt.worker
	wk, ok := g.worker(workerID)
	if !ok {
		writeError(w, http.StatusBadGateway, "session "+session+" routed to unknown worker "+workerID)
		return 0
	}
	url := wk.Addr + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	status, hdr, respBody, err := g.doMethod(r.Method, url, r.Header.Get("Content-Type"), body)
	if err != nil {
		g.Metrics.ProxyErrors.Add(1)
		writeError(w, http.StatusBadGateway, fmt.Sprintf("worker %s unreachable: %v", workerID, err))
		return 0
	}
	g.Metrics.ProxiedHTTP.Add(1)
	if status == http.StatusTooManyRequests {
		g.Metrics.BackpressHTTP.Add(1)
		if hdr.Get("Retry-After") == "" {
			hdr.Set("Retry-After", "1")
		}
	}
	if status == http.StatusNotFound && retryOn404 {
		return status
	}
	relay(w, status, hdr, respBody, workerID)
	return status
}

// relay writes an upstream response to the client, stamping the
// serving worker.
func relay(w http.ResponseWriter, status int, hdr http.Header, body []byte, workerID string) {
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := hdr.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	for k, vs := range hdr {
		if strings.HasPrefix(k, "X-Osm-") {
			w.Header()[k] = vs
		}
	}
	w.Header().Set(WorkerHeader, workerID)
	w.WriteHeader(status)
	w.Write(body)
}

// do issues one bounded request with an optional body.
func (g *Gateway) do(method, url, contentType string, body []byte) (int, http.Header, []byte, error) {
	return g.doMethod(method, url, contentType, body)
}

func (g *Gateway) doMethod(method, url, contentType string, body []byte) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	ctx, cancel := timeoutCtx(g.cfg.ProxyTimeout)
	defer cancel()
	resp, err := g.hc.Do(req.WithContext(ctx))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}
