package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/osm"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/wire"
)

// diffSpecs mirrors the server package's differential matrix: both
// case studies, long enough to cross many scheduler quanta.
var diffSpecs = []runner.Spec{
	{Target: "strongarm", Workload: "gsm/dec", N: 60},
	{Target: "ppc750", Workload: "spec/crc", N: 50},
}

// ---- in-process reference runs ----

type refRun struct {
	cycles   uint64
	reported []uint32
	regs     []runner.Reg
	checksum string
}

func runRef(t testing.TB, spec runner.Spec) refRun {
	t.Helper()
	inst, err := runner.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := osm.NewRecorder()
	rec.Limit = 1024
	inst.Director().Tracer = rec
	for !inst.Done() {
		if inst.Cycle() > 20_000_000 {
			t.Fatal("reference run too long")
		}
		if err := inst.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := inst.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return refRun{
		cycles:   res.Cycles,
		reported: res.Reported,
		regs:     inst.Registers(),
		checksum: fmt.Sprintf("%016x", rec.Checksum()),
	}
}

// ---- fabric harness: real workers, real gateway, both planes ----

type testWorker struct {
	id       string
	mgr      *server.Manager
	hs       *httptest.Server
	wireAddr string
}

func startWorker(t testing.TB, id string, cfg server.Config) *testWorker {
	t.Helper()
	mgr := server.NewManager(cfg)
	mgr.Start()
	hs := httptest.NewServer(mgr.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := server.NewWireServer(mgr)
	go ws.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		ws.Shutdown(ctx)
		cancel()
		hs.Close()
		mgr.Close()
	})
	return &testWorker{id: id, mgr: mgr, hs: hs, wireAddr: ln.Addr().String()}
}

type fabric struct {
	g        *Gateway
	hs       *httptest.Server
	wireAddr string
	cl       *gclient
}

func startFabric(t testing.TB, cfg Config, workers ...*testWorker) *fabric {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 50 * time.Millisecond
	}
	cfg.Logf = t.Logf
	g := New(cfg)
	g.Start()
	hs := httptest.NewServer(g.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wp := NewWireProxy(g)
	go wp.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		wp.Shutdown(ctx)
		cancel()
		hs.Close()
		g.Close()
	})
	for _, w := range workers {
		wk, err := g.Register(w.id, w.hs.URL, w.wireAddr)
		if err != nil {
			t.Fatal(err)
		}
		if wk.State != WorkerHealthy {
			t.Fatalf("worker %s registered in state %s, want healthy", w.id, wk.State)
		}
	}
	f := &fabric{g: g, hs: hs, wireAddr: ln.Addr().String()}
	f.cl = &gclient{t: t, base: hs.URL, hc: hs.Client()}
	return f
}

func dialWire(t testing.TB, addr string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 60 * time.Second
	t.Cleanup(func() { c.Close() })
	return c
}

// gclient drives the gateway's HTTP plane.
type gclient struct {
	t    testing.TB
	base string
	hc   *http.Client
}

func (c *gclient) do(method, path string, body []byte, contentType string) (*http.Response, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		c.t.Fatal(err)
	}
	return resp, data
}

func (c *gclient) doJSON(method, path string, reqBody, out any) (*http.Response, []byte) {
	c.t.Helper()
	var body []byte
	if reqBody != nil {
		var err error
		body, err = json.Marshal(reqBody)
		if err != nil {
			c.t.Fatal(err)
		}
	}
	resp, data := c.do(method, path, body, "application/json")
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			c.t.Fatalf("%s %s: bad JSON %q: %v", method, path, data, err)
		}
	}
	return resp, data
}

func (c *gclient) create(spec runner.Spec) (server.Info, string) {
	c.t.Helper()
	var info server.Info
	resp, data := c.doJSON("POST", "/v1/sessions", server.CreateRequest{Spec: spec}, &info)
	if resp.StatusCode != http.StatusCreated {
		c.t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}
	return info, resp.Header.Get(WorkerHeader)
}

func (c *gclient) step(id string, cycles uint64) server.StepResult {
	c.t.Helper()
	var res server.StepResult
	resp, data := c.doJSON("POST", "/v1/sessions/"+id+"/step", server.StepRequest{Cycles: cycles}, &res)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("step %s: status %d: %s", id, resp.StatusCode, data)
	}
	return res
}

// infoAt returns the session info plus the worker that served it.
func (c *gclient) infoAt(id string) (server.Info, string) {
	c.t.Helper()
	var info server.Info
	resp, data := c.doJSON("GET", "/v1/sessions/"+id, nil, &info)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("info %s: status %d: %s", id, resp.StatusCode, data)
	}
	return info, resp.Header.Get(WorkerHeader)
}

func (c *gclient) registers(id string) []runner.Reg {
	c.t.Helper()
	var out struct {
		Registers []runner.Reg `json:"registers"`
	}
	resp, data := c.doJSON("GET", "/v1/sessions/"+id+"/registers", nil, &out)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("registers %s: status %d: %s", id, resp.StatusCode, data)
	}
	return out.Registers
}

func (c *gclient) metrics() string {
	c.t.Helper()
	resp, data := c.do("GET", "/metrics", nil, "")
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	return string(data)
}

// metricValue extracts one metric sample (the name may carry labels).
func metricValue(t testing.TB, text, name string) uint64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, text)
	}
	v, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func compareRegs(t testing.TB, label string, want, got []runner.Reg) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d registers, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: register %s = %#x, want %s = %#x",
				label, got[i].Name, got[i].Value, want[i].Name, want[i].Value)
		}
	}
}

// ---- the differential migration test ----

// A session driven through the gateway — alternating the HTTP and
// wire planes — with one forced migration at a random cut point must
// be byte-identical to the in-process run: cycles, registers,
// reported values, and the whole-run trace checksum.
func TestDifferentialGatewayMigration(t *testing.T) {
	for _, spec := range diffSpecs {
		spec := spec
		t.Run(spec.Target, func(t *testing.T) {
			ref := runRef(t, spec)
			wA := startWorker(t, "wA", server.Config{IdleTimeout: -1})
			wB := startWorker(t, "wB", server.Config{IdleTimeout: -1})
			f := startFabric(t, Config{}, wA, wB)
			wc := dialWire(t, f.wireAddr)

			info, firstWorker := f.cl.create(spec)
			id := info.ID
			if firstWorker != "wA" && firstWorker != "wB" {
				t.Fatalf("created on unknown worker %q", firstWorker)
			}

			seed := time.Now().UnixNano()
			rnd := rand.New(rand.NewSource(seed))
			cut := 1 + uint64(rnd.Int63n(int64(ref.cycles-1)))
			t.Logf("%s: %d-cycle run, migration cut at %d (seed %d)", spec.Target, ref.cycles, cut, seed)

			// Step to the cut, alternating planes.
			cycle, useWire := uint64(0), false
			for cycle < cut {
				chunk := cut - cycle
				if chunk > 1000 {
					chunk = 1000
				}
				if useWire {
					resp, err := wc.Step(id, chunk, 0)
					if err != nil {
						t.Fatalf("wire step: %v", err)
					}
					cycle = resp.Cycle
				} else {
					cycle = f.cl.step(id, chunk).Cycle
				}
				useWire = !useWire
			}
			if cycle != cut {
				t.Fatalf("stepped to %d, want cut %d", cycle, cut)
			}

			// Force the migration.
			_, before := f.cl.infoAt(id)
			var mig struct {
				From string `json:"from"`
				To   string `json:"to"`
			}
			resp, data := f.cl.doJSON("POST", "/v1/admin/migrate",
				map[string]string{"session": id}, &mig)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("migrate: status %d: %s", resp.StatusCode, data)
			}
			if mig.From != before || mig.To == mig.From {
				t.Fatalf("migrated %s->%s, was on %s", mig.From, mig.To, before)
			}
			if _, after := f.cl.infoAt(id); after != mig.To {
				t.Fatalf("post-migration requests served by %s, want %s", after, mig.To)
			}

			// Drive to completion, still alternating planes.
			var final server.StepResult
			for i := 0; ; i++ {
				if i > 10_000 {
					t.Fatal("session did not finish")
				}
				if useWire {
					resp, err := wc.Step(id, 1000, 0)
					if err != nil {
						t.Fatalf("wire step: %v", err)
					}
					if resp.Done {
						final = server.StepResult{Cycle: resp.Cycle, Done: true,
							Result: &runner.Result{Instrs: resp.Instrs, Reported: resp.Reported}}
						break
					}
				} else {
					res := f.cl.step(id, 1000)
					if res.Done {
						final = res
						break
					}
				}
				useWire = !useWire
			}

			if final.Cycle != ref.cycles {
				t.Fatalf("gateway run took %d cycles, in-process %d", final.Cycle, ref.cycles)
			}
			if fmt.Sprint(final.Result.Reported) != fmt.Sprint(ref.reported) {
				t.Fatalf("reported %v, want %v", final.Result.Reported, ref.reported)
			}
			compareRegs(t, spec.Target, ref.regs, f.cl.registers(id))
			endInfo, _ := f.cl.infoAt(id)
			if endInfo.TraceChecksum != ref.checksum {
				t.Fatalf("trace checksum %s across migration, want %s", endInfo.TraceChecksum, ref.checksum)
			}
			// The wire plane agrees with the HTTP plane on the trace.
			tr, err := wc.Trace(id, ^uint64(0))
			if err != nil {
				t.Fatalf("wire trace: %v", err)
			}
			if got := fmt.Sprintf("%016x", tr.Checksum); got != ref.checksum {
				t.Fatalf("wire trace checksum %s, want %s", got, ref.checksum)
			}

			mtext := f.cl.metrics()
			if v := metricValue(t, mtext, `osmgate_migrations_total{reason="rebalance"}`); v != 1 {
				t.Fatalf("rebalance migrations = %d, want 1", v)
			}
			if v := metricValue(t, mtext, "osmgate_migration_failures_total"); v != 0 {
				t.Fatalf("migration failures = %d", v)
			}
		})
	}
}

// ---- drain under load ----

// driveToDone steps a session through the gateway until done,
// alternating planes and retrying on backpressure. Goroutine-safe: it
// reports failures as errors instead of t.Fatal.
func driveToDone(f *fabric, wc *wire.Client, id string, chunk uint64) (server.StepResult, error) {
	useWire := false
	for i := 0; i < 100_000; i++ {
		var (
			res  server.StepResult
			err  error
			code = 0
		)
		if useWire {
			var resp wire.StepResponse
			resp, err = wc.Step(id, chunk, 0)
			if err == nil {
				res = server.StepResult{Cycle: resp.Cycle, Done: resp.Done}
				if resp.HasResult {
					res.Result = &runner.Result{Instrs: resp.Instrs, Reported: resp.Reported}
				}
			} else {
				var nerr *wire.NackError
				if errors.As(err, &nerr) && (nerr.Code == wire.NackBackpressure || nerr.Code == wire.NackDraining) {
					code = http.StatusTooManyRequests
				}
			}
		} else {
			var body []byte
			body, err = json.Marshal(server.StepRequest{Cycles: chunk})
			if err == nil {
				req, rerr := http.NewRequest("POST", f.cl.base+"/v1/sessions/"+id+"/step", bytes.NewReader(body))
				if rerr != nil {
					return server.StepResult{}, rerr
				}
				req.Header.Set("Content-Type", "application/json")
				resp, derr := f.cl.hc.Do(req)
				if derr != nil {
					return server.StepResult{}, derr
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				code = resp.StatusCode
				if code == http.StatusOK {
					err = json.Unmarshal(data, &res)
				} else {
					err = fmt.Errorf("step %s: status %d: %s", id, code, data)
				}
			}
		}
		useWire = !useWire
		switch {
		case err == nil:
			if res.Done {
				return res, nil
			}
		case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
			time.Sleep(20 * time.Millisecond) // backpressure: retry
		default:
			return server.StepResult{}, err
		}
	}
	return server.StepResult{}, fmt.Errorf("session %s did not finish", id)
}

// Draining one of two workers in the middle of concurrent mixed-plane
// load must lose no running session, and the gateway metrics must
// reconcile exactly afterwards.
func TestWorkerDrainLosesNoSession(t *testing.T) {
	spec := diffSpecs[0]
	ref := runRef(t, spec)
	wA := startWorker(t, "wA", server.Config{IdleTimeout: -1})
	wB := startWorker(t, "wB", server.Config{IdleTimeout: -1})
	f := startFabric(t, Config{}, wA, wB)
	wc := dialWire(t, f.wireAddr)

	const n = 6
	ids := make([]string, n)
	for i := range ids {
		info, _ := f.cl.create(spec)
		ids[i] = info.ID
	}

	var wg sync.WaitGroup
	finals := make([]server.StepResult, n)
	errs := make([]error, n)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			finals[i], errs[i] = driveToDone(f, wc, id, 500)
		}(i, id)
	}

	// Let the load get going, then pull worker A out from under it.
	time.Sleep(50 * time.Millisecond)
	var drained struct {
		Migrated int `json:"migrated"`
	}
	resp, data := f.cl.doJSON("POST", "/v1/workers/drain", map[string]string{"worker": "wA"}, &drained)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d: %s", resp.StatusCode, data)
	}
	wg.Wait()

	for i, id := range ids {
		if errs[i] != nil {
			t.Fatalf("session %s: %v", id, errs[i])
		}
		if finals[i].Cycle != ref.cycles {
			t.Fatalf("session %s finished at %d cycles, want %d", id, finals[i].Cycle, ref.cycles)
		}
		if finals[i].Result == nil || fmt.Sprint(finals[i].Result.Reported) != fmt.Sprint(ref.reported) {
			t.Fatalf("session %s reported %v, want %v", id, finals[i].Result, ref.reported)
		}
		info, at := f.cl.infoAt(id)
		if at != "wB" {
			t.Fatalf("session %s served by %s after drain, want wB", id, at)
		}
		if info.TraceChecksum != ref.checksum {
			t.Fatalf("session %s trace checksum %s, want %s", id, info.TraceChecksum, ref.checksum)
		}
	}
	if got := wA.mgr.LiveCount(); got != 0 {
		t.Fatalf("drained worker still hosts %d sessions", got)
	}

	// Metrics reconcile exactly.
	mtext := f.cl.metrics()
	if v := metricValue(t, mtext, "osmgate_sessions_created_total"); v != n {
		t.Fatalf("sessions created = %d, want %d", v, n)
	}
	if v := metricValue(t, mtext, `osmgate_migrations_total{reason="drain"}`); v != uint64(drained.Migrated) {
		t.Fatalf("drain migrations metric %d, drain response reported %d", v, drained.Migrated)
	}
	if v := metricValue(t, mtext, "osmgate_migration_failures_total"); v != 0 {
		t.Fatalf("migration failures = %d", v)
	}
	if v := metricValue(t, mtext, "osmgate_proxy_errors_total"); v != 0 {
		t.Fatalf("proxy errors = %d", v)
	}
	if v := metricValue(t, mtext, `osmgate_workers{state="healthy"}`); v != 1 {
		t.Fatalf("healthy workers = %d, want 1", v)
	}
	if v := metricValue(t, mtext, `osmgate_workers{state="gone"}`); v != 1 {
		t.Fatalf("gone workers = %d, want 1", v)
	}

	// Evict everything through the gateway: the fabric's books close.
	for _, id := range ids {
		if resp, data := f.cl.do("DELETE", "/v1/sessions/"+id, nil, ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("delete %s: status %d: %s", id, resp.StatusCode, data)
		}
	}
	mtext = f.cl.metrics()
	if v := metricValue(t, mtext, "osmgate_sessions_evicted_total"); v != n {
		t.Fatalf("sessions evicted = %d, want %d", v, n)
	}
	if v := metricValue(t, mtext, "osmgate_sessions_routed"); v != 0 {
		t.Fatalf("sessions routed = %d after evicting all", v)
	}
}

// ---- backpressure propagation ----

func TestBackpressurePropagation(t *testing.T) {
	w := startWorker(t, "w1", server.Config{MaxSessions: 1, IdleTimeout: -1})
	f := startFabric(t, Config{}, w)
	spec := runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 20}

	f.cl.create(spec)
	resp, data := f.cl.doJSON("POST", "/v1/sessions", server.CreateRequest{Spec: spec}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("2nd create: status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("propagated 429 without Retry-After")
	}
	if v := metricValue(t, f.cl.metrics(), `osmgate_backpressure_total{plane="http"}`); v != 1 {
		t.Fatalf("http backpressure metric = %d, want 1", v)
	}
}

// A worker-side eviction behind the gateway's back surfaces as
// not-found on both planes (no park configured), after the gateway
// drops the stale route.
func TestStaleRouteNackPassthrough(t *testing.T) {
	w := startWorker(t, "w1", server.Config{IdleTimeout: -1})
	f := startFabric(t, Config{}, w)
	wc := dialWire(t, f.wireAddr)
	spec := runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 20}

	info, _ := f.cl.create(spec)
	id := info.ID
	if _, err := wc.Step(id, 10, 0); err != nil {
		t.Fatalf("wire step through gateway: %v", err)
	}

	// Evict directly on the worker, bypassing the gateway.
	req, _ := http.NewRequest("DELETE", w.hs.URL+"/v1/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil || dresp.StatusCode != http.StatusOK {
		t.Fatalf("direct evict: %v status %v", err, dresp.Status)
	}
	dresp.Body.Close()

	var nerr *wire.NackError
	if _, err := wc.Step(id, 10, 0); !errors.As(err, &nerr) || nerr.Code != wire.NackNotFound {
		t.Fatalf("wire step after eviction: %v, want not-found NACK", err)
	}
	if resp, _ := f.cl.do("GET", "/v1/sessions/"+id, nil, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HTTP info after eviction: status %d, want 404", resp.StatusCode)
	}
	if f.g.RouteCount() != 0 {
		t.Fatalf("stale route not dropped: %d routes", f.g.RouteCount())
	}
}

// ---- park and resurrect ----

// An idle-evicted session parks its snapshot; the next touch through
// the gateway resurrects it — transparently, with full trace
// continuity — and consumes the park metadata.
func TestParkAndResurrect(t *testing.T) {
	spec := diffSpecs[0]
	ref := runRef(t, spec)
	dir := t.TempDir()
	w := startWorker(t, "w1", server.Config{IdleTimeout: 250 * time.Millisecond, ParkDir: dir})
	f := startFabric(t, Config{ParkDir: dir}, w)

	info, _ := f.cl.create(spec)
	id := info.ID
	cut := ref.cycles / 2
	if res := f.cl.step(id, cut); res.Cycle != cut {
		t.Fatalf("stepped to %d, want %d", res.Cycle, cut)
	}

	// Wait for the janitor to evict and park.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, err := server.LoadPark(dir, id); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session was never parked")
		}
		time.Sleep(20 * time.Millisecond)
	}
	meta, blob, err := server.LoadPark(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Cycle != cut {
		t.Fatalf("parked at cycle %d, want %d", meta.Cycle, cut)
	}
	if got := server.BlobChecksum(blob); got != meta.Checksum {
		t.Fatalf("park blob checksum %s, metadata says %s", got, meta.Checksum)
	}
	if w.mgr.LiveCount() != 0 {
		t.Fatal("worker still hosts the parked session")
	}

	// Touch through the gateway: transparent resurrection.
	got, at := f.cl.infoAt(id)
	if got.Cycle != cut {
		t.Fatalf("resurrected at cycle %d, want %d", got.Cycle, cut)
	}
	if at != "w1" {
		t.Fatalf("resurrected on %q", at)
	}
	if _, _, err := server.LoadPark(dir, id); err == nil {
		t.Fatal("park metadata not consumed by resurrection")
	}
	if v := metricValue(t, f.cl.metrics(), `osmgate_migrations_total{reason="resurrect"}`); v != 1 {
		t.Fatalf("resurrect metric = %d, want 1", v)
	}

	// Finish the run: identical to an uninterrupted in-process run.
	var final server.StepResult
	for i := 0; ; i++ {
		if i > 10_000 {
			t.Fatal("session did not finish")
		}
		final = f.cl.step(id, 2000)
		if final.Done {
			break
		}
	}
	if final.Cycle != ref.cycles {
		t.Fatalf("finished at %d cycles, want %d", final.Cycle, ref.cycles)
	}
	if fmt.Sprint(final.Result.Reported) != fmt.Sprint(ref.reported) {
		t.Fatalf("reported %v, want %v", final.Result.Reported, ref.reported)
	}
	endInfo, _ := f.cl.infoAt(id)
	if endInfo.TraceChecksum != ref.checksum {
		t.Fatalf("trace checksum %s across park+resurrect, want %s", endInfo.TraceChecksum, ref.checksum)
	}
}

// ---- gateway restart: migrate sessions the gateway did not place ----

// A gateway restarted between session creation and worker drain has
// no route table and no recorded create bodies. Draining a worker
// through the new gateway must still migrate every resident session —
// routes are adopted from the worker's own session list and create
// bodies re-derived from session info — and the finished runs must be
// trace-checksum-identical to uninterrupted in-process runs.
func TestDifferentialDrainAfterGatewayRestart(t *testing.T) {
	for _, spec := range diffSpecs {
		spec := spec
		t.Run(spec.Target, func(t *testing.T) {
			ref := runRef(t, spec)
			wA := startWorker(t, "wA", server.Config{IdleTimeout: -1})
			wB := startWorker(t, "wB", server.Config{IdleTimeout: -1})

			// Gateway #1 places sessions on both workers and steps
			// them partway.
			f1 := startFabric(t, Config{}, wA, wB)
			cut := ref.cycles / 2
			byWorker := map[string][]string{}
			var ids []string
			for i := 0; i < 16 && (len(byWorker["wA"]) == 0 || len(byWorker["wB"]) == 0); i++ {
				info, at := f1.cl.create(spec)
				byWorker[at] = append(byWorker[at], info.ID)
				ids = append(ids, info.ID)
				if res := f1.cl.step(info.ID, cut); res.Cycle != cut {
					t.Fatalf("stepped to %d, want %d", res.Cycle, cut)
				}
			}
			if len(byWorker["wA"]) == 0 || len(byWorker["wB"]) == 0 {
				t.Fatalf("placement never used both workers: %v", byWorker)
			}
			t.Logf("placed %d sessions (%d on wA, %d on wB), cut at %d",
				len(ids), len(byWorker["wA"]), len(byWorker["wB"]), cut)

			// The gateway dies. Workers keep their resident sessions.
			f1.g.Close()
			f1.hs.Close()

			// Gateway #2 starts fresh — empty route table — and the
			// workers re-register.
			f2 := startFabric(t, Config{}, wA, wB)

			// Drain wA through the new gateway: it must adopt wA's
			// resident sessions from the worker's own list and
			// re-derive their create bodies to migrate them.
			moved, err := f2.g.DrainWorker("wA")
			if err != nil {
				t.Fatalf("drain after restart: %v", err)
			}
			if moved != len(byWorker["wA"]) {
				t.Fatalf("drain migrated %d sessions, wA hosted %d", moved, len(byWorker["wA"]))
			}
			if wA.mgr.LiveCount() != 0 {
				t.Fatalf("wA still hosts %d sessions after drain", wA.mgr.LiveCount())
			}
			mtext := f2.cl.metrics()
			if v := metricValue(t, mtext, `osmgate_migrations_total{reason="drain"}`); v != uint64(moved) {
				t.Fatalf("drain migrations = %d, want %d", v, moved)
			}
			if v := metricValue(t, mtext, "osmgate_migration_failures_total"); v != 0 {
				t.Fatalf("migration failures = %d", v)
			}

			// Every session — the migrated ones and the wB residents
			// the new gateway discovers on first touch — finishes
			// byte-identical to the reference.
			for _, id := range ids {
				info, at := f2.cl.infoAt(id)
				if at != "wB" {
					t.Fatalf("session %s served by %q after drain, want wB", id, at)
				}
				if info.Cycle != cut {
					t.Fatalf("session %s at cycle %d after restart+drain, want %d", id, info.Cycle, cut)
				}
				var final server.StepResult
				for i := 0; ; i++ {
					if i > 10_000 {
						t.Fatalf("session %s did not finish", id)
					}
					final = f2.cl.step(id, 2000)
					if final.Done {
						break
					}
				}
				if final.Cycle != ref.cycles {
					t.Fatalf("session %s finished at %d cycles, want %d", id, final.Cycle, ref.cycles)
				}
				if fmt.Sprint(final.Result.Reported) != fmt.Sprint(ref.reported) {
					t.Fatalf("session %s reported %v, want %v", id, final.Result.Reported, ref.reported)
				}
				compareRegs(t, id, ref.regs, f2.cl.registers(id))
				endInfo, _ := f2.cl.infoAt(id)
				if endInfo.TraceChecksum != ref.checksum {
					t.Fatalf("session %s trace checksum %s across restart+drain, want %s",
						id, endInfo.TraceChecksum, ref.checksum)
				}
			}
		})
	}
}
