package gate

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("g-session-%06d", i)
	}
	return keys
}

func TestRingLookupStableAndBalanced(t *testing.T) {
	r := NewRing(64)
	members := []string{"w1", "w2", "w3", "w4"}
	for _, m := range members {
		r.Add(m)
	}
	keys := ringKeys(10_000)
	counts := map[string]int{}
	owner := map[string]string{}
	for _, k := range keys {
		o := r.Lookup(k)
		if !r.Has(o) {
			t.Fatalf("key %s routed to non-member %q", k, o)
		}
		owner[k] = o
		counts[o]++
	}
	// Lookup is deterministic.
	for _, k := range keys {
		if got := r.Lookup(k); got != owner[k] {
			t.Fatalf("key %s: second lookup %s, first %s", k, got, owner[k])
		}
	}
	// With 64 virtual nodes each of 4 members should hold a sane share
	// (perfect balance would be 2500; allow a wide band).
	for _, m := range members {
		if counts[m] < 1000 || counts[m] > 4500 {
			t.Fatalf("member %s owns %d of %d keys; distribution %v", m, counts[m], len(keys), counts)
		}
	}
}

// TestRingMinimalDisruption pins the property the fabric depends on:
// removing a member moves only that member's keys, and re-adding it
// restores the original placement exactly.
func TestRingMinimalDisruption(t *testing.T) {
	r := NewRing(64)
	members := []string{"w1", "w2", "w3", "w4"}
	for _, m := range members {
		r.Add(m)
	}
	keys := ringKeys(10_000)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}

	r.Remove("w2")
	moved := 0
	for _, k := range keys {
		after := r.Lookup(k)
		if after == "w2" {
			t.Fatalf("key %s still routes to removed member", k)
		}
		if before[k] != "w2" && after != before[k] {
			t.Fatalf("key %s moved %s->%s although its owner never left", k, before[k], after)
		}
		if before[k] == "w2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; distribution test should have caught this")
	}

	r.Add("w2")
	for _, k := range keys {
		if got := r.Lookup(k); got != before[k] {
			t.Fatalf("key %s: placement %s after rejoin, originally %s", k, got, before[k])
		}
	}
}

func TestRingLookupN(t *testing.T) {
	r := NewRing(16)
	if got := r.LookupN("anything", 3); got != nil {
		t.Fatalf("empty ring returned %v", got)
	}
	for _, m := range []string{"a", "b", "c"} {
		r.Add(m)
	}
	order := r.LookupN("some-key", 5)
	if len(order) != 3 {
		t.Fatalf("LookupN returned %d members, want all 3: %v", len(order), order)
	}
	seen := map[string]bool{}
	for _, m := range order {
		if seen[m] {
			t.Fatalf("duplicate member in preference order %v", order)
		}
		seen[m] = true
	}
	if order[0] != r.Lookup("some-key") {
		t.Fatalf("preference order %v does not start with the owner %s", order, r.Lookup("some-key"))
	}
	// Failover consistency: removing the owner promotes the runner-up.
	r.Remove(order[0])
	if got := r.Lookup("some-key"); got != order[1] {
		t.Fatalf("after owner removal key routes to %s, want runner-up %s", got, order[1])
	}
}
