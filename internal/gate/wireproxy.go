package gate

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// WireProxy serves the binary wire protocol on the gateway: client
// frames are routed by session id and forwarded to the owning
// worker's wire listener over a pooled connection per worker. The
// gateway stamps its own request id on the worker hop and rewrites
// the response's id back to the client's, so many clients multiplex
// through one worker connection without id collisions. NACKs —
// including backpressure — cross the hop verbatim, keeping the
// two-plane contract identical whether a client talks to a worker
// directly or through the fabric.
type WireProxy struct {
	g *Gateway

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	connWG sync.WaitGroup
}

// NewWireProxy returns a wire proxy over the gateway.
func NewWireProxy(g *Gateway) *WireProxy {
	return &WireProxy{g: g, conns: make(map[net.Conn]struct{})}
}

// Serve accepts client connections until the listener fails or
// Shutdown closes it. It blocks; run it in its own goroutine.
func (wp *WireProxy) Serve(ln net.Listener) error {
	wp.mu.Lock()
	if wp.draining {
		wp.mu.Unlock()
		return errors.New("gate: wire proxy draining")
	}
	wp.ln = ln
	wp.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			wp.mu.Lock()
			draining := wp.draining
			wp.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		wp.mu.Lock()
		if wp.draining {
			wp.mu.Unlock()
			conn.Close()
			continue
		}
		wp.conns[conn] = struct{}{}
		wp.connWG.Add(1)
		wp.mu.Unlock()
		wp.g.Metrics.WireConnections.Add(1)
		go wp.serveConn(conn)
	}
}

// Shutdown drains client connections with the same contract as the
// worker's wire server: pending requests complete and flush before
// their connections close; the context bounds the wait.
func (wp *WireProxy) Shutdown(ctx context.Context) error {
	wp.mu.Lock()
	wp.draining = true
	ln := wp.ln
	conns := make([]net.Conn, 0, len(wp.conns))
	for c := range wp.conns {
		conns = append(conns, c)
	}
	wp.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		wp.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, c := range conns {
			c.Close()
		}
		return ctx.Err()
	}
}

// connWriter serializes response frames from concurrent forwarders
// onto one buffered client connection.
type connWriter struct {
	mu sync.Mutex
	bw *bufio.Writer
}

func (cw *connWriter) write(f wire.Frame) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if err := wire.WriteFrame(cw.bw, f); err == nil {
		cw.bw.Flush()
	}
}

func (wp *WireProxy) serveConn(conn net.Conn) {
	defer wp.connWG.Done()
	cw := &connWriter{bw: bufio.NewWriter(conn)}
	br := bufio.NewReader(conn)
	var handlers sync.WaitGroup
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			break
		}
		handlers.Add(1)
		go func(f wire.Frame) {
			defer handlers.Done()
			wp.handle(cw, f)
		}(f)
	}
	handlers.Wait()
	cw.mu.Lock()
	cw.bw.Flush()
	cw.mu.Unlock()
	conn.Close()
	wp.mu.Lock()
	delete(wp.conns, conn)
	wp.mu.Unlock()
}

func (wp *WireProxy) nack(cw *connWriter, reqID uint32, code wire.NackCode, msg string) {
	cw.write(wire.Frame{Op: wire.OpNack, ReqID: reqID, Payload: (&wire.Nack{Code: code, Msg: msg}).Encode()})
}

// sessionOf extracts the session id a request frame addresses.
func sessionOf(f wire.Frame) (string, error) {
	switch f.Op {
	case wire.OpStep:
		var req wire.StepRequest
		err := req.Decode(f.Payload)
		return req.Session, err
	case wire.OpRegisters:
		var req wire.RegistersRequest
		err := req.Decode(f.Payload)
		return req.Session, err
	case wire.OpMem:
		var req wire.MemRequest
		err := req.Decode(f.Payload)
		return req.Session, err
	case wire.OpTrace:
		var req wire.TraceRequest
		err := req.Decode(f.Payload)
		return req.Session, err
	default:
		return "", fmt.Errorf("gate: op %s is not routable", f.Op)
	}
}

// handle serves one client frame: hello locally, everything else
// forwarded to the session's worker under the route read lock.
func (wp *WireProxy) handle(cw *connWriter, f wire.Frame) {
	g := wp.g
	if f.Op == wire.OpHello {
		var req wire.HelloRequest
		if err := req.Decode(f.Payload); err != nil {
			wp.nack(cw, f.ReqID, wire.NackBadRequest, err.Error())
			return
		}
		cw.write(wire.Frame{Op: wire.OpHello, ReqID: f.ReqID,
			Payload: (&wire.HelloResponse{Server: "osmgate", MaxPayload: wire.MaxPayload}).Encode()})
		return
	}

	id, err := sessionOf(f)
	if err != nil {
		wp.nack(cw, f.ReqID, wire.NackBadRequest, err.Error())
		return
	}

	// Two attempts, like the HTTP plane: a worker's not-found NACK
	// means the route was stale (idle-evicted, possibly parked) — drop
	// it and retry once, resurrecting from the park on the way.
	for attempt := 0; ; attempt++ {
		rt, err := g.ensureRoute(id)
		if err != nil {
			if errors.Is(err, errNoRoute) {
				wp.nack(cw, f.ReqID, wire.NackNotFound, "session "+id+" not found")
			} else {
				wp.nack(cw, f.ReqID, wire.NackInternal, err.Error())
			}
			return
		}
		resp, _, ok := wp.forward(cw, rt, id, f)
		if !ok {
			return // error already nacked
		}
		if resp.Op == wire.OpNack {
			var n wire.Nack
			if n.Decode(resp.Payload) == nil {
				switch n.Code {
				case wire.NackBackpressure:
					g.Metrics.BackpressWire.Add(1)
				case wire.NackNotFound:
					g.dropRoute(id)
					if attempt == 0 {
						continue
					}
				}
			}
		}
		// Rewrite the worker-hop request id back to the client's.
		resp.ReqID = f.ReqID
		cw.write(resp)
		return
	}
}

// forward proxies one frame under the route read lock. ok=false means
// the failure was already answered with a NACK.
func (wp *WireProxy) forward(cw *connWriter, rt *route, id string, f wire.Frame) (wire.Frame, string, bool) {
	g := wp.g
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if rt.dead || rt.worker == "" {
		wp.nack(cw, f.ReqID, wire.NackNotFound, "session "+id+" not found")
		return wire.Frame{}, "", false
	}
	workerID := rt.worker
	resp, err := wp.roundTrip(workerID, f)
	if err != nil {
		g.Metrics.ProxyErrors.Add(1)
		wp.nack(cw, f.ReqID, wire.NackInternal, fmt.Sprintf("worker %s: %v", workerID, err))
		return wire.Frame{}, "", false
	}
	g.Metrics.ProxiedWire.Add(1)
	return resp, workerID, true
}

// roundTrip forwards one frame over the pooled connection to a
// worker, redialing once if the pooled connection has died.
func (wp *WireProxy) roundTrip(workerID string, f wire.Frame) (wire.Frame, error) {
	g := wp.g
	c, err := g.wireClient(workerID)
	if err != nil {
		return wire.Frame{}, err
	}
	resp, err := c.RoundTrip(f.Op, f.Payload)
	if err == nil {
		return resp, nil
	}
	// The pooled connection may simply be stale (worker restarted):
	// drop it and retry once on a fresh dial.
	g.dropWireClient(workerID)
	c, derr := g.wireClient(workerID)
	if derr != nil {
		return wire.Frame{}, err
	}
	return c.RoundTrip(f.Op, f.Payload)
}
