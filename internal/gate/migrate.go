package gate

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/server"
)

// errNoRoute reports a session the gateway has no route for and no
// park to resurrect from.
var errNoRoute = errors.New("gate: no route for session")

// Migrate moves one session to another worker: snapshot on the
// source, create-with-id + restore on the target, delete the source
// copy, repoint the route. The route's write lock is held throughout,
// so no client request observes the intermediate states — a request
// issued mid-migration blocks and then lands on the new worker. The
// session snapshot carries the trace recorder, so cycle counts,
// registers, reported values and the whole-run trace checksum are all
// byte-identical across the move.
//
// target "" lets the ring choose (the session's preference order,
// skipping the source). reason is the metrics label: "drain",
// "rebalance" or "resurrect". Returns the source and destination
// worker ids.
func (g *Gateway) Migrate(id, target, reason string) (from, to string, err error) {
	rt, ok := g.getRoute(id)
	if !ok {
		// Admin-driven migration of a session this gateway did not
		// place: find its host and adopt the route first.
		rt, ok = g.discoverRoute(id)
	}
	if !ok {
		return "", "", fmt.Errorf("%w: %s", errNoRoute, id)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.dead || rt.worker == "" {
		return "", "", fmt.Errorf("%w: %s", errNoRoute, id)
	}
	from = rt.worker

	to = target
	if to == "" {
		to = g.pickTarget(id, from)
	}
	if to == "" {
		g.Metrics.MigrationFailures.Add(1)
		return from, "", fmt.Errorf("gate: no healthy migration target for %s (source %s)", id, from)
	}
	if to == from {
		return from, to, nil // already there; nothing to move
	}
	src, ok := g.worker(from)
	if !ok {
		g.Metrics.MigrationFailures.Add(1)
		return from, to, fmt.Errorf("gate: source worker %s not registered", from)
	}
	dst, ok := g.worker(to)
	if !ok {
		g.Metrics.MigrationFailures.Add(1)
		return from, to, fmt.Errorf("gate: target worker %s not registered", to)
	}

	if err := g.moveSession(id, rt, src, dst); err != nil {
		g.Metrics.MigrationFailures.Add(1)
		g.logf("migrate %s %s->%s (%s): %v", id, from, to, reason, err)
		return from, to, err
	}
	rt.worker = to
	g.countMigration(reason)
	g.logf("migrated %s %s->%s (%s)", id, from, to, reason)
	return from, to, nil
}

func (g *Gateway) countMigration(reason string) {
	switch reason {
	case "drain":
		g.Metrics.MigrationsDrain.Add(1)
	case "resurrect":
		g.Metrics.MigrationsResurrect.Add(1)
	default:
		g.Metrics.MigrationsRebalance.Add(1)
	}
}

// pickTarget returns the best healthy worker for a session other than
// the excluded source, preferring ring order for placement stability.
func (g *Gateway) pickTarget(id, exclude string) string {
	for _, w := range g.placementOrder(id) {
		if w.ID != exclude {
			return w.ID
		}
	}
	return ""
}

// moveSession performs the snapshot -> create -> restore -> delete
// legs. Caller holds the route's write lock. On any failure the
// source copy is left running (the target-side partial copy is
// deleted best-effort), so a failed migration degrades to "session
// stayed put".
func (g *Gateway) moveSession(id string, rt *route, src, dst Worker) error {
	status, _, blob, err := g.do(http.MethodGet, src.Addr+"/v1/sessions/"+id+"/snapshot", "", nil)
	if err != nil {
		return fmt.Errorf("snapshot from %s: %w", src.ID, err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("snapshot from %s: status %d: %s", src.ID, status, trimBody(blob))
	}

	if len(rt.create) == 0 {
		// A gateway that did not place this session (it restarted, or
		// adopted the route from a worker's resident list) has no
		// recorded create body. The source worker's session info
		// carries the full originating spec — rebuild the body from
		// that, and cache it on the route for the next hop.
		create, err := g.deriveCreate(src, id)
		if err != nil {
			return fmt.Errorf("no create body recorded for %s: %w", id, err)
		}
		rt.create = create
	}
	status, _, body, err := g.do(http.MethodPost, dst.Addr+"/v1/sessions", "application/json", rt.create)
	if err != nil {
		return fmt.Errorf("create on %s: %w", dst.ID, err)
	}
	if status != http.StatusCreated && status != http.StatusConflict {
		return fmt.Errorf("create on %s: status %d: %s", dst.ID, status, trimBody(body))
	}
	// StatusConflict means a copy with this id already exists on the
	// target — a previous attempt's leftover; the restore below
	// overwrites its state, so proceed.

	status, _, body, err = g.do(http.MethodPost, dst.Addr+"/v1/sessions/"+id+"/restore", "application/octet-stream", blob)
	if err != nil || status != http.StatusOK {
		// Roll the target copy back so a retry starts clean.
		g.do(http.MethodDelete, dst.Addr+"/v1/sessions/"+id, "", nil)
		if err != nil {
			return fmt.Errorf("restore on %s: %w", dst.ID, err)
		}
		return fmt.Errorf("restore on %s: status %d: %s", dst.ID, status, trimBody(body))
	}

	// The target owns the session now; losing the source copy is the
	// point. Best-effort — a failed delete leaves an orphan the
	// source's idle janitor will collect.
	if status, _, body, err := g.do(http.MethodDelete, src.Addr+"/v1/sessions/"+id, "", nil); err != nil || status != http.StatusOK {
		g.logf("migrate %s: deleting source copy on %s: status %d err %v %s", id, src.ID, status, err, trimBody(body))
	}
	return nil
}

// deriveCreate rebuilds a session's create body from the hosting
// worker's single-session info, which reports the originating spec
// and trace limit. This is what lets a restarted gateway migrate
// sessions it did not place.
func (g *Gateway) deriveCreate(src Worker, id string) ([]byte, error) {
	status, _, body, err := g.do(http.MethodGet, src.Addr+"/v1/sessions/"+id, "", nil)
	if err != nil {
		return nil, fmt.Errorf("session info from %s: %w", src.ID, err)
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("session info from %s: status %d: %s", src.ID, status, trimBody(body))
	}
	var info server.Info
	if err := json.Unmarshal(body, &info); err != nil {
		return nil, fmt.Errorf("session info from %s: %w", src.ID, err)
	}
	if info.Spec == nil {
		return nil, fmt.Errorf("session info from %s carries no spec (worker predates spec reporting?)", src.ID)
	}
	traceLimit := info.TraceLimit
	req := server.CreateRequest{Spec: *info.Spec, ID: id, TraceLimit: &traceLimit}
	create, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	g.logf("derived create body for %s from worker %s", id, src.ID)
	return create, nil
}

// DrainWorker migrates every session routed to the worker onto the
// rest of the fleet and marks the worker gone. The worker is told to
// stop admitting first (its own drain endpoint), so placements racing
// with the drain bounce to other workers. Returns the number of
// sessions migrated; the error aggregates any that could not move.
func (g *Gateway) DrainWorker(id string) (int, error) {
	g.mu.Lock()
	w, ok := g.workers[id]
	if !ok {
		g.mu.Unlock()
		return 0, fmt.Errorf("gate: unknown worker %s", id)
	}
	if ch, inProgress := g.drains[id]; inProgress {
		// Another caller is already draining this worker (the health
		// loop and the worker's own SIGTERM notification can race).
		// Wait it out: a drain caller's contract is "when I return,
		// this worker hosts nothing the gateway needs".
		g.mu.Unlock()
		<-ch
		return 0, nil
	}
	if w.State == WorkerGone {
		g.mu.Unlock()
		return 0, nil
	}
	ch := make(chan struct{})
	g.drains[id] = ch
	defer close(ch)
	w.State = WorkerDraining
	g.ring.Remove(id)
	addr := w.Addr
	g.mu.Unlock()
	g.logf("draining worker %s", id)

	// Stop admissions on the worker. Best-effort: if the worker is
	// already wedged we still migrate what we can from the route table.
	var reported []string
	if status, _, body, err := g.do(http.MethodPost, addr+"/v1/admin/drain", "application/json", []byte("{}")); err == nil && status == http.StatusOK {
		var resp struct {
			Sessions []string `json:"sessions"`
		}
		if json.Unmarshal(body, &resp) == nil {
			reported = resp.Sessions
		}
	} else {
		g.logf("drain %s: admin/drain unavailable (status %d, err %v); using route table", id, status, err)
	}

	// Migrate everything the route table maps to this worker, plus
	// any session the worker itself reports that the gateway has no
	// route for — a restarted gateway adopts those strays (the create
	// body is re-derived from the worker's session info during the
	// move), so no session is stranded on the draining worker.
	g.mu.Lock()
	var resident []string
	routed := make(map[string]bool)
	for sid := range g.routes {
		routed[sid] = true
	}
	g.mu.Unlock()
	for _, sid := range sortedKeys(routed) {
		rt, ok := g.getRoute(sid)
		if !ok {
			continue
		}
		rt.mu.RLock()
		owner := rt.worker
		rt.mu.RUnlock()
		if owner == id {
			resident = append(resident, sid)
		}
	}
	sort.Strings(reported)
	for _, sid := range reported {
		if routed[sid] || !server.ValidSessionID(sid) {
			continue
		}
		g.adoptRoute(sid, id)
		resident = append(resident, sid)
		routed[sid] = true
		g.logf("drain %s: adopted unrouted resident session %s", id, sid)
	}

	var errs []error
	moved := 0
	for _, sid := range resident {
		if _, _, err := g.Migrate(sid, "", "drain"); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", sid, err))
			continue
		}
		moved++
	}

	g.mu.Lock()
	if w, ok := g.workers[id]; ok && w.State == WorkerDraining {
		w.State = WorkerGone
	}
	g.mu.Unlock()
	g.dropWireClient(id)
	g.logf("worker %s drained: %d migrated, %d failed", id, moved, len(errs))
	return moved, errors.Join(errs...)
}

// ensureRoute returns the live route for a session: the known route,
// a route discovered by asking the fleet (a restarted gateway lost
// its table), or one resurrected from a parked snapshot.
func (g *Gateway) ensureRoute(id string) (*route, error) {
	if rt, ok := g.getRoute(id); ok {
		return rt, nil
	}
	if rt, ok := g.discoverRoute(id); ok {
		return rt, nil
	}
	if g.cfg.ParkDir == "" {
		return nil, fmt.Errorf("%w: %s", errNoRoute, id)
	}
	return g.resurrect(id)
}

// discoverRoute asks the fleet which worker hosts a session the
// gateway has no route for, and adopts a route pointing at the worker
// that answers. Ring placement order is probed first (the likeliest
// hosts), then the remaining live workers — an earlier gateway may
// have migrated the session anywhere.
func (g *Gateway) discoverRoute(id string) (*route, bool) {
	if !server.ValidSessionID(id) {
		return nil, false
	}
	cands := g.placementOrder(id)
	seen := make(map[string]bool, len(cands))
	for _, w := range cands {
		seen[w.ID] = true
	}
	g.mu.Lock()
	for _, w := range g.workers {
		if !seen[w.ID] && (w.State == WorkerHealthy || w.State == WorkerDraining) {
			cands = append(cands, *w)
		}
	}
	g.mu.Unlock()
	sort.SliceStable(cands[len(seen):], func(i, j int) bool {
		return cands[len(seen)+i].ID < cands[len(seen)+j].ID
	})
	for _, w := range cands {
		status, _, _, err := g.do(http.MethodGet, w.Addr+"/v1/sessions/"+id, "", nil)
		if err == nil && status == http.StatusOK {
			g.logf("discovered session %s on worker %s, route adopted", id, w.ID)
			return g.adoptRoute(id, w.ID), true
		}
	}
	return nil, false
}

// adoptRoute installs a route for a session the gateway did not place
// (or returns the existing route if a concurrent adoption won). The
// create body is left empty; the first migration re-derives it from
// the hosting worker.
func (g *Gateway) adoptRoute(id, workerID string) *route {
	g.mu.Lock()
	defer g.mu.Unlock()
	if rt, ok := g.routes[id]; ok {
		return rt
	}
	rt := &route{worker: workerID}
	g.routes[id] = rt
	return rt
}

// resurrect restores a parked session onto a ring-chosen worker and
// installs its route. Concurrent touches of the same id serialize on
// the placeholder route's write lock: the first does the restore, the
// rest block and then proceed against the live route.
func (g *Gateway) resurrect(id string) (*route, error) {
	g.mu.Lock()
	if rt, ok := g.routes[id]; ok {
		g.mu.Unlock()
		return rt, nil
	}
	rt := &route{}
	rt.mu.Lock() // cannot block: rt is unpublished until the next line
	g.routes[id] = rt
	g.mu.Unlock()

	ok := false
	defer func() {
		if !ok {
			rt.dead = true
			g.dropRoute(id)
		}
		rt.mu.Unlock()
	}()

	meta, blob, err := server.LoadPark(g.cfg.ParkDir, id)
	if err != nil {
		// Missing or corrupt park either way means the session does not
		// exist anywhere the gateway can reach.
		return nil, fmt.Errorf("%w: %s", errNoRoute, id)
	}

	req := server.CreateRequest{Spec: meta.Spec, ID: id, TraceLimit: &meta.TraceLimit}
	create, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}

	var lastErr error
	for _, cand := range g.placementOrder(id) {
		status, _, body, err := g.do(http.MethodPost, cand.Addr+"/v1/sessions", "application/json", create)
		if err != nil {
			lastErr = err
			continue
		}
		if status != http.StatusCreated {
			lastErr = fmt.Errorf("create on %s: status %d: %s", cand.ID, status, trimBody(body))
			if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
				continue
			}
			return nil, lastErr
		}
		status, _, body, err = g.do(http.MethodPost, cand.Addr+"/v1/sessions/"+id+"/restore", "application/octet-stream", blob)
		if err != nil || status != http.StatusOK {
			g.do(http.MethodDelete, cand.Addr+"/v1/sessions/"+id, "", nil)
			if err == nil {
				err = fmt.Errorf("restore on %s: status %d: %s", cand.ID, status, trimBody(body))
			}
			lastErr = err
			continue
		}
		if err := server.ConsumePark(g.cfg.ParkDir, id); err != nil {
			g.logf("resurrect %s: consuming park: %v", id, err)
		}
		rt.worker = cand.ID
		rt.create = create
		ok = true
		g.Metrics.MigrationsResurrect.Add(1)
		g.logf("resurrected parked session %s (cycle %d) on %s", id, meta.Cycle, cand.ID)
		return rt, nil
	}
	g.Metrics.MigrationFailures.Add(1)
	if lastErr == nil {
		lastErr = errors.New("no healthy workers")
	}
	return nil, fmt.Errorf("gate: resurrecting %s: %w", id, lastErr)
}

func trimBody(b []byte) string {
	const max = 200
	s := string(b)
	if len(s) > max {
		s = s[:max] + "..."
	}
	return s
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
