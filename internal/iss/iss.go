// Package iss provides the instruction-set simulators that the
// micro-architecture case studies are built on, mirroring the paper's
// "we based both models on existing ISSs, which are capable of
// simulating user-level ELF binaries". An ISS owns the architectural
// state, the RAM image and the system-call emulation; it can run
// standalone (functional simulation) or be driven instruction-by-
// instruction by a timing model.
package iss

import (
	"fmt"
	"io"

	"repro/internal/isa/arm"
	"repro/internal/isa/ppc"
	"repro/internal/loader"
	"repro/internal/mem"
)

// Stats counts functional-simulation events.
type Stats struct {
	Instrs   uint64
	Loads    uint64
	Stores   uint64
	Branches uint64
	Mults    uint64
	Syscalls uint64
}

// System-call numbers shared by both targets' emulation (the ARM
// target passes them in the SWI comment field, the PowerPC target in
// r0).
const (
	SysExit     = 0 // ARM swi #0: exit(r0)
	SysPutc     = 1 // ARM swi #1: write byte r0
	SysPutUint  = 2 // ARM swi #2: write decimal r0 + newline
	SysReport   = 3 // ARM swi #3: record r0 in Reported
	SysExitPPC  = 1 // PPC sc r0=1: exit(r3)
	SysPutcPPC  = 4 // PPC sc r0=4: write byte r3
	SysPrintPPC = 5 // PPC sc r0=5: write decimal r3 + newline
	SysRepPPC   = 6 // PPC sc r0=6: record r3 in Reported
)

// ARM is an ARM instruction-set simulator instance.
type ARM struct {
	// CPU is the architectural state.
	CPU *arm.CPU
	// RAM is the memory image.
	RAM *mem.RAM
	// Out receives console bytes from the putc/putuint system calls.
	Out io.Writer
	// Reported collects values the program reported via swi #3, the
	// workloads' self-check channel.
	Reported []uint32
	// Trace, if non-nil, observes every executed instruction with its
	// address (before the PC advanced).
	Trace func(pc uint32, ins arm.Instr)
	// Stats counts events.
	Stats Stats

	dcache decodeCache[arm.Instr]
}

// NewARM builds an ARM ISS for the program with ramKB kibibytes of
// memory and the stack pointer at the top.
func NewARM(p *arm.Program, ramKB int) (*ARM, error) {
	ram := mem.NewRAM(uint32(ramKB)<<10, mem.LittleEndian)
	if p.Org+p.Size() > ram.Size() {
		return nil, fmt.Errorf("iss: program (%d bytes at %#x) exceeds %d KiB RAM", p.Size(), p.Org, ramKB)
	}
	ram.LoadWords(p.Org, p.Words)
	s := &ARM{RAM: ram, Out: io.Discard}
	s.CPU = &arm.CPU{Mem: ram}
	s.CPU.R[arm.SP] = ram.Size() - 16
	s.CPU.SetPC(p.Entry)
	s.CPU.SWIHandler = s.swi
	return s, nil
}

// NewARMFromImage builds an ARM ISS from a loader image.
func NewARMFromImage(im *loader.Image, ramKB int) (*ARM, error) {
	if im.Arch != loader.ArchARM {
		return nil, fmt.Errorf("iss: image architecture is %s, want arm", im.Arch)
	}
	return NewARM(&arm.Program{Org: im.Org, Words: im.Words, Entry: im.Entry}, ramKB)
}

func (s *ARM) swi(c *arm.CPU, num uint32) error {
	s.Stats.Syscalls++
	switch num {
	case SysExit:
		c.Halted = true
		c.ExitCode = c.R[0]
	case SysPutc:
		fmt.Fprintf(s.Out, "%c", byte(c.R[0]))
	case SysPutUint:
		fmt.Fprintf(s.Out, "%d\n", c.R[0])
	case SysReport:
		s.Reported = append(s.Reported, c.R[0])
	default:
		return fmt.Errorf("iss: unknown ARM syscall %d", num)
	}
	return nil
}

// Step executes one instruction, updating statistics. Decodes are
// served from a direct-mapped cache validated against the raw
// instruction word (see decodeCache).
func (s *ARM) Step() (arm.Instr, error) {
	c := s.CPU
	if c.Halted {
		return arm.Instr{}, fmt.Errorf("arm: step on halted CPU")
	}
	pc := c.PC()
	if pc%4 != 0 {
		return arm.Instr{}, fmt.Errorf("arm: unaligned PC %#x", pc)
	}
	word := c.Mem.Read32(pc)
	ins, hit := s.dcache.lookup(pc, word)
	if !hit {
		var err error
		ins, err = arm.Decode(word)
		if err != nil {
			return ins, fmt.Errorf("arm: at %#x: %w", pc, err)
		}
		s.dcache.insert(pc, word, ins)
	}
	if err := c.StepDecoded(ins); err != nil {
		return ins, err
	}
	if s.Trace != nil {
		s.Trace(pc, ins)
	}
	s.count(ins.Class())
	return ins, nil
}

// Run executes until halt or the instruction limit.
func (s *ARM) Run(limit uint64) error {
	for !s.CPU.Halted && s.Stats.Instrs < limit {
		if _, err := s.Step(); err != nil {
			return err
		}
	}
	if !s.CPU.Halted {
		return fmt.Errorf("iss: ARM program exceeded %d instructions", limit)
	}
	return nil
}

func (s *ARM) count(class arm.Class) {
	s.Stats.Instrs++
	switch class {
	case arm.ClassLoad:
		s.Stats.Loads++
	case arm.ClassStore:
		s.Stats.Stores++
	case arm.ClassBranch:
		s.Stats.Branches++
	case arm.ClassMul:
		s.Stats.Mults++
	}
}

// PPC is a PowerPC instruction-set simulator instance.
type PPC struct {
	// CPU is the architectural state.
	CPU *ppc.CPU
	// RAM is the memory image.
	RAM *mem.RAM
	// Out receives console bytes.
	Out io.Writer
	// Reported collects values the program reported via sc r0=6.
	Reported []uint32
	// Trace, if non-nil, observes every executed instruction with its
	// address.
	Trace func(pc uint32, ins ppc.Instr)
	// Stats counts events.
	Stats Stats

	dcache decodeCache[ppc.Instr]
}

// NewPPC builds a PowerPC ISS for the program with ramKB kibibytes of
// memory, r1 (the stack pointer) at the top.
func NewPPC(p *ppc.Program, ramKB int) (*PPC, error) {
	ram := mem.NewRAM(uint32(ramKB)<<10, mem.BigEndian)
	if p.Org+p.Size() > ram.Size() {
		return nil, fmt.Errorf("iss: program (%d bytes at %#x) exceeds %d KiB RAM", p.Size(), p.Org, ramKB)
	}
	ram.LoadWords(p.Org, p.Words)
	s := &PPC{RAM: ram, Out: io.Discard}
	s.CPU = &ppc.CPU{Mem: ram}
	s.CPU.R[1] = ram.Size() - 16
	s.CPU.NextPC = p.Entry
	s.CPU.SCHandler = s.sc
	return s, nil
}

// NewPPCFromImage builds a PowerPC ISS from a loader image.
func NewPPCFromImage(im *loader.Image, ramKB int) (*PPC, error) {
	if im.Arch != loader.ArchPPC {
		return nil, fmt.Errorf("iss: image architecture is %s, want ppc", im.Arch)
	}
	return NewPPC(&ppc.Program{Org: im.Org, Words: im.Words, Entry: im.Entry}, ramKB)
}

func (s *PPC) sc(c *ppc.CPU) error {
	s.Stats.Syscalls++
	switch c.R[0] {
	case SysExitPPC:
		c.Halted = true
		c.ExitCode = c.R[3]
	case SysPutcPPC:
		fmt.Fprintf(s.Out, "%c", byte(c.R[3]))
	case SysPrintPPC:
		fmt.Fprintf(s.Out, "%d\n", c.R[3])
	case SysRepPPC:
		s.Reported = append(s.Reported, c.R[3])
	default:
		return fmt.Errorf("iss: unknown PPC syscall %d", c.R[0])
	}
	return nil
}

// Step executes one instruction, updating statistics. Decodes are
// served from a direct-mapped cache validated against the raw
// instruction word (see decodeCache).
func (s *PPC) Step() (ppc.Instr, error) {
	c := s.CPU
	if c.Halted {
		return ppc.Instr{}, fmt.Errorf("ppc: step on halted CPU")
	}
	pc := c.NextPC
	if pc%4 != 0 {
		return ppc.Instr{}, fmt.Errorf("ppc: unaligned PC %#x", pc)
	}
	word := c.Mem.Read32(pc)
	ins, hit := s.dcache.lookup(pc, word)
	if !hit {
		var err error
		ins, err = ppc.Decode(word)
		if err != nil {
			return ins, fmt.Errorf("ppc: at %#x: %w", pc, err)
		}
		s.dcache.insert(pc, word, ins)
	}
	if err := c.StepDecoded(ins); err != nil {
		return ins, err
	}
	if s.Trace != nil {
		s.Trace(pc, ins)
	}
	s.count(ins.Class())
	return ins, nil
}

// Run executes until halt or the instruction limit.
func (s *PPC) Run(limit uint64) error {
	for !s.CPU.Halted && s.Stats.Instrs < limit {
		if _, err := s.Step(); err != nil {
			return err
		}
	}
	if !s.CPU.Halted {
		return fmt.Errorf("iss: PPC program exceeded %d instructions", limit)
	}
	return nil
}

func (s *PPC) count(class ppc.Class) {
	s.Stats.Instrs++
	switch class {
	case ppc.ClassLoad:
		s.Stats.Loads++
	case ppc.ClassStore:
		s.Stats.Stores++
	case ppc.ClassBranch:
		s.Stats.Branches++
	case ppc.ClassMul:
		s.Stats.Mults++
	}
}
