package iss

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/isa/arm"
	"repro/internal/isa/ppc"
	"repro/internal/loader"
)

func armProg(t *testing.T, src string) *arm.Program {
	t.Helper()
	p, err := arm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func ppcProg(t *testing.T, src string) *ppc.Program {
	t.Helper()
	p, err := ppc.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestARMExitAndStats(t *testing.T) {
	s, err := NewARM(armProg(t, `
		mov r1, #0x100
		mov r2, #5
		str r2, [r1]
		ldr r0, [r1]
		mul r0, r0, r2
		bl next
	next:
		swi #0
	`), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if s.CPU.ExitCode != 25 {
		t.Fatalf("exit = %d, want 25", s.CPU.ExitCode)
	}
	if s.Stats.Loads != 1 || s.Stats.Stores != 1 || s.Stats.Branches != 1 || s.Stats.Mults != 1 {
		t.Fatalf("stats = %+v", s.Stats)
	}
	if s.Stats.Syscalls != 1 {
		t.Fatalf("syscalls = %d", s.Stats.Syscalls)
	}
}

func TestARMConsoleOutput(t *testing.T) {
	s, err := NewARM(armProg(t, `
		mov r0, #72      ; 'H'
		swi #1
		mov r0, #105     ; 'i'
		swi #1
		mov r0, #42
		swi #2
		mov r0, #0
		swi #0
	`), 64)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	s.Out = &out
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if out.String() != "Hi42\n" {
		t.Fatalf("output = %q, want Hi42\\n", out.String())
	}
}

func TestARMReportedValues(t *testing.T) {
	s, err := NewARM(armProg(t, `
		mov r0, #7
		swi #3
		mov r0, #9
		swi #3
		mov r0, #0
		swi #0
	`), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(s.Reported) != 2 || s.Reported[0] != 7 || s.Reported[1] != 9 {
		t.Fatalf("reported = %v", s.Reported)
	}
}

func TestARMUnknownSyscall(t *testing.T) {
	s, _ := NewARM(armProg(t, "swi #99"), 64)
	if err := s.Run(10); err == nil {
		t.Fatal("unknown syscall must error")
	}
}

func TestARMInstructionLimit(t *testing.T) {
	s, _ := NewARM(armProg(t, "loop: b loop"), 64)
	err := s.Run(100)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v, want instruction-limit error", err)
	}
}

func TestARMProgramTooLarge(t *testing.T) {
	p := &arm.Program{Words: make([]uint32, 64<<10)}
	if _, err := NewARM(p, 64); err == nil {
		t.Fatal("oversized program must be rejected")
	}
}

func TestARMFromImage(t *testing.T) {
	p := armProg(t, "mov r0, #3\nswi #0")
	im := &loader.Image{Arch: loader.ArchARM, Org: p.Org, Entry: p.Entry, Words: p.Words}
	s, err := NewARMFromImage(im, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.CPU.ExitCode != 3 {
		t.Fatalf("exit = %d", s.CPU.ExitCode)
	}
	im.Arch = loader.ArchPPC
	if _, err := NewARMFromImage(im, 64); err == nil {
		t.Fatal("wrong arch must be rejected")
	}
}

func TestPPCExitAndStats(t *testing.T) {
	s, err := NewPPC(ppcProg(t, `
		li r4, 0x100
		li r5, 6
		stw r5, 0(r4)
		lwz r3, 0(r4)
		mullw r3, r3, r5
		bl next
	next:
		li r0, 1
		sc
	`), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if s.CPU.ExitCode != 36 {
		t.Fatalf("exit = %d, want 36", s.CPU.ExitCode)
	}
	if s.Stats.Loads != 1 || s.Stats.Stores != 1 || s.Stats.Mults != 1 {
		t.Fatalf("stats = %+v", s.Stats)
	}
}

func TestPPCConsoleAndReport(t *testing.T) {
	s, err := NewPPC(ppcProg(t, `
		li r3, 88      ; 'X'
		li r0, 4
		sc
		li r3, 123
		li r0, 5
		sc
		li r3, 55
		li r0, 6
		sc
		li r3, 0
		li r0, 1
		sc
	`), 64)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	s.Out = &out
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if out.String() != "X123\n" {
		t.Fatalf("output = %q", out.String())
	}
	if len(s.Reported) != 1 || s.Reported[0] != 55 {
		t.Fatalf("reported = %v", s.Reported)
	}
}

func TestPPCUnknownSyscallAndLimit(t *testing.T) {
	s, _ := NewPPC(ppcProg(t, "li r0, 42\nsc"), 64)
	if err := s.Run(10); err == nil {
		t.Fatal("unknown syscall must error")
	}
	s, _ = NewPPC(ppcProg(t, "loop: b loop"), 64)
	if err := s.Run(50); err == nil {
		t.Fatal("runaway program must hit the limit")
	}
}

func TestPPCFromImage(t *testing.T) {
	p := ppcProg(t, "li r3, 9\nli r0, 1\nsc")
	im := &loader.Image{Arch: loader.ArchPPC, Org: p.Org, Entry: p.Entry, Words: p.Words}
	s, err := NewPPCFromImage(im, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.CPU.ExitCode != 9 {
		t.Fatalf("exit = %d", s.CPU.ExitCode)
	}
	im.Arch = loader.ArchARM
	if _, err := NewPPCFromImage(im, 64); err == nil {
		t.Fatal("wrong arch must be rejected")
	}
}

func TestARMTraceHook(t *testing.T) {
	s, err := NewARM(armProg(t, "mov r0, #1\nadd r0, r0, #2\nswi #0"), 64)
	if err != nil {
		t.Fatal(err)
	}
	var pcs []uint32
	var names []string
	s.Trace = func(pc uint32, ins arm.Instr) {
		pcs = append(pcs, pc)
		names = append(names, ins.Op.String())
	}
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(pcs) != 3 || pcs[0] != 0 || pcs[1] != 4 || pcs[2] != 8 {
		t.Fatalf("trace pcs = %v", pcs)
	}
	if names[0] != "mov" || names[1] != "add" || names[2] != "swi" {
		t.Fatalf("trace ops = %v", names)
	}
}

func TestPPCTraceHook(t *testing.T) {
	s, err := NewPPC(ppcProg(t, "li r3, 0\nli r0, 1\nsc"), 64)
	if err != nil {
		t.Fatal(err)
	}
	var pcs []uint32
	s.Trace = func(pc uint32, ins ppc.Instr) { pcs = append(pcs, pc) }
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(pcs) != 3 || pcs[2] != 8 {
		t.Fatalf("trace pcs = %v", pcs)
	}
}
