package iss

// decodeCache is a direct-mapped cache of decoded instructions,
// indexed by instruction-word address. Workload inner loops re-visit
// the same addresses millions of times; caching the decode removes
// the field-extraction work from the per-instruction hot path of both
// functional and micro-architecture simulation.
//
// A line is valid only for the exact (address, raw word) pair it was
// filled with, so self-modifying code — or a reloaded RAM image —
// never serves a stale decode: a changed word simply misses and is
// decoded afresh.
type decodeCache[I any] struct {
	lines []decodeLine[I]
}

type decodeLine[I any] struct {
	pc    uint32
	word  uint32
	valid bool
	ins   I
}

// decodeCacheLines is the line count; direct mapping uses the word
// index modulo this. 4096 lines cover a 16 KiB program completely.
const decodeCacheLines = 1 << 12

func (c *decodeCache[I]) lookup(pc, word uint32) (I, bool) {
	if c.lines == nil {
		var zero I
		return zero, false
	}
	ln := &c.lines[(pc>>2)&(decodeCacheLines-1)]
	if ln.valid && ln.pc == pc && ln.word == word {
		return ln.ins, true
	}
	var zero I
	return zero, false
}

func (c *decodeCache[I]) insert(pc, word uint32, ins I) {
	if c.lines == nil {
		c.lines = make([]decodeLine[I], decodeCacheLines)
	}
	c.lines[(pc>>2)&(decodeCacheLines-1)] = decodeLine[I]{pc: pc, word: word, valid: true, ins: ins}
}
