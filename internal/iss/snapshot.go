package iss

import "repro/internal/snap"

const issSnapVersion = 1

func snapshotStats(w *snap.Writer, s *Stats) {
	w.U64(s.Instrs)
	w.U64(s.Loads)
	w.U64(s.Stores)
	w.U64(s.Branches)
	w.U64(s.Mults)
	w.U64(s.Syscalls)
}

func restoreStats(r *snap.Reader, s *Stats) {
	s.Instrs = r.U64()
	s.Loads = r.U64()
	s.Stores = r.U64()
	s.Branches = r.U64()
	s.Mults = r.U64()
	s.Syscalls = r.U64()
}

func snapshotReported(w *snap.Writer, reported []uint32) {
	w.Int(len(reported))
	for _, v := range reported {
		w.U32(v)
	}
}

func restoreReported(r *snap.Reader) []uint32 {
	n := r.Int()
	if n < 0 || r.Err() != nil {
		return nil
	}
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.U32())
	}
	return out
}

// Snapshot encodes the full functional state: CPU, RAM image,
// statistics and the reported-value log. The decode cache is derived
// (validated against instruction words) and not serialized.
func (s *ARM) Snapshot(w *snap.Writer) {
	w.Version(issSnapVersion)
	w.Blob(s.CPU.Snapshot)
	w.Blob(s.RAM.Snapshot)
	snapshotStats(w, &s.Stats)
	snapshotReported(w, s.Reported)
}

// Restore decodes a functional-state snapshot into an ISS built for
// the same program and memory size.
func (s *ARM) Restore(r *snap.Reader) error {
	r.Version("arm iss", issSnapVersion)
	if err := s.CPU.Restore(r.Blob()); err != nil {
		return err
	}
	if err := s.RAM.Restore(r.Blob()); err != nil {
		return err
	}
	restoreStats(r, &s.Stats)
	s.Reported = restoreReported(r)
	return r.Close("arm iss")
}

// Snapshot encodes the full functional state: CPU, RAM image,
// statistics and the reported-value log. The decode cache is derived
// (validated against instruction words) and not serialized.
func (s *PPC) Snapshot(w *snap.Writer) {
	w.Version(issSnapVersion)
	w.Blob(s.CPU.Snapshot)
	w.Blob(s.RAM.Snapshot)
	snapshotStats(w, &s.Stats)
	snapshotReported(w, s.Reported)
}

// Restore decodes a functional-state snapshot into an ISS built for
// the same program and memory size.
func (s *PPC) Restore(r *snap.Reader) error {
	r.Version("ppc iss", issSnapVersion)
	if err := s.CPU.Restore(r.Blob()); err != nil {
		return err
	}
	if err := s.RAM.Restore(r.Blob()); err != nil {
		return err
	}
	restoreStats(r, &s.Stats)
	s.Reported = restoreReported(r)
	return r.Close("ppc iss")
}
