package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"repro/internal/runner"
)

// Session parking: instead of discarding an idle-evicted session's
// state, the janitor writes its final snapshot to Config.ParkDir so a
// gateway can resurrect the session later on any worker. Two files
// per parked session:
//
//	<checksum>.snap   the session snapshot, content-named by the
//	                  FNV-1a digest of its bytes — identical states
//	                  dedup to one blob across sessions
//	<id>.park         JSON metadata binding the session id to its
//	                  blob, target and originating spec
//
// Both are written atomically (temp file + rename) so a concurrent
// reader never observes a torn park. Blobs are never deleted here:
// they are content-addressed, so another park may reference the same
// bytes; metadata files are removed when a park is consumed.

// ParkMeta is the parked-session metadata record.
type ParkMeta struct {
	ID string `json:"id"`
	// Checksum is the 64-bit FNV-1a digest of the snapshot blob,
	// formatted %016x — also the blob's filename stem.
	Checksum string `json:"checksum"`
	Target   string `json:"target"`
	Cycle    uint64 `json:"cycle"`
	// TraceLimit is the session's recorder retention, so resurrection
	// recreates the session with the same trace window.
	TraceLimit int         `json:"trace_limit"`
	Spec       runner.Spec `json:"spec"`
	ParkedAt   time.Time   `json:"parked_at"`
}

// ParkMetaPath returns the metadata path for a session id.
func ParkMetaPath(dir, id string) string { return filepath.Join(dir, id+".park") }

// ParkBlobPath returns the blob path for a checksum.
func ParkBlobPath(dir, checksum string) string { return filepath.Join(dir, checksum+".snap") }

// BlobChecksum returns the content name of a snapshot blob: its
// 64-bit FNV-1a digest formatted %016x.
func BlobChecksum(blob []byte) string {
	h := fnv.New64a()
	h.Write(blob)
	return fmt.Sprintf("%016x", h.Sum64())
}

// LoadPark reads a parked session's metadata and blob, verifying the
// blob against its content name. A missing park returns os.ErrNotExist
// (wrapped), so callers can distinguish "never parked" from damage.
func LoadPark(dir, id string) (ParkMeta, []byte, error) {
	raw, err := os.ReadFile(ParkMetaPath(dir, id))
	if err != nil {
		return ParkMeta{}, nil, err
	}
	var meta ParkMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return ParkMeta{}, nil, fmt.Errorf("park metadata for %s: %w", id, err)
	}
	if meta.ID != id {
		return ParkMeta{}, nil, fmt.Errorf("park metadata for %s names session %s", id, meta.ID)
	}
	blob, err := os.ReadFile(ParkBlobPath(dir, meta.Checksum))
	if err != nil {
		return ParkMeta{}, nil, fmt.Errorf("park blob for %s: %w", id, err)
	}
	if got := BlobChecksum(blob); got != meta.Checksum {
		return ParkMeta{}, nil, fmt.Errorf("park blob for %s: checksum %s, content named %s", id, got, meta.Checksum)
	}
	return meta, blob, nil
}

// ConsumePark removes a parked session's metadata after resurrection.
// The content-addressed blob stays (another park may share it).
func ConsumePark(dir, id string) error {
	return os.Remove(ParkMetaPath(dir, id))
}

// writeAtomic writes data at path via a temp file + rename.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".park-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// park writes the evicted session's final snapshot into ParkDir. The
// session has already been removed from the table, so no new requests
// can reach it; taking s.mu waits out any quantum still running.
func (m *Manager) park(s *Session) error {
	s.mu.Lock()
	data, cycle, err := m.snapshotLocked(s)
	traceLimit := s.rec.Limit
	s.mu.Unlock()
	if err != nil {
		return err
	}
	sum := BlobChecksum(data)
	blobPath := ParkBlobPath(m.cfg.ParkDir, sum)
	if _, err := os.Stat(blobPath); err != nil {
		// First park of this content; otherwise the blob dedups.
		if err := writeAtomic(blobPath, data); err != nil {
			return err
		}
	}
	meta := ParkMeta{
		ID:         s.ID,
		Checksum:   sum,
		Target:     s.Spec.Target,
		Cycle:      cycle,
		TraceLimit: traceLimit,
		Spec:       s.Spec,
		ParkedAt:   time.Now().UTC(),
	}
	raw, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return err
	}
	if err := writeAtomic(ParkMetaPath(m.cfg.ParkDir, s.ID), raw); err != nil {
		return err
	}
	m.Metrics.SessionsParked.Add(1)
	m.logf("session %s: parked at cycle %d (%s, %d bytes)", s.ID, cycle, sum, len(data))
	return nil
}
