package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"repro/internal/runner"
	"repro/internal/store"
)

// Session parking: instead of discarding an idle-evicted session's
// state, the janitor writes its final snapshot to Config.ParkDir so a
// gateway can resurrect the session later on any worker. The park
// directory is an internal/store root: the snapshot blob is chunked,
// deduplicated and compressed into the store under the session id
// (run = session id, cycle = park cycle), and a small JSON metadata
// file binds the id to its originating spec:
//
//	<id>.park         JSON metadata: spec, target, cycle, and the
//	                  whole-blob checksum the restore is verified
//	                  against
//	chunks/, runs/    the store's content-addressed chunk files and
//	                  per-run indexes
//
// Metadata is written atomically (temp file + rename) so a concurrent
// reader never observes a torn park. Store chunks left unreferenced
// after a park is consumed are reclaimed by ParkGC (`osmstore gc` or
// the janitor hook) — the fix for the former "blobs are never deleted
// here" leak. Parks written by older builds as whole
// `<checksum>.snap` blobs still load, and GC treats a .park reference
// as a root for the legacy blob it names.

// ParkMeta is the parked-session metadata record.
type ParkMeta struct {
	ID string `json:"id"`
	// Checksum is the 64-bit FNV-1a digest of the snapshot blob,
	// formatted %016x. Legacy parks also use it as the whole-blob
	// filename stem; store-backed parks verify the reassembled blob
	// against it.
	Checksum string `json:"checksum"`
	Target   string `json:"target"`
	Cycle    uint64 `json:"cycle"`
	// TraceLimit is the session's recorder retention, so resurrection
	// recreates the session with the same trace window.
	TraceLimit int         `json:"trace_limit"`
	Spec       runner.Spec `json:"spec"`
	ParkedAt   time.Time   `json:"parked_at"`
}

// ParkMetaPath returns the metadata path for a session id.
func ParkMetaPath(dir, id string) string { return filepath.Join(dir, id+".park") }

// ParkBlobPath returns the legacy whole-blob path for a checksum.
func ParkBlobPath(dir, checksum string) string { return filepath.Join(dir, checksum+".snap") }

// BlobChecksum returns the content name of a snapshot blob: its
// 64-bit FNV-1a digest formatted %016x.
func BlobChecksum(blob []byte) string {
	h := fnv.New64a()
	h.Write(blob)
	return fmt.Sprintf("%016x", h.Sum64())
}

// ReadParkMeta reads and validates a parked session's metadata record
// without touching the blob.
func ReadParkMeta(dir, id string) (ParkMeta, error) {
	raw, err := os.ReadFile(ParkMetaPath(dir, id))
	if err != nil {
		return ParkMeta{}, err
	}
	var meta ParkMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return ParkMeta{}, fmt.Errorf("park metadata for %s: %w", id, err)
	}
	if meta.ID != id {
		return ParkMeta{}, fmt.Errorf("park metadata for %s names session %s", id, meta.ID)
	}
	return meta, nil
}

// LoadPark reads a parked session's metadata and blob, verifying the
// blob against its recorded checksum. The blob comes from the chunk
// store; parks written by older builds fall back to the legacy
// whole-blob file. A missing park returns os.ErrNotExist (wrapped),
// so callers can distinguish "never parked" from damage.
func LoadPark(dir, id string) (ParkMeta, []byte, error) {
	meta, err := ReadParkMeta(dir, id)
	if err != nil {
		return ParkMeta{}, nil, err
	}
	var blob []byte
	st, err := store.Open(dir, store.Options{})
	if err == nil {
		blob, err = st.Get(id, meta.Cycle)
	}
	if err != nil {
		if !errors.Is(err, store.ErrNotFound) && !os.IsNotExist(err) {
			return ParkMeta{}, nil, fmt.Errorf("park blob for %s: %w", id, err)
		}
		blob, err = os.ReadFile(ParkBlobPath(dir, meta.Checksum))
		if err != nil {
			return ParkMeta{}, nil, fmt.Errorf("park blob for %s: %w", id, err)
		}
	}
	if got := BlobChecksum(blob); got != meta.Checksum {
		return ParkMeta{}, nil, fmt.Errorf("park blob for %s: checksum %s, content named %s", id, got, meta.Checksum)
	}
	return meta, blob, nil
}

// ConsumePark removes a parked session's metadata and drops the
// session's run from the store index after resurrection. The chunks
// themselves stay until the next GC sweep — concurrent readers that
// already hold the entry list can still reassemble — at which point
// anything no other run references is reclaimed.
func ConsumePark(dir, id string) error {
	if st, err := store.Open(dir, store.Options{}); err == nil {
		if err := st.DeleteRun(id); err != nil {
			return err
		}
	}
	return os.Remove(ParkMetaPath(dir, id))
}

// writeAtomic writes data at path via a temp file + rename.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".park-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// parkStore lazily opens the chunk store rooted at ParkDir.
func (m *Manager) parkStore() (*store.Store, error) {
	m.storeOnce.Do(func() {
		m.store, m.storeErr = store.Open(m.cfg.ParkDir, store.Options{})
	})
	return m.store, m.storeErr
}

// park writes the evicted session's final snapshot into the ParkDir
// store. The session has already been removed from the table, so no
// new requests can reach it; taking s.mu waits out any quantum still
// running.
func (m *Manager) park(s *Session) error {
	s.mu.Lock()
	data, cycle, err := m.snapshotLocked(s)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	st, err := m.parkStore()
	if err != nil {
		return err
	}
	stats, err := st.Put(s.ID, cycle, data)
	if err != nil {
		return err
	}
	meta := ParkMeta{
		ID:         s.ID,
		Checksum:   BlobChecksum(data),
		Target:     s.Spec.Target,
		Cycle:      cycle,
		TraceLimit: s.traceLimit,
		Spec:       s.Spec,
		ParkedAt:   time.Now().UTC(),
	}
	raw, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return err
	}
	if err := writeAtomic(ParkMetaPath(m.cfg.ParkDir, s.ID), raw); err != nil {
		return err
	}
	m.Metrics.SessionsParked.Add(1)
	m.logf("session %s: parked at cycle %d (%d bytes, %d/%d chunks new, %d on disk)",
		s.ID, cycle, len(data), stats.NewChunks, stats.Chunks, stats.NewBytes)
	return nil
}

// ParkGCGrace is the janitor's GC grace window: unreferenced store
// files younger than this survive a sweep, protecting parks another
// process is mid-way through writing (workers and gateways share one
// park directory).
const ParkGCGrace = time.Minute

// ParkGC sweeps the ParkDir store: chunks no park references anymore
// (because ConsumePark dropped their run) and legacy whole-blob files
// no .park metadata names are removed. The janitor calls this
// periodically; `osmstore gc` is the manual form.
func (m *Manager) ParkGC(grace time.Duration) (store.GCStats, error) {
	if m.cfg.ParkDir == "" {
		return store.GCStats{}, nil
	}
	st, err := m.parkStore()
	if err != nil {
		return store.GCStats{}, err
	}
	stats, err := st.GC(store.GCOptions{Grace: grace})
	if err != nil {
		return stats, err
	}
	if stats.SweptChunks > 0 || stats.SweptLegacy > 0 {
		m.logf("park gc: swept %d chunks (%d bytes) and %d legacy blobs, %d live chunks",
			stats.SweptChunks, stats.SweptBytes, stats.SweptLegacy, stats.LiveChunks)
	}
	return stats, nil
}
