package server

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// stepLatencyBuckets are the step-latency histogram upper bounds in
// seconds.
var stepLatencyBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10,
}

// Histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative style (each bucket counts observations <= its bound).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; the last slot is +Inf
	sum    float64
	total  uint64
}

// NewHistogram returns a histogram over the given upper bounds
// (ascending, in seconds).
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// write renders the histogram in the text exposition format.
func (h *Histogram) write(w io.Writer, name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// Metrics is the service's hand-rolled Prometheus instrumentation:
// atomic counters, a live-sessions gauge closure and a fixed-bucket
// step-latency histogram, rendered by WriteTo in the text exposition
// format. No client library — the stdlib-only constraint is part of
// the design.
type Metrics struct {
	SessionsCreated  atomic.Uint64
	SessionsRejected atomic.Uint64 // admission-control 429s
	EvictedAPI       atomic.Uint64 // DELETE
	EvictedIdle      atomic.Uint64 // janitor
	EvictedDrain     atomic.Uint64 // shutdown drain
	Cycles           atomic.Uint64 // cycles simulated by step requests
	StepRequests     atomic.Uint64
	Panics           atomic.Uint64 // requests that panicked (isolated)
	SnapshotBytesOut atomic.Uint64 // snapshot downloads
	SnapshotBytesIn  atomic.Uint64 // restore uploads
	HTTPRequests     atomic.Uint64
	StepsRejected    atomic.Uint64 // run-queue backpressure refusals
	StepQuanta       atomic.Uint64 // scheduler quanta executed
	WireRequests     atomic.Uint64 // binary-protocol requests received
	WireNacks        atomic.Uint64 // binary-protocol requests refused
	WireConnections  atomic.Uint64 // binary-protocol connections accepted
	SessionsParked   atomic.Uint64 // idle evictions parked as snapshots

	// Live reports the current number of live sessions, read at
	// scrape time.
	Live func() int
	// QueueDepth reports step jobs in flight (queued or running),
	// read at scrape time.
	QueueDepth func() int

	StepLatency *Histogram
}

// NewMetrics returns a zeroed metrics set.
func NewMetrics() *Metrics {
	return &Metrics{StepLatency: NewHistogram(stepLatencyBuckets)}
}

// Evicted returns the total evictions across reasons.
func (m *Metrics) Evicted() uint64 {
	return m.EvictedAPI.Load() + m.EvictedIdle.Load() + m.EvictedDrain.Load()
}

// Render writes every metric in the Prometheus text exposition
// format.
func (m *Metrics) Render(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	live := 0
	if m.Live != nil {
		live = m.Live()
	}
	fmt.Fprintf(w, "# HELP osmserve_sessions_live Sessions currently resident.\n")
	fmt.Fprintf(w, "# TYPE osmserve_sessions_live gauge\nosmserve_sessions_live %d\n", live)

	counter("osmserve_sessions_created_total", "Sessions admitted and created.", m.SessionsCreated.Load())
	counter("osmserve_sessions_rejected_total", "Session creations refused by admission control.", m.SessionsRejected.Load())

	fmt.Fprintf(w, "# HELP osmserve_sessions_evicted_total Sessions removed, by reason.\n")
	fmt.Fprintf(w, "# TYPE osmserve_sessions_evicted_total counter\n")
	fmt.Fprintf(w, "osmserve_sessions_evicted_total{reason=\"api\"} %d\n", m.EvictedAPI.Load())
	fmt.Fprintf(w, "osmserve_sessions_evicted_total{reason=\"idle\"} %d\n", m.EvictedIdle.Load())
	fmt.Fprintf(w, "osmserve_sessions_evicted_total{reason=\"drain\"} %d\n", m.EvictedDrain.Load())

	counter("osmserve_cycles_simulated_total", "Clock cycles simulated by step requests.", m.Cycles.Load())
	counter("osmserve_step_requests_total", "Step requests served.", m.StepRequests.Load())
	counter("osmserve_request_panics_total", "Requests that panicked and were isolated.", m.Panics.Load())

	fmt.Fprintf(w, "# HELP osmserve_snapshot_bytes_total Snapshot bytes transferred, by direction.\n")
	fmt.Fprintf(w, "# TYPE osmserve_snapshot_bytes_total counter\n")
	fmt.Fprintf(w, "osmserve_snapshot_bytes_total{dir=\"download\"} %d\n", m.SnapshotBytesOut.Load())
	fmt.Fprintf(w, "osmserve_snapshot_bytes_total{dir=\"upload\"} %d\n", m.SnapshotBytesIn.Load())

	counter("osmserve_http_requests_total", "HTTP requests received.", m.HTTPRequests.Load())
	counter("osmserve_wire_requests_total", "Binary wire-protocol requests received.", m.WireRequests.Load())
	counter("osmserve_wire_nacks_total", "Binary wire-protocol requests refused with a NACK.", m.WireNacks.Load())
	counter("osmserve_wire_connections_total", "Binary wire-protocol connections accepted.", m.WireConnections.Load())
	counter("osmserve_steps_rejected_total", "Step requests refused by run-queue backpressure.", m.StepsRejected.Load())
	counter("osmserve_sessions_parked_total", "Idle-evicted sessions parked as snapshot blobs.", m.SessionsParked.Load())
	counter("osmserve_step_quanta_total", "Scheduler quanta executed.", m.StepQuanta.Load())

	depth := 0
	if m.QueueDepth != nil {
		depth = m.QueueDepth()
	}
	fmt.Fprintf(w, "# HELP osmserve_step_queue_depth Step jobs in flight (queued or running).\n")
	fmt.Fprintf(w, "# TYPE osmserve_step_queue_depth gauge\nosmserve_step_queue_depth %d\n", depth)

	fmt.Fprintf(w, "# HELP osmserve_step_latency_seconds Step request service latency.\n")
	fmt.Fprintf(w, "# TYPE osmserve_step_latency_seconds histogram\n")
	m.StepLatency.write(w, "osmserve_step_latency_seconds")
}
