package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/runner"
)

// maxBodyBytes bounds request bodies (session specs and snapshot
// uploads; a 1 MiB RAM image zero-compresses far below this).
const maxBodyBytes = 64 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/sessions                create (JSON spec)
//	GET    /v1/sessions                list
//	GET    /v1/sessions/{id}           info
//	DELETE /v1/sessions/{id}           evict
//	POST   /v1/sessions/{id}/step      step N cycles under a deadline
//	GET    /v1/sessions/{id}/registers peek architectural registers
//	GET    /v1/sessions/{id}/mem       peek memory (?addr=&len=)
//	GET    /v1/sessions/{id}/snapshot  download state (snap wire format)
//	POST   /v1/sessions/{id}/restore   upload state
//	GET    /v1/sessions/{id}/trace     NDJSON transition stream (?since=)
//	GET    /healthz                    liveness and drain state
//	GET    /metrics                    Prometheus text
//	/debug/pprof/*                     runtime profiles
//
// Every route runs behind per-request panic isolation: a panicking
// handler yields a 500 and poisons the session it was operating on,
// never the process.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", m.handleHealthz)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	mux.HandleFunc("POST /v1/sessions", m.handleCreate)
	mux.HandleFunc("GET /v1/sessions", m.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", m.withSession(m.handleInfo))
	mux.HandleFunc("DELETE /v1/sessions/{id}", m.handleEvict)
	mux.HandleFunc("POST /v1/sessions/{id}/step", m.withSession(m.handleStep))
	mux.HandleFunc("GET /v1/sessions/{id}/registers", m.withSession(m.handleRegisters))
	mux.HandleFunc("GET /v1/sessions/{id}/mem", m.withSession(m.handleMem))
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", m.withSession(m.handleSnapshot))
	mux.HandleFunc("POST /v1/sessions/{id}/restore", m.withSession(m.handleRestore))
	mux.HandleFunc("GET /v1/sessions/{id}/trace", m.withSession(m.handleTrace))
	mux.HandleFunc("GET /v1/sessions/{id}/invariants", m.withSession(m.handleInvariants))
	mux.HandleFunc("POST /v1/admin/drain", m.handleAdminDrain)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return m.isolate(mux)
}

// isolate is the outermost middleware: request accounting plus panic
// isolation. A panic is converted into a 500 (when the response has
// not started) and counted; the process and every other session keep
// serving.
func (m *Manager) isolate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.Metrics.HTTPRequests.Add(1)
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		defer func() {
			if p := recover(); p != nil {
				m.Metrics.Panics.Add(1)
				m.logf("panic in %s %s: %v", r.Method, r.URL.Path, p)
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withSession resolves {id}, poisons the session if the inner handler
// panics (the simulator may be mid-mutation), and re-panics so the
// isolation middleware writes the 500.
func (m *Manager) withSession(h func(http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeAPIError(w, err)
			return
		}
		defer func() {
			if p := recover(); p != nil {
				s.Poison(fmt.Errorf("request panic: %v", p))
				panic(p)
			}
		}()
		h(w, r, s)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeAPIError maps manager errors onto HTTP statuses.
func writeAPIError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBackpressure), errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrConflict):
		writeError(w, http.StatusConflict, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if m.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "sessions": m.LiveCount()})
}

func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m.Metrics.Render(w)
}

// CreateRequest is the POST /v1/sessions body: a runner.Spec plus
// session options. The image field rides as standard JSON base64.
type CreateRequest struct {
	runner.Spec
	// ID, when set, names the session instead of letting the server
	// assign an id — how the gateway places sessions under globally
	// routable ids. A duplicate or invalid id is a 409.
	ID string `json:"id,omitempty"`
	// TraceLimit overrides the recorder retention (nil = server
	// default, explicit 0 = unlimited).
	TraceLimit *int `json:"trace_limit,omitempty"`
}

func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if err := req.Spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	traceLimit := m.cfg.TraceLimit
	if req.TraceLimit != nil {
		traceLimit = *req.TraceLimit
	}
	s, err := m.CreateWithID(req.ID, req.Spec, traceLimit)
	if err != nil {
		if errors.Is(err, runner.ErrNotSteppable) {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, m.Info(s))
}

// handleAdminDrain stops session admissions and reports the resident
// session ids, so a gateway can drive migrate-out before this worker
// shuts down. Existing sessions keep serving.
func (m *Manager) handleAdminDrain(w http.ResponseWriter, r *http.Request) {
	ids := m.AdminDrain()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "draining",
		"sessions": ids,
	})
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sessions": m.List()})
}

func (m *Manager) handleInfo(w http.ResponseWriter, r *http.Request, s *Session) {
	writeJSON(w, http.StatusOK, m.Info(s))
}

func (m *Manager) handleEvict(w http.ResponseWriter, r *http.Request) {
	if err := m.Evict(r.PathValue("id")); err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "evicted"})
}

// StepRequest is the POST step body.
type StepRequest struct {
	// Cycles is the number of cycles to advance (required; capped by
	// the server).
	Cycles uint64 `json:"cycles"`
	// DeadlineMS bounds the request's wall time (0 = server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

func (m *Manager) handleStep(w http.ResponseWriter, r *http.Request, s *Session) {
	var req StepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	res, err := m.Step(s, req.Cycles, time.Duration(req.DeadlineMS)*time.Millisecond)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (m *Manager) handleRegisters(w http.ResponseWriter, r *http.Request, s *Session) {
	cycle, regs := m.Registers(s)
	writeJSON(w, http.StatusOK, map[string]any{
		"cycle":     cycle,
		"registers": regs,
	})
}

// handleInvariants is the debug endpoint over the runtime OSM
// invariant checker: a one-shot structural check (token conservation,
// binding consistency) of the session's model at its current cycle.
func (m *Manager) handleInvariants(w http.ResponseWriter, r *http.Request, s *Session) {
	cycle, vs := m.CheckInvariants(s)
	writeJSON(w, http.StatusOK, map[string]any{
		"cycle":      cycle,
		"clean":      len(vs) == 0,
		"violations": vs,
	})
}

func (m *Manager) handleMem(w http.ResponseWriter, r *http.Request, s *Session) {
	q := r.URL.Query()
	addr, err := strconv.ParseUint(q.Get("addr"), 0, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid addr: "+q.Get("addr"))
		return
	}
	n, err := strconv.ParseUint(q.Get("len"), 0, 32)
	if err != nil || n == 0 {
		writeError(w, http.StatusBadRequest, "invalid len: "+q.Get("len"))
		return
	}
	data, err := m.ReadMem(s, uint32(addr), uint32(n))
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"addr": addr,
		"len":  n,
		"data": base64.StdEncoding.EncodeToString(data),
	})
}

func (m *Manager) handleSnapshot(w http.ResponseWriter, r *http.Request, s *Session) {
	data, cycle, err := m.Snapshot(s)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("X-Osm-Cycle", strconv.FormatUint(cycle, 10))
	w.Header().Set("X-Osm-Target", s.Spec.Target)
	w.Write(data)
}

func (m *Manager) handleRestore(w http.ResponseWriter, r *http.Request, s *Session) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading snapshot body: "+err.Error())
		return
	}
	cycle, err := m.Restore(s, data)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "restored",
		"cycle":  cycle,
		"state":  StatePaused,
	})
}

// handleTrace streams the retained transition history as NDJSON, one
// osm.Event per line, from the session's live Recorder ring buffer.
// The totals ride as headers so a consumer can detect ring gaps
// (X-Osm-Trace-Total vs lines received) and compare runs cheaply
// (X-Osm-Trace-Checksum covers the whole run, not just the window).
func (m *Manager) handleTrace(w http.ResponseWriter, r *http.Request, s *Session) {
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid since: "+v)
			return
		}
		since = n
	}
	evs, total, sum := m.TraceEvents(s, since)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Osm-Trace-Total", strconv.FormatUint(total, 10))
	w.Header().Set("X-Osm-Trace-Checksum", fmt.Sprintf("%016x", sum))
	enc := json.NewEncoder(w)
	for i := range evs {
		enc.Encode(&evs[i])
	}
}
