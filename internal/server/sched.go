package server

import (
	"fmt"
	"sync"
	"time"
)

// The run-queue scheduler: step requests become jobs executed in
// bounded quanta by a fixed worker pool, instead of each request
// goroutine driving the simulator itself while holding the session
// mutex for the request's whole duration.
//
// Why: a session that is resident but idle must cost a parked struct
// — no goroutine, no timer, no table scan — and a node hosting tens
// of thousands of sessions must bound its *execution* concurrency to
// the worker pool regardless of how many clients are connected or how
// large their step requests are. Splitting requests into quanta gives
// round-robin fairness (a 50M-cycle request cannot starve a 1-cycle
// peek-step on another session) and gives the scheduler a natural
// admission point: when the queue is full the request is refused
// immediately with backpressure (HTTP 429 / wire NackBackpressure)
// rather than piling up goroutines.
//
// Scheduler states of a session, from the outside:
//
//	idle     no job anywhere; the session is a struct in the table
//	queued   a job referencing it sits in the run queue
//	running  a worker is executing one quantum under s.mu
//
// A job cycles queued → running → queued … until it completes (cycle
// budget reached, program done, deadline exceeded, or simulator
// error), then its waiting request goroutine is released. Correctness
// does not depend on quantum interleaving: each quantum advances the
// model under the session mutex exactly as the old monolithic loop
// did, so a wire- or HTTP-driven run replays the same StepCycle
// sequence and stays byte-identical to an in-process run.

// stepJob is one step request in flight through the scheduler.
type stepJob struct {
	s     *Session
	want  uint64 // total cycles requested (already clamped)
	limit time.Time

	submitted time.Time
	started   bool // first quantum has run (lifecycle checked)

	res  StepResult
	err  error
	done chan struct{}
}

// scheduler owns the run queue and worker pool.
type scheduler struct {
	m       *Manager
	quantum uint64

	// slots is the admission semaphore: one slot per job anywhere in
	// the scheduler (queued or running). Its capacity equals the run
	// queue's, so a job holding a slot can always be (re)enqueued
	// without blocking.
	slots chan struct{}
	runq  chan *stepJob

	stop chan struct{}
	wg   sync.WaitGroup
}

func newScheduler(m *Manager, workers int, queue int, quantum uint64) *scheduler {
	sc := &scheduler{
		m:       m,
		quantum: quantum,
		slots:   make(chan struct{}, queue),
		runq:    make(chan *stepJob, queue),
		stop:    make(chan struct{}),
	}
	sc.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go sc.worker()
	}
	return sc
}

// depth reports the number of jobs in flight (queued or running) —
// the osmserve_step_queue_depth gauge.
func (sc *scheduler) depth() int { return len(sc.slots) }

// submit admits a job or refuses it with backpressure. It never
// blocks: a full queue is load shedding, not a wait.
func (sc *scheduler) submit(j *stepJob) error {
	select {
	case sc.slots <- struct{}{}:
	default:
		sc.m.Metrics.StepsRejected.Add(1)
		return ErrOverloaded
	}
	select {
	case <-sc.stop:
		<-sc.slots
		return ErrDraining
	default:
	}
	j.submitted = time.Now()
	sc.runq <- j // cannot block: the job holds a slot
	return nil
}

// close stops the workers and fails every queued job. Jobs currently
// executing a quantum finish that quantum and are then failed on
// requeue.
func (sc *scheduler) close() {
	close(sc.stop)
	sc.wg.Wait()
	for {
		select {
		case j := <-sc.runq:
			j.err = ErrDraining
			sc.finish(j)
		default:
			return
		}
	}
}

func (sc *scheduler) worker() {
	defer sc.wg.Done()
	for {
		select {
		case <-sc.stop:
			return
		case j := <-sc.runq:
			if sc.quantumRun(j) {
				sc.finish(j)
				continue
			}
			select {
			case <-sc.stop:
				j.err = ErrDraining
				sc.finish(j)
			case sc.runq <- j: // holds its slot; never blocks
			}
		}
	}
}

// finish completes the job: shared-plane metrics, the session's
// cycles-stepped mirror, and the requester's wakeup. Both protocol
// planes converge here, which is what lets the mixed-protocol load
// test reconcile /metrics exactly.
func (sc *scheduler) finish(j *stepJob) {
	m := sc.m.Metrics
	m.StepRequests.Add(1)
	m.Cycles.Add(j.res.Stepped)
	m.StepLatency.Observe(time.Since(j.submitted).Seconds())
	if j.res.Stepped > 0 {
		j.s.meta.Lock()
		j.s.meta.cyclesStepped += j.res.Stepped
		j.s.meta.Unlock()
	}
	close(j.done)
	<-sc.slots // release the admission slot last: depth() counts this job until it is fully retired
}

// quantumRun executes one quantum of the job under the session mutex
// and reports whether the job is complete.
func (sc *scheduler) quantumRun(j *stepJob) (completed bool) {
	sc.m.Metrics.StepQuanta.Add(1)
	s := j.s
	s.mu.Lock()
	defer s.mu.Unlock()

	if !j.started {
		// StateRunning is admissible here: a second step request on a
		// session whose first request is still cycling used to queue
		// on the session mutex, so the scheduler queues it too (their
		// quanta interleave; each job keeps its own cycle budget).
		if err := s.stepable(); err != nil {
			j.err = err
			return true
		}
		j.started = true
		s.meta.Lock()
		s.meta.state = StateRunning
		s.meta.lastUsed = time.Now()
		s.meta.Unlock()
	} else {
		// Mid-flight recheck: another job may have poisoned the
		// session, or it may have been evicted, between our quanta.
		s.meta.Lock()
		st := s.meta.state
		s.meta.Unlock()
		if st == StateBroken || st == StateEvicted {
			j.err = fmt.Errorf("%w: session is %s", ErrConflict, st)
			return true
		}
	}

	// The deadline is polled on a geometric ramp within the quantum —
	// after cycle 1, 2, 4, 8, … then every 1024 cycles — so even a
	// pathologically slow model overruns its deadline by at most one
	// doubling, while a fast model pays a handful of clock reads per
	// quantum.
	const rampCap = 1024
	budget := j.want - j.res.Stepped
	if budget > sc.quantum {
		budget = sc.quantum
	}
	var ran, next uint64 = 0, 1
	for ran < budget && !s.inst.Done() {
		if ran >= next {
			next = ran + min(ran, rampCap)
			if time.Now().After(j.limit) {
				j.res.DeadlineExceeded = true
				break
			}
		}
		if err := s.inst.StepCycle(); err != nil {
			j.res.Stepped++
			s.poison(err)
			j.res.Cycle = s.inst.Cycle()
			j.res.State = StateBroken
			j.err = fmt.Errorf("%w: %v", ErrConflict, err)
			return true
		}
		ran++
		j.res.Stepped++
	}

	done := s.inst.Done()
	if !done && !j.res.DeadlineExceeded && j.res.Stepped < j.want {
		if time.Now().After(j.limit) {
			j.res.DeadlineExceeded = true
		} else {
			return false // back to the run queue for another quantum
		}
	}

	state := StatePaused
	if done {
		state = StateDone
		r, err := s.inst.Finalize()
		if err != nil {
			s.poison(err)
			j.res.Cycle = s.inst.Cycle()
			j.res.State = StateBroken
			j.err = fmt.Errorf("%w: %v", ErrConflict, err)
			return true
		}
		j.res.Result = &r
		s.meta.Lock()
		s.meta.result = &r
		s.meta.Unlock()
	}
	s.syncMeta(state)
	j.res.Cycle = s.inst.Cycle()
	j.res.Done = done
	j.res.State = state
	return true
}
