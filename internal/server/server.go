// Package server is the simulation-as-a-service layer: a concurrent
// session manager exposing the framework's cycle-accurate models over
// HTTP/JSON. A session wraps one runner.Instance behind its own mutex
// with a strict lifecycle (created → running ⇄ paused → done, or
// broken, and finally evicted); the manager bounds the session table
// (admission control with 429 backpressure), evicts idle sessions,
// and drains gracefully on shutdown. Observability is first-class:
// hand-rolled Prometheus-text /metrics, /healthz and /debug/pprof.
// It is the library behind cmd/osmserve.
package server

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/osm"
	"repro/internal/osm/invariant"
	"repro/internal/runner"
	"repro/internal/snap"
	"repro/internal/store"
)

// MaxSessionIDLen bounds a client-supplied session id.
const MaxSessionIDLen = 64

// State is a session lifecycle state.
type State string

// The session lifecycle. Created moves to Running on the first step
// request; Running returns to Paused when the request completes and
// to Done when the program finishes; a simulation error or an
// isolated panic moves to Broken; eviction (API, idle timeout or
// drain) is terminal and removes the session from the table.
const (
	StateCreated State = "created"
	StateRunning State = "running"
	StatePaused  State = "paused"
	StateDone    State = "done"
	StateBroken  State = "broken"
	StateEvicted State = "evicted"
)

// Config parameterizes a Manager. Zero values select the defaults.
type Config struct {
	// MaxSessions bounds the session table; creations beyond it are
	// rejected with 429 (default 64).
	MaxSessions int
	// IdleTimeout evicts sessions unused for this long (default 5m;
	// negative disables idle eviction).
	IdleTimeout time.Duration
	// MaxStepCycles caps the cycles of a single step request
	// (default 50M).
	MaxStepCycles uint64
	// MaxStepDeadline caps a step request's deadline (default 30s).
	MaxStepDeadline time.Duration
	// DefaultStepDeadline applies when a step request names none
	// (default 10s).
	DefaultStepDeadline time.Duration
	// TraceLimit is the default Recorder retention per session
	// (default 4096 events; sessions may override at creation).
	TraceLimit int
	// MaxMemRead caps a single memory-peek request (default 1 MiB).
	MaxMemRead uint32
	// Workers sizes the step scheduler's worker pool — the bound on
	// concurrently executing simulation quanta (default GOMAXPROCS).
	Workers int
	// StepQuantum is the cycle slice a worker runs before a step job
	// returns to the run queue (default 4096). Smaller quanta trade
	// throughput for fairness under many concurrently stepping
	// sessions.
	StepQuantum uint64
	// MaxQueuedSteps bounds step jobs in flight (queued + running)
	// across both protocol planes; submissions beyond it are refused
	// with backpressure — HTTP 429, wire NackBackpressure (default
	// 1024).
	MaxQueuedSteps int
	// ParkDir, when set, makes the idle-eviction janitor park a final
	// snapshot of each session it evicts instead of discarding the
	// state: the blob lands in this directory content-named by its
	// FNV-1a checksum, next to a per-session metadata file, so a
	// gateway (cmd/osmgate) can resurrect the session later on any
	// worker.
	ParkDir string
	// Build, if non-nil, replaces runner.New as the session
	// constructor — the seam scale tests use to host tens of
	// thousands of scripted sessions without tens of thousands of
	// simulator RAM images.
	Build func(runner.Spec) (*runner.Instance, error)
	// Logf, if non-nil, receives one line per notable event.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.MaxStepCycles == 0 {
		c.MaxStepCycles = 50_000_000
	}
	if c.MaxStepDeadline == 0 {
		c.MaxStepDeadline = 30 * time.Second
	}
	if c.DefaultStepDeadline == 0 {
		c.DefaultStepDeadline = 10 * time.Second
	}
	if c.TraceLimit == 0 {
		c.TraceLimit = 4096
	}
	if c.MaxMemRead == 0 {
		c.MaxMemRead = 1 << 20
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.StepQuantum == 0 {
		c.StepQuantum = 4096
	}
	if c.MaxQueuedSteps == 0 {
		c.MaxQueuedSteps = 1024
	}
	if c.Build == nil {
		c.Build = runner.New
	}
}

// Session is one simulation pinned behind its own mutex. The mutex
// serializes simulator access (step, peek, snapshot, restore); the
// metadata mirror below it is updated after every operation so list
// and info requests never block behind a long step.
type Session struct {
	ID   string
	Spec runner.Spec

	// traceLimit is the recorder retention the session was created
	// with — immutable, so info and park can report it without taking
	// the simulator mutex.
	traceLimit int

	mu   sync.Mutex
	inst *runner.Instance
	rec  *osm.Recorder

	meta struct {
		sync.Mutex
		state         State
		created       time.Time
		lastUsed      time.Time
		cycle         uint64
		cyclesStepped uint64
		done          bool
		traceTotal    uint64
		traceSum      uint64
		errMsg        string
		result        *runner.Result
	}
}

// syncMeta mirrors the simulator-side observables into the metadata
// block. Callers hold s.mu.
func (s *Session) syncMeta(state State) {
	cycle := s.inst.Cycle()
	done := s.inst.Done()
	total := s.rec.Total()
	sum := s.rec.Checksum()
	s.meta.Lock()
	defer s.meta.Unlock()
	if s.meta.state == StateEvicted {
		return // eviction is terminal
	}
	s.meta.state = state
	s.meta.cycle = cycle
	s.meta.done = done
	s.meta.traceTotal = total
	s.meta.traceSum = sum
	s.meta.lastUsed = time.Now()
}

// Info is the JSON session summary.
type Info struct {
	ID            string         `json:"id"`
	State         State          `json:"state"`
	Target        string         `json:"target"`
	Workload      string         `json:"workload,omitempty"`
	Arch          string         `json:"arch"`
	Cycle         uint64         `json:"cycle"`
	CyclesStepped uint64         `json:"cycles_stepped"`
	Done          bool           `json:"done"`
	TraceTotal    uint64         `json:"trace_total"`
	TraceChecksum string         `json:"trace_checksum"`
	CreatedAt     time.Time      `json:"created_at"`
	LastUsed      time.Time      `json:"last_used"`
	Error         string         `json:"error,omitempty"`
	Result        *runner.Result `json:"result,omitempty"`

	// Spec and TraceLimit are reported on single-session info only
	// (not list responses — Spec can carry a whole program image).
	// They let a gateway that did not place this session re-derive
	// its create body, so drain and rebalance survive gateway
	// restarts.
	Spec       *runner.Spec `json:"spec,omitempty"`
	TraceLimit int          `json:"trace_limit,omitempty"`
}

// info snapshots the metadata mirror. withSpec additionally attaches
// the full originating spec and trace limit.
func (s *Session) info(arch string, withSpec bool) Info {
	inf := s.infoBase(arch)
	if withSpec {
		spec := s.Spec
		inf.Spec = &spec
		inf.TraceLimit = s.traceLimit
	}
	return inf
}

func (s *Session) infoBase(arch string) Info {
	s.meta.Lock()
	defer s.meta.Unlock()
	return Info{
		ID:            s.ID,
		State:         s.meta.state,
		Target:        s.Spec.Target,
		Workload:      s.Spec.Workload,
		Arch:          arch,
		Cycle:         s.meta.cycle,
		CyclesStepped: s.meta.cyclesStepped,
		Done:          s.meta.done,
		TraceTotal:    s.meta.traceTotal,
		TraceChecksum: fmt.Sprintf("%016x", s.meta.traceSum),
		CreatedAt:     s.meta.created,
		LastUsed:      s.meta.lastUsed,
		Error:         s.meta.errMsg,
		Result:        s.meta.result,
	}
}

// Errors mapped to HTTP statuses by the handler layer.
var (
	// ErrBackpressure reports a full session table (HTTP 429).
	ErrBackpressure = errors.New("session table full, retry later")
	// ErrDraining reports a server shutting down (HTTP 503).
	ErrDraining = errors.New("server is draining")
	// ErrNotFound reports an unknown or evicted session (HTTP 404).
	ErrNotFound = errors.New("no such session")
	// ErrConflict reports an operation invalid in the session's
	// current state (HTTP 409).
	ErrConflict = errors.New("operation invalid in this session state")
	// ErrOverloaded reports a full step run queue (HTTP 429 / wire
	// NackBackpressure).
	ErrOverloaded = errors.New("step queue full, retry later")
)

// Manager owns the bounded session table.
type Manager struct {
	cfg     Config
	Metrics *Metrics
	sched   *scheduler

	mu       sync.Mutex
	sessions map[string]*Session
	reserved int // admissions granted but not yet inserted
	nextID   uint64
	draining bool

	janitorStop chan struct{}
	janitorDone chan struct{}
	closeOnce   sync.Once

	// The ParkDir chunk store, opened on first use.
	storeOnce sync.Once
	store     *store.Store
	storeErr  error
}

// NewManager returns a manager with an empty session table and a
// running step scheduler. Call Start to enable idle eviction and
// Close to drain.
func NewManager(cfg Config) *Manager {
	cfg.fill()
	m := &Manager{
		cfg:      cfg,
		Metrics:  NewMetrics(),
		sessions: make(map[string]*Session),
	}
	m.Metrics.Live = m.LiveCount
	m.sched = newScheduler(m, cfg.Workers, cfg.MaxQueuedSteps, cfg.StepQuantum)
	m.Metrics.QueueDepth = m.sched.depth
	return m
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// LiveCount returns the number of resident sessions.
func (m *Manager) LiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Draining reports whether the manager has begun shutting down.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Start launches the idle-eviction janitor. It is a no-op when idle
// eviction is disabled.
func (m *Manager) Start() {
	if m.cfg.IdleTimeout <= 0 || m.janitorStop != nil {
		return
	}
	m.janitorStop = make(chan struct{})
	m.janitorDone = make(chan struct{})
	interval := m.cfg.IdleTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	go func() {
		defer close(m.janitorDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		ticks := 0
		for {
			select {
			case <-m.janitorStop:
				return
			case <-t.C:
				m.evictIdle()
				// Reclaim park-store chunks orphaned by consumed parks
				// every few passes; the grace window keeps the sweep
				// safe against other processes sharing the directory.
				if ticks++; ticks%8 == 0 && m.cfg.ParkDir != "" {
					if _, err := m.ParkGC(ParkGCGrace); err != nil {
						m.logf("park gc: %v", err)
					}
				}
			}
		}
	}()
}

// evictIdle removes sessions unused for longer than IdleTimeout.
func (m *Manager) evictIdle() {
	cutoff := time.Now().Add(-m.cfg.IdleTimeout)
	m.mu.Lock()
	var stale []*Session
	for _, s := range m.sessions {
		s.meta.Lock()
		idle := s.meta.lastUsed.Before(cutoff)
		s.meta.Unlock()
		if idle {
			stale = append(stale, s)
		}
	}
	m.mu.Unlock()
	for _, s := range stale {
		if m.remove(s.ID, cutoff) {
			m.Metrics.EvictedIdle.Add(1)
			if m.cfg.ParkDir != "" {
				if err := m.park(s); err != nil {
					m.logf("session %s: park failed, state discarded: %v", s.ID, err)
				}
			}
			m.logf("session %s: evicted idle", s.ID)
		}
	}
}

// remove evicts the session if it is still resident and (when cutoff
// is nonzero) still idle — a request may have slipped in since the
// candidate scan.
func (m *Manager) remove(id string, cutoff time.Time) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok && !cutoff.IsZero() {
		s.meta.Lock()
		if !s.meta.lastUsed.Before(cutoff) {
			ok = false
		}
		s.meta.Unlock()
	}
	if ok {
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if ok {
		s.meta.Lock()
		s.meta.state = StateEvicted
		s.meta.Unlock()
	}
	return ok
}

// Drain stops admitting sessions. In-flight requests on existing
// sessions continue; pair with http.Server.Shutdown and then Close.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// Close drains, stops the scheduler and janitor, and evicts every
// remaining session. It is idempotent: drain paths routinely call it
// both explicitly and from a deferred cleanup.
func (m *Manager) Close() {
	m.Drain()
	m.closeOnce.Do(m.sched.close)
	if m.janitorStop != nil {
		close(m.janitorStop)
		<-m.janitorDone
		m.janitorStop = nil
	}
	m.mu.Lock()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	for _, id := range ids {
		if m.remove(id, time.Time{}) {
			m.Metrics.EvictedDrain.Add(1)
		}
	}
}

// Create admits and builds a new session with a server-assigned id.
func (m *Manager) Create(spec runner.Spec, traceLimit int) (*Session, error) {
	return m.CreateWithID("", spec, traceLimit)
}

// ValidSessionID reports whether a client-supplied session id is
// acceptable: non-empty, bounded, and drawn from the URL- and
// filename-safe alphabet the gateway mints from.
func ValidSessionID(id string) bool {
	if id == "" || len(id) > MaxSessionIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// CreateWithID admits and builds a new session. An empty id selects a
// server-assigned one; a non-empty id is the caller's (the gateway
// places sessions under globally-routable ids this way) and must be
// valid and unused. The admission slot is reserved before the
// (comparatively slow) simulator construction so concurrent creates
// cannot overshoot MaxSessions.
func (m *Manager) CreateWithID(id string, spec runner.Spec, traceLimit int) (*Session, error) {
	if id != "" && !ValidSessionID(id) {
		return nil, fmt.Errorf("%w: invalid session id %q", ErrConflict, id)
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if id != "" {
		if _, dup := m.sessions[id]; dup {
			m.mu.Unlock()
			return nil, fmt.Errorf("%w: session %s already exists", ErrConflict, id)
		}
	}
	if len(m.sessions)+m.reserved >= m.cfg.MaxSessions {
		m.mu.Unlock()
		m.Metrics.SessionsRejected.Add(1)
		return nil, ErrBackpressure
	}
	m.reserved++
	if id == "" {
		m.nextID++
		id = fmt.Sprintf("s-%06d", m.nextID)
	}
	m.mu.Unlock()

	release := func() {
		m.mu.Lock()
		m.reserved--
		m.mu.Unlock()
	}

	inst, err := m.cfg.Build(spec)
	if err != nil {
		release()
		return nil, err
	}
	rec := osm.NewRecorder()
	rec.Limit = traceLimit
	inst.Director().Tracer = rec

	s := &Session{ID: id, Spec: inst.Spec(), traceLimit: traceLimit, inst: inst, rec: rec}
	now := time.Now()
	s.meta.state = StateCreated
	s.meta.created = now
	s.meta.lastUsed = now

	m.mu.Lock()
	m.reserved--
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if _, dup := m.sessions[id]; dup {
		// Two concurrent creates raced on the same caller-supplied id
		// and both reserved a slot; the loser backs out.
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: session %s already exists", ErrConflict, id)
	}
	m.sessions[id] = s
	m.mu.Unlock()
	m.Metrics.SessionsCreated.Add(1)
	m.logf("session %s: created (%s %s)", id, spec.Target, spec.Workload)
	return s, nil
}

// Get returns the session by id.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return s, nil
}

// Evict removes the session via the API.
func (m *Manager) Evict(id string) error {
	if !m.remove(id, time.Time{}) {
		return ErrNotFound
	}
	m.Metrics.EvictedAPI.Add(1)
	m.logf("session %s: evicted by request", id)
	return nil
}

// List returns every resident session's info, sorted by id.
func (m *Manager) List() []Info {
	m.mu.Lock()
	ss := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		ss = append(ss, s)
	}
	m.mu.Unlock()
	infos := make([]Info, 0, len(ss))
	for _, s := range ss {
		infos = append(infos, s.info(s.inst.Arch(), false))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// StepResult reports one step request.
type StepResult struct {
	Stepped          uint64         `json:"stepped"`
	Cycle            uint64         `json:"cycle"`
	Done             bool           `json:"done"`
	State            State          `json:"state"`
	DeadlineExceeded bool           `json:"deadline_exceeded,omitempty"`
	Result           *runner.Result `json:"result,omitempty"`
}

// Step advances the session up to n cycles or until the program
// completes or the deadline passes, whichever is first. The request
// is validated and clamped here, then executed as a run-queue job: a
// worker steps the model in quanta, interleaving with other sessions'
// jobs, and this goroutine merely parks on the job's completion. A
// full run queue refuses the request immediately with ErrOverloaded.
func (m *Manager) Step(s *Session, n uint64, deadline time.Duration) (StepResult, error) {
	if n == 0 {
		return StepResult{}, fmt.Errorf("%w: cycles must be >= 1", ErrConflict)
	}
	if n > m.cfg.MaxStepCycles {
		n = m.cfg.MaxStepCycles
	}
	if deadline <= 0 {
		deadline = m.cfg.DefaultStepDeadline
	}
	if deadline > m.cfg.MaxStepDeadline {
		deadline = m.cfg.MaxStepDeadline
	}

	j := &stepJob{
		s:     s,
		want:  n,
		limit: time.Now().Add(deadline),
		done:  make(chan struct{}),
	}
	if err := m.sched.submit(j); err != nil {
		return StepResult{}, err
	}
	<-j.done
	return j.res, j.err
}

// stepable checks the lifecycle allows simulator mutation. Callers
// hold s.mu. StateRunning is steppable: a second request on a busy
// session queues behind the first (their jobs' quanta interleave),
// exactly as it used to queue on the session mutex.
func (s *Session) stepable() error {
	s.meta.Lock()
	defer s.meta.Unlock()
	switch s.meta.state {
	case StateCreated, StatePaused, StateRunning:
		return nil
	case StateDone:
		return fmt.Errorf("%w: session is done", ErrConflict)
	case StateBroken:
		return fmt.Errorf("%w: session is broken: %s", ErrConflict, s.meta.errMsg)
	default:
		return fmt.Errorf("%w: session is %s", ErrConflict, s.meta.state)
	}
}

// poison marks the session broken. Callers hold s.mu.
func (s *Session) poison(err error) {
	s.meta.Lock()
	defer s.meta.Unlock()
	if s.meta.state != StateEvicted {
		s.meta.state = StateBroken
	}
	s.meta.errMsg = err.Error()
	s.meta.lastUsed = time.Now()
}

// Poison marks the session broken from the request-isolation layer
// (an in-handler panic may have left the simulator inconsistent).
func (s *Session) Poison(err error) { s.poison(err) }

// Info returns the session's current summary, including the full
// originating spec (single-session surface; lists omit it).
func (m *Manager) Info(s *Session) Info { return s.info(s.inst.Arch(), true) }

// Registers returns the session's named architectural registers.
func (m *Manager) Registers(s *Session) (uint64, []runner.Reg) {
	s.mu.Lock()
	defer s.mu.Unlock()
	regs := s.inst.Registers()
	s.touch()
	return s.inst.Cycle(), regs
}

// CheckInvariants runs the one-shot structural invariant check over
// the session's model (debug surface; works whether or not the spec
// enabled per-step checking).
func (m *Manager) CheckInvariants(s *Session) (uint64, []invariant.Violation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.inst.CheckInvariants()
	s.touch()
	return s.inst.Cycle(), vs
}

// ReadMem copies a range of the session's simulated memory.
func (m *Manager) ReadMem(s *Session, addr, n uint32) ([]byte, error) {
	if n > m.cfg.MaxMemRead {
		return nil, fmt.Errorf("%w: read of %d bytes exceeds the %d-byte cap", ErrConflict, n, m.cfg.MaxMemRead)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := s.inst.ReadMem(addr, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConflict, err)
	}
	s.touch()
	return data, nil
}

// touch refreshes the idle clock. Callers hold s.mu.
func (s *Session) touch() {
	s.meta.Lock()
	s.meta.lastUsed = time.Now()
	s.meta.Unlock()
}

// The session-snapshot wire format: the internal/snap stream the
// simulators produce, wrapped with a header binding it to the target
// so a snapshot cannot be restored into a mismatched model. Version 2
// appends the session's Recorder state (whole-run trace totals,
// checksum and retained window), so a session migrated between
// workers — or parked and resurrected — keeps its full-run trace
// checksum, not just the tail after the hop. Version-1 blobs still
// restore (the trace restarts, as it always did).
const (
	sessHeader     = "osmserve-session"
	sessVersion    = 2
	sessVersionV1  = 1
	sessFlagTracer = 1 // v2: recorder state present
)

// Snapshot encodes the session's full simulation state in the
// internal/snap wire format.
func (m *Manager) Snapshot(s *Session) ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, cycle, err := m.snapshotLocked(s)
	if err != nil {
		return nil, 0, err
	}
	s.touch()
	m.Metrics.SnapshotBytesOut.Add(uint64(len(data)))
	return data, cycle, nil
}

// snapshotLocked encodes the session snapshot. Callers hold s.mu.
func (m *Manager) snapshotLocked(s *Session) ([]byte, uint64, error) {
	blob, err := s.inst.Snapshot()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrConflict, err)
	}
	cycle := s.inst.Cycle()
	w := snap.NewWriter()
	w.U32(snap.Magic)
	w.String(sessHeader)
	w.Version(sessVersion)
	w.String(s.Spec.Target)
	w.U64(cycle)
	w.Bytes32(blob)
	w.U8(sessFlagTracer)
	w.Blob(s.rec.SaveState)
	return w.Bytes(), cycle, nil
}

// SessionSnapshot is the decoded form of the session-snapshot wire
// format: the target-bound simulator blob plus (v2) the recorder
// state.
type SessionSnapshot struct {
	Target string
	Cycle  uint64
	Blob   []byte
	// Tracer is a reader over the recorder state, nil when the
	// snapshot carries none (v1, or flag unset). Blob and Tracer
	// alias the input data.
	Tracer *snap.Reader
}

// DecodeSessionSnapshot parses the session-snapshot wire format
// without touching any session — the shared decoder behind Restore
// and offline consumers (osmstore's time-travel query replays parked
// snapshots through it).
func DecodeSessionSnapshot(data []byte) (SessionSnapshot, error) {
	var ss SessionSnapshot
	r := snap.NewReader(data)
	if r.U32() != snap.Magic || r.String() != sessHeader {
		return ss, errors.New("not an osmserve session snapshot")
	}
	version := r.U16()
	if version != sessVersion && version != sessVersionV1 {
		return ss, fmt.Errorf("session snapshot version %d, this build reads %d and %d",
			version, sessVersionV1, sessVersion)
	}
	ss.Target = r.String()
	ss.Cycle = r.U64()
	ss.Blob = r.Bytes32()
	if version >= 2 {
		if flags := r.U8(); flags&sessFlagTracer != 0 {
			ss.Tracer = r.Blob()
		}
	}
	if err := r.Err(); err != nil {
		return SessionSnapshot{}, err
	}
	return ss, nil
}

// IsSessionSnapshot reports whether data starts with the
// session-snapshot header (any version).
func IsSessionSnapshot(data []byte) bool {
	r := snap.NewReader(data)
	return r.U32() == snap.Magic && r.String() == sessHeader && r.Err() == nil
}

// Restore replaces the session's simulation state from an uploaded
// snapshot. The session returns to the paused state (or effectively
// done, discovered on the next step). A v2 snapshot carries the
// originating session's trace state and restores it — migration does
// not reset the whole-run checksum; a v1 snapshot restarts the trace.
func (m *Manager) Restore(s *Session, data []byte) (uint64, error) {
	ss, err := DecodeSessionSnapshot(data)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrConflict, err)
	}
	target, cycle, blob, tracer := ss.Target, ss.Cycle, ss.Blob, ss.Tracer

	s.mu.Lock()
	defer s.mu.Unlock()
	if target != s.Spec.Target {
		return 0, fmt.Errorf("%w: snapshot is for target %s, session is %s", ErrConflict, target, s.Spec.Target)
	}
	s.meta.Lock()
	state := s.meta.state
	s.meta.Unlock()
	switch state {
	case StateCreated, StatePaused, StateDone:
	default:
		return 0, fmt.Errorf("%w: cannot restore a %s session", ErrConflict, state)
	}
	if err := s.inst.Restore(blob); err != nil {
		s.poison(err)
		return 0, fmt.Errorf("%w: %v", ErrConflict, err)
	}
	s.rec.Reset()
	if tracer != nil {
		if err := s.rec.LoadState(tracer); err != nil {
			// The simulator state is already restored and consistent;
			// only the trace continuity is lost. Start a fresh trace
			// rather than failing the whole restore.
			s.rec.Reset()
			m.logf("session %s: snapshot trace state unreadable, trace restarted: %v", s.ID, err)
		}
	}
	s.meta.Lock()
	s.meta.result = nil
	s.meta.errMsg = ""
	s.meta.Unlock()
	s.syncMeta(StatePaused)
	m.Metrics.SnapshotBytesIn.Add(uint64(len(data)))
	m.logf("session %s: restored at cycle %d", s.ID, cycle)
	return s.inst.Cycle(), nil
}

// AdminDrain stops admitting sessions and reports the ids still
// resident — the handle a gateway uses to drive migrate-out before a
// worker shuts down. Existing sessions keep serving (step, snapshot,
// evict) so their state can be copied off.
func (m *Manager) AdminDrain() []string {
	m.mu.Lock()
	m.draining = true
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Strings(ids)
	m.logf("admin drain: admissions stopped, %d sessions resident", len(ids))
	return ids
}

// TraceEvents returns the retained trace events with Step >= since
// plus the live totals, under the session lock.
func (m *Manager) TraceEvents(s *Session, since uint64) ([]osm.Event, uint64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs := s.rec.EventsSince(since)
	// Copy: the ring may rotate after the lock is released.
	out := make([]osm.Event, len(evs))
	copy(out, evs)
	s.touch()
	return out, s.rec.Total(), s.rec.Checksum()
}
