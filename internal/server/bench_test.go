package server

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/runner"
)

// benchSpec is a workload long enough never to finish during a
// benchmark run.
func benchSpec() runner.Spec {
	return runner.Spec{Target: "strongarm", Workload: "gsm/dec", N: 10_000_000}
}

// BenchmarkHTTPStep measures one step request end to end — HTTP
// round-trip, session lock, simulation, JSON response — for several
// chunk sizes. chunk=1 is the per-request overhead floor; large
// chunks show where simulation dominates.
func BenchmarkHTTPStep(b *testing.B) {
	for _, chunk := range []uint64{1, 100, 10_000} {
		b.Run(fmt.Sprintf("cycles=%d", chunk), func(b *testing.B) {
			_, cl, done := newTestServer(b, Config{IdleTimeout: -1})
			defer done()
			info := cl.create(benchSpec())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cl.step(info.ID, chunk)
			}
			b.StopTimer()
			b.ReportMetric(float64(chunk)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}

// BenchmarkHTTPSessions measures aggregate simulation throughput with
// K concurrent sessions each driven by its own client goroutine
// (5000-cycle step requests) — the sessions-per-core scaling curve.
func BenchmarkHTTPSessions(b *testing.B) {
	const chunk = 5000
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			_, cl, done := newTestServer(b, Config{IdleTimeout: -1})
			defer done()
			ids := make([]string, n)
			for i := range ids {
				ids[i] = cl.create(benchSpec()).ID
			}
			reqs := b.N/n + 1
			b.ResetTimer()
			var wg sync.WaitGroup
			for _, id := range ids {
				wg.Add(1)
				go func(id string) {
					defer wg.Done()
					for i := 0; i < reqs; i++ {
						cl.step(id, chunk)
					}
				}(id)
			}
			wg.Wait()
			b.StopTimer()
			total := float64(chunk) * float64(reqs) * float64(n)
			b.ReportMetric(total/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}
