package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/wire"
)

// benchSpecs are per-target workloads long enough never to finish
// during a benchmark run — one per case study.
var benchSpecs = []runner.Spec{
	{Target: "strongarm", Workload: "gsm/dec", N: 10_000_000},
	{Target: "ppc750", Workload: "spec/crc", N: 10_000_000},
}

func benchSpec() runner.Spec { return benchSpecs[0] }

// BenchmarkHTTPStep measures one step request end to end — HTTP
// round-trip, scheduler queue, simulation, JSON response — for
// several chunk sizes on both case studies. chunk=1 is the
// per-request overhead floor; large chunks show where simulation
// dominates.
func BenchmarkHTTPStep(b *testing.B) {
	for _, spec := range benchSpecs {
		for _, chunk := range []uint64{1, 100, 10_000} {
			b.Run(fmt.Sprintf("%s/cycles=%d", spec.Target, chunk), func(b *testing.B) {
				_, cl, done := newTestServer(b, Config{IdleTimeout: -1})
				defer done()
				info := cl.create(spec)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cl.step(info.ID, chunk)
				}
				b.StopTimer()
				b.ReportMetric(float64(chunk)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
			})
		}
	}
}

// BenchmarkWireStep is BenchmarkHTTPStep's binary-protocol twin: one
// step request end to end over the wire plane — frame round-trip on a
// local TCP socket, scheduler queue, simulation, snap-encoded
// response. The cycles=1 pair is the per-request overhead comparison
// EXPERIMENTS.md records.
func BenchmarkWireStep(b *testing.B) {
	for _, spec := range benchSpecs {
		for _, chunk := range []uint64{1, 100, 10_000} {
			b.Run(fmt.Sprintf("%s/cycles=%d", spec.Target, chunk), func(b *testing.B) {
				_, cl, wc, done := newWireTestServer(b, Config{IdleTimeout: -1})
				defer done()
				info := cl.create(spec)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := wc.Step(info.ID, chunk, 0); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(chunk)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
			})
		}
	}
}

// BenchmarkWireStepUnix is BenchmarkWireStep over a unix-domain
// socket — the lowest-latency local transport, and the configuration
// EXPERIMENTS.md's overhead table quotes for same-host clients.
func BenchmarkWireStepUnix(b *testing.B) {
	for _, spec := range benchSpecs {
		for _, chunk := range []uint64{1, 100, 10_000} {
			b.Run(fmt.Sprintf("%s/cycles=%d", spec.Target, chunk), func(b *testing.B) {
				mgr, _, httpDone := newTestServer(b, Config{IdleTimeout: -1})
				defer httpDone()
				ws := NewWireServer(mgr)
				sock := b.TempDir() + "/wire.sock"
				ln, err := net.Listen("unix", sock)
				if err != nil {
					b.Fatal(err)
				}
				go ws.Serve(ln)
				defer func() {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					ws.Shutdown(ctx)
					cancel()
				}()
				wc, err := wire.Dial("unix:" + sock)
				if err != nil {
					b.Fatal(err)
				}
				defer wc.Close()
				s, err := mgr.Create(spec, 16)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := wc.Step(s.ID, chunk, 0); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(chunk)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
			})
		}
	}
}

// BenchmarkSchedStep measures Manager.Step alone — scheduler submit,
// worker handoff, quantum, completion wakeup — without any protocol
// round trip, to attribute the protocol benchmarks' per-request cost.
func BenchmarkSchedStep(b *testing.B) {
	mgr := NewManager(Config{IdleTimeout: -1})
	defer mgr.Close()
	s, err := mgr.Create(benchSpec(), 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Step(s, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEcho measures the wire round trip against the hello
// handler (no scheduler, no simulation): pure protocol + transport.
func BenchmarkWireEcho(b *testing.B) {
	_, _, wc, done := newWireTestServer(b, Config{IdleTimeout: -1})
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wc.Hello("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHTTPSessions measures aggregate simulation throughput with
// K concurrent sessions each driven by its own client goroutine
// (5000-cycle step requests) — the sessions-per-core scaling curve.
func BenchmarkHTTPSessions(b *testing.B) {
	const chunk = 5000
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			_, cl, done := newTestServer(b, Config{IdleTimeout: -1})
			defer done()
			ids := make([]string, n)
			for i := range ids {
				ids[i] = cl.create(benchSpec()).ID
			}
			reqs := b.N/n + 1
			b.ResetTimer()
			var wg sync.WaitGroup
			for _, id := range ids {
				wg.Add(1)
				go func(id string) {
					defer wg.Done()
					for i := 0; i < reqs; i++ {
						cl.step(id, chunk)
					}
				}(id)
			}
			wg.Wait()
			b.StopTimer()
			total := float64(chunk) * float64(reqs) * float64(n)
			b.ReportMetric(total/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}
