package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/osm"
	"repro/internal/runner"
)

// slowSession builds a session around a scripted instance whose every
// cycle takes perCycle of wall time.
func slowSession(perCycle time.Duration) *Session {
	var cycle uint64
	inst := runner.NewFromHooks(runner.Hooks{
		Spec: runner.Spec{Target: "strongarm", Workload: "scripted"},
		Arch: "arm",
		Step: func() error {
			time.Sleep(perCycle)
			cycle++
			return nil
		},
		Cycle: func() uint64 { return cycle },
	})
	s := &Session{ID: "slow", Spec: inst.Spec(), inst: inst, rec: osm.NewRecorder()}
	now := time.Now()
	s.meta.state = StateCreated
	s.meta.created = now
	s.meta.lastUsed = now
	return s
}

// TestStepDeadlineSmallRequest pins the modulus bug: the deadline used
// to be consulted only when Stepped was a positive multiple of 4096,
// so a request for fewer cycles of a slow model ran to completion no
// matter how far past its deadline it got. The geometric ramp must
// stop a 200-cycle request on a model that takes ~1ms/cycle well
// before all 200 cycles elapse.
func TestStepDeadlineSmallRequest(t *testing.T) {
	m := NewManager(Config{})
	s := slowSession(time.Millisecond)
	res, err := m.Step(s, 200, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineExceeded {
		t.Fatalf("deadline not reported exceeded: %+v", res)
	}
	if res.Stepped == 0 || res.Stepped >= 200 {
		t.Fatalf("stepped %d cycles, want some progress but far fewer than 200", res.Stepped)
	}
	if res.State != StatePaused {
		t.Fatalf("state = %s, want %s", res.State, StatePaused)
	}
	// A deadline-exceeded session is paused, not broken: stepping again
	// must work and make progress.
	res2, err := m.Step(s, 5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stepped != 5 || res2.DeadlineExceeded {
		t.Fatalf("follow-up step: %+v", res2)
	}
}

// TestStepDeadlineFastModelUnaffected: a fast model must complete a
// small request without tripping the ramp's extra checks.
func TestStepDeadlineFastModelUnaffected(t *testing.T) {
	m := NewManager(Config{})
	s := slowSession(0)
	res, err := m.Step(s, 3000, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stepped != 3000 || res.DeadlineExceeded {
		t.Fatalf("fast model: %+v", res)
	}
}

// TestInvariantsEndpoint exercises the debug endpoint on a live model:
// a fresh strongarm session must report a clean structural check, both
// before and after stepping some cycles.
func TestInvariantsEndpoint(t *testing.T) {
	_, cl, stop := newTestServer(t, Config{})
	defer stop()

	var created struct {
		ID string `json:"id"`
	}
	resp, body := cl.doJSON(http.MethodPost, "/v1/sessions",
		map[string]any{"target": "strongarm", "workload": "gsm/dec", "n": 2, "check": true}, &created)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}

	check := func(wantCycleAtLeast uint64) {
		t.Helper()
		var out struct {
			Cycle      uint64            `json:"cycle"`
			Clean      bool              `json:"clean"`
			Violations []json.RawMessage `json:"violations"`
		}
		resp, body := cl.doJSON(http.MethodGet, "/v1/sessions/"+created.ID+"/invariants", nil, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("invariants: %d %s", resp.StatusCode, body)
		}
		if !out.Clean || len(out.Violations) != 0 {
			t.Fatalf("model not clean: %s", body)
		}
		if out.Cycle < wantCycleAtLeast {
			t.Fatalf("cycle = %d, want >= %d", out.Cycle, wantCycleAtLeast)
		}
	}

	check(0)
	resp, body = cl.doJSON(http.MethodPost, "/v1/sessions/"+created.ID+"/step",
		map[string]any{"cycles": 500}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: %d %s", resp.StatusCode, body)
	}
	check(500)
}
