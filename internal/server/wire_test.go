package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/wire"
)

// newWireTestServer stands up both protocol planes over one manager:
// the HTTP handler (session creation and the JSON control plane) and
// a wire listener on a local TCP socket.
func newWireTestServer(t testing.TB, cfg Config) (*Manager, *client, *wire.Client, func()) {
	t.Helper()
	mgr, cl, httpDone := newTestServer(t, cfg)
	ws := NewWireServer(mgr)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ws.Serve(ln) }()
	wc, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return mgr, cl, wc, func() {
		wc.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := ws.Shutdown(ctx); err != nil {
			t.Errorf("wire shutdown: %v", err)
		}
		cancel()
		if err := <-serveErr; err != nil {
			t.Errorf("wire serve: %v", err)
		}
		httpDone()
	}
}

// wireStepToDone drives the session to completion over the binary
// protocol in bounded chunks.
func wireStepToDone(t *testing.T, wc *wire.Client, id string, chunk uint64) wire.StepResponse {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		resp, err := wc.Step(id, chunk, 0)
		if err != nil {
			t.Fatalf("wire step: %v", err)
		}
		if resp.Done {
			return resp
		}
	}
	t.Fatalf("session %s did not finish over the wire", id)
	return wire.StepResponse{}
}

// A workload stepped to completion over the binary protocol must be
// indistinguishable from the in-process run — same cycle count, final
// registers, reported values and whole-run trace checksum — on both
// case-study targets. This is the wire twin of TestDifferentialHTTP:
// together they prove the two planes drive identical simulations.
func TestDifferentialWire(t *testing.T) {
	_, cl, wc, done := newWireTestServer(t, Config{})
	defer done()
	for _, spec := range diffSpecs {
		ref := runRef(t, spec)
		info := cl.create(spec) // control plane stays on HTTP
		final := wireStepToDone(t, wc, info.ID, 10_000)
		if final.Cycle != ref.cycles {
			t.Fatalf("%s: wire run took %d cycles, in-process %d", spec.Target, final.Cycle, ref.cycles)
		}
		if !final.HasResult {
			t.Fatalf("%s: done without a result", spec.Target)
		}
		if final.Instrs != ref.instrs {
			t.Fatalf("%s: %d instrs, want %d", spec.Target, final.Instrs, ref.instrs)
		}
		if fmt.Sprint(final.Reported) != fmt.Sprint(ref.reported) {
			t.Fatalf("%s: reported %v, want %v", spec.Target, final.Reported, ref.reported)
		}
		if final.State != string(StateDone) {
			t.Fatalf("%s: state %q after completion", spec.Target, final.State)
		}
		regs, err := wc.Registers(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]runner.Reg, len(regs.Regs))
		for i, rg := range regs.Regs {
			got[i] = runner.Reg{Name: rg.Name, Value: rg.Value}
		}
		compareRegs(t, spec.Target+"/wire", ref.regs, got)
		tr, err := wc.Trace(info.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sum := fmt.Sprintf("%016x", tr.Checksum); sum != ref.checksum {
			t.Fatalf("%s: trace checksum %s, want %s", spec.Target, sum, ref.checksum)
		}
		if tr.Total == 0 || len(tr.Events) == 0 {
			t.Fatalf("%s: empty trace (total %d, %d events)", spec.Target, tr.Total, len(tr.Events))
		}
		// Both views of the same session must agree byte for byte.
		if http := cl.info(info.ID); http.TraceChecksum != fmt.Sprintf("%016x", tr.Checksum) ||
			http.Cycle != final.Cycle {
			t.Fatalf("%s: HTTP view (cycle %d, %s) disagrees with wire view (cycle %d, %016x)",
				spec.Target, http.Cycle, http.TraceChecksum, final.Cycle, tr.Checksum)
		}
		mem, err := wc.ReadMem(info.ID, 0, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(mem.Data) != 64 {
			t.Fatalf("%s: mem peek returned %d bytes, want 64", spec.Target, len(mem.Data))
		}
	}
}

// The NACK surface mirrors the HTTP status mapping: not-found,
// conflict, and bad-request all come back as typed codes, and the
// connection survives every one of them.
func TestWireNacks(t *testing.T) {
	mgr, cl, wc, done := newWireTestServer(t, Config{})
	defer done()

	if resp, err := wc.Hello("test"); err != nil || resp.Server != "osmserve" {
		t.Fatalf("hello: %+v, %v", resp, err)
	}

	wantNack := func(err error, code wire.NackCode) {
		t.Helper()
		var ne *wire.NackError
		if !errors.As(err, &ne) || ne.Code != code {
			t.Fatalf("err = %v, want nack %s", err, code)
		}
	}
	_, err := wc.Step("s-999999", 10, 0)
	wantNack(err, wire.NackNotFound)

	info := cl.create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 20})
	_, err = wc.Step(info.ID, 0, 0)
	wantNack(err, wire.NackConflict)
	wireStepToDone(t, wc, info.ID, 5_000)
	_, err = wc.Step(info.ID, 1, 0)
	wantNack(err, wire.NackConflict)
	_, err = wc.ReadMem(info.ID, 0, 999_999_999)
	wantNack(err, wire.NackConflict)

	// A frame whose payload does not decode as its op's request gets
	// a bad-request NACK, not a dropped connection.
	raw, err := net.Dial("tcp", wc.RemoteAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := wire.WriteFrame(raw, wire.Frame{Op: wire.OpStep, ReqID: 42, Payload: []byte{0xff}}); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != wire.OpNack || f.ReqID != 42 {
		t.Fatalf("garbage payload answered %+v", f)
	}
	var n wire.Nack
	if err := n.Decode(f.Payload); err != nil || n.Code != wire.NackBadRequest {
		t.Fatalf("nack = %+v, %v; want bad-request", n, err)
	}
	if got := mgr.Metrics.WireNacks.Load(); got != 5 {
		t.Fatalf("wire nacks = %d, want 5", got)
	}
}

// scriptedBuild is the Config.Build seam used by the scale and drain
// tests: a cheap scripted instance (a counter, not a simulator) whose
// per-cycle cost is configurable.
func scriptedBuild(length uint64, perCycle time.Duration) func(runner.Spec) (*runner.Instance, error) {
	return func(spec runner.Spec) (*runner.Instance, error) {
		var cycle uint64
		return runner.NewFromHooks(runner.Hooks{
			Spec: spec,
			Arch: "arm",
			Step: func() error {
				if perCycle > 0 {
					time.Sleep(perCycle)
				}
				cycle++
				return nil
			},
			Cycle: func() uint64 { return cycle },
			Done:  func() bool { return cycle >= length },
			Finalize: func() (runner.Result, error) {
				return runner.Result{Target: spec.Target, Arch: "arm", Cycles: cycle, Instrs: cycle}, nil
			},
			Registers: func() []runner.Reg {
				return []runner.Reg{{Name: "r0", Value: uint32(cycle)}}
			},
			ReadMem: func(addr, n uint32) ([]byte, error) { return make([]byte, n), nil },
		}), nil
	}
}

// Ten thousand resident idle sessions must cost parked structs, not
// goroutines: the process goroutine count stays bounded by the worker
// pool and test harness, nowhere near the session count. A mixed
// HTTP + wire load over a slice of those sessions must then reconcile
// /metrics exactly. Run under -race in CI.
func TestScaleIdleSessions(t *testing.T) {
	const (
		nSessions = 10_000
		nActive   = 64
		nRounds   = 4
		chunk     = 500
	)
	cfg := Config{
		MaxSessions: nSessions,
		IdleTimeout: -1,
		Build:       scriptedBuild(1_000_000, 0),
	}
	mgr, cl, wc, done := newWireTestServer(t, cfg)
	defer done()

	ids := make([]string, nSessions)
	for i := range ids {
		s, err := mgr.Create(runner.Spec{Target: "scripted", Workload: "idle"}, 16)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		ids[i] = s.ID
	}
	if got := mgr.LiveCount(); got != nSessions {
		t.Fatalf("%d sessions live, want %d", got, nSessions)
	}
	// The bound: workers + janitor + wire/HTTP plumbing + the test
	// harness — two orders of magnitude below the session count.
	if got, limit := runtime.NumGoroutine(), 100+4*runtime.GOMAXPROCS(0); got > limit {
		t.Fatalf("%d goroutines with %d idle sessions (limit %d): idle sessions are not free", got, nSessions, limit)
	}

	var totalStepped, stepCalls, wireCalls atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < nActive; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := ids[i*(nSessions/nActive)]
			for r := 0; r < nRounds; r++ {
				if i%2 == 0 {
					res := cl.step(id, chunk)
					totalStepped.Add(res.Stepped)
				} else {
					resp, err := wc.Step(id, chunk, 0)
					if err != nil {
						t.Errorf("wire step %s: %v", id, err)
						return
					}
					totalStepped.Add(resp.Stepped)
					wireCalls.Add(1)
				}
				stepCalls.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Still bounded after the burst (allow keep-alive connections a
	// moment to wind down).
	limit := 100 + 4*runtime.GOMAXPROCS(0)
	waitFor(t, func() bool { return runtime.NumGoroutine() <= limit })

	// Exact reconciliation across both planes, scraped like
	// Prometheus would.
	resp, body := cl.do("GET", "/metrics", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	text := string(body)
	if got := metricValue(t, text, "osmserve_cycles_simulated_total"); got != totalStepped.Load() {
		t.Fatalf("cycles_simulated_total = %d, clients stepped %d", got, totalStepped.Load())
	}
	if got := metricValue(t, text, "osmserve_step_requests_total"); got != stepCalls.Load() {
		t.Fatalf("step_requests_total = %d, clients made %d", got, stepCalls.Load())
	}
	if got := metricValue(t, text, "osmserve_wire_requests_total"); got != wireCalls.Load() {
		t.Fatalf("wire_requests_total = %d, wire clients made %d", got, wireCalls.Load())
	}
	if got := metricValue(t, text, "osmserve_sessions_live"); got != nSessions {
		t.Fatalf("sessions_live = %d, want %d", got, nSessions)
	}
	if got := metricValue(t, text, "osmserve_steps_rejected_total"); got != 0 {
		t.Fatalf("steps_rejected_total = %d, want 0", got)
	}
	if got := metricValue(t, text, "osmserve_request_panics_total"); got != 0 {
		t.Fatalf("request_panics_total = %d, want 0", got)
	}
	if got := metricValue(t, text, "osmserve_step_queue_depth"); got != 0 {
		t.Fatalf("step_queue_depth = %d after quiesce, want 0", got)
	}
	if got := mgr.Metrics.StepLatency.Count(); got != stepCalls.Load() {
		t.Fatalf("step latency histogram holds %d observations, want %d", got, stepCalls.Load())
	}
	quanta := metricValue(t, text, "osmserve_step_quanta_total")
	if quanta < stepCalls.Load() {
		t.Fatalf("step_quanta_total = %d, below the request count %d", quanta, stepCalls.Load())
	}
}

// A full run queue sheds load with a typed refusal on both planes —
// HTTP 429 and wire NackBackpressure — and counts every refusal.
func TestStepBackpressure(t *testing.T) {
	// One worker, queue of one, slow scripted sessions: the second
	// concurrent step occupies the queue slot and the third must be
	// refused.
	cfg := Config{
		MaxSessions:    8,
		IdleTimeout:    -1,
		Workers:        1,
		MaxQueuedSteps: 1,
		Build:          scriptedBuild(1_000_000, time.Millisecond),
	}
	mgr, cl, wc, done := newWireTestServer(t, cfg)
	defer done()
	s, err := mgr.Create(runner.Spec{Target: "scripted"}, 16)
	if err != nil {
		t.Fatal(err)
	}

	// Park one long step on the only queue slot.
	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		close(started)
		_, err := mgr.Step(s, 500, time.Minute)
		finished <- err
	}()
	<-started
	waitFor(t, func() bool { return mgr.sched.depth() == 1 })

	// Both planes must now refuse instantly.
	resp, _ := cl.doJSON("POST", "/v1/sessions/"+s.ID+"/step", StepRequest{Cycles: 10}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP step on full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	_, err = wc.Step(s.ID, 10, 0)
	var ne *wire.NackError
	if !errors.As(err, &ne) || ne.Code != wire.NackBackpressure {
		t.Fatalf("wire step on full queue: %v, want NackBackpressure", err)
	}
	if got := mgr.Metrics.StepsRejected.Load(); got != 2 {
		t.Fatalf("steps_rejected = %d, want 2", got)
	}
	if err := <-finished; err != nil {
		t.Fatalf("parked step: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// Shutdown must flush in-flight responses before closing connections:
// a step executing when the drain starts still delivers its complete
// response frame, and only then does the connection die.
func TestWireShutdownFlushesInFlight(t *testing.T) {
	cfg := Config{
		MaxSessions: 4,
		IdleTimeout: -1,
		Build:       scriptedBuild(1_000_000, 100*time.Microsecond),
	}
	mgr, _, httpDone := newTestServer(t, cfg)
	defer httpDone()
	ws := NewWireServer(mgr)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ws.Serve(ln) }()
	wc, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	s, err := mgr.Create(runner.Spec{Target: "scripted"}, 16)
	if err != nil {
		t.Fatal(err)
	}

	type stepOut struct {
		resp wire.StepResponse
		err  error
	}
	out := make(chan stepOut, 1)
	go func() {
		// ~100ms of scripted work: comfortably in flight when the
		// drain begins, comfortably inside its deadline.
		resp, err := wc.Step(s.ID, 1000, time.Minute)
		out <- stepOut{resp, err}
	}()
	waitFor(t, func() bool { return mgr.sched.depth() > 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ws.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	got := <-out
	if got.err != nil {
		t.Fatalf("in-flight step lost to shutdown: %v", got.err)
	}
	if got.resp.Stepped != 1000 {
		t.Fatalf("in-flight step returned %d cycles, want 1000", got.resp.Stepped)
	}
	// The drained listener accepts nothing further.
	if _, err := wire.Dial(ln.Addr().String()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
	// And the existing connection is closed once flushed.
	if _, err := wc.Step(s.ID, 1, 0); err == nil {
		t.Fatal("request succeeded on a drained connection")
	}
}

// Concurrent steps on one session interleave through the scheduler
// (they used to queue on the session mutex): all succeed, and the
// session's cycle accounting stays exact.
func TestConcurrentStepsOneSession(t *testing.T) {
	cfg := Config{
		MaxSessions: 2,
		IdleTimeout: -1,
		Build:       scriptedBuild(1_000_000, 0),
	}
	mgr, _, wc, done := newWireTestServer(t, cfg)
	defer done()
	s, err := mgr.Create(runner.Spec{Target: "scripted"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	const (
		nClients = 8
		chunk    = 5000 // larger than the 4096-cycle quantum: forces requeues
	)
	var stepped atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := wc.Step(s.ID, chunk, 0)
			if err != nil {
				t.Errorf("concurrent step: %v", err)
				return
			}
			stepped.Add(resp.Stepped)
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if got := stepped.Load(); got != nClients*chunk {
		t.Fatalf("clients stepped %d cycles total, want %d", got, nClients*chunk)
	}
	info := mgr.Info(s)
	if info.Cycle != nClients*chunk || info.CyclesStepped != nClients*chunk {
		t.Fatalf("session at cycle %d (stepped %d), want %d", info.Cycle, info.CyclesStepped, nClients*chunk)
	}
	if info.State != StatePaused {
		t.Fatalf("state %q after concurrent steps, want paused", info.State)
	}
}

// The wire metrics render under their documented names.
func TestWireMetricsRender(t *testing.T) {
	m := NewMetrics()
	m.WireRequests.Add(2)
	m.WireNacks.Add(1)
	m.WireConnections.Add(1)
	m.StepsRejected.Add(4)
	m.StepQuanta.Add(9)
	m.QueueDepth = func() int { return 3 }
	var b strings.Builder
	m.Render(&b)
	out := b.String()
	for _, want := range []string{
		"osmserve_wire_requests_total 2",
		"osmserve_wire_nacks_total 1",
		"osmserve_wire_connections_total 1",
		"osmserve_steps_rejected_total 4",
		"osmserve_step_quanta_total 9",
		"# TYPE osmserve_step_queue_depth gauge",
		"osmserve_step_queue_depth 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}
