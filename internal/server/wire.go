package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"

	"context"
)

// WireServer serves the binary wire protocol (internal/wire) over a
// listener, sharing the Manager — session table, step scheduler,
// metrics — with the HTTP control plane. The hot path (step, register
// and memory peeks, trace pulls) runs here without JSON marshalling
// or per-request connection setup; everything else (create, list,
// snapshot, restore, evict) stays on HTTP.
//
// Per connection: one reader goroutine parses frames and dispatches
// each request to its own goroutine, so a long step on one session
// never blocks a register peek on another multiplexed over the same
// connection. Responses are serialized through one buffered writer
// and flushed per response. Errors travel as NACK frames whose codes
// mirror the HTTP status mapping, so both planes present one
// backpressure and lifecycle contract.
type WireServer struct {
	m *Manager

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	connWG sync.WaitGroup
}

// NewWireServer returns a wire server over the manager.
func NewWireServer(m *Manager) *WireServer {
	return &WireServer{m: m, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener fails or Shutdown
// closes it. It blocks; run it in its own goroutine.
func (ws *WireServer) Serve(ln net.Listener) error {
	ws.mu.Lock()
	if ws.draining {
		ws.mu.Unlock()
		return ErrDraining
	}
	ws.ln = ln
	ws.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			ws.mu.Lock()
			draining := ws.draining
			ws.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		ws.mu.Lock()
		if ws.draining {
			ws.mu.Unlock()
			conn.Close()
			continue
		}
		ws.conns[conn] = struct{}{}
		ws.connWG.Add(1)
		ws.mu.Unlock()
		ws.m.Metrics.WireConnections.Add(1)
		go ws.serveConn(conn)
	}
}

// Shutdown drains the wire plane: it closes the listener, stops the
// connection readers, waits for in-flight requests to complete and
// their responses to flush, then closes the connections. The context
// bounds the wait; on expiry remaining connections are torn down
// immediately.
func (ws *WireServer) Shutdown(ctx context.Context) error {
	ws.mu.Lock()
	ws.draining = true
	ln := ws.ln
	conns := make([]net.Conn, 0, len(ws.conns))
	for c := range ws.conns {
		conns = append(conns, c)
	}
	ws.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// A past read deadline unblocks each reader's pending ReadFrame;
	// the reader then waits out its handlers, flushes and closes.
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		ws.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, c := range conns {
			c.Close()
		}
		return ctx.Err()
	}
}

// connWriter serializes response frames from concurrent handlers
// onto one buffered connection writer, flushing per response.
type connWriter struct {
	mu sync.Mutex
	bw *bufio.Writer
}

func (cw *connWriter) write(f wire.Frame) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if err := wire.WriteFrame(cw.bw, f); err == nil {
		cw.bw.Flush()
	}
	// A write error means the peer is gone; the reader will observe
	// the same failure and retire the connection.
}

func (ws *WireServer) serveConn(conn net.Conn) {
	defer ws.connWG.Done()
	cw := &connWriter{bw: bufio.NewWriter(conn)}
	br := bufio.NewReader(conn)
	var handlers sync.WaitGroup
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			break
		}
		ws.m.Metrics.WireRequests.Add(1)
		handlers.Add(1)
		go func(f wire.Frame) {
			defer handlers.Done()
			ws.handle(cw, f)
		}(f)
	}
	// Drain contract: every dispatched request completes and its
	// response frame is flushed before the connection closes.
	handlers.Wait()
	cw.mu.Lock()
	cw.bw.Flush()
	cw.mu.Unlock()
	conn.Close()
	ws.mu.Lock()
	delete(ws.conns, conn)
	ws.mu.Unlock()
}

// nackFor maps manager errors onto NACK codes, mirroring
// writeAPIError's HTTP status mapping.
func nackFor(err error) wire.NackCode {
	switch {
	case errors.Is(err, ErrBackpressure), errors.Is(err, ErrOverloaded):
		return wire.NackBackpressure
	case errors.Is(err, ErrDraining):
		return wire.NackDraining
	case errors.Is(err, ErrNotFound):
		return wire.NackNotFound
	case errors.Is(err, ErrConflict):
		return wire.NackConflict
	default:
		return wire.NackInternal
	}
}

func (ws *WireServer) nack(cw *connWriter, reqID uint32, code wire.NackCode, msg string) {
	ws.m.Metrics.WireNacks.Add(1)
	cw.write(wire.Frame{Op: wire.OpNack, ReqID: reqID, Payload: (&wire.Nack{Code: code, Msg: msg}).Encode()})
}

// handle serves one request frame. Panics are isolated per request,
// exactly like the HTTP plane: counted, the session (if resolved)
// poisoned, and answered with an internal NACK.
func (ws *WireServer) handle(cw *connWriter, f wire.Frame) {
	var s *Session
	defer func() {
		if p := recover(); p != nil {
			ws.m.Metrics.Panics.Add(1)
			if s != nil {
				s.Poison(fmt.Errorf("request panic: %v", p))
			}
			ws.nack(cw, f.ReqID, wire.NackInternal, fmt.Sprintf("request panic: %v", p))
		}
	}()

	m := ws.m
	reply := func(payload []byte) {
		cw.write(wire.Frame{Op: f.Op, ReqID: f.ReqID, Payload: payload})
	}
	fail := func(err error) {
		ws.nack(cw, f.ReqID, nackFor(err), err.Error())
	}
	// Resolve the session named by the request, or NACK. The id stays
	// in s for the panic isolator above.
	resolve := func(id string) bool {
		var err error
		s, err = m.Get(id)
		if err != nil {
			fail(err)
			return false
		}
		return true
	}

	switch f.Op {
	case wire.OpHello:
		var req wire.HelloRequest
		if err := req.Decode(f.Payload); err != nil {
			ws.nack(cw, f.ReqID, wire.NackBadRequest, err.Error())
			return
		}
		reply((&wire.HelloResponse{Server: "osmserve", MaxPayload: wire.MaxPayload}).Encode())

	case wire.OpStep:
		var req wire.StepRequest
		if err := req.Decode(f.Payload); err != nil {
			ws.nack(cw, f.ReqID, wire.NackBadRequest, err.Error())
			return
		}
		if !resolve(req.Session) {
			return
		}
		res, err := m.Step(s, req.Cycles, time.Duration(req.DeadlineMS)*time.Millisecond)
		if err != nil {
			fail(err)
			return
		}
		resp := wire.StepResponse{
			Stepped:          res.Stepped,
			Cycle:            res.Cycle,
			Done:             res.Done,
			DeadlineExceeded: res.DeadlineExceeded,
			State:            string(res.State),
		}
		if res.Result != nil {
			resp.HasResult = true
			resp.Instrs = res.Result.Instrs
			resp.Reported = res.Result.Reported
		}
		reply(resp.Encode())

	case wire.OpRegisters:
		var req wire.RegistersRequest
		if err := req.Decode(f.Payload); err != nil {
			ws.nack(cw, f.ReqID, wire.NackBadRequest, err.Error())
			return
		}
		if !resolve(req.Session) {
			return
		}
		cycle, regs := m.Registers(s)
		resp := wire.RegistersResponse{Cycle: cycle, Regs: make([]wire.Reg, len(regs))}
		for i, rg := range regs {
			resp.Regs[i] = wire.Reg{Name: rg.Name, Value: rg.Value}
		}
		reply(resp.Encode())

	case wire.OpMem:
		var req wire.MemRequest
		if err := req.Decode(f.Payload); err != nil {
			ws.nack(cw, f.ReqID, wire.NackBadRequest, err.Error())
			return
		}
		if !resolve(req.Session) {
			return
		}
		data, err := m.ReadMem(s, req.Addr, req.Len)
		if err != nil {
			fail(err)
			return
		}
		reply((&wire.MemResponse{Addr: req.Addr, Data: data}).Encode())

	case wire.OpTrace:
		var req wire.TraceRequest
		if err := req.Decode(f.Payload); err != nil {
			ws.nack(cw, f.ReqID, wire.NackBadRequest, err.Error())
			return
		}
		if !resolve(req.Session) {
			return
		}
		evs, total, sum := m.TraceEvents(s, req.Since)
		resp := wire.TraceResponse{Total: total, Checksum: sum, Events: make([]wire.Event, len(evs))}
		for i, e := range evs {
			resp.Events[i] = wire.Event{Step: e.Step, Machine: e.Machine, Edge: e.Edge, From: e.From, To: e.To}
		}
		reply(resp.Encode())

	default:
		// ParseHeader already rejects unknown ops; a request-only op
		// arriving here (OpNack) is a protocol violation.
		ws.nack(cw, f.ReqID, wire.NackBadRequest, fmt.Sprintf("op %s is not a request", f.Op))
	}
}
