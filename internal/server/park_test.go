package server

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/store"
)

// Parking goes through the chunk store and back: the blob a
// resurrection loads must be byte-identical to the snapshot the
// eviction wrote.
func TestParkStoreRoundTripByteIdentity(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Config{IdleTimeout: -1, ParkDir: dir})
	defer m.Close()

	s, err := m.Create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 40}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(s, 2000, time.Second); err != nil {
		t.Fatal(err)
	}
	want, cycle, err := m.Snapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.park(s); err != nil {
		t.Fatal(err)
	}

	meta, blob, err := LoadPark(dir, s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatal("park round trip through the store is not byte-identical")
	}
	if meta.Cycle != cycle || meta.Target != "strongarm" || meta.TraceLimit != 128 {
		t.Fatalf("park metadata = %+v", meta)
	}
	// The blob must live in the store, not as a legacy whole-blob file.
	if _, err := os.Stat(ParkBlobPath(dir, meta.Checksum)); !os.IsNotExist(err) {
		t.Fatal("park wrote a legacy whole-blob file")
	}

	// Restoring the parked blob into a fresh session continues the
	// run with trace continuity (cycle and checksum carried over).
	m2 := NewManager(Config{IdleTimeout: -1})
	defer m2.Close()
	s2, err := m2.CreateWithID(s.ID, meta.Spec, meta.TraceLimit)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Restore(s2, blob)
	if err != nil {
		t.Fatal(err)
	}
	if got != cycle {
		t.Fatalf("restored at cycle %d, parked at %d", got, cycle)
	}
}

// The leak fix: after a park is consumed, a GC sweep must leave zero
// unreferenced blobs or chunks in the park directory.
func TestParkGCAfterConsumeLeavesNothingUnreferenced(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Config{IdleTimeout: -1, ParkDir: dir})
	defer m.Close()

	// Park two sessions, consume one.
	var ids []string
	for i := 0; i < 2; i++ {
		s, err := m.Create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 40}, 64)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Step(s, uint64(1000*(i+1)), time.Second); err != nil {
			t.Fatal(err)
		}
		if err := m.park(s); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	if err := ConsumePark(dir, ids[0]); err != nil {
		t.Fatal(err)
	}

	stats, err := m.ParkGC(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SweptChunks == 0 {
		t.Fatal("consuming a park freed no chunks")
	}

	// The surviving park must still load...
	if _, _, err := LoadPark(dir, ids[1]); err != nil {
		t.Fatal(err)
	}
	// ...and a second sweep must find the store fully referenced:
	// every chunk on disk belongs to the remaining park.
	stats, err = m.ParkGC(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SweptChunks != 0 || stats.SweptLegacy != 0 || stats.KeptRecent != 0 {
		t.Fatalf("unreferenced files remain after gc: %+v", stats)
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sstat, err := st.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if sstat.Runs != 1 || sstat.LegacyBlobs != 0 {
		t.Fatalf("store not clean: %+v", sstat)
	}
}

// Parks written by older builds — whole `<checksum>.snap` blob plus
// `.park` metadata — must still load, and GC must keep the blob while
// its park is live.
func TestLegacyWholeBlobParkStillLoads(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Config{IdleTimeout: -1, ParkDir: dir})
	defer m.Close()

	s, err := m.Create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 40}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(s, 1500, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.park(s); err != nil {
		t.Fatal(err)
	}
	// Convert the store-backed park into the legacy layout by hand.
	meta, blob, err := LoadPark(dir, s.ID)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteRun(s.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GC(store.GCOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ParkBlobPath(dir, meta.Checksum), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	meta2, blob2, err := LoadPark(dir, s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) || meta2.Checksum != meta.Checksum {
		t.Fatal("legacy park load differs")
	}
	// GC keeps the referenced legacy blob.
	if _, err := m.ParkGC(0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ParkBlobPath(dir, meta.Checksum)); err != nil {
		t.Fatal("gc removed a referenced legacy blob")
	}
	// Consume the park; now the sweep reclaims the legacy blob too.
	if err := ConsumePark(dir, s.ID); err != nil {
		t.Fatal(err)
	}
	stats, err := m.ParkGC(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SweptLegacy != 1 {
		t.Fatalf("legacy blob not swept: %+v", stats)
	}
}

// Content addressing dedups identical snapshot content to zero new
// chunks — across re-parks of the same session and across sessions
// that reached the same deterministic state.
func TestParkContentDedup(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Config{IdleTimeout: -1, ParkDir: dir})
	defer m.Close()

	st, err := m.parkStore()
	if err != nil {
		t.Fatal(err)
	}
	spec := runner.Spec{Target: "ppc750", Workload: "mpeg2/enc", N: 200}
	var blobs [][]byte
	var cycles []uint64
	ids := []string{"twin-a", "twin-b"}
	for _, id := range ids {
		s, err := m.CreateWithID(id, spec, 64)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Step(s, 2000, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		blob, cycle, err := m.Snapshot(s)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
		cycles = append(cycles, cycle)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatal("deterministic twin runs produced different snapshots; test premise broken")
	}
	first, err := st.Put(ids[0], cycles[0], blobs[0])
	if err != nil {
		t.Fatal(err)
	}
	// (NewChunks may trail Chunks even here: repeated content inside
	// one blob dedups against itself.)
	if first.NewChunks == 0 || first.NewBytes == 0 {
		t.Fatalf("first park: %+v", first)
	}
	// The twin's park stores zero new chunks: its blob is
	// chunk-for-chunk the content already on disk.
	second, err := st.Put(ids[1], cycles[1], blobs[1])
	if err != nil {
		t.Fatal(err)
	}
	if second.NewChunks != 0 || second.NewBytes != 0 {
		t.Fatalf("identical content re-stored %d chunks (%d bytes)", second.NewChunks, second.NewBytes)
	}
	// Both parks restore byte-identically even though the chunks are
	// shared.
	for i, id := range ids {
		got, err := st.Get(id, cycles[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blobs[i]) {
			t.Fatalf("park %s not byte-identical", id)
		}
	}
}

// Session info carries the originating spec on the single-session
// surface only — the gateway's create-body re-derivation depends on
// it; lists must stay lean.
func TestInfoSpecExposure(t *testing.T) {
	m := NewManager(Config{IdleTimeout: -1})
	defer m.Close()
	s, err := m.Create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 40}, 77)
	if err != nil {
		t.Fatal(err)
	}
	inf := m.Info(s)
	if inf.Spec == nil || inf.Spec.Target != "strongarm" || inf.TraceLimit != 77 {
		t.Fatalf("single-session info lacks spec: %+v", inf)
	}
	for _, li := range m.List() {
		if li.Spec != nil || li.TraceLimit != 0 {
			t.Fatalf("list info leaks spec: %+v", li)
		}
	}
}

// The janitor parks idle-evicted sessions into the store and its GC
// hook reclaims consumed parks without disturbing live ones.
func TestJanitorParksIntoStore(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Config{IdleTimeout: 30 * time.Millisecond, ParkDir: dir})
	m.Start()
	defer m.Close()

	s, err := m.Create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 40}, 64)
	if err != nil {
		t.Fatal(err)
	}
	id := s.ID
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(ParkMetaPath(dir, id)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never parked the idle session")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, _, err := LoadPark(dir, id); err != nil {
		t.Fatal(err)
	}
	// The store, not the legacy layout, holds the blob.
	entries, err := os.ReadDir(filepath.Join(dir, "chunks"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no chunk shards written: %v", err)
	}
	des, _ := os.ReadDir(dir)
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".snap") {
			t.Fatalf("legacy blob %s written", de.Name())
		}
	}
}
