package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/osm"
	"repro/internal/runner"
	"repro/internal/snap"
)

// ---- client helpers ----

type client struct {
	t    testing.TB
	base string
	hc   *http.Client
}

func newTestServer(t testing.TB, cfg Config) (*Manager, *client, func()) {
	t.Helper()
	mgr := NewManager(cfg)
	mgr.Start()
	ts := httptest.NewServer(mgr.Handler())
	cl := &client{t: t, base: ts.URL, hc: ts.Client()}
	return mgr, cl, func() {
		ts.Close()
		mgr.Close()
	}
}

func (c *client) do(method, path string, body []byte, contentType string) (*http.Response, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		c.t.Fatal(err)
	}
	return resp, data
}

func (c *client) doJSON(method, path string, reqBody, out any) (*http.Response, []byte) {
	c.t.Helper()
	var body []byte
	if reqBody != nil {
		var err error
		body, err = json.Marshal(reqBody)
		if err != nil {
			c.t.Fatal(err)
		}
	}
	resp, data := c.do(method, path, body, "application/json")
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			c.t.Fatalf("%s %s: bad JSON %q: %v", method, path, data, err)
		}
	}
	return resp, data
}

func (c *client) create(spec runner.Spec) Info {
	c.t.Helper()
	var info Info
	resp, data := c.doJSON("POST", "/v1/sessions", CreateRequest{Spec: spec}, &info)
	if resp.StatusCode != http.StatusCreated {
		c.t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}
	if info.State != StateCreated {
		c.t.Fatalf("created session in state %q", info.State)
	}
	return info
}

func (c *client) step(id string, cycles uint64) StepResult {
	c.t.Helper()
	var res StepResult
	resp, data := c.doJSON("POST", "/v1/sessions/"+id+"/step", StepRequest{Cycles: cycles}, &res)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("step: status %d: %s", resp.StatusCode, data)
	}
	return res
}

// stepToDone drives the session to completion in bounded chunks.
func (c *client) stepToDone(id string, chunk uint64) StepResult {
	c.t.Helper()
	for i := 0; i < 10_000; i++ {
		res := c.step(id, chunk)
		if res.Done {
			return res
		}
	}
	c.t.Fatalf("session %s did not finish", id)
	return StepResult{}
}

func (c *client) registers(id string) []runner.Reg {
	c.t.Helper()
	var out struct {
		Cycle     uint64       `json:"cycle"`
		Registers []runner.Reg `json:"registers"`
	}
	resp, data := c.doJSON("GET", "/v1/sessions/"+id+"/registers", nil, &out)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("registers: status %d: %s", resp.StatusCode, data)
	}
	return out.Registers
}

func (c *client) info(id string) Info {
	c.t.Helper()
	var info Info
	resp, data := c.doJSON("GET", "/v1/sessions/"+id, nil, &info)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("info: status %d: %s", resp.StatusCode, data)
	}
	return info
}

// ---- in-process reference runs ----

type refRun struct {
	cycles   uint64
	instrs   uint64
	reported []uint32
	regs     []runner.Reg
	checksum string
}

// runRef runs the spec in-process to completion and returns the
// observables the HTTP path must reproduce exactly.
func runRef(t *testing.T, spec runner.Spec) refRun {
	t.Helper()
	inst, err := runner.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := osm.NewRecorder()
	rec.Limit = 1024
	inst.Director().Tracer = rec
	for !inst.Done() {
		if inst.Cycle() > 20_000_000 {
			t.Fatal("reference run too long")
		}
		if err := inst.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := inst.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return refRun{
		cycles:   res.Cycles,
		instrs:   res.Instrs,
		reported: res.Reported,
		regs:     inst.Registers(),
		checksum: fmt.Sprintf("%016x", rec.Checksum()),
	}
}

func compareRegs(t *testing.T, label string, want, got []runner.Reg) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d registers, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: register %s = %#x, want %s = %#x",
				label, got[i].Name, got[i].Value, want[i].Name, want[i].Value)
		}
	}
}

var diffSpecs = []runner.Spec{
	{Target: "strongarm", Workload: "gsm/dec", N: 60},
	{Target: "ppc750", Workload: "spec/crc", N: 50},
}

// A workload stepped to completion through the HTTP API must be
// indistinguishable from the in-process run: same cycle count, final
// architectural registers, reported values and whole-run trace
// checksum.
func TestDifferentialHTTP(t *testing.T) {
	_, cl, done := newTestServer(t, Config{})
	defer done()
	for _, spec := range diffSpecs {
		ref := runRef(t, spec)
		info := cl.create(spec)
		final := cl.stepToDone(info.ID, 10_000)
		if final.Cycle != ref.cycles {
			t.Fatalf("%s: HTTP run took %d cycles, in-process %d", spec.Target, final.Cycle, ref.cycles)
		}
		if final.Result == nil {
			t.Fatalf("%s: done without a result", spec.Target)
		}
		if final.Result.Instrs != ref.instrs {
			t.Fatalf("%s: %d instrs, want %d", spec.Target, final.Result.Instrs, ref.instrs)
		}
		if fmt.Sprint(final.Result.Reported) != fmt.Sprint(ref.reported) {
			t.Fatalf("%s: reported %v, want %v", spec.Target, final.Result.Reported, ref.reported)
		}
		compareRegs(t, spec.Target, ref.regs, cl.registers(info.ID))
		end := cl.info(info.ID)
		if end.State != StateDone {
			t.Fatalf("%s: state %q after completion", spec.Target, end.State)
		}
		if end.TraceChecksum != ref.checksum {
			t.Fatalf("%s: trace checksum %s, want %s", spec.Target, end.TraceChecksum, ref.checksum)
		}
		if end.TraceTotal == 0 {
			t.Fatalf("%s: no transitions traced", spec.Target)
		}
	}
}

// A session snapshotted over HTTP, restored into a fresh server and
// run to completion must match the uninterrupted run; the tail trace
// must match an in-process restore of the same snapshot.
func TestSnapshotRestoreAcrossServers(t *testing.T) {
	for _, spec := range diffSpecs {
		ref := runRef(t, spec)

		_, clA, doneA := newTestServer(t, Config{})
		info := clA.create(spec)
		cut := ref.cycles / 2
		res := clA.step(info.ID, cut)
		if res.Stepped != cut || res.Done {
			t.Fatalf("%s: stepped %d of %d, done=%v", spec.Target, res.Stepped, cut, res.Done)
		}
		resp, wrapped := clA.do("GET", "/v1/sessions/"+info.ID+"/snapshot", nil, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: snapshot: status %d", spec.Target, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Osm-Cycle"); got != strconv.FormatUint(cut, 10) {
			t.Fatalf("%s: snapshot at cycle %s, want %d", spec.Target, got, cut)
		}
		doneA()

		// In-process restore of the same wire bytes: the tail
		// reference for the trace checksum.
		rd := snap.NewReader(wrapped)
		if rd.U32() != snap.Magic || rd.String() != sessHeader {
			t.Fatalf("%s: snapshot is not in the session wire format", spec.Target)
		}
		rd.Version(sessHeader, sessVersion)
		if target := rd.String(); target != spec.Target {
			t.Fatalf("%s: wire header names target %q", spec.Target, target)
		}
		rd.U64() // cycle
		blob := rd.Bytes32()
		if rd.Err() != nil {
			t.Fatalf("%s: %v", spec.Target, rd.Err())
		}
		// A v2 snapshot carries the trace recorder after the instance
		// blob, so the whole-run checksum survives migration.
		if flags := rd.U8(); flags&sessFlagTracer == 0 || rd.Err() != nil {
			t.Fatalf("%s: v2 snapshot without tracer section (flags %#x, err %v)", spec.Target, flags, rd.Err())
		}
		inst, err := runner.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Restore(blob); err != nil {
			t.Fatalf("%s: in-process restore: %v", spec.Target, err)
		}
		rec := osm.NewRecorder()
		rec.Limit = 1024
		inst.Director().Tracer = rec
		for !inst.Done() {
			if err := inst.StepCycle(); err != nil {
				t.Fatal(err)
			}
		}
		tailRes, err := inst.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if tailRes.Cycles != ref.cycles {
			t.Fatalf("%s: in-process restored run took %d cycles, want %d", spec.Target, tailRes.Cycles, ref.cycles)
		}

		// Fresh server: create, upload, run to completion.
		_, clB, doneB := newTestServer(t, Config{})
		defer doneB()
		infoB := clB.create(spec)
		resp, data := clB.do("POST", "/v1/sessions/"+infoB.ID+"/restore", wrapped, "application/octet-stream")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: restore: status %d: %s", spec.Target, resp.StatusCode, data)
		}
		var restored struct {
			Cycle uint64 `json:"cycle"`
		}
		if err := json.Unmarshal(data, &restored); err != nil {
			t.Fatal(err)
		}
		if restored.Cycle != cut {
			t.Fatalf("%s: restored at cycle %d, want %d", spec.Target, restored.Cycle, cut)
		}
		final := clB.stepToDone(infoB.ID, 10_000)
		if final.Cycle != ref.cycles {
			t.Fatalf("%s: restored run finished at %d cycles, want %d", spec.Target, final.Cycle, ref.cycles)
		}
		if fmt.Sprint(final.Result.Reported) != fmt.Sprint(ref.reported) {
			t.Fatalf("%s: restored reported %v, want %v", spec.Target, final.Result.Reported, ref.reported)
		}
		compareRegs(t, spec.Target+"/restored", ref.regs, clB.registers(infoB.ID))
		// The v2 snapshot restored the recorder along with the machine
		// state, so the whole-run checksum matches an uninterrupted run.
		if got := clB.info(infoB.ID).TraceChecksum; got != ref.checksum {
			t.Fatalf("%s: restored trace checksum %s, want %s", spec.Target, got, ref.checksum)
		}
	}
}

func TestAdmissionControl(t *testing.T) {
	mgr, cl, done := newTestServer(t, Config{MaxSessions: 2, IdleTimeout: -1})
	defer done()
	spec := runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 20}
	a := cl.create(spec)
	cl.create(spec)
	resp, data := cl.doJSON("POST", "/v1/sessions", CreateRequest{Spec: spec}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("3rd create: status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := mgr.Metrics.SessionsRejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	// Evicting frees a slot.
	if resp, data := cl.doJSON("DELETE", "/v1/sessions/"+a.ID, nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: status %d: %s", resp.StatusCode, data)
	}
	cl.create(spec)
	if got := mgr.Metrics.EvictedAPI.Load(); got != 1 {
		t.Fatalf("api eviction counter = %d, want 1", got)
	}
	// The evicted session is gone.
	if resp, _ := cl.doJSON("GET", "/v1/sessions/"+a.ID, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session answered %d, want 404", resp.StatusCode)
	}
}

func TestIdleEviction(t *testing.T) {
	mgr, cl, done := newTestServer(t, Config{IdleTimeout: 50 * time.Millisecond})
	defer done()
	info := cl.create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 20})
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := cl.doJSON("GET", "/v1/sessions/"+info.ID, nil, nil)
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session was not evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := mgr.Metrics.EvictedIdle.Load(); got != 1 {
		t.Fatalf("idle eviction counter = %d, want 1", got)
	}
	if mgr.LiveCount() != 0 {
		t.Fatalf("%d sessions still live", mgr.LiveCount())
	}
}

func TestLifecycleAndValidation(t *testing.T) {
	_, cl, done := newTestServer(t, Config{})
	defer done()

	// Ambiguous spec → 400.
	resp, data := cl.doJSON("POST", "/v1/sessions",
		CreateRequest{Spec: runner.Spec{Target: "strongarm", Workload: "gsm/dec", Src: "nop"}}, nil)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "ambiguous") {
		t.Fatalf("ambiguous create: status %d: %s", resp.StatusCode, data)
	}
	// Non-steppable target → 400.
	resp, data = cl.doJSON("POST", "/v1/sessions",
		CreateRequest{Spec: runner.Spec{Target: "arm-iss", Workload: "gsm/dec"}}, nil)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "run-to-completion") {
		t.Fatalf("iss create: status %d: %s", resp.StatusCode, data)
	}
	// Unknown session → 404.
	if resp, _ := cl.doJSON("POST", "/v1/sessions/s-999999/step", StepRequest{Cycles: 1}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", resp.StatusCode)
	}

	// Completed session: further steps → 409, snapshot still works.
	info := cl.create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 20})
	cl.stepToDone(info.ID, 5_000)
	resp, data = cl.doJSON("POST", "/v1/sessions/"+info.ID+"/step", StepRequest{Cycles: 1}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("step after done: status %d: %s", resp.StatusCode, data)
	}
	if resp, _ := cl.do("GET", "/v1/sessions/"+info.ID+"/snapshot", nil, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot of done session: status %d", resp.StatusCode)
	}
	// Zero-cycle step → 409 (explicitly rejected, not a silent no-op).
	info2 := cl.create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 20})
	if resp, _ := cl.doJSON("POST", "/v1/sessions/"+info2.ID+"/step", StepRequest{Cycles: 0}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("zero-cycle step: status %d, want 409", resp.StatusCode)
	}
	// Cross-target restore → 409.
	arm := cl.create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 20})
	ppc := cl.create(runner.Spec{Target: "ppc750", Workload: "dsp/fir", N: 20})
	resp, wrapped := cl.do("GET", "/v1/sessions/"+arm.ID+"/snapshot", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	resp, data = cl.do("POST", "/v1/sessions/"+ppc.ID+"/restore", wrapped, "application/octet-stream")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cross-target restore: status %d: %s", resp.StatusCode, data)
	}
	// Garbage restore → 409 and the session stays usable.
	resp, _ = cl.do("POST", "/v1/sessions/"+arm.ID+"/restore", []byte("not a snapshot"), "application/octet-stream")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("garbage restore: status %d", resp.StatusCode)
	}
	cl.step(arm.ID, 10)
}

func TestMemAndTraceEndpoints(t *testing.T) {
	_, cl, done := newTestServer(t, Config{})
	defer done()
	info := cl.create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 20})
	cl.step(info.ID, 200)

	var mem struct {
		Data string `json:"data"`
	}
	resp, data := cl.doJSON("GET", "/v1/sessions/"+info.ID+"/mem?addr=0x0&len=64", nil, &mem)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mem: status %d: %s", resp.StatusCode, data)
	}
	if mem.Data == "" {
		t.Fatal("mem returned no data")
	}
	if resp, _ := cl.doJSON("GET", "/v1/sessions/"+info.ID+"/mem?addr=0x0&len=999999999", nil, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("oversized mem read: status %d, want 409", resp.StatusCode)
	}

	resp, body := cl.do("GET", "/v1/sessions/"+info.ID+"/trace?since=0", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("trace content type %q", got)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("trace stream is empty")
	}
	var first osm.Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("trace line is not JSON: %v (%q)", err, lines[0])
	}
	if first.Machine == "" || first.Edge == "" {
		t.Fatalf("trace event incomplete: %+v", first)
	}
	total, err := strconv.ParseUint(resp.Header.Get("X-Osm-Trace-Total"), 10, 64)
	if err != nil || total == 0 {
		t.Fatalf("bad X-Osm-Trace-Total %q", resp.Header.Get("X-Osm-Trace-Total"))
	}
	// since filters by step.
	since := first.Step + 1
	resp, body2 := cl.do("GET", fmt.Sprintf("/v1/sessions/%s/trace?since=%d", info.ID, since), nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace since: status %d", resp.StatusCode)
	}
	if len(body2) >= len(body) {
		t.Fatal("since did not narrow the stream")
	}
}

func TestPanicIsolationPoisonsSession(t *testing.T) {
	mgr, cl, done := newTestServer(t, Config{})
	defer done()
	info := cl.create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 20})
	s, err := mgr.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}

	h := mgr.isolate(http.HandlerFunc(mgr.withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		panic("injected fault")
	})))
	req := httptest.NewRequest("POST", "/v1/sessions/"+info.ID+"/boom", nil)
	req.SetPathValue("id", info.ID)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, want 500", rw.Code)
	}
	if got := mgr.Metrics.Panics.Load(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	// The session is poisoned, the server keeps serving.
	resp, data := cl.doJSON("POST", "/v1/sessions/"+info.ID+"/step", StepRequest{Cycles: 10}, nil)
	if resp.StatusCode != http.StatusConflict || !strings.Contains(string(data), "broken") {
		t.Fatalf("step on poisoned session: status %d: %s", resp.StatusCode, data)
	}
	if s.info("arm", false).State != StateBroken {
		t.Fatalf("session state %q, want broken", s.info("arm", false).State)
	}
	// Other sessions are unaffected.
	other := cl.create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 20})
	cl.step(other.ID, 10)
}

func TestDrain(t *testing.T) {
	mgr, cl, done := newTestServer(t, Config{})
	defer done()
	cl.create(runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 20})
	mgr.Drain()
	if resp, _ := cl.doJSON("GET", "/healthz", nil, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
	resp, _ := cl.doJSON("POST", "/v1/sessions",
		CreateRequest{Spec: runner.Spec{Target: "strongarm", Workload: "dsp/fir", N: 20}}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: status %d, want 503", resp.StatusCode)
	}
	mgr.Close()
	if mgr.LiveCount() != 0 {
		t.Fatalf("%d sessions survived Close", mgr.LiveCount())
	}
	if got := mgr.Metrics.EvictedDrain.Load(); got != 1 {
		t.Fatalf("drain eviction counter = %d, want 1", got)
	}
}

// metricValue extracts one sample from the Prometheus text output.
func metricValue(t *testing.T, text, name string) uint64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, text)
	}
	v, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// The load test: ≥16 concurrent sessions driven through overlapping
// step/peek/snapshot/trace requests; afterwards the /metrics counters
// must reconcile exactly with the work the clients performed.
func TestLoadConcurrentSessions(t *testing.T) {
	const (
		nSessions = 16
		nRounds   = 8
		chunk     = 1500
	)
	mgr, cl, done := newTestServer(t, Config{MaxSessions: nSessions, IdleTimeout: -1})
	defer done()

	specs := []runner.Spec{
		{Target: "strongarm", Workload: "gsm/dec", N: 200},
		{Target: "ppc750", Workload: "spec/crc", N: 200},
	}
	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = cl.create(specs[i%len(specs)]).ID
	}

	var (
		mu           sync.Mutex
		totalStepped uint64
		stepCalls    uint64
		snapBytes    uint64
	)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			var stepped, calls, snaps uint64
			for r := 0; r < nRounds; r++ {
				res := cl.step(id, chunk)
				stepped += res.Stepped
				calls++
				switch r % 3 {
				case 0:
					if regs := cl.registers(id); len(regs) == 0 {
						t.Errorf("session %s: no registers", id)
					}
				case 1:
					resp, body := cl.do("GET", "/v1/sessions/"+id+"/snapshot", nil, "")
					if resp.StatusCode != http.StatusOK {
						t.Errorf("session %s: snapshot status %d", id, resp.StatusCode)
					}
					snaps += uint64(len(body))
				case 2:
					if resp, _ := cl.do("GET", "/v1/sessions/"+id+"/trace?since=0", nil, ""); resp.StatusCode != http.StatusOK {
						t.Errorf("session %s: trace status %d", id, resp.StatusCode)
					}
				}
				if res.Done {
					break
				}
			}
			mu.Lock()
			totalStepped += stepped
			stepCalls += calls
			snapBytes += snaps
			mu.Unlock()
		}(i, id)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Cross-check the server's own accounting...
	var sessionSum uint64
	for _, id := range ids {
		sessionSum += cl.info(id).CyclesStepped
	}
	if sessionSum != totalStepped {
		t.Fatalf("sessions report %d cycles stepped, clients counted %d", sessionSum, totalStepped)
	}

	// ...and the exported metrics, scraped like Prometheus would.
	resp, body := cl.do("GET", "/metrics", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	text := string(body)
	if got := metricValue(t, text, "osmserve_cycles_simulated_total"); got != totalStepped {
		t.Fatalf("cycles_simulated_total = %d, clients stepped %d", got, totalStepped)
	}
	if got := metricValue(t, text, "osmserve_step_requests_total"); got != stepCalls {
		t.Fatalf("step_requests_total = %d, clients made %d", got, stepCalls)
	}
	if got := metricValue(t, text, "osmserve_sessions_created_total"); got != nSessions {
		t.Fatalf("sessions_created_total = %d, want %d", got, nSessions)
	}
	if got := metricValue(t, text, "osmserve_sessions_live"); got != nSessions {
		t.Fatalf("sessions_live = %d, want %d", got, nSessions)
	}
	if got := metricValue(t, text, `osmserve_snapshot_bytes_total{dir="download"}`); got != snapBytes {
		t.Fatalf("snapshot download bytes = %d, clients received %d", got, snapBytes)
	}
	if got := metricValue(t, text, "osmserve_request_panics_total"); got != 0 {
		t.Fatalf("request_panics_total = %d, want 0", got)
	}
	if got := mgr.Metrics.StepLatency.Count(); got != stepCalls {
		t.Fatalf("step latency histogram holds %d observations, want %d", got, stepCalls)
	}
	// Histogram consistency: _count equals the cumulative +Inf bucket.
	if !strings.Contains(text, `osmserve_step_latency_seconds_bucket{le="+Inf"} `+strconv.FormatUint(stepCalls, 10)) {
		t.Fatalf("+Inf bucket does not match count %d:\n%s", stepCalls, text)
	}
}

func TestMetricsRender(t *testing.T) {
	m := NewMetrics()
	m.SessionsCreated.Add(3)
	m.StepLatency.Observe(0.002)
	m.StepLatency.Observe(0.5)
	m.StepLatency.Observe(99)
	var b strings.Builder
	m.Render(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE osmserve_sessions_live gauge",
		"# TYPE osmserve_step_latency_seconds histogram",
		"osmserve_sessions_created_total 3",
		`osmserve_step_latency_seconds_bucket{le="0.003"} 1`,
		`osmserve_step_latency_seconds_bucket{le="1"} 2`,
		`osmserve_step_latency_seconds_bucket{le="+Inf"} 3`,
		"osmserve_step_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestEngineSelectionOverHTTP pins the wire-level engine field: a raw
// session-create body with "engine": "compiled" or "engine":
// "generated" must run under that engine and remain indistinguishable
// from the default event-driven session — same cycle count and
// whole-run trace checksum — and an unknown engine must be rejected at
// creation.
func TestEngineSelectionOverHTTP(t *testing.T) {
	_, cl, done := newTestServer(t, Config{})
	defer done()
	for _, spec := range diffSpecs {
		ref := cl.create(spec)
		refFinal := cl.stepToDone(ref.ID, 10_000)
		for _, engine := range []string{"compiled", "generated"} {
			body := fmt.Sprintf(`{"target":%q,"workload":%q,"n":%d,"engine":%q}`,
				spec.Target, spec.Workload, spec.N, engine)
			resp, data := cl.do("POST", "/v1/sessions", []byte(body), "application/json")
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("%s: create with engine=%s: status %d: %s", spec.Target, engine, resp.StatusCode, data)
			}
			var info Info
			if err := json.Unmarshal(data, &info); err != nil {
				t.Fatal(err)
			}
			final := cl.stepToDone(info.ID, 10_000)
			if final.Cycle != refFinal.Cycle {
				t.Fatalf("%s: %s run took %d cycles, event run %d", spec.Target, engine, final.Cycle, refFinal.Cycle)
			}
			if a, b := cl.info(info.ID).TraceChecksum, cl.info(ref.ID).TraceChecksum; a != b {
				t.Fatalf("%s: %s trace checksum %s, event %s", spec.Target, engine, a, b)
			}
		}
	}
	resp, data := cl.do("POST", "/v1/sessions",
		[]byte(`{"target":"strongarm","workload":"gsm/dec","n":10,"engine":"vliw"}`), "application/json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad engine: status %d: %s", resp.StatusCode, data)
	}
	resp, data = cl.do("POST", "/v1/sessions",
		[]byte(`{"target":"arm-iss","workload":"gsm/dec","n":10,"engine":"compiled"}`), "application/json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("engine on non-OSM target: status %d: %s", resp.StatusCode, data)
	}
}
