package strongarm

import (
	"fmt"
	"testing"

	"repro/internal/isa/arm"
	"repro/internal/mem"
	"repro/internal/osm"
	"repro/internal/osm/invariant"
	"repro/internal/workload"
)

// perfect returns a config with an ideal memory subsystem so tests
// can reason about pipeline timing exactly.
func perfect() Config {
	return Config{Hier: mem.HierarchyConfig{DisableCaches: true, DisableTLBs: true}}
}

func runSrc(t *testing.T, src string, cfg Config) Stats {
	t.Helper()
	p, err := arm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every timing test doubles as a differential run of the OSM
	// invariant checker: a violation fails the run.
	invariant.Attach(s.Director())
	st, err := s.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// The exit sequence costs 2 instructions.
const exit = "\tmov r0, #0\n\tswi #0\n"

// With a perfect memory subsystem, a straight-line program of N
// instructions costs exactly N+5 cycles: N issues at CPI 1 plus the
// 5-cycle drain of the last instruction (F..W of the final SWI plus
// the retire step).
func TestStraightLineCPIOne(t *testing.T) {
	for _, k := range []int{1, 4, 16, 64} {
		src := ""
		for i := 0; i < k; i++ {
			src += fmt.Sprintf("\tadd r%d, r%d, #1\n", 1+i%8, 1+i%8)
		}
		st := runSrc(t, src+exit, perfect())
		want := uint64(k+2) + 5
		if st.Cycles != want {
			t.Errorf("k=%d: cycles=%d, want %d (CPI 1)", k, st.Cycles, want)
		}
		if st.Instrs != uint64(k+2) {
			t.Errorf("k=%d: instrs=%d, want %d", k, st.Instrs, k+2)
		}
	}
}

// Forwarding: a dependent chain of ALU operations must still run at
// CPI 1 — results forward from E to the next operation's issue.
func TestALUForwardingNoStall(t *testing.T) {
	src := ""
	for i := 0; i < 20; i++ {
		src += "\tadd r1, r1, #1\n"
	}
	st := runSrc(t, src+exit, perfect())
	if want := uint64(22 + 5); st.Cycles != want {
		t.Errorf("dependent ALU chain: cycles=%d, want %d", st.Cycles, want)
	}
}

// Load-use: a load's value is available after the buffer stage, so an
// immediately dependent instruction stalls exactly one cycle.
func TestLoadUseStall(t *testing.T) {
	pairs := 10
	dep := "\tmov r8, #0x1000\n"
	indep := dep
	for i := 0; i < pairs; i++ {
		dep += "\tldr r2, [r8]\n\tadd r3, r2, #1\n"
		indep += "\tldr r2, [r8]\n\tadd r3, r4, #1\n"
	}
	stDep := runSrc(t, dep+exit, perfect())
	stIndep := runSrc(t, indep+exit, perfect())
	if stDep.Instrs != stIndep.Instrs {
		t.Fatalf("instruction counts differ: %d vs %d", stDep.Instrs, stIndep.Instrs)
	}
	if got := stDep.Cycles - stIndep.Cycles; got != uint64(pairs) {
		t.Errorf("load-use stalls = %d, want %d (one per pair)", got, pairs)
	}
}

// Taken branches squash the two speculative operations behind them:
// a 2-cycle penalty each.
func TestTakenBranchPenalty(t *testing.T) {
	iters := 10
	src := fmt.Sprintf("\tmov r0, #%d\nloop:\tsubs r0, r0, #1\n\tbne loop\n", iters)
	st := runSrc(t, src+exit, perfect())
	// instrs: mov + iters*(subs+bne) + 2 exit.
	wantInstr := uint64(1 + 2*iters + 2)
	if st.Instrs != wantInstr {
		t.Fatalf("instrs=%d, want %d", st.Instrs, wantInstr)
	}
	// bne is taken iters-1 times, each costing 2 bubbles.
	want := wantInstr + 5 + 2*uint64(iters-1)
	if st.Cycles != want {
		t.Errorf("cycles=%d, want %d (2-cycle taken-branch penalty)", st.Cycles, want)
	}
	if st.Redirects != uint64(iters-1) {
		t.Errorf("redirects=%d, want %d", st.Redirects, iters-1)
	}
}

// Untaken conditional branches cost nothing.
func TestUntakenBranchFree(t *testing.T) {
	k := 10
	src := "\tmovs r1, #1\n" // clear Z
	for i := 0; i < k; i++ {
		src += "\tbeq nowhere\n"
	}
	src += exit + "nowhere:" + exit
	st := runSrc(t, src, perfect())
	want := uint64(1+k+2) + 5
	if st.Cycles != want {
		t.Errorf("cycles=%d, want %d (untaken branches are free)", st.Cycles, want)
	}
}

// Flag forwarding: cmp immediately followed by a conditional must not
// stall (flags forward like ALU results).
func TestFlagForwarding(t *testing.T) {
	k := 10
	src := ""
	for i := 0; i < k; i++ {
		src += "\tcmp r1, #5\n\taddge r2, r2, #1\n"
	}
	st := runSrc(t, src+exit, perfect())
	want := uint64(2*k+2) + 5
	if st.Cycles != want {
		t.Errorf("cycles=%d, want %d (flag forwarding)", st.Cycles, want)
	}
}

// Multiplier early termination: a multiply by a wide value holds EX
// two extra cycles; dependents wait for the multiplier.
func TestMultiplierTiming(t *testing.T) {
	smallRs := "\tmov r2, #3\n\tmov r3, #100\n"
	bigRs := "\tldr r2, =0x12345678\n\tmov r3, #100\n"
	k := 5
	body := ""
	for i := 0; i < k; i++ {
		body += "\tmul r4, r3, r2\n" // Rs = r2
	}
	stSmall := runSrc(t, smallRs+body+exit, perfect())
	stBig := runSrc(t, bigRs+body+exit, perfect())
	if got := stBig.Cycles - stSmall.Cycles; got != uint64(2*k) {
		t.Errorf("wide-multiplier extra cycles = %d, want %d", got, 2*k)
	}
	// FixedMul charges the worst case even for narrow multipliers.
	cfg := perfect()
	cfg.FixedMul = true
	stFixed := runSrc(t, smallRs+body+exit, cfg)
	if got := stFixed.Cycles - stSmall.Cycles; got != uint64(2*k) {
		t.Errorf("FixedMul extra cycles = %d, want %d", got, 2*k)
	}
}

// Block transfers occupy the buffer stage one cycle per extra word.
func TestBlockTransferBurst(t *testing.T) {
	one := "\tmov r8, #0x1000\n\tstmia r8, {r0}\n" + exit
	four := "\tmov r8, #0x1000\n\tstmia r8, {r0-r3}\n" + exit
	st1 := runSrc(t, one, perfect())
	st4 := runSrc(t, four, perfect())
	if got := st4.Cycles - st1.Cycles; got != 3 {
		t.Errorf("4-word burst extra cycles = %d, want 3", got)
	}
}

// Instruction-cache misses stall fetch; a cold run with caches is
// slower than the perfect-memory run, and a second iteration of the
// same loop benefits from a warm cache.
func TestCacheEffects(t *testing.T) {
	w := workload.ByName("gsm/enc")
	p, err := w.ARMProgram(50)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(cfg Config) Stats {
		s, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	stPerfect := mk(perfect())
	stCold := mk(Config{}) // default SA-1100 hierarchy
	if stCold.Cycles <= stPerfect.Cycles {
		t.Errorf("cold caches (%d) must cost more than perfect memory (%d)",
			stCold.Cycles, stPerfect.Cycles)
	}
	if stCold.ICache.Misses == 0 || stCold.ICache.Hits == 0 {
		t.Errorf("expected both icache hits and misses, got %+v", stCold.ICache)
	}
	if stCold.ICache.HitRate() < 0.9 {
		t.Errorf("loopy kernel should have a high icache hit rate, got %v", stCold.ICache.HitRate())
	}
}

// The full Table-1 kernels execute correctly under the timing model:
// checksums match the Go references exactly and the CPI is plausible.
func TestKernelsCorrectUnderTimingModel(t *testing.T) {
	for _, w := range workload.All() {
		n := w.DefaultN / 5
		p, err := w.ARMProgram(n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		invariant.Attach(s.Director())
		st, err := s.Run(1_000_000_000)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(s.ISS.Reported) != 1 || s.ISS.Reported[0] != w.Ref(n) {
			t.Errorf("%s: checksum %v, want %#x", w.Name, s.ISS.Reported, w.Ref(n))
		}
		cpi := st.CPI()
		if cpi < 1.0 || cpi > 4.0 {
			t.Errorf("%s: implausible CPI %.2f", w.Name, cpi)
		}
	}
}

// The paper's case-study optimization: with age-based ranking the
// outer-loop restart never changes the schedule, so NoRestart must
// produce identical cycle counts.
func TestNoRestartEquivalence(t *testing.T) {
	w := workload.ByName("g721/enc")
	p, err := w.ARMProgram(100)
	if err != nil {
		t.Fatal(err)
	}
	run := func(restart bool) uint64 {
		s, err := New(p, Config{Restart: restart})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("restart=%d norestart=%d: cycle counts must match", a, b)
	}
}

// More machines than pipeline stages cannot change the timing of a
// single-issue pipeline.
func TestMachineCountInsensitive(t *testing.T) {
	w := workload.ByName("gsm/dec")
	p, err := w.ARMProgram(50)
	if err != nil {
		t.Fatal(err)
	}
	cycles := make([]uint64, 0, 2)
	for _, n := range []int{6, 10} {
		s, err := New(p, Config{Machines: n, Hier: mem.HierarchyConfig{DisableCaches: true, DisableTLBs: true}})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, st.Cycles)
	}
	if cycles[0] != cycles[1] {
		t.Errorf("machine count changed timing: %v", cycles)
	}
}

// The model's state graph validates cleanly under the static token-
// discipline checker (paper Section 6).
func TestModelValidates(t *testing.T) {
	p, err := arm.Assemble(exit)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, perfect())
	if err != nil {
		t.Fatal(err)
	}
	init := s.director.Machines()[0].Initial
	if issues := osm.Validate(init, 16); len(issues) != 0 {
		t.Fatalf("model should validate cleanly: %v", issues)
	}
}

// Conditional instructions that fail their condition still occupy
// pipeline stages (they retire as executed instructions).
func TestConditionFailedStillCostsACycle(t *testing.T) {
	src := "\tmovs r1, #1\n" // Z clear
	for i := 0; i < 8; i++ {
		src += "\taddeq r2, r2, #1\n" // never executes
	}
	st := runSrc(t, src+exit, perfect())
	want := uint64(1+8+2) + 5
	if st.Cycles != want {
		t.Errorf("cycles=%d, want %d", st.Cycles, want)
	}
}

func TestRunCycleLimit(t *testing.T) {
	p, err := arm.Assemble("loop: b loop")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, perfect())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(500); err == nil {
		t.Fatal("infinite loop must exhaust the cycle budget")
	}
}

// Store-after-load contention: back-to-back memory operations contend
// for the single buffer stage but still pipeline at 1 per cycle when
// independent.
func TestBackToBackMemoryOps(t *testing.T) {
	k := 8
	src := "\tmov r8, #0x1000\n"
	for i := 0; i < k; i++ {
		src += "\tstr r1, [r8]\n\tldr r2, [r8, #4]\n"
	}
	st := runSrc(t, src+exit, perfect())
	want := uint64(1+2*k+2) + 5
	if st.Cycles != want {
		t.Errorf("independent mem stream: cycles=%d, want %d", st.Cycles, want)
	}
}

// A load feeding a store's data: the store waits one cycle for the
// loaded value (load-use through the store data operand).
func TestLoadToStoreData(t *testing.T) {
	k := 6
	dep := "\tmov r8, #0x1000\n"
	indep := dep
	for i := 0; i < k; i++ {
		dep += "\tldr r2, [r8]\n\tstr r2, [r8, #4]\n"
		indep += "\tldr r2, [r8]\n\tstr r3, [r8, #4]\n"
	}
	stDep := runSrc(t, dep+exit, perfect())
	stIndep := runSrc(t, indep+exit, perfect())
	if got := stDep.Cycles - stIndep.Cycles; got != uint64(k) {
		t.Errorf("load->store-data stalls = %d, want %d", got, k)
	}
}

// A literal-pool load (PC-relative) behaves like any other load.
func TestLiteralPoolLoadTiming(t *testing.T) {
	src := "\tldr r1, =0x12345678\n\tadd r2, r1, #1\n" + exit
	st := runSrc(t, src, perfect())
	// 4 instructions + 5 drain + 1 load-use stall.
	if want := uint64(4+5) + 1; st.Cycles != want {
		t.Errorf("cycles=%d, want %d", st.Cycles, want)
	}
}

// Halfword transfers flow through the pipeline like other memory ops.
func TestHalfwordTiming(t *testing.T) {
	src := `
	mov r8, #0x1000
	mov r1, #77
	strh r1, [r8]
	ldrsh r2, [r8]
	add r3, r2, #1
` + exit
	st := runSrc(t, src, perfect())
	// 7 instructions + 5 drain + 1 load-use stall on r2.
	if want := uint64(7+5) + 1; st.Cycles != want {
		t.Errorf("cycles=%d, want %d", st.Cycles, want)
	}
	if st.Instrs != 7 {
		t.Errorf("instrs=%d, want 7", st.Instrs)
	}
}

// Condition-failed memory operations still execute (and count), but
// must not touch the cache model... they do access it in this model
// since the ISS executes them as no-ops; assert at least that timing
// matches a plain ALU no-op stream.
func TestConditionFailedLoadTiming(t *testing.T) {
	src := "\tmovs r1, #1\n" // Z clear: EQ fails
	for i := 0; i < 6; i++ {
		src += "\tldreq r2, [r1]\n"
	}
	st := runSrc(t, src+exit, perfect())
	if want := uint64(1+6+2) + 5; st.Cycles != want {
		t.Errorf("cycles=%d, want %d", st.Cycles, want)
	}
}

// Condition-failed memory operations must not touch the cache model.
func TestConditionFailedLoadSkipsCache(t *testing.T) {
	src := "\tmovs r1, #1\n\tldreq r2, [r1]\n\tldreq r2, [r1]\n" + exit
	p, err := arm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.DCache.Accesses != 0 {
		t.Errorf("condition-failed loads accessed the dcache %d times", st.DCache.Accesses)
	}
}
