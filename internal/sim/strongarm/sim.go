package strongarm

import (
	"fmt"

	"repro/internal/de"
	"repro/internal/isa/arm"
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/osm"
)

// Config parameterizes the model.
type Config struct {
	// Hier sizes the memory subsystem; the zero value selects the
	// SA-1100-like defaults.
	Hier mem.HierarchyConfig
	// Machines is the OSM population; the zero value selects 6 (five
	// stages plus one filling). More machines never help a
	// single-issue pipeline.
	Machines int
	// RAMKB sizes the memory image; the zero value selects 1024.
	RAMKB int
	// Restart re-enables the director's outer-loop restart. The
	// paper's case studies run without it ("the director does not
	// need to restart the outer-loop" — age-based ranking never
	// blocks a senior on a junior), which is also faster; the flag
	// exists for the ablation benchmark.
	Restart bool
	// FixedMul charges every multiply the worst-case latency instead
	// of SA-110-style early termination (an ablation knob).
	FixedMul bool
	// Engine selects the director's execution engine (event-driven
	// interpreter by default, reference scan, compiled guard programs,
	// or generated Go edge functions). All four are trace-equivalent;
	// see DESIGN.md §12-13.
	Engine osm.Engine
}

// Stats reports a finished simulation.
type Stats struct {
	Cycles    uint64
	Instrs    uint64
	ICache    mem.CacheStats
	DCache    mem.CacheStats
	Branches  uint64
	Redirects uint64 // taken branches/redirects that squashed fetch
	Stalls    uint64 // cycles in which no operation entered E
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instrs)
}

// opCtx is the per-operation payload flowing with each machine.
// decoded caches the static per-instruction facts the timing model
// needs; the program text is immutable, so each word decodes once.
type decoded struct {
	ins      arm.Instr
	ok       bool
	srcs     []int
	dsts     []int
	class    arm.Class
	isBranch bool
}

type opCtx struct {
	pc       uint32
	ins      arm.Instr
	decodeOK bool
	// srcs and dsts point into the decode cache (never mutated).
	srcs, dsts []int
	// memory timing computed at E
	memAddr  uint32
	memWords uint32
	memLat   uint64
	isStore  bool
	isMem    bool
}

func ctxOf(m *osm.Machine) *opCtx { return m.Ctx.(*opCtx) }

// Sim is a StrongARM micro-architecture simulator instance.
type Sim struct {
	ISS    *iss.ARM
	Hier   *mem.Hierarchy
	Kernel *de.Kernel

	director           *osm.Director
	regs               *regFile
	reset              *osm.ResetManager
	mf, md, me, mb, mw *osm.UnitManager

	decodeCache   map[uint32]*decoded
	fetchPC       uint32
	redirectUntil int64 // fetch blocked through this control step (-1: never)
	fetchStop     bool
	retired       uint64
	redirects     uint64
	brCount       uint64
	stallCycles   uint64
	enteredE      bool
	execErr       error
}

// New builds a simulator for the program.
func New(p *arm.Program, cfg Config) (*Sim, error) {
	if cfg.Machines == 0 {
		cfg.Machines = 6
	}
	if cfg.RAMKB == 0 {
		cfg.RAMKB = 1024
	}
	if cfg.Hier == (mem.HierarchyConfig{}) {
		cfg.Hier = mem.DefaultHierarchyConfig()
	}
	is, err := iss.NewARM(p, cfg.RAMKB)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		ISS:     is,
		Hier:    mem.NewHierarchy(cfg.Hier),
		regs:    newRegFile(),
		reset:   osm.NewResetManager("reset"),
		mf:      osm.NewUnitManager("IF", 1),
		md:      osm.NewUnitManager("ID", 1),
		me:      osm.NewUnitManager("EX", 1),
		mb:      osm.NewUnitManager("BF", 1),
		mw:      osm.NewUnitManager("WB", 1),
		fetchPC: p.Entry,
	}
	s.decodeCache = make(map[uint32]*decoded)
	s.redirectUntil = -1
	if err := s.buildModel(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// whenFetch gates the fetch edge (I -> F): fetch stops for good once
// the program halts and is suppressed through a redirect's shadow.
// It is a named method, not a closure, so the generated edge function
// (edges_gen.go) can call the very same predicate.
func (s *Sim) whenFetch(m *osm.Machine) bool {
	return !s.fetchStop && int64(s.director.StepCount()) > s.redirectUntil
}

func (s *Sim) buildModel(cfg Config) error {
	d := osm.NewDirector()
	d.NoRestart = !cfg.Restart
	d.Engine = cfg.Engine
	s.director = d

	iSt := osm.NewState("I")
	fSt := osm.NewState("F")
	dSt := osm.NewState("D")
	eSt := osm.NewState("E")
	bSt := osm.NewState("B")
	wSt := osm.NewState("W")

	fetch := iSt.Connect("e0", fSt, osm.Alloc(s.mf, 0))
	fetch.When = s.whenFetch
	fetch.Action = func(m *osm.Machine) {
		op, _ := m.Ctx.(*opCtx)
		if op == nil {
			op = &opCtx{}
			m.Ctx = op
		}
		*op = opCtx{pc: s.fetchPC}
		if lat := s.Hier.FetchLatency(s.fetchPC); lat > 0 {
			s.mf.SetBusy(0, lat)
		}
		if d := s.decode(s.fetchPC); d.ok {
			op.ins, op.decodeOK = d.ins, true
			op.srcs, op.dsts = d.srcs, d.dsts
		}
		s.fetchPC += 4
	}

	fSt.Connect("e1", dSt, osm.Release(s.mf, 0), osm.Alloc(s.md, 0))

	// The decode stage initializes the operation's allocation and
	// inquiry identifiers (done implicitly: our identifier functions
	// read the decoded context). D -> E carries the whole issue
	// condition: EX occupancy, operand availability, update rights.
	toE := dSt.Connect("e2", eSt,
		osm.Release(s.md, 0),
		osm.Inquire(s.regs, SrcsToken),
		osm.Alloc(s.me, 0),
		osm.Alloc(s.regs, WriterToken))
	toE.Action = func(m *osm.Machine) { s.execute(m, cfg) }

	toB := eSt.Connect("e3", bSt, osm.Release(s.me, 0), osm.Alloc(s.mb, 0))
	toB.Action = func(m *osm.Machine) {
		if op := ctxOf(m); op.memLat > 0 {
			s.mb.SetBusy(0, op.memLat)
		}
	}

	bSt.Connect("e4", wSt, osm.Release(s.mb, 0), osm.Alloc(s.mw, 0))

	retire := wSt.Connect("e5", iSt,
		osm.Release(s.mw, 0), osm.Release(s.regs, WriterToken))
	retire.Action = func(m *osm.Machine) { s.retired++ }

	// Control hazards: speculative operations in F and D are killed
	// through high-priority reset edges (paper Section 4).
	osm.ResetEdge(fSt, iSt, s.reset)
	osm.ResetEdge(dSt, iSt, s.reset)

	d.AddManager(s.mf, s.md, s.me, s.mb, s.mw, s.regs, s.reset)
	for k := 0; k < cfg.Machines; k++ {
		d.AddMachine(osm.NewMachine(fmt.Sprintf("op%d", k), iSt))
	}

	s.Kernel = de.NewKernel()
	s.Kernel.OnEdge = func(cycle uint64) error {
		s.enteredE = false
		err := d.Step()
		if !s.enteredE {
			s.stallCycles++
		}
		return err
	}

	// The generated engine's edge functions (edges_gen.go, emitted by
	// cmd/osmgen) attach unconditionally: an attachment is derived
	// state the other engines simply ignore, and it keeps a snapshot
	// taken under any engine restorable into a generated-engine
	// director. A resolution error (the generated file drifted from
	// the model) is fatal only when the generated engine was actually
	// requested; otherwise it resurfaces on the first Step if the
	// engine is ever switched.
	if err := d.AttachGenerated(s.genEdges()); err != nil && cfg.Engine == osm.EngineGenerated {
		return err
	}
	return nil
}

// decode returns the cached static decoding of the word at pc.
func (s *Sim) decode(pc uint32) *decoded {
	if d, ok := s.decodeCache[pc]; ok {
		return d
	}
	d := &decoded{}
	if pc+4 <= s.ISS.RAM.Size() {
		if ins, err := arm.Decode(s.ISS.RAM.Read32(pc)); err == nil {
			d.ins, d.ok = ins, true
			d.srcs = trackedSrcs(&ins)
			d.dsts = trackedDsts(&ins)
			d.class = ins.Class()
			d.isBranch = ins.IsBranch()
		}
	}
	s.decodeCache[pc] = d
	return d
}

// execute runs the operation's semantics on the ISS and derives its
// timing: multiplier early termination, memory access addresses and
// result-forwarding availability.
func (s *Sim) execute(m *osm.Machine, cfg Config) {
	op := ctxOf(m)
	s.enteredE = true
	cycle := s.director.StepCount()
	if !op.decodeOK || s.ISS.CPU.Halted {
		// A wrong-path operation can never reach E: redirects resolve
		// in E and squash everything younger before it issues.
		s.execErr = fmt.Errorf("strongarm: wrong-path operation reached E at %#x", op.pc)
		s.haltFetch(m)
		return
	}
	// Memory timing uses the pre-execution register state; the access
	// is priced here (program order is preserved: only one operation
	// occupies E at a time) and applied as busy time on the E->B edge.
	// A condition-failed memory operation never issues its access.
	cpu := s.ISS.CPU
	condPassed := op.ins.Cond.Passed(cpu.N, cpu.Z, cpu.C, cpu.V)
	if condPassed {
		s.deriveMemTiming(op)
	}
	if op.isMem {
		op.memLat = s.Hier.DataLatency(op.memAddr, op.isStore) + uint64(op.memWords-1)
	}

	expected := op.pc + 4
	s.ISS.CPU.SetPC(op.pc)
	if _, err := s.ISS.Step(); err != nil {
		// Surface the error by halting; Run reports it.
		s.execErr = fmt.Errorf("at %#x: %w", op.pc, err)
		s.haltFetch(m)
		return
	}

	// Multiplier early termination (SA-110 style): the EX stage stays
	// busy 0-2 extra cycles depending on the magnitude of Rs. A
	// condition-failed multiply never engages the multiplier.
	var extraE uint64
	if condPassed && op.ins.Class() == arm.ClassMul {
		extraE = s.mulExtra(op, cfg)
		if extraE > 0 {
			s.me.SetBusy(0, extraE)
		}
	}

	// Publish forwarding times.
	ready := cycle + 1 + extraE
	if op.ins.Class() == arm.ClassLoad {
		ready = cycle + 2 + op.memLat // value leaves the buffer stage
	}
	for _, dst := range op.dsts {
		s.regs.SetReady(dst, ready)
	}

	// Control flow: compare the ISS's actual next PC against the
	// sequential fetch trajectory.
	if op.ins.Class() == arm.ClassBranch || op.ins.IsBranch() {
		s.brCount++
	}
	actual := s.ISS.CPU.PC()
	if s.ISS.CPU.Halted {
		s.haltFetch(m)
		return
	}
	if actual != expected {
		s.redirect(m, actual)
	}
}

func (s *Sim) mulExtra(op *opCtx, cfg Config) uint64 {
	if cfg.FixedMul {
		return 2
	}
	v := s.ISS.CPU.R[op.ins.Rs&0xf]
	switch {
	case v < 1<<8:
		return 0
	case v < 1<<24:
		return 1
	default:
		return 2
	}
}

// deriveMemTiming computes the effective address before the ISS
// mutates the registers.
func (s *Sim) deriveMemTiming(op *opCtx) {
	ins := &op.ins
	c := s.ISS.CPU
	switch ins.Op {
	case arm.LDR, arm.STR:
		op.isMem = true
		op.isStore = ins.Op == arm.STR
		op.memWords = 1
		var off uint32
		if ins.HasImm {
			off = ins.Imm
		} else {
			off = c.R[ins.Rm]
			if ins.ShiftAmt > 0 {
				switch ins.Shift {
				case arm.LSL:
					off <<= uint(ins.ShiftAmt)
				case arm.LSR:
					off >>= uint(ins.ShiftAmt)
				case arm.ASR:
					off = uint32(int32(off) >> uint(ins.ShiftAmt))
				case arm.ROR:
					off = off>>uint(ins.ShiftAmt) | off<<(32-uint(ins.ShiftAmt))
				}
			}
		}
		base := c.R[ins.Rn]
		addr := base
		if ins.Pre {
			if ins.Up {
				addr = base + off
			} else {
				addr = base - off
			}
		}
		op.memAddr = addr
	case arm.LDRH, arm.STRH, arm.LDRSB, arm.LDRSH:
		off := ins.Imm
		if !ins.HasImm {
			off = c.R[ins.Rm]
		}
		addr := c.R[ins.Rn]
		if ins.Pre {
			if ins.Up {
				addr += off
			} else {
				addr -= off
			}
		}
		op.isMem = true
		op.isStore = ins.Op == arm.STRH
		op.memWords = 1
		op.memAddr = addr
	case arm.LDM, arm.STM:
		op.isMem = true
		op.isStore = ins.Op == arm.STM
		n := uint32(0)
		for r := 0; r < 16; r++ {
			if ins.RegList&(1<<r) != 0 {
				n++
			}
		}
		op.memWords = n
		op.memAddr = c.R[ins.Rn]
	}
}

func (s *Sim) haltFetch(cause *osm.Machine) {
	s.fetchStop = true
	s.squashYounger(cause)
}

func (s *Sim) redirect(cause *osm.Machine, target uint32) {
	s.redirects++
	s.fetchPC = target
	s.redirectUntil = int64(s.director.StepCount())
	s.squashYounger(cause)
}

func (s *Sim) squashYounger(cause *osm.Machine) {
	for _, m := range s.director.Machines() {
		if m != cause && !m.InInitial() && m.Age > cause.Age {
			s.reset.Mark(m)
		}
	}
}

// StepCycle advances the simulation by one clock cycle.
func (s *Sim) StepCycle() error { return s.Kernel.StepCycle() }

// Cycle returns the number of completed clock cycles.
func (s *Sim) Cycle() uint64 { return s.Kernel.Cycle() }

// Done reports whether the program has exited (or died) and the
// pipeline has fully drained.
func (s *Sim) Done() bool {
	if !s.ISS.CPU.Halted && s.execErr == nil {
		return false
	}
	for _, m := range s.director.Machines() {
		if !m.InInitial() {
			return false
		}
	}
	return true
}

// Finalize checks the end-of-run invariants of a completed simulation
// and returns its statistics.
func (s *Sim) Finalize() (Stats, error) {
	if s.execErr != nil {
		return s.stats(), s.execErr
	}
	if s.retired != s.ISS.Stats.Instrs {
		return s.stats(), fmt.Errorf("strongarm: model invariant violated: %d retired vs %d executed",
			s.retired, s.ISS.Stats.Instrs)
	}
	return s.stats(), nil
}

// Run simulates until the program exits or maxCycles elapse.
func (s *Sim) Run(maxCycles uint64) (Stats, error) {
	_, finished, err := s.Kernel.RunUntil(s.Done, maxCycles)
	if err != nil {
		return s.stats(), err
	}
	if s.execErr != nil {
		return s.stats(), s.execErr
	}
	if !finished {
		return s.stats(), fmt.Errorf("strongarm: program did not finish within %d cycles", maxCycles)
	}
	return s.Finalize()
}

func (s *Sim) stats() Stats {
	st := Stats{
		Cycles:    s.Kernel.Cycle(),
		Instrs:    s.ISS.Stats.Instrs,
		Branches:  s.brCount,
		Redirects: s.redirects,
		Stalls:    s.stallCycles,
	}
	if s.Hier.ICache != nil {
		st.ICache = s.Hier.ICache.Stats
	}
	if s.Hier.DCache != nil {
		st.DCache = s.Hier.DCache.Stats
	}
	return st
}

// Director exposes the model's director for tracing and analysis.
func (s *Sim) Director() *osm.Director { return s.director }
