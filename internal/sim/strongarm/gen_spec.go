package strongarm

import (
	"repro/internal/osm"
	"repro/internal/osm/gen"
)

//go:generate go run repro/cmd/osmgen -target strongarm -out edges_gen.go

// GenModel exposes the elaborated model to the Go code generator
// (cmd/osmgen): the lowered guard program the compiled engine would
// execute, plus the spec mapping its managers, When predicates and
// identifier functions back to source expressions in this package.
// The generator walks exactly what Director.Compile consumed, so the
// emitted edge functions (edges_gen.go) cover precisely the model the
// other engines run.
func (s *Sim) GenModel() (*osm.GuardProgram, gen.Spec, error) {
	prog, err := s.director.Compile()
	if err != nil {
		return nil, gen.Spec{}, err
	}
	spec := gen.Spec{
		Package: "strongarm",
		Managers: map[string]string{
			"IF":          "s.mf",
			"ID":          "s.md",
			"EX":          "s.me",
			"BF":          "s.mb",
			"WB":          "s.mw",
			"regfile+fwd": "s.regs",
			"reset":       "s.reset",
		},
		When: map[string]string{
			osm.GenKey("I", "e0"): "s.whenFetch(m)",
		},
	}
	return prog, spec, nil
}
