package strongarm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/osm"
	"repro/internal/snap"
)

// Full-simulator checkpointing. A snapshot must be taken between
// cycles (never from inside an edge action); Restore targets a fresh
// simulator built with New from the same program and Config. Decode-
// derived operation facts (instruction, operand lists) are re-derived
// from the restored RAM image through the decode cache instead of
// being serialized — program text is immutable in this model.

const simSnapVersion = 1

const simSnapHeader = "sarm"

// Snapshot encodes the complete simulator state.
func (s *Sim) Snapshot() ([]byte, error) {
	w := snap.NewWriter()
	w.U32(snap.Magic)
	w.String(simSnapHeader)
	w.Version(simSnapVersion)
	w.Blob(s.ISS.Snapshot)
	w.Blob(s.Hier.Snapshot)
	var kerr error
	w.Blob(func(w *snap.Writer) { kerr = s.Kernel.Snapshot(w) })
	if kerr != nil {
		return nil, kerr
	}

	w.U32(s.fetchPC)
	w.I64(s.redirectUntil)
	w.Bool(s.fetchStop)
	w.U64(s.retired)
	w.U64(s.redirects)
	w.U64(s.brCount)
	w.U64(s.stallCycles)
	if s.execErr != nil {
		w.String(s.execErr.Error())
	} else {
		w.String("")
	}

	w.Int(len(s.director.Machines()))
	for _, m := range s.director.Machines() {
		op, _ := m.Ctx.(*opCtx)
		w.Bool(op != nil)
		if op != nil {
			w.Blob(func(w *snap.Writer) {
				w.U32(op.pc)
				w.U32(op.memAddr)
				w.U32(op.memWords)
				w.U64(op.memLat)
				w.Bool(op.isStore)
				w.Bool(op.isMem)
			})
		}
	}

	var derr error
	w.Blob(func(w *snap.Writer) { derr = s.director.Snapshot(w) })
	if derr != nil {
		return nil, derr
	}
	return w.Bytes(), nil
}

// Restore decodes a snapshot into this simulator, which must have
// been built with New from the same program and configuration and not
// yet stepped.
func (s *Sim) Restore(data []byte) error {
	r := snap.NewReader(data)
	if m := r.U32(); r.Err() == nil && m != snap.Magic {
		return fmt.Errorf("strongarm: not a snapshot (magic %#x)", m)
	}
	if h := r.String(); r.Err() == nil && h != simSnapHeader {
		return fmt.Errorf("strongarm: snapshot is for model %q, want %q", h, simSnapHeader)
	}
	r.Version("strongarm sim", simSnapVersion)
	if err := s.ISS.Restore(r.Blob()); err != nil {
		return err
	}
	if err := s.Hier.Restore(r.Blob()); err != nil {
		return err
	}
	if err := s.Kernel.Restore(r.Blob()); err != nil {
		return err
	}

	s.fetchPC = r.U32()
	s.redirectUntil = r.I64()
	s.fetchStop = r.Bool()
	s.retired = r.U64()
	s.redirects = r.U64()
	s.brCount = r.U64()
	s.stallCycles = r.U64()
	if msg := r.String(); msg != "" {
		s.execErr = errors.New(msg)
	} else {
		s.execErr = nil
	}
	s.enteredE = false

	nm := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	machines := s.director.Machines()
	if nm != len(machines) {
		return fmt.Errorf("strongarm: snapshot has %d machines, model has %d", nm, len(machines))
	}
	for _, m := range machines {
		has := r.Bool()
		if err := r.Err(); err != nil {
			return err
		}
		if !has {
			m.Ctx = nil
			continue
		}
		b := r.Blob()
		op := &opCtx{
			pc:       b.U32(),
			memAddr:  b.U32(),
			memWords: b.U32(),
			memLat:   b.U64(),
			isStore:  b.Bool(),
			isMem:    b.Bool(),
		}
		if err := b.Close("strongarm opctx"); err != nil {
			return err
		}
		if d := s.decode(op.pc); d.ok {
			op.ins, op.decodeOK = d.ins, true
			op.srcs, op.dsts = d.srcs, d.dsts
		}
		m.Ctx = op
	}

	if err := s.director.Restore(r.Blob()); err != nil {
		return err
	}
	return r.Close("strongarm sim")
}

const regFileSnapVersion = 1

// SnapshotState encodes the scoreboard and forwarding times
// (osm.Snapshotter). Writer lists are keyed by machine index, sorted
// for a deterministic byte stream.
func (r *regFile) SnapshotState(c *osm.SnapCtx, w *snap.Writer) {
	w.Version(regFileSnapVersion)
	w.U64(r.cycle)
	for i := range r.pending {
		w.Int(r.pending[i])
		w.U64(r.readyAt[i])
	}
	idxs := make([]int, 0, len(r.writers))
	for m := range r.writers {
		idxs = append(idxs, c.Index(m))
	}
	sort.Ints(idxs)
	w.Int(len(idxs))
	for _, i := range idxs {
		w.Int(i)
		dsts := r.writers[c.Machine(i)]
		w.Int(len(dsts))
		for _, d := range dsts {
			w.Int(d)
		}
	}
}

// RestoreState decodes a scoreboard snapshot (osm.Snapshotter).
func (r *regFile) RestoreState(c *osm.SnapCtx, rd *snap.Reader) error {
	rd.Version("regfile+fwd", regFileSnapVersion)
	r.cycle = rd.U64()
	for i := range r.pending {
		r.pending[i] = rd.Int()
		r.readyAt[i] = rd.U64()
	}
	n := rd.Int()
	if err := rd.Err(); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("regfile+fwd: negative writer count %d", n)
	}
	r.writers = make(map[*osm.Machine][]int, n)
	for i := 0; i < n; i++ {
		m := c.Machine(rd.Int())
		nd := rd.Int()
		if err := rd.Err(); err != nil {
			return err
		}
		if m == nil || nd < 0 || nd > len(r.pending) {
			return fmt.Errorf("regfile+fwd: corrupt writer entry %d", i)
		}
		dsts := make([]int, 0, nd)
		for j := 0; j < nd; j++ {
			dsts = append(dsts, rd.Int())
		}
		r.writers[m] = dsts
	}
	return rd.Close("regfile+fwd")
}
