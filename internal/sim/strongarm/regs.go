// Package strongarm implements the paper's first case study: a
// cycle-accurate OSM model of the StrongARM (SA-1100) core, a
// five-stage pipelined implementation of the ARM architecture with
// forwarding paths and a multi-cycle multiplier.
//
// The model follows Section 4 of the paper exactly: each in-flight
// operation is an operation state machine traversing
// I → F → D → E → B → W → I; pipeline stages are token managers
// owning one occupancy token each; the combined register file and
// forwarding-path module is a token manager resolving data hazards;
// control hazards use a reset manager with high-priority reset edges;
// and variable memory latency is modeled by the stage managers
// refusing token release while an access is in flight. Operation
// semantics execute in the E-stage edge action by stepping the
// underlying instruction-set simulator, so the architectural state is
// always in-order and exact.
package strongarm

import (
	"repro/internal/isa/arm"
	"repro/internal/osm"
)

// Token identifiers of the register-file manager's namespace.
const (
	// SrcsToken inquires about the readiness of every source operand
	// of the requesting machine's operation (including the CPSR flags
	// when the operation reads them). The manager inspects the
	// requester's context, which the paper explicitly allows ("token
	// managers may check the identity of the requesting OSMs").
	SrcsToken osm.TokenID = 100
	// WriterToken allocates the update rights for every destination
	// register of the requesting machine's operation (plus the flags
	// when written). It is released at write-back.
	WriterToken osm.TokenID = 101
)

// flagsIdx tracks the CPSR condition flags as a 17th scoreboard entry.
const flagsIdx = 15 // PC (r15) is excluded from dependency tracking

// regFile is the combined register file and forwarding-path module of
// the StrongARM model. It is a pure timing scoreboard: values live in
// the underlying ISS (which executes in order at the E stage), so the
// manager tracks, per register, the number of outstanding updates and
// the cycle at which the newest result becomes available on the
// forwarding network.
type regFile struct {
	osm.BaseManager
	cycle   uint64
	pending [16]int
	readyAt [16]uint64
	writers map[*osm.Machine][]int
}

func newRegFile() *regFile {
	return &regFile{
		BaseManager: osm.BaseManager{ManagerName: "regfile+fwd"},
		writers:     make(map[*osm.Machine][]int),
	}
}

// BeginStep tracks the current control step (osm.Stepper) and wakes
// waiters when a forwarding-network availability time is reached this
// cycle: sources that previously inquired unavailable can now issue.
func (r *regFile) BeginStep(cycle uint64) {
	r.cycle = cycle
	for i, at := range r.readyAt {
		if r.pending[i] > 0 && at == cycle {
			r.Wake()
			break
		}
	}
}

// SleepSafeManager reports that machines blocked on the manager may be
// suspended (osm.SleepSafe): every availability change is either a
// committed transaction or a forwarding-time crossing announced by
// BeginStep.
func (r *regFile) SleepSafeManager() bool { return true }

// trackedDsts lists the scoreboard indices an operation updates.
func trackedDsts(ins *arm.Instr) []int {
	var out []int
	for _, d := range ins.DstRegs() {
		if d != arm.PC {
			out = append(out, d)
		}
	}
	if ins.WritesFlags() {
		out = append(out, flagsIdx)
	}
	return out
}

// trackedSrcs lists the scoreboard indices an operation reads.
func trackedSrcs(ins *arm.Instr) []int {
	var out []int
	for _, s := range ins.SrcRegs() {
		if s != arm.PC {
			out = append(out, s)
		}
	}
	if ins.ReadsFlags() {
		out = append(out, flagsIdx)
	}
	return out
}

func (r *regFile) available(idx int) bool {
	return r.pending[idx] == 0 || r.cycle >= r.readyAt[idx]
}

// Inquire implements the value-token side: SrcsToken succeeds when
// every source operand is architecturally committed or available on a
// forwarding path this cycle.
func (r *regFile) Inquire(m *osm.Machine, id osm.TokenID) bool {
	if id != SrcsToken {
		return false
	}
	op := ctxOf(m)
	if !op.decodeOK {
		return true // wrong-path garbage stalls on nothing
	}
	for _, s := range op.srcs {
		if !r.available(s) {
			return false
		}
	}
	return true
}

// Allocate implements the register-update-token side: WriterToken
// claims update rights for all destinations at once. The in-order
// pipeline has no WAW limit, so the grant never fails.
func (r *regFile) Allocate(m *osm.Machine, id osm.TokenID) (osm.Token, bool) {
	if id != WriterToken {
		return osm.Token{}, false
	}
	dsts := ctxOf(m).dsts
	for _, d := range dsts {
		r.pending[d]++
	}
	r.writers[m] = dsts
	return osm.Token{Mgr: r, ID: WriterToken}, true
}

// CancelAllocate reverses a tentative WriterToken grant.
func (r *regFile) CancelAllocate(m *osm.Machine, t osm.Token) { r.retire(m) }

// The manager opts in to the compiled engine's check-then-commit fast
// path: its grant decisions depend only on its own scoreboard and the
// requester's committed context, and a cancelled grant leaves no
// residue, so predicting the outcome is exact.
var _ osm.CheckableManager = (*regFile)(nil)

// CanAllocate predicts Allocate: WriterToken grants never fail (the
// in-order pipeline has no WAW limit), any other identifier is
// refused.
func (r *regFile) CanAllocate(m *osm.Machine, id osm.TokenID) bool { return id == WriterToken }

// CanRelease predicts Release, which always accepts the writer token
// back.
func (r *regFile) CanRelease(m *osm.Machine, t osm.Token) bool { return true }

// Release always accepts the writer token back.
func (r *regFile) Release(m *osm.Machine, t osm.Token) bool { return true }

// CommitRelease retires the machine's outstanding updates.
func (r *regFile) CommitRelease(m *osm.Machine, t osm.Token) { r.retire(m) }

// Discarded retires the updates of a squashed machine. It wakes
// waiters itself because Machine.Reset discards outside any edge
// commit.
func (r *regFile) Discarded(m *osm.Machine, t osm.Token) {
	r.retire(m)
	r.Wake()
}

// OutstandingGrants enumerates the committed writer tokens
// (osm.GrantAuditor): every machine in the writers table holds one
// WriterToken. Order is unspecified; the checker matches multisets.
func (r *regFile) OutstandingGrants(yield func(osm.Grant)) {
	for m := range r.writers {
		yield(osm.Grant{Owner: m, ID: WriterToken})
	}
}

func (r *regFile) retire(m *osm.Machine) {
	for _, d := range r.writers[m] {
		r.pending[d]--
	}
	delete(r.writers, m)
}

// SetReady publishes a forwarding-network availability time for a
// scoreboard entry: dependents may issue at cycle `at` or later.
func (r *regFile) SetReady(idx int, at uint64) { r.readyAt[idx] = at }
