package ppc750

import (
	"math"

	"repro/internal/isa/ppc"
	"repro/internal/osm"
)

// Scoreboard indices: GPR0..31, then the condition, link and count
// registers.
const (
	idxCR  = 32
	idxLR  = 33
	idxCTR = 34
	numIdx = 35
)

// Token identifiers of the rename manager's namespace.
const (
	// SrcsToken inquires, at dispatch time, whether every source of
	// the requesting operation has either committed or been produced
	// by an already-executed in-flight writer.
	SrcsToken osm.TokenID = 200
	// DepsToken inquires, from a reservation station, whether the
	// producers captured at dispatch have all executed.
	DepsToken osm.TokenID = 201
	// WriterToken claims rename buffers for the operation's GPR
	// destinations and registers it as the newest writer of all its
	// destinations. Released at completion.
	WriterToken osm.TokenID = 202
)

// notReady marks a result that has not been produced yet.
const notReady = math.MaxUint64

// trackedSrcs lists the scoreboard indices an operation reads.
func trackedSrcs(ins *ppc.Instr) []int {
	out := ins.SrcRegs()
	if ins.ReadsCR() {
		out = append(out, idxCR)
	}
	if ins.ReadsLR() {
		out = append(out, idxLR)
	}
	if ins.ReadsCTR() {
		out = append(out, idxCTR)
	}
	return out
}

// trackedDsts lists the scoreboard indices an operation writes; the
// second result is the number of GPR rename buffers it needs.
func trackedDsts(ins *ppc.Instr) (out []int, gprs int) {
	out = ins.DstRegs()
	gprs = len(out)
	if ins.WritesCR() {
		out = append(out, idxCR)
	}
	if ins.WritesLR() {
		out = append(out, idxLR)
	}
	if ins.WritesCTR() {
		out = append(out, idxCTR)
	}
	return out, gprs
}

// renamer is the register-file module of the 750 model: it combines
// the architected register files with their rename buffers. Rather
// than tracking values (the ISS executes in order at dispatch and is
// always architecturally exact), it tracks data dependences the way
// rename hardware does: per architectural register, the newest
// in-flight producer; per operation, the cycle its result appears on
// the result buses.
type renamer struct {
	osm.BaseManager
	cycle uint64
	// resultTimes holds the not-yet-reached result times of in-flight
	// operations; when one is reached at BeginStep, readiness
	// inquiries that previously failed can now succeed.
	resultTimes []uint64
	lastWriter  [numIdx]*op
	// Rename-buffer pool for GPR destinations.
	bufCap, bufUsed int
	undo            map[*osm.Machine][]undoEntry

	// snapIdx and snapOps are installed by Sim.Snapshot/Restore around
	// the director snapshot so the Snapshotter methods can encode
	// lastWriter entries as op-table indices.
	snapIdx map[*op]int
	snapOps []*op
}

type undoEntry struct {
	idx  int
	prev *op
}

func newRenamer(renameBuffers int) *renamer {
	return &renamer{
		BaseManager: osm.BaseManager{ManagerName: "regfiles+rename"},
		bufCap:      renameBuffers,
		undo:        make(map[*osm.Machine][]undoEntry),
	}
}

// BeginStep tracks the current control step (osm.Stepper) and wakes
// waiters when an in-flight result reaches the buses this cycle.
func (r *renamer) BeginStep(cycle uint64) {
	r.cycle = cycle
	wake := false
	kept := r.resultTimes[:0]
	for _, at := range r.resultTimes {
		if at <= cycle {
			wake = true
			continue
		}
		kept = append(kept, at)
	}
	r.resultTimes = kept
	if wake {
		r.Wake()
	}
}

// noteResult records the cycle at which an issued operation's result
// appears on the result buses, scheduling a wake for that step.
func (r *renamer) noteResult(at uint64) { r.resultTimes = append(r.resultTimes, at) }

// SleepSafeManager reports that machines blocked on the manager may be
// suspended (osm.SleepSafe): every availability change is either a
// committed transaction or a result-time crossing announced by
// BeginStep.
func (r *renamer) SleepSafeManager() bool { return true }

func (r *renamer) srcReady(idx int) bool {
	w := r.lastWriter[idx]
	return w == nil || w.resultAt <= r.cycle
}

// Inquire implements both operand checks. SrcsToken consults the
// newest-writer table (valid only at dispatch time, before the
// requester registers itself); DepsToken consults the producer set
// the operation captured when it was dispatched into a reservation
// station.
func (r *renamer) Inquire(m *osm.Machine, id osm.TokenID) bool {
	o := opOf(m)
	switch id {
	case SrcsToken:
		if !o.decodeOK {
			return true // surfaces as a dispatch-time model error
		}
		for _, s := range o.srcs {
			if !r.srcReady(s) {
				return false
			}
		}
		return true
	case DepsToken:
		for _, dep := range o.deps {
			if dep.resultAt > r.cycle {
				return false
			}
		}
		return true
	}
	return false
}

// Allocate grants WriterToken when enough rename buffers are free.
// It snapshots the operation's producer set — the newest in-flight,
// not-yet-executed writer of each source, exactly what dispatch
// hardware latches into a reservation station — and then tentatively
// registers the operation as the newest writer of its destinations.
// The snapshot happens first so an operation that reads and writes
// the same register depends on the older producer, not on itself.
func (r *renamer) Allocate(m *osm.Machine, id osm.TokenID) (osm.Token, bool) {
	if id != WriterToken {
		return osm.Token{}, false
	}
	o := opOf(m)
	dsts, gprs := o.dsts, o.gprDsts
	if r.bufUsed+gprs > r.bufCap {
		return osm.Token{}, false
	}
	o.deps = o.deps[:0]
	for _, s := range o.srcs {
		// Capture every in-flight producer, including one already
		// executing: readiness is judged against its result time at
		// issue, so an already-retired producer is harmlessly ready.
		if w := r.lastWriter[s]; w != nil && w != o {
			o.deps = append(o.deps, w)
		}
	}
	r.bufUsed += gprs
	o.renameBufs = gprs
	var undos []undoEntry
	for _, d := range dsts {
		undos = append(undos, undoEntry{idx: d, prev: r.lastWriter[d]})
		r.lastWriter[d] = o
	}
	r.undo[m] = undos
	return osm.Token{Mgr: r, ID: WriterToken}, true
}

// CancelAllocate restores the newest-writer table and the buffer pool.
func (r *renamer) CancelAllocate(m *osm.Machine, t osm.Token) {
	o := opOf(m)
	r.bufUsed -= o.renameBufs
	undos := r.undo[m]
	for i := len(undos) - 1; i >= 0; i-- {
		r.lastWriter[undos[i].idx] = undos[i].prev
	}
	delete(r.undo, m)
}

// CommitAllocate discards the undo log; the registration stands.
func (r *renamer) CommitAllocate(m *osm.Machine, t osm.Token) { delete(r.undo, m) }

// Release accepts the writer token back at completion.
func (r *renamer) Release(m *osm.Machine, t osm.Token) bool { return true }

// The manager opts in to the compiled engine's check-then-commit fast
// path: a grant depends only on the identifier and the free rename
// buffers, and CancelAllocate restores the manager exactly. (The
// interpreter's cancelled grants additionally rewrite the requester's
// producer set, but that set is rebuilt by every successful grant
// before it can be read, so skipping failed attempts is unobservable.)
var _ osm.CheckableManager = (*renamer)(nil)

// CanAllocate predicts Allocate: WriterToken succeeds when enough
// rename buffers are free for the operation's GPR destinations.
func (r *renamer) CanAllocate(m *osm.Machine, id osm.TokenID) bool {
	return id == WriterToken && r.bufUsed+opOf(m).gprDsts <= r.bufCap
}

// CanRelease predicts Release, which always accepts the token back.
func (r *renamer) CanRelease(m *osm.Machine, t osm.Token) bool { return true }

// CommitRelease frees the rename buffers. The newest-writer table
// keeps its pointer: a completed producer's resultAt is in the past,
// so readers see it as ready, and dropping the entry eagerly would
// race younger registered writers.
func (r *renamer) CommitRelease(m *osm.Machine, t osm.Token) {
	r.bufUsed -= opOf(m).renameBufs
}

// Discarded reclaims the buffers of a squashed operation and unhooks
// it from the newest-writer table.
func (r *renamer) Discarded(m *osm.Machine, t osm.Token) {
	o := opOf(m)
	r.bufUsed -= o.renameBufs
	for i := range r.lastWriter {
		if r.lastWriter[i] == o {
			r.lastWriter[i] = nil
		}
	}
	delete(r.undo, m)
	// A squashed writer disappearing can make sources ready; Discarded
	// is also reachable outside edge commits via Machine.Reset.
	r.Wake()
}
