// Package ppc750 implements the paper's second case study: a
// cycle-accurate OSM model of the PowerPC 750, a dual-issue
// out-of-order superscalar processor with a 6-entry fetch queue,
// function units fronted by reservation stations, register rename
// buffers and a 6-entry completion queue.
//
// The model realizes the paper's Figure 2 behaviour: a dispatched
// instruction checks whether its source operands and function unit
// are available; if so it enters the unit directly, otherwise it
// enters the unit's reservation station — two parallel outgoing edges
// of different static priority. The branch history table and the
// branch target instruction cache live purely in the hardware layer,
// as the paper prescribes.
package ppc750

// BHT is a table of 2-bit saturating counters indexed by word
// address, the PowerPC 750's 512-entry branch history table.
type BHT struct {
	counters []uint8
	// Stats.
	Lookups, Hits uint64
}

// NewBHT returns a table with n entries (n must be a power of two),
// initialized to weakly-not-taken.
func NewBHT(n int) *BHT {
	return &BHT{counters: make([]uint8, n)}
}

func (b *BHT) index(pc uint32) int { return int(pc>>2) & (len(b.counters) - 1) }

// Predict returns the predicted direction for the branch at pc.
func (b *BHT) Predict(pc uint32) bool {
	b.Lookups++
	return b.counters[b.index(pc)] >= 2
}

// Update trains the counter with the resolved direction and records
// whether the earlier prediction was correct.
func (b *BHT) Update(pc uint32, taken bool) {
	i := b.index(pc)
	was := b.counters[i] >= 2
	if was == taken {
		b.Hits++
	}
	if taken {
		if b.counters[i] < 3 {
			b.counters[i]++
		}
	} else if b.counters[i] > 0 {
		b.counters[i]--
	}
}

// BTIC is the branch target instruction cache: a small direct-mapped
// cache of taken-branch targets that removes the one-cycle fetch
// bubble of a predicted-taken branch when it hits.
type BTIC struct {
	tags    []uint32
	targets []uint32
	valid   []bool
	// Stats.
	Lookups, Hits uint64
}

// NewBTIC returns a target cache with n entries (power of two).
func NewBTIC(n int) *BTIC {
	return &BTIC{tags: make([]uint32, n), targets: make([]uint32, n), valid: make([]bool, n)}
}

func (b *BTIC) index(pc uint32) int { return int(pc>>2) & (len(b.tags) - 1) }

// Lookup returns the cached target of the branch at pc.
func (b *BTIC) Lookup(pc uint32) (uint32, bool) {
	b.Lookups++
	i := b.index(pc)
	if b.valid[i] && b.tags[i] == pc {
		b.Hits++
		return b.targets[i], true
	}
	return 0, false
}

// Insert caches a taken branch's target.
func (b *BTIC) Insert(pc, target uint32) {
	i := b.index(pc)
	b.tags[i], b.targets[i], b.valid[i] = pc, target, true
}
