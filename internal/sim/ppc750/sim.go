package ppc750

import (
	"fmt"

	"repro/internal/de"
	"repro/internal/isa/ppc"
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/osm"
)

// Config parameterizes the model.
type Config struct {
	// Hier sizes the memory subsystem; the zero value selects a
	// 750-like organization (32 KiB 8-way split caches).
	Hier mem.HierarchyConfig
	// RAMKB sizes the memory image; the zero value selects 1024.
	RAMKB int
	// Machines is the OSM population; the zero value selects 16.
	Machines int
	// FetchQueue, CompletionQueue and RenameBuffers size the front
	// end; zero values select the 750's 6/6/6.
	FetchQueue, CompletionQueue, RenameBuffers int
	// FetchWidth, DispatchWidth and CompleteWidth are the per-cycle
	// bandwidths; zero values select the 750's 4/2/2.
	FetchWidth, DispatchWidth, CompleteWidth int
	// BHTEntries and BTICEntries size the predictors (defaults
	// 512/64).
	BHTEntries, BTICEntries int
	// NoRestart disables the director's outer-loop restart as an
	// ablation. Unlike the in-order StrongARM, this model genuinely
	// needs the restart: out-of-order issue lets a junior operation
	// occupy a function unit a senior reservation-station waiter
	// wants, so the senior can depend on a junior for a resource.
	NoRestart bool
	// NoReservationStations removes the per-unit reservation
	// stations: operations dispatch only when the unit and operands
	// are ready (an ablation knob showing what the Fig. 2 multi-path
	// OSM buys).
	NoReservationStations bool
	// Engine selects the director's execution engine (event-driven
	// interpreter by default, reference scan, compiled guard programs,
	// or generated Go edge functions). All four are trace-equivalent;
	// see DESIGN.md §12-13.
	Engine osm.Engine
}

func (c *Config) fill() {
	if c.RAMKB == 0 {
		c.RAMKB = 1024
	}
	if c.Machines == 0 {
		c.Machines = 16
	}
	if c.FetchQueue == 0 {
		c.FetchQueue = 6
	}
	if c.CompletionQueue == 0 {
		c.CompletionQueue = 6
	}
	if c.RenameBuffers == 0 {
		c.RenameBuffers = 6
	}
	if c.FetchWidth == 0 {
		c.FetchWidth = 4
	}
	if c.DispatchWidth == 0 {
		c.DispatchWidth = 2
	}
	if c.CompleteWidth == 0 {
		c.CompleteWidth = 2
	}
	if c.BHTEntries == 0 {
		c.BHTEntries = 512
	}
	if c.BTICEntries == 0 {
		c.BTICEntries = 64
	}
	if c.Hier == (mem.HierarchyConfig{}) {
		c.Hier = mem.HierarchyConfig{
			ICacheKB: 32, DCacheKB: 32, Ways: 8, LineBytes: 32,
			HitLatency: 0, MemLatency: 25,
			TLBEntries: 64, TLBMissPenalty: 25,
			WriteBack: true,
		}
	}
}

// Stats reports a finished simulation.
type Stats struct {
	Cycles      uint64
	Instrs      uint64
	Dispatched  uint64
	Mispredicts uint64
	BHTAccuracy float64
	ICache      mem.CacheStats
	DCache      mem.CacheStats
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instrs)
}

// decoded caches the static per-instruction facts (the program text
// is immutable, so each word decodes once).
type decoded struct {
	ins   ppc.Instr
	ok    bool
	class ppc.Class
	srcs  []int
	dsts  []int
	gprs  int
}

// op is the per-operation payload. Completed operations stay
// referenced as dependence producers, so each dynamic operation gets
// its own op value (no pooling).
type op struct {
	pc            uint32
	ins           ppc.Instr
	decodeOK      bool
	class         ppc.Class
	predictedNext uint32
	actualNext    uint32
	indirect      bool
	redirect      bool
	deps          []*op
	srcs, dsts    []int
	gprDsts       int
	resultAt      uint64
	renameBufs    int
	execLat       uint64 // fixed at dispatch (multiplier width etc.)
	memAddr       uint32
	isMem         bool
	isStore       bool
}

func opOf(m *osm.Machine) *op { return m.Ctx.(*op) }

// ratedQueue is an in-order queue whose releases are limited to a
// per-cycle bandwidth: the dispatch and completion limits of the 750.
type ratedQueue struct {
	*osm.QueueManager
	max int
	n   int
}

func newRatedQueue(name string, depth, perCycle int) *ratedQueue {
	return &ratedQueue{QueueManager: osm.NewQueueManager(name, depth), max: perCycle}
}

// BeginStep resets the per-cycle release budget (osm.Stepper). When
// the budget was exhausted, refused releases can now succeed, so the
// manager wakes its waiters.
func (q *ratedQueue) BeginStep(cycle uint64) {
	if q.n >= q.max {
		q.Wake()
	}
	q.n = 0
}

// Allocate re-tags the grant so the token routes back through the
// rate-limiting wrapper rather than the embedded queue.
func (q *ratedQueue) Allocate(m *osm.Machine, id osm.TokenID) (osm.Token, bool) {
	t, ok := q.QueueManager.Allocate(m, id)
	if ok {
		t.Mgr = q
	}
	return t, ok
}

// Release additionally enforces the per-cycle bandwidth.
func (q *ratedQueue) Release(m *osm.Machine, t osm.Token) bool {
	if q.n >= q.max {
		return false
	}
	if !q.QueueManager.Release(m, t) {
		return false
	}
	q.n++
	return true
}

// CancelRelease refunds the budget.
func (q *ratedQueue) CancelRelease(m *osm.Machine, t osm.Token) {
	q.n--
	q.QueueManager.CancelRelease(m, t)
}

// The manager opts in to the compiled engine's check-then-commit fast
// path: grants depend only on queue occupancy, releases on head order
// and the per-cycle budget, and the embedded queue's cancels are
// exact. The model installs no release gate, so Inquire predicts
// Release completely.
var _ osm.CheckableManager = (*ratedQueue)(nil)

// CanAllocate predicts Allocate: the embedded queue grants whenever it
// has a free entry (the identifier is ignored).
func (q *ratedQueue) CanAllocate(m *osm.Machine, id osm.TokenID) bool {
	return q.Len() < q.Cap()
}

// CanRelease predicts Release: budget left this cycle and t at the
// head of the queue.
func (q *ratedQueue) CanRelease(m *osm.Machine, t osm.Token) bool {
	return q.n < q.max && q.QueueManager.Inquire(m, t.ID)
}

// unit is one function unit with its reservation station.
type unit struct {
	name string
	fu   *osm.UnitManager
	rs   *osm.UnitManager
	w    *osm.State
	e    *osm.State
	// takes reports whether the unit executes the class.
	takes func(c ppc.Class) bool
}

// Sim is a PowerPC 750 micro-architecture simulator instance.
type Sim struct {
	ISS    *iss.PPC
	Hier   *mem.Hierarchy
	Kernel *de.Kernel
	BHT    *BHT
	BTIC   *BTIC

	cfg         Config
	decodeCache map[uint32]*decoded
	director    *osm.Director
	fq, cq      *ratedQueue
	ren         *renamer
	reset       *osm.ResetManager
	units       []*unit

	fetchPC       uint32
	fetchStop     bool
	fetchHeld     bool
	fetchResumeAt uint64
	fetchCount    int
	retired       uint64
	dispatched    uint64
	mispredicts   uint64
	execErr       error
}

// New builds a simulator for the program.
func New(p *ppc.Program, cfg Config) (*Sim, error) {
	cfg.fill()
	is, err := iss.NewPPC(p, cfg.RAMKB)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		ISS:     is,
		Hier:    mem.NewHierarchy(cfg.Hier),
		BHT:     NewBHT(cfg.BHTEntries),
		BTIC:    NewBTIC(cfg.BTICEntries),
		cfg:     cfg,
		fq:      newRatedQueue("fetch-queue", cfg.FetchQueue, cfg.DispatchWidth),
		cq:      newRatedQueue("completion-queue", cfg.CompletionQueue, cfg.CompleteWidth),
		ren:     newRenamer(cfg.RenameBuffers),
		reset:   osm.NewResetManager("reset"),
		fetchPC: p.Entry,
	}
	s.decodeCache = make(map[uint32]*decoded)
	if err := s.buildModel(); err != nil {
		return nil, err
	}
	return s, nil
}

// The When predicates below are named methods, not builder-local
// closures, so the generated edge functions (edges_gen.go) can call
// exactly the predicates the interpreted model evaluates.

// whenFetch gates the fetch edge (I -> Q).
func (s *Sim) whenFetch(m *osm.Machine) bool { return s.fetchOK() }

// whenDisp gates a fast-dispatch edge (Q -> Eu): only the queue head
// may dispatch (in-order; checking here keeps non-head machines from
// probing the whole edge fan every control step), and the unit must
// execute the operation's class. An undecodable operation at the head
// of the queue is a model error; it routes to the system unit so
// dispatch can surface it instead of wedging.
func (s *Sim) whenDisp(u *unit, m *osm.Machine) bool {
	if s.fq.Head() != m {
		return false
	}
	o := opOf(m)
	if !o.decodeOK {
		return u.name == "sru"
	}
	return u.takes(o.class)
}

// whenDispRS gates a reservation-station dispatch edge (Q -> Wu).
// Undecodable operations only use the fast path above.
func (s *Sim) whenDispRS(u *unit, m *osm.Machine) bool {
	if s.fq.Head() != m {
		return false
	}
	o := opOf(m)
	return o.decodeOK && u.takes(o.class)
}

func (s *Sim) buildModel() error {
	d := osm.NewDirector()
	d.NoRestart = s.cfg.NoRestart
	d.Engine = s.cfg.Engine
	s.director = d

	mkUnit := func(name string, takes func(ppc.Class) bool) *unit {
		return &unit{
			name:  name,
			fu:    osm.NewUnitManager(name, 1),
			rs:    osm.NewUnitManager(name+"-rs", 1),
			w:     osm.NewState("W" + name),
			e:     osm.NewState("E" + name),
			takes: takes,
		}
	}
	// Unit priority order: simple integer work prefers IU2, keeping
	// IU1 free for multiplies and divides.
	s.units = []*unit{
		mkUnit("iu2", func(c ppc.Class) bool { return c == ppc.ClassALU }),
		mkUnit("iu1", func(c ppc.Class) bool { return c == ppc.ClassALU || c == ppc.ClassMul }),
		mkUnit("lsu", func(c ppc.Class) bool { return c == ppc.ClassLoad || c == ppc.ClassStore }),
		mkUnit("bpu", func(c ppc.Class) bool { return c == ppc.ClassBranch }),
		mkUnit("sru", func(c ppc.Class) bool { return c == ppc.ClassSys }),
	}

	iSt := osm.NewState("I")
	qSt := osm.NewState("Q")
	cSt := osm.NewState("C")

	fetch := iSt.Connect("fetch", qSt, osm.Alloc(s.fq, osm.AnyUnit))
	fetch.When = s.whenFetch
	fetch.Action = func(m *osm.Machine) { s.fetchOne(m) }

	for _, u := range s.units {
		u := u
		// Fast dispatch: operands and unit available — straight into
		// the execute stage (paper Fig. 2's high-priority path).
		fast := qSt.Connect("disp-"+u.name, u.e,
			osm.ReleaseF(s.fq, anyHeld),
			osm.Alloc(s.cq, osm.AnyUnit),
			osm.Inquire(s.ren, SrcsToken),
			osm.Alloc(s.ren, WriterToken),
			osm.Alloc(u.fu, 0))
		fast.When = func(m *osm.Machine) bool { return s.whenDisp(u, m) }
		fast.Action = func(m *osm.Machine) {
			s.dispatchExec(m)
			s.enterExec(m, u)
		}
	}
	if !s.cfg.NoReservationStations {
		for _, u := range s.units {
			u := u
			// Slow dispatch: into the unit's reservation station.
			slow := qSt.Connect("rs-"+u.name, u.w,
				osm.ReleaseF(s.fq, anyHeld),
				osm.Alloc(s.cq, osm.AnyUnit),
				osm.Alloc(s.ren, WriterToken),
				osm.Alloc(u.rs, 0))
			slow.When = func(m *osm.Machine) bool { return s.whenDispRS(u, m) }
			slow.Action = func(m *osm.Machine) { s.dispatchExec(m) }
		}
	}
	// Only the execute-stage releases can free a resource a senior
	// machine waits on (a junior that issued ahead of a senior
	// reservation-station waiter vacating the function unit), so only
	// those transitions trigger the director's rescan.
	restartEdges := make(map[*osm.Edge]bool)
	for _, u := range s.units {
		u := u
		issue := u.w.Connect("issue-"+u.name, u.e,
			osm.Release(u.rs, 0),
			osm.Inquire(s.ren, DepsToken),
			osm.Alloc(u.fu, 0))
		issue.Action = func(m *osm.Machine) { s.enterExec(m, u) }

		fin := u.e.Connect("fin-"+u.name, cSt, osm.Release(u.fu, 0))
		restartEdges[fin] = true
	}
	d.RestartPolicy = func(m *osm.Machine, e *osm.Edge) bool { return restartEdges[e] }

	complete := cSt.Connect("complete", iSt,
		osm.ReleaseF(s.cq, anyHeld),
		osm.Release(s.ren, WriterToken))
	complete.Action = func(m *osm.Machine) { s.retired++ }

	// Wrong-path operations live only in the fetch queue; the reset
	// edge kills them there.
	osm.ResetEdge(qSt, iSt, s.reset)

	d.AddManager(s.fq, s.cq, s.ren, s.reset)
	for _, u := range s.units {
		d.AddManager(u.fu, u.rs)
	}
	for k := 0; k < s.cfg.Machines; k++ {
		d.AddMachine(osm.NewMachine(fmt.Sprintf("op%d", k), iSt))
	}

	s.Kernel = de.NewKernel()
	s.Kernel.OnEdge = func(cycle uint64) error {
		s.fetchCount = 0
		return d.Step()
	}

	// The generated engine's edge functions (edges_gen.go, emitted by
	// cmd/osmgen) attach unconditionally: an attachment is derived
	// state the other engines simply ignore, and it keeps a snapshot
	// taken under any engine restorable into a generated-engine
	// director. The NoReservationStations variant leaves the rs-*
	// entries of the map unused, which resolution permits. A
	// resolution error (the generated file drifted from the model) is
	// fatal only when the generated engine was actually requested;
	// otherwise it resurfaces on the first Step if the engine is ever
	// switched.
	if err := d.AttachGenerated(s.genEdges()); err != nil && s.cfg.Engine == osm.EngineGenerated {
		return err
	}
	return nil
}

// anyHeld resolves a release against whichever token the machine
// holds from the manager (queue grants carry dynamic sequence ids).
func anyHeld(m *osm.Machine) osm.TokenID { return osm.AnyUnit }

func (s *Sim) fetchOK() bool {
	return !s.fetchStop && !s.fetchHeld &&
		s.director.StepCount() >= s.fetchResumeAt &&
		s.fetchCount < s.cfg.FetchWidth
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// fetchOne fetches along the predicted path: direct branches are
// predicted by the BHT (with the BTIC hiding the taken-redirect
// bubble); indirect branches stop fetch until they resolve.
func (s *Sim) fetchOne(m *osm.Machine) {
	step := s.director.StepCount()
	o := &op{pc: s.fetchPC}
	if lat := s.Hier.FetchLatency(s.fetchPC); lat > 0 {
		s.fetchResumeAt = max64(s.fetchResumeAt, step+lat)
	}
	if d := s.decode(s.fetchPC); d.ok {
		o.ins, o.decodeOK = d.ins, true
		o.class = d.class
		o.srcs, o.dsts, o.gprDsts = d.srcs, d.dsts, d.gprs
	}
	o.predictedNext = o.pc + 4
	if o.decodeOK {
		switch o.ins.Op {
		case ppc.B:
			o.predictedNext = s.directTarget(o, int64(o.ins.LI), o.ins.AA)
			s.takenRedirect(o, step)
		case ppc.BC:
			if s.BHT.Predict(o.pc) {
				o.predictedNext = s.directTarget(o, int64(o.ins.BD), o.ins.AA)
				s.takenRedirect(o, step)
			}
		case ppc.BCLR, ppc.BCCTR:
			// Target unknown until the branch reads LR/CTR: fetch
			// holds until resolution.
			o.indirect = true
			s.fetchHeld = true
		}
	}
	m.Ctx = o
	s.fetchPC = o.predictedNext
	s.fetchCount++
}

func (s *Sim) directTarget(o *op, disp int64, abs bool) uint32 {
	if abs {
		return uint32(disp)
	}
	return uint32(int64(o.pc) + disp)
}

// takenRedirect charges the one-cycle fetch bubble of a predicted-
// taken branch unless the BTIC supplies the target instruction.
func (s *Sim) takenRedirect(o *op, step uint64) {
	if _, hit := s.BTIC.Lookup(o.pc); !hit {
		s.fetchResumeAt = max64(s.fetchResumeAt, step+1)
	}
}

// decode returns the cached static decoding of the word at pc.
func (s *Sim) decode(pc uint32) *decoded {
	if d, ok := s.decodeCache[pc]; ok {
		return d
	}
	d := &decoded{}
	if pc+4 <= s.ISS.RAM.Size() {
		if ins, err := ppc.Decode(s.ISS.RAM.Read32(pc)); err == nil {
			d.ins, d.ok = ins, true
			d.class = ins.Class()
			d.srcs = trackedSrcs(&ins)
			d.dsts, d.gprs = trackedDsts(&ins)
		}
	}
	s.decodeCache[pc] = d
	return d
}

// dispatchExec performs the in-order functional execution at dispatch
// time: architectural state stays exact while timing plays out in the
// machine layer. It also fixes dispatch-time timing facts (memory
// address, multiplier width) and detects mispredictions.
func (s *Sim) dispatchExec(m *osm.Machine) {
	o := opOf(m)
	if !o.decodeOK || s.ISS.CPU.Halted {
		s.execErr = fmt.Errorf("ppc750: wrong-path operation dispatched at %#x", o.pc)
		s.fetchStop = true
		return
	}
	s.dispatched++
	s.deriveTiming(o)
	s.ISS.CPU.NextPC = o.pc
	if _, err := s.ISS.Step(); err != nil {
		s.execErr = fmt.Errorf("at %#x: %w", o.pc, err)
		s.fetchStop = true
		s.squashYounger(m)
		return
	}
	if s.ISS.CPU.Halted {
		s.fetchStop = true
		s.squashYounger(m)
		return
	}
	actual := s.ISS.CPU.NextPC
	o.actualNext = actual
	if o.indirect || actual != o.predictedNext {
		if !o.indirect {
			s.mispredicts++
		}
		o.redirect = true
		if dbgRedirect != nil {
			dbgRedirect("osm-detect", s.director.StepCount())
		}
		s.fetchPC = actual
		s.fetchHeld = true
		// Cancel pending wrong-path fetch stalls (an in-flight wrong-
		// path icache miss must not delay the correct path).
		s.fetchResumeAt = 0
		s.squashYounger(m)
	}
}

// deriveTiming fixes the operation's execute latency and memory
// address from the pre-execution register state.
func (s *Sim) deriveTiming(o *op) {
	c := s.ISS.CPU
	ins := &o.ins
	switch o.class {
	case ppc.ClassMul:
		switch ins.Op {
		case ppc.DIVW, ppc.DIVWU:
			o.execLat = 19
		case ppc.MULLI:
			o.execLat = 3
		default: // mullw: early termination on the second operand
			v := c.R[ins.RB]
			switch {
			case v < 1<<16:
				o.execLat = 2
			case v < 1<<24:
				o.execLat = 3
			default:
				o.execLat = 4
			}
		}
	case ppc.ClassLoad, ppc.ClassStore:
		o.isMem = true
		o.isStore = o.class == ppc.ClassStore
		o.execLat = 2
		base := uint32(0)
		if ins.RA != 0 || !memRAZero(ins.Op) {
			base = c.R[ins.RA]
		}
		switch ins.Op {
		case ppc.LWZU, ppc.STWU:
			base = c.R[ins.RA]
		}
		if isIndexed(ins.Op) {
			o.memAddr = base + c.R[ins.RB]
		} else {
			o.memAddr = base + uint32(ins.SI)
		}
	default:
		o.execLat = 1
	}
	o.resultAt = notReady
}

func memRAZero(op ppc.Op) bool {
	switch op {
	case ppc.LWZ, ppc.LBZ, ppc.LHZ, ppc.LHA, ppc.STW, ppc.STB, ppc.STH,
		ppc.LWZX, ppc.STWX, ppc.LBZX, ppc.STBX, ppc.LHZX, ppc.LHAX, ppc.STHX:
		return true
	}
	return false
}

func isIndexed(op ppc.Op) bool {
	switch op {
	case ppc.LWZX, ppc.STWX, ppc.LBZX, ppc.STBX, ppc.LHZX, ppc.LHAX, ppc.STHX:
		return true
	}
	return false
}

// enterExec starts the operation in its function unit: the unit stays
// busy for the latency, the result appears on the buses when it
// finishes, and branches resolve (training the predictors and
// releasing a held fetch).
func (s *Sim) enterExec(m *osm.Machine, u *unit) {
	o := opOf(m)
	cycle := s.director.StepCount()
	lat := o.execLat
	if o.isMem {
		lat += s.Hier.DataLatency(o.memAddr, o.isStore)
	}
	if lat == 0 {
		lat = 1
	}
	if lat > 1 {
		u.fu.SetBusy(0, lat-1)
	}
	o.resultAt = cycle + lat
	s.ren.noteResult(o.resultAt)
	if o.class == ppc.ClassBranch {
		s.resolveBranch(o, cycle)
	}
}

func (s *Sim) resolveBranch(o *op, cycle uint64) {
	actualTaken := o.actualNext != o.pc+4
	if o.ins.Op == ppc.BC {
		s.BHT.Update(o.pc, actualTaken)
	}
	if actualTaken && !o.indirect {
		s.BTIC.Insert(o.pc, o.actualNext)
	}
	if o.redirect {
		if dbgRedirect != nil {
			dbgRedirect("osm-resolve", cycle)
		}
		s.fetchHeld = false
		s.fetchResumeAt = max64(s.fetchResumeAt, cycle+1)
	}
}

func (s *Sim) squashYounger(cause *osm.Machine) {
	for _, m := range s.director.Machines() {
		if m != cause && !m.InInitial() && m.Age > cause.Age {
			s.reset.Mark(m)
		}
	}
}

// StepCycle advances the simulation by one clock cycle.
func (s *Sim) StepCycle() error { return s.Kernel.StepCycle() }

// Cycle returns the number of completed clock cycles.
func (s *Sim) Cycle() uint64 { return s.Kernel.Cycle() }

// Done reports whether the program has exited (or died) and the
// pipeline has fully drained.
func (s *Sim) Done() bool {
	if !s.ISS.CPU.Halted && s.execErr == nil {
		return false
	}
	for _, m := range s.director.Machines() {
		if !m.InInitial() {
			return false
		}
	}
	return true
}

// Finalize checks the end-of-run invariants of a completed simulation
// and returns its statistics.
func (s *Sim) Finalize() (Stats, error) {
	if s.execErr != nil {
		return s.stats(), s.execErr
	}
	if s.retired != s.ISS.Stats.Instrs {
		return s.stats(), fmt.Errorf("ppc750: model invariant violated: %d retired vs %d executed",
			s.retired, s.ISS.Stats.Instrs)
	}
	return s.stats(), nil
}

// Run simulates until the program exits or maxCycles elapse.
func (s *Sim) Run(maxCycles uint64) (Stats, error) {
	_, finished, err := s.Kernel.RunUntil(s.Done, maxCycles)
	if err != nil {
		return s.stats(), err
	}
	if s.execErr != nil {
		return s.stats(), s.execErr
	}
	if !finished {
		return s.stats(), fmt.Errorf("ppc750: program did not finish within %d cycles", maxCycles)
	}
	return s.Finalize()
}

func (s *Sim) stats() Stats {
	st := Stats{
		Cycles:      s.Kernel.Cycle(),
		Instrs:      s.ISS.Stats.Instrs,
		Dispatched:  s.dispatched,
		Mispredicts: s.mispredicts,
	}
	if s.BHT.Lookups > 0 {
		st.BHTAccuracy = float64(s.BHT.Hits) / float64(s.BHT.Lookups)
	}
	if s.Hier.ICache != nil {
		st.ICache = s.Hier.ICache.Stats
	}
	if s.Hier.DCache != nil {
		st.DCache = s.Hier.DCache.Stats
	}
	return st
}

var dbgRedirect func(string, uint64)

// DbgSetRedirect installs a debug hook (tests only).
func DbgSetRedirect(f func(string, uint64)) { dbgRedirect = f }

// Director exposes the model's director for tracing and analysis.
func (s *Sim) Director() *osm.Director { return s.director }
