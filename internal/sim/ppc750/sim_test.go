package ppc750

import (
	"fmt"
	"testing"

	"repro/internal/isa/ppc"
	"repro/internal/mem"
	"repro/internal/osm/invariant"
	"repro/internal/workload"
)

func perfect() Config {
	return Config{Hier: mem.HierarchyConfig{DisableCaches: true, DisableTLBs: true}}
}

func runSrc(t *testing.T, src string, cfg Config) Stats {
	t.Helper()
	p, err := ppc.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every timing test doubles as a differential run of the OSM
	// invariant checker: a violation fails the run.
	invariant.Attach(s.Director())
	st, err := s.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

const exit = "\tli r0, 1\n\tsc\n"

func TestDualIssueIPC(t *testing.T) {
	// A long stream of independent simple-integer operations should
	// sustain close to 2 instructions per cycle (dispatch width 2,
	// IU1+IU2 in parallel).
	src := ""
	for i := 0; i < 400; i++ {
		src += fmt.Sprintf("\taddi r%d, r%d, 1\n", 3+i%8, 3+i%8)
	}
	// Every 8th instruction targets the same register; dependence
	// chains are 50 long but 8 run in parallel, plenty for IPC 2.
	st := runSrc(t, src+exit, perfect())
	if ipc := st.IPC(); ipc < 1.6 {
		t.Errorf("independent ALU stream IPC = %.2f, want near 2", ipc)
	}
}

func TestSingleChainLimitsIPC(t *testing.T) {
	// A single dependence chain caps IPC at 1 regardless of width.
	src := ""
	for i := 0; i < 200; i++ {
		src += "\taddi r3, r3, 1\n"
	}
	st := runSrc(t, src+exit, perfect())
	if ipc := st.IPC(); ipc > 1.05 {
		t.Errorf("serial chain IPC = %.2f, must not exceed 1", ipc)
	}
}

func TestDivideLatencyExposed(t *testing.T) {
	// A dependent divide chain pays the 19-cycle divider each time.
	k := 8
	chain := "\tli r3, 1000000\n\tli r4, 3\n"
	for i := 0; i < k; i++ {
		chain += "\tdivw r3, r3, r4\n"
	}
	independent := "\tli r3, 1000000\n\tli r4, 3\n"
	for i := 0; i < k; i++ {
		independent += "\taddi r5, r5, 1\n"
	}
	stDiv := runSrc(t, chain+exit, perfect())
	stAdd := runSrc(t, independent+exit, perfect())
	if stDiv.Cycles < stAdd.Cycles+uint64(k*15) {
		t.Errorf("divide chain %d cycles vs add chain %d: divider latency missing",
			stDiv.Cycles, stAdd.Cycles)
	}
}

func TestReservationStationsHideLatency(t *testing.T) {
	// A long-latency divide followed by independent work: with
	// reservation stations the dependent consumer waits in the RS
	// while independent operations dispatch and execute out of order
	// behind it. Without them, dispatch blocks.
	src := "\tli r3, 1000000\n\tli r4, 3\n"
	for i := 0; i < 20; i++ {
		src += "\tdivw r5, r3, r4\n" // long-latency producer
		src += "\tadd r6, r5, r4\n"  // dependent consumer
		for j := 0; j < 6; j++ {
			src += fmt.Sprintf("\taddi r%d, r%d, 1\n", 8+j, 8+j) // independent
		}
	}
	with := runSrc(t, src+exit, perfect())
	cfg := perfect()
	cfg.NoReservationStations = true
	without := runSrc(t, src+exit, cfg)
	if with.Cycles >= without.Cycles {
		t.Errorf("reservation stations must help: with=%d without=%d",
			with.Cycles, without.Cycles)
	}
}

func TestBranchPredictionLearnsLoop(t *testing.T) {
	// A hot loop's backward branch becomes predictable; total
	// mispredicts stay O(1), not O(iterations).
	src := `
	li r3, 0
	li r4, 200
	mtctr r4
loop:
	addi r3, r3, 1
	bdnz loop
` + exit
	st := runSrc(t, src, perfect())
	if st.Mispredicts > 6 {
		t.Errorf("loop branch mispredicted %d times; BHT not learning", st.Mispredicts)
	}
	if st.BHTAccuracy < 0.9 {
		t.Errorf("BHT accuracy %.2f, want >0.9 on a hot loop", st.BHTAccuracy)
	}
}

func TestMispredictsCostCycles(t *testing.T) {
	// An input-dependent alternating branch defeats a 2-bit
	// predictor; the run must both record more mispredicts and spend
	// more cycles than a same-length predictable run.
	mk := func(alternating bool) string {
		cond := "cmpwi r5, 1000" // never equal: predictable not-taken
		if alternating {
			cond = "cmpwi r6, 0" // r6 toggles 0/1: taken every other time
		}
		return fmt.Sprintf(`
	li r3, 0
	li r4, 100
	li r6, 0
	mtctr r4
loop:
	xori r6, r6, 1
	%s
	beq skip
	addi r3, r3, 1
skip:
	addi r3, r3, 2
	bdnz loop
`, cond) + exit
	}
	stable := runSrc(t, mk(false), perfect())
	flaky := runSrc(t, mk(true), perfect())
	if flaky.Mispredicts <= stable.Mispredicts+20 {
		t.Errorf("alternating branch should mispredict often: %d vs %d",
			flaky.Mispredicts, stable.Mispredicts)
	}
	if flaky.Cycles <= stable.Cycles {
		t.Errorf("mispredicts must cost cycles: flaky=%d stable=%d",
			flaky.Cycles, stable.Cycles)
	}
}

func TestLoadLatency(t *testing.T) {
	// Dependent loads through memory cost the 2-cycle LSU each.
	k := 20
	// Build a pointer chain in memory: each cell points to itself.
	src := "\tli r4, 0x1000\n\tstw r4, 0(r4)\n"
	for i := 0; i < k; i++ {
		src += "\tlwz r4, 0(r4)\n"
	}
	dep := runSrc(t, src+exit, perfect())
	indep := runSrc(t, "\tli r4, 0x1000\n\tstw r4, 0(r4)\n"+
		func() (s string) {
			for i := 0; i < k; i++ {
				s += "\taddi r5, r5, 1\n"
			}
			return
		}()+exit, perfect())
	if dep.Cycles < indep.Cycles+uint64(k) {
		t.Errorf("load chain %d vs add chain %d: LSU latency missing", dep.Cycles, indep.Cycles)
	}
}

func TestKernelsCorrectUnderTimingModel(t *testing.T) {
	for _, w := range workload.All() {
		n := w.DefaultN / 5
		p, err := w.PPCProgram(n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		invariant.Attach(s.Director())
		st, err := s.Run(1_000_000_000)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(s.ISS.Reported) != 1 || s.ISS.Reported[0] != w.Ref(n) {
			t.Errorf("%s: checksum %v, want %#x", w.Name, s.ISS.Reported, w.Ref(n))
		}
		if cpi := st.CPI(); cpi < 0.5 || cpi > 6 {
			t.Errorf("%s: implausible CPI %.2f", w.Name, cpi)
		}
		if st.Dispatched != st.Instrs {
			t.Errorf("%s: dispatched %d != executed %d", w.Name, st.Dispatched, st.Instrs)
		}
	}
}

func TestSuperscalarBeatsScalarPipeline(t *testing.T) {
	// The whole point of the 750: on the same workload it should
	// need fewer cycles per instruction than a scalar 5-stage would
	// (CPI < ~1.2 on the ALU-heavy kernels with warm caches).
	w := workload.ByName("gsm/enc")
	p, err := w.PPCProgram(300)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, perfect())
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if cpi := st.CPI(); cpi >= 1.1 {
		t.Errorf("gsm/enc CPI = %.2f on the 750 model, want < 1.1", cpi)
	}
}

func TestNarrowFrontEndHurts(t *testing.T) {
	w := workload.ByName("g721/enc")
	p, err := w.PPCProgram(150)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg Config) uint64 {
		s, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(1_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	wide := run(perfect())
	narrowCfg := perfect()
	narrowCfg.FetchQueue = 2
	narrowCfg.CompletionQueue = 2
	narrowCfg.DispatchWidth = 1
	narrowCfg.CompleteWidth = 1
	narrow := run(narrowCfg)
	if narrow <= wide {
		t.Errorf("narrow front end must cost cycles: wide=%d narrow=%d", wide, narrow)
	}
}

func TestIndirectBranchStallsFetch(t *testing.T) {
	// blr-based returns block fetch until resolution; a call-heavy
	// program has higher CPI than the equivalent inline code.
	calls := `
	li r4, 50
	mtctr r4
loop:
	bl f
	bdnz loop
	b end
f:	blr
end:
` + exit
	inline := `
	li r4, 50
	mtctr r4
loop:
	nop
	bdnz loop
` + exit
	stCalls := runSrc(t, calls, perfect())
	stInline := runSrc(t, inline, perfect())
	if stCalls.CPI() <= stInline.CPI() {
		t.Errorf("indirect returns must cost: calls CPI=%.2f inline CPI=%.2f",
			stCalls.CPI(), stInline.CPI())
	}
}

func TestRunCycleLimit(t *testing.T) {
	p, err := ppc.Assemble("loop: b loop")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, perfect())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(2000); err == nil {
		t.Fatal("infinite loop must exhaust the cycle budget")
	}
}

func TestBHTAndBTICUnits(t *testing.T) {
	b := NewBHT(4)
	if b.Predict(0) {
		t.Fatal("fresh BHT must predict not-taken")
	}
	b.Update(0, true)
	b.Update(0, true)
	if !b.Predict(0) {
		t.Fatal("two taken updates must flip the prediction")
	}
	b.Update(0, true) // saturate to strongly taken
	b.Update(0, false)
	if !b.Predict(0) {
		t.Fatal("2-bit hysteresis: one not-taken must not flip a strong entry")
	}
	// Aliasing: pc 0 and pc 16 share entry 0 with 4 entries.
	if !b.Predict(16) {
		t.Fatal("aliased index must share the counter")
	}

	c := NewBTIC(2)
	if _, hit := c.Lookup(4); hit {
		t.Fatal("fresh BTIC must miss")
	}
	c.Insert(4, 100)
	if tgt, hit := c.Lookup(4); !hit || tgt != 100 {
		t.Fatal("BTIC must return the inserted target")
	}
	c.Insert(12, 200) // same index (2 entries): evicts
	if _, hit := c.Lookup(4); hit {
		t.Fatal("direct-mapped conflict must evict")
	}
}

// Rename-buffer exhaustion: lwzu needs two buffers (RT and the
// updated RA); with only 2 buffers total, dispatch serializes on
// completion.
func TestRenameBufferBackpressure(t *testing.T) {
	src := "\tli r4, 0x1000\n"
	for i := 0; i < 12; i++ {
		src += "\tlwzu r5, 4(r4)\n"
	}
	cfg2 := perfect()
	cfg2.RenameBuffers = 2
	narrow := runSrc(t, src+exit, cfg2)
	wide := runSrc(t, src+exit, perfect())
	if narrow.Cycles <= wide.Cycles {
		t.Errorf("2 rename buffers (%d cyc) must cost more than 6 (%d cyc)",
			narrow.Cycles, wide.Cycles)
	}
}

// Completion-queue backpressure: a long-latency op at the head holds
// every younger completion; a 1-entry queue amplifies this.
func TestCompletionQueueBackpressure(t *testing.T) {
	src := "\tli r3, 1000000\n\tli r4, 3\n\tdivw r5, r3, r4\n"
	for i := 0; i < 10; i++ {
		src += fmt.Sprintf("\taddi r%d, r%d, 1\n", 6+i%4, 6+i%4)
	}
	tiny := perfect()
	tiny.CompletionQueue = 1
	small := runSrc(t, src+exit, tiny)
	normal := runSrc(t, src+exit, perfect())
	if small.Cycles <= normal.Cycles {
		t.Errorf("1-entry completion queue (%d) must cost more than 6 (%d)",
			small.Cycles, normal.Cycles)
	}
}

// CTR serialization: bctr consumes CTR written by mtctr; the chain
// mtctr -> bctr must stall fetch until the indirect target resolves.
func TestMtctrBctrSerialization(t *testing.T) {
	st := runSrc(t, `
	li r4, next
	mtctr r4
	bctr
	li r3, 99
`+exit+`
next:
	li r3, 7
`+exit, perfect())
	if st.Instrs != 6 {
		t.Fatalf("instrs=%d, want 6 (the wrong-path li never executes)", st.Instrs)
	}
}

// A minimal machine population must still complete programs (slower,
// but without wedging).
func TestSmallMachinePopulation(t *testing.T) {
	w := workload.ByName("g721/dec")
	p, err := w.PPCProgram(40)
	if err != nil {
		t.Fatal(err)
	}
	cfg := perfect()
	cfg.Machines = 4
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(p, perfect())
	if err != nil {
		t.Fatal(err)
	}
	normal, err := s2.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if small.Cycles < normal.Cycles {
		t.Errorf("4 machines (%d cyc) should not beat 16 (%d cyc)", small.Cycles, normal.Cycles)
	}
	if s.ISS.Reported[0] != w.Ref(40) {
		t.Error("checksum wrong with small population")
	}
}
