package ppc750

import (
	"errors"
	"fmt"

	"repro/internal/osm"
	"repro/internal/snap"
)

// Full-simulator checkpointing. Unlike the in-order StrongARM model,
// the 750's dynamic state includes a pointer graph: machines and the
// renamer's newest-writer table reference per-operation op values,
// which reference their producers through deps. A snapshot linearizes
// the graph into an indexed op table — machines in registration
// order, then the newest-writer entries, then the deps closure — and
// encodes every reference as a table index. Decode-derived facts
// (instruction, class, operand lists) are re-derived from the
// restored RAM image; program text is immutable in this model.

const simSnapVersion = 1

const simSnapHeader = "p750"

// collectOps gathers every live op reachable from the model in a
// deterministic order and returns the table plus its index map.
func (s *Sim) collectOps() ([]*op, map[*op]int) {
	var ops []*op
	idx := make(map[*op]int)
	add := func(o *op) {
		if o == nil {
			return
		}
		if _, ok := idx[o]; !ok {
			idx[o] = len(ops)
			ops = append(ops, o)
		}
	}
	for _, m := range s.director.Machines() {
		if o, ok := m.Ctx.(*op); ok {
			add(o)
		}
	}
	for _, w := range s.ren.lastWriter {
		add(w)
	}
	for i := 0; i < len(ops); i++ { // ops grows while walking deps
		for _, d := range ops[i].deps {
			add(d)
		}
	}
	return ops, idx
}

func opIndex(idx map[*op]int, o *op) int {
	if o == nil {
		return -1
	}
	return idx[o]
}

// Snapshot encodes the complete simulator state.
func (s *Sim) Snapshot() ([]byte, error) {
	if n := len(s.ren.undo); n > 0 {
		return nil, fmt.Errorf("ppc750: snapshot with %d uncommitted rename transactions (snapshot only between cycles)", n)
	}
	ops, idx := s.collectOps()

	w := snap.NewWriter()
	w.U32(snap.Magic)
	w.String(simSnapHeader)
	w.Version(simSnapVersion)
	w.Blob(s.ISS.Snapshot)
	w.Blob(s.Hier.Snapshot)
	var kerr error
	w.Blob(func(w *snap.Writer) { kerr = s.Kernel.Snapshot(w) })
	if kerr != nil {
		return nil, kerr
	}
	w.Blob(s.BHT.Snapshot)
	w.Blob(s.BTIC.Snapshot)

	w.U32(s.fetchPC)
	w.Bool(s.fetchStop)
	w.Bool(s.fetchHeld)
	w.U64(s.fetchResumeAt)
	w.U64(s.retired)
	w.U64(s.dispatched)
	w.U64(s.mispredicts)
	if s.execErr != nil {
		w.String(s.execErr.Error())
	} else {
		w.String("")
	}

	w.Blob(func(w *snap.Writer) {
		w.Int(len(ops))
		for _, o := range ops {
			o := o
			w.Blob(func(w *snap.Writer) {
				w.U32(o.pc)
				w.U32(o.predictedNext)
				w.U32(o.actualNext)
				w.Bool(o.indirect)
				w.Bool(o.redirect)
				w.U64(o.resultAt)
				w.Int(o.renameBufs)
				w.U64(o.execLat)
				w.U32(o.memAddr)
				w.Bool(o.isMem)
				w.Bool(o.isStore)
				w.Int(len(o.deps))
				for _, d := range o.deps {
					w.Int(opIndex(idx, d))
				}
			})
		}
	})
	for _, m := range s.director.Machines() {
		if o, ok := m.Ctx.(*op); ok {
			w.Int(opIndex(idx, o))
		} else {
			w.Int(-1)
		}
	}

	s.ren.snapIdx = idx
	var derr error
	w.Blob(func(w *snap.Writer) { derr = s.director.Snapshot(w) })
	s.ren.snapIdx = nil
	if derr != nil {
		return nil, derr
	}
	return w.Bytes(), nil
}

// Restore decodes a snapshot into this simulator, which must have
// been built with New from the same program and configuration and not
// yet stepped.
func (s *Sim) Restore(data []byte) error {
	r := snap.NewReader(data)
	if m := r.U32(); r.Err() == nil && m != snap.Magic {
		return fmt.Errorf("ppc750: not a snapshot (magic %#x)", m)
	}
	if h := r.String(); r.Err() == nil && h != simSnapHeader {
		return fmt.Errorf("ppc750: snapshot is for model %q, want %q", h, simSnapHeader)
	}
	r.Version("ppc750 sim", simSnapVersion)
	if err := s.ISS.Restore(r.Blob()); err != nil {
		return err
	}
	if err := s.Hier.Restore(r.Blob()); err != nil {
		return err
	}
	if err := s.Kernel.Restore(r.Blob()); err != nil {
		return err
	}
	if err := s.BHT.Restore(r.Blob()); err != nil {
		return err
	}
	if err := s.BTIC.Restore(r.Blob()); err != nil {
		return err
	}

	s.fetchPC = r.U32()
	s.fetchStop = r.Bool()
	s.fetchHeld = r.Bool()
	s.fetchResumeAt = r.U64()
	s.retired = r.U64()
	s.dispatched = r.U64()
	s.mispredicts = r.U64()
	if msg := r.String(); msg != "" {
		s.execErr = errors.New(msg)
	} else {
		s.execErr = nil
	}
	s.fetchCount = 0 // reset at the start of every cycle

	// Op table: create every op first, then wire deps and re-derive
	// the decode facts (deps may point forward in the table).
	tb := r.Blob()
	nOps := tb.Int()
	if err := tb.Err(); err != nil {
		return err
	}
	if nOps < 0 || nOps > tb.Remaining() {
		return fmt.Errorf("ppc750: implausible op count %d", nOps)
	}
	ops := make([]*op, nOps)
	for i := range ops {
		ops[i] = &op{}
	}
	for i := range ops {
		b := tb.Blob()
		o := ops[i]
		o.pc = b.U32()
		o.predictedNext = b.U32()
		o.actualNext = b.U32()
		o.indirect = b.Bool()
		o.redirect = b.Bool()
		o.resultAt = b.U64()
		o.renameBufs = b.Int()
		o.execLat = b.U64()
		o.memAddr = b.U32()
		o.isMem = b.Bool()
		o.isStore = b.Bool()
		nd := b.Int()
		if err := b.Err(); err != nil {
			return fmt.Errorf("ppc750: op %d: %w", i, err)
		}
		if nd < 0 || nd > nOps {
			return fmt.Errorf("ppc750: op %d: dep count %d out of range", i, nd)
		}
		for j := 0; j < nd; j++ {
			di := b.Int()
			if b.Err() == nil && (di < 0 || di >= nOps) {
				return fmt.Errorf("ppc750: op %d: dep index %d out of range", i, di)
			}
			if b.Err() == nil {
				o.deps = append(o.deps, ops[di])
			}
		}
		if err := b.Close(fmt.Sprintf("ppc750 op %d", i)); err != nil {
			return err
		}
		if d := s.decode(o.pc); d.ok {
			o.ins, o.decodeOK = d.ins, true
			o.class = d.class
			o.srcs, o.dsts, o.gprDsts = d.srcs, d.dsts, d.gprs
		}
	}
	if err := tb.Close("ppc750 op table"); err != nil {
		return err
	}

	for _, m := range s.director.Machines() {
		oi := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		switch {
		case oi == -1:
			m.Ctx = nil
		case oi >= 0 && oi < nOps:
			m.Ctx = ops[oi]
		default:
			return fmt.Errorf("ppc750: machine op index %d out of range", oi)
		}
	}

	s.ren.snapOps = ops
	err := s.director.Restore(r.Blob())
	s.ren.snapOps = nil
	if err != nil {
		return err
	}
	return r.Close("ppc750 sim")
}

const bpredSnapVersion = 1

// Snapshot encodes the predictor's counters and statistics.
func (b *BHT) Snapshot(w *snap.Writer) {
	w.Version(bpredSnapVersion)
	w.Int(len(b.counters))
	for _, c := range b.counters {
		w.U8(c)
	}
	w.U64(b.Lookups)
	w.U64(b.Hits)
}

// Restore decodes a BHT snapshot into a table of identical size.
func (b *BHT) Restore(r *snap.Reader) error {
	r.Version("bht", bpredSnapVersion)
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(b.counters) {
		return fmt.Errorf("ppc750: bht snapshot has %d entries, table has %d", n, len(b.counters))
	}
	for i := range b.counters {
		b.counters[i] = r.U8()
	}
	b.Lookups = r.U64()
	b.Hits = r.U64()
	return r.Close("bht")
}

// Snapshot encodes the target cache's entries and statistics.
func (b *BTIC) Snapshot(w *snap.Writer) {
	w.Version(bpredSnapVersion)
	w.Int(len(b.tags))
	for i := range b.tags {
		w.U32(b.tags[i])
		w.U32(b.targets[i])
		w.Bool(b.valid[i])
	}
	w.U64(b.Lookups)
	w.U64(b.Hits)
}

// Restore decodes a BTIC snapshot into a cache of identical size.
func (b *BTIC) Restore(r *snap.Reader) error {
	r.Version("btic", bpredSnapVersion)
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(b.tags) {
		return fmt.Errorf("ppc750: btic snapshot has %d entries, cache has %d", n, len(b.tags))
	}
	for i := range b.tags {
		b.tags[i] = r.U32()
		b.targets[i] = r.U32()
		b.valid[i] = r.Bool()
	}
	b.Lookups = r.U64()
	b.Hits = r.U64()
	return r.Close("btic")
}

const renamerSnapVersion = 1

// SnapshotState encodes the rename state (osm.Snapshotter). Op
// references go through the op-table index installed by Sim.Snapshot;
// uncommitted transactions were rejected there.
func (r *renamer) SnapshotState(c *osm.SnapCtx, w *snap.Writer) {
	w.Version(renamerSnapVersion)
	w.U64(r.cycle)
	w.Int(len(r.resultTimes))
	for _, at := range r.resultTimes {
		w.U64(at)
	}
	for _, o := range r.lastWriter {
		w.Int(opIndex(r.snapIdx, o))
	}
	w.Int(r.bufCap)
	w.Int(r.bufUsed)
}

// RestoreState decodes a rename snapshot (osm.Snapshotter), resolving
// op references against the table installed by Sim.Restore.
func (r *renamer) RestoreState(c *osm.SnapCtx, rd *snap.Reader) error {
	rd.Version("regfiles+rename", renamerSnapVersion)
	r.cycle = rd.U64()
	n := rd.Int()
	if err := rd.Err(); err != nil {
		return err
	}
	if n < 0 || n > rd.Remaining() {
		return fmt.Errorf("regfiles+rename: implausible result count %d", n)
	}
	r.resultTimes = r.resultTimes[:0]
	for i := 0; i < n; i++ {
		r.resultTimes = append(r.resultTimes, rd.U64())
	}
	for i := range r.lastWriter {
		oi := rd.Int()
		switch {
		case oi == -1:
			r.lastWriter[i] = nil
		case oi >= 0 && oi < len(r.snapOps):
			r.lastWriter[i] = r.snapOps[oi]
		default:
			if rd.Err() == nil {
				return fmt.Errorf("regfiles+rename: writer op index %d out of range", oi)
			}
		}
	}
	bufCap := rd.Int()
	bufUsed := rd.Int()
	if err := rd.Close("regfiles+rename"); err != nil {
		return err
	}
	if bufCap != r.bufCap {
		return fmt.Errorf("regfiles+rename: snapshot has %d rename buffers, model has %d", bufCap, r.bufCap)
	}
	r.bufUsed = bufUsed
	r.undo = make(map[*osm.Machine][]undoEntry)
	return nil
}
