package ppc750

import (
	"fmt"

	"repro/internal/osm"
	"repro/internal/osm/gen"
)

//go:generate go run repro/cmd/osmgen -target ppc750 -out edges_gen.go

// GenModel exposes the elaborated model to the Go code generator
// (cmd/osmgen): the lowered guard program the compiled engine would
// execute, plus the spec mapping its managers, When predicates and
// identifier functions back to source expressions in this package.
// The generator runs against the default configuration, which
// includes the reservation-station edges; the NoReservationStations
// variant attaches the same function map and simply leaves the rs-*
// entries unused.
func (s *Sim) GenModel() (*osm.GuardProgram, gen.Spec, error) {
	prog, err := s.director.Compile()
	if err != nil {
		return nil, gen.Spec{}, err
	}
	spec := gen.Spec{
		Package: "ppc750",
		Managers: map[string]string{
			"fetch-queue":      "s.fq",
			"completion-queue": "s.cq",
			"regfiles+rename":  "s.ren",
			"reset":            "s.reset",
		},
		When: map[string]string{
			osm.GenKey("I", "fetch"): "s.whenFetch(m)",
		},
		DynID: map[string]string{
			// ReleaseF(s.fq, anyHeld) / ReleaseF(s.cq, anyHeld): the
			// identifier function is stable, so calling it directly is
			// equivalent to the interpreter's per-epoch memo.
			osm.GenKey("C", "complete") + "/0": "anyHeld(m)",
		},
	}
	for i, u := range s.units {
		spec.Managers[u.fu.Name()] = fmt.Sprintf("s.units[%d].fu", i)
		spec.Managers[u.rs.Name()] = fmt.Sprintf("s.units[%d].rs", i)
		disp := osm.GenKey("Q", "disp-"+u.name)
		rs := osm.GenKey("Q", "rs-"+u.name)
		spec.When[disp] = fmt.Sprintf("s.whenDisp(s.units[%d], m)", i)
		spec.When[rs] = fmt.Sprintf("s.whenDispRS(s.units[%d], m)", i)
		spec.DynID[disp+"/0"] = "anyHeld(m)"
		spec.DynID[rs+"/0"] = "anyHeld(m)"
	}
	return prog, spec, nil
}
