package ppc750

import (
	"testing"

	"repro/internal/osm"
	"repro/internal/osm/invariant"
	"repro/internal/workload"
)

// TestKernelsCorrectUnderCompiledEngine runs every kernel under the
// compiled guard-program engine with the invariant checker attached.
// The checker's scheduler-equivalence probe replays each control step
// against the interpreted Figure 3 semantics, so this is a per-step
// differential test of the compiled engine on the superscalar model —
// rename buffers, rated queues and completion logic included.
func TestKernelsCorrectUnderCompiledEngine(t *testing.T) {
	for _, w := range workload.All() {
		n := w.DefaultN / 10
		p, err := w.PPCProgram(n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(p, Config{Engine: osm.EngineCompiled})
		if err != nil {
			t.Fatal(err)
		}
		invariant.Attach(s.Director())
		if _, err := s.Run(1_000_000_000); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(s.ISS.Reported) != 1 || s.ISS.Reported[0] != w.Ref(n) {
			t.Errorf("%s: checksum %v, want %#x", w.Name, s.ISS.Reported, w.Ref(n))
		}
	}
}

// TestEngineCycleAgreement pins the engines' timing equivalence at the
// simulator level: the same kernel takes exactly the same number of
// cycles under the scan, event and compiled engines.
func TestEngineCycleAgreement(t *testing.T) {
	w := workload.ByName("g721/dec")
	n := w.DefaultN / 5
	cycles := map[osm.Engine]uint64{}
	for _, eng := range []osm.Engine{osm.EngineScan, osm.EngineEvent, osm.EngineCompiled} {
		p, err := w.PPCProgram(n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(p, Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(1_000_000_000)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		cycles[eng] = st.Cycles
	}
	if cycles[osm.EngineCompiled] != cycles[osm.EngineScan] || cycles[osm.EngineEvent] != cycles[osm.EngineScan] {
		t.Fatalf("engines disagree on cycle count: %v", cycles)
	}
}
