package ppc750

import (
	"testing"

	"repro/internal/osm"
	"repro/internal/osm/invariant"
	"repro/internal/workload"
)

// TestKernelsCorrectUnderCompiledEngine runs every kernel under the
// compiled guard-program engine with the invariant checker attached.
// The checker's scheduler-equivalence probe replays each control step
// against the interpreted Figure 3 semantics, so this is a per-step
// differential test of the compiled engine on the superscalar model —
// rename buffers, rated queues and completion logic included.
func TestKernelsCorrectUnderCompiledEngine(t *testing.T) {
	for _, w := range workload.All() {
		n := w.DefaultN / 10
		p, err := w.PPCProgram(n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(p, Config{Engine: osm.EngineCompiled})
		if err != nil {
			t.Fatal(err)
		}
		invariant.Attach(s.Director())
		if _, err := s.Run(1_000_000_000); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(s.ISS.Reported) != 1 || s.ISS.Reported[0] != w.Ref(n) {
			t.Errorf("%s: checksum %v, want %#x", w.Name, s.ISS.Reported, w.Ref(n))
		}
	}
}

// TestKernelsCorrectUnderGeneratedEngine runs every kernel under the
// generated-code engine (edges_gen.go) with the invariant checker
// attached: the checker's scheduler-equivalence probe replays each
// control step against the interpreted Figure 3 semantics, so every
// generated edge function is differentially tested per step on the
// superscalar model — rename buffers, rated queues and completion
// logic included.
func TestKernelsCorrectUnderGeneratedEngine(t *testing.T) {
	for _, w := range workload.All() {
		n := w.DefaultN / 10
		p, err := w.PPCProgram(n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(p, Config{Engine: osm.EngineGenerated})
		if err != nil {
			t.Fatal(err)
		}
		invariant.Attach(s.Director())
		if _, err := s.Run(1_000_000_000); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(s.ISS.Reported) != 1 || s.ISS.Reported[0] != w.Ref(n) {
			t.Errorf("%s: checksum %v, want %#x", w.Name, s.ISS.Reported, w.Ref(n))
		}
	}
}

// TestGeneratedEngineNoReservationStations exercises the generated
// engine on the model variant whose graph omits the rs-* edges: the
// attached function map's extra entries must resolve cleanly and the
// run must stay correct.
func TestGeneratedEngineNoReservationStations(t *testing.T) {
	w := workload.ByName("gsm/dec")
	n := w.DefaultN / 10
	p, err := w.PPCProgram(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, Config{Engine: osm.EngineGenerated, NoReservationStations: true})
	if err != nil {
		t.Fatal(err)
	}
	invariant.Attach(s.Director())
	if _, err := s.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	if len(s.ISS.Reported) != 1 || s.ISS.Reported[0] != w.Ref(n) {
		t.Errorf("checksum %v, want %#x", s.ISS.Reported, w.Ref(n))
	}
}

// TestGeneratedProbeMatchesInterpreted drives a kernel under the
// generated engine and, every cycle, cross-checks GenProgram.Probe
// against the interpreted Machine.ProbeEdge for every machine and
// outgoing edge — the probe agreement the invariant checker's
// scheduler-equivalence pass relies on.
func TestGeneratedProbeMatchesInterpreted(t *testing.T) {
	w := workload.ByName("gsm/dec")
	p, err := w.PPCProgram(w.DefaultN / 10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, Config{Engine: osm.EngineGenerated})
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Director().Generated()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500 && !s.Done(); i++ {
		if err := s.StepCycle(); err != nil {
			t.Fatal(err)
		}
		for _, m := range s.Director().Machines() {
			for _, e := range m.State().Out {
				want := m.ProbeEdge(e)
				got, err := g.Probe(m, e)
				if err != nil {
					t.Fatalf("cycle %d: Probe(%s, %s): %v", i, m.Name, e.Name, err)
				}
				if got != want {
					t.Fatalf("cycle %d: machine %s edge %s: generated probe %v, interpreted %v",
						i, m.Name, e.Name, got, want)
				}
			}
		}
	}
}

// TestEngineCycleAgreement pins the engines' timing equivalence at the
// simulator level: the same kernel takes exactly the same number of
// cycles under the scan, event, compiled and generated engines.
func TestEngineCycleAgreement(t *testing.T) {
	w := workload.ByName("g721/dec")
	n := w.DefaultN / 5
	cycles := map[osm.Engine]uint64{}
	engines := []osm.Engine{osm.EngineScan, osm.EngineEvent, osm.EngineCompiled, osm.EngineGenerated}
	for _, eng := range engines {
		p, err := w.PPCProgram(n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(p, Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(1_000_000_000)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		cycles[eng] = st.Cycles
	}
	for _, eng := range engines[1:] {
		if cycles[eng] != cycles[osm.EngineScan] {
			t.Fatalf("engines disagree on cycle count: %v", cycles)
		}
	}
}
