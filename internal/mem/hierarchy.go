package mem

// Hierarchy bundles the split first-level caches, TLBs and the
// backing store of a processor model: the memory subsystem boxes of
// the paper's Figure 5 (I-cache, ITLB, D-cache, DTLB, memory bus,
// memory). It prices instruction fetches and data accesses; the
// pipeline models convert nonzero stall components into stage busy
// time via their token manager interfaces.
type Hierarchy struct {
	// ICache and DCache may be nil (perfect caches).
	ICache, DCache *Cache
	// L2 is the optional unified second-level cache.
	L2 *Cache
	// ITLB and DTLB may be nil (perfect translation).
	ITLB, DTLB *TLB
}

// HierarchyConfig sizes a default StrongARM-like hierarchy: 16 KiB
// 32-way I-cache, 8 KiB 32-way D-cache (the SA-1100's organization),
// 32-entry TLBs and a fixed-latency memory.
type HierarchyConfig struct {
	ICacheKB, DCacheKB int
	Ways, LineBytes    int
	HitLatency         uint64
	MemLatency         uint64
	TLBEntries         int
	TLBMissPenalty     uint64
	WriteBack          bool
	DisableCaches      bool
	DisableTLBs        bool
	// L2KB, when positive, inserts a unified second-level cache
	// (8-way, same line size, L2Latency per hit) between the split
	// first-level caches and memory — the 750's back-side L2.
	L2KB      int
	L2Latency uint64
}

// DefaultHierarchyConfig returns the SA-1100-like organization used
// by the StrongARM case study.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		ICacheKB: 16, DCacheKB: 8, Ways: 32, LineBytes: 32,
		HitLatency: 0, MemLatency: 20,
		TLBEntries: 32, TLBMissPenalty: 20,
		WriteBack: true,
	}
}

// Sets returns the per-L1-cache set count implied by the D-cache
// sizing (useful for constructing conflict patterns in tests).
func (c HierarchyConfig) Sets() int {
	lines := c.DCacheKB * 1024 / c.LineBytes
	sets := lines / c.Ways
	if sets == 0 {
		sets = 1
	}
	return sets
}

// NewHierarchy builds the hierarchy; both caches share one backing
// store model.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{}
	if !cfg.DisableCaches {
		var backing Level = &FixedLatency{Lat: cfg.MemLatency}
		if cfg.L2KB > 0 {
			const l2Ways = 8
			lines := cfg.L2KB * 1024 / cfg.LineBytes
			sets := lines / l2Ways
			if sets == 0 {
				sets = 1
			}
			lat := cfg.L2Latency
			if lat == 0 {
				lat = 6
			}
			h.L2 = NewCache(CacheConfig{
				Name: "l2", Sets: sets, Ways: l2Ways, LineBytes: cfg.LineBytes,
				HitLatency: lat, WriteBack: true,
			}, backing)
			backing = h.L2
		}
		mkCache := func(name string, kb int) *Cache {
			lines := kb * 1024 / cfg.LineBytes
			sets := lines / cfg.Ways
			if sets == 0 {
				sets = 1
			}
			return NewCache(CacheConfig{
				Name: name, Sets: sets, Ways: cfg.Ways, LineBytes: cfg.LineBytes,
				HitLatency: cfg.HitLatency, WriteBack: cfg.WriteBack,
			}, backing)
		}
		h.ICache = mkCache("icache", cfg.ICacheKB)
		h.DCache = mkCache("dcache", cfg.DCacheKB)
	}
	if !cfg.DisableTLBs {
		h.ITLB = NewTLB(cfg.TLBEntries, 4096, cfg.TLBMissPenalty)
		h.DTLB = NewTLB(cfg.TLBEntries, 4096, cfg.TLBMissPenalty)
	}
	return h
}

// FetchLatency prices an instruction fetch: extra stall cycles beyond
// the pipelined single-cycle fetch (0 = no stall).
func (h *Hierarchy) FetchLatency(addr uint32) uint64 {
	var lat uint64
	if h.ITLB != nil {
		lat += h.ITLB.Access(addr)
	}
	if h.ICache != nil {
		lat += h.ICache.Access(addr, false)
	}
	return lat
}

// DataLatency prices a data access.
func (h *Hierarchy) DataLatency(addr uint32, write bool) uint64 {
	var lat uint64
	if h.DTLB != nil {
		lat += h.DTLB.Access(addr)
	}
	if h.DCache != nil {
		lat += h.DCache.Access(addr, write)
	}
	return lat
}
