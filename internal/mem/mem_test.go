package mem

import (
	"testing"
	"testing/quick"
)

func TestRAMEndianness(t *testing.T) {
	le := NewRAM(16, LittleEndian)
	be := NewRAM(16, BigEndian)
	le.Write32(0, 0x11223344)
	be.Write32(0, 0x11223344)
	if le.Read8(0) != 0x44 || be.Read8(0) != 0x11 {
		t.Fatalf("byte order wrong: le[0]=%#x be[0]=%#x", le.Read8(0), be.Read8(0))
	}
	if le.Read32(0) != 0x11223344 || be.Read32(0) != 0x11223344 {
		t.Fatal("word round trip wrong")
	}
}

func TestRAMLoadWordsAndBounds(t *testing.T) {
	r := NewRAM(64, LittleEndian)
	r.LoadWords(8, []uint32{1, 2, 3})
	if r.Read32(8) != 1 || r.Read32(16) != 3 {
		t.Fatal("LoadWords placed words wrongly")
	}
	if r.Size() != 64 {
		t.Fatalf("Size = %d", r.Size())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds access must panic")
		}
	}()
	r.Read32(62)
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", Sets: 4, Ways: 2, LineBytes: 16, HitLatency: 1},
		&FixedLatency{Lat: 10})
	if lat := c.Access(0x100, false); lat != 11 {
		t.Fatalf("cold miss latency = %d, want 11", lat)
	}
	if lat := c.Access(0x104, false); lat != 1 {
		t.Fatalf("same-line hit latency = %d, want 1", lat)
	}
	if c.Stats.Accesses != 2 || c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	if !c.Contains(0x100) || c.Contains(0x200) {
		t.Fatal("Contains wrong")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 set, 2 ways, 16-byte lines: three distinct lines evict the
	// least recently used.
	c := NewCache(CacheConfig{Name: "t", Sets: 1, Ways: 2, LineBytes: 16, HitLatency: 0},
		&FixedLatency{Lat: 10})
	c.Access(0x00, false) // A
	c.Access(0x10, false) // B
	c.Access(0x00, false) // touch A -> B is LRU
	c.Access(0x20, false) // C evicts B
	if !c.Contains(0x00) || c.Contains(0x10) || !c.Contains(0x20) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats.Evictions)
	}
}

func TestCacheWriteBackDirtyEviction(t *testing.T) {
	lower := &FixedLatency{Lat: 10}
	c := NewCache(CacheConfig{Name: "t", Sets: 1, Ways: 1, LineBytes: 16, HitLatency: 0,
		WriteBack: true}, lower)
	c.Access(0x00, true) // allocate dirty
	if c.Stats.Writebacks != 0 {
		t.Fatal("no writeback yet")
	}
	lat := c.Access(0x10, false) // evicts dirty line: refill + writeback
	if lat != 20 {
		t.Fatalf("dirty eviction latency = %d, want 20", lat)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestCacheWriteThrough(t *testing.T) {
	lower := &FixedLatency{Lat: 10}
	c := NewCache(CacheConfig{Name: "t", Sets: 1, Ways: 1, LineBytes: 16, HitLatency: 1},
		lower)
	// Write miss: no allocate, goes straight down.
	if lat := c.Access(0x00, true); lat != 11 {
		t.Fatalf("write-through miss = %d, want 11", lat)
	}
	if c.Contains(0x00) {
		t.Fatal("write-through must not allocate on write miss")
	}
	c.Access(0x00, false) // allocate via read
	// Write hit still pays the lower level.
	if lat := c.Access(0x00, true); lat != 11 {
		t.Fatalf("write-through hit = %d, want 11", lat)
	}
}

func TestCacheWriteBackWriteHitIsCheap(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", Sets: 1, Ways: 1, LineBytes: 16, HitLatency: 1,
		WriteBack: true}, &FixedLatency{Lat: 10})
	c.Access(0x00, false)
	if lat := c.Access(0x00, true); lat != 1 {
		t.Fatalf("write-back write hit = %d, want 1", lat)
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", Sets: 2, Ways: 1, LineBytes: 16, HitLatency: 0},
		&FixedLatency{Lat: 5})
	c.Access(0x00, false)
	c.Flush()
	if c.Contains(0x00) {
		t.Fatal("flush must invalidate")
	}
}

func TestCacheConfigValidation(t *testing.T) {
	lower := &FixedLatency{}
	bad := []CacheConfig{
		{Sets: 3, Ways: 1, LineBytes: 16},
		{Sets: 4, Ways: 0, LineBytes: 16},
		{Sets: 4, Ways: 1, LineBytes: 12},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v must panic", cfg)
				}
			}()
			NewCache(cfg, lower)
		}()
	}
}

func TestTLBHitMissAndLRU(t *testing.T) {
	tlb := NewTLB(2, 4096, 30)
	if lat := tlb.Access(0x0000); lat != 30 {
		t.Fatalf("cold miss = %d, want 30", lat)
	}
	if lat := tlb.Access(0x0ffc); lat != 0 {
		t.Fatalf("same-page hit = %d, want 0", lat)
	}
	tlb.Access(0x1000) // second page
	tlb.Access(0x0000) // touch first -> second is LRU
	tlb.Access(0x2000) // evicts page 1
	if lat := tlb.Access(0x1000); lat != 30 {
		t.Fatal("LRU victim selection wrong")
	}
	tlb.Flush()
	if lat := tlb.Access(0x0000); lat != 30 {
		t.Fatal("flush must invalidate")
	}
}

func TestTLBValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewTLB(0, 4096, 1) },
		func() { NewTLB(4, 1000, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHierarchyPricing(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	first := h.FetchLatency(0x1000)
	if first == 0 {
		t.Fatal("cold fetch must stall (TLB+cache miss)")
	}
	if lat := h.FetchLatency(0x1000); lat != 0 {
		t.Fatalf("warm fetch = %d, want 0", lat)
	}
	if lat := h.DataLatency(0x1000, false); lat == 0 {
		t.Fatal("cold data access must stall")
	}
	if lat := h.DataLatency(0x1004, true); lat != 0 {
		t.Fatalf("warm write-back store = %d, want 0", lat)
	}
}

func TestHierarchyDisabled(t *testing.T) {
	h := NewHierarchy(HierarchyConfig{DisableCaches: true, DisableTLBs: true})
	if h.FetchLatency(0x1234) != 0 || h.DataLatency(0x4242, true) != 0 {
		t.Fatal("perfect hierarchy must never stall")
	}
}

func TestHitRate(t *testing.T) {
	var s CacheStats
	if s.HitRate() != 1 {
		t.Fatal("idle hit rate must be 1")
	}
	s = CacheStats{Accesses: 4, Hits: 3}
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestQuickCacheStatsConsistent(t *testing.T) {
	// hits + misses == accesses under any access pattern, and a
	// repeated access is always a hit.
	f := func(addrs []uint16, writes []bool) bool {
		c := NewCache(CacheConfig{Name: "q", Sets: 8, Ways: 2, LineBytes: 16,
			HitLatency: 1, WriteBack: true}, &FixedLatency{Lat: 7})
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint32(a), w)
		}
		if c.Stats.Hits+c.Stats.Misses != c.Stats.Accesses {
			return false
		}
		if len(addrs) > 0 {
			c.Access(uint32(addrs[len(addrs)-1]), false)
			before := c.Stats.Hits
			c.Access(uint32(addrs[len(addrs)-1]), false)
			if c.Stats.Hits != before+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTLBWorkingSetFits(t *testing.T) {
	// A working set no larger than the TLB never misses after warm-up.
	f := func(pagesSeed uint8, rounds uint8) bool {
		n := int(pagesSeed%8) + 1
		tlb := NewTLB(8, 4096, 10)
		for p := 0; p < n; p++ {
			tlb.Access(uint32(p) * 4096)
		}
		missesAfterWarm := tlb.Stats.Misses
		for r := 0; r < int(rounds%16)+1; r++ {
			for p := 0; p < n; p++ {
				tlb.Access(uint32(p) * 4096)
			}
		}
		return tlb.Stats.Misses == missesAfterWarm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyL2(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.L2KB = 64
	cfg.L2Latency = 5
	h := NewHierarchy(cfg)
	if h.L2 == nil {
		t.Fatal("L2 must be constructed")
	}
	// Cold access misses L1 and L2: latency includes memory.
	cold := h.DataLatency(0x8000, false)
	if cold < cfg.MemLatency {
		t.Fatalf("cold access latency %d should include memory (%d)", cold, cfg.MemLatency)
	}
	// Evict the line from L1 by filling its set, then re-access: the
	// line should now hit in L2 at L2 latency (no memory access).
	memBefore := h.L2.Stats.Misses
	// Conflict-evict: the dcache is Ways-way; touch Ways distinct
	// lines mapping to the same set.
	setStride := uint32(cfg.Sets() * cfg.LineBytes)
	for k := 1; k <= cfg.Ways; k++ {
		h.DataLatency(0x8000+uint32(k)*setStride, false)
	}
	lat := h.DataLatency(0x8000, false)
	if lat != cfg.L2Latency {
		t.Fatalf("L1-evicted line should hit L2 at latency %d, got %d", cfg.L2Latency, lat)
	}
	if h.L2.Stats.Misses == memBefore && h.L2.Stats.Hits == 0 {
		t.Fatal("L2 saw no traffic")
	}
}
