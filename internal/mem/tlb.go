package mem

import "fmt"

// TLB is a fully associative translation look-aside buffer timing
// model with true-LRU replacement. Translation itself is identity —
// the simulated programs run on physical addresses — so the TLB only
// contributes hit/miss timing, like the ITLB/DTLB boxes of the
// paper's Figure 5.
type TLB struct {
	// MissPenalty is charged on a miss (table walk).
	MissPenalty uint64

	pageBits uint
	entries  []tlbEntry
	tick     uint64
	// Stats accumulates access counts.
	Stats CacheStats
}

type tlbEntry struct {
	vpn   uint32
	valid bool
	lru   uint64
}

// NewTLB builds a TLB with the given entry count and page size.
func NewTLB(entries int, pageBytes uint32, missPenalty uint64) *TLB {
	if entries <= 0 {
		panic("mem: TLB entries must be positive")
	}
	if pageBytes == 0 || pageBytes&(pageBytes-1) != 0 {
		panic(fmt.Sprintf("mem: page size %d not a power of two", pageBytes))
	}
	bits := uint(0)
	for p := pageBytes; p > 1; p >>= 1 {
		bits++
	}
	return &TLB{MissPenalty: missPenalty, pageBits: bits, entries: make([]tlbEntry, entries)}
}

// Access prices the translation of addr: zero on a hit, MissPenalty
// on a miss (the entry is then resident).
func (t *TLB) Access(addr uint32) uint64 {
	t.tick++
	t.Stats.Accesses++
	vpn := addr >> t.pageBits
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].vpn == vpn {
			t.Stats.Hits++
			t.entries[i].lru = t.tick
			return 0
		}
	}
	t.Stats.Misses++
	victim := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			break
		}
		if t.entries[i].lru < t.entries[victim].lru {
			victim = i
		}
	}
	if t.entries[victim].valid {
		t.Stats.Evictions++
	}
	t.entries[victim] = tlbEntry{vpn: vpn, valid: true, lru: t.tick}
	return t.MissPenalty
}

// Flush invalidates every entry.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
}
