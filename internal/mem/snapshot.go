package mem

import (
	"fmt"

	"repro/internal/snap"
)

// Checkpoint encoding for the memory subsystem. Each component writes
// its version and dynamic state directly; callers delimit components
// with snap blobs and pass the bounded sub-reader to Restore, which
// consumes it fully. Configuration (sizes, associativity, latencies)
// is not serialized — a restore target is constructed from the same
// config, and the organization is cross-checked so a snapshot cannot
// silently land in a differently-shaped model.

const memSnapVersion = 1

// Snapshot encodes the RAM image, with zero runs compressed (images
// are mostly zero).
func (r *RAM) Snapshot(w *snap.Writer) {
	w.Version(memSnapVersion)
	w.U32(uint32(len(r.data)))
	w.ZBytes(r.data)
}

// Restore decodes a RAM snapshot into an image of identical size.
func (r *RAM) Restore(rd *snap.Reader) error {
	rd.Version("ram", memSnapVersion)
	size := rd.U32()
	data := rd.ZBytes()
	if err := rd.Close("ram"); err != nil {
		return err
	}
	if int(size) != len(r.data) || len(data) != len(r.data) {
		return fmt.Errorf("mem: ram snapshot is %d bytes, image is %d", size, len(r.data))
	}
	copy(r.data, data)
	return nil
}

func (s *CacheStats) snapshot(w *snap.Writer) {
	w.U64(s.Accesses)
	w.U64(s.Hits)
	w.U64(s.Misses)
	w.U64(s.Evictions)
	w.U64(s.Writebacks)
}

func (s *CacheStats) restore(r *snap.Reader) {
	s.Accesses = r.U64()
	s.Hits = r.U64()
	s.Misses = r.U64()
	s.Evictions = r.U64()
	s.Writebacks = r.U64()
}

// Snapshot encodes the cache's line state and statistics.
func (c *Cache) Snapshot(w *snap.Writer) {
	w.Version(memSnapVersion)
	w.Int(c.cfg.Sets)
	w.Int(c.cfg.Ways)
	w.U64(c.tick)
	c.Stats.snapshot(w)
	for _, set := range c.sets {
		for _, ln := range set {
			w.U32(ln.tag)
			w.Bool(ln.valid)
			w.Bool(ln.dirty)
			w.U64(ln.lru)
		}
	}
}

// Restore decodes a cache snapshot into an identically-organized
// cache.
func (c *Cache) Restore(r *snap.Reader) error {
	r.Version("cache "+c.cfg.Name, memSnapVersion)
	sets, ways := r.Int(), r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if sets != c.cfg.Sets || ways != c.cfg.Ways {
		return fmt.Errorf("mem: cache %s snapshot is %dx%d, cache is %dx%d",
			c.cfg.Name, sets, ways, c.cfg.Sets, c.cfg.Ways)
	}
	c.tick = r.U64()
	c.Stats.restore(r)
	for _, set := range c.sets {
		for i := range set {
			set[i] = cacheLine{tag: r.U32(), valid: r.Bool(), dirty: r.Bool(), lru: r.U64()}
		}
	}
	return r.Close("cache " + c.cfg.Name)
}

// Snapshot encodes the TLB's resident translations and statistics.
func (t *TLB) Snapshot(w *snap.Writer) {
	w.Version(memSnapVersion)
	w.Int(len(t.entries))
	w.U64(t.tick)
	t.Stats.snapshot(w)
	for _, e := range t.entries {
		w.U32(e.vpn)
		w.Bool(e.valid)
		w.U64(e.lru)
	}
}

// Restore decodes a TLB snapshot into a TLB of identical entry count.
func (t *TLB) Restore(r *snap.Reader) error {
	r.Version("tlb", memSnapVersion)
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(t.entries) {
		return fmt.Errorf("mem: tlb snapshot has %d entries, tlb has %d", n, len(t.entries))
	}
	t.tick = r.U64()
	t.Stats.restore(r)
	for i := range t.entries {
		t.entries[i] = tlbEntry{vpn: r.U32(), valid: r.Bool(), lru: r.U64()}
	}
	return r.Close("tlb")
}

// backing returns the hierarchy's FixedLatency backing store by
// walking the lower-level chain, or nil when caches are disabled.
func (h *Hierarchy) backing() *FixedLatency {
	var lv Level
	if h.DCache != nil {
		lv = h.DCache.lower
	} else if h.ICache != nil {
		lv = h.ICache.lower
	}
	for lv != nil {
		switch b := lv.(type) {
		case *FixedLatency:
			return b
		case *Cache:
			lv = b.lower
		default:
			return nil
		}
	}
	return nil
}

// Snapshot encodes every level of the hierarchy, including the shared
// backing store's access count.
func (h *Hierarchy) Snapshot(w *snap.Writer) {
	w.Version(memSnapVersion)
	comps := []struct {
		c *Cache
		t *TLB
	}{{c: h.ICache}, {c: h.DCache}, {c: h.L2}, {t: h.ITLB}, {t: h.DTLB}}
	for _, comp := range comps {
		switch {
		case comp.c != nil:
			w.Bool(true)
			w.Blob(func(w *snap.Writer) { comp.c.Snapshot(w) })
		case comp.t != nil:
			w.Bool(true)
			w.Blob(func(w *snap.Writer) { comp.t.Snapshot(w) })
		default:
			w.Bool(false)
		}
	}
	if b := h.backing(); b != nil {
		w.Bool(true)
		w.U64(b.Accesses)
	} else {
		w.Bool(false)
	}
}

// Restore decodes a hierarchy snapshot into an identically-configured
// hierarchy.
func (h *Hierarchy) Restore(r *snap.Reader) error {
	r.Version("hierarchy", memSnapVersion)
	caches := []*Cache{h.ICache, h.DCache, h.L2}
	names := []string{"icache", "dcache", "l2", "itlb", "dtlb"}
	tlbs := []*TLB{h.ITLB, h.DTLB}
	for i := 0; i < 5; i++ {
		present := r.Bool()
		if err := r.Err(); err != nil {
			return err
		}
		var want bool
		if i < 3 {
			want = caches[i] != nil
		} else {
			want = tlbs[i-3] != nil
		}
		if present != want {
			return fmt.Errorf("mem: hierarchy snapshot %s presence %v, hierarchy has %v", names[i], present, want)
		}
		if !present {
			continue
		}
		var err error
		if i < 3 {
			err = caches[i].Restore(r.Blob())
		} else {
			err = tlbs[i-3].Restore(r.Blob())
		}
		if err != nil {
			return err
		}
	}
	hasBacking := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	b := h.backing()
	if hasBacking != (b != nil) {
		return fmt.Errorf("mem: hierarchy snapshot backing presence %v, hierarchy has %v", hasBacking, b != nil)
	}
	if hasBacking {
		b.Accesses = r.U64()
	}
	return r.Close("hierarchy")
}
