package mem

import "fmt"

// Level is a stage of the memory hierarchy that can price an access.
// The returned latency is in cycles and includes everything below the
// level.
type Level interface {
	// Access prices one access. Write selects the store path.
	Access(addr uint32, write bool) (latency uint64)
}

// FixedLatency is a constant-latency backing store: a DRAM plus bus
// model with no contention.
type FixedLatency struct {
	// Lat is charged on every access.
	Lat uint64
	// Accesses counts how many accesses reached this level.
	Accesses uint64
}

// Access charges the fixed latency.
func (f *FixedLatency) Access(addr uint32, write bool) uint64 {
	f.Accesses++
	return f.Lat
}

// CacheConfig parameterizes a set-associative cache timing model.
type CacheConfig struct {
	// Name labels the cache in statistics output.
	Name string
	// Sets and Ways define the organization; both must be positive
	// and Sets a power of two.
	Sets, Ways int
	// LineBytes is the line size in bytes (power of two).
	LineBytes int
	// HitLatency is charged on every hit (and added to the refill
	// cost on a miss).
	HitLatency uint64
	// WriteBack selects write-back with write-allocate; otherwise the
	// cache is write-through no-allocate (stores always go to the
	// next level, loads allocate).
	WriteBack bool
}

// CacheStats accumulates access counts.
type CacheStats struct {
	Accesses, Hits, Misses, Evictions, Writebacks uint64
}

// HitRate returns hits per access, or 1 when idle.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type cacheLine struct {
	tag   uint32
	valid bool
	dirty bool
	lru   uint64
}

// Cache is a set-associative cache timing model with true-LRU
// replacement.
type Cache struct {
	cfg   CacheConfig
	lower Level
	sets  [][]cacheLine
	tick  uint64
	// Stats accumulates hit/miss counts.
	Stats CacheStats
}

// NewCache builds a cache backed by lower.
func NewCache(cfg CacheConfig, lower Level) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache %q: sets %d not a positive power of two", cfg.Name, cfg.Sets))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("mem: cache %q: ways %d not positive", cfg.Name, cfg.Ways))
	}
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("mem: cache %q: line size %d not a positive power of two", cfg.Name, cfg.LineBytes))
	}
	sets := make([][]cacheLine, cfg.Sets)
	for i := range sets {
		sets[i] = make([]cacheLine, cfg.Ways)
	}
	return &Cache{cfg: cfg, lower: lower, sets: sets}
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) index(addr uint32) (set int, tag uint32) {
	line := addr / uint32(c.cfg.LineBytes)
	return int(line) & (c.cfg.Sets - 1), line / uint32(c.cfg.Sets)
}

// Access prices one access and updates the model state.
func (c *Cache) Access(addr uint32, write bool) uint64 {
	c.tick++
	c.Stats.Accesses++
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			c.Stats.Hits++
			lines[i].lru = c.tick
			if write {
				if c.cfg.WriteBack {
					lines[i].dirty = true
					return c.cfg.HitLatency
				}
				// Write-through: the store also pays the lower level.
				return c.cfg.HitLatency + c.lower.Access(addr, true)
			}
			return c.cfg.HitLatency
		}
	}
	c.Stats.Misses++
	if write && !c.cfg.WriteBack {
		// Write-through no-allocate: miss goes straight down.
		return c.cfg.HitLatency + c.lower.Access(addr, true)
	}
	// Refill: evict LRU, fetch the line.
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	lat := c.cfg.HitLatency + c.lower.Access(addr, false)
	if lines[victim].valid {
		c.Stats.Evictions++
		if lines[victim].dirty {
			c.Stats.Writebacks++
			lat += c.lower.Access(addr, true) // write the victim back
		}
	}
	lines[victim] = cacheLine{tag: tag, valid: true, dirty: write && c.cfg.WriteBack, lru: c.tick}
	return lat
}

// Contains reports whether the address's line is resident (no state
// change) — useful in tests and for warm-up checks.
func (c *Cache) Contains(addr uint32) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates every line, pricing nothing.
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = cacheLine{}
		}
	}
}
