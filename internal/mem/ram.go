// Package mem provides the memory subsystem of the simulation
// framework: flat RAM images with configurable byte order, set-
// associative cache timing models, TLBs and a bus latency model.
//
// In the OSM modeling scheme the memory subsystem does not
// communicate with the operation state machines directly — it is
// modeled purely in the hardware layer (paper Section 4). The cache
// and TLB types here are therefore timing models: data always lives
// in the RAM image; caches answer "how many cycles does this access
// cost?" and keep hit/miss statistics, which the pipeline models turn
// into stage busy time through their token manager interfaces.
package mem

import (
	"encoding/binary"
	"fmt"
)

// ByteOrder selects the endianness of a RAM image.
type ByteOrder int

// Byte orders. The ARM substrate runs little-endian, the PowerPC
// substrate big-endian.
const (
	LittleEndian ByteOrder = iota
	BigEndian
)

// RAM is a flat byte-addressed memory image. It satisfies the Memory
// interfaces of both ISA substrates.
type RAM struct {
	data  []byte
	order binary.ByteOrder
}

// NewRAM returns a zeroed image of the given size.
func NewRAM(size uint32, order ByteOrder) *RAM {
	r := &RAM{data: make([]byte, size)}
	if order == BigEndian {
		r.order = binary.BigEndian
	} else {
		r.order = binary.LittleEndian
	}
	return r
}

// Size returns the image size in bytes.
func (r *RAM) Size() uint32 { return uint32(len(r.data)) }

func (r *RAM) check(addr uint32, n uint32) {
	if uint64(addr)+uint64(n) > uint64(len(r.data)) {
		panic(fmt.Sprintf("mem: access at %#x+%d beyond %#x", addr, n, len(r.data)))
	}
}

// Read32 reads an aligned 32-bit word.
func (r *RAM) Read32(addr uint32) uint32 {
	r.check(addr, 4)
	return r.order.Uint32(r.data[addr:])
}

// Write32 writes an aligned 32-bit word.
func (r *RAM) Write32(addr uint32, v uint32) {
	r.check(addr, 4)
	r.order.PutUint32(r.data[addr:], v)
}

// Read16 reads an aligned 16-bit halfword.
func (r *RAM) Read16(addr uint32) uint16 {
	r.check(addr, 2)
	return r.order.Uint16(r.data[addr:])
}

// Write16 writes an aligned 16-bit halfword.
func (r *RAM) Write16(addr uint32, v uint16) {
	r.check(addr, 2)
	r.order.PutUint16(r.data[addr:], v)
}

// Read8 reads a byte.
func (r *RAM) Read8(addr uint32) byte {
	r.check(addr, 1)
	return r.data[addr]
}

// Write8 writes a byte.
func (r *RAM) Write8(addr uint32, v byte) {
	r.check(addr, 1)
	r.data[addr] = v
}

// LoadWords stores a word image starting at org.
func (r *RAM) LoadWords(org uint32, words []uint32) {
	for i, w := range words {
		r.Write32(org+uint32(4*i), w)
	}
}
