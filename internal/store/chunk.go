package store

import (
	"bytes"
	"compress/flate"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
)

// ChunkRef addresses one chunk by content: the FNV-1a 64-bit hash of
// its raw bytes plus the raw length. The pair is the chunk's identity
// everywhere — file name on disk, index record, dedup key — so a hash
// collision additionally needs a length collision to go unnoticed,
// and every decode re-verifies both.
type ChunkRef struct {
	Sum uint64
	Len uint32
}

// maxChunkLen caps a single chunk. It bounds what a hostile index can
// make the decoder allocate, and is far above any size the chunkers
// produce (max 4× the configured chunk size).
const maxChunkLen = 1 << 24

// Chunk-file codec bytes. A chunk file is one codec byte followed by
// the payload; the byte selects how the payload decodes back to the
// raw chunk. New codecs get new bytes — old files stay readable.
const (
	codecRaw   = 0x00 // payload is the raw chunk
	codecFlate = 0x01 // payload is DEFLATE-compressed (stdlib flate)
)

func chunkSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// chunkPath places a chunk under root/chunks, sharded by the first
// hash byte so no single directory collects millions of entries.
func chunkPath(root string, ref ChunkRef) string {
	name := fmt.Sprintf("%016x-%08x.c", ref.Sum, ref.Len)
	return filepath.Join(root, chunksDirName, name[:2], name)
}

// splitFixed cuts data into fixed-size chunks. Adjacent snapshots of
// the same run are position-stable (same layout, a few changed pages),
// so fixed boundaries already dedup the unchanged chunks; this is the
// default chunker.
func splitFixed(data []byte, size int) []ChunkRef {
	refs := make([]ChunkRef, 0, len(data)/size+1)
	for len(data) > 0 {
		n := size
		if n > len(data) {
			n = len(data)
		}
		refs = append(refs, ChunkRef{Sum: chunkSum(data[:n]), Len: uint32(n)})
		data = data[n:]
	}
	return refs
}

// Content-defined chunking: a buzhash (cyclic-polynomial rolling hash)
// over a sliding window, cutting where the hash matches a mask. Insert
// or delete a byte and only the chunks around the edit change —
// useful for append-mostly blobs where fixed boundaries shift.
const buzWindow = 64

// buzTable maps each byte to a pseudorandom 64-bit value. Generated
// deterministically from a fixed seed by splitmix64 so every build
// chunks identically (chunk identity is part of the on-disk format).
var buzTable = func() [256]uint64 {
	var t [256]uint64
	x := uint64(0x6f736d73746f7265) // "osmstore"
	for i := range t {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}()

func rotl(v uint64, n uint) uint64 { return v<<n | v>>(64-n) }

// splitRolling cuts data at content-defined boundaries averaging
// roughly size bytes: cut when the rolling hash's low bits are all
// set, never before size/2 or after 4×size.
func splitRolling(data []byte, size int) []ChunkRef {
	// The mask needs a power of two; round size up so the average
	// chunk is at least the configured size.
	mask := uint64(1)
	for int(mask) < size {
		mask <<= 1
	}
	mask--
	min, max := size/2, 4*size
	if min < buzWindow {
		min = buzWindow
	}

	refs := make([]ChunkRef, 0, len(data)/size+1)
	start := 0
	var h uint64
	for i := 0; i < len(data); i++ {
		h = rotl(h, 1) ^ buzTable[data[i]]
		if i-start+1 >= buzWindow {
			if i-start+1 > buzWindow {
				h ^= rotl(buzTable[data[i-buzWindow]], buzWindow)
			}
			n := i - start + 1
			if (n >= min && h&mask == mask) || n >= max {
				refs = append(refs, ChunkRef{Sum: chunkSum(data[start : i+1]), Len: uint32(n)})
				start = i + 1
				h = 0
			}
		}
	}
	if start < len(data) || len(data) == 0 {
		rest := data[start:]
		refs = append(refs, ChunkRef{Sum: chunkSum(rest), Len: uint32(len(rest))})
	}
	return refs
}

// encodeChunk produces the chunk-file bytes for raw: a codec byte and
// a payload. The flate stage only wins when it actually shrinks the
// chunk — incompressible chunks stay raw, so the encode never costs
// more than one byte of overhead.
func encodeChunk(raw []byte, noCompress bool) []byte {
	if !noCompress && len(raw) > 0 {
		var buf bytes.Buffer
		buf.WriteByte(codecFlate)
		zw, _ := flate.NewWriter(&buf, flate.BestSpeed)
		zw.Write(raw)
		if err := zw.Close(); err == nil && buf.Len() < 1+len(raw) {
			return buf.Bytes()
		}
	}
	out := make([]byte, 1+len(raw))
	out[0] = codecRaw
	copy(out[1:], raw)
	return out
}

// DecodeChunk decodes chunk-file bytes back to the raw chunk and
// verifies it against ref. It is the trust boundary for everything
// under chunks/: length and content hash must both match the address
// the caller asked for, and a flate payload may not expand past the
// declared length.
func DecodeChunk(file []byte, ref ChunkRef) ([]byte, error) {
	if ref.Len > maxChunkLen {
		return nil, fmt.Errorf("chunk %016x-%08x: length exceeds %d-byte ceiling", ref.Sum, ref.Len, maxChunkLen)
	}
	if len(file) == 0 {
		return nil, fmt.Errorf("chunk %016x-%08x: empty file", ref.Sum, ref.Len)
	}
	codec, payload := file[0], file[1:]
	var raw []byte
	switch codec {
	case codecRaw:
		raw = payload
	case codecFlate:
		// Bound the inflate to one byte past the declared length: a
		// conforming payload stops at ref.Len, so hitting the bound
		// proves the file lies about its size without ever allocating
		// more than one chunk's worth.
		zr := flate.NewReader(bytes.NewReader(payload))
		var err error
		raw, err = io.ReadAll(io.LimitReader(zr, int64(ref.Len)+1))
		zr.Close()
		if err != nil {
			return nil, fmt.Errorf("chunk %016x-%08x: inflate: %w", ref.Sum, ref.Len, err)
		}
	default:
		return nil, fmt.Errorf("chunk %016x-%08x: unknown codec byte %#x", ref.Sum, ref.Len, codec)
	}
	if uint32(len(raw)) != ref.Len || len(raw) > maxChunkLen {
		return nil, fmt.Errorf("chunk %016x-%08x: decoded to %d bytes", ref.Sum, ref.Len, len(raw))
	}
	if chunkSum(raw) != ref.Sum {
		return nil, fmt.Errorf("chunk %016x-%08x: content hash mismatch", ref.Sum, ref.Len)
	}
	return raw, nil
}

// readChunk loads and decodes one chunk from disk. The read is bounded
// by the addressed length — the codec never stores more than 1+Len
// bytes — so a corrupt oversized file fails fast instead of being
// slurped whole.
func readChunk(root string, ref ChunkRef) ([]byte, error) {
	f, err := os.Open(chunkPath(root, ref))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	file, err := io.ReadAll(io.LimitReader(f, int64(ref.Len)+2))
	if err != nil {
		return nil, fmt.Errorf("chunk %016x-%08x: %w", ref.Sum, ref.Len, err)
	}
	if len(file) > int(ref.Len)+1 {
		return nil, fmt.Errorf("chunk %016x-%08x: file longer than codec allows", ref.Sum, ref.Len)
	}
	return DecodeChunk(file, ref)
}
