package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// snapshotChain fabricates a chain of blobs that mutate like real
// simulator snapshots: position-stable, a few dirty regions per step.
func snapshotChain(n, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	base := make([]byte, size)
	rng.Read(base)
	// Most of a snapshot is a mostly-zero RAM image.
	for i := size / 4; i < size; i++ {
		if rng.Intn(16) != 0 {
			base[i] = 0
		}
	}
	chain := make([][]byte, n)
	for i := range chain {
		blob := make([]byte, size)
		copy(blob, base)
		chain[i] = blob
		// Dirty a handful of small regions for the next cut.
		for k := 0; k < 3; k++ {
			at := rng.Intn(size - 64)
			rng.Read(base[at : at+64])
		}
	}
	return chain
}

func testStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	for _, opts := range []Options{{}, {Rolling: true}, {NoCompress: true}, {ChunkSize: 256}} {
		s := testStore(t, opts)
		blob := snapshotChain(1, 40_000, 7)[0]
		if _, err := s.Put("r1", 100, blob); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("r1", 100)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blob) {
			t.Fatalf("opts %+v: round trip not byte-identical", opts)
		}
		if _, err := s.Get("r1", 99); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get at absent cycle: %v", err)
		}
		if _, err := s.Get("nope", 100); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get of absent run: %v", err)
		}
	}
}

// A dedup chain of 3+ checkpoints must (a) restore every cut
// byte-identical and (b) cost far less than storing each cut whole.
func TestDedupChainByteIdentity(t *testing.T) {
	for _, opts := range []Options{{}, {Rolling: true}} {
		s := testStore(t, opts)
		chain := snapshotChain(5, 60_000, 42)
		var total, newBytes int64
		for i, blob := range chain {
			st, err := s.Put("job", uint64((i+1)*1000), blob)
			if err != nil {
				t.Fatal(err)
			}
			total += int64(len(blob))
			newBytes += st.NewBytes
			if i > 0 && st.NewChunks == st.Chunks {
				t.Fatalf("rolling=%v cut %d: no chunk deduplicated against the previous checkpoint", opts.Rolling, i)
			}
		}
		for i := range chain {
			got, err := s.Get("job", uint64((i+1)*1000))
			if err != nil {
				t.Fatalf("cut %d: %v", i, err)
			}
			if !bytes.Equal(got, chain[i]) {
				t.Fatalf("rolling=%v: cut %d not byte-identical after dedup", opts.Rolling, i)
			}
		}
		if newBytes >= total/2 {
			t.Fatalf("rolling=%v: chain stored %d bytes for %d raw — dedup+codec bought less than 2x", opts.Rolling, newBytes, total)
		}
	}
}

func TestAtReturnsNearestAtOrBefore(t *testing.T) {
	s := testStore(t, Options{})
	for _, cycle := range []uint64{100, 300, 500} {
		if _, err := s.Put("r", cycle, []byte{byte(cycle / 100)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		ask, want uint64
	}{{100, 100}, {299, 100}, {300, 300}, {450, 300}, {500, 500}, {1 << 40, 500}} {
		e, blob, err := s.At("r", tc.ask)
		if err != nil {
			t.Fatalf("At(%d): %v", tc.ask, err)
		}
		if e.Cycle != tc.want || blob[0] != byte(tc.want/100) {
			t.Fatalf("At(%d) = cycle %d", tc.ask, e.Cycle)
		}
	}
	if _, _, err := s.At("r", 99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("At before first checkpoint: %v", err)
	}
	e, _, err := s.Latest("r")
	if err != nil || e.Cycle != 500 {
		t.Fatalf("Latest = %d, %v", e.Cycle, err)
	}
}

func TestPutReplacesSameCycle(t *testing.T) {
	s := testStore(t, Options{})
	s.Put("r", 10, []byte("old"))
	s.Put("r", 10, []byte("new"))
	got, err := s.Get("r", 10)
	if err != nil || string(got) != "new" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	entries, _ := s.Entries("r")
	if len(entries) != 1 {
		t.Fatalf("replacement grew the index to %d entries", len(entries))
	}
}

func TestPutRejectsBadRunNames(t *testing.T) {
	s := testStore(t, Options{})
	for _, run := range []string{"", "..", "a/b", "x y", "\x00"} {
		if _, err := s.Put(run, 0, []byte("x")); err == nil {
			t.Fatalf("Put accepted run name %q", run)
		}
	}
}

func TestPutSurvivesCorruptIndex(t *testing.T) {
	s := testStore(t, Options{})
	if _, err := s.Put("r", 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(indexPath(s.root, "r"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("r", 2, []byte("two")); err != nil {
		t.Fatalf("Put on corrupt index: %v", err)
	}
	got, err := s.Get("r", 2)
	if err != nil || string(got) != "two" {
		t.Fatalf("Get after recovery = %q, %v", got, err)
	}
}

func TestGCSweepsUnreferencedChunks(t *testing.T) {
	s := testStore(t, Options{})
	chain := snapshotChain(3, 30_000, 9)
	for i, blob := range chain {
		s.Put("dead", uint64(i+1), blob)
	}
	s.Put("live", 1, chain[0][:10_000])

	// Everything referenced: sweep must remove nothing.
	st, err := s.GC(GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.SweptChunks != 0 {
		t.Fatalf("GC swept %d referenced chunks", st.SweptChunks)
	}

	if err := s.DeleteRun("dead"); err != nil {
		t.Fatal(err)
	}
	st, err = s.GC(GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.SweptChunks == 0 {
		t.Fatal("GC swept nothing after DeleteRun")
	}
	// The live run must still restore.
	if got, err := s.Get("live", 1); err != nil || !bytes.Equal(got, chain[0][:10_000]) {
		t.Fatalf("live run damaged by GC: %v", err)
	}
	// Second sweep finds a clean store.
	st, _ = s.GC(GCOptions{})
	if st.SweptChunks != 0 || st.KeptRecent != 0 {
		t.Fatalf("store not clean after GC: %+v", st)
	}
}

func TestGCHonorsParkMetadataRoots(t *testing.T) {
	s := testStore(t, Options{})
	// A legacy whole-blob park pair, as internal/server wrote before
	// the store existed.
	os.WriteFile(filepath.Join(s.root, "abc123.snap"), []byte("blob"), 0o644)
	os.WriteFile(filepath.Join(s.root, "s-1.park"), []byte(`{"checksum":"abc123"}`), 0o644)
	os.WriteFile(filepath.Join(s.root, "orphan.snap"), []byte("dead"), 0o644)

	st, err := s.GC(GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.SweptLegacy != 1 {
		t.Fatalf("swept %d legacy blobs, want 1", st.SweptLegacy)
	}
	if _, err := os.Stat(filepath.Join(s.root, "abc123.snap")); err != nil {
		t.Fatal("GC removed a .park-referenced blob")
	}
	if _, err := os.Stat(filepath.Join(s.root, "orphan.snap")); !os.IsNotExist(err) {
		t.Fatal("GC kept an orphaned blob")
	}
}

func TestGCAbortsOnCorruptIndex(t *testing.T) {
	s := testStore(t, Options{})
	s.Put("a", 1, []byte("aaa"))
	s.Put("b", 1, []byte("bbb"))
	os.WriteFile(indexPath(s.root, "a"), []byte("garbage"), 0o644)
	if _, err := s.GC(GCOptions{}); err == nil {
		t.Fatal("GC proceeded with an unreadable index")
	}
	// b's chunks must be untouched.
	if got, err := s.Get("b", 1); err != nil || string(got) != "bbb" {
		t.Fatalf("run b damaged: %v", err)
	}
}

func TestGCGraceWindowSparesRecentFiles(t *testing.T) {
	s := testStore(t, Options{})
	s.Put("r", 1, []byte("fresh"))
	s.DeleteRun("r")
	st, err := s.GC(GCOptions{Grace: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if st.SweptChunks != 0 || st.KeptRecent == 0 {
		t.Fatalf("grace window ignored: %+v", st)
	}
}

func TestRunsAndStat(t *testing.T) {
	s := testStore(t, Options{})
	s.Put("b-run", 1, []byte("x"))
	s.Put("a-run", 1, []byte("y"))
	runs, err := s.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0] != "a-run" || runs[1] != "b-run" {
		t.Fatalf("Runs = %v", runs)
	}
	st, err := s.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 2 || st.Entries != 2 || st.Chunks == 0 || st.LogicalBytes != 2 {
		t.Fatalf("Stat = %+v", st)
	}
}

func TestCorruptChunkDetected(t *testing.T) {
	s := testStore(t, Options{NoCompress: true})
	blob := bytes.Repeat([]byte("abcdefgh"), 1024)
	s.Put("r", 1, blob)
	// Flip a byte in every chunk file.
	err := walkChunks(s.root, func(path string, size int64) {
		data, _ := os.ReadFile(path)
		data[len(data)-1] ^= 0xff
		os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("r", 1); err == nil {
		t.Fatal("corrupt chunk not detected")
	}
}

// Rolling boundaries must localize an insertion: chunks after the
// edit point keep their identity, so an append-mostly blob dedups.
func TestRollingChunksSurviveInsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := make([]byte, 200_000)
	rng.Read(base)
	shifted := append(append([]byte(nil), base[:50_000]...), make([]byte, 137)...)
	shifted = append(shifted, base[50_000:]...)

	a := splitRolling(base, 4096)
	b := splitRolling(shifted, 4096)
	set := make(map[ChunkRef]bool, len(a))
	for _, c := range a {
		set[c] = true
	}
	shared := 0
	for _, c := range b {
		if set[c] {
			shared++
		}
	}
	if shared < len(b)/2 {
		t.Fatalf("insertion destroyed dedup: %d/%d chunks shared", shared, len(b))
	}
	// Fixed chunking, by contrast, shares nothing after the edit —
	// that asymmetry is the reason the rolling option exists.
	af, bf := splitFixed(base, 4096), splitFixed(shifted, 4096)
	setF := make(map[ChunkRef]bool, len(af))
	for _, c := range af {
		setF[c] = true
	}
	sharedF := 0
	for _, c := range bf {
		if setF[c] {
			sharedF++
		}
	}
	if sharedF > len(bf)/4 {
		t.Fatalf("fixed chunking unexpectedly shift-tolerant (%d/%d); test premise wrong", sharedF, len(bf))
	}
}

func TestChunkersReassemble(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 63, 4096, 10_000, 100_000} {
		data := make([]byte, n)
		rng.Read(data)
		for _, rolling := range []bool{false, true} {
			var refs []ChunkRef
			if rolling {
				refs = splitRolling(data, 4096)
			} else {
				refs = splitFixed(data, 4096)
			}
			var total int
			for _, c := range refs {
				total += int(c.Len)
			}
			if total != n {
				t.Fatalf("rolling=%v n=%d: chunks cover %d bytes", rolling, n, total)
			}
		}
	}
}
