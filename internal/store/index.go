package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/snap"
)

// Entry records one stored artifact: the blob for (run, cycle) is the
// concatenation of Chunks in order. Len and Sum describe the whole
// reassembled blob so a restore is verified end to end, not just
// chunk by chunk.
type Entry struct {
	Cycle  uint64
	Len    uint64
	Sum    uint64
	Chunks []ChunkRef
}

// Index format limits. Every bound exists so a hostile index file can
// name at most what the decoder is willing to allocate; the real
// structural check is that each chunk record costs 12 input bytes, so
// claimed counts are always validated against bytes actually present.
const (
	indexHeader     = "osmstore-index"
	indexVersion    = 1
	maxIndexEntries = 1 << 20
)

func indexPath(root, run string) string {
	return filepath.Join(root, runsDirName, run+".idx")
}

// encodeIndex serializes a run's entries behind the versioned snap
// header shared by every on-disk format in this repo.
func encodeIndex(run string, entries []Entry) []byte {
	w := snap.NewWriter()
	w.U32(snap.Magic)
	w.String(indexHeader)
	w.Version(indexVersion)
	w.String(run)
	w.U32(uint32(len(entries)))
	for _, e := range entries {
		w.U64(e.Cycle)
		w.U64(e.Len)
		w.U64(e.Sum)
		w.U32(uint32(len(e.Chunks)))
		for _, c := range e.Chunks {
			w.U64(c.Sum)
			w.U32(c.Len)
		}
	}
	return w.Bytes()
}

// DecodeIndex parses an index file. It is a trust boundary (index
// files live on disk between runs and are fuzzed like every other
// untrusted decoder): all counts are validated against remaining
// input before allocation, chunk lengths against the chunk ceiling,
// and per-entry chunk lengths must add up to the entry's blob length.
func DecodeIndex(data []byte) (run string, entries []Entry, err error) {
	r := snap.NewReader(data)
	if m := r.U32(); r.Err() == nil && m != snap.Magic {
		return "", nil, fmt.Errorf("store index: bad magic %#x", m)
	}
	if h := r.String(); r.Err() == nil && h != indexHeader {
		return "", nil, fmt.Errorf("store index: bad header %q", h)
	}
	r.Version("store index", indexVersion)
	run = r.String()
	n := int(r.U32())
	if r.Err() != nil {
		return "", nil, r.Err()
	}
	if n < 0 || n > maxIndexEntries {
		return "", nil, fmt.Errorf("store index: implausible entry count %d", n)
	}
	// An entry costs at least 28 bytes (cycle+len+sum+count); don't
	// allocate more entries than the input could possibly hold.
	if rem := r.Remaining(); n > rem/28 {
		return "", nil, fmt.Errorf("store index: %d entries claimed with %d bytes remaining", n, rem)
	}
	entries = make([]Entry, 0, n)
	var prevCycle uint64
	for i := 0; i < n; i++ {
		var e Entry
		e.Cycle = r.U64()
		e.Len = r.U64()
		e.Sum = r.U64()
		nc := int(r.U32())
		if r.Err() != nil {
			return "", nil, r.Err()
		}
		if i > 0 && e.Cycle <= prevCycle {
			return "", nil, fmt.Errorf("store index: entries not strictly ordered at cycle %d", e.Cycle)
		}
		prevCycle = e.Cycle
		if nc < 0 || nc > r.Remaining()/12 {
			return "", nil, fmt.Errorf("store index: entry %d claims %d chunks with %d bytes remaining", i, nc, r.Remaining())
		}
		e.Chunks = make([]ChunkRef, 0, nc)
		var total uint64
		for j := 0; j < nc; j++ {
			c := ChunkRef{Sum: r.U64(), Len: r.U32()}
			if r.Err() != nil {
				return "", nil, r.Err()
			}
			if c.Len > maxChunkLen {
				return "", nil, fmt.Errorf("store index: entry %d chunk %d length %d exceeds ceiling", i, j, c.Len)
			}
			total += uint64(c.Len)
			e.Chunks = append(e.Chunks, c)
		}
		if total != e.Len {
			return "", nil, fmt.Errorf("store index: entry %d chunks sum to %d, blob length says %d", i, total, e.Len)
		}
		entries = append(entries, e)
	}
	if err := r.Close("store index"); err != nil {
		return "", nil, err
	}
	return run, entries, nil
}

// loadIndex reads a run's index from disk. A missing file is an empty
// run, not an error.
func loadIndex(root, run string) ([]Entry, error) {
	data, err := os.ReadFile(indexPath(root, run))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	gotRun, entries, err := DecodeIndex(data)
	if err != nil {
		return nil, err
	}
	if gotRun != run {
		return nil, fmt.Errorf("store index for %q names run %q", run, gotRun)
	}
	return entries, nil
}

// findEntry returns the entry with the largest cycle ≤ cycle, or
// ok=false when the run has no checkpoint that early.
func findEntry(entries []Entry, cycle uint64) (Entry, bool) {
	i := sort.Search(len(entries), func(i int) bool { return entries[i].Cycle > cycle })
	if i == 0 {
		return Entry{}, false
	}
	return entries[i-1], true
}
