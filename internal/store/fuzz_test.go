package store

import (
	"bytes"
	"runtime"
	"testing"
)

// FuzzChunkIndex feeds arbitrary bytes to the index decoder: whatever
// the input, it must neither panic nor allocate proportionally to
// counts the input merely claims, and anything it accepts must
// re-encode to the identical bytes (the encoding is canonical).
func FuzzChunkIndex(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("OSNP"))
	// A well-formed index with two entries, one chunk each.
	f.Add(encodeIndex("run-1", []Entry{
		{Cycle: 100, Len: 3, Sum: 7, Chunks: []ChunkRef{{Sum: 7, Len: 3}}},
		{Cycle: 200, Len: 5, Sum: 9, Chunks: []ChunkRef{{Sum: 9, Len: 5}}},
	}))
	// An empty run.
	f.Add(encodeIndex("r", nil))
	// Truncated mid-entry.
	good := encodeIndex("x", []Entry{{Cycle: 1, Len: 2, Sum: 3, Chunks: []ChunkRef{{Sum: 3, Len: 2}}}})
	f.Add(good[:len(good)-5])

	f.Fuzz(func(t *testing.T, data []byte) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		run, entries, err := DecodeIndex(data)
		runtime.ReadMemStats(&after)
		if delta := after.TotalAlloc - before.TotalAlloc; delta > uint64(len(data))*64+1<<20 {
			t.Fatalf("decoding %d input bytes allocated %d", len(data), delta)
		}
		if err != nil {
			return
		}
		if !bytes.Equal(encodeIndex(run, entries), data) {
			t.Fatalf("accepted index does not re-encode canonically")
		}
	})
}

// FuzzChunkDecode feeds arbitrary chunk-file bytes to the chunk
// decoder under a fixed address: it must never panic, never return
// data that fails the address check, and never allocate past the
// declared chunk length bound.
func FuzzChunkDecode(f *testing.F) {
	raw := []byte("the quick brown fox jumps over the lazy dog")
	ref := ChunkRef{Sum: chunkSum(raw), Len: uint32(len(raw))}
	f.Add(encodeChunk(raw, false), ref.Sum, ref.Len)
	f.Add(encodeChunk(raw, true), ref.Sum, ref.Len)
	f.Add([]byte{}, ref.Sum, ref.Len)
	f.Add([]byte{codecFlate, 0xff, 0xff}, ref.Sum, ref.Len)
	f.Add([]byte{0x7f, 1, 2, 3}, ref.Sum, ref.Len)
	zeros := make([]byte, 4096)
	f.Add(encodeChunk(zeros, false), chunkSum(zeros), uint32(len(zeros)))

	f.Fuzz(func(t *testing.T, file []byte, sum uint64, length uint32) {
		ref := ChunkRef{Sum: sum, Len: length}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		out, err := DecodeChunk(file, ref)
		runtime.ReadMemStats(&after)
		// A flate payload may legitimately expand up to the declared
		// length (bounded by the ceiling); beyond that is a bug.
		bound := uint64(len(file))*8 + 1<<20
		if length <= maxChunkLen {
			bound += uint64(length) * 4
		}
		if delta := after.TotalAlloc - before.TotalAlloc; delta > bound {
			t.Fatalf("decoding %d input bytes allocated %d (bound %d)", len(file), delta, bound)
		}
		if err != nil {
			return
		}
		if uint32(len(out)) != length || chunkSum(out) != sum {
			t.Fatalf("decoder accepted data failing its own address check")
		}
	})
}

// FuzzChunkRoundTrip drives the encoder with arbitrary raw chunks and
// both codec choices: encode → decode must be the identity.
func FuzzChunkRoundTrip(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte("hello"), true)
	f.Add(make([]byte, 4096), false)
	f.Fuzz(func(t *testing.T, raw []byte, noCompress bool) {
		if len(raw) > maxChunkLen {
			return
		}
		ref := ChunkRef{Sum: chunkSum(raw), Len: uint32(len(raw))}
		file := encodeChunk(raw, noCompress)
		out, err := DecodeChunk(file, ref)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if !bytes.Equal(out, raw) {
			t.Fatal("round trip not identity")
		}
	})
}
