// Package store is the fleet's artifact store: chunked,
// content-addressed, deduplicating storage for snapshot and
// checkpoint blobs (DESIGN.md §16).
//
// A blob stored for (run, cycle) is cut into chunks, each addressed
// by FNV-1a hash + length and written once — consecutive checkpoints
// of one run share their unchanged chunks, so a chain costs about the
// diff. Chunk files carry a codec byte (raw or stdlib flate, chosen
// per chunk by whichever is smaller), and a per-run index file maps
// cycle → chunk list. Everything is verified on the way out: each
// chunk against its address, the reassembled blob against the
// whole-blob hash recorded at Put time.
//
// The store root doubles as the server's ParkDir: legacy
// whole-blob `<checksum>.snap` files and `<id>.park` metadata live
// beside the chunks/ and runs/ subdirectories, and GC treats a .park
// reference as a root for the legacy blob it names.
package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	chunksDirName = "chunks"
	runsDirName   = "runs"
)

// ErrNotFound reports a run or cycle the store has no artifact for.
var ErrNotFound = errors.New("store: not found")

// Options configure a store. The zero value is the production
// configuration.
type Options struct {
	// ChunkSize is the fixed chunk size (or the target average with
	// Rolling). 0 selects the default, 4 KiB — small enough that a
	// few changed registers don't re-store a whole RAM image, large
	// enough that index overhead stays trivial.
	ChunkSize int
	// Rolling selects content-defined (rolling-hash) chunk boundaries
	// instead of fixed offsets. Useful for append-mostly blobs where
	// an insertion would shift every fixed boundary after it.
	Rolling bool
	// NoCompress disables the per-chunk flate stage; chunks are
	// stored raw. Decode is unaffected — the codec byte in each
	// chunk file says how to read it.
	NoCompress bool
}

// DefaultChunkSize is the fixed chunk size when Options.ChunkSize is 0.
const DefaultChunkSize = 4096

// Store is a chunked artifact store rooted at one directory. Methods
// are safe for concurrent use; distinct processes sharing a root are
// coordinated by content-addressing (chunk writes are idempotent) and
// atomic index replacement.
type Store struct {
	root string
	opts Options
	mu   sync.Mutex
}

// Open returns a store rooted at dir, creating the directory layout
// if needed.
func Open(dir string, opts Options) (*Store, error) {
	if opts.ChunkSize == 0 {
		opts.ChunkSize = DefaultChunkSize
	}
	if opts.ChunkSize < 64 || opts.ChunkSize > maxChunkLen/4 {
		return nil, fmt.Errorf("store: chunk size %d out of range", opts.ChunkSize)
	}
	for _, sub := range []string{chunksDirName, runsDirName} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{root: dir, opts: opts}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// ValidRun reports whether a run name is acceptable as an index file
// stem: non-empty, bounded, and drawn from the same URL- and
// filename-safe alphabet session ids use.
func ValidRun(run string) bool {
	if run == "" || len(run) > 256 {
		return false
	}
	for i := 0; i < len(run); i++ {
		c := run[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	// ".." (and "." ) are valid by alphabet but not as path stems.
	return run != "." && run != ".."
}

// PutStats describes what one Put cost: how much of the blob was
// already present (dedup) and how many bytes actually reached disk
// after the codec stage.
type PutStats struct {
	Chunks    int   // chunks the blob split into
	NewChunks int   // chunks not already in the store
	NewBytes  int64 // on-disk bytes written for the new chunks
}

func blobSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Put stores blob as the artifact for (run, cycle), replacing any
// previous artifact at the same cycle. A corrupt index for the run is
// discarded and rebuilt from this entry alone — Put is the recovery
// path after index damage, so it must not refuse to write.
func (s *Store) Put(run string, cycle uint64, blob []byte) (PutStats, error) {
	var st PutStats
	if !ValidRun(run) {
		return st, fmt.Errorf("store: invalid run name %q", run)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	var refs []ChunkRef
	if s.opts.Rolling {
		refs = splitRolling(blob, s.opts.ChunkSize)
	} else {
		refs = splitFixed(blob, s.opts.ChunkSize)
	}
	st.Chunks = len(refs)

	off := 0
	for _, ref := range refs {
		raw := blob[off : off+int(ref.Len)]
		off += int(ref.Len)
		path := chunkPath(s.root, ref)
		if _, err := os.Stat(path); err == nil {
			continue // content-addressed: already stored
		}
		file := encodeChunk(raw, s.opts.NoCompress)
		if err := writeAtomic(path, file); err != nil {
			return st, err
		}
		st.NewChunks++
		st.NewBytes += int64(len(file))
	}

	entries, err := loadIndex(s.root, run)
	if err != nil {
		// A corrupt index means the run's history is unreadable
		// anyway; start a fresh one rather than wedging every future
		// checkpoint. GC is the one that must refuse on corruption.
		entries = nil
	}
	e := Entry{Cycle: cycle, Len: uint64(len(blob)), Sum: blobSum(blob), Chunks: refs}
	i := sort.Search(len(entries), func(i int) bool { return entries[i].Cycle >= cycle })
	if i < len(entries) && entries[i].Cycle == cycle {
		entries[i] = e
	} else {
		entries = append(entries, Entry{})
		copy(entries[i+1:], entries[i:])
		entries[i] = e
	}
	return st, writeAtomic(indexPath(s.root, run), encodeIndex(run, entries))
}

// get reassembles and verifies the blob for one index entry.
func (s *Store) get(e Entry) ([]byte, error) {
	blob := make([]byte, 0, e.Len)
	for _, ref := range e.Chunks {
		raw, err := readChunk(s.root, ref)
		if err != nil {
			return nil, err
		}
		blob = append(blob, raw...)
	}
	if uint64(len(blob)) != e.Len || blobSum(blob) != e.Sum {
		return nil, fmt.Errorf("store: reassembled blob for cycle %d fails verification", e.Cycle)
	}
	return blob, nil
}

// Get returns the artifact stored for exactly (run, cycle).
func (s *Store) Get(run string, cycle uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := loadIndex(s.root, run)
	if err != nil {
		return nil, err
	}
	e, ok := findEntry(entries, cycle)
	if !ok || e.Cycle != cycle {
		return nil, fmt.Errorf("%w: run %q cycle %d", ErrNotFound, run, cycle)
	}
	return s.get(e)
}

// At returns the artifact at the largest stored cycle ≤ cycle — the
// time-travel primitive: restore here, then replay deterministically
// to the cycle you actually wanted.
func (s *Store) At(run string, cycle uint64) (Entry, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := loadIndex(s.root, run)
	if err != nil {
		return Entry{}, nil, err
	}
	e, ok := findEntry(entries, cycle)
	if !ok {
		return Entry{}, nil, fmt.Errorf("%w: run %q has no checkpoint at or before cycle %d", ErrNotFound, run, cycle)
	}
	blob, err := s.get(e)
	return e, blob, err
}

// Latest returns the artifact at the run's largest stored cycle.
func (s *Store) Latest(run string) (Entry, []byte, error) {
	return s.At(run, ^uint64(0))
}

// Entries returns the run's index, sorted by cycle.
func (s *Store) Entries(run string) ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return loadIndex(s.root, run)
}

// Runs lists every run with an index file.
func (s *Store) Runs() ([]string, error) {
	des, err := os.ReadDir(filepath.Join(s.root, runsDirName))
	if err != nil {
		return nil, err
	}
	var runs []string
	for _, de := range des {
		if name, ok := strings.CutSuffix(de.Name(), ".idx"); ok && !de.IsDir() {
			runs = append(runs, name)
		}
	}
	sort.Strings(runs)
	return runs, nil
}

// DeleteRun drops a run's index. Its chunks stay until GC, which is
// what makes delete safe against concurrent readers — they hold the
// entry list and the chunks remain addressable until the next sweep.
func (s *Store) DeleteRun(run string) error {
	if !ValidRun(run) {
		return fmt.Errorf("store: invalid run name %q", run)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(indexPath(s.root, run))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Stats summarize a store for `osmstore stat`.
type Stats struct {
	Runs         int   // indexed runs
	Entries      int   // artifacts across all runs
	LogicalBytes int64 // sum of artifact sizes as stored blobs claim
	Chunks       int   // chunk files on disk
	ChunkBytes   int64 // on-disk bytes under chunks/
	LegacyBlobs  int   // whole-blob .snap files beside the store
	LegacyBytes  int64 // their on-disk bytes
}

// Stat walks the store and reports its shape.
func (s *Store) Stat() (Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st Stats
	runs, err := s.runsLocked()
	if err != nil {
		return st, err
	}
	st.Runs = len(runs)
	for _, run := range runs {
		entries, err := loadIndex(s.root, run)
		if err != nil {
			return st, fmt.Errorf("run %q: %w", run, err)
		}
		st.Entries += len(entries)
		for _, e := range entries {
			st.LogicalBytes += int64(e.Len)
		}
	}
	err = walkChunks(s.root, func(path string, size int64) {
		st.Chunks++
		st.ChunkBytes += size
	})
	if err != nil {
		return st, err
	}
	des, err := os.ReadDir(s.root)
	if err != nil {
		return st, err
	}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".snap") {
			continue
		}
		if info, err := de.Info(); err == nil {
			st.LegacyBlobs++
			st.LegacyBytes += info.Size()
		}
	}
	return st, nil
}

func (s *Store) runsLocked() ([]string, error) {
	des, err := os.ReadDir(filepath.Join(s.root, runsDirName))
	if err != nil {
		return nil, err
	}
	var runs []string
	for _, de := range des {
		if name, ok := strings.CutSuffix(de.Name(), ".idx"); ok && !de.IsDir() {
			runs = append(runs, name)
		}
	}
	return runs, nil
}

// walkChunks visits every chunk file under chunks/.
func walkChunks(root string, visit func(path string, size int64)) error {
	chunksDir := filepath.Join(root, chunksDirName)
	shards, err := os.ReadDir(chunksDir)
	if err != nil {
		return err
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		des, err := os.ReadDir(filepath.Join(chunksDir, shard.Name()))
		if err != nil {
			return err
		}
		for _, de := range des {
			if de.IsDir() || !strings.HasSuffix(de.Name(), ".c") {
				continue
			}
			info, err := de.Info()
			if err != nil {
				continue // raced with a concurrent GC
			}
			visit(filepath.Join(chunksDir, shard.Name(), de.Name()), info.Size())
		}
	}
	return nil
}

// writeAtomic writes data via a temp file and rename, so a crash
// leaves either the old content or the new — never a torn file.
func writeAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
