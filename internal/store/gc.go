package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// GCOptions configure a sweep.
type GCOptions struct {
	// Grace protects recently written files from the sweep: anything
	// modified within the window is kept even if unreferenced. It
	// covers the race where another process has written chunks but
	// not yet renamed the index that references them. 0 sweeps
	// everything unreferenced (tests; offline stores).
	Grace time.Duration
}

// GCStats report what a sweep did.
type GCStats struct {
	LiveChunks  int   // chunk files referenced by some index
	SweptChunks int   // unreferenced chunk files removed
	SweptBytes  int64 // their on-disk bytes
	SweptLegacy int   // unreferenced whole-blob .snap files removed
	LegacyBytes int64 // their on-disk bytes
	KeptRecent  int   // unreferenced files spared by the grace window
}

// GC removes every chunk file no run index references and every
// legacy whole-blob `.snap` file no `.park` metadata references —
// reference-counted sweep with the indexes and park metadata as the
// roots. This is what stops a long-lived worker's park directory
// growing without bound.
//
// Safety rules:
//   - A corrupt or unreadable index aborts the sweep. Its references
//     are unknown, so nothing can be proven dead.
//   - An unreadable .park file aborts for the same reason.
//   - Files younger than Grace are kept regardless (see GCOptions).
func (s *Store) GC(o GCOptions) (GCStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st GCStats

	// Roots, pass 1: every chunk referenced by any run index.
	runs, err := s.runsLocked()
	if err != nil {
		return st, err
	}
	liveChunks := make(map[ChunkRef]bool)
	for _, run := range runs {
		entries, err := loadIndex(s.root, run)
		if err != nil {
			return st, fmt.Errorf("store gc: index for run %q unreadable, aborting sweep: %w", run, err)
		}
		for _, e := range entries {
			for _, c := range e.Chunks {
				liveChunks[c] = true
			}
		}
	}

	// Roots, pass 2: every legacy blob named by a .park metadata file.
	// The store does not own the park format; the one field it needs
	// is the content checksum, which is stable JSON.
	liveLegacy := make(map[string]bool)
	des, err := os.ReadDir(s.root)
	if err != nil {
		return st, err
	}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".park") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.root, de.Name()))
		if err != nil {
			return st, fmt.Errorf("store gc: %s unreadable, aborting sweep: %w", de.Name(), err)
		}
		var meta struct {
			Checksum string `json:"checksum"`
		}
		if err := json.Unmarshal(data, &meta); err != nil {
			return st, fmt.Errorf("store gc: %s unparsable, aborting sweep: %w", de.Name(), err)
		}
		if meta.Checksum != "" {
			liveLegacy[meta.Checksum] = true
		}
	}

	cutoff := time.Now().Add(-o.Grace)
	recent := func(path string) bool {
		if o.Grace <= 0 {
			return false
		}
		info, err := os.Stat(path)
		return err == nil && info.ModTime().After(cutoff)
	}

	// Sweep chunks.
	var sweepErr error
	err = walkChunks(s.root, func(path string, size int64) {
		ref, ok := parseChunkName(filepath.Base(path))
		if ok && liveChunks[ref] {
			st.LiveChunks++
			return
		}
		if recent(path) {
			st.KeptRecent++
			return
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			sweepErr = err
			return
		}
		st.SweptChunks++
		st.SweptBytes += size
	})
	if err == nil {
		err = sweepErr
	}
	if err != nil {
		return st, err
	}

	// Sweep legacy whole-blob files and stale temp files.
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		isTmp := strings.HasPrefix(name, ".tmp-")
		stem, isSnap := strings.CutSuffix(name, ".snap")
		if !isSnap && !isTmp {
			continue
		}
		if isSnap && liveLegacy[stem] {
			continue
		}
		path := filepath.Join(s.root, name)
		if recent(path) {
			st.KeptRecent++
			continue
		}
		var size int64
		if info, err := de.Info(); err == nil {
			size = info.Size()
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return st, err
		}
		if isSnap {
			st.SweptLegacy++
			st.LegacyBytes += size
		}
	}
	return st, nil
}

// parseChunkName inverts chunkPath's "%016x-%08x.c" naming. Files
// that don't parse are treated as unreferenced (and swept).
func parseChunkName(name string) (ChunkRef, bool) {
	var ref ChunkRef
	stem, ok := strings.CutSuffix(name, ".c")
	if !ok || len(stem) != 25 || stem[16] != '-' {
		return ref, false
	}
	var sum, length uint64
	if _, err := fmt.Sscanf(stem, "%16x-%8x", &sum, &length); err != nil {
		return ref, false
	}
	ref.Sum = sum
	ref.Len = uint32(length)
	return ref, true
}
