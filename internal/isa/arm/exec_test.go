package arm

import (
	"encoding/binary"
	"testing"
)

// ram is a flat little-endian test memory.
type ram []byte

func (r ram) Read32(a uint32) uint32     { return binary.LittleEndian.Uint32(r[a:]) }
func (r ram) Write32(a uint32, v uint32) { binary.LittleEndian.PutUint32(r[a:], v) }
func (r ram) Read16(a uint32) uint16     { return binary.LittleEndian.Uint16(r[a:]) }
func (r ram) Write16(a uint32, v uint16) { binary.LittleEndian.PutUint16(r[a:], v) }
func (r ram) Read8(a uint32) byte        { return r[a] }
func (r ram) Write8(a uint32, v byte)    { r[a] = v }

// load assembles src, loads it at 0 and returns a CPU with SP at the
// top of a 64 KiB RAM and the standard exit SWI (swi #0 halts with
// r0 as the exit code).
func load(t *testing.T, src string) *CPU {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := make(ram, 64<<10)
	for i, w := range p.Words {
		mem.Write32(uint32(i*4), w)
	}
	c := &CPU{Mem: mem}
	c.R[SP] = uint32(len(mem))
	c.SetPC(p.Entry)
	c.SWIHandler = func(c *CPU, num uint32) error {
		if num == 0 {
			c.Halted = true
			c.ExitCode = c.R[0]
		}
		return nil
	}
	return c
}

// run executes until halt and returns the CPU for inspection.
func run(t *testing.T, src string) *CPU {
	t.Helper()
	c := load(t, src)
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("program did not halt")
	}
	return c
}

func TestExecArithmetic(t *testing.T) {
	c := run(t, `
		mov r0, #10
		add r0, r0, #5
		sub r0, r0, #3
		rsb r0, r0, #100   ; 100-12 = 88
		swi #0
	`)
	if c.ExitCode != 88 {
		t.Fatalf("exit = %d, want 88", c.ExitCode)
	}
}

func TestExecShifts(t *testing.T) {
	c := run(t, `
		mov r1, #1
		mov r2, r1, lsl #4      ; 16
		mov r3, r2, lsr #2      ; 4
		mvn r4, #0              ; 0xffffffff
		mov r5, r4, asr #16     ; still 0xffffffff
		mov r6, #0xf0
		mov r7, r6, ror #4      ; 0x0000000f
		add r0, r2, r3          ; 20
		add r0, r0, r7          ; 35
		and r5, r5, #0xff       ; 255
		add r0, r0, r5          ; 290
		swi #0
	`)
	if c.ExitCode != 290 {
		t.Fatalf("exit = %d, want 290", c.ExitCode)
	}
}

func TestExecShiftByRegister(t *testing.T) {
	c := run(t, `
		mov r1, #1
		mov r2, #6
		mov r0, r1, lsl r2  ; 64
		swi #0
	`)
	if c.ExitCode != 64 {
		t.Fatalf("exit = %d, want 64", c.ExitCode)
	}
}

func TestExecFactorialLoop(t *testing.T) {
	c := run(t, `
		mov r0, #1      ; acc
		mov r1, #6      ; n
	loop:
		cmp r1, #1
		ble done
		mul r0, r1, r0
		sub r1, r1, #1
		b loop
	done:
		swi #0
	`)
	if c.ExitCode != 720 {
		t.Fatalf("6! = %d, want 720", c.ExitCode)
	}
}

func TestExecFibonacciRecursive(t *testing.T) {
	// Exercises BL, stack push/pop and conditional execution.
	c := run(t, `
		mov r0, #10
		bl fib
		swi #0
	fib:
		cmp r0, #2
		movlt pc, lr
		push {r4, lr}
		mov r4, r0
		sub r0, r4, #1
		bl fib
		push {r0}
		sub r0, r4, #2
		bl fib
		pop {r1}
		add r0, r0, r1
		pop {r4, pc}
	`)
	if c.ExitCode != 55 {
		t.Fatalf("fib(10) = %d, want 55", c.ExitCode)
	}
}

func TestExecMemoryWordAndByte(t *testing.T) {
	c := run(t, `
		mov r1, #0x1000
		mov r2, #0x12
		orr r2, r2, #0x3400
		str r2, [r1]
		ldr r3, [r1]
		ldrb r4, [r1]       ; low byte 0x12
		strb r4, [r1, #8]
		ldr r5, [r1, #8]    ; 0x12
		add r0, r4, r5      ; 0x24
		cmp r2, r3
		addne r0, r0, #100  ; should not fire
		swi #0
	`)
	if c.ExitCode != 0x24 {
		t.Fatalf("exit = %#x, want 0x24", c.ExitCode)
	}
}

func TestExecAddressingModes(t *testing.T) {
	c := run(t, `
		mov r1, #0x2000
		mov r2, #7
		str r2, [r1], #4     ; post: store at 0x2000, r1=0x2004
		str r2, [r1, #4]!    ; pre+wb: store at 0x2008, r1=0x2008
		mov r3, #0x2000
		ldr r4, [r3]         ; 7
		ldr r5, [r3, #8]     ; 7
		sub r6, r1, #0x2000  ; 8
		add r0, r4, r5
		add r0, r0, r6       ; 7+7+8 = 22
		swi #0
	`)
	if c.ExitCode != 22 {
		t.Fatalf("exit = %d, want 22", c.ExitCode)
	}
}

func TestExecBlockTransfer(t *testing.T) {
	c := run(t, `
		mov r0, #1
		mov r1, #2
		mov r2, #3
		mov r4, #0x3000
		stmia r4!, {r0-r2}   ; store 1,2,3 at 0x3000..
		mov r5, #0x3000
		ldr r6, [r5, #8]     ; 3
		mov r0, #0
		mov r1, #0
		mov r2, #0
		ldmdb r4, {r0-r2}    ; reload 1,2,3
		add r0, r0, r1
		add r0, r0, r2       ; 6
		add r0, r0, r6       ; 9
		sub r7, r4, #0x3000  ; 12 (writeback)
		add r0, r0, r7       ; 21
		swi #0
	`)
	if c.ExitCode != 21 {
		t.Fatalf("exit = %d, want 21", c.ExitCode)
	}
}

func TestExecFlagsAndConditions(t *testing.T) {
	c := run(t, `
		mov r0, #0
		; Z flag
		subs r1, r0, #0
		addeq r0, r0, #1      ; +1
		; N flag
		subs r1, r0, #5
		addmi r0, r0, #2      ; +2
		; C flag: unsigned compare
		mov r2, #10
		cmp r2, #3
		addcs r0, r0, #4      ; +4 (10 >= 3 unsigned)
		; V flag: signed overflow 0x7fffffff + 1
		mvn r3, #0x80000000   ; 0x7fffffff
		adds r3, r3, #1
		addvs r0, r0, #8      ; +8
		; GT/LT
		mov r4, #0
		cmp r4, #1
		addlt r0, r0, #16     ; +16
		swi #0
	`)
	if c.ExitCode != 31 {
		t.Fatalf("exit = %d, want 31 (all condition paths)", c.ExitCode)
	}
}

func TestExecCarryChain(t *testing.T) {
	// 64-bit addition via ADDS/ADC: 0xffffffff + 1 -> carry into high.
	c := run(t, `
		mvn r0, #0        ; low a = 0xffffffff
		mov r1, #0        ; high a
		mov r2, #1        ; low b
		mov r3, #0        ; high b
		adds r0, r0, r2   ; low sum = 0, carry
		adc  r1, r1, r3   ; high sum = 1
		mov r0, r1
		swi #0
	`)
	if c.ExitCode != 1 {
		t.Fatalf("high word = %d, want 1", c.ExitCode)
	}
}

func TestExecMlaAndLiteralPool(t *testing.T) {
	c := run(t, `
		ldr r1, =data
		ldr r2, [r1]      ; 6
		ldr r3, [r1, #4]  ; 7
		mov r4, #100
		mla r0, r2, r3, r4 ; 6*7+100 = 142
		swi #0
	data:
		.word 6, 7
	`)
	if c.ExitCode != 142 {
		t.Fatalf("exit = %d, want 142", c.ExitCode)
	}
}

func TestExecPCRelativeRead(t *testing.T) {
	// Reading PC as an operand yields the instruction address + 8.
	c := run(t, `
		mov r0, pc    ; address 0, reads 8
		swi #0
	`)
	if c.ExitCode != 8 {
		t.Fatalf("pc read = %d, want 8", c.ExitCode)
	}
}

func TestExecMovPCReturns(t *testing.T) {
	c := run(t, `
		bl f
		swi #0
	f:	mov r0, #42
		mov pc, lr
	`)
	if c.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42", c.ExitCode)
	}
}

func TestExecConditionFailedCountsAsExecuted(t *testing.T) {
	c := load(t, `
		movs r0, #0       ; sets Z
		addne r0, r0, #1  ; condition fails
		swi #0
	`)
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Executed != 3 {
		t.Fatalf("executed = %d, want 3", c.Executed)
	}
	if c.ExitCode != 0 {
		t.Fatalf("condition-failed add must not execute; exit = %d", c.ExitCode)
	}
}

func TestExecErrors(t *testing.T) {
	// Unaligned word access.
	c := load(t, `
		mov r1, #2
		ldr r0, [r1]
		swi #0
	`)
	if _, err := c.Run(10); err == nil {
		t.Error("unaligned load must error")
	}
	// SWI without handler.
	c = load(t, "swi #9")
	c.SWIHandler = nil
	if _, err := c.Run(10); err == nil {
		t.Error("swi without handler must error")
	}
	// Step on halted CPU.
	c = run(t, "swi #0")
	if _, err := c.Step(); err == nil {
		t.Error("step on halted CPU must error")
	}
}

func TestExecFlagWordPacking(t *testing.T) {
	c := &CPU{}
	c.N, c.Z, c.C, c.V = true, false, true, false
	if c.Flags() != 0b1010 {
		t.Fatalf("Flags = %#b, want 0b1010", c.Flags())
	}
	c.SetFlagsWord(0b0101)
	if c.N || !c.Z || c.C || !c.V {
		t.Fatal("SetFlagsWord round trip failed")
	}
}

func TestDisassembleSmoke(t *testing.T) {
	srcs := []string{
		"mov r0, #1", "add r1, r2, r3, lsl #2", "ldr r0, [r1, #4]",
		"str r0, [r1], #-8", "ldmia sp!, {r0, pc}", "b x\nx:", "swi #3",
		"mla r0, r1, r2, r3", "cmp r0, #7", "movs r1, r2, lsr #1",
		"strb r0, [r1, r2]",
	}
	for _, src := range srcs {
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		text := Disassemble(p.Words[0])
		if text == "" || text[0] == '.' {
			t.Errorf("%q disassembled to %q", src, text)
		}
		// Reassembling the disassembly of non-branch ops must give
		// the identical word.
		if src[0] != 'b' {
			p2, err := Assemble(text)
			if err != nil {
				t.Errorf("reassemble %q: %v", text, err)
				continue
			}
			if p2.Words[0] != p.Words[0] {
				t.Errorf("%q -> %q: %#08x != %#08x", src, text, p2.Words[0], p.Words[0])
			}
		}
	}
	if got := Disassemble(0xF7F7F7F7); got[0] != '.' {
		t.Errorf("undecodable word should render as .word, got %q", got)
	}
}

func TestExecHalfwordTransfers(t *testing.T) {
	c := run(t, `
		mov r1, #0x1000
		ldr r2, =0x8001
		strh r2, [r1]        ; store 0x8001
		ldrh r3, [r1]        ; zero-extended: 0x8001
		ldrsh r4, [r1]       ; sign-extended: 0xffff8001
		mvn r5, #0
		cmp r4, r5           ; r4 vs -1: r4 = -32767 < -1? GT actually
		mov r0, #0
		add r0, r0, r3       ; 0x8001
		ldrsh r6, [r1], #2   ; post-index: r1 += 2
		sub r7, r1, #0x1000  ; 2
		add r0, r0, r7       ; 0x8003
		swi #0
	`)
	if c.ExitCode != 0x8003 {
		t.Fatalf("exit = %#x, want 0x8003", c.ExitCode)
	}
}

func TestExecSignedByte(t *testing.T) {
	c := run(t, `
		mov r1, #0x2000
		mov r2, #0xFE        ; -2 as a byte
		strb r2, [r1]
		ldrsb r3, [r1]       ; 0xFFFFFFFE
		mvn r4, #1           ; 0xFFFFFFFE
		cmp r3, r4
		moveq r0, #1
		movne r0, #0
		swi #0
	`)
	if c.ExitCode != 1 {
		t.Fatalf("signed byte load failed")
	}
}

func TestExecHalfwordAlignment(t *testing.T) {
	c := load(t, `
		mov r1, #1
		ldrh r0, [r1]
		swi #0
	`)
	if _, err := c.Run(10); err == nil {
		t.Fatal("unaligned halfword access must error")
	}
}

func TestExecShifterEdgeCases(t *testing.T) {
	c := run(t, `
		; RRX: ror #0 encodes rotate-right-extended through carry
		mov r1, #2
		movs r2, r1, lsr #1   ; r2=1, carry = old bit0 of 2 = 0
		mov r3, #5
		mov r4, r3, rrx       ; carry 0: r4 = 2
		; set carry then RRX again
		mov r1, #3
		movs r2, r1, lsr #1   ; carry = 1, r2 = 1
		mov r5, #4
		mov r6, r5, rrx       ; r6 = 0x80000002
		mov r6, r6, lsr #28   ; 0x8
		; lsr #32 (encoded as 0)
		mvn r7, #0
		movs r8, r7, lsr #32  ; 0, carry = bit31 = 1
		adc r8, r8, #0        ; r8 = 1
		; asr #32
		mvn r9, #0
		mov r10, r9, asr #32  ; all ones
		and r10, r10, #16
		; shift-by-register >= 32
		mov r11, #40
		mov r12, #0xff
		mov r12, r12, lsl r11 ; 0
		add r0, r4, r6
		add r0, r0, r8
		add r0, r0, r10
		add r0, r0, r12       ; 2+8+1+16+0 = 27
		swi #0
	`)
	if c.ExitCode != 27 {
		t.Fatalf("exit = %d, want 27", c.ExitCode)
	}
}

func TestExecBlockTransferModes(t *testing.T) {
	// Exercise IB and DA in addition to the common IA/DB.
	c := run(t, `
		mov r0, #1
		mov r1, #2
		mov r4, #0x3000
		stmib r4, {r0, r1}    ; store at 0x3004, 0x3008
		mov r5, #0x3000
		add r5, r5, #4
		ldr r6, [r5]          ; 1
		ldr r7, [r5, #4]      ; 2
		mov r8, #0x3000
		add r8, r8, #8
		mov r0, #0
		mov r1, #0
		ldmda r8, {r0, r1}    ; loads from 0x3004 (r0) and 0x3008 (r1)
		add r0, r0, r1        ; 1 + 2
		add r0, r0, r6
		add r0, r0, r7        ; 3 + 3 = 6
		swi #0
	`)
	if c.ExitCode != 6 {
		t.Fatalf("exit = %d, want 6", c.ExitCode)
	}
}

func TestExecRsbRscSbc(t *testing.T) {
	c := run(t, `
		mov r1, #10
		rsb r2, r1, #30      ; 20
		subs r3, r1, r1      ; 0, carry set (no borrow)
		sbc r4, r2, #5       ; 20-5-0 = 15 (carry was set)
		rsc r5, r1, #26      ; 26-10-0 = 16
		add r0, r4, r5       ; 31
		swi #0
	`)
	if c.ExitCode != 31 {
		t.Fatalf("exit = %d, want 31", c.ExitCode)
	}
}

func TestExecBicTeqTst(t *testing.T) {
	c := run(t, `
		mov r1, #0xff
		bic r2, r1, #0x0f    ; 0xf0
		teq r2, #0xf0        ; equal -> Z
		moveq r3, #1
		tst r2, #0x10        ; 0xf0 & 0x10 != 0 -> Z clear
		addne r3, r3, #2
		add r0, r2, r3       ; 0xf0 + 3
		swi #0
	`)
	if c.ExitCode != 0xf3 {
		t.Fatalf("exit = %#x, want 0xf3", c.ExitCode)
	}
}
