package arm

import (
	"fmt"
	"strings"
)

var regNames = [...]string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
	"r8", "r9", "r10", "r11", "r12", "sp", "lr", "pc"}

// RegName returns the conventional name of register r.
func RegName(r int) string {
	if r >= 0 && r < 16 {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", r)
}

func (i *Instr) shiftString() string {
	if i.HasShiftReg {
		return fmt.Sprintf(", %s %s", i.Shift, RegName(i.Rs))
	}
	if i.ShiftAmt == 0 && i.Shift == LSL {
		return ""
	}
	if i.ShiftAmt == 0 && i.Shift == ROR {
		return ", rrx"
	}
	amt := i.ShiftAmt
	if amt == 0 {
		amt = 32
	}
	return fmt.Sprintf(", %s #%d", i.Shift, amt)
}

func (i *Instr) op2String() string {
	if i.HasImm {
		return fmt.Sprintf("#%d", int32(i.Imm))
	}
	return RegName(i.Rm) + i.shiftString()
}

// String renders the instruction in assembler syntax (branch targets
// appear as relative byte offsets since the instruction does not know
// its own address).
func (i Instr) String() string {
	c := i.Cond.String()
	s := ""
	if i.SetFlags {
		s = "s"
	}
	switch i.Op {
	case B, BL:
		return fmt.Sprintf("%s%s .%+d", i.Op, c, i.Offset+8)
	case SWI:
		return fmt.Sprintf("swi%s #%d", c, i.Imm)
	case MUL:
		return fmt.Sprintf("mul%s%s %s, %s, %s", c, s, RegName(i.Rd), RegName(i.Rm), RegName(i.Rs))
	case MLA:
		return fmt.Sprintf("mla%s%s %s, %s, %s, %s", c, s, RegName(i.Rd), RegName(i.Rm), RegName(i.Rs), RegName(i.Rn))
	case LDR, STR, LDRH, STRH, LDRSB, LDRSH:
		op, b := i.Op, ""
		name := op.String()
		if i.Byte {
			b = "b"
		}
		if op != LDR && op != STR {
			// ldrh etc. already carry the width in the name; split the
			// base mnemonic so the condition slots in the right place.
			if op == STRH {
				name, b = "str", "h"
			} else {
				name, b = "ldr", op.String()[3:]
			}
		}
		var addr string
		sign := ""
		if !i.Up {
			sign = "-"
		}
		switch {
		case i.Pre && i.HasImm && i.Imm == 0:
			addr = fmt.Sprintf("[%s]", RegName(i.Rn))
		case i.Pre && i.HasImm:
			addr = fmt.Sprintf("[%s, #%s%d]", RegName(i.Rn), sign, i.Imm)
		case i.Pre:
			addr = fmt.Sprintf("[%s, %s%s%s]", RegName(i.Rn), sign, RegName(i.Rm), i.shiftString())
		case i.HasImm:
			addr = fmt.Sprintf("[%s], #%s%d", RegName(i.Rn), sign, i.Imm)
		default:
			addr = fmt.Sprintf("[%s], %s%s%s", RegName(i.Rn), sign, RegName(i.Rm), i.shiftString())
		}
		wb := ""
		if i.Pre && i.Writeback {
			wb = "!"
		}
		return fmt.Sprintf("%s%s%s %s, %s%s", name, c, b, RegName(i.Rd), addr, wb)
	case LDM, STM:
		mode := map[[2]bool]string{
			{false, true}:  "ia",
			{true, true}:   "ib",
			{false, false}: "da",
			{true, false}:  "db",
		}[[2]bool{i.Pre, i.Up}]
		wb := ""
		if i.Writeback {
			wb = "!"
		}
		var regs []string
		for r := 0; r < 16; r++ {
			if i.RegList&(1<<r) != 0 {
				regs = append(regs, RegName(r))
			}
		}
		return fmt.Sprintf("%s%s%s %s%s, {%s}", i.Op, mode, c, RegName(i.Rn), wb, strings.Join(regs, ", "))
	case MOV, MVN:
		return fmt.Sprintf("%s%s%s %s, %s", i.Op, c, s, RegName(i.Rd), i.op2String())
	case TST, TEQ, CMP, CMN:
		return fmt.Sprintf("%s%s %s, %s", i.Op, c, RegName(i.Rn), i.op2String())
	default:
		return fmt.Sprintf("%s%s%s %s, %s, %s", i.Op, c, s, RegName(i.Rd), RegName(i.Rn), i.op2String())
	}
}

// Disassemble decodes and renders a word, falling back to a raw
// ".word" directive for undecodable encodings.
func Disassemble(w uint32) string {
	ins, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".word 0x%08x", w)
	}
	return ins.String()
}
