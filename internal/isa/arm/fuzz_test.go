package arm

import (
	"strings"
	"testing"
)

// FuzzAssemble feeds arbitrary source through the two-pass assembler.
// The assembler consumes workload sources from untrusted specs, so it
// must reject bad input with an error — never panic and never emit an
// image larger than the documented ceiling. Every word it does emit
// must survive the decoder and the disassembler.
func FuzzAssemble(f *testing.F) {
	f.Add("mov r0, #1\nadd r1, r0, r0, lsl #2\nloop: subs r1, r1, #1\nbne loop\nswi #0\n")
	f.Add("_start: ldr r0, =data\nldr r1, [r0]\nstr r1, [r0, #4]!\nldmia sp!, {r0-r3, pc}\ndata: .word 42, 7\n")
	f.Add("push {r0, lr}\npop {r0, pc}\n.space 8\nldrh r2, [r3], #2\n")
	f.Add("ldr r0, []")
	f.Add(".space 4294967292")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 32<<10 {
			return
		}
		p, err := Assemble(src)
		if err != nil {
			return
		}
		if p.Size() > maxImageBytes {
			t.Fatalf("assembled %d bytes, over the %d-byte limit\nsource: %q", p.Size(), maxImageBytes, src)
		}
		for i, w := range p.Words {
			if _, err := Decode(w); err != nil {
				// Data words (.word/.space/literals) need not decode,
				// but an undecodable word must at least disassemble to
				// a diagnostic, not panic.
				_ = err
			}
			if s := Disassemble(w); s == "" {
				t.Fatalf("word %d (%#08x) disassembles to nothing\nsource: %q", i, w, src)
			}
		}
	})
}

// TestAssembleHostileInputs pins the crashers and resource-exhaustion
// cases the fuzz target guards against.
func TestAssembleHostileInputs(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		// Empty bracketed address used to index splitOperands()[0]
		// out of range.
		{"ldr r0, []", "empty address"},
		{"str r1, [ ]", "empty address"},
		// A single .space could demand gigabytes before the fix.
		{".space 1073741824", "image limit"},
		{".space 4294967292", "image limit"},
		// Accumulated growth across statements trips the per-line cap.
		{strings.Repeat(".space 16777216\n", 2), "exceeds"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) error = %q, want substring %q", c.src, err, c.want)
		}
	}
	// The cap must not reject legitimate images.
	if _, err := Assemble(".space 65536\nmov r0, #1\n"); err != nil {
		t.Errorf("modest .space rejected: %v", err)
	}
}
