package arm

import (
	"testing"
	"testing/quick"
)

// golden encodings cross-checked against the ARM ARM / GNU as.
func TestGoldenEncodings(t *testing.T) {
	cases := []struct {
		asm  string
		want uint32
	}{
		{"mov r0, #1", 0xE3A00001},
		{"add r1, r2, r3", 0xE0821003},
		{"subs r0, r0, #1", 0xE2500001},
		{"cmp r0, #0", 0xE3500000},
		{"ldr r0, [r1, #4]", 0xE5910004},
		{"str r0, [r1], #4", 0xE4810004},
		{"mul r0, r1, r2", 0xE0000291},
		{"mla r0, r1, r2, r3", 0xE0203291},
		{"swi #0", 0xEF000000},
		{"ldmia sp!, {r0, r1}", 0xE8BD0003},
		{"stmdb sp!, {lr}", 0xE92D4000},
		{"mvn r0, #0", 0xE3E00000},
		{"movs r0, r1, lsr #1", 0xE1B000A1},
		{"and r4, r5, r6, lsl #2", 0xE0054106},
		{"orr r0, r0, r1, ror #8", 0xE1800461},
		{"ldrb r2, [r3]", 0xE5D32000},
		{"strb r2, [r3, #-1]", 0xE5432001},
		{"addeq r0, r0, #4", 0x02800004},
		{"movne r1, #0", 0x13A01000},
		{"add r0, r1, r2, lsl r3", 0xE0810312},
	}
	for _, c := range cases {
		p, err := Assemble(c.asm)
		if err != nil {
			t.Errorf("%q: %v", c.asm, err)
			continue
		}
		if len(p.Words) != 1 {
			t.Errorf("%q: %d words", c.asm, len(p.Words))
			continue
		}
		if p.Words[0] != c.want {
			t.Errorf("%q = %#08x, want %#08x", c.asm, p.Words[0], c.want)
		}
	}
}

func TestGoldenBranchEncodings(t *testing.T) {
	// b to self: offset field = -2 (0xFFFFFE).
	p, err := Assemble("loop: b loop")
	if err != nil {
		t.Fatal(err)
	}
	if p.Words[0] != 0xEAFFFFFE {
		t.Fatalf("b self = %#08x, want 0xEAFFFFFE", p.Words[0])
	}
	// bl forward over one instruction: offset field 0.
	p, err = Assemble("bl target\nnop\ntarget: nop")
	if err != nil {
		t.Fatal(err)
	}
	if p.Words[0] != 0xEB000000 {
		t.Fatalf("bl +8 = %#08x, want 0xEB000000", p.Words[0])
	}
}

func TestImmRoundTrip(t *testing.T) {
	values := []uint32{0, 1, 0xff, 0x100, 0xff0, 0xff00, 0xff000000, 0xc0000034, 4096, 0x3fc00}
	for _, v := range values {
		field, ok := EncodeImm(v)
		if !ok {
			t.Errorf("EncodeImm(%#x) not encodable", v)
			continue
		}
		if got := DecodeImm(field); got != v {
			t.Errorf("round trip %#x -> %#x -> %#x", v, field, got)
		}
	}
	for _, v := range []uint32{0x101, 0xff1, 0x12345678} {
		if _, ok := EncodeImm(v); ok {
			t.Errorf("EncodeImm(%#x) should not be encodable", v)
		}
	}
}

func TestDecodeRejectsReserved(t *testing.T) {
	if _, err := Decode(0xF3A00001); err == nil { // NV condition
		t.Error("NV condition must be rejected")
	}
	if _, err := Decode(0xE7910013); err == nil { // register-shift mem offset (bit4=1)
		t.Error("register-shift memory offset must be rejected")
	}
}

func TestDecodeClassification(t *testing.T) {
	cases := []struct {
		asm   string
		class Class
	}{
		{"add r0, r1, r2", ClassALU},
		{"mul r0, r1, r2", ClassMul},
		{"ldr r0, [r1]", ClassLoad},
		{"str r0, [r1]", ClassStore},
		{"ldmia r1, {r2}", ClassLoad},
		{"stmia r1, {r2}", ClassStore},
		{"b next\nnext:", ClassBranch},
		{"swi #3", ClassSWI},
	}
	for _, c := range cases {
		p, err := Assemble(c.asm)
		if err != nil {
			t.Fatalf("%q: %v", c.asm, err)
		}
		ins, err := Decode(p.Words[0])
		if err != nil {
			t.Fatalf("%q: %v", c.asm, err)
		}
		if ins.Class() != c.class {
			t.Errorf("%q class = %s, want %s", c.asm, ins.Class(), c.class)
		}
	}
}

func TestSrcDstRegs(t *testing.T) {
	cases := []struct {
		asm string
		src []int
		dst []int
	}{
		{"add r0, r1, r2", []int{1, 2}, []int{0}},
		{"add r0, r1, #2", []int{1}, []int{0}},
		{"mov r0, r1", []int{1}, []int{0}},
		{"mov r0, #1", nil, []int{0}},
		{"mul r0, r1, r2", []int{1, 2}, []int{0}},
		{"mla r0, r1, r2, r3", []int{1, 2, 3}, []int{0}},
		{"ldr r0, [r1, #4]", []int{1}, []int{0}},
		{"ldr r0, [r1], #4", []int{1}, []int{0, 1}},
		{"str r0, [r1, #4]!", []int{1, 0}, []int{1}},
		{"cmp r0, r1", []int{0, 1}, nil},
		{"bl sub\nsub:", nil, []int{LR}},
		{"add r0, r1, r2, lsl r3", []int{1, 2, 3}, []int{0}},
		{"stmdb sp!, {r0, r1}", []int{SP, 0, 1}, []int{SP}},
		{"ldmia sp!, {r4, lr}", []int{SP}, []int{4, LR, SP}},
	}
	eq := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, c := range cases {
		p, err := Assemble(c.asm)
		if err != nil {
			t.Fatalf("%q: %v", c.asm, err)
		}
		ins, err := Decode(p.Words[0])
		if err != nil {
			t.Fatalf("%q: %v", c.asm, err)
		}
		if got := ins.SrcRegs(); !eq(got, c.src) {
			t.Errorf("%q src = %v, want %v", c.asm, got, c.src)
		}
		if got := ins.DstRegs(); !eq(got, c.dst) {
			t.Errorf("%q dst = %v, want %v", c.asm, got, c.dst)
		}
	}
}

func TestFlagsPredicates(t *testing.T) {
	p, _ := Assemble("adds r0, r0, #1")
	ins, _ := Decode(p.Words[0])
	if !ins.WritesFlags() {
		t.Error("adds must write flags")
	}
	p, _ = Assemble("adc r0, r0, r1")
	ins, _ = Decode(p.Words[0])
	if !ins.ReadsFlags() {
		t.Error("adc must read flags")
	}
	p, _ = Assemble("addne r0, r0, #1")
	ins, _ = Decode(p.Words[0])
	if !ins.ReadsFlags() {
		t.Error("conditional instruction must read flags")
	}
	p, _ = Assemble("cmp r0, #0")
	ins, _ = Decode(p.Words[0])
	if !ins.WritesFlags() {
		t.Error("cmp must write flags")
	}
}

func TestIsBranch(t *testing.T) {
	cases := []struct {
		asm    string
		branch bool
	}{
		{"b x\nx:", true},
		{"bl x\nx:", true},
		{"mov pc, lr", true},
		{"add r0, r1, r2", false},
		{"ldr pc, [sp]", true},
		{"ldmia sp!, {r0, pc}", true},
		{"ldmia sp!, {r0, r1}", false},
		{"cmp r0, #1", false},
	}
	for _, c := range cases {
		p, err := Assemble(c.asm)
		if err != nil {
			t.Fatalf("%q: %v", c.asm, err)
		}
		ins, _ := Decode(p.Words[0])
		if ins.IsBranch() != c.branch {
			t.Errorf("%q IsBranch = %v, want %v", c.asm, ins.IsBranch(), c.branch)
		}
	}
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	// Any valid data-processing instruction survives encode->decode.
	f := func(op, cond, rd, rn, rm, shAmt uint8, sBit bool, kind uint8) bool {
		i := Instr{
			Op:       Op(op % 16),
			Cond:     Cond(cond % 15), // skip NV
			Rd:       int(rd % 16),
			Rn:       int(rn % 16),
			Rm:       int(rm % 16),
			Shift:    Shift(kind % 4),
			ShiftAmt: int(shAmt % 32),
			SetFlags: sBit,
		}
		switch i.Op {
		case TST, TEQ, CMP, CMN:
			i.SetFlags = true
		}
		w, err := Encode(i)
		if err != nil {
			return false
		}
		d, err := Decode(w)
		if err != nil {
			return false
		}
		return d.Op == i.Op && d.Cond == i.Cond && d.Rd == i.Rd && d.Rn == i.Rn &&
			d.Rm == i.Rm && d.Shift == i.Shift && d.ShiftAmt == i.ShiftAmt &&
			d.SetFlags == i.SetFlags && !d.HasImm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBranchOffsetRoundTrip(t *testing.T) {
	f := func(off int32, link bool) bool {
		off = off % (1 << 23) * 4
		op := B
		if link {
			op = BL
		}
		w, err := Encode(Instr{Cond: AL, Op: op, Offset: off})
		if err != nil {
			return false
		}
		d, err := Decode(w)
		return err == nil && d.Op == op && d.Offset == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenHalfwordEncodings(t *testing.T) {
	cases := []struct {
		asm  string
		want uint32
	}{
		{"ldrh r0, [r1, #2]", 0xE1D100B2},
		{"strh r2, [r3]", 0xE1C320B0},
		{"ldrsb r4, [r5, #1]", 0xE1D540D1},
		{"ldrsh r6, [r7], #2", 0xE0D760F2},
		{"ldrh r0, [r1, r2]", 0xE19100B2},
		{"ldrheq r0, [r1]", 0x01D100B0},
	}
	for _, c := range cases {
		p, err := Assemble(c.asm)
		if err != nil {
			t.Errorf("%q: %v", c.asm, err)
			continue
		}
		if p.Words[0] != c.want {
			t.Errorf("%q = %#08x, want %#08x", c.asm, p.Words[0], c.want)
		}
		// Round trip through the decoder and disassembler.
		text := Disassemble(c.want)
		p2, err := Assemble(text)
		if err != nil {
			t.Errorf("reassemble %q: %v", text, err)
			continue
		}
		if p2.Words[0] != c.want {
			t.Errorf("%q -> %q: %#08x != %#08x", c.asm, text, p2.Words[0], c.want)
		}
	}
}

func TestHalfwordSrcDstAndClass(t *testing.T) {
	p, _ := Assemble("ldrsh r2, [r3, r4]")
	ins, err := Decode(p.Words[0])
	if err != nil {
		t.Fatal(err)
	}
	if ins.Class() != ClassLoad {
		t.Errorf("class = %s, want load", ins.Class())
	}
	src := ins.SrcRegs()
	if len(src) != 2 || src[0] != 3 || src[1] != 4 {
		t.Errorf("srcs = %v, want [3 4]", src)
	}
	if dst := ins.DstRegs(); len(dst) != 1 || dst[0] != 2 {
		t.Errorf("dsts = %v, want [2]", dst)
	}
	p, _ = Assemble("strh r2, [r3], #4")
	ins, _ = Decode(p.Words[0])
	if ins.Class() != ClassStore {
		t.Errorf("class = %s, want store", ins.Class())
	}
	if dst := ins.DstRegs(); len(dst) != 1 || dst[0] != 3 {
		t.Errorf("post-index strh dsts = %v, want writeback [3]", dst)
	}
}
