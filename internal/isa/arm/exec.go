package arm

import (
	"fmt"
	"math/bits"
)

// shifterOperand computes the data-processing operand 2 together with
// the barrel shifter's carry-out (used when the S bit is set on a
// logical operation).
func (c *CPU) shifterOperand(i *Instr) (val uint32, carry bool) {
	carry = c.C
	if i.HasImm {
		val = i.Imm
		if i.Raw != 0 && (i.Raw>>8)&0xf != 0 {
			carry = val&0x8000_0000 != 0
		}
		return val, carry
	}
	rm := c.R[i.Rm]
	amt := uint32(i.ShiftAmt)
	if i.HasShiftReg {
		amt = c.R[i.Rs] & 0xff
		// A register-specified shift of zero leaves the value and
		// carry untouched.
		if amt == 0 {
			return rm, carry
		}
		return shiftBy(rm, i.Shift, amt, carry)
	}
	// Immediate shift amounts of zero have special meanings.
	if amt == 0 {
		switch i.Shift {
		case LSL:
			return rm, carry
		case LSR, ASR:
			amt = 32
		case ROR: // RRX
			out := rm & 1
			val = rm >> 1
			if c.C {
				val |= 0x8000_0000
			}
			return val, out != 0
		}
	}
	return shiftBy(rm, i.Shift, amt, carry)
}

func shiftBy(v uint32, kind Shift, amt uint32, carryIn bool) (uint32, bool) {
	switch kind {
	case LSL:
		switch {
		case amt < 32:
			return v << amt, v&(1<<(32-amt)) != 0
		case amt == 32:
			return 0, v&1 != 0
		default:
			return 0, false
		}
	case LSR:
		switch {
		case amt < 32:
			return v >> amt, v&(1<<(amt-1)) != 0
		case amt == 32:
			return 0, v&0x8000_0000 != 0
		default:
			return 0, false
		}
	case ASR:
		if amt >= 32 {
			if v&0x8000_0000 != 0 {
				return 0xffff_ffff, true
			}
			return 0, false
		}
		return uint32(int32(v) >> amt), v&(1<<(amt-1)) != 0
	case ROR:
		amt &= 31
		if amt == 0 {
			return v, v&0x8000_0000 != 0
		}
		return bits.RotateLeft32(v, -int(amt)), v&(1<<(amt-1)) != 0
	}
	return v, carryIn
}

func (c *CPU) setNZ(v uint32) {
	c.N = v&0x8000_0000 != 0
	c.Z = v == 0
}

// addWithCarry returns a+b+ci with ARM's C (carry out) and V (signed
// overflow) flags.
func addWithCarry(a, b uint32, ci bool) (sum uint32, co, ov bool) {
	var cin uint32
	if ci {
		cin = 1
	}
	s64 := uint64(a) + uint64(b) + uint64(cin)
	sum = uint32(s64)
	co = s64 > 0xffff_ffff
	ov = (a^sum)&(b^sum)&0x8000_0000 != 0
	return sum, co, ov
}

// Exec executes a decoded instruction against the CPU state. It
// reports whether the instruction redirected control flow (wrote the
// PC), in which case the caller must not advance the PC itself.
// During execution R15 reads as the instruction's address plus 8,
// matching ARM's architected PC-ahead behaviour; callers must set
// R[15] to pc+8 before calling (CPU.Step does this).
func (c *CPU) Exec(i Instr) (branched bool, err error) {
	pc := c.R[PC] // the instruction's own address
	// Expose the architected PC-ahead value to operand reads.
	c.R[PC] = pc + 8

	defer func() {
		if !branched {
			c.R[PC] = pc // Step advances by 4 itself
		}
	}()

	if !i.Cond.Passed(c.N, c.Z, c.C, c.V) {
		return false, nil
	}

	writeRd := func(v uint32) {
		c.R[i.Rd] = v
		if i.Rd == PC {
			branched = true
		}
	}

	switch i.Op {
	case B, BL:
		if i.Op == BL {
			c.R[LR] = pc + 4
		}
		c.R[PC] = uint32(int64(pc) + 8 + int64(i.Offset))
		return true, nil

	case SWI:
		if c.SWIHandler == nil {
			return false, fmt.Errorf("swi %#x with no handler", i.Imm)
		}
		return false, c.SWIHandler(c, i.Imm&0xffffff)

	case MUL, MLA:
		v := c.R[i.Rm] * c.R[i.Rs]
		if i.Op == MLA {
			v += c.R[i.Rn]
		}
		if i.Rd == PC {
			return false, fmt.Errorf("mul with PC destination")
		}
		c.R[i.Rd] = v
		if i.SetFlags {
			c.setNZ(v)
		}
		return false, nil

	case LDR, STR:
		return c.execMem(&i)

	case LDRH, STRH, LDRSB, LDRSH:
		return c.execMemHalf(&i)

	case LDM, STM:
		return c.execBlock(&i)
	}

	// Data processing.
	op2, shCarry := c.shifterOperand(&i)
	rn := c.R[i.Rn]
	var res uint32
	var co, ov bool
	logical := false
	switch i.Op {
	case AND, TST:
		res, logical = rn&op2, true
	case EOR, TEQ:
		res, logical = rn^op2, true
	case ORR:
		res, logical = rn|op2, true
	case BIC:
		res, logical = rn&^op2, true
	case MOV:
		res, logical = op2, true
	case MVN:
		res, logical = ^op2, true
	case SUB, CMP:
		res, co, ov = addWithCarry(rn, ^op2, true)
	case RSB:
		res, co, ov = addWithCarry(op2, ^rn, true)
	case ADD, CMN:
		res, co, ov = addWithCarry(rn, op2, false)
	case ADC:
		res, co, ov = addWithCarry(rn, op2, c.C)
	case SBC:
		res, co, ov = addWithCarry(rn, ^op2, c.C)
	case RSC:
		res, co, ov = addWithCarry(op2, ^rn, c.C)
	default:
		return false, fmt.Errorf("exec: unhandled op %s", i.Op)
	}

	test := i.Op == TST || i.Op == TEQ || i.Op == CMP || i.Op == CMN
	if !test {
		writeRd(res)
	}
	if i.SetFlags || test {
		if i.Rd == PC && !test {
			return branched, fmt.Errorf("S-bit data processing with PC destination unsupported (no SPSR)")
		}
		c.setNZ(res)
		if logical {
			c.C = shCarry
		} else {
			c.C, c.V = co, ov
		}
	}
	return branched, nil
}

func (c *CPU) execMem(i *Instr) (branched bool, err error) {
	var off uint32
	switch {
	case i.HasImm:
		off = i.Imm
	case i.ShiftAmt == 0 && i.Shift == LSL:
		off = c.R[i.Rm]
	default:
		off, _ = shiftBy(c.R[i.Rm], i.Shift, uint32(i.ShiftAmt), c.C)
	}
	base := c.R[i.Rn]
	indexed := base + off
	if !i.Up {
		indexed = base - off
	}
	addr := base
	if i.Pre {
		addr = indexed
	}
	if !i.Byte && addr%4 != 0 {
		return false, fmt.Errorf("%s: unaligned word access at %#x", i.Op, addr)
	}
	if i.Op == LDR {
		var v uint32
		if i.Byte {
			v = uint32(c.Mem.Read8(addr))
		} else {
			v = c.Mem.Read32(addr)
		}
		if i.Writeback || !i.Pre {
			c.R[i.Rn] = indexed
		}
		c.R[i.Rd] = v
		if i.Rd == PC {
			branched = true
		}
	} else {
		v := c.R[i.Rd]
		if i.Byte {
			c.Mem.Write8(addr, byte(v))
		} else {
			c.Mem.Write32(addr, v)
		}
		if i.Writeback || !i.Pre {
			c.R[i.Rn] = indexed
		}
	}
	return branched, nil
}

// execMemHalf handles the halfword and signed transfers.
func (c *CPU) execMemHalf(i *Instr) (branched bool, err error) {
	off := i.Imm
	if !i.HasImm {
		off = c.R[i.Rm]
	}
	base := c.R[i.Rn]
	indexed := base + off
	if !i.Up {
		indexed = base - off
	}
	addr := base
	if i.Pre {
		addr = indexed
	}
	if i.Op != LDRSB && addr%2 != 0 {
		return false, fmt.Errorf("%s: unaligned halfword access at %#x", i.Op, addr)
	}
	switch i.Op {
	case LDRH:
		c.R[i.Rd] = uint32(c.Mem.Read16(addr))
	case LDRSB:
		c.R[i.Rd] = uint32(int32(int8(c.Mem.Read8(addr))))
	case LDRSH:
		c.R[i.Rd] = uint32(int32(int16(c.Mem.Read16(addr))))
	case STRH:
		c.Mem.Write16(addr, uint16(c.R[i.Rd]))
	}
	if i.Writeback || !i.Pre {
		c.R[i.Rn] = indexed
	}
	if i.Op != STRH && i.Rd == PC {
		branched = true
	}
	return branched, nil
}

func (c *CPU) execBlock(i *Instr) (branched bool, err error) {
	n := uint32(bits.OnesCount16(i.RegList))
	if n == 0 {
		return false, fmt.Errorf("%s: empty register list", i.Op)
	}
	base := c.R[i.Rn]
	if base%4 != 0 {
		return false, fmt.Errorf("%s: unaligned base %#x", i.Op, base)
	}
	var start, wb uint32
	switch {
	case i.Up && !i.Pre: // IA
		start, wb = base, base+4*n
	case i.Up && i.Pre: // IB
		start, wb = base+4, base+4*n
	case !i.Up && !i.Pre: // DA
		start, wb = base-4*n+4, base-4*n
	default: // DB
		start, wb = base-4*n, base-4*n
	}
	addr := start
	for r := 0; r < 16; r++ {
		if i.RegList&(1<<r) == 0 {
			continue
		}
		if i.Op == LDM {
			c.R[r] = c.Mem.Read32(addr)
			if r == PC {
				branched = true
			}
		} else {
			c.Mem.Write32(addr, c.R[r])
		}
		addr += 4
	}
	if i.Writeback {
		// A loaded base wins over writeback (LDM); a stored base was
		// stored with its original value (we stored before updating).
		if !(i.Op == LDM && i.RegList&(1<<i.Rn) != 0) {
			c.R[i.Rn] = wb
		}
	}
	return branched, nil
}
