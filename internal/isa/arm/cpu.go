package arm

import "fmt"

// Memory is the byte-addressed memory the CPU executes against. Word
// accesses must be 4-byte aligned; the executor reports unaligned
// accesses as errors rather than emulating ARM's rotation behaviour.
type Memory interface {
	Read32(addr uint32) uint32
	Write32(addr uint32, v uint32)
	Read16(addr uint32) uint16
	Write16(addr uint32, v uint16)
	Read8(addr uint32) byte
	Write8(addr uint32, v byte)
}

// CPU is the architectural state of the functional (instruction-set)
// simulator: the "existing ISS" both micro-architecture case studies
// are based on. Micro-architecture models own the timing; they invoke
// the CPU's decode/execute machinery from their OSM edge actions.
type CPU struct {
	// R holds the sixteen general registers; R[15] is the PC.
	R [16]uint32
	// N, Z, C, V are the CPSR condition flags.
	N, Z, C, V bool
	// Mem is the memory image the CPU runs against.
	Mem Memory
	// SWIHandler, if non-nil, is invoked for SWI instructions with
	// the 24-bit comment field; a nil handler makes SWI an error.
	SWIHandler func(c *CPU, num uint32) error
	// Halted stops Step; the standard syscall emulation sets it on
	// exit.
	Halted bool
	// ExitCode records the program's exit status once Halted.
	ExitCode uint32
	// Executed counts completed (condition-passed or failed)
	// instructions.
	Executed uint64
}

// PC returns the current program counter.
func (c *CPU) PC() uint32 { return c.R[PC] }

// SetPC sets the program counter.
func (c *CPU) SetPC(v uint32) { c.R[PC] = v }

// Flags packs the CPSR condition flags into NZCV bit order (bit 3 =
// N ... bit 0 = V), convenient for the micro-architecture models'
// flag-register token.
func (c *CPU) Flags() uint32 {
	var f uint32
	if c.N {
		f |= 8
	}
	if c.Z {
		f |= 4
	}
	if c.C {
		f |= 2
	}
	if c.V {
		f |= 1
	}
	return f
}

// SetFlagsWord unpacks Flags().
func (c *CPU) SetFlagsWord(f uint32) {
	c.N = f&8 != 0
	c.Z = f&4 != 0
	c.C = f&2 != 0
	c.V = f&1 != 0
}

// Step fetches, decodes and executes one instruction, advancing the
// PC. It reports the decoded instruction for tracing.
func (c *CPU) Step() (Instr, error) {
	if c.Halted {
		return Instr{}, fmt.Errorf("arm: step on halted CPU")
	}
	pc := c.R[PC]
	if pc%4 != 0 {
		return Instr{}, fmt.Errorf("arm: unaligned PC %#x", pc)
	}
	ins, err := Decode(c.Mem.Read32(pc))
	if err != nil {
		return ins, fmt.Errorf("arm: at %#x: %w", pc, err)
	}
	return ins, c.StepDecoded(ins)
}

// StepDecoded executes one already-decoded instruction as the
// instruction at the current PC. Callers (the iss package's decode
// cache) are responsible for ins being the decode of the word at the
// PC; the halted and alignment checks of Step still apply.
func (c *CPU) StepDecoded(ins Instr) error {
	pc := c.R[PC]
	branched, err := c.Exec(ins)
	if err != nil {
		return fmt.Errorf("arm: at %#x: %w", pc, err)
	}
	if !branched {
		c.R[PC] = pc + 4
	}
	c.Executed++
	return nil
}

// Run steps until the CPU halts or limit instructions have executed;
// it reports the number of instructions executed.
func (c *CPU) Run(limit uint64) (uint64, error) {
	start := c.Executed
	for !c.Halted && c.Executed-start < limit {
		if _, err := c.Step(); err != nil {
			return c.Executed - start, err
		}
	}
	return c.Executed - start, nil
}
