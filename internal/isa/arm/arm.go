// Package arm implements a faithful subset of the ARM (ARMv4,
// user-mode, 32-bit) instruction set: the substrate the paper's
// StrongARM case study simulates. It provides binary encodings, a
// decoder, an executor, a two-pass assembler and a disassembler.
//
// The subset covers the instruction classes that drive pipeline
// behaviour — data processing with the barrel shifter and condition
// codes, multiply/multiply-accumulate, single and block data
// transfers, branches with link, and SWI for system calls — which is
// what the operation state machines of the micro-architecture models
// consume: operation classes, source/destination registers and
// memory-access behaviour.
package arm

import "fmt"

// Register aliases. R15 is the program counter, R14 the link
// register, R13 the stack pointer by convention.
const (
	SP = 13
	LR = 14
	PC = 15
)

// Cond is the 4-bit condition field present on every ARM instruction.
type Cond uint8

// Condition codes.
const (
	EQ Cond = iota // Z set
	NE             // Z clear
	CS             // C set
	CC             // C clear
	MI             // N set
	PL             // N clear
	VS             // V set
	VC             // V clear
	HI             // C set and Z clear
	LS             // C clear or Z set
	GE             // N == V
	LT             // N != V
	GT             // Z clear and N == V
	LE             // Z set or N != V
	AL             // always
	NV             // never (reserved)
)

var condNames = [...]string{"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
	"hi", "ls", "ge", "lt", "gt", "le", "", "nv"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond%d", uint8(c))
}

// Passed evaluates the condition against the current flags.
func (c Cond) Passed(n, z, cf, v bool) bool {
	switch c {
	case EQ:
		return z
	case NE:
		return !z
	case CS:
		return cf
	case CC:
		return !cf
	case MI:
		return n
	case PL:
		return !n
	case VS:
		return v
	case VC:
		return !v
	case HI:
		return cf && !z
	case LS:
		return !cf || z
	case GE:
		return n == v
	case LT:
		return n != v
	case GT:
		return !z && n == v
	case LE:
		return z || n != v
	case AL:
		return true
	}
	return false
}

// Op enumerates the decoded operations of the subset.
type Op uint8

// Data-processing opcodes keep their 4-bit ARM encodings (0-15);
// the remaining operations follow.
const (
	AND Op = iota
	EOR
	SUB
	RSB
	ADD
	ADC
	SBC
	RSC
	TST
	TEQ
	CMP
	CMN
	ORR
	MOV
	BIC
	MVN
	MUL
	MLA
	LDR
	STR
	LDRH
	STRH
	LDRSB
	LDRSH
	LDM
	STM
	B
	BL
	SWI
)

var opNames = [...]string{"and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc",
	"tst", "teq", "cmp", "cmn", "orr", "mov", "bic", "mvn",
	"mul", "mla", "ldr", "str", "ldrh", "strh", "ldrsb", "ldrsh",
	"ldm", "stm", "b", "bl", "swi"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Shift enumerates the barrel-shifter operations.
type Shift uint8

// Barrel shifter kinds, in their 2-bit encodings.
const (
	LSL Shift = iota
	LSR
	ASR
	ROR
)

var shiftNames = [...]string{"lsl", "lsr", "asr", "ror"}

func (s Shift) String() string { return shiftNames[s&3] }

// Class partitions operations by the pipeline resources they use; the
// micro-architecture models route operations by class.
type Class uint8

// Operation classes.
const (
	ClassALU Class = iota
	ClassMul
	ClassLoad
	ClassStore
	ClassBranch
	ClassSWI
)

var classNames = [...]string{"alu", "mul", "load", "store", "branch", "swi"}

func (c Class) String() string { return classNames[c] }

// Instr is a decoded instruction.
type Instr struct {
	// Raw is the 32-bit encoding the instruction was decoded from
	// (zero for hand-built instructions that were never encoded).
	Raw uint32
	// Cond gates execution on the CPSR flags.
	Cond Cond
	// Op is the operation.
	Op Op
	// Rd, Rn, Rm, Rs are register operands; unused ones are zero.
	// For MUL/MLA, Rd = destination, Rm and Rs are the factors and Rn
	// the accumulator.
	Rd, Rn, Rm, Rs int
	// HasImm selects the immediate form of operand 2 (data
	// processing) or the immediate offset (memory). Imm holds the
	// already-decoded value.
	HasImm bool
	Imm    uint32
	// Shift applies to Rm when HasImm is false. HasShiftReg selects a
	// register-specified shift amount in Rs.
	Shift       Shift
	ShiftAmt    int
	HasShiftReg bool
	// SetFlags is the S bit.
	SetFlags bool
	// Memory-access bits: Pre selects pre-indexing, Up addition of
	// the offset, Writeback updates Rn, Byte selects byte width.
	Pre, Up, Writeback, Byte bool
	// RegList is the LDM/STM register mask.
	RegList uint16
	// Offset is the sign-extended branch offset in bytes (already
	// shifted left 2).
	Offset int32
}

// Class reports the operation's pipeline class.
func (i *Instr) Class() Class {
	switch i.Op {
	case MUL, MLA:
		return ClassMul
	case LDR, LDRH, LDRSB, LDRSH, LDM:
		return ClassLoad
	case STR, STRH, STM:
		return ClassStore
	case B, BL:
		return ClassBranch
	case SWI:
		return ClassSWI
	default:
		return ClassALU
	}
}

// IsBranch reports whether the instruction may redirect the PC: an
// explicit branch or any operation with Rd == PC.
func (i *Instr) IsBranch() bool {
	if i.Op == B || i.Op == BL {
		return true
	}
	switch i.Op {
	case TST, TEQ, CMP, CMN, STR, STRH, STM, SWI:
		return false
	case LDM:
		return i.RegList&(1<<PC) != 0
	case LDR:
		return i.Rd == PC
	default:
		return i.Rd == PC
	}
}

// SrcRegs returns the architectural source registers, in a fixed
// order without duplicates. The micro-architecture models use it to
// build operand-inquiry token identifiers.
func (i *Instr) SrcRegs() []int {
	var out []int
	add := func(r int) {
		for _, x := range out {
			if x == r {
				return
			}
		}
		out = append(out, r)
	}
	switch i.Op {
	case MOV, MVN:
		if !i.HasImm {
			add(i.Rm)
		}
	case MUL:
		add(i.Rm)
		add(i.Rs)
	case MLA:
		add(i.Rm)
		add(i.Rs)
		add(i.Rn)
	case LDR, LDRH, LDRSB, LDRSH:
		add(i.Rn)
		if !i.HasImm {
			add(i.Rm)
		}
	case STR, STRH:
		add(i.Rn)
		add(i.Rd)
		if !i.HasImm {
			add(i.Rm)
		}
	case LDM:
		add(i.Rn)
	case STM:
		add(i.Rn)
		for r := 0; r < 16; r++ {
			if i.RegList&(1<<r) != 0 {
				add(r)
			}
		}
	case B, BL, SWI:
		// none
	default: // data processing
		add(i.Rn)
		if !i.HasImm {
			add(i.Rm)
		}
	}
	if !i.HasImm && i.HasShiftReg {
		switch i.Op {
		case MUL, MLA, LDR, STR, LDM, STM, B, BL, SWI:
		default:
			add(i.Rs)
		}
	}
	return out
}

// DstRegs returns the architectural destination registers.
func (i *Instr) DstRegs() []int {
	var out []int
	switch i.Op {
	case TST, TEQ, CMP, CMN, B, SWI:
		return nil
	case BL:
		return []int{LR}
	case MUL, MLA:
		return []int{i.Rd}
	case LDR, LDRH, LDRSB, LDRSH:
		out = append(out, i.Rd)
		if i.Writeback || !i.Pre {
			out = append(out, i.Rn)
		}
	case STR, STRH:
		if i.Writeback || !i.Pre {
			out = append(out, i.Rn)
		}
	case LDM:
		for r := 0; r < 16; r++ {
			if i.RegList&(1<<r) != 0 {
				out = append(out, r)
			}
		}
		if i.Writeback {
			out = append(out, i.Rn)
		}
	case STM:
		if i.Writeback {
			out = append(out, i.Rn)
		}
	default:
		out = append(out, i.Rd)
	}
	return out
}

// WritesFlags reports whether the instruction updates the CPSR flags.
func (i *Instr) WritesFlags() bool {
	switch i.Op {
	case TST, TEQ, CMP, CMN:
		return true
	default:
		return i.SetFlags
	}
}

// ReadsFlags reports whether execution depends on the CPSR flags
// beyond the condition field.
func (i *Instr) ReadsFlags() bool {
	switch i.Op {
	case ADC, SBC, RSC:
		return true
	}
	return i.Cond != AL
}
