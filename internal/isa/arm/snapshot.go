package arm

import "repro/internal/snap"

const cpuSnapVersion = 1

// Snapshot encodes the architectural state: registers, flags, halt
// status and the executed-instruction count. The memory image and
// handlers are owned by the embedding simulator.
func (c *CPU) Snapshot(w *snap.Writer) {
	w.Version(cpuSnapVersion)
	for _, r := range c.R {
		w.U32(r)
	}
	w.Bool(c.N)
	w.Bool(c.Z)
	w.Bool(c.C)
	w.Bool(c.V)
	w.Bool(c.Halted)
	w.U32(c.ExitCode)
	w.U64(c.Executed)
}

// Restore decodes an architectural-state snapshot.
func (c *CPU) Restore(r *snap.Reader) error {
	r.Version("arm cpu", cpuSnapVersion)
	for i := range c.R {
		c.R[i] = r.U32()
	}
	c.N = r.Bool()
	c.Z = r.Bool()
	c.C = r.Bool()
	c.V = r.Bool()
	c.Halted = r.Bool()
	c.ExitCode = r.U32()
	c.Executed = r.U64()
	return r.Close("arm cpu")
}
