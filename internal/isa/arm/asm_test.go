package arm

import (
	"strings"
	"testing"
)

func TestAssemblerErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"frobnicate r0", "unknown mnemonic"},
		{"mov r17, #1", "bad register"},
		{"mov r0", "takes rd and operand2"},
		{"add r0, r1", "takes rd, rn and operand2"},
		{"cmp r0", "takes rn and operand2"},
		{"mov r0, #0x101", "not encodable"},
		{"mov r0, #1, lsl #2", "no shift"},
		{"mul r0, r1", "takes 3 registers"},
		{"mla r0, r1, r2", "takes 4 registers"},
		{"ldr r0", "takes rd and an address"},
		{"ldr r0, r1", "bad address"},
		{"ldr r0, [r1, #5000]", "exceeds 12 bits"},
		{"ldrh r0, [r1, #500]", "exceeds 8 bits"},
		{"ldrh r0, [r1, r2, lsl #2]", "cannot be shifted"},
		{"ldr r0, [r1, r2, lsl r3]", "register shifts"},
		{"strsh r0, [r1]", "unknown mnemonic"},
		{"ldm r1, {r0}", "unknown mnemonic"}, // needs an addressing mode
		{"ldmia r1", "takes base and register list"},
		{"ldmia r1, (r0)", "bad register list"},
		{"ldmia r1, {r3-r1}", "bad register range"},
		{"b", "takes one target"},
		{"b nowhere", "undefined symbol"},
		{"swi", "takes one operand"},
		{"x: x: nop", "duplicate label"},
		{"1bad: nop", "bad label"},
		{".space 3", "not a word multiple"},
		{"add r0, r1, r2, xsl #2", "bad shift kind"},
		{"add r0, r1, r2, lsl #99", "bad shift amount"},
		{"ldrb r0, =lit", "require plain ldr"},
		{"mov r0, #1 extra junk", "undefined symbol"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) error = %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestAssemblerNiceties(t *testing.T) {
	// Multiple labels on one line, comments, register aliases, case.
	p, err := Assemble(`
a: b: c: nop            ; three labels, one spot
	MOV R0, #1          @ upper case, at-comment
	add ip, sl, fp
	.word a, b
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["a"] != 0 || p.Labels["b"] != 0 || p.Labels["c"] != 0 {
		t.Fatalf("labels = %v", p.Labels)
	}
	if p.Words[3] != 0 || p.Words[4] != 0 {
		t.Fatal(".word with labels wrong")
	}
	// _start selects the entry point.
	p, err = Assemble("nop\n_start: nop\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 4 {
		t.Fatalf("entry = %#x, want 4", p.Entry)
	}
	if p.Size() != 8 {
		t.Fatalf("size = %d", p.Size())
	}
}

func TestAssembleAtOrigin(t *testing.T) {
	p, err := AssembleAt("x: b x", 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Org != 0x100 || p.Labels["x"] != 0x100 {
		t.Fatalf("org/labels wrong: %+v", p)
	}
	// Self-branch still encodes the -8 offset regardless of origin.
	if p.Words[0] != 0xEAFFFFFE {
		t.Fatalf("word = %#08x", p.Words[0])
	}
}

func TestLiteralPoolDeduplication(t *testing.T) {
	p, err := Assemble(`
	ldr r0, =0x12345678
	ldr r1, =0x12345678
	ldr r2, =0xAABBCCDD
	mov r0, #0
	swi #0
`)
	if err != nil {
		t.Fatal(err)
	}
	// 5 instructions + 2 distinct literals.
	if len(p.Words) != 7 {
		t.Fatalf("words = %d, want 7 (pool deduplicated)", len(p.Words))
	}
	if p.Words[5] != 0x12345678 || p.Words[6] != 0xAABBCCDD {
		t.Fatalf("pool = %#x %#x", p.Words[5], p.Words[6])
	}
}
