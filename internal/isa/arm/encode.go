package arm

import "fmt"

// EncodeImm encodes a 32-bit value as an ARM data-processing
// immediate: an 8-bit constant rotated right by an even amount. The
// second result reports whether the value is representable.
func EncodeImm(v uint32) (uint32, bool) {
	for rot := uint32(0); rot < 16; rot++ {
		// field = v rotated LEFT by 2*rot must fit in 8 bits.
		field := v<<(2*rot) | v>>(32-2*rot)
		if rot == 0 {
			field = v
		}
		if field <= 0xff {
			return rot<<8 | field, true
		}
	}
	return 0, false
}

// DecodeImm expands a 12-bit immediate field into its value.
func DecodeImm(field uint32) uint32 {
	rot := (field >> 8) & 0xf * 2
	imm := field & 0xff
	if rot == 0 {
		return imm
	}
	return imm>>rot | imm<<(32-rot)
}

// Encode produces the 32-bit ARM encoding of the instruction.
func Encode(i Instr) (uint32, error) {
	w := uint32(i.Cond) << 28
	switch i.Op {
	case MUL, MLA:
		if i.SetFlags {
			w |= 1 << 20
		}
		if i.Op == MLA {
			w |= 1 << 21
		}
		w |= uint32(i.Rd&0xf) << 16
		w |= uint32(i.Rn&0xf) << 12
		w |= uint32(i.Rs&0xf) << 8
		w |= 0x9 << 4
		w |= uint32(i.Rm & 0xf)
		return w, nil
	case LDR, STR:
		w |= 1 << 26
		if !i.HasImm {
			w |= 1 << 25 // register offset
		}
		if i.Pre {
			w |= 1 << 24
		}
		if i.Up {
			w |= 1 << 23
		}
		if i.Byte {
			w |= 1 << 22
		}
		if i.Writeback {
			w |= 1 << 21
		}
		if i.Op == LDR {
			w |= 1 << 20
		}
		w |= uint32(i.Rn&0xf) << 16
		w |= uint32(i.Rd&0xf) << 12
		if i.HasImm {
			if i.Imm > 0xfff {
				return 0, fmt.Errorf("arm: %s offset %d exceeds 12 bits", i.Op, i.Imm)
			}
			w |= i.Imm
		} else {
			w |= uint32(i.ShiftAmt&0x1f) << 7
			w |= uint32(i.Shift) << 5
			w |= uint32(i.Rm & 0xf)
		}
		return w, nil
	case LDRH, STRH, LDRSB, LDRSH:
		// Halfword / signed transfers: cond 000 P U I W L Rn Rd
		// offH 1 S H 1 offL.
		if i.Pre {
			w |= 1 << 24
		}
		if i.Up {
			w |= 1 << 23
		}
		if i.Writeback {
			w |= 1 << 21
		}
		if i.Op != STRH {
			w |= 1 << 20
		}
		w |= uint32(i.Rn&0xf) << 16
		w |= uint32(i.Rd&0xf) << 12
		w |= 1<<7 | 1<<4
		switch i.Op {
		case LDRH, STRH:
			w |= 1 << 5 // H
		case LDRSB:
			w |= 1 << 6 // S
		case LDRSH:
			w |= 1<<6 | 1<<5
		}
		if i.HasImm {
			if i.Imm > 0xff {
				return 0, fmt.Errorf("arm: %s offset %d exceeds 8 bits", i.Op, i.Imm)
			}
			w |= 1 << 22
			w |= (i.Imm & 0xf0) << 4
			w |= i.Imm & 0xf
		} else {
			w |= uint32(i.Rm & 0xf)
		}
		return w, nil
	case LDM, STM:
		w |= 0x4 << 25
		if i.Pre {
			w |= 1 << 24
		}
		if i.Up {
			w |= 1 << 23
		}
		if i.Writeback {
			w |= 1 << 21
		}
		if i.Op == LDM {
			w |= 1 << 20
		}
		w |= uint32(i.Rn&0xf) << 16
		w |= uint32(i.RegList)
		return w, nil
	case B, BL:
		w |= 0x5 << 25
		if i.Op == BL {
			w |= 1 << 24
		}
		if i.Offset%4 != 0 {
			return 0, fmt.Errorf("arm: branch offset %d not word aligned", i.Offset)
		}
		w |= uint32(i.Offset>>2) & 0xffffff
		return w, nil
	case SWI:
		w |= 0xf << 24
		w |= i.Imm & 0xffffff
		return w, nil
	default: // data processing
		if i.Op > MVN {
			return 0, fmt.Errorf("arm: cannot encode op %s", i.Op)
		}
		w |= uint32(i.Op) << 21
		if i.SetFlags || i.Op == TST || i.Op == TEQ || i.Op == CMP || i.Op == CMN {
			w |= 1 << 20
		}
		w |= uint32(i.Rn&0xf) << 16
		w |= uint32(i.Rd&0xf) << 12
		if i.HasImm {
			field, ok := EncodeImm(i.Imm)
			if !ok {
				return 0, fmt.Errorf("arm: immediate %#x not encodable", i.Imm)
			}
			w |= 1 << 25
			w |= field
		} else if i.HasShiftReg {
			w |= uint32(i.Rs&0xf) << 8
			w |= uint32(i.Shift) << 5
			w |= 1 << 4
			w |= uint32(i.Rm & 0xf)
		} else {
			w |= uint32(i.ShiftAmt&0x1f) << 7
			w |= uint32(i.Shift) << 5
			w |= uint32(i.Rm & 0xf)
		}
		return w, nil
	}
}

// Decode interprets a 32-bit word as an instruction of the subset.
func Decode(w uint32) (Instr, error) {
	i := Instr{Raw: w, Cond: Cond(w >> 28)}
	if i.Cond == NV {
		return i, fmt.Errorf("arm: decode %#08x: NV condition is reserved", w)
	}
	switch {
	case w>>25&0x7 == 0x5: // branch
		i.Op = B
		if w>>24&1 == 1 {
			i.Op = BL
		}
		off := int32(w&0xffffff) << 8 >> 6 // sign-extend 24 bits, <<2
		i.Offset = off
		return i, nil
	case w>>24&0xf == 0xf: // swi
		i.Op = SWI
		i.Imm = w & 0xffffff
		i.HasImm = true
		return i, nil
	case w>>22&0x3f == 0 && w>>4&0xf == 0x9: // multiply
		i.Op = MUL
		if w>>21&1 == 1 {
			i.Op = MLA
		}
		i.SetFlags = w>>20&1 == 1
		i.Rd = int(w >> 16 & 0xf)
		i.Rn = int(w >> 12 & 0xf)
		i.Rs = int(w >> 8 & 0xf)
		i.Rm = int(w & 0xf)
		return i, nil
	case w>>26&0x3 == 0x1: // single data transfer
		i.Op = STR
		if w>>20&1 == 1 {
			i.Op = LDR
		}
		i.Pre = w>>24&1 == 1
		i.Up = w>>23&1 == 1
		i.Byte = w>>22&1 == 1
		i.Writeback = w>>21&1 == 1
		i.Rn = int(w >> 16 & 0xf)
		i.Rd = int(w >> 12 & 0xf)
		if w>>25&1 == 0 {
			i.HasImm = true
			i.Imm = w & 0xfff
		} else {
			if w>>4&1 == 1 {
				return i, fmt.Errorf("arm: decode %#08x: register-shift memory offsets unsupported", w)
			}
			i.Rm = int(w & 0xf)
			i.Shift = Shift(w >> 5 & 0x3)
			i.ShiftAmt = int(w >> 7 & 0x1f)
		}
		return i, nil
	case w>>25&0x7 == 0x4: // block data transfer
		i.Op = STM
		if w>>20&1 == 1 {
			i.Op = LDM
		}
		i.Pre = w>>24&1 == 1
		i.Up = w>>23&1 == 1
		i.Writeback = w>>21&1 == 1
		i.Rn = int(w >> 16 & 0xf)
		i.RegList = uint16(w & 0xffff)
		return i, nil
	case w>>26&0x3 == 0: // data processing
		i.Op = Op(w >> 21 & 0xf)
		i.SetFlags = w>>20&1 == 1
		i.Rn = int(w >> 16 & 0xf)
		i.Rd = int(w >> 12 & 0xf)
		if w>>25&1 == 1 {
			i.HasImm = true
			i.Imm = DecodeImm(w & 0xfff)
		} else if w>>4&1 == 1 {
			if w>>7&1 == 1 {
				// Halfword / signed transfer.
				sh := w >> 5 & 0x3
				if sh == 0 {
					return i, fmt.Errorf("arm: decode %#08x: SWP/extension space unsupported", w)
				}
				load := w>>20&1 == 1
				switch {
				case sh == 1 && load:
					i.Op = LDRH
				case sh == 1:
					i.Op = STRH
				case sh == 2 && load:
					i.Op = LDRSB
				case sh == 3 && load:
					i.Op = LDRSH
				default:
					return i, fmt.Errorf("arm: decode %#08x: signed store is unpredictable", w)
				}
				i.SetFlags = false
				i.Pre = w>>24&1 == 1
				i.Up = w>>23&1 == 1
				i.Writeback = w>>21&1 == 1
				if w>>22&1 == 1 {
					i.HasImm = true
					i.Imm = w>>4&0xf0 | w&0xf
				} else {
					i.Rm = int(w & 0xf)
				}
				return i, nil
			}
			i.HasShiftReg = true
			i.Rs = int(w >> 8 & 0xf)
			i.Shift = Shift(w >> 5 & 0x3)
			i.Rm = int(w & 0xf)
		} else {
			i.Shift = Shift(w >> 5 & 0x3)
			i.ShiftAmt = int(w >> 7 & 0x1f)
			i.Rm = int(w & 0xf)
		}
		switch i.Op {
		case TST, TEQ, CMP, CMN:
			if !i.SetFlags {
				return i, fmt.Errorf("arm: decode %#08x: comparison without S bit (PSR transfer unsupported)", w)
			}
		}
		return i, nil
	}
	return i, fmt.Errorf("arm: decode %#08x: unsupported encoding", w)
}
