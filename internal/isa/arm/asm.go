package arm

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled unit: a flat word image plus its symbol
// table. Programs are position-dependent and assembled at a fixed
// origin.
type Program struct {
	// Org is the load address of the first word.
	Org uint32
	// Words is the binary image.
	Words []uint32
	// Labels maps symbol names to addresses.
	Labels map[string]uint32
	// Entry is the start address: the `_start` label when present,
	// otherwise Org.
	Entry uint32
}

// Size returns the image size in bytes.
func (p *Program) Size() uint32 { return uint32(len(p.Words) * 4) }

// Assemble translates assembly source into a program loaded at
// origin 0. See AssembleAt for the accepted syntax.
func Assemble(src string) (*Program, error) { return AssembleAt(src, 0) }

// AssembleAt runs the two-pass assembler with the given origin. The
// syntax follows ARM convention:
//
//	label:  add{cond}{s} rd, rn, <op2>   ; comment
//	        mov r0, #imm
//	        add r1, r2, r3, lsl #2
//	        mul rd, rm, rs / mla rd, rm, rs, rn
//	        ldr{b} rd, [rn], [rn, #off], [rn, #off]!, [rn], #off,
//	                  [rn, rm, lsl #n]
//	        ldrh/strh/ldrsb/ldrsh rd, [rn, #off] etc. (8-bit offsets,
//	                  no shifted register offsets)
//	        ldm/stm{ia,ib,da,db} rn{!}, {r0-r3, lr}
//	        push {..} / pop {..}         ; sp-based aliases
//	        b{cond} label / bl label
//	        swi #n / nop
//	        ldr rd, =label               ; literal-pool load
//	        .word v, v, ... / .space n / .global name
//
// Literal-pool entries are emitted after the last statement.
//
// Comments start with ';' or '@'. Register aliases sp, lr and pc are
// accepted.
func AssembleAt(src string, org uint32) (*Program, error) {
	a := &assembler{org: org, labels: make(map[string]uint32)}
	if err := a.pass(src, 1); err != nil {
		return nil, err
	}
	a.placeLiterals()
	if err := a.pass(src, 2); err != nil {
		return nil, err
	}
	if err := a.emitLiterals(); err != nil {
		return nil, err
	}
	p := &Program{Org: org, Words: a.words, Labels: a.labels, Entry: org}
	if e, ok := a.labels["_start"]; ok {
		p.Entry = e
	}
	return p, nil
}

type assembler struct {
	org    uint32
	pc     uint32 // current address during a pass
	words  []uint32
	labels map[string]uint32
	// literal pool for "ldr rX, =sym" loads, emitted after the code.
	litSyms []string // symbol (or #value) per literal
	litBase uint32
	pass2   bool
}

func (a *assembler) pass(src string, n int) error {
	a.pc = a.org
	a.pass2 = n == 2
	a.words = a.words[:0]
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";@"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return fmt.Errorf("arm asm: line %d: bad label %q", lineNo+1, label)
			}
			if !a.pass2 {
				if _, dup := a.labels[label]; dup {
					return fmt.Errorf("arm asm: line %d: duplicate label %q", lineNo+1, label)
				}
				a.labels[label] = a.pc
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := a.statement(line); err != nil {
			return fmt.Errorf("arm asm: line %d: %w", lineNo+1, err)
		}
		if a.pc-a.org > maxImageBytes {
			return fmt.Errorf("arm asm: line %d: image exceeds %d bytes", lineNo+1, maxImageBytes)
		}
	}
	return nil
}

// maxImageBytes bounds the assembled image. Sources arrive from
// untrusted specs, and a single `.space` line can otherwise demand
// gigabytes; each statement adds at most maxImageBytes, and the
// per-line check fires before uint32 address arithmetic can wrap.
const maxImageBytes = 16 << 20

func (a *assembler) emit(w uint32) {
	if a.pass2 {
		a.words = append(a.words, w)
	}
	a.pc += 4
}

func (a *assembler) placeLiterals() {
	a.litBase = a.pc
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) statement(line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	rest = strings.TrimSpace(rest)

	switch mnemonic {
	case ".word":
		for _, f := range splitOperands(rest) {
			v, err := a.value(f)
			if err != nil {
				return err
			}
			a.emit(v)
		}
		return nil
	case ".space":
		n, err := a.value(rest)
		if err != nil {
			return err
		}
		if n%4 != 0 {
			return fmt.Errorf(".space %d not a word multiple", n)
		}
		if n > maxImageBytes {
			return fmt.Errorf(".space %d exceeds the %d-byte image limit", n, maxImageBytes)
		}
		for k := uint32(0); k < n/4; k++ {
			a.emit(0)
		}
		return nil
	case ".global", ".globl", ".text", ".align":
		return nil // accepted and ignored
	case "nop":
		w, _ := Encode(Instr{Cond: AL, Op: MOV, Rd: 0, Rm: 0})
		a.emit(w)
		return nil
	case "push":
		return a.block(Instr{Op: STM, Pre: true, Up: false, Writeback: true, Rn: SP, Cond: AL}, rest)
	case "pop":
		return a.block(Instr{Op: LDM, Pre: false, Up: true, Writeback: true, Rn: SP, Cond: AL}, rest)
	}

	ins, err := parseMnemonic(mnemonic)
	if err != nil {
		return err
	}
	return a.operands(ins, rest)
}

// mnemonicOps lists op names longest-first so "bl" is tried before
// "b" and "ldm" before "ldr" prefixes can't collide.
var mnemonicOps = []struct {
	name string
	op   Op
}{
	{"ldmia", LDM}, {"ldmib", LDM}, {"ldmda", LDM}, {"ldmdb", LDM},
	{"stmia", STM}, {"stmib", STM}, {"stmda", STM}, {"stmdb", STM},
	{"and", AND}, {"eor", EOR}, {"sub", SUB}, {"rsb", RSB}, {"add", ADD},
	{"adc", ADC}, {"sbc", SBC}, {"rsc", RSC}, {"tst", TST}, {"teq", TEQ},
	{"cmp", CMP}, {"cmn", CMN}, {"orr", ORR}, {"mov", MOV}, {"bic", BIC},
	{"mvn", MVN}, {"mul", MUL}, {"mla", MLA}, {"ldr", LDR}, {"str", STR},
	{"swi", SWI}, {"bl", BL}, {"b", B},
}

func parseMnemonic(m string) (Instr, error) {
	for _, cand := range mnemonicOps {
		if !strings.HasPrefix(m, cand.name) {
			continue
		}
		rest := m[len(cand.name):]
		ins := Instr{Op: cand.op, Cond: AL, Up: true, Pre: true}
		switch {
		case cand.op == LDM || cand.op == STM:
			mode := cand.name[3:]
			ins.Pre = mode == "ib" || mode == "db"
			ins.Up = mode == "ia" || mode == "ib"
		}
		// Optional condition.
		if len(rest) >= 2 {
			if c, ok := condByName(rest[:2]); ok {
				ins.Cond = c
				rest = rest[2:]
			}
		}
		// Optional flags: S for data processing and multiplies; B, H,
		// SB and SH width suffixes for single transfers.
		ok := true
		switch {
		case cand.op == LDR || cand.op == STR:
			// Accept the UAL order too (width suffix before the
			// condition, e.g. "ldrheq").
			if len(rest) >= 3 && ins.Cond == AL {
				if c, isCond := condByName(rest[len(rest)-2:]); isCond {
					ins.Cond = c
					rest = rest[:len(rest)-2]
				}
			}
			switch rest {
			case "":
			case "b":
				ins.Byte = true
			case "h":
				if cand.op == LDR {
					ins.Op = LDRH
				} else {
					ins.Op = STRH
				}
			case "sb":
				if cand.op != LDR {
					ok = false
				}
				ins.Op = LDRSB
			case "sh":
				if cand.op != LDR {
					ok = false
				}
				ins.Op = LDRSH
			default:
				ok = false
			}
		default:
			for _, r := range rest {
				switch r {
				case 's':
					if cand.op <= MVN || cand.op == MUL || cand.op == MLA {
						ins.SetFlags = true
					} else {
						ok = false
					}
				default:
					ok = false
				}
				if !ok {
					break
				}
			}
		}
		if ok {
			return ins, nil
		}
	}
	return Instr{}, fmt.Errorf("unknown mnemonic %q", m)
}

func condByName(s string) (Cond, bool) {
	for i, n := range condNames {
		if n == s && n != "" {
			return Cond(i), true
		}
	}
	return AL, false
}

var regAliases = map[string]int{"sp": SP, "lr": LR, "pc": PC, "fp": 11, "ip": 12, "sl": 10}

func parseReg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "r") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n <= 15 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// value evaluates a numeric literal or a label reference.
func (a *assembler) value(s string) (uint32, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "#"))
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	if v, err := strconv.ParseUint(s, 0, 32); err == nil {
		if neg {
			return uint32(-int32(v)), nil
		}
		return uint32(v), nil
	}
	if addr, ok := a.labels[s]; ok {
		return addr, nil
	}
	if !a.pass2 {
		return 0, nil // forward reference, resolved on pass 2
	}
	return 0, fmt.Errorf("undefined symbol %q", s)
}

// splitOperands splits on commas that are not inside brackets or
// braces.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[', '{':
			depth++
		case ']', '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

func (a *assembler) operands(ins Instr, rest string) error {
	ops := splitOperands(rest)
	switch ins.Op {
	case B, BL:
		if len(ops) != 1 {
			return fmt.Errorf("%s takes one target", ins.Op)
		}
		target, err := a.value(ops[0])
		if err != nil {
			return err
		}
		ins.Offset = int32(target) - int32(a.pc) - 8
		w, err := Encode(ins)
		if err != nil {
			return err
		}
		a.emit(w)
		return nil
	case SWI:
		if len(ops) != 1 {
			return fmt.Errorf("swi takes one operand")
		}
		v, err := a.value(ops[0])
		if err != nil {
			return err
		}
		ins.Imm, ins.HasImm = v, true
		w, err := Encode(ins)
		if err != nil {
			return err
		}
		a.emit(w)
		return nil
	case MUL, MLA:
		want := 3
		if ins.Op == MLA {
			want = 4
		}
		if len(ops) != want {
			return fmt.Errorf("%s takes %d registers", ins.Op, want)
		}
		var err error
		if ins.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		if ins.Rm, err = parseReg(ops[1]); err != nil {
			return err
		}
		if ins.Rs, err = parseReg(ops[2]); err != nil {
			return err
		}
		if ins.Op == MLA {
			if ins.Rn, err = parseReg(ops[3]); err != nil {
				return err
			}
		}
		w, err := Encode(ins)
		if err != nil {
			return err
		}
		a.emit(w)
		return nil
	case LDR, STR, LDRH, STRH, LDRSB, LDRSH:
		return a.memOperands(ins, ops)
	case LDM, STM:
		if len(ops) != 2 {
			return fmt.Errorf("%s takes base and register list", ins.Op)
		}
		base := ops[0]
		if strings.HasSuffix(base, "!") {
			ins.Writeback = true
			base = strings.TrimSuffix(base, "!")
		}
		var err error
		if ins.Rn, err = parseReg(base); err != nil {
			return err
		}
		return a.block(ins, ops[1])
	}
	// Data processing.
	var err error
	switch ins.Op {
	case MOV, MVN:
		if len(ops) < 2 {
			return fmt.Errorf("%s takes rd and operand2", ins.Op)
		}
		if ins.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		return a.op2(ins, ops[1:])
	case CMP, CMN, TST, TEQ:
		if len(ops) < 2 {
			return fmt.Errorf("%s takes rn and operand2", ins.Op)
		}
		if ins.Rn, err = parseReg(ops[0]); err != nil {
			return err
		}
		ins.SetFlags = true
		return a.op2(ins, ops[1:])
	default:
		if len(ops) < 3 {
			return fmt.Errorf("%s takes rd, rn and operand2", ins.Op)
		}
		if ins.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		if ins.Rn, err = parseReg(ops[1]); err != nil {
			return err
		}
		return a.op2(ins, ops[2:])
	}
}

// op2 parses the data-processing operand 2 (immediate or register
// with optional shift) from the remaining comma-split fields.
func (a *assembler) op2(ins Instr, ops []string) error {
	if strings.HasPrefix(ops[0], "#") || strings.HasPrefix(ops[0], "=") {
		v, err := a.value(strings.TrimPrefix(ops[0], "="))
		if err != nil {
			return err
		}
		ins.HasImm, ins.Imm = true, v
		if len(ops) != 1 {
			return fmt.Errorf("immediate operand2 takes no shift")
		}
		w, err := Encode(ins)
		if err != nil {
			return err
		}
		a.emit(w)
		return nil
	}
	var err error
	if ins.Rm, err = parseReg(ops[0]); err != nil {
		return err
	}
	if len(ops) > 1 {
		if err := parseShift(&ins, ops[1]); err != nil {
			return err
		}
	}
	w, err := Encode(ins)
	if err != nil {
		return err
	}
	a.emit(w)
	return nil
}

func parseShift(ins *Instr, s string) error {
	f := strings.Fields(strings.ToLower(s))
	if len(f) == 1 && f[0] == "rrx" {
		// Rotate-right-extended: encoded as ror #0.
		ins.Shift = ROR
		ins.ShiftAmt = 0
		return nil
	}
	if len(f) != 2 {
		return fmt.Errorf("bad shift %q", s)
	}
	var kind Shift
	switch f[0] {
	case "lsl":
		kind = LSL
	case "lsr":
		kind = LSR
	case "asr":
		kind = ASR
	case "ror":
		kind = ROR
	default:
		return fmt.Errorf("bad shift kind %q", f[0])
	}
	ins.Shift = kind
	if strings.HasPrefix(f[1], "#") {
		n, err := strconv.Atoi(strings.TrimPrefix(f[1], "#"))
		if err != nil || n < 0 || n > 32 {
			return fmt.Errorf("bad shift amount %q", f[1])
		}
		ins.ShiftAmt = n & 31
		return nil
	}
	r, err := parseReg(f[1])
	if err != nil {
		return err
	}
	ins.HasShiftReg = true
	ins.Rs = r
	return nil
}

func (a *assembler) memOperands(ins Instr, ops []string) error {
	if len(ops) < 2 {
		return fmt.Errorf("%s takes rd and an address", ins.Op)
	}
	var err error
	if ins.Rd, err = parseReg(ops[0]); err != nil {
		return err
	}
	addr := ops[1]
	// Literal-pool load: ldr rX, =sym
	if strings.HasPrefix(addr, "=") {
		if ins.Op != LDR || ins.Byte {
			return fmt.Errorf("literal loads require plain ldr")
		}
		return a.literalLoad(ins, strings.TrimPrefix(addr, "="))
	}
	if !strings.HasPrefix(addr, "[") {
		return fmt.Errorf("bad address %q", addr)
	}
	post := len(ops) == 3
	if post { // [rn], #off
		if !strings.HasSuffix(addr, "]") {
			return fmt.Errorf("bad post-indexed address")
		}
		inner := strings.TrimSuffix(strings.TrimPrefix(addr, "["), "]")
		if ins.Rn, err = parseReg(inner); err != nil {
			return err
		}
		ins.Pre = false
		return a.memOffset(ins, ops[2])
	}
	if strings.HasSuffix(addr, "!") {
		ins.Writeback = true
		addr = strings.TrimSuffix(addr, "!")
	}
	if !strings.HasSuffix(addr, "]") {
		return fmt.Errorf("bad address %q", addr)
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(addr, "["), "]")
	parts := splitOperands(inner)
	if len(parts) == 0 {
		return fmt.Errorf("empty address %q", addr)
	}
	if ins.Rn, err = parseReg(parts[0]); err != nil {
		return err
	}
	ins.Pre = true
	switch len(parts) {
	case 1:
		ins.HasImm, ins.Imm = true, 0
		w, err := Encode(ins)
		if err != nil {
			return err
		}
		a.emit(w)
		return nil
	case 2:
		return a.memOffset(ins, parts[1])
	case 3:
		if ins.Op != LDR && ins.Op != STR {
			return fmt.Errorf("%s offsets cannot be shifted", ins.Op)
		}
		if ins.Rm, err = parseReg(parts[1]); err != nil {
			return err
		}
		if err := parseShift(&ins, parts[2]); err != nil {
			return err
		}
		if ins.HasShiftReg {
			return fmt.Errorf("memory offsets cannot use register shifts")
		}
		w, err := Encode(ins)
		if err != nil {
			return err
		}
		a.emit(w)
		return nil
	}
	return fmt.Errorf("bad address %q", addr)
}

func (a *assembler) memOffset(ins Instr, op string) error {
	op = strings.TrimSpace(op)
	if strings.HasPrefix(op, "#") {
		v, err := a.value(op)
		if err != nil {
			return err
		}
		if int32(v) < 0 {
			ins.Up = false
			v = uint32(-int32(v))
		}
		ins.HasImm, ins.Imm = true, v
		w, err := Encode(ins)
		if err != nil {
			return err
		}
		a.emit(w)
		return nil
	}
	neg := strings.HasPrefix(op, "-")
	op = strings.TrimPrefix(op, "-")
	r, err := parseReg(op)
	if err != nil {
		return err
	}
	ins.Rm = r
	ins.Up = !neg
	w, err := Encode(ins)
	if err != nil {
		return err
	}
	a.emit(w)
	return nil
}

func (a *assembler) block(ins Instr, list string) error {
	list = strings.TrimSpace(list)
	if !strings.HasPrefix(list, "{") || !strings.HasSuffix(list, "}") {
		return fmt.Errorf("bad register list %q", list)
	}
	for _, f := range strings.Split(strings.TrimSuffix(strings.TrimPrefix(list, "{"), "}"), ",") {
		f = strings.TrimSpace(f)
		if lo, hi, ok := strings.Cut(f, "-"); ok {
			rlo, err := parseReg(lo)
			if err != nil {
				return err
			}
			rhi, err := parseReg(hi)
			if err != nil {
				return err
			}
			if rhi < rlo {
				return fmt.Errorf("bad register range %q", f)
			}
			for r := rlo; r <= rhi; r++ {
				ins.RegList |= 1 << r
			}
		} else {
			r, err := parseReg(f)
			if err != nil {
				return err
			}
			ins.RegList |= 1 << r
		}
	}
	w, err := Encode(ins)
	if err != nil {
		return err
	}
	a.emit(w)
	return nil
}

// literalLoad emits a PC-relative LDR against the literal pool.
func (a *assembler) literalLoad(ins Instr, sym string) error {
	idx, seen := -1, false
	for i, s := range a.litSyms {
		if s == sym {
			idx, seen = i, true
			break
		}
	}
	if !seen {
		idx = len(a.litSyms)
		a.litSyms = append(a.litSyms, sym)
	}
	if !a.pass2 {
		a.pc += 4
		return nil
	}
	litAddr := a.litBase + uint32(4*idx)
	delta := int32(litAddr) - int32(a.pc) - 8
	ins.Rn = PC
	ins.Pre = true
	ins.HasImm = true
	if delta < 0 {
		ins.Up = false
		ins.Imm = uint32(-delta)
	} else {
		ins.Imm = uint32(delta)
	}
	w, err := Encode(ins)
	if err != nil {
		return err
	}
	a.emit(w)
	return nil
}

// emitLiterals appends the literal pool after the last statement.
func (a *assembler) emitLiterals() error {
	for _, sym := range a.litSyms {
		v, err := a.value(sym)
		if err != nil {
			return err
		}
		a.emit(v)
	}
	return nil
}
