package ppc

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled unit: a flat word image plus its symbol
// table.
type Program struct {
	// Org is the load address of the first word.
	Org uint32
	// Words is the binary image.
	Words []uint32
	// Labels maps symbol names to addresses.
	Labels map[string]uint32
	// Entry is the `_start` label when present, otherwise Org.
	Entry uint32
}

// Size returns the image size in bytes.
func (p *Program) Size() uint32 { return uint32(len(p.Words) * 4) }

// Assemble translates assembly source into a program loaded at
// origin 0. See AssembleAt for the accepted syntax.
func Assemble(src string) (*Program, error) { return AssembleAt(src, 0) }

// AssembleAt runs the two-pass assembler. The syntax follows PowerPC
// convention:
//
//	label:  add{.} rD, rA, rB       ; comment (also # comments)
//	        addi rD, rA, simm / li rD, simm / lis rD, simm
//	        sub rD, rA, rB          ; alias for subf rD, rB, rA
//	        mullw/divw/divwu rD, rA, rB / mulli rD, rA, simm
//	        and/or/xor{.} rA, rS, rB / mr rD, rS / nop
//	        andi./ori/oris/xori rA, rS, uimm
//	        rlwinm{.} rA, rS, sh, mb, me / slwi / srwi rA, rS, n
//	        slw/srw/sraw{.} rA, rS, rB / srawi rA, rS, n
//	        cmpw{i}/cmplw{i} [crN,] rA, <rB|imm>
//	        lwz/lbz/lhz/lha/stw/stb/sth/lwzu/stwu rD, d(rA)
//	        lwzx/stwx/lbzx/stbx/lhzx/lhax/sthx rD, rA, rB
//	        extsb{.}/extsh{.} rA, rS
//	        b/bl label, blr, bctr, bctrl,
//	        beq/bne/blt/ble/bgt/bge/bdnz label
//	        mflr/mtlr/mfctr/mtctr/mfxer/mtxer rX
//	        sc
//	        .word v, ... / .space n
func AssembleAt(src string, org uint32) (*Program, error) {
	a := &passembler{org: org, labels: make(map[string]uint32)}
	if err := a.pass(src, false); err != nil {
		return nil, err
	}
	if err := a.pass(src, true); err != nil {
		return nil, err
	}
	p := &Program{Org: org, Words: a.words, Labels: a.labels, Entry: org}
	if e, ok := a.labels["_start"]; ok {
		p.Entry = e
	}
	return p, nil
}

type passembler struct {
	org    uint32
	pc     uint32
	words  []uint32
	labels map[string]uint32
	pass2  bool
}

func (a *passembler) pass(src string, second bool) error {
	a.pc = a.org
	a.pass2 = second
	a.words = a.words[:0]
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t") {
				return fmt.Errorf("ppc asm: line %d: bad label %q", lineNo+1, label)
			}
			if !a.pass2 {
				if _, dup := a.labels[label]; dup {
					return fmt.Errorf("ppc asm: line %d: duplicate label %q", lineNo+1, label)
				}
				a.labels[label] = a.pc
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := a.statement(line); err != nil {
			return fmt.Errorf("ppc asm: line %d: %w", lineNo+1, err)
		}
	}
	return nil
}

func (a *passembler) emit(w uint32) {
	if a.pass2 {
		a.words = append(a.words, w)
	}
	a.pc += 4
}

func (a *passembler) emitIns(ins Instr) error {
	w, err := Encode(ins)
	if err != nil {
		return err
	}
	a.emit(w)
	return nil
}

func parseReg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "sp" {
		return 1, nil
	}
	if strings.HasPrefix(s, "r") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n <= 31 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseCRF(s string) (int, bool) {
	s = strings.ToLower(strings.TrimSpace(s))
	if strings.HasPrefix(s, "cr") {
		if n, err := strconv.Atoi(s[2:]); err == nil && n >= 0 && n <= 7 {
			return n, true
		}
	}
	return 0, false
}

func (a *passembler) value(s string) (uint32, error) {
	s = strings.TrimSpace(s)
	neg := strings.HasPrefix(s, "-")
	s = strings.TrimPrefix(s, "-")
	if v, err := strconv.ParseUint(s, 0, 32); err == nil {
		if neg {
			return uint32(-int32(v)), nil
		}
		return uint32(v), nil
	}
	if addr, ok := a.labels[s]; ok {
		return addr, nil
	}
	if !a.pass2 {
		return 0, nil
	}
	return 0, fmt.Errorf("undefined symbol %q", s)
}

func (a *passembler) sval(s string) (int32, error) {
	v, err := a.value(s)
	return int32(v), err
}

// condBranches maps mnemonics to BO/BI for CR field 0.
var condBranches = map[string][2]int{
	"beq":  {12, CREQ},
	"bne":  {4, CREQ},
	"blt":  {12, CRLT},
	"bge":  {4, CRLT},
	"bgt":  {12, CRGT},
	"ble":  {4, CRGT},
	"bdnz": {16, 0},
}

func (a *passembler) statement(line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	rest = strings.TrimSpace(rest)
	ops := splitOperands(rest)

	rc := strings.HasSuffix(mnemonic, ".") && mnemonic != "andi."
	base := strings.TrimSuffix(mnemonic, ".")
	if mnemonic == "andi." {
		base = "andi."
	}

	reg3 := func(op Op) error {
		if len(ops) != 3 {
			return fmt.Errorf("%s takes 3 operands", mnemonic)
		}
		r0, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		r1, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		r2, err := parseReg(ops[2])
		if err != nil {
			return err
		}
		return a.emitIns(Instr{Op: op, RT: r0, RA: r1, RB: r2, Rc: rc})
	}
	// Logical register forms write RA and read RS: assembler order is
	// "op rA, rS, rB" which maps to fields RT=rS? No: RT field holds
	// RS. We parse destination first, so swap.
	logical3 := func(op Op) error {
		if len(ops) != 3 {
			return fmt.Errorf("%s takes 3 operands", mnemonic)
		}
		rA, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rS, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		rB, err := parseReg(ops[2])
		if err != nil {
			return err
		}
		return a.emitIns(Instr{Op: op, RT: rS, RA: rA, RB: rB, Rc: rc})
	}
	immArith := func(op Op) error {
		if len(ops) != 3 {
			return fmt.Errorf("%s takes 3 operands", mnemonic)
		}
		rD, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rA, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		si, err := a.sval(ops[2])
		if err != nil {
			return err
		}
		if si > 0x7fff || si < -0x8000 {
			return fmt.Errorf("%s immediate %d out of range", mnemonic, si)
		}
		return a.emitIns(Instr{Op: op, RT: rD, RA: rA, SI: si})
	}
	immLogical := func(op Op) error {
		if len(ops) != 3 {
			return fmt.Errorf("%s takes 3 operands", mnemonic)
		}
		rA, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rS, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		ui, err := a.value(ops[2])
		if err != nil {
			return err
		}
		if ui > 0xffff {
			return fmt.Errorf("%s immediate %#x out of range", mnemonic, ui)
		}
		return a.emitIns(Instr{Op: op, RT: rS, RA: rA, UI: ui})
	}
	dmem := func(op Op) error {
		if len(ops) != 2 {
			return fmt.Errorf("%s takes rD, d(rA)", mnemonic)
		}
		rD, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		open := strings.Index(ops[1], "(")
		if open < 0 || !strings.HasSuffix(ops[1], ")") {
			return fmt.Errorf("bad address %q", ops[1])
		}
		disp := strings.TrimSpace(ops[1][:open])
		if disp == "" {
			disp = "0"
		}
		si, err := a.sval(disp)
		if err != nil {
			return err
		}
		rA, err := parseReg(strings.TrimSuffix(ops[1][open+1:], ")"))
		if err != nil {
			return err
		}
		return a.emitIns(Instr{Op: op, RT: rD, RA: rA, SI: si})
	}
	branchTo := func(lk bool) error {
		if len(ops) != 1 {
			return fmt.Errorf("%s takes a target", mnemonic)
		}
		target, err := a.value(ops[0])
		if err != nil {
			return err
		}
		return a.emitIns(Instr{Op: B, LI: int32(target) - int32(a.pc), LK: lk})
	}
	sprMove := func(op Op, spr int) error {
		if len(ops) != 1 {
			return fmt.Errorf("%s takes one register", mnemonic)
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		return a.emitIns(Instr{Op: op, RT: r, SPR: spr})
	}

	switch base {
	case ".word":
		for _, f := range ops {
			v, err := a.value(f)
			if err != nil {
				return err
			}
			a.emit(v)
		}
		return nil
	case ".space":
		n, err := a.value(rest)
		if err != nil {
			return err
		}
		if n%4 != 0 {
			return fmt.Errorf(".space %d not a word multiple", n)
		}
		for k := uint32(0); k < n/4; k++ {
			a.emit(0)
		}
		return nil
	case ".global", ".globl", ".text", ".align":
		return nil
	case "nop":
		return a.emitIns(Instr{Op: ORI, RT: 0, RA: 0, UI: 0})
	case "li":
		if len(ops) != 2 {
			return fmt.Errorf("li takes rD, simm")
		}
		rD, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		si, err := a.sval(ops[1])
		if err != nil {
			return err
		}
		return a.emitIns(Instr{Op: ADDI, RT: rD, RA: 0, SI: si})
	case "lis":
		if len(ops) != 2 {
			return fmt.Errorf("lis takes rD, simm")
		}
		rD, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		si, err := a.sval(ops[1])
		if err != nil {
			return err
		}
		return a.emitIns(Instr{Op: ADDIS, RT: rD, RA: 0, SI: si})
	case "mr":
		if len(ops) != 2 {
			return fmt.Errorf("mr takes rD, rS")
		}
		rD, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rS, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		return a.emitIns(Instr{Op: OR, RT: rS, RA: rD, RB: rS, Rc: rc})
	case "addi":
		return immArith(ADDI)
	case "addis":
		return immArith(ADDIS)
	case "mulli":
		return immArith(MULLI)
	case "add":
		return reg3(ADD)
	case "subf":
		return reg3(SUBF)
	case "sub":
		// sub rD, rA, rB == subf rD, rB, rA
		if len(ops) != 3 {
			return fmt.Errorf("sub takes 3 operands")
		}
		ops[1], ops[2] = ops[2], ops[1]
		return reg3(SUBF)
	case "neg":
		if len(ops) != 2 {
			return fmt.Errorf("neg takes rD, rA")
		}
		rD, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rA, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		return a.emitIns(Instr{Op: NEG, RT: rD, RA: rA, Rc: rc})
	case "mullw":
		return reg3(MULLW)
	case "divw":
		return reg3(DIVW)
	case "divwu":
		return reg3(DIVWU)
	case "and":
		return logical3(AND)
	case "or":
		return logical3(OR)
	case "xor":
		return logical3(XOR)
	case "slw":
		return logical3(SLW)
	case "srw":
		return logical3(SRW)
	case "sraw":
		return logical3(SRAW)
	case "andi.":
		return immLogical(ANDI)
	case "ori":
		return immLogical(ORI)
	case "oris":
		return immLogical(ORIS)
	case "xori":
		return immLogical(XORI)
	case "srawi":
		if len(ops) != 3 {
			return fmt.Errorf("srawi takes rA, rS, n")
		}
		rA, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rS, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		n, err := a.value(ops[2])
		if err != nil {
			return err
		}
		return a.emitIns(Instr{Op: SRAWI, RT: rS, RA: rA, SH: int(n & 31), Rc: rc})
	case "rlwinm", "slwi", "srwi", "clrlwi":
		return a.rotate(base, ops, rc)
	case "cmpw", "cmplw", "cmpwi", "cmplwi":
		return a.compare(base, ops)
	case "b":
		return branchTo(false)
	case "bl":
		return branchTo(true)
	case "blr":
		return a.emitIns(Instr{Op: BCLR, BO: 20, BI: 0})
	case "bctr":
		return a.emitIns(Instr{Op: BCCTR, BO: 20, BI: 0})
	case "bctrl":
		return a.emitIns(Instr{Op: BCCTR, BO: 20, BI: 0, LK: true})
	case "mflr":
		return sprMove(MFSPR, SPRLR)
	case "mtlr":
		return sprMove(MTSPR, SPRLR)
	case "mfctr":
		return sprMove(MFSPR, SPRCTR)
	case "mtctr":
		return sprMove(MTSPR, SPRCTR)
	case "mfxer":
		return sprMove(MFSPR, SPRXER)
	case "mtxer":
		return sprMove(MTSPR, SPRXER)
	case "sc":
		return a.emitIns(Instr{Op: SC})
	case "lhz":
		return dmem(LHZ)
	case "lha":
		return dmem(LHA)
	case "sth":
		return dmem(STH)
	case "lhzx":
		return reg3(LHZX)
	case "lhax":
		return reg3(LHAX)
	case "sthx":
		return reg3(STHX)
	case "extsb", "extsh":
		if len(ops) != 2 {
			return fmt.Errorf("%s takes rA, rS", base)
		}
		rA, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rS, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		op := EXTSB
		if base == "extsh" {
			op = EXTSH
		}
		return a.emitIns(Instr{Op: op, RT: rS, RA: rA, Rc: rc})
	case "lwz":
		return dmem(LWZ)
	case "lwzu":
		return dmem(LWZU)
	case "lbz":
		return dmem(LBZ)
	case "stw":
		return dmem(STW)
	case "stwu":
		return dmem(STWU)
	case "stb":
		return dmem(STB)
	case "lwzx":
		return reg3(LWZX)
	case "stwx":
		return reg3(STWX)
	case "lbzx":
		return reg3(LBZX)
	case "stbx":
		return reg3(STBX)
	}

	if bobi, ok := condBranches[base]; ok {
		if len(ops) != 1 {
			return fmt.Errorf("%s takes a target", mnemonic)
		}
		target, err := a.value(ops[0])
		if err != nil {
			return err
		}
		return a.emitIns(Instr{Op: BC, BO: bobi[0], BI: bobi[1],
			BD: int32(target) - int32(a.pc)})
	}
	return fmt.Errorf("unknown mnemonic %q", mnemonic)
}

func (a *passembler) rotate(base string, ops []string, rc bool) error {
	rA, err := parseReg(ops[0])
	if err != nil {
		return err
	}
	rS, err := parseReg(ops[1])
	if err != nil {
		return err
	}
	ins := Instr{Op: RLWINM, RT: rS, RA: rA, Rc: rc}
	switch base {
	case "rlwinm":
		if len(ops) != 5 {
			return fmt.Errorf("rlwinm takes rA, rS, sh, mb, me")
		}
		sh, err1 := a.value(ops[2])
		mb, err2 := a.value(ops[3])
		me, err3 := a.value(ops[4])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad rlwinm parameters")
		}
		ins.SH, ins.MB, ins.ME = int(sh&31), int(mb&31), int(me&31)
	default:
		if len(ops) != 3 {
			return fmt.Errorf("%s takes rA, rS, n", base)
		}
		n, err := a.value(ops[2])
		if err != nil {
			return err
		}
		k := int(n & 31)
		switch base {
		case "slwi":
			ins.SH, ins.MB, ins.ME = k, 0, 31-k
		case "srwi":
			ins.SH, ins.MB, ins.ME = (32-k)&31, k, 31
		case "clrlwi":
			ins.SH, ins.MB, ins.ME = 0, k, 31
		}
	}
	return a.emitIns(ins)
}

func (a *passembler) compare(base string, ops []string) error {
	crf := 0
	if len(ops) == 3 {
		f, ok := parseCRF(ops[0])
		if !ok {
			return fmt.Errorf("%s: bad CR field %q", base, ops[0])
		}
		crf = f
		ops = ops[1:]
	}
	if len(ops) != 2 {
		return fmt.Errorf("%s takes [crN,] rA, <rB|imm>", base)
	}
	rA, err := parseReg(ops[0])
	if err != nil {
		return err
	}
	switch base {
	case "cmpw", "cmplw":
		rB, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		op := CMP
		if base == "cmplw" {
			op = CMPL
		}
		return a.emitIns(Instr{Op: op, CRF: crf, RA: rA, RB: rB})
	case "cmpwi":
		si, err := a.sval(ops[1])
		if err != nil {
			return err
		}
		return a.emitIns(Instr{Op: CMPI, CRF: crf, RA: rA, SI: si})
	default: // cmplwi
		ui, err := a.value(ops[1])
		if err != nil {
			return err
		}
		return a.emitIns(Instr{Op: CMPLI, CRF: crf, RA: rA, UI: ui})
	}
}

// splitOperands splits on top-level commas (parentheses guard the
// d(rA) form).
func splitOperands(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}
