package ppc

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

type ram []byte

func (r ram) Read32(a uint32) uint32     { return binary.BigEndian.Uint32(r[a:]) }
func (r ram) Write32(a uint32, v uint32) { binary.BigEndian.PutUint32(r[a:], v) }
func (r ram) Read16(a uint32) uint16     { return binary.BigEndian.Uint16(r[a:]) }
func (r ram) Write16(a uint32, v uint16) { binary.BigEndian.PutUint16(r[a:], v) }
func (r ram) Read8(a uint32) byte        { return r[a] }
func (r ram) Write8(a uint32, v byte)    { r[a] = v }

// load assembles src at 0 with a 64 KiB big-endian RAM, r1 (sp) at
// the top and the exit SC convention (r0=1 exits with code r3).
func load(t *testing.T, src string) *CPU {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := make(ram, 64<<10)
	for i, w := range p.Words {
		mem.Write32(uint32(i*4), w)
	}
	c := &CPU{Mem: mem}
	c.R[1] = uint32(len(mem) - 16)
	c.NextPC = p.Entry
	c.SCHandler = func(c *CPU) error {
		if c.R[0] == 1 {
			c.Halted = true
			c.ExitCode = c.R[3]
		}
		return nil
	}
	return c
}

func run(t *testing.T, src string) *CPU {
	t.Helper()
	c := load(t, src)
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("program did not halt")
	}
	return c
}

const exit = `
	li r0, 1
	sc
`

func TestGoldenEncodings(t *testing.T) {
	// Cross-checked against the PowerPC architecture manual / GNU as.
	cases := []struct {
		asm  string
		want uint32
	}{
		{"addi r3, r4, 5", 0x38640005},
		{"li r3, -1", 0x3860FFFF},
		{"lis r4, 0x1234", 0x3C801234},
		{"add r3, r4, r5", 0x7C642A14},
		{"add. r3, r4, r5", 0x7C642A15},
		{"subf r3, r4, r5", 0x7C642850},
		{"mullw r3, r4, r5", 0x7C6429D6},
		{"divw r3, r4, r5", 0x7C642BD6},
		{"or r3, r4, r5", 0x7C832B78},
		{"mr r3, r4", 0x7C832378},
		{"ori r3, r4, 0xff", 0x608300FF},
		{"andi. r3, r4, 15", 0x7083000F},
		{"rlwinm r3, r4, 2, 0, 29", 0x5483103A},
		{"slwi r3, r4, 2", 0x5483103A},
		{"srawi r3, r4, 4", 0x7C832670},
		{"cmpw r3, r4", 0x7C032000},
		{"cmpwi r3, 7", 0x2C030007},
		{"lwz r3, 8(r1)", 0x80610008},
		{"stw r3, -4(r1)", 0x9061FFFC},
		{"stwu r1, -16(r1)", 0x9421FFF0},
		{"lwzx r3, r4, r5", 0x7C64282E},
		{"blr", 0x4E800020},
		{"bctr", 0x4E800420},
		{"mflr r0", 0x7C0802A6},
		{"mtlr r0", 0x7C0803A6},
		{"mtctr r9", 0x7D2903A6},
		{"sc", 0x44000002},
		{"nop", 0x60000000},
		{"neg r3, r4", 0x7C6400D0},
	}
	for _, c := range cases {
		p, err := Assemble(c.asm)
		if err != nil {
			t.Errorf("%q: %v", c.asm, err)
			continue
		}
		if p.Words[0] != c.want {
			t.Errorf("%q = %#08x, want %#08x", c.asm, p.Words[0], c.want)
		}
	}
}

func TestGoldenBranches(t *testing.T) {
	p, err := Assemble("loop: b loop")
	if err != nil {
		t.Fatal(err)
	}
	if p.Words[0] != 0x48000000 {
		t.Fatalf("b self = %#08x, want 0x48000000", p.Words[0])
	}
	p, _ = Assemble("x: beq x")
	if p.Words[0] != 0x41820000 {
		t.Fatalf("beq self = %#08x, want 0x41820000", p.Words[0])
	}
	p, _ = Assemble("x: bne x")
	if p.Words[0] != 0x40820000 {
		t.Fatalf("bne self = %#08x, want 0x40820000", p.Words[0])
	}
	p, _ = Assemble("x: bdnz x")
	if p.Words[0] != 0x42000000 {
		t.Fatalf("bdnz self = %#08x, want 0x42000000", p.Words[0])
	}
}

func TestExecArithmetic(t *testing.T) {
	c := run(t, `
		li r3, 10
		addi r3, r3, 5
		li r4, 3
		sub r3, r3, r4      ; 12
		li r5, 4
		mullw r3, r3, r5    ; 48
		li r6, 6
		divw r3, r3, r6     ; 8
		neg r7, r6
		subf r3, r7, r3     ; r3 - (-6) = 14
	`+exit)
	if c.ExitCode != 14 {
		t.Fatalf("exit = %d, want 14", c.ExitCode)
	}
}

func TestExecLogicalAndRotate(t *testing.T) {
	c := run(t, `
		li r4, 0xf0
		ori r4, r4, 0xf     ; 0xff
		slwi r5, r4, 8      ; 0xff00
		srwi r6, r5, 4      ; 0x0ff0
		and r7, r5, r6      ; 0x0f00
		xor r8, r7, r6      ; 0x00f0
		or r3, r8, r7       ; 0x0ff0
		andi. r3, r3, 0xff0 ; 0xff0
	`+exit)
	if c.ExitCode != 0xff0 {
		t.Fatalf("exit = %#x, want 0xff0", c.ExitCode)
	}
}

func TestExecRlwinmWrappedMask(t *testing.T) {
	if got := maskMBME(0, 31); got != 0xffffffff {
		t.Fatalf("mask(0,31) = %#x", got)
	}
	if got := maskMBME(24, 7); got != 0xff0000ff {
		t.Fatalf("mask(24,7) = %#x, want 0xff0000ff", got)
	}
	if got := maskMBME(0, 0); got != 0x80000000 {
		t.Fatalf("mask(0,0) = %#x", got)
	}
}

func TestExecLoop(t *testing.T) {
	// Sum 1..10 with a bdnz loop.
	c := run(t, `
		li r3, 0
		li r4, 10
		mtctr r4
	loop:
		add r3, r3, r4
		addi r4, r4, -1
		bdnz loop
	`+exit)
	if c.ExitCode != 55 {
		t.Fatalf("sum = %d, want 55", c.ExitCode)
	}
}

func TestExecConditionalBranches(t *testing.T) {
	c := run(t, `
		li r3, 0
		li r4, 5
		cmpwi r4, 5
		bne skip1
		addi r3, r3, 1
	skip1:
		cmpwi r4, 6
		beq skip2
		addi r3, r3, 2
	skip2:
		cmpwi r4, 10
		bge skip3
		addi r3, r3, 4
	skip3:
		li r5, -3
		cmpwi r5, 0
		bgt skip4
		addi r3, r3, 8
	skip4:
		cmplwi r5, 10   ; unsigned: 0xfffffffd > 10
		ble skip5
		addi r3, r3, 16
	skip5:
	`+exit)
	if c.ExitCode != 31 {
		t.Fatalf("exit = %d, want 31", c.ExitCode)
	}
}

func TestExecRecordForms(t *testing.T) {
	c := run(t, `
		li r4, 5
		li r5, 5
		sub. r6, r4, r5   ; result 0 -> CR0 EQ
		bne bad
		li r7, -1
		add. r8, r7, r7   ; negative -> CR0 LT
		bge bad
		li r3, 7
	`+exit+`
	bad:
		li r3, 99
	`+exit)
	if c.ExitCode != 7 {
		t.Fatalf("exit = %d, want 7", c.ExitCode)
	}
}

func TestExecMemory(t *testing.T) {
	c := run(t, `
		li r4, 0x1000
		li r5, 0x1234
		stw r5, 0(r4)
		stw r5, 8(r4)
		lwz r6, 8(r4)
		stb r6, 4(r4)     ; low byte 0x34
		lbz r7, 4(r4)
		add r3, r6, r7    ; 0x1234 + 0x34
	`+exit)
	if c.ExitCode != 0x1268 {
		t.Fatalf("exit = %#x, want 0x1268", c.ExitCode)
	}
}

func TestExecIndexedAndUpdate(t *testing.T) {
	c := run(t, `
		li r4, 0x2000
		li r5, 8
		li r6, 77
		stwx r6, r4, r5    ; [0x2008] = 77
		lwzx r7, r4, r5
		li r8, 0x2000
		lwzu r9, 8(r8)     ; loads [0x2008], r8 = 0x2008
		sub r10, r8, r4    ; 8
		add r3, r7, r9     ; 154
		add r3, r3, r10    ; 162
	`+exit)
	if c.ExitCode != 162 {
		t.Fatalf("exit = %d, want 162", c.ExitCode)
	}
}

func TestExecStackFrameCalls(t *testing.T) {
	// Recursive factorial with LR save on a stwu-built stack frame.
	c := run(t, `
		li r3, 6
		bl fact
	`+exit+`
	fact:
		cmpwi r3, 1
		bgt recurse
		li r3, 1
		blr
	recurse:
		mflr r0
		stwu r1, -16(r1)
		stw r0, 12(r1)
		stw r3, 8(r1)
		addi r3, r3, -1
		bl fact
		lwz r4, 8(r1)
		mullw r3, r3, r4
		lwz r0, 12(r1)
		mtlr r0
		addi r1, r1, 16
		blr
	`)
	if c.ExitCode != 720 {
		t.Fatalf("6! = %d, want 720", c.ExitCode)
	}
}

func TestExecBctrDispatch(t *testing.T) {
	c := run(t, `
		li r4, target
		mtctr r4
		bctr
		li r3, 1      ; skipped
	`+exit+`
	target:
		li r3, 42
	`+exit)
	if c.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42", c.ExitCode)
	}
}

func TestExecRAZeroRule(t *testing.T) {
	c := run(t, `
		li r0, 123     ; r0 holds junk
		li r3, 5       ; addi r3, 0, 5 must read literal 0, not r0
		lwz r4, 0(r0)  ; wait: lwz with RA=r0 also reads literal 0
		add r3, r3, r4 ; r4 = mem[0] = first instruction word
	`+exit)
	first := uint32(0x38000000 | 123) // li r0, 123
	if c.ExitCode != 5+first {
		t.Fatalf("exit = %#x, want %#x", c.ExitCode, 5+first)
	}
}

func TestExecDivideEdgeCases(t *testing.T) {
	c := run(t, `
		li r4, 7
		li r5, 0
		divw r3, r4, r5     ; /0 -> 0 by our convention
		cmpwi r3, 0
		bne bad
		li r4, -8
		li r5, 2
		divw r3, r4, r5     ; -4
		cmpwi r3, -4
		bne bad
		li r4, -8
		li r5, 2
		divwu r3, r4, r5    ; big unsigned value
		cmplwi r3, 100
		blt bad
		li r3, 1
	`+exit+`
	bad:
		li r3, 0
	`+exit)
	if c.ExitCode != 1 {
		t.Fatalf("divide edge cases failed")
	}
}

func TestExecSrawNegative(t *testing.T) {
	c := run(t, `
		li r4, -64
		srawi r5, r4, 3   ; -8
		neg r3, r5        ; 8
	`+exit)
	if c.ExitCode != 8 {
		t.Fatalf("exit = %d, want 8", c.ExitCode)
	}
}

func TestExecErrors(t *testing.T) {
	c := load(t, "lwz r3, 2(r0)\n"+exit)
	if _, err := c.Run(10); err == nil {
		t.Error("unaligned lwz must error")
	}
	c = load(t, "sc")
	c.SCHandler = nil
	if _, err := c.Run(10); err == nil {
		t.Error("sc without handler must error")
	}
	c = run(t, exit)
	if _, err := c.Step(); err == nil {
		t.Error("step on halted CPU must error")
	}
}

func TestSrcDstRegs(t *testing.T) {
	cases := []struct {
		asm string
		src []int
		dst []int
	}{
		{"add r3, r4, r5", []int{4, 5}, []int{3}},
		{"addi r3, r4, 1", []int{4}, []int{3}},
		{"li r3, 1", nil, []int{3}},
		{"or r3, r4, r5", []int{4, 5}, []int{3}},
		{"mr r3, r4", []int{4}, []int{3}},
		{"lwz r3, 4(r4)", []int{4}, []int{3}},
		{"lwz r3, 4(r0)", nil, []int{3}},
		{"stw r3, 4(r4)", []int{4, 3}, nil},
		{"stwu r3, -16(r4)", []int{4, 3}, []int{4}},
		{"lwzu r3, 8(r4)", []int{4}, []int{3, 4}},
		{"lwzx r3, r4, r5", []int{4, 5}, []int{3}},
		{"stwx r3, r4, r5", []int{4, 5, 3}, nil},
		{"cmpw r3, r4", []int{3, 4}, nil},
		{"mtctr r9", []int{9}, nil},
		{"mflr r9", nil, []int{9}},
		{"srawi r3, r4, 2", []int{4}, []int{3}},
	}
	eq := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, c := range cases {
		p, err := Assemble(c.asm)
		if err != nil {
			t.Fatalf("%q: %v", c.asm, err)
		}
		ins, err := Decode(p.Words[0])
		if err != nil {
			t.Fatalf("%q: %v", c.asm, err)
		}
		if got := ins.SrcRegs(); !eq(got, c.src) {
			t.Errorf("%q src = %v, want %v", c.asm, got, c.src)
		}
		if got := ins.DstRegs(); !eq(got, c.dst) {
			t.Errorf("%q dst = %v, want %v", c.asm, got, c.dst)
		}
	}
}

func TestSpecialRegisterPredicates(t *testing.T) {
	get := func(asm string) Instr {
		p, err := Assemble(asm)
		if err != nil {
			t.Fatalf("%q: %v", asm, err)
		}
		ins, err := Decode(p.Words[0])
		if err != nil {
			t.Fatalf("%q: %v", asm, err)
		}
		return ins
	}
	if ins := get("blr"); !ins.ReadsLR() || ins.WritesLR() {
		t.Error("blr reads LR only")
	}
	if ins := get("bl x\nx:"); !ins.WritesLR() {
		t.Error("bl writes LR")
	}
	if ins := get("x: bdnz x"); !ins.ReadsCTR() || !ins.WritesCTR() || ins.ReadsCR() {
		t.Error("bdnz reads+writes CTR, ignores CR")
	}
	if ins := get("x: beq x"); !ins.ReadsCR() || ins.ReadsCTR() {
		t.Error("beq reads CR only")
	}
	if ins := get("cmpwi r3, 0"); !ins.WritesCR() {
		t.Error("cmpwi writes CR")
	}
	if ins := get("add. r3, r4, r5"); !ins.WritesCR() {
		t.Error("add. writes CR")
	}
	if ins := get("mtctr r3"); !ins.WritesCTR() {
		t.Error("mtctr writes CTR")
	}
	if ins := get("b x\nx:"); ins.ReadsCR() || ins.ReadsCTR() {
		t.Error("b reads nothing special")
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		asm   string
		class Class
	}{
		{"add r3, r4, r5", ClassALU},
		{"mullw r3, r4, r5", ClassMul},
		{"divw r3, r4, r5", ClassMul},
		{"lwz r3, 0(r4)", ClassLoad},
		{"stw r3, 0(r4)", ClassStore},
		{"b x\nx:", ClassBranch},
		{"blr", ClassBranch},
		{"mflr r3", ClassSys},
		{"sc", ClassSys},
	}
	for _, c := range cases {
		p, _ := Assemble(c.asm)
		ins, _ := Decode(p.Words[0])
		if ins.Class() != c.class {
			t.Errorf("%q class = %s, want %s", c.asm, ins.Class(), c.class)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	srcs := []string{
		"addi r3, r4, 5", "add r3, r4, r5", "add. r3, r4, r5",
		"or r3, r4, r5", "ori r3, r4, 255", "rlwinm r3, r4, 2, 0, 29",
		"srawi r3, r4, 4", "cmpw cr0, r3, r4", "cmpwi cr0, r3, 7",
		"lwz r3, 8(r1)", "stw r3, -4(r1)", "lwzx r3, r4, r5",
		"blr", "bctr", "mflr r0", "mtctr r9", "sc",
		"neg r3, r4", "divwu r3, r4, r5", "andi. r3, r4, 15",
	}
	for _, src := range srcs {
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		text := Disassemble(p.Words[0])
		p2, err := Assemble(text)
		if err != nil {
			t.Errorf("reassemble %q: %v", text, err)
			continue
		}
		if p2.Words[0] != p.Words[0] {
			t.Errorf("%q -> %q: %#08x != %#08x", src, text, p2.Words[0], p.Words[0])
		}
	}
	if got := Disassemble(0xFFFFFFFF); got[0] != '.' {
		t.Errorf("undecodable word should render as .word, got %q", got)
	}
}

func TestQuickDFormRoundTrip(t *testing.T) {
	f := func(rt, ra uint8, si int16) bool {
		i := Instr{Op: ADDI, RT: int(rt % 32), RA: int(ra % 32), SI: int32(si)}
		w, err := Encode(i)
		if err != nil {
			return false
		}
		d, err := Decode(w)
		return err == nil && d.Op == ADDI && d.RT == i.RT && d.RA == i.RA && d.SI == i.SI
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickXFormRoundTrip(t *testing.T) {
	ops := []Op{ADD, SUBF, MULLW, DIVW, DIVWU, AND, OR, XOR, SLW, SRW, SRAW}
	f := func(sel, rt, ra, rb uint8, rc bool) bool {
		i := Instr{Op: ops[int(sel)%len(ops)], RT: int(rt % 32), RA: int(ra % 32),
			RB: int(rb % 32), Rc: rc}
		w, err := Encode(i)
		if err != nil {
			return false
		}
		d, err := Decode(w)
		return err == nil && d.Op == i.Op && d.RT == i.RT && d.RA == i.RA &&
			d.RB == i.RB && d.Rc == i.Rc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRlwinmMaskMatchesReference(t *testing.T) {
	// The mask must contain exactly the big-endian bit positions
	// MB..ME (wrapped).
	f := func(mb, me uint8) bool {
		m, e := int(mb%32), int(me%32)
		mask := maskMBME(m, e)
		for bit := 0; bit < 32; bit++ {
			in := false
			if m <= e {
				in = bit >= m && bit <= e
			} else {
				in = bit >= m || bit <= e
			}
			has := mask&(1<<(31-bit)) != 0
			if in != has {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenHalfwordEncodings(t *testing.T) {
	cases := []struct {
		asm  string
		want uint32
	}{
		{"lhz r3, 4(r5)", 0xA0650004},
		{"lha r3, -2(r5)", 0xA865FFFE},
		{"sth r3, 6(r5)", 0xB0650006},
		{"lhzx r3, r4, r5", 0x7C642A2E},
		{"sthx r3, r4, r5", 0x7C642B2E},
		{"extsb r3, r4", 0x7C830774},
		{"extsh r3, r4", 0x7C830734},
		{"extsb. r3, r4", 0x7C830775},
	}
	for _, c := range cases {
		p, err := Assemble(c.asm)
		if err != nil {
			t.Errorf("%q: %v", c.asm, err)
			continue
		}
		if p.Words[0] != c.want {
			t.Errorf("%q = %#08x, want %#08x", c.asm, p.Words[0], c.want)
		}
		// Disassemble/reassemble round trip.
		text := Disassemble(c.want)
		p2, err := Assemble(text)
		if err != nil {
			t.Errorf("reassemble %q: %v", text, err)
			continue
		}
		if p2.Words[0] != c.want {
			t.Errorf("%q -> %q: round trip broke", c.asm, text)
		}
	}
}

func TestExecHalfwordAndExtend(t *testing.T) {
	c := run(t, `
		li r4, 0x1000
		lis r5, 0xFFFF
		ori r5, r5, 0x8001   ; 0xFFFF8001
		sth r5, 0(r4)        ; stores 0x8001
		lhz r6, 0(r4)        ; 0x00008001
		lha r7, 0(r4)        ; 0xFFFF8001 sign-extended
		cmpw r7, r5
		bne bad
		li r8, 0x7F
		ori r8, r8, 0x80     ; 0xFF
		extsb r9, r8         ; -1
		cmpwi r9, -1
		bne bad
		extsh r10, r6        ; sign-extend 0x8001 -> negative
		cmpwi r10, 0
		bge bad
		mr r3, r6
	`+exit+`
	bad:
		li r3, 0
	`+exit)
	if c.ExitCode != 0x8001 {
		t.Fatalf("exit = %#x, want 0x8001", c.ExitCode)
	}
}

func TestExecHalfwordIndexed(t *testing.T) {
	c := run(t, `
		li r4, 0x2000
		li r5, 6
		li r6, 1234
		sthx r6, r4, r5
		lhzx r3, r4, r5
	`+exit)
	if c.ExitCode != 1234 {
		t.Fatalf("exit = %d, want 1234", c.ExitCode)
	}
}

func TestExecHalfwordAlignmentPPC(t *testing.T) {
	c := load(t, "li r4, 1\nlhz r3, 0(r4)\n"+exit)
	if _, err := c.Run(10); err == nil {
		t.Fatal("unaligned lhz must error")
	}
}

func TestExecShiftEdgeCasesPPC(t *testing.T) {
	c := run(t, `
		li r4, -1
		li r5, 40            ; shift >= 32
		slw r6, r4, r5       ; 0
		srw r7, r4, r5       ; 0
		sraw r8, r4, r5      ; still -1 (sign fill)
		li r9, 4
		slw r10, r9, r9      ; 64
		sraw r11, r4, r9     ; -1
		sub r3, r10, r6
		sub r3, r3, r7
		add r3, r3, r8       ; 64 - 0 - 0 + (-1) = 63
		sub r3, r3, r11      ; 64
	`+exit)
	if c.ExitCode != 64 {
		t.Fatalf("exit = %d, want 64", c.ExitCode)
	}
}

func TestExecConditionalBlr(t *testing.T) {
	// beqlr-style conditional return via the generic bclr path.
	c := run(t, `
		li r3, 0
		bl f
		addi r3, r3, 100
	`+exit+`
	f:
		cmpwi r3, 0
		beq ret              ; taken: jump to the blr
		addi r3, r3, 55
	ret:
		blr
	`)
	if c.ExitCode != 100 {
		t.Fatalf("exit = %d, want 100", c.ExitCode)
	}
}

func TestExecXerMoves(t *testing.T) {
	c := run(t, `
		li r4, 42
		mtxer r4
		mfxer r3
	`+exit)
	if c.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42", c.ExitCode)
	}
}

func TestExecCmplRegisterForm(t *testing.T) {
	c := run(t, `
		li r4, -1            ; unsigned max
		li r5, 1
		cmplw r4, r5         ; unsigned: r4 > r5
		bgt big
		li r3, 0
	`+exit+`
	big:
		li r3, 1
	`+exit)
	if c.ExitCode != 1 {
		t.Fatalf("unsigned compare failed")
	}
}

func TestExecMulliNegAndClrlwi(t *testing.T) {
	c := run(t, `
		li r4, 7
		mulli r5, r4, -3     ; -21
		neg r6, r5           ; 21
		lis r7, 0x1234
		ori r7, r7, 0x5678
		clrlwi r8, r7, 16    ; 0x5678
		sub r3, r8, r6       ; 0x5678 - 21
	`+exit)
	if c.ExitCode != 0x5678-21 {
		t.Fatalf("exit = %d, want %d", c.ExitCode, 0x5678-21)
	}
}

func TestDisassembleLiIdiom(t *testing.T) {
	p, _ := Assemble("li r3, -5")
	if got := Disassemble(p.Words[0]); got != "li r3, -5" {
		t.Fatalf("disasm = %q, want li idiom", got)
	}
	p, _ = Assemble("lis r4, 18")
	if got := Disassemble(p.Words[0]); got != "lis r4, 18" {
		t.Fatalf("disasm = %q, want lis idiom", got)
	}
	p, _ = Assemble("addi r3, r4, 5")
	if got := Disassemble(p.Words[0]); got != "addi r3, r4, 5" {
		t.Fatalf("disasm = %q", got)
	}
}
