package ppc

import "fmt"

func rn(r int) string { return fmt.Sprintf("r%d", r) }

func (i Instr) dot() string {
	if i.Rc {
		return "."
	}
	return ""
}

// String renders the instruction in assembler syntax; branch targets
// appear as relative byte offsets.
func (i Instr) String() string {
	switch i.Op {
	case ADDI, ADDIS, MULLI:
		// The RA=0 forms are the li/lis idioms.
		if i.RA == 0 && i.Op == ADDI {
			return fmt.Sprintf("li %s, %d", rn(i.RT), i.SI)
		}
		if i.RA == 0 && i.Op == ADDIS {
			return fmt.Sprintf("lis %s, %d", rn(i.RT), i.SI)
		}
		return fmt.Sprintf("%s %s, %s, %d", i.Op, rn(i.RT), rn(i.RA), i.SI)
	case ADD, SUBF, MULLW, DIVW, DIVWU:
		return fmt.Sprintf("%s%s %s, %s, %s", i.Op, i.dot(), rn(i.RT), rn(i.RA), rn(i.RB))
	case NEG:
		return fmt.Sprintf("neg%s %s, %s", i.dot(), rn(i.RT), rn(i.RA))
	case AND, OR, XOR, SLW, SRW, SRAW:
		return fmt.Sprintf("%s%s %s, %s, %s", i.Op, i.dot(), rn(i.RA), rn(i.RT), rn(i.RB))
	case ANDI:
		return fmt.Sprintf("andi. %s, %s, %d", rn(i.RA), rn(i.RT), i.UI)
	case ORI, ORIS, XORI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, rn(i.RA), rn(i.RT), i.UI)
	case SRAWI:
		return fmt.Sprintf("srawi%s %s, %s, %d", i.dot(), rn(i.RA), rn(i.RT), i.SH)
	case RLWINM:
		return fmt.Sprintf("rlwinm%s %s, %s, %d, %d, %d", i.dot(), rn(i.RA), rn(i.RT), i.SH, i.MB, i.ME)
	case CMP:
		return fmt.Sprintf("cmpw cr%d, %s, %s", i.CRF, rn(i.RA), rn(i.RB))
	case CMPL:
		return fmt.Sprintf("cmplw cr%d, %s, %s", i.CRF, rn(i.RA), rn(i.RB))
	case CMPI:
		return fmt.Sprintf("cmpwi cr%d, %s, %d", i.CRF, rn(i.RA), i.SI)
	case CMPLI:
		return fmt.Sprintf("cmplwi cr%d, %s, %d", i.CRF, rn(i.RA), i.UI)
	case LWZ, LWZU, LBZ, LHZ, LHA, STW, STWU, STB, STH:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, rn(i.RT), i.SI, rn(i.RA))
	case LWZX, STWX, LBZX, STBX, LHZX, LHAX, STHX:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, rn(i.RT), rn(i.RA), rn(i.RB))
	case EXTSB, EXTSH:
		return fmt.Sprintf("%s%s %s, %s", i.Op, i.dot(), rn(i.RA), rn(i.RT))
	case B:
		m := "b"
		if i.LK {
			m = "bl"
		}
		return fmt.Sprintf("%s .%+d", m, i.LI)
	case BC:
		return fmt.Sprintf("bc %d, %d, .%+d", i.BO, i.BI, i.BD)
	case BCLR:
		if i.BO == 20 {
			return "blr"
		}
		return fmt.Sprintf("bclr %d, %d", i.BO, i.BI)
	case BCCTR:
		if i.BO == 20 {
			if i.LK {
				return "bctrl"
			}
			return "bctr"
		}
		return fmt.Sprintf("bcctr %d, %d", i.BO, i.BI)
	case MFSPR, MTSPR:
		name := map[int]string{SPRLR: "lr", SPRCTR: "ctr", SPRXER: "xer"}[i.SPR]
		if i.Op == MFSPR {
			return fmt.Sprintf("mf%s %s", name, rn(i.RT))
		}
		return fmt.Sprintf("mt%s %s", name, rn(i.RT))
	case SC:
		return "sc"
	}
	return fmt.Sprintf(".word 0x%08x", i.Raw)
}

// Disassemble decodes and renders a word, falling back to a raw
// ".word" directive for undecodable encodings.
func Disassemble(w uint32) string {
	ins, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".word 0x%08x", w)
	}
	return ins.String()
}
