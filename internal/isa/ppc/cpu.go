package ppc

import (
	"fmt"
	"math/bits"
)

// Memory is the byte-addressed memory the CPU executes against. Word
// accesses must be 4-byte aligned.
type Memory interface {
	Read32(addr uint32) uint32
	Write32(addr uint32, v uint32)
	Read16(addr uint32) uint16
	Write16(addr uint32, v uint16)
	Read8(addr uint32) byte
	Write8(addr uint32, v byte)
}

// CPU is the architectural state of the PowerPC functional simulator.
type CPU struct {
	// R holds the 32 general-purpose registers.
	R [32]uint32
	// CR is the condition register; bit 31 is CR field 0 bit LT
	// (PowerPC numbers bits from the most significant side).
	CR uint32
	// LR and CTR are the link and count registers.
	LR, CTR uint32
	// XER carries only the summary-overflow/carry bits we need; the
	// subset leaves it zero.
	XER uint32
	// NextPC is the program counter of the next instruction.
	NextPC uint32
	// Mem is the memory image.
	Mem Memory
	// SCHandler, if non-nil, is invoked for SC instructions. PowerPC
	// convention: r0 holds the call number, r3.. the arguments.
	SCHandler func(c *CPU) error
	// Halted stops Step.
	Halted bool
	// ExitCode records the program's exit status once Halted.
	ExitCode uint32
	// Executed counts completed instructions.
	Executed uint64
}

// CRField returns the 4-bit condition field n (0..7) as LT<<3|GT<<2|
// EQ<<1|SO.
func (c *CPU) CRField(n int) uint32 { return c.CR >> uint(28-4*n) & 0xf }

// SetCRField stores a 4-bit value into condition field n.
func (c *CPU) SetCRField(n int, v uint32) {
	sh := uint(28 - 4*n)
	c.CR = c.CR&^(0xf<<sh) | (v&0xf)<<sh
}

// CRBit returns condition register bit i (0 = most significant).
func (c *CPU) CRBit(i int) bool { return c.CR>>(31-uint(i))&1 != 0 }

// setCR0 records a signed comparison of v against zero into CR0.
func (c *CPU) setCR0(v uint32) {
	var f uint32
	switch {
	case int32(v) < 0:
		f = 8
	case int32(v) > 0:
		f = 4
	default:
		f = 2
	}
	c.SetCRField(0, f) // SO not modeled
}

// Step fetches, decodes and executes one instruction.
func (c *CPU) Step() (Instr, error) {
	if c.Halted {
		return Instr{}, fmt.Errorf("ppc: step on halted CPU")
	}
	pc := c.NextPC
	if pc%4 != 0 {
		return Instr{}, fmt.Errorf("ppc: unaligned PC %#x", pc)
	}
	ins, err := Decode(c.Mem.Read32(pc))
	if err != nil {
		return ins, fmt.Errorf("ppc: at %#x: %w", pc, err)
	}
	return ins, c.StepDecoded(ins)
}

// StepDecoded executes one already-decoded instruction as the
// instruction at NextPC. Callers (the iss package's decode cache) are
// responsible for ins being the decode of the word at NextPC; the
// halted and alignment checks of Step still apply.
func (c *CPU) StepDecoded(ins Instr) error {
	pc := c.NextPC
	c.NextPC = pc + 4
	if err := c.Exec(ins, pc); err != nil {
		return fmt.Errorf("ppc: at %#x: %w", pc, err)
	}
	c.Executed++
	return nil
}

// Run steps until the CPU halts or limit instructions have executed.
func (c *CPU) Run(limit uint64) (uint64, error) {
	start := c.Executed
	for !c.Halted && c.Executed-start < limit {
		if _, err := c.Step(); err != nil {
			return c.Executed - start, err
		}
	}
	return c.Executed - start, nil
}

// regOrZero implements the RA=0 → literal 0 rule of D-form addressing.
func (c *CPU) regOrZero(ins *Instr) uint32 {
	if ins.RA == 0 && ins.raZero() {
		return 0
	}
	return c.R[ins.RA]
}

// BranchTaken evaluates the BO/BI condition against the current CR
// and CTR without side effects (the micro-architecture models use it
// for branch resolution); decrement reports whether executing the
// branch would decrement CTR.
func (c *CPU) BranchTaken(ins *Instr) (taken, decrement bool) {
	bo := ins.BO
	ctrOK := true
	if bo&0x4 == 0 {
		decrement = true
		ctr := c.CTR - 1
		ctrOK = (ctr != 0) == (bo&0x2 == 0)
	}
	condOK := true
	if bo&0x10 == 0 {
		condOK = c.CRBit(ins.BI) == (bo&0x8 != 0)
	}
	return ctrOK && condOK, decrement
}

// Exec executes a decoded instruction located at pc. The caller must
// have set NextPC to pc+4; branches overwrite it.
func (c *CPU) Exec(ins Instr, pc uint32) error {
	switch ins.Op {
	case ADDI:
		c.R[ins.RT] = c.regOrZero(&ins) + uint32(ins.SI)
	case ADDIS:
		c.R[ins.RT] = c.regOrZero(&ins) + uint32(ins.SI)<<16
	case ADD:
		c.R[ins.RT] = c.R[ins.RA] + c.R[ins.RB]
	case SUBF:
		c.R[ins.RT] = c.R[ins.RB] - c.R[ins.RA]
	case NEG:
		c.R[ins.RT] = -c.R[ins.RA]
	case MULLW:
		c.R[ins.RT] = c.R[ins.RA] * c.R[ins.RB]
	case MULLI:
		c.R[ins.RT] = c.R[ins.RA] * uint32(ins.SI)
	case DIVW:
		den := int32(c.R[ins.RB])
		num := int32(c.R[ins.RA])
		if den == 0 || (num == -1<<31 && den == -1) {
			c.R[ins.RT] = 0 // architecturally undefined; pick 0
		} else {
			c.R[ins.RT] = uint32(num / den)
		}
	case DIVWU:
		if c.R[ins.RB] == 0 {
			c.R[ins.RT] = 0
		} else {
			c.R[ins.RT] = c.R[ins.RA] / c.R[ins.RB]
		}
	case AND:
		c.R[ins.RA] = c.R[ins.RT] & c.R[ins.RB]
	case OR:
		c.R[ins.RA] = c.R[ins.RT] | c.R[ins.RB]
	case XOR:
		c.R[ins.RA] = c.R[ins.RT] ^ c.R[ins.RB]
	case ANDI:
		c.R[ins.RA] = c.R[ins.RT] & ins.UI
	case ORI:
		c.R[ins.RA] = c.R[ins.RT] | ins.UI
	case ORIS:
		c.R[ins.RA] = c.R[ins.RT] | ins.UI<<16
	case XORI:
		c.R[ins.RA] = c.R[ins.RT] ^ ins.UI
	case RLWINM:
		mask := maskMBME(ins.MB, ins.ME)
		c.R[ins.RA] = bits.RotateLeft32(c.R[ins.RT], ins.SH) & mask
	case SLW:
		sh := c.R[ins.RB] & 0x3f
		if sh > 31 {
			c.R[ins.RA] = 0
		} else {
			c.R[ins.RA] = c.R[ins.RT] << sh
		}
	case SRW:
		sh := c.R[ins.RB] & 0x3f
		if sh > 31 {
			c.R[ins.RA] = 0
		} else {
			c.R[ins.RA] = c.R[ins.RT] >> sh
		}
	case SRAW:
		sh := c.R[ins.RB] & 0x3f
		if sh > 31 {
			sh = 31
		}
		c.R[ins.RA] = uint32(int32(c.R[ins.RT]) >> sh)
	case SRAWI:
		c.R[ins.RA] = uint32(int32(c.R[ins.RT]) >> uint(ins.SH))
	case EXTSB:
		c.R[ins.RA] = uint32(int32(int8(c.R[ins.RT])))
	case EXTSH:
		c.R[ins.RA] = uint32(int32(int16(c.R[ins.RT])))
	case CMP, CMPI:
		var a, b int32
		a = int32(c.R[ins.RA])
		if ins.Op == CMP {
			b = int32(c.R[ins.RB])
		} else {
			b = ins.SI
		}
		c.SetCRField(ins.CRF, cmpBits(a < b, a > b, a == b))
	case CMPL, CMPLI:
		a := c.R[ins.RA]
		var b uint32
		if ins.Op == CMPL {
			b = c.R[ins.RB]
		} else {
			b = ins.UI
		}
		c.SetCRField(ins.CRF, cmpBits(a < b, a > b, a == b))
	case LWZ, LWZU, LBZ, LHZ, LHA, LWZX, LBZX, LHZX, LHAX:
		addr := c.regOrZero(&ins)
		switch ins.Op {
		case LWZ, LWZU, LBZ, LHZ, LHA:
			if ins.Op == LWZU {
				addr = c.R[ins.RA]
			}
			addr += uint32(ins.SI)
		default:
			addr += c.R[ins.RB]
		}
		switch ins.Op {
		case LBZ, LBZX:
			c.R[ins.RT] = uint32(c.Mem.Read8(addr))
		case LHZ, LHZX, LHA, LHAX:
			if addr%2 != 0 {
				return fmt.Errorf("%s: unaligned halfword access at %#x", ins.Op, addr)
			}
			v := uint32(c.Mem.Read16(addr))
			if ins.Op == LHA || ins.Op == LHAX {
				v = uint32(int32(int16(v)))
			}
			c.R[ins.RT] = v
		default:
			if addr%4 != 0 {
				return fmt.Errorf("%s: unaligned word access at %#x", ins.Op, addr)
			}
			c.R[ins.RT] = c.Mem.Read32(addr)
		}
		if ins.Op == LWZU {
			c.R[ins.RA] = addr
		}
	case STW, STWU, STB, STH, STWX, STBX, STHX:
		addr := c.regOrZero(&ins)
		switch ins.Op {
		case STW, STWU, STB, STH:
			if ins.Op == STWU {
				addr = c.R[ins.RA]
			}
			addr += uint32(ins.SI)
		default:
			addr += c.R[ins.RB]
		}
		switch ins.Op {
		case STB, STBX:
			c.Mem.Write8(addr, byte(c.R[ins.RT]))
		case STH, STHX:
			if addr%2 != 0 {
				return fmt.Errorf("%s: unaligned halfword access at %#x", ins.Op, addr)
			}
			c.Mem.Write16(addr, uint16(c.R[ins.RT]))
		default:
			if addr%4 != 0 {
				return fmt.Errorf("%s: unaligned word access at %#x", ins.Op, addr)
			}
			c.Mem.Write32(addr, c.R[ins.RT])
		}
		if ins.Op == STWU {
			c.R[ins.RA] = addr
		}
	case B:
		if ins.LK {
			c.LR = pc + 4
		}
		if ins.AA {
			c.NextPC = uint32(ins.LI)
		} else {
			c.NextPC = uint32(int64(pc) + int64(ins.LI))
		}
	case BC, BCLR, BCCTR:
		taken, dec := c.BranchTaken(&ins)
		if dec {
			c.CTR--
		}
		target := c.NextPC
		if taken {
			switch ins.Op {
			case BC:
				if ins.AA {
					target = uint32(ins.BD)
				} else {
					target = uint32(int64(pc) + int64(ins.BD))
				}
			case BCLR:
				target = c.LR &^ 3
			case BCCTR:
				target = c.CTR &^ 3
			}
		}
		if ins.LK {
			c.LR = pc + 4
		}
		c.NextPC = target
	case MFSPR:
		switch ins.SPR {
		case SPRLR:
			c.R[ins.RT] = c.LR
		case SPRCTR:
			c.R[ins.RT] = c.CTR
		case SPRXER:
			c.R[ins.RT] = c.XER
		}
	case MTSPR:
		switch ins.SPR {
		case SPRLR:
			c.LR = c.R[ins.RT]
		case SPRCTR:
			c.CTR = c.R[ins.RT]
		case SPRXER:
			c.XER = c.R[ins.RT]
		}
	case SC:
		if c.SCHandler == nil {
			return fmt.Errorf("sc with no handler")
		}
		if err := c.SCHandler(c); err != nil {
			return err
		}
	default:
		return fmt.Errorf("exec: unhandled op %s", ins.Op)
	}

	if ins.Rc || ins.Op == ANDI {
		var v uint32
		switch ins.Op {
		case AND, OR, XOR, ANDI, ORI, ORIS, XORI, RLWINM, SLW, SRW, SRAW, SRAWI, EXTSB, EXTSH:
			v = c.R[ins.RA]
		default:
			v = c.R[ins.RT]
		}
		c.setCR0(v)
	}
	return nil
}

// maskMBME builds the rlwinm mask with bits MB..ME set (PowerPC
// big-endian bit numbering: bit 0 is the MSB). A wrapped mask
// (MB > ME) sets the complement range.
func maskMBME(mb, me int) uint32 {
	start := uint32(0xffffffff) >> uint(mb)
	end := uint32(0xffffffff) << uint(31-me)
	if mb <= me {
		return start & end
	}
	return start | end
}

func cmpBits(lt, gt, eq bool) uint32 {
	switch {
	case lt:
		return 8
	case gt:
		return 4
	case eq:
		return 2
	}
	return 0
}
