// Package ppc implements a faithful subset of the 32-bit PowerPC
// user-level instruction set: the substrate of the paper's PowerPC
// 750 case study. It provides binary encodings, a decoder, an
// executor, a two-pass assembler and a disassembler.
//
// The subset covers integer arithmetic and logic (including the
// record-form CR0 update), rotate-and-mask, multiply and divide,
// D-form and X-form loads and stores with update, compares, the
// conditional-branch machinery (CR bits, CTR decrement, LR/CTR
// indirect branches), special-purpose register moves and the SC
// system call — the operation mix a dual-issue out-of-order model
// must route through its function units.
package ppc

import "fmt"

// Special-purpose register numbers (mfspr/mtspr).
const (
	SPRXER = 1
	SPRLR  = 8
	SPRCTR = 9
)

// CR0 bit indices within the 32-bit condition register (bit 0 is the
// most significant, PowerPC numbering).
const (
	CRLT = 0
	CRGT = 1
	CREQ = 2
	CRSO = 3
)

// Op enumerates the decoded operations of the subset.
type Op uint8

// Operations.
const (
	ADDI Op = iota
	ADDIS
	ADD
	SUBF
	NEG
	MULLW
	MULLI
	DIVW
	DIVWU
	AND
	OR
	XOR
	ANDI // andi. always records
	ORI
	ORIS
	XORI
	RLWINM
	SLW
	SRW
	SRAW
	SRAWI
	CMP
	CMPI
	CMPL
	CMPLI
	LWZ
	LWZU
	LBZ
	LHZ
	LHA
	STW
	STWU
	STB
	STH
	LWZX
	STWX
	LBZX
	STBX
	LHZX
	LHAX
	STHX
	EXTSB
	EXTSH
	B
	BC
	BCLR
	BCCTR
	MFSPR
	MTSPR
	SC
)

var opNames = [...]string{
	"addi", "addis", "add", "subf", "neg", "mullw", "mulli", "divw", "divwu",
	"and", "or", "xor", "andi.", "ori", "oris", "xori", "rlwinm",
	"slw", "srw", "sraw", "srawi",
	"cmpw", "cmpwi", "cmplw", "cmplwi",
	"lwz", "lwzu", "lbz", "lhz", "lha", "stw", "stwu", "stb", "sth",
	"lwzx", "stwx", "lbzx", "stbx", "lhzx", "lhax", "sthx", "extsb", "extsh",
	"b", "bc", "bclr", "bcctr", "mfspr", "mtspr", "sc",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Class partitions operations by the PowerPC 750 function unit that
// executes them: IU2 handles simple integer operations, IU1
// additionally multiplies and divides, LSU loads and stores, BPU
// branches and SRU system-register moves and traps.
type Class uint8

// Operation classes.
const (
	ClassALU Class = iota // simple integer: IU1 or IU2
	ClassMul              // multiply/divide: IU1 only
	ClassLoad
	ClassStore
	ClassBranch
	ClassSys // SPR moves, sc: system register unit
)

var classNames = [...]string{"alu", "mul", "load", "store", "branch", "sys"}

func (c Class) String() string { return classNames[c] }

// Instr is a decoded instruction.
type Instr struct {
	// Raw is the 32-bit encoding the instruction was decoded from.
	Raw uint32
	// Op is the operation.
	Op Op
	// RT is the target register (RS for stores — same field).
	RT int
	// RA, RB are source registers. For D-form memory and addi, RA=0
	// reads as the literal zero, not r0.
	RA, RB int
	// SI is the sign-extended 16-bit immediate; UI the zero-extended
	// one.
	SI int32
	UI uint32
	// Rc requests a CR0 update from the result (record forms).
	Rc bool
	// SH, MB, ME parameterize rlwinm/srawi.
	SH, MB, ME int
	// BO, BI control conditional branches; BD is the sign-extended
	// branch displacement and LI the I-form displacement, both in
	// bytes.
	BO, BI int
	BD, LI int32
	// AA selects absolute addressing; LK writes the link register.
	AA, LK bool
	// CRF is the target CR field of compares.
	CRF int
	// SPR names the special register of mfspr/mtspr.
	SPR int
}

// Class reports the operation's function-unit class.
func (i *Instr) Class() Class {
	switch i.Op {
	case MULLW, MULLI, DIVW, DIVWU:
		return ClassMul
	case LWZ, LWZU, LBZ, LHZ, LHA, LWZX, LBZX, LHZX, LHAX:
		return ClassLoad
	case STW, STWU, STB, STH, STWX, STBX, STHX:
		return ClassStore
	case B, BC, BCLR, BCCTR:
		return ClassBranch
	case MFSPR, MTSPR, SC:
		return ClassSys
	default:
		return ClassALU
	}
}

// IsBranch reports whether the instruction can redirect fetch.
func (i *Instr) IsBranch() bool {
	switch i.Op {
	case B, BC, BCLR, BCCTR, SC:
		return true
	}
	return false
}

// raZero reports whether the RA field reads as literal zero when 0.
func (i *Instr) raZero() bool {
	switch i.Op {
	case ADDI, ADDIS, LWZ, LBZ, STW, STB, LWZX, STWX, LBZX, STBX:
		return true
	}
	return false
}

// SrcRegs returns the architectural GPR sources without duplicates.
func (i *Instr) SrcRegs() []int {
	var out []int
	add := func(r int) {
		if r < 0 {
			return
		}
		for _, x := range out {
			if x == r {
				return
			}
		}
		out = append(out, r)
	}
	ra := i.RA
	if ra == 0 && i.raZero() {
		ra = -1
	}
	switch i.Op {
	case ADDI, ADDIS:
		add(ra)
	case MULLI, NEG, CMPI, CMPLI:
		add(i.RA)
	case ANDI, ORI, ORIS, XORI, RLWINM, SRAWI, EXTSB, EXTSH:
		add(i.RT) // RS field: logical ops read RS, write RA
	case ADD, SUBF, MULLW, DIVW, DIVWU, CMP, CMPL:
		add(i.RA)
		add(i.RB)
	case AND, OR, XOR, SLW, SRW, SRAW:
		add(i.RT) // RS
		add(i.RB)
	case LWZ, LWZU, LBZ, LHZ, LHA:
		add(ra)
		if i.Op == LWZU {
			add(i.RA)
		}
	case STW, STWU, STB, STH:
		add(ra)
		add(i.RT)
		if i.Op == STWU {
			add(i.RA)
		}
	case LWZX, LBZX, LHZX, LHAX:
		add(ra)
		add(i.RB)
	case STWX, STBX, STHX:
		add(ra)
		add(i.RB)
		add(i.RT)
	case MTSPR:
		add(i.RT)
	}
	return out
}

// DstRegs returns the architectural GPR destinations.
func (i *Instr) DstRegs() []int {
	switch i.Op {
	case ADDI, ADDIS, ADD, SUBF, NEG, MULLW, MULLI, DIVW, DIVWU,
		LWZ, LBZ, LHZ, LHA, LWZX, LBZX, LHZX, LHAX, MFSPR:
		return []int{i.RT}
	case AND, OR, XOR, ANDI, ORI, ORIS, XORI, RLWINM, SLW, SRW, SRAW, SRAWI, EXTSB, EXTSH:
		return []int{i.RA}
	case LWZU:
		return []int{i.RT, i.RA}
	case STWU:
		return []int{i.RA}
	}
	return nil
}

// WritesCR reports whether the instruction updates the condition
// register.
func (i *Instr) WritesCR() bool {
	switch i.Op {
	case CMP, CMPI, CMPL, CMPLI, ANDI:
		return true
	}
	return i.Rc
}

// ReadsCR reports whether execution consults the condition register.
func (i *Instr) ReadsCR() bool {
	switch i.Op {
	case BC, BCLR, BCCTR:
		return i.BO&0x10 == 0 // BO bit 0 (0b1x10x) skips the CR test
	}
	return false
}

// ReadsLR and friends report special-register traffic for the
// micro-architecture models' token identifiers.
func (i *Instr) ReadsLR() bool { return i.Op == BCLR || (i.Op == MFSPR && i.SPR == SPRLR) }

// WritesLR reports whether the link register is written.
func (i *Instr) WritesLR() bool { return i.LK || (i.Op == MTSPR && i.SPR == SPRLR) }

// ReadsCTR reports whether the count register is read.
func (i *Instr) ReadsCTR() bool {
	if i.Op == BCCTR || (i.Op == MFSPR && i.SPR == SPRCTR) {
		return true
	}
	return (i.Op == BC || i.Op == BCLR) && i.BO&0x4 == 0 // CTR-decrement forms
}

// WritesCTR reports whether the count register is written.
func (i *Instr) WritesCTR() bool {
	if i.Op == MTSPR && i.SPR == SPRCTR {
		return true
	}
	return (i.Op == BC || i.Op == BCLR) && i.BO&0x4 == 0
}
