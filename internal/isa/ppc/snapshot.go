package ppc

import "repro/internal/snap"

const cpuSnapVersion = 1

// Snapshot encodes the architectural state: registers, special
// registers, halt status and the executed-instruction count. The
// memory image and handlers are owned by the embedding simulator.
func (c *CPU) Snapshot(w *snap.Writer) {
	w.Version(cpuSnapVersion)
	for _, r := range c.R {
		w.U32(r)
	}
	w.U32(c.CR)
	w.U32(c.LR)
	w.U32(c.CTR)
	w.U32(c.XER)
	w.U32(c.NextPC)
	w.Bool(c.Halted)
	w.U32(c.ExitCode)
	w.U64(c.Executed)
}

// Restore decodes an architectural-state snapshot.
func (c *CPU) Restore(r *snap.Reader) error {
	r.Version("ppc cpu", cpuSnapVersion)
	for i := range c.R {
		c.R[i] = r.U32()
	}
	c.CR = r.U32()
	c.LR = r.U32()
	c.CTR = r.U32()
	c.XER = r.U32()
	c.NextPC = r.U32()
	c.Halted = r.Bool()
	c.ExitCode = r.U32()
	c.Executed = r.U64()
	return r.Close("ppc cpu")
}
