package ppc

import (
	"strings"
	"testing"
)

func TestPPCAssemblerErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"frobnicate r3", "unknown mnemonic"},
		{"addi r3, r4", "takes 3 operands"},
		{"addi r3, r4, 40000", "out of range"},
		{"ori r3, r4, 0x10000", "out of range"},
		{"add r3, r4", "takes 3 operands"},
		{"add r33, r4, r5", "bad register"},
		{"li r3", "takes rD, simm"},
		{"lis r3", "takes rD, simm"},
		{"mr r3", "takes rD, rS"},
		{"neg r3", "takes rD, rA"},
		{"srawi r3, r4", "takes rA, rS, n"},
		{"rlwinm r3, r4, 2", "takes rA, rS, sh, mb, me"},
		{"slwi r3, r4", "takes rA, rS, n"},
		{"cmpw r3", "takes [crN,] rA"},
		{"cmpw cr9, r3, r4", "bad CR field"},
		{"lwz r3, r4", "bad address"},
		{"lwz r3", "takes rD, d(rA)"},
		{"b", "takes a target"},
		{"beq", "takes a target"},
		{"b nowhere", "undefined symbol"},
		{"mflr", "takes one register"},
		{"extsb r3", "takes rA, rS"},
		{"x: x: nop", "duplicate label"},
		{"bad label: nop", "bad label"},
		{".space 6", "not a word multiple"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) error = %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestPPCAssemblerNiceties(t *testing.T) {
	p, err := Assemble(`
a: b: nop               ; two labels
	ADDI R3, SP, 8      # upper case, sp alias, hash comment
	.word a, 7
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["a"] != 0 || p.Labels["b"] != 0 {
		t.Fatalf("labels = %v", p.Labels)
	}
	if p.Words[1] != 0x38610008 { // addi r3, r1, 8
		t.Fatalf("addi = %#08x", p.Words[1])
	}
	if p.Words[2] != 0 || p.Words[3] != 7 {
		t.Fatal(".word wrong")
	}
	p, err = Assemble("nop\n_start: nop")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 4 || p.Size() != 8 {
		t.Fatalf("entry=%#x size=%d", p.Entry, p.Size())
	}
}

func TestPPCAssembleAtOrigin(t *testing.T) {
	p, err := AssembleAt("x: b x", 0x200)
	if err != nil {
		t.Fatal(err)
	}
	if p.Org != 0x200 || p.Labels["x"] != 0x200 {
		t.Fatalf("org/labels wrong: %+v", p)
	}
	if p.Words[0] != 0x48000000 { // branch-to-self
		t.Fatalf("word = %#08x", p.Words[0])
	}
}

func TestPPCCRFieldCompare(t *testing.T) {
	p, err := Assemble("cmpw cr3, r4, r5")
	if err != nil {
		t.Fatal(err)
	}
	ins, err := Decode(p.Words[0])
	if err != nil {
		t.Fatal(err)
	}
	if ins.CRF != 3 {
		t.Fatalf("CRF = %d, want 3", ins.CRF)
	}
	// Executing it must set field 3, leaving field 0 alone.
	c := &CPU{}
	c.R[4], c.R[5] = 1, 2
	if err := c.Exec(ins, 0); err != nil {
		t.Fatal(err)
	}
	if c.CRField(3) != 8 { // LT
		t.Fatalf("cr3 = %#x, want LT", c.CRField(3))
	}
	if c.CRField(0) != 0 {
		t.Fatalf("cr0 = %#x, want untouched", c.CRField(0))
	}
}
