package ppc

import "fmt"

// Primary and extended opcode numbers of the subset.
const (
	opcdMULLI  = 7
	opcdCMPLI  = 10
	opcdCMPI   = 11
	opcdADDI   = 14
	opcdADDIS  = 15
	opcdBC     = 16
	opcdSC     = 17
	opcdB      = 18
	opcd19     = 19
	opcdRLWINM = 21
	opcdORI    = 24
	opcdORIS   = 25
	opcdXORI   = 26
	opcdANDI   = 28
	opcd31     = 31
	opcdLWZ    = 32
	opcdLWZU   = 33
	opcdLBZ    = 34
	opcdSTW    = 36
	opcdSTWU   = 37
	opcdSTB    = 38
	opcdLHZ    = 40
	opcdLHA    = 42
	opcdSTH    = 44

	xoCMP   = 0
	xoSLW   = 24
	xoAND   = 28
	xoCMPL  = 32
	xoSUBF  = 40
	xoLWZX  = 23
	xoLBZX  = 87
	xoNEG   = 104
	xoSTWX  = 151
	xoSTBX  = 215
	xoMULLW = 235
	xoOR    = 444
	xoXOR   = 316
	xoMFSPR = 339
	xoMTSPR = 467
	xoDIVWU = 459
	xoDIVW  = 491
	xoSRW   = 536
	xoSRAW  = 792
	xoSRAWI = 824
	xoLHZX  = 279
	xoLHAX  = 343
	xoSTHX  = 407
	xoEXTSH = 922
	xoEXTSB = 954
	xoBCLR  = 16
	xoBCCTR = 528
)

func dform(opcd uint32, rt, ra int, imm uint32) uint32 {
	return opcd<<26 | uint32(rt&31)<<21 | uint32(ra&31)<<16 | imm&0xffff
}

func xform(xo uint32, rt, ra, rb int, rc bool) uint32 {
	w := uint32(opcd31)<<26 | uint32(rt&31)<<21 | uint32(ra&31)<<16 | uint32(rb&31)<<11 | xo<<1
	if rc {
		w |= 1
	}
	return w
}

// Encode produces the 32-bit big-endian PowerPC encoding.
func Encode(i Instr) (uint32, error) {
	switch i.Op {
	case ADDI:
		return dform(opcdADDI, i.RT, i.RA, uint32(i.SI)), nil
	case ADDIS:
		return dform(opcdADDIS, i.RT, i.RA, uint32(i.SI)), nil
	case MULLI:
		return dform(opcdMULLI, i.RT, i.RA, uint32(i.SI)), nil
	case CMPI:
		return dform(opcdCMPI, i.CRF<<2, i.RA, uint32(i.SI)), nil
	case CMPLI:
		return dform(opcdCMPLI, i.CRF<<2, i.RA, uint32(i.UI)), nil
	case ANDI:
		return dform(opcdANDI, i.RT, i.RA, i.UI), nil
	case ORI:
		return dform(opcdORI, i.RT, i.RA, i.UI), nil
	case ORIS:
		return dform(opcdORIS, i.RT, i.RA, i.UI), nil
	case XORI:
		return dform(opcdXORI, i.RT, i.RA, i.UI), nil
	case LWZ, LWZU, LBZ, LHZ, LHA, STW, STWU, STB, STH:
		opcd := map[Op]uint32{LWZ: opcdLWZ, LWZU: opcdLWZU, LBZ: opcdLBZ,
			LHZ: opcdLHZ, LHA: opcdLHA,
			STW: opcdSTW, STWU: opcdSTWU, STB: opcdSTB, STH: opcdSTH}[i.Op]
		return dform(opcd, i.RT, i.RA, uint32(i.SI)), nil
	case RLWINM:
		w := uint32(opcdRLWINM)<<26 | uint32(i.RT&31)<<21 | uint32(i.RA&31)<<16 |
			uint32(i.SH&31)<<11 | uint32(i.MB&31)<<6 | uint32(i.ME&31)<<1
		if i.Rc {
			w |= 1
		}
		return w, nil
	case ADD:
		return xform(266, i.RT, i.RA, i.RB, i.Rc), nil
	case SUBF:
		return xform(xoSUBF, i.RT, i.RA, i.RB, i.Rc), nil
	case NEG:
		return xform(xoNEG, i.RT, i.RA, 0, i.Rc), nil
	case MULLW:
		return xform(xoMULLW, i.RT, i.RA, i.RB, i.Rc), nil
	case DIVW:
		return xform(xoDIVW, i.RT, i.RA, i.RB, i.Rc), nil
	case DIVWU:
		return xform(xoDIVWU, i.RT, i.RA, i.RB, i.Rc), nil
	case AND:
		return xform(xoAND, i.RT, i.RA, i.RB, i.Rc), nil
	case OR:
		return xform(xoOR, i.RT, i.RA, i.RB, i.Rc), nil
	case XOR:
		return xform(xoXOR, i.RT, i.RA, i.RB, i.Rc), nil
	case SLW:
		return xform(xoSLW, i.RT, i.RA, i.RB, i.Rc), nil
	case SRW:
		return xform(xoSRW, i.RT, i.RA, i.RB, i.Rc), nil
	case SRAW:
		return xform(xoSRAW, i.RT, i.RA, i.RB, i.Rc), nil
	case SRAWI:
		return xform(xoSRAWI, i.RT, i.RA, i.SH, i.Rc), nil
	case CMP:
		return xform(xoCMP, i.CRF<<2, i.RA, i.RB, false), nil
	case CMPL:
		return xform(xoCMPL, i.CRF<<2, i.RA, i.RB, false), nil
	case LWZX:
		return xform(xoLWZX, i.RT, i.RA, i.RB, false), nil
	case LHZX:
		return xform(xoLHZX, i.RT, i.RA, i.RB, false), nil
	case LHAX:
		return xform(xoLHAX, i.RT, i.RA, i.RB, false), nil
	case STHX:
		return xform(xoSTHX, i.RT, i.RA, i.RB, false), nil
	case EXTSB:
		return xform(xoEXTSB, i.RT, i.RA, 0, i.Rc), nil
	case EXTSH:
		return xform(xoEXTSH, i.RT, i.RA, 0, i.Rc), nil
	case LBZX:
		return xform(xoLBZX, i.RT, i.RA, i.RB, false), nil
	case STWX:
		return xform(xoSTWX, i.RT, i.RA, i.RB, false), nil
	case STBX:
		return xform(xoSTBX, i.RT, i.RA, i.RB, false), nil
	case MFSPR, MTSPR:
		spr := uint32(i.SPR)
		sprField := (spr&0x1f)<<5 | spr>>5&0x1f
		xo := uint32(xoMFSPR)
		if i.Op == MTSPR {
			xo = xoMTSPR
		}
		return uint32(opcd31)<<26 | uint32(i.RT&31)<<21 | sprField<<11 | xo<<1, nil
	case B:
		if i.LI%4 != 0 {
			return 0, fmt.Errorf("ppc: branch target %d not word aligned", i.LI)
		}
		w := uint32(opcdB)<<26 | uint32(i.LI)&0x03fffffc
		if i.AA {
			w |= 2
		}
		if i.LK {
			w |= 1
		}
		return w, nil
	case BC:
		if i.BD%4 != 0 {
			return 0, fmt.Errorf("ppc: branch displacement %d not word aligned", i.BD)
		}
		if i.BD > 0x7fff*4 || i.BD < -0x8000*4 {
			return 0, fmt.Errorf("ppc: branch displacement %d out of range", i.BD)
		}
		w := uint32(opcdBC)<<26 | uint32(i.BO&31)<<21 | uint32(i.BI&31)<<16 | uint32(i.BD)&0xfffc
		if i.AA {
			w |= 2
		}
		if i.LK {
			w |= 1
		}
		return w, nil
	case BCLR, BCCTR:
		xo := uint32(xoBCLR)
		if i.Op == BCCTR {
			xo = xoBCCTR
		}
		w := uint32(opcd19)<<26 | uint32(i.BO&31)<<21 | uint32(i.BI&31)<<16 | xo<<1
		if i.LK {
			w |= 1
		}
		return w, nil
	case SC:
		return uint32(opcdSC)<<26 | 2, nil
	}
	return 0, fmt.Errorf("ppc: cannot encode op %s", i.Op)
}

func signExt16(v uint32) int32 { return int32(int16(v)) }

// Decode interprets a 32-bit word as an instruction of the subset.
func Decode(w uint32) (Instr, error) {
	i := Instr{Raw: w}
	opcd := w >> 26
	rt := int(w >> 21 & 31)
	ra := int(w >> 16 & 31)
	rb := int(w >> 11 & 31)
	i.RT, i.RA, i.RB = rt, ra, rb
	imm := w & 0xffff
	switch opcd {
	case opcdADDI, opcdADDIS, opcdMULLI:
		i.Op = map[uint32]Op{opcdADDI: ADDI, opcdADDIS: ADDIS, opcdMULLI: MULLI}[opcd]
		i.SI = signExt16(imm)
		return i, nil
	case opcdCMPI, opcdCMPLI:
		i.CRF = rt >> 2
		if opcd == opcdCMPI {
			i.Op = CMPI
			i.SI = signExt16(imm)
		} else {
			i.Op = CMPLI
			i.UI = imm
		}
		return i, nil
	case opcdANDI, opcdORI, opcdORIS, opcdXORI:
		i.Op = map[uint32]Op{opcdANDI: ANDI, opcdORI: ORI, opcdORIS: ORIS, opcdXORI: XORI}[opcd]
		i.UI = imm
		return i, nil
	case opcdRLWINM:
		i.Op = RLWINM
		i.SH = rb
		i.MB = int(w >> 6 & 31)
		i.ME = int(w >> 1 & 31)
		i.Rc = w&1 != 0
		return i, nil
	case opcdLWZ, opcdLWZU, opcdLBZ, opcdLHZ, opcdLHA, opcdSTW, opcdSTWU, opcdSTB, opcdSTH:
		i.Op = map[uint32]Op{opcdLWZ: LWZ, opcdLWZU: LWZU, opcdLBZ: LBZ,
			opcdLHZ: LHZ, opcdLHA: LHA,
			opcdSTW: STW, opcdSTWU: STWU, opcdSTB: STB, opcdSTH: STH}[opcd]
		i.SI = signExt16(imm)
		return i, nil
	case opcdB:
		i.Op = B
		i.LI = int32(w&0x03fffffc) << 6 >> 6
		i.AA = w&2 != 0
		i.LK = w&1 != 0
		return i, nil
	case opcdBC:
		i.Op = BC
		i.BO, i.BI = rt, ra
		i.BD = int32(w&0xfffc) << 16 >> 16
		i.AA = w&2 != 0
		i.LK = w&1 != 0
		return i, nil
	case opcdSC:
		i.Op = SC
		return i, nil
	case opcd19:
		xo := w >> 1 & 0x3ff
		i.BO, i.BI = rt, ra
		i.LK = w&1 != 0
		switch xo {
		case xoBCLR:
			i.Op = BCLR
			return i, nil
		case xoBCCTR:
			i.Op = BCCTR
			return i, nil
		}
		return i, fmt.Errorf("ppc: decode %#08x: unsupported opcode 19 extended %d", w, xo)
	case opcd31:
		xo := w >> 1 & 0x3ff
		i.Rc = w&1 != 0
		switch xo {
		case 266:
			i.Op = ADD
		case xoSUBF:
			i.Op = SUBF
		case xoNEG:
			i.Op = NEG
		case xoMULLW:
			i.Op = MULLW
		case xoDIVW:
			i.Op = DIVW
		case xoDIVWU:
			i.Op = DIVWU
		case xoAND:
			i.Op = AND
		case xoOR:
			i.Op = OR
		case xoXOR:
			i.Op = XOR
		case xoSLW:
			i.Op = SLW
		case xoSRW:
			i.Op = SRW
		case xoSRAW:
			i.Op = SRAW
		case xoSRAWI:
			i.Op = SRAWI
			i.SH = rb
		case xoCMP:
			i.Op = CMP
			i.CRF = rt >> 2
		case xoCMPL:
			i.Op = CMPL
			i.CRF = rt >> 2
		case xoLWZX:
			i.Op = LWZX
		case xoLHZX:
			i.Op = LHZX
		case xoLHAX:
			i.Op = LHAX
		case xoSTHX:
			i.Op = STHX
		case xoEXTSB:
			i.Op = EXTSB
		case xoEXTSH:
			i.Op = EXTSH
		case xoLBZX:
			i.Op = LBZX
		case xoSTWX:
			i.Op = STWX
		case xoSTBX:
			i.Op = STBX
		case xoMFSPR, xoMTSPR:
			if xo == xoMFSPR {
				i.Op = MFSPR
			} else {
				i.Op = MTSPR
			}
			spr := w >> 11 & 0x3ff
			i.SPR = int((spr&0x1f)<<5 | spr>>5&0x1f)
			i.Rc = false
			switch i.SPR {
			case SPRXER, SPRLR, SPRCTR:
			default:
				return i, fmt.Errorf("ppc: decode %#08x: unsupported SPR %d", w, i.SPR)
			}
		default:
			return i, fmt.Errorf("ppc: decode %#08x: unsupported opcode 31 extended %d", w, xo)
		}
		return i, nil
	}
	return i, fmt.Errorf("ppc: decode %#08x: unsupported primary opcode %d", w, opcd)
}
